// Package repro is the public API of the relational shortest-path library,
// a from-scratch Go reproduction of "Relational Approach for Shortest Path
// Discovery over Large Graphs" (Gao, Jin, Zhou, Yu, Jiang, Wang — PVLDB
// 5(4), 2011).
//
// The library has three layers, all re-exported here:
//
//   - An embedded relational engine (package internal/rdb and below): page
//     storage, buffer pool, B+trees, a SQL subset with window functions and
//     MERGE, and DBMS feature profiles.
//   - The FEM framework and algorithms (internal/core): DJ, BDJ, BSDJ,
//     BBFS and BSEG over the SegTable index, all issuing SQL statements —
//     the Go side holds only scalar loop state, like the paper's JDBC
//     client.
//   - Graph tooling (internal/graph): generators matching the paper's
//     datasets, CSV persistence, and the in-memory baselines MDJ/MBDJ.
//
// On top of the FEM engine sits a concurrent serving layer built around
// one declarative entry point, Engine.Query: a QueryRequest names the
// endpoints, an optional algorithm hint (the default AlgAuto engages a
// cost-based planner that picks among the algorithms — or answers from the
// landmark oracle alone, within QueryRequest.MaxRelError), and a statement
// budget; the context carries deadlines and cancellation, honored within
// one frontier iteration. Engine is safe for any number of concurrent
// callers (an LRU result cache answers repeats from memory; relational
// searches serialize on a query latch), Engine.QueryBatch fans a request
// set across a worker pool, and cmd/spdbd exposes the whole stack over
// HTTP (POST /query). See docs/ARCHITECTURE.md for the concurrency model,
// the planner's decision table, and their invariants.
//
// Underneath, the relational engine executes every statement through a
// prepared-statement subsystem: rdb.DB keeps a plan cache keyed by (SQL
// text, profile, schema epoch), DB.Prepare/Session.PrepareContext expose
// explicit handles, and the FEM loops bind per-iteration values as ?
// parameters instead of re-rendering SQL — so the hot path never pays
// parse/plan costs (DBStats.PlanCacheHits/Misses/Invalidations report the
// cache's behavior).
//
// Quickstart:
//
//	db, _ := repro.Open(repro.DBOptions{})
//	defer db.Close()
//	g := repro.PowerGraph(10000, 3, 42)
//	eng := repro.NewEngine(db, repro.EngineOptions{})
//	_ = eng.LoadGraph(g)
//	_, _ = eng.BuildSegTable(20)
//	res, _ := eng.Query(context.Background(),
//		repro.QueryRequest{Source: 17, Target: 4711}) // AlgAuto: planner picks
//	fmt.Println(res.Distance, res.Path.Nodes, res.Stats)
package repro

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// Re-exported database types.
type (
	// DB is an embedded relational database instance. SELECTs run
	// concurrently under a shared latch; mutating statements are exclusive.
	DB = rdb.DB
	// DBOptions configures Open (buffer pool size, backing file, profile).
	DBOptions = rdb.Options
	// Profile models the emulated DBMS feature set.
	Profile = rdb.Profile
	// DBStats aggregates engine counters (statements, sessions, buffer, I/O).
	DBStats = rdb.Stats
	// Rows is a materialized query result.
	Rows = rdb.Rows
	// Session is a per-caller handle over a shared DB with its own
	// statement counters; open one per concurrent client (DB.Session).
	Session = rdb.Session
	// SessionStats snapshots one session's activity.
	SessionStats = rdb.SessionStats
)

// Engine profiles from the paper's evaluation (§5.1).
var (
	// ProfileDBMSX supports both window functions and MERGE.
	ProfileDBMSX = rdb.ProfileDBMSX
	// ProfilePostgreSQL9 supports window functions but not MERGE.
	ProfilePostgreSQL9 = rdb.ProfilePostgreSQL9
)

// Open creates an embedded database (in-memory when Path is empty).
func Open(opts DBOptions) (*DB, error) { return rdb.Open(opts) }

// Re-exported core types.
type (
	// Engine runs the relational shortest-path algorithms over a DB.
	Engine = core.Engine
	// EngineOptions selects index strategy, SQL dialect and ablations.
	EngineOptions = core.Options
	// Algorithm identifies one of the five approaches.
	Algorithm = core.Algorithm
	// IndexStrategy is the physical design axis (CluIndex/Index/NoIndex).
	IndexStrategy = core.IndexStrategy
	// Path is a discovered shortest path.
	Path = core.Path
	// QueryRequest is one declarative shortest-path question for
	// Engine.Query: endpoints, algorithm hint (AlgAuto = planner),
	// error tolerance and statement budget.
	QueryRequest = core.QueryRequest
	// QueryResult is the unified answer: exact path or oracle interval,
	// resolved algorithm, planner decision and per-query stats.
	QueryResult = core.QueryResult
	// QueryResponse pairs one Engine.QueryBatch request with its outcome.
	QueryResponse = core.QueryResponse
	// QueryStats carries per-query metrics (expansions, statements,
	// visited rows, iterations, planner decision, phase and operator
	// timings, cache hits).
	QueryStats = core.QueryStats
	// SegTableStats reports a SegTable construction.
	SegTableStats = core.SegTableStats
	// CacheStats snapshots the engine's shortest-path result cache
	// (Engine.CacheStats).
	CacheStats = core.CacheStats
	// Mutation is one edge change for Engine.ApplyMutations.
	Mutation = core.Mutation
	// MutOp selects the mutation kind (MutInsert, MutDelete, MutUpdate).
	MutOp = core.MutOp
	// MaintStats reports one incremental-maintenance step (Engine.InsertEdge,
	// DeleteEdge, UpdateEdgeWeight, ApplyMutations).
	MaintStats = core.MaintStats
	// MutationCounters snapshots the mutation subsystem
	// (Engine.MutationStats).
	MutationCounters = core.MutationCounters
)

// Mutation operations for Engine.ApplyMutations.
const (
	// MutInsert adds a (From, To, Weight) edge.
	MutInsert = core.MutInsert
	// MutDelete removes every (From, To) edge, parallel edges included.
	MutDelete = core.MutDelete
	// MutUpdate sets the cost of every (From, To) edge to Weight.
	MutUpdate = core.MutUpdate
)

// DefaultRepairThreshold is the decremental-repair row cap used when
// EngineOptions.RepairThreshold is zero.
const DefaultRepairThreshold = core.DefaultRepairThreshold

// DefaultCacheSize is the path-cache capacity used when
// EngineOptions.CacheSize is zero.
const DefaultCacheSize = core.DefaultCacheSize

// ErrBudgetExceeded identifies a query that spent its
// QueryRequest.MaxStatements budget (errors.Is).
var ErrBudgetExceeded = core.ErrBudgetExceeded

// Algorithms (§5.1 naming).
const (
	// AlgAuto (the zero value) lets Engine.Query's cost-based planner pick
	// the algorithm — or answer from the landmark oracle alone.
	AlgAuto = core.AlgAuto
	// AlgDJ is single-directional relational Dijkstra (Algorithm 1).
	AlgDJ = core.AlgDJ
	// AlgBDJ is bi-directional relational Dijkstra.
	AlgBDJ = core.AlgBDJ
	// AlgBSDJ is bi-directional set Dijkstra (§4.1).
	AlgBSDJ = core.AlgBSDJ
	// AlgBBFS is bi-directional breadth-first relaxation.
	AlgBBFS = core.AlgBBFS
	// AlgBSEG is selective expansion over SegTable (Algorithm 2).
	AlgBSEG = core.AlgBSEG
	// AlgALT is bi-directional set Dijkstra with ALT goal-directed pruning
	// over the landmark oracle (requires Engine.BuildOracle).
	AlgALT = core.AlgALT
	// AlgLabel answers from the pruned 2-hop hub-label index with a single
	// merge-join per distance (requires Engine.BuildLabels).
	AlgLabel = core.AlgLabel
)

// Re-exported landmark-oracle types (Engine.BuildOracle,
// Engine.DistanceInterval).
type (
	// OracleConfig selects the landmark count and placement strategy.
	OracleConfig = oracle.Config
	// OracleStats reports one oracle construction.
	OracleStats = oracle.BuildStats
	// LandmarkStrategy picks landmark placement (degree or farthest-point).
	LandmarkStrategy = oracle.Strategy
	// Interval is an approximate-distance answer bracketing the exact
	// distance: Lower <= dist(s,t) <= Upper.
	Interval = core.Interval
)

// Re-exported hub-label types (Engine.BuildLabels, AlgLabel).
type (
	// LabelStats reports one hub-label (2-hop) index construction.
	LabelStats = labels.BuildStats
	// LabelIndex is the built label index's metadata (Engine.Labels; nil
	// while no valid index exists).
	LabelIndex = labels.Labels
)

// Landmark placement strategies.
const (
	// LandmarksByDegree picks the k highest-degree nodes.
	LandmarksByDegree = oracle.Degree
	// LandmarksFarthest spreads landmarks by farthest-point traversal.
	LandmarksFarthest = oracle.Farthest
)

// Index strategies (Fig 8(c)).
const (
	// ClusteredIndex stores tables as B+trees on their key columns.
	ClusteredIndex = core.ClusteredIndex
	// SecondaryIndex keeps heap tables with non-clustered indexes.
	SecondaryIndex = core.SecondaryIndex
	// NoIndex keeps bare heaps.
	NoIndex = core.NoIndex
)

// NewEngine wraps a database; call Engine.LoadGraph next.
func NewEngine(db *DB, opts EngineOptions) *Engine { return core.NewEngine(db, opts) }

// Re-exported graph types.
type (
	// Graph is an in-memory weighted directed graph.
	Graph = graph.Graph
	// Edge is one weighted directed edge.
	Edge = graph.Edge
	// PathResult is an in-memory search result (baselines).
	PathResult = graph.PathResult
)

// NewGraph builds a graph from an edge list over n nodes.
func NewGraph(n int64, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// RandomGraph generates the paper's Random family: m uniformly sampled
// edges over n nodes, weights in [1,100].
func RandomGraph(n int64, m int, seed int64) *Graph { return graph.Random(n, m, seed) }

// PowerGraph generates the paper's Power family (Barabási–Albert
// preferential attachment) with the given average degree.
func PowerGraph(n int64, avgDegree int, seed int64) *Graph {
	return graph.Power(n, avgDegree, seed)
}

// DBLPLike generates a synthetic analog of the paper's DBLP dataset at the
// given scale (1.0 = full size).
func DBLPLike(scale float64, seed int64) *Graph { return graph.DBLPLike(scale, seed) }

// GoogleWebLike generates a synthetic analog of the GoogleWeb dataset.
func GoogleWebLike(scale float64, seed int64) *Graph { return graph.GoogleWebLike(scale, seed) }

// LiveJournalLike generates a synthetic analog of the LiveJournal dataset.
func LiveJournalLike(scale float64, seed int64) *Graph { return graph.LiveJournalLike(scale, seed) }

// LoadGraphFile reads a CSV edge list ("fid,tid,cost" lines).
func LoadGraphFile(path string) (*Graph, error) { return graph.LoadFile(path) }

// RandomQueries draws (source, target) pairs for a workload.
func RandomQueries(g *Graph, q int, seed int64) [][2]int64 { return graph.RandomQueries(g, q, seed) }

// MDJ is the in-memory Dijkstra baseline.
func MDJ(g *Graph, s, t int64) PathResult { return graph.MDJ(g, s, t) }

// MBDJ is the in-memory bi-directional Dijkstra baseline.
func MBDJ(g *Graph, s, t int64) PathResult { return graph.MBDJ(g, s, t) }
