// Quickstart: load a small power-law graph into the embedded relational
// engine, build the SegTable index, and answer one shortest-path query
// with each algorithm.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// An in-memory database with the default (DBMS-X) profile: window
	// functions + MERGE available.
	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A Barabási–Albert power-law graph: 5000 nodes, average degree ~3,
	// edge weights uniform in [1,100] — the paper's Power5kN3d.
	g := repro.PowerGraph(5000, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.N, g.M())

	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	// Pre-compute local shortest segments up to distance 20.
	st, err := eng.BuildSegTable(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %s\n\n", st)

	// One declarative call per algorithm hint; AlgAuto (first) lets the
	// cost-based planner decide from the engine's own statistics.
	ctx := context.Background()
	s, t := int64(17), int64(4711)
	for _, alg := range []repro.Algorithm{repro.AlgAuto, repro.AlgDJ, repro.AlgBDJ, repro.AlgBSDJ, repro.AlgBBFS, repro.AlgBSEG} {
		res, err := eng.Query(ctx, repro.QueryRequest{Source: s, Target: t, Alg: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		if !res.Found {
			fmt.Printf("%-5v no path\n", alg)
			continue
		}
		stats := res.Stats
		note := ""
		if alg == repro.AlgAuto {
			note = fmt.Sprintf("  (planner: %s -> %v)", stats.Planner, res.Algorithm)
		}
		fmt.Printf("%-5v distance=%-4d hops=%-3d expansions=%-5d statements=%-5d time=%v%s\n",
			alg, res.Distance, len(res.Path.Nodes)-1, stats.Expansions, stats.Statements, stats.Total, note)
	}

	// The in-memory reference agrees:
	ref := repro.MDJ(g, s, t)
	fmt.Printf("\nin-memory Dijkstra reference: distance=%d visited=%d\n", ref.Distance, ref.Visited)
}
