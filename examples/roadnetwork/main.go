// Road-network scenario: transportation networks are the paper's other
// motivating workload. This example builds a weighted grid road network
// (4-connected, travel times as weights), compares the relational
// algorithms against each other and against the in-memory baselines, and
// shows where the set-at-a-time evaluation pays off.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

// buildGrid creates a w×h 4-connected grid with random travel times.
func buildGrid(w, h int, seed int64) *repro.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int64 { return int64(y*w + x) }
	var edges []repro.Edge
	addBoth := func(a, b int64) {
		// Travel times 1..100, independent per direction (one-way speeds).
		edges = append(edges, repro.Edge{From: a, To: b, Weight: 1 + rng.Int63n(100)})
		edges = append(edges, repro.Edge{From: b, To: a, Weight: 1 + rng.Int63n(100)})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addBoth(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				addBoth(id(x, y), id(x, y+1))
			}
		}
	}
	g, err := repro.NewGraph(int64(w*h), edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	const w, h = 45, 45
	g := buildGrid(w, h, 3)
	fmt.Printf("road network: %dx%d grid, %d junctions, %d road segments\n", w, h, g.N, g.M())

	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.BuildSegTable(40); err != nil {
		log.Fatal(err)
	}

	// Route from the north-west corner to the south-east corner.
	s, t := int64(0), int64(w*h-1)
	fmt.Printf("\nrouting junction %d -> junction %d:\n\n", s, t)
	type result struct {
		name string
		dist int64
		time time.Duration
		note string
	}
	var results []result

	for _, alg := range []repro.Algorithm{repro.AlgBDJ, repro.AlgBSDJ, repro.AlgBBFS, repro.AlgBSEG} {
		res, err := eng.Query(context.Background(), repro.QueryRequest{Source: s, Target: t, Alg: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		results = append(results, result{
			name: alg.String(), dist: res.Distance, time: res.Stats.Total,
			note: fmt.Sprintf("%d expansions, %d visited junctions", res.Stats.Expansions, res.Stats.VisitedRows),
		})
	}
	t0 := time.Now()
	ref := repro.MDJ(g, s, t)
	results = append(results, result{name: "MDJ (in-memory)", dist: ref.Distance, time: time.Since(t0),
		note: fmt.Sprintf("%d visited junctions", ref.Visited)})
	t1 := time.Now()
	ref2 := repro.MBDJ(g, s, t)
	results = append(results, result{name: "MBDJ (in-memory)", dist: ref2.Distance, time: time.Since(t1),
		note: fmt.Sprintf("%d visited junctions", ref2.Visited)})

	for _, r := range results {
		fmt.Printf("  %-18s travel time %-6d in %-12v (%s)\n", r.name, r.dist, r.time.Round(time.Microsecond), r.note)
	}
	fmt.Println("\nAll approaches agree on the optimal travel time; the set-at-a-time")
	fmt.Println("methods (BSDJ/BSEG) need far fewer round trips to the database than")
	fmt.Println("node-at-a-time BDJ — the paper's central observation.")
}
