// Social-network scenario from the paper's introduction: "the shortest
// path discovery in a social network between two individuals reveals how
// their relationship is built". This example loads a LiveJournal-like
// friendship graph, builds a SegTable, and explains how random pairs of
// members are connected — including the degrees of separation and the
// chain of intermediaries.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// ~19k members with skewed (hub-heavy) friendships, mostly mutual.
	g := repro.LiveJournalLike(0.004, 7)
	fmt.Printf("social graph: %d members, %d friendship edges\n", g.N, g.M())

	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	// Social networks have low effective diameter: a small threshold
	// already covers most hops (the paper uses lthd=3 for LiveJournal).
	st, err := eng.BuildSegTable(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relationship index: %d pre-computed segments (built in %v)\n\n",
		st.EncodingNumber(), st.BuildTime)

	for _, pair := range repro.RandomQueries(g, 5, 99) {
		a, b := pair[0], pair[1]
		res, err := eng.Query(context.Background(), repro.QueryRequest{Source: a, Target: b, Alg: repro.AlgBSEG})
		if err != nil {
			log.Fatal(err)
		}
		path, stats := res.Path, res.Stats
		if !path.Found {
			fmt.Printf("member %d and member %d are not connected\n\n", a, b)
			continue
		}
		fmt.Printf("member %d reaches member %d through %d intermediaries (tie strength %d):\n",
			a, b, len(path.Nodes)-2, path.Length)
		for i, node := range path.Nodes {
			switch i {
			case 0:
				fmt.Printf("  %d", node)
			default:
				fmt.Printf(" -> %d", node)
			}
		}
		fmt.Printf("\n  (found with %d expansions, %d SQL statements, %v)\n\n",
			stats.Expansions, stats.Statements, stats.Total)
	}
}
