// Landmark oracle walkthrough: build the TLandmark relation over a
// power-law graph, compare the exact ALT search (goal-directed pruning by
// landmark lower bounds) against plain BSDJ on the same workload, then
// answer the workload approximately from landmark triangulation alone and
// show that every interval brackets the exact distance.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g := repro.PowerGraph(3000, 3, 7)
	fmt.Printf("graph: %d nodes, %d edges (power-law)\n\n", g.N, g.M())

	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// Caching off so the comparison below measures the searches themselves.
	eng := repro.NewEngine(db, repro.EngineOptions{CacheSize: -1})
	if err := eng.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	// Build the oracle: 8 hub landmarks, exact distances both directions,
	// all computed relationally (single-source set-Dijkstra to fixpoint).
	st, err := eng.BuildOracle(repro.OracleConfig{K: 8, Strategy: repro.LandmarksByDegree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle: %s\n       landmarks %v\n\n", st, st.Landmarks)

	workload := repro.RandomQueries(g, 8, 3)

	// Exact search, with and without ALT pruning. Same answers, fewer
	// affected tuples: candidates whose landmark bound proves them unable
	// to improve the best path are settled without expansion.
	type tally struct {
		affected, pruned int64
		dur              time.Duration
	}
	sums := map[repro.Algorithm]*tally{repro.AlgBSDJ: {}, repro.AlgALT: {}}
	for _, q := range workload {
		var baseline int64
		for _, alg := range []repro.Algorithm{repro.AlgBSDJ, repro.AlgALT} {
			res, err := eng.Query(context.Background(), repro.QueryRequest{Source: q[0], Target: q[1], Alg: alg})
			if err != nil {
				log.Fatal(err)
			}
			if alg == repro.AlgBSDJ {
				baseline = res.Distance
			} else if res.Distance != baseline {
				log.Fatalf("ALT diverged on (%d,%d): %d vs %d", q[0], q[1], res.Distance, baseline)
			}
			sums[alg].affected += res.Stats.TuplesAffected
			sums[alg].pruned += res.Stats.PrunedRows
			sums[alg].dur += res.Stats.Total
		}
	}
	fmt.Printf("%-6s %-16s %-10s %-12s\n", "alg", "tuples affected", "pruned", "total time")
	for _, alg := range []repro.Algorithm{repro.AlgBSDJ, repro.AlgALT} {
		s := sums[alg]
		fmt.Printf("%-6v %-16d %-10d %-12v\n", alg, s.affected, s.pruned, s.dur.Round(time.Millisecond))
	}

	// Approximate answers: three aggregate SELECTs over TLandmark, no
	// touch of TEdges — the landmark triangulation interval always
	// brackets the exact distance.
	fmt.Printf("\n%-14s %-8s %-14s %s\n", "pair", "exact", "approx", "upper hit?")
	for _, q := range workload {
		iv, err := eng.DistanceInterval(context.Background(), q[0], q[1])
		if err != nil {
			log.Fatal(err)
		}
		ref := repro.MDJ(g, q[0], q[1])
		upper := "inf"
		if iv.UpperKnown() {
			upper = fmt.Sprint(iv.Upper)
		}
		exact := "-"
		if ref.Found {
			exact = fmt.Sprint(ref.Distance)
			if iv.Lower > ref.Distance || (iv.UpperKnown() && iv.Upper < ref.Distance) {
				log.Fatalf("interval [%d,%s] misses exact %d", iv.Lower, upper, ref.Distance)
			}
		}
		fmt.Printf("%-14s %-8s %-14s %v\n",
			fmt.Sprintf("(%d,%d)", q[0], q[1]), exact,
			fmt.Sprintf("[%d, %s]", iv.Lower, upper),
			iv.UpperKnown() && ref.Found && iv.Upper == ref.Distance)
	}
	fmt.Println("\nevery interval contains the exact distance; with hub landmarks on a")
	fmt.Println("power-law graph the upper bound (a real path through a landmark) is")
	fmt.Println("often the exact distance itself.")
}
