// lthd tuning: the paper leaves "how to find an optimal lthd for SegTable
// over different graphs" as future work (§5.2). This example implements a
// simple empirical tuner — sweep candidate thresholds, measure index size,
// construction time and query latency on a sampled workload, and pick the
// threshold with the best latency subject to an index budget.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g := repro.GoogleWebLike(0.003, 11)
	fmt.Printf("graph: %d nodes, %d edges (web-like, skewed degrees)\n\n", g.N, g.M())

	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	workload := repro.RandomQueries(g, 6, 5)
	budget := 6 * g.M() // accept an index of up to 6x the edge count

	fmt.Printf("%-6s %-10s %-12s %-12s %-10s\n", "lthd", "segments", "build time", "query time", "in budget")
	bestLthd, bestTime := int64(0), time.Duration(1<<62)
	for _, lthd := range []int64{2, 4, 6, 8, 12, 16} {
		st, err := eng.BuildSegTable(lthd)
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		for _, q := range workload {
			res, err := eng.Query(context.Background(), repro.QueryRequest{Source: q[0], Target: q[1], Alg: repro.AlgBSEG})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Stats.Total
		}
		avg := total / time.Duration(len(workload))
		inBudget := st.EncodingNumber() <= budget
		fmt.Printf("%-6d %-10d %-12v %-12v %-10v\n",
			lthd, st.EncodingNumber(), st.BuildTime.Round(time.Millisecond), avg.Round(time.Microsecond), inBudget)
		if inBudget && avg < bestTime {
			bestTime, bestLthd = avg, lthd
		}
	}
	if bestLthd == 0 {
		fmt.Println("\nno threshold fits the index budget")
		return
	}
	fmt.Printf("\nchosen lthd = %d (avg query %v within the %d-segment budget)\n",
		bestLthd, bestTime.Round(time.Microsecond), budget)
	fmt.Println("matching the paper's observation: performance improves with lthd up to a")
	fmt.Println("point, then declines as the enlarged search space outweighs the savings.")
}
