package exec

import (
	"fmt"
	"sort"

	"repro/internal/record"
)

// aggKind enumerates supported aggregate functions.
type aggKind int

const (
	aggMin aggKind = iota
	aggMax
	aggSum
	aggCount
	aggAvg
)

// aggSpec is one aggregate to compute.
type aggSpec struct {
	kind aggKind
	arg  scalarFn // nil for COUNT(*)
}

func aggKindOf(name string) (aggKind, error) {
	switch name {
	case "MIN":
		return aggMin, nil
	case "MAX":
		return aggMax, nil
	case "SUM":
		return aggSum, nil
	case "COUNT":
		return aggCount, nil
	case "AVG":
		return aggAvg, nil
	}
	return 0, fmt.Errorf("exec: unknown aggregate %s", name)
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minmax  record.Value
	has     bool
}

func (a *aggState) add(kind aggKind, v record.Value) {
	switch kind {
	case aggCount:
		if v.Null {
			return // COUNT(expr) skips NULLs; COUNT(*) feeds a constant 1
		}
		a.count++
	case aggSum, aggAvg:
		if v.Null {
			return
		}
		a.count++
		if v.Typ == record.TFloat {
			a.isFloat = true
			a.sumF += v.F
		} else {
			a.sumI += v.I
		}
		a.has = true
	case aggMin:
		if v.Null {
			return
		}
		if !a.has || record.Compare(v, a.minmax) < 0 {
			a.minmax = v
			a.has = true
		}
	case aggMax:
		if v.Null {
			return
		}
		if !a.has || record.Compare(v, a.minmax) > 0 {
			a.minmax = v
			a.has = true
		}
	}
}

func (a *aggState) result(kind aggKind) record.Value {
	switch kind {
	case aggCount:
		return record.Int(a.count)
	case aggSum:
		if !a.has {
			return record.Value{Null: true, Typ: record.TInt}
		}
		if a.isFloat {
			return record.Float(a.sumF + float64(a.sumI))
		}
		return record.Int(a.sumI)
	case aggAvg:
		if !a.has {
			return record.Value{Null: true, Typ: record.TFloat}
		}
		return record.Float((a.sumF + float64(a.sumI)) / float64(a.count))
	case aggMin, aggMax:
		if !a.has {
			return record.Value{Null: true, Typ: record.TInt}
		}
		return a.minmax
	}
	return record.Value{Null: true}
}

// Aggregate hash-aggregates its input. Output rows are
// [group values..., aggregate results...]. With no GROUP BY, exactly one
// row is produced even for empty input (SQL semantics: MIN of nothing is
// NULL, COUNT of nothing is 0) — the paper's termination checks rely on
// `SELECT MIN(d2s) ...` returning a NULL row when no candidates remain.
type Aggregate struct {
	Input    Node
	GroupFns []scalarFn
	Specs    []aggSpec
	out      []record.Row
	pos      int
}

// Open implements Node: drains the input and computes all groups.
func (a *Aggregate) Open(ctx *Ctx) error {
	a.out = nil
	a.pos = 0
	type group struct {
		keys   []record.Value
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string // deterministic output order (first-seen)

	if err := a.Input.Open(ctx); err != nil {
		return err
	}
	defer a.Input.Close()
	for {
		r, err := a.Input.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		keys := make([]record.Value, len(a.GroupFns))
		for i, f := range a.GroupFns {
			v, err := f(ctx, r)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		kstr := string(record.EncodeKey(nil, keys...))
		g, ok := groups[kstr]
		if !ok {
			g = &group{keys: keys, states: make([]aggState, len(a.Specs))}
			groups[kstr] = g
			order = append(order, kstr)
		}
		for i, spec := range a.Specs {
			var v record.Value
			if spec.arg != nil {
				v, err = spec.arg(ctx, r)
				if err != nil {
					return err
				}
			} else {
				v = record.Int(1) // COUNT(*)
			}
			g.states[i].add(spec.kind, v)
		}
	}
	if len(groups) == 0 && len(a.GroupFns) == 0 {
		// Global aggregate over empty input: one row of defaults.
		row := make(record.Row, len(a.Specs))
		for i, spec := range a.Specs {
			var st aggState
			row[i] = st.result(spec.kind)
		}
		a.out = []record.Row{row}
		return nil
	}
	for _, k := range order {
		g := groups[k]
		row := make(record.Row, 0, len(g.keys)+len(a.Specs))
		row = append(row, g.keys...)
		for i, spec := range a.Specs {
			row = append(row, g.states[i].result(spec.kind))
		}
		a.out = append(a.out, row)
	}
	return nil
}

// Next implements Node.
func (a *Aggregate) Next(*Ctx) (record.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

// Close implements Node.
func (a *Aggregate) Close() { a.out = nil }

// Clone implements Node.
func (a *Aggregate) Clone() Node {
	return &Aggregate{Input: a.Input.Clone(), GroupFns: a.GroupFns, Specs: a.Specs}
}

// --- window ------------------------------------------------------------------

// windowSpec is one compiled window function (ROW_NUMBER or RANK).
type windowSpec struct {
	name      string // "ROW_NUMBER" or "RANK"
	partFns   []scalarFn
	orderFns  []scalarFn
	orderDesc []bool
}

// Window materializes its input and appends one column per window function:
// output rows are [input columns..., window results...]. This implements
// the SQL:2003 feature the paper highlights: ROW_NUMBER() OVER (PARTITION
// BY x ORDER BY y) lets the E-operator keep the cheapest expansion per node
// while carrying the non-aggregate p2s column along.
type Window struct {
	Input Node
	Specs []windowSpec
	out   []record.Row
	pos   int
}

// Open implements Node.
func (w *Window) Open(ctx *Ctx) error {
	w.pos = 0
	rows, err := runPlan(w.Input, ctx)
	if err != nil {
		return err
	}
	results := make([][]int64, len(w.Specs))
	for si, spec := range w.Specs {
		res, err := computeWindow(ctx, rows, spec)
		if err != nil {
			return err
		}
		results[si] = res
	}
	w.out = make([]record.Row, len(rows))
	for i, r := range rows {
		nr := make(record.Row, 0, len(r)+len(w.Specs))
		nr = append(nr, r...)
		for si := range w.Specs {
			nr = append(nr, record.Int(results[si][i]))
		}
		w.out[i] = nr
	}
	return nil
}

func computeWindow(ctx *Ctx, rows []record.Row, spec windowSpec) ([]int64, error) {
	type keyed struct {
		idx   int
		pkey  string
		okeys []record.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		pvals := make([]record.Value, len(spec.partFns))
		for j, f := range spec.partFns {
			v, err := f(ctx, r)
			if err != nil {
				return nil, err
			}
			pvals[j] = v
		}
		ovals := make([]record.Value, len(spec.orderFns))
		for j, f := range spec.orderFns {
			v, err := f(ctx, r)
			if err != nil {
				return nil, err
			}
			ovals[j] = v
		}
		ks[i] = keyed{idx: i, pkey: string(record.EncodeKey(nil, pvals...)), okeys: ovals}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].pkey != ks[b].pkey {
			return ks[a].pkey < ks[b].pkey
		}
		for j := range ks[a].okeys {
			c := record.Compare(ks[a].okeys[j], ks[b].okeys[j])
			if c != 0 {
				if spec.orderDesc[j] {
					return c > 0
				}
				return c < 0
			}
		}
		return ks[a].idx < ks[b].idx // deterministic tie-break
	})
	out := make([]int64, len(rows))
	var num, rank int64
	var prevP string
	first := true
	var prevO []record.Value
	for _, k := range ks {
		if first || k.pkey != prevP {
			num, rank = 0, 0
			prevO = nil
		}
		num++
		if spec.name == "RANK" {
			if prevO == nil || !orderEqual(prevO, k.okeys) {
				rank = num
			}
			out[k.idx] = rank
		} else {
			out[k.idx] = num
		}
		prevP = k.pkey
		prevO = k.okeys
		first = false
	}
	return out, nil
}

func orderEqual(a, b []record.Value) bool {
	for i := range a {
		if record.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// Next implements Node.
func (w *Window) Next(*Ctx) (record.Row, error) {
	if w.pos >= len(w.out) {
		return nil, nil
	}
	r := w.out[w.pos]
	w.pos++
	return r, nil
}

// Close implements Node.
func (w *Window) Close() { w.out = nil }

// Clone implements Node.
func (w *Window) Clone() Node { return &Window{Input: w.Input.Clone(), Specs: w.Specs} }
