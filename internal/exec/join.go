package exec

import (
	"repro/internal/record"
)

// NestedLoopJoin iterates the outer (left) input and re-opens the inner
// (right) input per outer row. The inner plan is compiled with the outer
// layout as its parent env, so inner index probes and residual predicates
// referencing outer columns read them from the ctx stack — this is how
// index-nested-loop joins work here, mirroring the E-operator's
// TVisited ⋈ TEdges probe into the clustered edge index.
type NestedLoopJoin struct {
	Outer Node
	Inner Node

	outerRow record.Row
	innerOn  bool
}

// Open implements Node.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.outerRow = nil
	j.innerOn = false
	return j.Outer.Open(ctx)
}

// Next implements Node.
func (j *NestedLoopJoin) Next(ctx *Ctx) (record.Row, error) {
	for {
		if !j.innerOn {
			r, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if r == nil {
				return nil, nil
			}
			j.outerRow = r
			ctx.Push(j.outerRow)
			if err := j.Inner.Open(ctx); err != nil {
				ctx.Pop()
				return nil, err
			}
			j.innerOn = true
		}
		ir, err := j.Inner.Next(ctx)
		if err != nil {
			j.Inner.Close()
			ctx.Pop()
			j.innerOn = false
			return nil, err
		}
		if ir == nil {
			j.Inner.Close()
			ctx.Pop()
			j.innerOn = false
			continue
		}
		out := make(record.Row, 0, len(j.outerRow)+len(ir))
		out = append(out, j.outerRow...)
		out = append(out, ir...)
		return out, nil
	}
}

// Clone implements Node.
func (j *NestedLoopJoin) Clone() Node {
	return &NestedLoopJoin{Outer: j.Outer.Clone(), Inner: j.Inner.Clone()}
}

// Close implements Node.
func (j *NestedLoopJoin) Close() {
	if j.innerOn {
		j.Inner.Close()
		j.innerOn = false
	}
	j.Outer.Close()
}

// HashJoin materializes the right input into a hash table on its equi-join
// keys, then streams the left input probing it. Keys containing NULL never
// match. Used when no index supports the join column.
type HashJoin struct {
	Left      Node
	Right     Node
	LeftKeys  []scalarFn
	RightKeys []scalarFn

	built   map[string][]record.Row
	lrow    record.Row
	matches []record.Row
	mpos    int
}

// Open implements Node: builds the hash table from the right input.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.built = make(map[string][]record.Row)
	j.lrow = nil
	j.matches = nil
	j.mpos = 0
	rows, err := runPlan(j.Right, ctx)
	if err != nil {
		return err
	}
	for _, r := range rows {
		key, null, err := joinKey(ctx, r, j.RightKeys)
		if err != nil {
			return err
		}
		if null {
			continue
		}
		j.built[key] = append(j.built[key], r)
	}
	return j.Left.Open(ctx)
}

func joinKey(ctx *Ctx, row record.Row, fns []scalarFn) (string, bool, error) {
	vals := make([]record.Value, len(fns))
	for i, f := range fns {
		v, err := f(ctx, row)
		if err != nil {
			return "", false, err
		}
		if v.Null {
			return "", true, nil
		}
		// Numeric equality across INT/FLOAT: normalize INT-valued floats.
		if v.Typ == record.TFloat && v.F == float64(int64(v.F)) {
			v = record.Int(int64(v.F))
		}
		vals[i] = v
	}
	return string(record.EncodeKey(nil, vals...)), false, nil
}

// Next implements Node.
func (j *HashJoin) Next(ctx *Ctx) (record.Row, error) {
	for {
		if j.mpos < len(j.matches) {
			m := j.matches[j.mpos]
			j.mpos++
			out := make(record.Row, 0, len(j.lrow)+len(m))
			out = append(out, j.lrow...)
			out = append(out, m...)
			return out, nil
		}
		lr, err := j.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if lr == nil {
			return nil, nil
		}
		key, null, err := joinKey(ctx, lr, j.LeftKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		j.lrow = lr
		j.matches = j.built[key]
		j.mpos = 0
	}
}

// Close implements Node.
func (j *HashJoin) Close() {
	j.Left.Close()
	j.built = nil
}

// Clone implements Node.
func (j *HashJoin) Clone() Node {
	return &HashJoin{Left: j.Left.Clone(), Right: j.Right.Clone(),
		LeftKeys: j.LeftKeys, RightKeys: j.RightKeys}
}
