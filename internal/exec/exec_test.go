package exec

import (
	"testing"

	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/table"
)

func testCatalog(t *testing.T) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog(storage.NewBufferPool(storage.NewMemDiskManager(0), 64))
	edges := record.MustSchema(
		record.Column{Name: "fid", Type: record.TInt},
		record.Column{Name: "tid", Type: record.TInt},
		record.Column{Name: "cost", Type: record.TInt},
	)
	et, err := cat.Create("TEdges", edges, table.Options{ClusterOn: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := et.CreateIndex("te_tid", []int{1}, false); err != nil {
		t.Fatal(err)
	}
	visited := record.MustSchema(
		record.Column{Name: "nid", Type: record.TInt},
		record.Column{Name: "d2s", Type: record.TInt},
		record.Column{Name: "f", Type: record.TInt},
	)
	if _, err := cat.Create("TVisited", visited, table.Options{ClusterOn: []int{0}, ClusterUnique: true}); err != nil {
		t.Fatal(err)
	}
	heap := record.MustSchema(
		record.Column{Name: "k", Type: record.TInt},
		record.Column{Name: "v", Type: record.TInt},
	)
	if _, err := cat.Create("plain", heap, table.Options{}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func planOf(t *testing.T, cat *table.Catalog, q string) Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pl := NewPlanner(cat)
	node, _, err := pl.Select(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return node
}

// unwrap strips post-processing operators to reach the access-path node.
func unwrap(n Node) Node {
	for {
		switch v := n.(type) {
		case *Project:
			n = v.Input
		case *Filter:
			n = v.Input
		case *Sort:
			n = v.Input
		case *Limit:
			n = v.Input
		case *Distinct:
			n = v.Input
		default:
			return n
		}
	}
}

func TestPlannerUsesClusteredProbe(t *testing.T) {
	cat := testCatalog(t)
	n := unwrap(planOf(t, cat, "SELECT tid FROM TEdges WHERE fid = 7"))
	scan, ok := n.(*IndexEqScan)
	if !ok {
		t.Fatalf("expected IndexEqScan, got %T", n)
	}
	if scan.Index != nil {
		t.Fatal("fid probe should use the clustered index")
	}
}

func TestPlannerUsesSecondaryProbe(t *testing.T) {
	cat := testCatalog(t)
	n := unwrap(planOf(t, cat, "SELECT fid FROM TEdges WHERE tid = 7"))
	scan, ok := n.(*IndexEqScan)
	if !ok {
		t.Fatalf("expected IndexEqScan, got %T", n)
	}
	if scan.Index == nil || scan.Index.Name != "te_tid" {
		t.Fatal("tid probe should use the secondary index")
	}
}

func TestPlannerFallsBackToSeqScan(t *testing.T) {
	cat := testCatalog(t)
	n := unwrap(planOf(t, cat, "SELECT fid FROM TEdges WHERE cost = 7"))
	if _, ok := n.(*SeqScan); !ok {
		t.Fatalf("expected SeqScan for unindexed predicate, got %T", n)
	}
	// Range predicates on indexed columns also scan (only equality probes).
	n = unwrap(planOf(t, cat, "SELECT fid FROM TEdges WHERE fid > 7"))
	if _, ok := n.(*SeqScan); !ok {
		t.Fatalf("expected SeqScan for range predicate, got %T", n)
	}
}

func TestPlannerIndexNestedLoopJoin(t *testing.T) {
	cat := testCatalog(t)
	n := unwrap(planOf(t, cat,
		"SELECT q.nid FROM TVisited q, TEdges out WHERE q.nid = out.fid AND q.f = 2"))
	join, ok := n.(*NestedLoopJoin)
	if !ok {
		t.Fatalf("expected NestedLoopJoin, got %T", n)
	}
	inner, ok := join.Inner.(*IndexEqScan)
	if !ok {
		t.Fatalf("inner should be an index probe, got %T", join.Inner)
	}
	if inner.Index != nil {
		t.Fatal("E-operator join must probe the clustered edge index")
	}
}

func TestPlannerHashJoinWithoutIndex(t *testing.T) {
	cat := testCatalog(t)
	n := unwrap(planOf(t, cat,
		"SELECT p.v FROM TEdges e, plain p WHERE e.cost = p.k"))
	if _, ok := n.(*HashJoin); !ok {
		t.Fatalf("expected HashJoin for unindexed equi-join, got %T", n)
	}
}

func TestLayoutResolve(t *testing.T) {
	lay := &Layout{Cols: []BoundCol{
		{Qual: "q", Name: "nid"},
		{Qual: "out", Name: "nid"},
		{Qual: "out", Name: "cost"},
	}}
	if i, err := lay.Resolve("q", "nid"); err != nil || i != 0 {
		t.Fatalf("qualified resolve: %d %v", i, err)
	}
	if i, err := lay.Resolve("", "cost"); err != nil || i != 2 {
		t.Fatalf("unqualified resolve: %d %v", i, err)
	}
	if _, err := lay.Resolve("", "nid"); err == nil {
		t.Fatal("ambiguous column must fail")
	}
	if _, err := lay.Resolve("q", "cost"); err == nil {
		t.Fatal("missing qualified column must fail")
	}
	if !lay.HasQual("out") || lay.HasQual("zzz") {
		t.Fatal("HasQual")
	}
}

func TestEnvCorrelatedResolve(t *testing.T) {
	inner := &Layout{Cols: []BoundCol{{Qual: "v", Name: "nid"}}}
	outer := &Layout{Cols: []BoundCol{{Qual: "s", Name: "nid"}, {Qual: "s", Name: "cost"}}}
	env := &Env{Lay: inner, Parent: &Env{Lay: outer}}
	r, err := env.resolve("v", "nid")
	if err != nil || r.levelsUp != 0 || r.idx != 0 {
		t.Fatalf("inner resolve: %+v %v", r, err)
	}
	r, err = env.resolve("s", "cost")
	if err != nil || r.levelsUp != 1 || r.idx != 1 {
		t.Fatalf("outer resolve: %+v %v", r, err)
	}
	if _, err := env.resolve("x", "y"); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestExprKeyFingerprint(t *testing.T) {
	parse := func(q string) sql.Expr {
		st, err := sql.Parse("SELECT " + q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		return st.(*sql.SelectStmt).Items[0].Expr
	}
	a := parse("out.tid + q.d2s")
	b := parse("OUT.TID + Q.D2S") // case-insensitive match
	c := parse("out.tid + q.d2t")
	if exprKey(a) != exprKey(b) {
		t.Fatal("fingerprint should be case-insensitive")
	}
	if exprKey(a) == exprKey(c) {
		t.Fatal("different expressions must differ")
	}
}

func TestSplitConjuncts(t *testing.T) {
	st, _ := sql.Parse("SELECT 1 FROM plain WHERE k = 1 AND v = 2 AND (k = 3 OR v = 4)")
	sel := st.(*sql.SelectStmt)
	conjs := splitConjuncts(sel.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts: %d", len(conjs))
	}
	if splitConjuncts(nil) != nil {
		t.Fatal("nil where")
	}
	if andAll(nil) != nil {
		t.Fatal("andAll of nothing")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   string
		a, b record.Value
		want record.Value
	}{
		{"+", record.Int(2), record.Int(3), record.Int(5)},
		{"-", record.Int(2), record.Int(3), record.Int(-1)},
		{"*", record.Int(4), record.Int(3), record.Int(12)},
		{"/", record.Int(7), record.Int(2), record.Int(3)},
		{"+", record.Float(1.5), record.Int(1), record.Float(2.5)},
		{"+", record.Text("a"), record.Text("b"), record.Text("ab")},
	}
	for _, c := range cases {
		got, err := arith(c.op, c.a, c.b)
		if err != nil || record.Compare(got, c.want) != 0 {
			t.Errorf("arith(%s, %v, %v) = %v, %v; want %v", c.op, c.a, c.b, got, err, c.want)
		}
	}
	if _, err := arith("/", record.Int(1), record.Int(0)); err == nil {
		t.Error("division by zero must fail")
	}
	got, err := arith("+", record.Value{Null: true}, record.Int(1))
	if err != nil || !got.Null {
		t.Error("NULL propagation in arithmetic")
	}
	if _, err := arith("*", record.Text("a"), record.Text("b")); err == nil {
		t.Error("TEXT multiplication must fail")
	}
}
