package exec

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/table"
)

// Planner translates parsed statements into executable plans against a
// catalog. Planning is rule-based: equality predicates on index prefixes
// become index probes (index-nested-loop joins when the probe references
// the outer side), remaining equi-joins become hash joins, and everything
// else falls back to filtered scans — the same menu a 2011-era RDBMS would
// pick from for the paper's statements.
type Planner struct {
	cat *table.Catalog
}

// NewPlanner creates a planner over cat.
func NewPlanner(cat *table.Catalog) *Planner { return &Planner{cat: cat} }

// Catalog returns the planner's catalog.
func (p *Planner) Catalog() *table.Catalog { return p.cat }

// Select plans a top-level query.
func (p *Planner) Select(st *sql.SelectStmt) (Node, *Layout, error) {
	c := &compiler{planner: p}
	return p.planSelect(st, nil, c, nil)
}

// splitConjuncts flattens a WHERE tree into AND-ed conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

func andAll(conjs []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &sql.Binary{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// schemaNames lists a table's column names.
func schemaNames(t *table.Table) []string {
	names := make([]string, t.Schema.Len())
	for i, c := range t.Schema.Columns {
		names[i] = c.Name
	}
	return names
}

// planSelect plans one query block. outerEnv is the enclosing environment
// for correlated references; usedOuter (when non-nil) is set if the block
// references it.
func (p *Planner) planSelect(st *sql.SelectStmt, outerEnv *Env, c *compiler, usedOuter *bool) (Node, *Layout, error) {
	conjuncts := splitConjuncts(st.Where)
	var cur Node
	var curLay *Layout

	if len(st.From) == 0 {
		cur = &ValuesNode{Rows: []record.Row{{}}}
		curLay = &Layout{}
	} else {
		for i, ref := range st.From {
			if i == 0 {
				n, lay, err := p.planTableAccess(ref, &conjuncts, outerEnv, c, usedOuter)
				if err != nil {
					return nil, nil, err
				}
				cur, curLay = n, lay
				continue
			}
			n, lay, err := p.planJoin(cur, curLay, ref, &conjuncts, outerEnv, c, usedOuter)
			if err != nil {
				return nil, nil, err
			}
			cur, curLay = n, lay
		}
	}
	curEnv := &Env{Lay: curLay, Parent: outerEnv}

	// Leftover conjuncts become a post-join filter.
	if len(conjuncts) > 0 {
		pred, err := c.compileExpr(andAll(conjuncts), curEnv, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		cur = &Filter{Input: cur, Pred: pred}
	}

	items := st.Items
	needAgg := len(st.GroupBy) > 0 || hasAggregate(st.Having)
	for _, it := range items {
		if !it.Star && hasAggregate(it.Expr) {
			needAgg = true
		}
	}
	for _, ob := range st.OrderBy {
		if hasAggregate(ob.Expr) {
			needAgg = true
		}
	}

	orderBy := st.OrderBy
	if needAgg {
		var err error
		cur, curEnv, items, orderBy, err = p.planAggregate(st, cur, curEnv, c, usedOuter)
		if err != nil {
			return nil, nil, err
		}
	} else {
		needWin := false
		for _, it := range items {
			if !it.Star && hasWindow(it.Expr) {
				needWin = true
			}
		}
		if needWin {
			var err error
			cur, curEnv, items, err = p.planWindow(items, cur, curEnv, curLay, c, usedOuter)
			if err != nil {
				return nil, nil, err
			}
		}
	}

	// ORDER BY (compiled against the pre-projection layout).
	if len(orderBy) > 0 {
		keys := make([]scalarFn, len(orderBy))
		desc := make([]bool, len(orderBy))
		for i, ob := range orderBy {
			f, err := c.compileExpr(ob.Expr, curEnv, usedOuter)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = f
			desc[i] = ob.Desc
		}
		cur = &Sort{Input: cur, Keys: keys, Desc: desc}
	}

	// TOP / LIMIT.
	limitExpr := st.Top
	if limitExpr == nil {
		limitExpr = st.Limit
	}
	if limitExpr != nil {
		f, err := c.compileExpr(limitExpr, &Env{Lay: &Layout{}, Parent: outerEnv}, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		cur = &Limit{Input: cur, N: f}
	}

	// Projection. Output names come from the ORIGINAL select items (the
	// aggregate/window rewrite replaces expressions with internal $agg/$win
	// references whose names must not leak to clients).
	var fns []scalarFn
	outLay := &Layout{}
	anon := 0
	for i, it := range items {
		if it.Star {
			for idx, col := range curEnv.Lay.Cols {
				i := idx
				fns = append(fns, func(_ *Ctx, row record.Row) (record.Value, error) {
					return row[i], nil
				})
				outLay.Cols = append(outLay.Cols, col)
			}
			continue
		}
		f, err := c.compileExpr(it.Expr, curEnv, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		fns = append(fns, f)
		name := it.Alias
		if name == "" {
			orig := it.Expr
			if i < len(st.Items) && !st.Items[i].Star {
				orig = st.Items[i].Expr
			}
			if cr, ok := orig.(*sql.ColumnRef); ok && cr.Table != "$agg" && cr.Table != "$win" {
				name = cr.Name
			} else if fc, ok := orig.(*sql.FuncCall); ok {
				name = strings.ToLower(fc.Name)
			} else {
				name = fmt.Sprintf("_c%d", anon)
				anon++
			}
		}
		outLay.Cols = append(outLay.Cols, BoundCol{Name: name})
	}
	cur = &Project{Input: cur, Fns: fns}

	if st.Distinct {
		cur = &Distinct{Input: cur}
	}
	return cur, outLay, nil
}

// planTableAccess plans a base-table or derived-table reference with its
// applicable conjuncts. accEnv is what the table can see besides itself
// (the accumulated join row and/or enclosing query rows).
func (p *Planner) planTableAccess(ref *sql.TableRef, remaining *[]sql.Expr, accEnv *Env, c *compiler, usedOuter *bool) (Node, *Layout, error) {
	if ref.Sub != nil {
		node, subLay, err := p.planSelect(ref.Sub, accEnv, c, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		lay, err := derivedLayout(ref, subLay)
		if err != nil {
			return nil, nil, err
		}
		// Apply conjuncts that compile against the derived layout.
		node, err = p.attachResiduals(node, lay, remaining, accEnv, c, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		return node, lay, nil
	}
	t, ok := p.cat.Get(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("exec: unknown table %q", ref.Table)
	}
	lay := NewLayout(ref.Name(), schemaNames(t))
	tableEnv := &Env{Lay: lay, Parent: accEnv}

	// Try to find an index probe among the remaining conjuncts.
	node := p.chooseAccessPath(t, ref.Name(), lay, tableEnv, remaining, c, usedOuter)
	var err error
	node, err = p.attachResidualsToScan(node, tableEnv, remaining, c, usedOuter)
	if err != nil {
		return nil, nil, err
	}
	return node, lay, nil
}

// derivedLayout renames a subquery's output columns per the alias list.
func derivedLayout(ref *sql.TableRef, subLay *Layout) (*Layout, error) {
	names := make([]string, len(subLay.Cols))
	for i, col := range subLay.Cols {
		names[i] = col.Name
	}
	if len(ref.SubCols) > 0 {
		if len(ref.SubCols) != len(names) {
			return nil, fmt.Errorf("exec: derived table %s lists %d columns, query returns %d",
				ref.Name(), len(ref.SubCols), len(names))
		}
		names = ref.SubCols
	}
	return NewLayout(ref.Name(), names), nil
}

// chooseAccessPath selects an index probe if some equality conjuncts cover
// an index prefix with expressions that do not depend on the table itself.
// Preference: clustered, then unique secondary, then other secondary.
func (p *Planner) chooseAccessPath(t *table.Table, qual string, lay *Layout, tableEnv *Env, remaining *[]sql.Expr, c *compiler, usedOuter *bool) Node {
	type candidate struct {
		ix   *table.Index // nil = clustered
		cols []int
		pref int
	}
	var cands []candidate
	if clu := t.Clustered(); clu != nil {
		cands = append(cands, candidate{ix: nil, cols: clu.Cols, pref: 0})
	}
	for _, ix := range t.Secondary {
		pref := 2
		if ix.Unique {
			pref = 1
		}
		cands = append(cands, candidate{ix: ix, cols: ix.Cols, pref: pref})
	}
	var best *candidate
	var bestFns []scalarFn
	var bestUsed []int
	bestLen, bestPref := 0, 99
	for ci := range cands {
		cand := &cands[ci]
		fns, used := p.matchIndexPrefix(t, qual, lay, tableEnv, cand.cols, *remaining, c, usedOuter)
		if len(fns) == 0 {
			continue
		}
		if len(fns) > bestLen || (len(fns) == bestLen && cand.pref < bestPref) {
			best, bestFns, bestUsed, bestLen, bestPref = cand, fns, used, len(fns), cand.pref
		}
	}
	if best == nil {
		return &SeqScan{Table: t}
	}
	removeConjuncts(remaining, bestUsed)
	return &IndexEqScan{Table: t, Index: best.ix, KeyFns: bestFns}
}

// matchIndexPrefix finds equality conjuncts `col = expr` covering a prefix
// of idxCols where expr does not reference the table. Returns the probe
// functions and the indices of the consumed conjuncts.
func (p *Planner) matchIndexPrefix(t *table.Table, qual string, lay *Layout, tableEnv *Env, idxCols []int, conjuncts []sql.Expr, c *compiler, usedOuter *bool) ([]scalarFn, []int) {
	var fns []scalarFn
	var used []int
	for _, colOrd := range idxCols {
		colName := t.Schema.Columns[colOrd].Name
		found := false
		for ci, conj := range conjuncts {
			if intsContain(used, ci) {
				continue
			}
			b, ok := conj.(*sql.Binary)
			if !ok || b.Op != "=" {
				continue
			}
			var probe sql.Expr
			if isColRefTo(b.L, qual, colName, lay) && !exprRefsQual(b.R, qual, lay) {
				probe = b.R
			} else if isColRefTo(b.R, qual, colName, lay) && !exprRefsQual(b.L, qual, lay) {
				probe = b.L
			} else {
				continue
			}
			fn, err := c.compileExpr(probe, tableEnv, usedOuter)
			if err != nil {
				continue
			}
			fns = append(fns, fn)
			used = append(used, ci)
			found = true
			break
		}
		if !found {
			break
		}
	}
	return fns, used
}

func isColRefTo(e sql.Expr, qual, name string, lay *Layout) bool {
	cr, ok := e.(*sql.ColumnRef)
	if !ok {
		return false
	}
	if !strings.EqualFold(cr.Name, name) {
		return false
	}
	if cr.Table == "" {
		return lay.Has("", cr.Name)
	}
	return strings.EqualFold(cr.Table, qual)
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func removeConjuncts(remaining *[]sql.Expr, used []int) {
	if len(used) == 0 {
		return
	}
	var out []sql.Expr
	for i, e := range *remaining {
		if !intsContain(used, i) {
			out = append(out, e)
		}
	}
	*remaining = out
}

// attachResidualsToScan moves every remaining conjunct that compiles in
// tableEnv into the scan's residual filter.
func (p *Planner) attachResidualsToScan(node Node, tableEnv *Env, remaining *[]sql.Expr, c *compiler, usedOuter *bool) (Node, error) {
	var keep []sql.Expr
	var resid []sql.Expr
	for _, conj := range *remaining {
		if _, err := c.compileExpr(conj, tableEnv, usedOuter); err != nil {
			keep = append(keep, conj)
			continue
		}
		resid = append(resid, conj)
	}
	*remaining = keep
	if len(resid) == 0 {
		return node, nil
	}
	pred, err := c.compileExpr(andAll(resid), tableEnv, usedOuter)
	if err != nil {
		return nil, err
	}
	switch n := node.(type) {
	case *SeqScan:
		n.Residual = pred
		return n, nil
	case *IndexEqScan:
		n.Residual = pred
		return n, nil
	default:
		return &Filter{Input: node, Pred: pred}, nil
	}
}

// attachResiduals wraps a non-scan node with a filter for conjuncts that
// compile against its layout.
func (p *Planner) attachResiduals(node Node, lay *Layout, remaining *[]sql.Expr, accEnv *Env, c *compiler, usedOuter *bool) (Node, error) {
	env := &Env{Lay: lay, Parent: accEnv}
	var keep []sql.Expr
	var resid []sql.Expr
	for _, conj := range *remaining {
		if _, err := c.compileExpr(conj, env, usedOuter); err != nil {
			keep = append(keep, conj)
			continue
		}
		resid = append(resid, conj)
	}
	*remaining = keep
	if len(resid) == 0 {
		return node, nil
	}
	pred, err := c.compileExpr(andAll(resid), env, usedOuter)
	if err != nil {
		return nil, err
	}
	return &Filter{Input: node, Pred: pred}, nil
}

// planJoin extends the accumulated left-deep plan with one more table.
func (p *Planner) planJoin(acc Node, accLay *Layout, ref *sql.TableRef, remaining *[]sql.Expr, outerEnv *Env, c *compiler, usedOuter *bool) (Node, *Layout, error) {
	accEnv := &Env{Lay: accLay, Parent: outerEnv}

	if ref.Sub == nil {
		t, ok := p.cat.Get(ref.Table)
		if !ok {
			return nil, nil, fmt.Errorf("exec: unknown table %q", ref.Table)
		}
		lay := NewLayout(ref.Name(), schemaNames(t))
		tableEnv := &Env{Lay: lay, Parent: accEnv}

		// Try index-nested-loop: probes may reference the accumulated row.
		inner := p.chooseAccessPath(t, ref.Name(), lay, tableEnv, remaining, c, usedOuter)
		if ie, ok := inner.(*IndexEqScan); ok {
			var err error
			inner, err = p.attachResidualsToScan(ie, tableEnv, remaining, c, usedOuter)
			if err != nil {
				return nil, nil, err
			}
			return &NestedLoopJoin{Outer: acc, Inner: inner}, Concat(accLay, lay), nil
		}

		// Hash join on an equality conjunct split across the two sides.
		standaloneEnv := &Env{Lay: lay, Parent: outerEnv}
		lk, rk, used := p.findHashKeys(accEnv, standaloneEnv, *remaining, c, usedOuter)
		if len(lk) > 0 {
			removeConjuncts(remaining, used)
			scan := &SeqScan{Table: t}
			right, err := p.attachResidualsToScan(scan, standaloneEnv, remaining, c, usedOuter)
			if err != nil {
				return nil, nil, err
			}
			join := &HashJoin{Left: acc, Right: right, LeftKeys: lk, RightKeys: rk}
			combined := Concat(accLay, lay)
			node, err := p.attachResiduals(join, combined, remaining, outerEnv, c, usedOuter)
			if err != nil {
				return nil, nil, err
			}
			return node, combined, nil
		}

		// Fallback: nested loop with residuals on the inner scan (which can
		// see the accumulated row through the ctx stack).
		scan := &SeqScan{Table: t}
		innerN, err := p.attachResidualsToScan(scan, tableEnv, remaining, c, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		return &NestedLoopJoin{Outer: acc, Inner: innerN}, Concat(accLay, lay), nil
	}

	// Derived table on the right: plan it standalone, then hash join if an
	// equality conjunct applies, else nested loop over a cached materialize.
	node, subLay, err := p.planSelect(ref.Sub, outerEnv, c, usedOuter)
	if err != nil {
		return nil, nil, err
	}
	lay, err := derivedLayout(ref, subLay)
	if err != nil {
		return nil, nil, err
	}
	standaloneEnv := &Env{Lay: lay, Parent: outerEnv}
	node, err = p.attachResiduals(node, lay, remaining, outerEnv, c, usedOuter)
	if err != nil {
		return nil, nil, err
	}
	accEnv2 := &Env{Lay: accLay, Parent: outerEnv}
	lk, rk, used := p.findHashKeys(accEnv2, standaloneEnv, *remaining, c, usedOuter)
	combined := Concat(accLay, lay)
	if len(lk) > 0 {
		removeConjuncts(remaining, used)
		join := &HashJoin{Left: acc, Right: node, LeftKeys: lk, RightKeys: rk}
		out, err := p.attachResiduals(join, combined, remaining, outerEnv, c, usedOuter)
		if err != nil {
			return nil, nil, err
		}
		return out, combined, nil
	}
	join := &NestedLoopJoin{Outer: acc, Inner: &CachedMaterialize{Input: node}}
	out, err := p.attachResiduals(join, combined, remaining, outerEnv, c, usedOuter)
	if err != nil {
		return nil, nil, err
	}
	return out, combined, nil
}

// findHashKeys looks for equality conjuncts with one side compiling in the
// left env and the other in the right env.
func (p *Planner) findHashKeys(leftEnv, rightEnv *Env, conjuncts []sql.Expr, c *compiler, usedOuter *bool) (lk, rk []scalarFn, used []int) {
	for ci, conj := range conjuncts {
		b, ok := conj.(*sql.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lf, lerr := c.compileExpr(b.L, leftEnv, usedOuter)
		rf, rerr := c.compileExpr(b.R, rightEnv, usedOuter)
		if lerr == nil && rerr == nil && !exprRefsLayout(b.L, rightEnv.Lay) && !exprRefsLayout(b.R, leftEnv.Lay) {
			lk = append(lk, lf)
			rk = append(rk, rf)
			used = append(used, ci)
			continue
		}
		lf2, lerr2 := c.compileExpr(b.R, leftEnv, usedOuter)
		rf2, rerr2 := c.compileExpr(b.L, rightEnv, usedOuter)
		if lerr2 == nil && rerr2 == nil && !exprRefsLayout(b.R, rightEnv.Lay) && !exprRefsLayout(b.L, leftEnv.Lay) {
			lk = append(lk, lf2)
			rk = append(rk, rf2)
			used = append(used, ci)
		}
	}
	return lk, rk, used
}

// exprRefsLayout reports whether e references any column of lay.
func exprRefsLayout(e sql.Expr, lay *Layout) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *sql.Literal, *sql.Param:
		return false
	case *sql.ColumnRef:
		return lay.Has(ex.Table, ex.Name)
	case *sql.Unary:
		return exprRefsLayout(ex.E, lay)
	case *sql.Binary:
		return exprRefsLayout(ex.L, lay) || exprRefsLayout(ex.R, lay)
	case *sql.IsNull:
		return exprRefsLayout(ex.E, lay)
	case *sql.FuncCall:
		for _, a := range ex.Args {
			if exprRefsLayout(a, lay) {
				return true
			}
		}
		return false
	case *sql.InList:
		if exprRefsLayout(ex.E, lay) {
			return true
		}
		for _, it := range ex.Items {
			if exprRefsLayout(it, lay) {
				return true
			}
		}
		return false
	}
	return true // subqueries: conservative
}

// CachedMaterialize runs its input once and replays the result on
// subsequent Opens (for nested-loop joins over derived tables).
type CachedMaterialize struct {
	Input Node
	rows  []record.Row
	valid bool
	pos   int
}

// Open implements Node.
func (m *CachedMaterialize) Open(ctx *Ctx) error {
	if !m.valid {
		rows, err := runPlan(m.Input, ctx)
		if err != nil {
			return err
		}
		m.rows = rows
		m.valid = true
	}
	m.pos = 0
	return nil
}

// Next implements Node.
func (m *CachedMaterialize) Next(*Ctx) (record.Row, error) {
	if m.pos >= len(m.rows) {
		return nil, nil
	}
	r := m.rows[m.pos]
	m.pos++
	return r, nil
}

// Close implements Node.
func (m *CachedMaterialize) Close() {}

// Clone implements Node. The materialized rows are not carried over: they
// belong to one execution's data snapshot, and a prepared statement must
// re-read the tables it scans on every execution.
func (m *CachedMaterialize) Clone() Node { return &CachedMaterialize{Input: m.Input.Clone()} }

// planAggregate rewrites the query block around a hash aggregate. Returns
// the new plan, env, rewritten select items and order-by list.
func (p *Planner) planAggregate(st *sql.SelectStmt, input Node, inEnv *Env, c *compiler, usedOuter *bool) (Node, *Env, []sql.SelectItem, []sql.OrderItem, error) {
	groupKeys := make(map[string]int, len(st.GroupBy))
	groupFns := make([]scalarFn, len(st.GroupBy))
	for i, g := range st.GroupBy {
		f, err := c.compileExpr(g, inEnv, usedOuter)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		groupFns[i] = f
		groupKeys[exprKey(g)] = i
	}
	var aggCalls []*sql.FuncCall

	rewrite := func(e sql.Expr) (sql.Expr, error) {
		return rewriteForAgg(e, groupKeys, &aggCalls)
	}

	items := make([]sql.SelectItem, len(st.Items))
	for i, it := range st.Items {
		if it.Star {
			return nil, nil, nil, nil, fmt.Errorf("exec: SELECT * not allowed with GROUP BY")
		}
		ne, err := rewrite(it.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		items[i] = sql.SelectItem{Expr: ne, Alias: it.Alias}
	}
	var having sql.Expr
	if st.Having != nil {
		ne, err := rewrite(st.Having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		having = ne
	}
	orderBy := make([]sql.OrderItem, len(st.OrderBy))
	for i, ob := range st.OrderBy {
		ne, err := rewrite(ob.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		orderBy[i] = sql.OrderItem{Expr: ne, Desc: ob.Desc}
	}

	specs := make([]aggSpec, len(aggCalls))
	for i, call := range aggCalls {
		kind, err := aggKindOf(call.Name)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		var arg scalarFn
		if !call.Star {
			if len(call.Args) != 1 {
				return nil, nil, nil, nil, fmt.Errorf("exec: %s takes one argument", call.Name)
			}
			arg, err = c.compileExpr(call.Args[0], inEnv, usedOuter)
			if err != nil {
				return nil, nil, nil, nil, err
			}
		}
		specs[i] = aggSpec{kind: kind, arg: arg}
	}

	postLay := &Layout{}
	for i := range st.GroupBy {
		postLay.Cols = append(postLay.Cols, BoundCol{Qual: "$grp", Name: fmt.Sprintf("g%d", i)})
	}
	for i := range aggCalls {
		postLay.Cols = append(postLay.Cols, BoundCol{Qual: "$agg", Name: fmt.Sprintf("a%d", i)})
	}
	node := Node(&Aggregate{Input: input, GroupFns: groupFns, Specs: specs})
	env := &Env{Lay: postLay, Parent: inEnv.Parent}
	if having != nil {
		pred, err := c.compileExpr(having, env, usedOuter)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		node = &Filter{Input: node, Pred: pred}
	}
	return node, env, items, orderBy, nil
}

// rewriteForAgg replaces group-by expressions with $grp references and
// aggregate calls with $agg references.
func rewriteForAgg(e sql.Expr, groupKeys map[string]int, aggs *[]*sql.FuncCall) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if gi, ok := groupKeys[exprKey(e)]; ok {
		return &sql.ColumnRef{Table: "$grp", Name: fmt.Sprintf("g%d", gi)}, nil
	}
	switch ex := e.(type) {
	case *sql.Literal, *sql.Param, *sql.Subquery, *sql.Exists:
		return e, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("exec: column %s must appear in GROUP BY or an aggregate", ex.Name)
	case *sql.Unary:
		inner, err := rewriteForAgg(ex.E, groupKeys, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: ex.Op, E: inner}, nil
	case *sql.Binary:
		l, err := rewriteForAgg(ex.L, groupKeys, aggs)
		if err != nil {
			return nil, err
		}
		r, err := rewriteForAgg(ex.R, groupKeys, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: ex.Op, L: l, R: r}, nil
	case *sql.IsNull:
		inner, err := rewriteForAgg(ex.E, groupKeys, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{Not: ex.Not, E: inner}, nil
	case *sql.FuncCall:
		if ex.Window != nil {
			return nil, fmt.Errorf("exec: window function %s cannot be combined with GROUP BY", ex.Name)
		}
		if !isAggregateName(ex.Name) {
			return nil, fmt.Errorf("exec: unknown function %s", ex.Name)
		}
		idx := len(*aggs)
		*aggs = append(*aggs, ex)
		return &sql.ColumnRef{Table: "$agg", Name: fmt.Sprintf("a%d", idx)}, nil
	}
	return e, nil
}

// planWindow materializes window-function results as appended columns and
// rewrites select items to reference them.
func (p *Planner) planWindow(items []sql.SelectItem, input Node, inEnv *Env, inLay *Layout, c *compiler, usedOuter *bool) (Node, *Env, []sql.SelectItem, error) {
	var winCalls []*sql.FuncCall
	newItems := make([]sql.SelectItem, len(items))
	for i, it := range items {
		if it.Star {
			newItems[i] = it
			continue
		}
		ne, err := collectWindows(it.Expr, &winCalls)
		if err != nil {
			return nil, nil, nil, err
		}
		newItems[i] = sql.SelectItem{Expr: ne, Alias: it.Alias}
	}
	specs := make([]windowSpec, len(winCalls))
	for i, call := range winCalls {
		if call.Name != "ROW_NUMBER" && call.Name != "RANK" {
			return nil, nil, nil, fmt.Errorf("exec: unsupported window function %s", call.Name)
		}
		spec := windowSpec{name: call.Name}
		for _, pe := range call.Window.PartitionBy {
			f, err := c.compileExpr(pe, inEnv, usedOuter)
			if err != nil {
				return nil, nil, nil, err
			}
			spec.partFns = append(spec.partFns, f)
		}
		for _, oe := range call.Window.OrderBy {
			f, err := c.compileExpr(oe.Expr, inEnv, usedOuter)
			if err != nil {
				return nil, nil, nil, err
			}
			spec.orderFns = append(spec.orderFns, f)
			spec.orderDesc = append(spec.orderDesc, oe.Desc)
		}
		specs[i] = spec
	}
	extLay := &Layout{Cols: append([]BoundCol(nil), inLay.Cols...)}
	for i := range winCalls {
		extLay.Cols = append(extLay.Cols, BoundCol{Qual: "$win", Name: fmt.Sprintf("w%d", i)})
	}
	node := &Window{Input: input, Specs: specs}
	return node, &Env{Lay: extLay, Parent: inEnv.Parent}, newItems, nil
}
