package exec

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/table"
)

// ExecCreateTable creates a table; a PRIMARY KEY column becomes a unique
// clustered index on that column (the physical design the paper assumes for
// TVisited(nid) under its "CluIndex" strategy).
func (p *Planner) ExecCreateTable(st *sql.CreateTableStmt) error {
	cols := make([]record.Column, len(st.Cols))
	var pk []int
	for i, cd := range st.Cols {
		cols[i] = record.Column{Name: cd.Name, Type: cd.Type}
		if cd.PrimaryKey {
			pk = append(pk, i)
		}
	}
	schema, err := record.NewSchema(cols...)
	if err != nil {
		return err
	}
	opts := table.Options{}
	if len(pk) > 0 {
		opts.ClusterOn = pk
		opts.ClusterUnique = true
	}
	_, err = p.cat.Create(st.Name, schema, opts)
	return err
}

// ExecCreateIndex creates a secondary index, or re-organizes an empty heap
// table into a clustered B+tree for CREATE CLUSTERED INDEX.
func (p *Planner) ExecCreateIndex(st *sql.CreateIndexStmt) error {
	t, ok := p.cat.Get(st.Table)
	if !ok {
		return fmt.Errorf("exec: unknown table %q", st.Table)
	}
	ords := make([]int, len(st.Cols))
	for i, cn := range st.Cols {
		ord := t.Schema.Ordinal(cn)
		if ord < 0 {
			return fmt.Errorf("exec: table %s has no column %q", st.Table, cn)
		}
		ords[i] = ord
	}
	if st.Clustered {
		return p.clusterize(t, ords, st.Unique)
	}
	_, err := t.CreateIndex(st.Name, ords, st.Unique)
	return err
}

// clusterize converts a table to clustered storage on the given columns.
// The table is rebuilt, so this is supported at any size but intended for
// load-then-index workflows.
func (p *Planner) clusterize(t *table.Table, cols []int, unique bool) error {
	if t.Clustered() != nil {
		return fmt.Errorf("exec: table %s already has a clustered index", t.Name)
	}
	// Drain rows, rebuild as clustered, re-insert.
	var rows []record.Row
	it := t.Scan()
	for it.Next() {
		rows = append(rows, it.Row().Clone())
	}
	if err := it.Err(); err != nil {
		return err
	}
	name := t.Name
	if err := p.cat.Drop(name); err != nil {
		return err
	}
	nt, err := p.cat.Create(name, t.Schema, table.Options{ClusterOn: cols, ClusterUnique: unique})
	if err != nil {
		return err
	}
	for _, ix := range t.Secondary {
		if _, err := nt.CreateIndex(ix.Name, ix.Cols, ix.Unique); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if _, err := nt.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// ExecDropTable removes a table.
func (p *Planner) ExecDropTable(st *sql.DropTableStmt) error {
	return p.cat.Drop(st.Name)
}

// ExecTruncate discards all rows of a table.
func (p *Planner) ExecTruncate(st *sql.TruncateStmt) (Result, error) {
	t, ok := p.cat.Get(st.Name)
	if !ok {
		return Result{}, fmt.Errorf("exec: unknown table %q", st.Name)
	}
	n := int64(t.RowCount())
	if err := t.Truncate(); err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: n}, nil
}
