package exec

import (
	"repro/internal/record"
	"repro/internal/table"
)

// Node is a Volcano-style plan operator. Open may be called again after
// Close (nested-loop joins re-open their inner side per outer row).
//
// Compiled plans double as prepared-statement templates: Clone returns a
// fresh operator tree sharing the immutable compiled parts (table handles,
// scalar functions, join keys) but none of the iteration state, so one
// cached plan can be executed by any number of concurrent statements.
type Node interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (record.Row, error) // nil, nil == end of stream
	Close()
	Clone() Node
}

// runPlan drains a plan into a materialized slice.
func runPlan(n Node, ctx *Ctx) ([]record.Row, error) {
	if err := n.Open(ctx); err != nil {
		return nil, err
	}
	defer n.Close()
	var out []record.Row
	for {
		r, err := n.Next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// planHasRow reports whether a plan yields at least one row (EXISTS).
func planHasRow(n Node, ctx *Ctx) (bool, error) {
	if err := n.Open(ctx); err != nil {
		return false, err
	}
	defer n.Close()
	r, err := n.Next(ctx)
	if err != nil {
		return false, err
	}
	return r != nil, nil
}

// --- SeqScan -----------------------------------------------------------------

// SeqScan reads every row of a table, applying an optional residual filter.
type SeqScan struct {
	Table    *table.Table
	Residual scalarFn // may be nil
	it       *table.Iterator
}

// Open implements Node.
func (s *SeqScan) Open(*Ctx) error {
	s.it = s.Table.Scan()
	return nil
}

// Next implements Node.
func (s *SeqScan) Next(ctx *Ctx) (record.Row, error) {
	for s.it.Next() {
		row := s.it.Row()
		if s.Residual != nil {
			v, err := s.Residual(ctx, row)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		return row, nil
	}
	return nil, s.it.Err()
}

// Close implements Node.
func (s *SeqScan) Close() { s.it = nil }

// Clone implements Node.
func (s *SeqScan) Clone() Node { return &SeqScan{Table: s.Table, Residual: s.Residual} }

// --- IndexEqScan ----------------------------------------------------------------

// IndexEqScan probes an index (or the clustered tree) with equality values
// computed at Open time; probe expressions may reference parameters and
// outer rows, which is how index-nested-loop joins and correlated EXISTS
// probes are realized.
type IndexEqScan struct {
	Table    *table.Table
	Index    *table.Index // nil => clustered index
	KeyFns   []scalarFn
	Residual scalarFn // may be nil

	tit *table.Iterator
	iit *table.IndexIterator
}

// Open implements Node.
func (s *IndexEqScan) Open(ctx *Ctx) error {
	vals := make([]record.Value, len(s.KeyFns))
	for i, f := range s.KeyFns {
		v, err := f(ctx, nil)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	if s.Index == nil {
		s.tit = s.Table.ScanClusteredPrefix(vals)
	} else {
		s.iit = s.Table.LookupEq(s.Index, vals)
	}
	return nil
}

// Next implements Node.
func (s *IndexEqScan) Next(ctx *Ctx) (record.Row, error) {
	for {
		var row record.Row
		if s.tit != nil {
			if !s.tit.Next() {
				return nil, s.tit.Err()
			}
			row = s.tit.Row()
		} else {
			if !s.iit.Next() {
				return nil, s.iit.Err()
			}
			row = s.iit.Row()
		}
		if s.Residual != nil {
			v, err := s.Residual(ctx, row)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		return row, nil
	}
}

// Close implements Node.
func (s *IndexEqScan) Close() { s.tit, s.iit = nil, nil }

// Clone implements Node.
func (s *IndexEqScan) Clone() Node {
	return &IndexEqScan{Table: s.Table, Index: s.Index, KeyFns: s.KeyFns, Residual: s.Residual}
}

// --- Filter / Project -----------------------------------------------------------

// Filter drops rows failing the predicate.
type Filter struct {
	Input Node
	Pred  scalarFn
}

// Open implements Node.
func (f *Filter) Open(ctx *Ctx) error { return f.Input.Open(ctx) }

// Next implements Node.
func (f *Filter) Next(ctx *Ctx) (record.Row, error) {
	for {
		r, err := f.Input.Next(ctx)
		if err != nil || r == nil {
			return r, err
		}
		v, err := f.Pred(ctx, r)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

// Close implements Node.
func (f *Filter) Close() { f.Input.Close() }

// Clone implements Node.
func (f *Filter) Clone() Node { return &Filter{Input: f.Input.Clone(), Pred: f.Pred} }

// Project computes output columns from input rows.
type Project struct {
	Input Node
	Fns   []scalarFn
}

// Open implements Node.
func (p *Project) Open(ctx *Ctx) error { return p.Input.Open(ctx) }

// Next implements Node.
func (p *Project) Next(ctx *Ctx) (record.Row, error) {
	r, err := p.Input.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	out := make(record.Row, len(p.Fns))
	for i, f := range p.Fns {
		v, err := f(ctx, r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Node.
func (p *Project) Close() { p.Input.Close() }

// Clone implements Node.
func (p *Project) Clone() Node { return &Project{Input: p.Input.Clone(), Fns: p.Fns} }

// --- ValuesNode -------------------------------------------------------------------

// ValuesNode emits a fixed set of rows (SELECT without FROM emits one empty
// row so constant projections work).
type ValuesNode struct {
	Rows []record.Row
	pos  int
}

// Open implements Node.
func (v *ValuesNode) Open(*Ctx) error {
	v.pos = 0
	return nil
}

// Next implements Node.
func (v *ValuesNode) Next(*Ctx) (record.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Node.
func (v *ValuesNode) Close() {}

// Clone implements Node.
func (v *ValuesNode) Clone() Node { return &ValuesNode{Rows: v.Rows} }
