package exec

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/sql"
)

// scalarFn evaluates a compiled expression against the current row.
type scalarFn func(ctx *Ctx, row record.Row) (record.Value, error)

// compiler carries compilation state shared across one statement.
type compiler struct {
	planner *Planner
	params  int // number of placeholders expected (validated by rdb)
	ids     int // sub-plan id allocator (per-execution state lives in Ctx)
}

// newID allocates a statement-unique id for a sub-plan or memo slot.
func (c *compiler) newID() int {
	c.ids++
	return c.ids
}

// compileExpr compiles e for rows shaped by env. usedOuter is set when the
// expression captures columns from an enclosing env level (i.e. it is
// correlated).
func (c *compiler) compileExpr(e sql.Expr, env *Env, usedOuter *bool) (scalarFn, error) {
	switch ex := e.(type) {
	case *sql.Literal:
		v := ex.Val
		return func(*Ctx, record.Row) (record.Value, error) { return v, nil }, nil

	case *sql.Param:
		idx := ex.Index
		return func(ctx *Ctx, _ record.Row) (record.Value, error) {
			if idx >= len(ctx.Params) {
				return record.Value{}, fmt.Errorf("exec: missing parameter %d", idx+1)
			}
			return ctx.Params[idx], nil
		}, nil

	case *sql.ColumnRef:
		res, err := env.resolve(ex.Table, ex.Name)
		if err != nil {
			return nil, err
		}
		if res.levelsUp == 0 {
			idx := res.idx
			return func(_ *Ctx, row record.Row) (record.Value, error) {
				if idx >= len(row) {
					return record.Value{}, fmt.Errorf("exec: row too short for column %d", idx)
				}
				return row[idx], nil
			}, nil
		}
		if usedOuter != nil {
			*usedOuter = true
		}
		lv, idx := res.levelsUp, res.idx
		return func(ctx *Ctx, _ record.Row) (record.Value, error) {
			outer := ctx.Outer(lv)
			if idx >= len(outer) {
				return record.Value{}, fmt.Errorf("exec: outer row too short for column %d", idx)
			}
			return outer[idx], nil
		}, nil

	case *sql.Unary:
		inner, err := c.compileExpr(ex.E, env, usedOuter)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "-":
			return func(ctx *Ctx, row record.Row) (record.Value, error) {
				v, err := inner(ctx, row)
				if err != nil || v.Null {
					return v, err
				}
				switch v.Typ {
				case record.TInt:
					return record.Int(-v.I), nil
				case record.TFloat:
					return record.Float(-v.F), nil
				}
				return record.Value{}, fmt.Errorf("exec: unary minus on %s", v.Typ)
			}, nil
		case "NOT":
			return func(ctx *Ctx, row record.Row) (record.Value, error) {
				v, err := inner(ctx, row)
				if err != nil {
					return record.Value{}, err
				}
				return record.Bool(!v.Truthy()), nil
			}, nil
		}
		return nil, fmt.Errorf("exec: unknown unary op %q", ex.Op)

	case *sql.Binary:
		l, err := c.compileExpr(ex.L, env, usedOuter)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(ex.R, env, usedOuter)
		if err != nil {
			return nil, err
		}
		return compileBinary(ex.Op, l, r)

	case *sql.IsNull:
		inner, err := c.compileExpr(ex.E, env, usedOuter)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			return record.Bool(v.Null != not), nil
		}, nil

	case *sql.InList:
		inner, err := c.compileExpr(ex.E, env, usedOuter)
		if err != nil {
			return nil, err
		}
		items := make([]scalarFn, len(ex.Items))
		for i, it := range ex.Items {
			f, err := c.compileExpr(it, env, usedOuter)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		not := ex.Not
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			if v.Null {
				return record.Bool(false), nil
			}
			for _, f := range items {
				iv, err := f(ctx, row)
				if err != nil {
					return record.Value{}, err
				}
				if record.Equal(v, iv) {
					return record.Bool(!not), nil
				}
			}
			return record.Bool(not), nil
		}, nil

	case *sql.FuncCall:
		return nil, fmt.Errorf("exec: function %s not allowed in this context (aggregates/window functions must appear in SELECT items)", ex.Name)

	case *sql.Subquery:
		return c.compileScalarSubquery(ex.Select, env, usedOuter)

	case *sql.Exists:
		return c.compileExists(ex, env, usedOuter)
	}
	return nil, fmt.Errorf("exec: unsupported expression %T", e)
}

func compileBinary(op string, l, r scalarFn) (scalarFn, error) {
	switch op {
	case "AND":
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			if !lv.Truthy() {
				return record.Bool(false), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			return record.Bool(rv.Truthy()), nil
		}, nil
	case "OR":
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			if lv.Truthy() {
				return record.Bool(true), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			return record.Bool(rv.Truthy()), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			if lv.Null || rv.Null {
				// Simplified three-valued logic: UNKNOWN behaves as FALSE.
				return record.Bool(false), nil
			}
			cmp := record.Compare(lv, rv)
			var ok bool
			switch op {
			case "=":
				ok = cmp == 0
			case "<>":
				ok = cmp != 0
			case "<":
				ok = cmp < 0
			case "<=":
				ok = cmp <= 0
			case ">":
				ok = cmp > 0
			case ">=":
				ok = cmp >= 0
			}
			return record.Bool(ok), nil
		}, nil
	case "+", "-", "*", "/":
		return func(ctx *Ctx, row record.Row) (record.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return record.Value{}, err
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("exec: unknown binary op %q", op)
}

func arith(op string, a, b record.Value) (record.Value, error) {
	if a.Null || b.Null {
		return record.Value{Null: true, Typ: record.TInt}, nil
	}
	if a.Typ == record.TText || b.Typ == record.TText {
		if op == "+" {
			return record.Text(a.String() + b.String()), nil
		}
		return record.Value{}, fmt.Errorf("exec: %s not defined on TEXT", op)
	}
	if a.Typ == record.TInt && b.Typ == record.TInt {
		switch op {
		case "+":
			return record.Int(a.I + b.I), nil
		case "-":
			return record.Int(a.I - b.I), nil
		case "*":
			return record.Int(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return record.Value{}, fmt.Errorf("exec: division by zero")
			}
			return record.Int(a.I / b.I), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return record.Float(af + bf), nil
	case "-":
		return record.Float(af - bf), nil
	case "*":
		return record.Float(af * bf), nil
	case "/":
		if bf == 0 {
			return record.Value{}, fmt.Errorf("exec: division by zero")
		}
		return record.Float(af / bf), nil
	}
	return record.Value{}, fmt.Errorf("exec: unknown arithmetic op %q", op)
}

// compileScalarSubquery plans the subquery with the current env as parent;
// uncorrelated subqueries are evaluated once per execution and memoized.
// Both the plan instance and the memo live in the Ctx (keyed by a
// statement-unique id), never in the closure: the compiled plan is shared
// by every execution of a prepared statement, concurrently.
func (c *compiler) compileScalarSubquery(sel *sql.SelectStmt, env *Env, usedOuter *bool) (scalarFn, error) {
	var subUsedOuter bool
	plan, layout, err := c.planner.planSelect(sel, env, c, &subUsedOuter)
	if err != nil {
		return nil, err
	}
	if len(layout.Cols) != 1 {
		return nil, fmt.Errorf("exec: scalar subquery must return one column, got %d", len(layout.Cols))
	}
	if subUsedOuter && usedOuter != nil {
		*usedOuter = true
	}
	correlated := subUsedOuter
	id := c.newID()
	return func(ctx *Ctx, row record.Row) (record.Value, error) {
		if !correlated {
			if v, ok := ctx.memoLoad(id); ok {
				return v, nil
			}
		}
		inst := ctx.instance(id, plan)
		ctx.Push(row)
		rows, err := runPlan(inst, ctx)
		ctx.Pop()
		if err != nil {
			return record.Value{}, err
		}
		var out record.Value
		switch len(rows) {
		case 0:
			out = record.Value{Null: true}
		case 1:
			out = rows[0][0]
		default:
			return record.Value{}, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
		}
		if !correlated {
			ctx.memoStore(id, out)
		}
		return out, nil
	}, nil
}

func (c *compiler) compileExists(ex *sql.Exists, env *Env, usedOuter *bool) (scalarFn, error) {
	var subUsedOuter bool
	plan, _, err := c.planner.planSelect(ex.Select, env, c, &subUsedOuter)
	if err != nil {
		return nil, err
	}
	if subUsedOuter && usedOuter != nil {
		*usedOuter = true
	}
	correlated := subUsedOuter
	not := ex.Not
	id := c.newID()
	return func(ctx *Ctx, row record.Row) (record.Value, error) {
		if !correlated {
			if v, ok := ctx.memoLoad(id); ok {
				return v, nil
			}
		}
		inst := ctx.instance(id, plan)
		ctx.Push(row)
		found, err := planHasRow(inst, ctx)
		ctx.Pop()
		if err != nil {
			return record.Value{}, err
		}
		out := record.Bool(found != not)
		if !correlated {
			ctx.memoStore(id, out)
		}
		return out, nil
	}, nil
}

// exprKey renders an expression to a canonical string, used to match GROUP
// BY expressions against select items and window partition keys.
func exprKey(e sql.Expr) string {
	switch ex := e.(type) {
	case *sql.Literal:
		return "lit:" + ex.Val.String()
	case *sql.Param:
		return fmt.Sprintf("param:%d", ex.Index)
	case *sql.ColumnRef:
		return "col:" + strings.ToLower(ex.Table) + "." + strings.ToLower(ex.Name)
	case *sql.Unary:
		return ex.Op + "(" + exprKey(ex.E) + ")"
	case *sql.Binary:
		return "(" + exprKey(ex.L) + ex.Op + exprKey(ex.R) + ")"
	case *sql.IsNull:
		return fmt.Sprintf("isnull:%v(%s)", ex.Not, exprKey(ex.E))
	case *sql.InList:
		parts := make([]string, len(ex.Items))
		for i, it := range ex.Items {
			parts[i] = exprKey(it)
		}
		return fmt.Sprintf("in:%v(%s;%s)", ex.Not, exprKey(ex.E), strings.Join(parts, ","))
	case *sql.FuncCall:
		parts := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			parts[i] = exprKey(a)
		}
		s := ex.Name + "(" + strings.Join(parts, ",")
		if ex.Star {
			s += "*"
		}
		return s + ")"
	default:
		return fmt.Sprintf("%p", e) // subqueries never match by fingerprint
	}
}

// exprRefsQual reports whether e syntactically references the given table
// alias, or references an unqualified name that the table's layout defines.
// Used to decide whether an expression is safe to evaluate as an index
// probe before the table's own row exists.
func exprRefsQual(e sql.Expr, qual string, lay *Layout) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *sql.Literal, *sql.Param:
		return false
	case *sql.ColumnRef:
		if strings.EqualFold(ex.Table, qual) && ex.Table != "" {
			return true
		}
		if ex.Table == "" && lay.Has("", ex.Name) {
			return true
		}
		return false
	case *sql.Unary:
		return exprRefsQual(ex.E, qual, lay)
	case *sql.Binary:
		return exprRefsQual(ex.L, qual, lay) || exprRefsQual(ex.R, qual, lay)
	case *sql.IsNull:
		return exprRefsQual(ex.E, qual, lay)
	case *sql.InList:
		if exprRefsQual(ex.E, qual, lay) {
			return true
		}
		for _, it := range ex.Items {
			if exprRefsQual(it, qual, lay) {
				return true
			}
		}
		return false
	case *sql.FuncCall:
		for _, a := range ex.Args {
			if exprRefsQual(a, qual, lay) {
				return true
			}
		}
		return false
	case *sql.Subquery, *sql.Exists:
		// Conservatively assume subqueries may reference anything.
		return true
	}
	return true
}

// collectAggregates walks e, replacing aggregate FuncCalls with references
// to synthetic columns "$aggN" and appending specs to aggs. Window calls are
// rejected here (handled by the window path).
func collectAggregates(e sql.Expr, aggs *[]*sql.FuncCall) (sql.Expr, error) {
	switch ex := e.(type) {
	case nil:
		return nil, nil
	case *sql.Literal, *sql.Param, *sql.ColumnRef:
		return e, nil
	case *sql.Unary:
		inner, err := collectAggregates(ex.E, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: ex.Op, E: inner}, nil
	case *sql.Binary:
		l, err := collectAggregates(ex.L, aggs)
		if err != nil {
			return nil, err
		}
		r, err := collectAggregates(ex.R, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: ex.Op, L: l, R: r}, nil
	case *sql.IsNull:
		inner, err := collectAggregates(ex.E, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{Not: ex.Not, E: inner}, nil
	case *sql.FuncCall:
		if ex.Window != nil {
			return nil, fmt.Errorf("exec: window function %s not allowed with GROUP BY", ex.Name)
		}
		if !isAggregateName(ex.Name) {
			return nil, fmt.Errorf("exec: unknown function %s", ex.Name)
		}
		idx := len(*aggs)
		*aggs = append(*aggs, ex)
		return &sql.ColumnRef{Table: "$agg", Name: fmt.Sprintf("a%d", idx)}, nil
	case *sql.Subquery, *sql.Exists, *sql.InList:
		return e, nil
	}
	return e, nil
}

func isAggregateName(n string) bool {
	switch n {
	case "MIN", "MAX", "SUM", "COUNT", "AVG":
		return true
	}
	return false
}

// hasAggregate reports whether e contains an aggregate call outside any
// window spec.
func hasAggregate(e sql.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *sql.Unary:
		return hasAggregate(ex.E)
	case *sql.Binary:
		return hasAggregate(ex.L) || hasAggregate(ex.R)
	case *sql.IsNull:
		return hasAggregate(ex.E)
	case *sql.FuncCall:
		return ex.Window == nil && isAggregateName(ex.Name)
	case *sql.InList:
		if hasAggregate(ex.E) {
			return true
		}
		for _, it := range ex.Items {
			if hasAggregate(it) {
				return true
			}
		}
	}
	return false
}

// hasWindow reports whether e contains a window function call.
func hasWindow(e sql.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *sql.Unary:
		return hasWindow(ex.E)
	case *sql.Binary:
		return hasWindow(ex.L) || hasWindow(ex.R)
	case *sql.IsNull:
		return hasWindow(ex.E)
	case *sql.FuncCall:
		return ex.Window != nil
	}
	return false
}

// collectWindows replaces window FuncCalls with "$win" column references.
func collectWindows(e sql.Expr, wins *[]*sql.FuncCall) (sql.Expr, error) {
	switch ex := e.(type) {
	case nil:
		return nil, nil
	case *sql.Literal, *sql.Param, *sql.ColumnRef, *sql.Subquery, *sql.Exists, *sql.InList:
		return e, nil
	case *sql.Unary:
		inner, err := collectWindows(ex.E, wins)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: ex.Op, E: inner}, nil
	case *sql.Binary:
		l, err := collectWindows(ex.L, wins)
		if err != nil {
			return nil, err
		}
		r, err := collectWindows(ex.R, wins)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: ex.Op, L: l, R: r}, nil
	case *sql.IsNull:
		inner, err := collectWindows(ex.E, wins)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{Not: ex.Not, E: inner}, nil
	case *sql.FuncCall:
		if ex.Window == nil {
			return nil, fmt.Errorf("exec: bare function %s outside GROUP BY context", ex.Name)
		}
		idx := len(*wins)
		*wins = append(*wins, ex)
		return &sql.ColumnRef{Table: "$win", Name: fmt.Sprintf("w%d", idx)}, nil
	}
	return e, nil
}
