// Package exec contains the planner and Volcano-style executors that turn
// parsed SQL into answers over the table layer: scans, index probes,
// nested-loop and hash joins, hash aggregation, the ROW_NUMBER window
// function, sorting, and the DML/MERGE drivers.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/record"
)

// BoundCol is one column visible in a row flowing through the executor.
type BoundCol struct {
	Qual string // table alias ("" for synthetic columns)
	Name string
}

// Layout names the columns of rows produced by a plan node.
type Layout struct {
	Cols []BoundCol
}

// NewLayout builds a layout qualifying every column with qual.
func NewLayout(qual string, names []string) *Layout {
	l := &Layout{Cols: make([]BoundCol, len(names))}
	for i, n := range names {
		l.Cols[i] = BoundCol{Qual: qual, Name: n}
	}
	return l
}

// Concat returns a layout of a's columns followed by b's.
func Concat(a, b *Layout) *Layout {
	out := &Layout{Cols: make([]BoundCol, 0, len(a.Cols)+len(b.Cols))}
	out.Cols = append(out.Cols, a.Cols...)
	out.Cols = append(out.Cols, b.Cols...)
	return out
}

// Resolve finds the ordinal of qual.name (qual may be empty). It reports an
// error for ambiguous or missing columns.
func (l *Layout) Resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range l.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %s", name)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %s.%s", qual, name)
	}
	return found, nil
}

// Has reports whether qual.name resolves uniquely in this layout.
func (l *Layout) Has(qual, name string) bool {
	_, err := l.Resolve(qual, name)
	return err == nil
}

// HasQual reports whether any column carries the given qualifier.
func (l *Layout) HasQual(qual string) bool {
	for _, c := range l.Cols {
		if strings.EqualFold(c.Qual, qual) {
			return true
		}
	}
	return false
}

// Env is a chain of layouts for correlated name resolution: a scan inside a
// join or subquery sees its own layout first, then each enclosing row.
type Env struct {
	Lay    *Layout
	Parent *Env
}

// resolution is the result of resolving a column through an env chain.
type resolution struct {
	levelsUp int // 0 = current layout, 1 = parent row on the ctx stack, ...
	idx      int
}

func (e *Env) resolve(qual, name string) (resolution, error) {
	level := 0
	for env := e; env != nil; env = env.Parent {
		if env.Lay != nil && env.Lay.Has(qual, name) {
			idx, err := env.Lay.Resolve(qual, name)
			if err != nil {
				return resolution{}, err
			}
			return resolution{levelsUp: level, idx: idx}, nil
		}
		level++
	}
	return resolution{}, fmt.Errorf("exec: unknown column %s.%s", qual, name)
}

// Ctx carries statement-scoped execution state: parameter values, the
// stack of outer rows for correlated evaluation (stack[len-1] is the row of
// the immediately enclosing env level), and the per-execution instances of
// shared sub-plans. The last part is what makes compiled plans reusable as
// prepared statements: a cached plan template holds subquery plans and
// memoizable results that must be private to one execution (fresh data
// snapshot, no cross-goroutine state), so they live here, keyed by the
// compiler-assigned sub-plan id, instead of inside the shared closures.
type Ctx struct {
	Params []record.Value
	stack  []record.Row
	insts  map[int]Node
	memo   map[int]record.Value
}

// instance returns this execution's private clone of a shared sub-plan
// template, creating it on first use.
func (c *Ctx) instance(id int, tmpl Node) Node {
	if c.insts == nil {
		c.insts = make(map[int]Node)
	}
	n, ok := c.insts[id]
	if !ok {
		n = tmpl.Clone()
		c.insts[id] = n
	}
	return n
}

// memoLoad reads a memoized uncorrelated subquery result for this execution.
func (c *Ctx) memoLoad(id int) (record.Value, bool) {
	v, ok := c.memo[id]
	return v, ok
}

// memoStore memoizes an uncorrelated subquery result for this execution.
func (c *Ctx) memoStore(id int, v record.Value) {
	if c.memo == nil {
		c.memo = make(map[int]record.Value)
	}
	c.memo[id] = v
}

// Push makes row visible as the next outer level.
func (c *Ctx) Push(row record.Row) { c.stack = append(c.stack, row) }

// Pop removes the innermost outer row.
func (c *Ctx) Pop() { c.stack = c.stack[:len(c.stack)-1] }

// Outer returns the row levelsUp levels above the current one (levelsUp>=1).
func (c *Ctx) Outer(levelsUp int) record.Row {
	return c.stack[len(c.stack)-levelsUp]
}

// StackDepth reports the current correlation depth (tests).
func (c *Ctx) StackDepth() int { return len(c.stack) }
