package exec

import (
	"repro/internal/record"
	"repro/internal/sql"
)

// PreparedSelect is a compiled, re-executable query: the plan tree is an
// immutable template, and every Run clones it into a private instance
// before execution, so one prepared query can serve any number of
// concurrent executions (the DB's shared read latch admits many at once).
// Parameters (? placeholders) bind through the Ctx at Run time.
type PreparedSelect struct {
	plan   Node
	layout *Layout
}

// PrepareSelect compiles a query into a reusable plan.
func (p *Planner) PrepareSelect(st *sql.SelectStmt) (*PreparedSelect, error) {
	c := &compiler{planner: p}
	plan, lay, err := p.planSelect(st, nil, c, nil)
	if err != nil {
		return nil, err
	}
	return &PreparedSelect{plan: plan, layout: lay}, nil
}

// Columns names the result columns.
func (ps *PreparedSelect) Columns() []string {
	cols := make([]string, len(ps.layout.Cols))
	for i, c := range ps.layout.Cols {
		cols[i] = c.Name
	}
	return cols
}

// Run executes the prepared query against a fresh plan instance,
// materializing the result rows.
func (ps *PreparedSelect) Run(ctx *Ctx) ([]record.Row, error) {
	return runPlan(ps.plan.Clone(), ctx)
}
