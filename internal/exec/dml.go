package exec

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/table"
)

// Result reports the outcome of a DML statement — the engine's SQLCA. The
// paper's drivers read "the number of affected tuples from SQL
// communication area of database (SQLCA)" to detect termination, so every
// writer returns an exact affected-row count.
type Result struct {
	RowsAffected int64
}

// PreparedDML is a compiled, re-executable mutating statement. Preparation
// does all parsing-adjacent work once — target resolution, index-probe
// selection, expression compilation — and Run binds fresh parameter values
// through the Ctx. The compiled state is immutable; per-execution state
// (sub-plan instances, memoized subqueries) lives in the Ctx, so one
// PreparedDML may be shared by a plan cache.
type PreparedDML struct {
	run func(ctx *Ctx) (Result, error)
}

// Run executes the prepared statement with the parameters bound in ctx.
func (p *PreparedDML) Run(ctx *Ctx) (Result, error) { return p.run(ctx) }

// targetMatch is one target row addressed by a DML statement.
type targetMatch struct {
	loc table.Loc
	row record.Row
}

// probePlan describes an index probe derived from equality conjuncts.
type probePlan struct {
	index  *table.Index // nil = clustered
	keyFns []scalarFn
}

// analyzeTargetAccess splits conjuncts into an optional index probe on t
// plus a residual predicate. env must be the env in which the conjuncts are
// evaluated per candidate target row (target layout at level 0).
func (p *Planner) analyzeTargetAccess(t *table.Table, qual string, lay *Layout, env *Env, conjuncts []sql.Expr, c *compiler) (*probePlan, scalarFn, error) {
	remaining := append([]sql.Expr(nil), conjuncts...)
	node := p.chooseAccessPath(t, qual, lay, env, &remaining, c, nil)
	var probe *probePlan
	if ie, ok := node.(*IndexEqScan); ok {
		probe = &probePlan{index: ie.Index, keyFns: ie.KeyFns}
	}
	var residual scalarFn
	if len(remaining) > 0 {
		pred, err := c.compileExpr(andAll(remaining), env, nil)
		if err != nil {
			return nil, nil, err
		}
		residual = pred
	}
	return probe, residual, nil
}

// findTargets materializes the target rows matching the probe+residual.
// Materializing first keeps scans stable while the caller mutates the table.
func findTargets(ctx *Ctx, t *table.Table, probe *probePlan, residual scalarFn) ([]targetMatch, error) {
	var out []targetMatch
	check := func(loc table.Loc, row record.Row) error {
		if residual != nil {
			v, err := residual(ctx, row)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		out = append(out, targetMatch{loc: loc, row: row})
		return nil
	}
	if probe != nil {
		vals := make([]record.Value, len(probe.keyFns))
		for i, f := range probe.keyFns {
			v, err := f(ctx, nil)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if probe.index == nil {
			it := t.ScanClusteredPrefix(vals)
			for it.Next() {
				if err := check(it.Loc(), it.Row()); err != nil {
					return nil, err
				}
			}
			if err := it.Err(); err != nil {
				return nil, err
			}
		} else {
			it := t.LookupEq(probe.index, vals)
			for it.Next() {
				if err := check(it.Loc(), it.Row()); err != nil {
					return nil, err
				}
			}
			if err := it.Err(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	it := t.Scan()
	for it.Next() {
		if err := check(it.Loc(), it.Row()); err != nil {
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// PrepareInsert compiles an INSERT statement.
func (p *Planner) PrepareInsert(st *sql.InsertStmt) (*PreparedDML, error) {
	t, ok := p.cat.Get(st.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", st.Table)
	}
	ordinals, err := insertOrdinals(t, st.Cols)
	if err != nil {
		return nil, err
	}
	c := &compiler{planner: p}
	if st.Select != nil {
		plan, lay, err := p.planSelect(st.Select, nil, c, nil)
		if err != nil {
			return nil, err
		}
		if len(lay.Cols) != len(ordinals) {
			return nil, fmt.Errorf("exec: INSERT expects %d columns, SELECT returns %d", len(ordinals), len(lay.Cols))
		}
		return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
			rows, err := runPlan(plan.Clone(), ctx)
			if err != nil {
				return Result{}, err
			}
			var n int64
			for _, r := range rows {
				row := buildInsertRow(t, ordinals, r)
				if _, err := t.Insert(row); err != nil {
					return Result{}, err
				}
				n++
			}
			return Result{RowsAffected: n}, nil
		}}, nil
	}
	env := &Env{Lay: &Layout{}}
	rowFns := make([][]scalarFn, len(st.Rows))
	for ri, valueExprs := range st.Rows {
		if len(valueExprs) != len(ordinals) {
			return nil, fmt.Errorf("exec: INSERT expects %d values, got %d", len(ordinals), len(valueExprs))
		}
		fns := make([]scalarFn, len(valueExprs))
		for i, e := range valueExprs {
			f, err := c.compileExpr(e, env, nil)
			if err != nil {
				return nil, err
			}
			fns[i] = f
		}
		rowFns[ri] = fns
	}
	return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
		var n int64
		for _, fns := range rowFns {
			vals := make(record.Row, len(fns))
			for i, f := range fns {
				v, err := f(ctx, nil)
				if err != nil {
					return Result{}, err
				}
				vals[i] = v
			}
			row := buildInsertRow(t, ordinals, vals)
			if _, err := t.Insert(row); err != nil {
				return Result{}, err
			}
			n++
		}
		return Result{RowsAffected: n}, nil
	}}, nil
}

// ExecInsert compiles and runs an INSERT statement.
func (p *Planner) ExecInsert(st *sql.InsertStmt, ctx *Ctx) (Result, error) {
	pd, err := p.PrepareInsert(st)
	if err != nil {
		return Result{}, err
	}
	return pd.Run(ctx)
}

func insertOrdinals(t *table.Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		out := make([]int, t.Schema.Len())
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(cols))
	for i, cn := range cols {
		ord := t.Schema.Ordinal(cn)
		if ord < 0 {
			return nil, fmt.Errorf("exec: table %s has no column %q", t.Name, cn)
		}
		out[i] = ord
	}
	return out, nil
}

func buildInsertRow(t *table.Table, ordinals []int, vals record.Row) record.Row {
	row := make(record.Row, t.Schema.Len())
	for i := range row {
		row[i] = record.NullOf(t.Schema.Columns[i].Type)
	}
	for i, ord := range ordinals {
		row[ord] = vals[i]
	}
	return row
}

// PrepareDelete compiles a DELETE statement.
func (p *Planner) PrepareDelete(st *sql.DeleteStmt) (*PreparedDML, error) {
	t, ok := p.cat.Get(st.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", st.Table)
	}
	if st.Where == nil {
		// Fast path: full truncate.
		return &PreparedDML{run: func(*Ctx) (Result, error) {
			n := int64(t.RowCount())
			if err := t.Truncate(); err != nil {
				return Result{}, err
			}
			return Result{RowsAffected: n}, nil
		}}, nil
	}
	c := &compiler{planner: p}
	lay := NewLayout(st.Table, schemaNames(t))
	env := &Env{Lay: lay}
	probe, residual, err := p.analyzeTargetAccess(t, st.Table, lay, env, splitConjuncts(st.Where), c)
	if err != nil {
		return nil, err
	}
	return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
		matches, err := findTargets(ctx, t, probe, residual)
		if err != nil {
			return Result{}, err
		}
		for _, m := range matches {
			if err := t.Delete(m.loc, m.row); err != nil {
				return Result{}, err
			}
		}
		return Result{RowsAffected: int64(len(matches))}, nil
	}}, nil
}

// ExecDelete compiles and runs a DELETE statement.
func (p *Planner) ExecDelete(st *sql.DeleteStmt, ctx *Ctx) (Result, error) {
	pd, err := p.PrepareDelete(st)
	if err != nil {
		return Result{}, err
	}
	return pd.Run(ctx)
}

// PrepareUpdate compiles an UPDATE statement, including the
// PostgreSQL-style UPDATE ... FROM form the TSQL dialect uses to emulate
// MERGE.
func (p *Planner) PrepareUpdate(st *sql.UpdateStmt) (*PreparedDML, error) {
	t, ok := p.cat.Get(st.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", st.Table)
	}
	qual := st.Alias
	if qual == "" {
		qual = st.Table
	}
	c := &compiler{planner: p}
	lay := NewLayout(qual, schemaNames(t))

	if st.From == nil {
		env := &Env{Lay: lay}
		probe, residual, err := p.analyzeTargetAccess(t, qual, lay, env, splitConjuncts(st.Where), c)
		if err != nil {
			return nil, err
		}
		setFns, setOrds, err := p.compileSets(t, st.Sets, env, c)
		if err != nil {
			return nil, err
		}
		return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
			matches, err := findTargets(ctx, t, probe, residual)
			if err != nil {
				return Result{}, err
			}
			var n int64
			for _, m := range matches {
				newRow, changed, err := applySets(ctx, m.row, setFns, setOrds)
				if err != nil {
					return Result{}, err
				}
				if !changed {
					n++ // SQL counts matched rows even if values are identical
					continue
				}
				if _, err := t.Update(m.loc, m.row, newRow); err != nil {
					return Result{}, err
				}
				n++
			}
			return Result{RowsAffected: n}, nil
		}}, nil
	}

	// UPDATE ... FROM source: for each source row, probe the target.
	srcPlan, srcLay, err := p.planFromRef(st.From, c)
	if err != nil {
		return nil, err
	}
	srcEnv := &Env{Lay: srcLay}
	targetEnv := &Env{Lay: lay, Parent: srcEnv}
	probe, residual, err := p.analyzeTargetAccess(t, qual, lay, targetEnv, splitConjuncts(st.Where), c)
	if err != nil {
		return nil, err
	}
	setFns, setOrds, err := p.compileSets(t, st.Sets, targetEnv, c)
	if err != nil {
		return nil, err
	}
	return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
		srcRows, err := runPlan(srcPlan.Clone(), ctx)
		if err != nil {
			return Result{}, err
		}
		touched := make(map[string]bool)
		var n int64
		for _, srcRow := range srcRows {
			ctx.Push(srcRow)
			matches, err := findTargets(ctx, t, probe, residual)
			if err != nil {
				ctx.Pop()
				return Result{}, err
			}
			for _, m := range matches {
				lk := locKey(m.loc)
				if touched[lk] {
					continue // first matching source row wins
				}
				touched[lk] = true
				newRow, changed, err := applySets(ctx, m.row, setFns, setOrds)
				if err != nil {
					ctx.Pop()
					return Result{}, err
				}
				if changed {
					if _, err := t.Update(m.loc, m.row, newRow); err != nil {
						ctx.Pop()
						return Result{}, err
					}
				}
				n++
			}
			ctx.Pop()
		}
		return Result{RowsAffected: n}, nil
	}}, nil
}

// ExecUpdate compiles and runs an UPDATE statement.
func (p *Planner) ExecUpdate(st *sql.UpdateStmt, ctx *Ctx) (Result, error) {
	pd, err := p.PrepareUpdate(st)
	if err != nil {
		return Result{}, err
	}
	return pd.Run(ctx)
}

func locKey(l table.Loc) string {
	if l.Key != nil {
		return "k" + string(l.Key)
	}
	return fmt.Sprintf("r%d.%d", l.RID.Page, l.RID.Slot)
}

// planFromRef plans a table or derived-table reference standalone.
func (p *Planner) planFromRef(ref *sql.TableRef, c *compiler) (Node, *Layout, error) {
	if ref.Sub != nil {
		node, subLay, err := p.planSelect(ref.Sub, nil, c, nil)
		if err != nil {
			return nil, nil, err
		}
		lay, err := derivedLayout(ref, subLay)
		return node, lay, err
	}
	t, ok := p.cat.Get(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("exec: unknown table %q", ref.Table)
	}
	return &SeqScan{Table: t}, NewLayout(ref.Name(), schemaNames(t)), nil
}

// compileSets compiles SET clauses; the env's level-0 row is the target row
// (level 1 the source row for UPDATE-FROM / MERGE).
func (p *Planner) compileSets(t *table.Table, sets []sql.SetClause, env *Env, c *compiler) ([]scalarFn, []int, error) {
	fns := make([]scalarFn, len(sets))
	ords := make([]int, len(sets))
	for i, s := range sets {
		ord := t.Schema.Ordinal(s.Col)
		if ord < 0 {
			return nil, nil, fmt.Errorf("exec: table %s has no column %q", t.Name, s.Col)
		}
		f, err := c.compileExpr(s.Val, env, nil)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = f
		ords[i] = ord
	}
	return fns, ords, nil
}

// applySets computes the updated row; changed is false when every assigned
// value already equals the current one.
func applySets(ctx *Ctx, row record.Row, fns []scalarFn, ords []int) (record.Row, bool, error) {
	newRow := row.Clone()
	changed := false
	for i, f := range fns {
		v, err := f(ctx, row) // evaluated against the OLD row, SQL semantics
		if err != nil {
			return nil, false, err
		}
		if record.Compare(newRow[ords[i]], v) != 0 || newRow[ords[i]].Null != v.Null {
			changed = true
		}
		newRow[ords[i]] = v
	}
	return newRow, changed, nil
}

// mergeBranch is one compiled WHEN MATCHED branch.
type mergeBranch struct {
	cond    scalarFn
	setFns  []scalarFn
	setOrds []int
	del     bool
}

// PrepareMerge compiles a MERGE statement: for every source row, probe the
// target by the ON condition, then apply the first applicable WHEN branch.
// Affected rows = updates + deletes + inserts, matching the SQLCA counter
// the paper's Algorithm 1/2 read for termination.
func (p *Planner) PrepareMerge(st *sql.MergeStmt) (*PreparedDML, error) {
	t, ok := p.cat.Get(st.Target)
	if !ok {
		return nil, fmt.Errorf("exec: unknown target table %q", st.Target)
	}
	qual := st.TargetAlias
	if qual == "" {
		qual = st.Target
	}
	c := &compiler{planner: p}
	srcPlan, srcLay, err := p.planFromRef(st.Source, c)
	if err != nil {
		return nil, err
	}
	srcEnv := &Env{Lay: srcLay}
	targetLay := NewLayout(qual, schemaNames(t))
	targetEnv := &Env{Lay: targetLay, Parent: srcEnv}

	probe, residual, err := p.analyzeTargetAccess(t, qual, targetLay, targetEnv, splitConjuncts(st.On), c)
	if err != nil {
		return nil, err
	}

	branches := make([]mergeBranch, len(st.Matched))
	for i, m := range st.Matched {
		var mb mergeBranch
		if m.And != nil {
			f, err := c.compileExpr(m.And, targetEnv, nil)
			if err != nil {
				return nil, err
			}
			mb.cond = f
		}
		if m.Delete {
			mb.del = true
		} else {
			fns, ords, err := p.compileSets(t, m.Sets, targetEnv, c)
			if err != nil {
				return nil, err
			}
			mb.setFns, mb.setOrds = fns, ords
		}
		branches[i] = mb
	}

	var insCond scalarFn
	var insFns []scalarFn
	var insOrds []int
	if st.NotMatched != nil {
		ordinals, err := insertOrdinals(t, st.NotMatched.Cols)
		if err != nil {
			return nil, err
		}
		if len(st.NotMatched.Vals) != len(ordinals) {
			return nil, fmt.Errorf("exec: MERGE INSERT expects %d values, got %d", len(ordinals), len(st.NotMatched.Vals))
		}
		insOrds = ordinals
		for _, e := range st.NotMatched.Vals {
			f, err := c.compileExpr(e, srcEnv, nil)
			if err != nil {
				return nil, err
			}
			insFns = append(insFns, f)
		}
		if st.NotMatched.And != nil {
			f, err := c.compileExpr(st.NotMatched.And, srcEnv, nil)
			if err != nil {
				return nil, err
			}
			insCond = f
		}
	}
	hasInsert := st.NotMatched != nil

	return &PreparedDML{run: func(ctx *Ctx) (Result, error) {
		srcRows, err := runPlan(srcPlan.Clone(), ctx)
		if err != nil {
			return Result{}, err
		}
		touched := make(map[string]bool)
		var n int64
		for _, srcRow := range srcRows {
			ctx.Push(srcRow)
			matches, err := findTargets(ctx, t, probe, residual)
			if err != nil {
				ctx.Pop()
				return Result{}, err
			}
			if len(matches) == 0 {
				if hasInsert {
					ok := true
					if insCond != nil {
						v, err := insCond(ctx, srcRow)
						if err != nil {
							ctx.Pop()
							return Result{}, err
						}
						ok = v.Truthy()
					}
					if ok {
						vals := make(record.Row, len(insFns))
						for i, f := range insFns {
							v, err := f(ctx, srcRow)
							if err != nil {
								ctx.Pop()
								return Result{}, err
							}
							vals[i] = v
						}
						row := buildInsertRow(t, insOrds, vals)
						if _, err := t.Insert(row); err != nil {
							ctx.Pop()
							return Result{}, err
						}
						n++
					}
				}
				ctx.Pop()
				continue
			}
			for _, m := range matches {
				lk := locKey(m.loc)
				if touched[lk] {
					continue
				}
				for _, br := range branches {
					if br.cond != nil {
						v, err := br.cond(ctx, m.row)
						if err != nil {
							ctx.Pop()
							return Result{}, err
						}
						if !v.Truthy() {
							continue
						}
					}
					touched[lk] = true
					if br.del {
						if err := t.Delete(m.loc, m.row); err != nil {
							ctx.Pop()
							return Result{}, err
						}
						n++
						break
					}
					newRow, changed, err := applySets(ctx, m.row, br.setFns, br.setOrds)
					if err != nil {
						ctx.Pop()
						return Result{}, err
					}
					if changed {
						if _, err := t.Update(m.loc, m.row, newRow); err != nil {
							ctx.Pop()
							return Result{}, err
						}
					}
					n++
					break
				}
			}
			ctx.Pop()
		}
		return Result{RowsAffected: n}, nil
	}}, nil
}

// ExecMerge compiles and runs a MERGE statement.
func (p *Planner) ExecMerge(st *sql.MergeStmt, ctx *Ctx) (Result, error) {
	pd, err := p.PrepareMerge(st)
	if err != nil {
		return Result{}, err
	}
	return pd.Run(ctx)
}
