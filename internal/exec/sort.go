package exec

import (
	"fmt"
	"sort"

	"repro/internal/record"
)

// Sort materializes its input and orders it by the key functions.
type Sort struct {
	Input Node
	Keys  []scalarFn
	Desc  []bool
	out   []record.Row
	pos   int
}

// Open implements Node.
func (s *Sort) Open(ctx *Ctx) error {
	s.pos = 0
	rows, err := runPlan(s.Input, ctx)
	if err != nil {
		return err
	}
	type keyed struct {
		row  record.Row
		keys []record.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		kv := make([]record.Value, len(s.Keys))
		for j, f := range s.Keys {
			v, err := f(ctx, r)
			if err != nil {
				return err
			}
			kv[j] = v
		}
		ks[i] = keyed{row: r, keys: kv}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range s.Keys {
			c := record.Compare(ks[a].keys[j], ks[b].keys[j])
			if c != 0 {
				if s.Desc[j] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.out = make([]record.Row, len(rows))
	for i := range ks {
		s.out[i] = ks[i].row
	}
	return nil
}

// Next implements Node.
func (s *Sort) Next(*Ctx) (record.Row, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	r := s.out[s.pos]
	s.pos++
	return r, nil
}

// Close implements Node.
func (s *Sort) Close() { s.out = nil }

// Clone implements Node.
func (s *Sort) Clone() Node { return &Sort{Input: s.Input.Clone(), Keys: s.Keys, Desc: s.Desc} }

// Limit emits at most N rows; N is an expression (TOP ?/LIMIT ?) evaluated
// at Open.
type Limit struct {
	Input Node
	N     scalarFn
	left  int64
}

// Open implements Node.
func (l *Limit) Open(ctx *Ctx) error {
	v, err := l.N(ctx, nil)
	if err != nil {
		return err
	}
	if v.Null || v.Typ != record.TInt || v.I < 0 {
		return fmt.Errorf("exec: TOP/LIMIT requires a non-negative integer, got %s", v)
	}
	l.left = v.I
	return l.Input.Open(ctx)
}

// Next implements Node.
func (l *Limit) Next(ctx *Ctx) (record.Row, error) {
	if l.left <= 0 {
		return nil, nil
	}
	r, err := l.Input.Next(ctx)
	if err != nil || r == nil {
		return r, err
	}
	l.left--
	return r, nil
}

// Close implements Node.
func (l *Limit) Close() { l.Input.Close() }

// Clone implements Node.
func (l *Limit) Clone() Node { return &Limit{Input: l.Input.Clone(), N: l.N} }

// Distinct removes duplicate rows (by order-preserving key encoding of the
// whole row).
type Distinct struct {
	Input Node
	seen  map[string]struct{}
}

// Open implements Node.
func (d *Distinct) Open(ctx *Ctx) error {
	d.seen = make(map[string]struct{})
	return d.Input.Open(ctx)
}

// Next implements Node.
func (d *Distinct) Next(ctx *Ctx) (record.Row, error) {
	for {
		r, err := d.Input.Next(ctx)
		if err != nil || r == nil {
			return r, err
		}
		key := string(record.EncodeKey(nil, r...))
		if _, dup := d.seen[key]; dup {
			continue
		}
		d.seen[key] = struct{}{}
		return r, nil
	}
}

// Close implements Node.
func (d *Distinct) Close() {
	d.Input.Close()
	d.seen = nil
}

// Clone implements Node.
func (d *Distinct) Clone() Node { return &Distinct{Input: d.Input.Clone()} }
