package labels

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rdb"
)

// builder carries one construction run.
type builder struct {
	ctx  context.Context
	sess *rdb.Session
	p    Params
	st   *BuildStats
}

// Build constructs the pruned 2-hop label index over the session's graph
// tables. The caller is responsible for exclusion against concurrent
// searches and graph mutation (the engine holds its query gate across the
// build). A cancelled ctx aborts the build at the next statement or
// relaxation round; the caller must then treat the index as not built (the
// engine leaves its label pointer nil, so partial label sets are never
// consulted).
func Build(ctx context.Context, sess *rdb.Session, p Params) (*Labels, *BuildStats, error) {
	if p.WMin < 1 {
		p.WMin = 1
	}
	if p.MaxIters <= 0 {
		p.MaxIters = 1 << 30
	}
	b := &builder{ctx: ctx, sess: sess, p: p, st: &BuildStats{}}
	start := time.Now()

	if err := b.createTables(); err != nil {
		return nil, nil, err
	}
	if err := b.rankDegrees(); err != nil {
		return nil, nil, err
	}

	// Process every node carrying at least one edge as a hub, in
	// degree-descending order — high-degree hubs first maximizes pruning
	// on power-law graphs (most shortest paths route through them, so
	// later passes collapse after a few waves). Isolated nodes need no
	// labels: they reach nothing and nothing reaches them, and the
	// distance query correctly yields NULL (unreachable) for them.
	for {
		hub, ok, err := b.pickHub()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		// Forward pass dist(hub, x) over outgoing edges feeds the
		// in-labels of every unpruned x; the backward pass dist(x, hub)
		// over incoming edges feeds the out-labels. Forward runs first so
		// the backward pass's prune queries already see (hub, hub, 0) in
		// TLabelIn — harmless, since no out-label for the current hub
		// exists yet and the prune join needs both sides.
		if err := b.pass(hub, true); err != nil {
			return nil, nil, err
		}
		if err := b.pass(hub, false); err != nil {
			return nil, nil, err
		}
		b.st.Hubs++
	}

	rowsOut, err := b.queryInt("SELECT COUNT(*) FROM " + TblOut)
	if err != nil {
		return nil, nil, err
	}
	rowsIn, err := b.queryInt("SELECT COUNT(*) FROM " + TblIn)
	if err != nil {
		return nil, nil, err
	}
	b.st.RowsOut = int(rowsOut)
	b.st.RowsIn = int(rowsIn)
	b.st.BuildTime = time.Since(start)
	lbl := &Labels{Hubs: b.st.Hubs, RowsOut: b.st.RowsOut, RowsIn: b.st.RowsIn}
	return lbl, b.st, nil
}

func (b *builder) exec(q string, args ...any) (int64, error) {
	res, err := b.sess.ExecContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, fmt.Errorf("labels: %w", err)
	}
	return res.RowsAffected, nil
}

func (b *builder) queryInt(q string, args ...any) (int64, error) {
	v, _, err := b.sess.QueryIntContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, fmt.Errorf("labels: %w", err)
	}
	return v, nil
}

// queryIntNull is queryInt with the NULL flag exposed.
func (b *builder) queryIntNull(q string, args ...any) (int64, bool, error) {
	v, null, err := b.sess.QueryIntContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, false, fmt.Errorf("labels: %w", err)
	}
	return v, null, nil
}

// createTables (re)creates every label relation. The label sets follow the
// engine's physical design; the working tables are always clustered, like
// the SegTable construction's TSeg. The two keep-analysis scratch tables
// are created here so the engine can rely on their existence whenever a
// label index is live.
func (b *builder) createTables() error {
	n, err := CreateTables(b.ctx, b.sess, b.p.Index)
	b.st.Statements += n
	return err
}

// CreateTables (re)creates every label relation under the given index
// mode, returning the number of statements issued. Exported so snapshot
// hydration can restore the DDL and bulk-load the label sets without
// running a build.
func CreateTables(ctx context.Context, sess *rdb.Session, index IndexMode) (int, error) {
	n := 0
	exec := func(q string) error {
		_, err := sess.ExecContext(ctx, q)
		n++
		if err != nil {
			return fmt.Errorf("labels: %w", err)
		}
		return nil
	}
	cat := sess.DB().Catalog()
	for _, tbl := range Tables() {
		if _, ok := cat.Get(tbl); ok {
			if err := exec("DROP TABLE " + tbl); err != nil {
				return n, err
			}
		}
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (nid INT, hub INT, dist INT)", TblOut),
		fmt.Sprintf("CREATE TABLE %s (nid INT, hub INT, dist INT)", TblIn),
	}
	switch index {
	case IndexClustered:
		stmts = append(stmts,
			fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlabelout_key ON %s (nid, hub)", TblOut),
			fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlabelin_key ON %s (nid, hub)", TblIn))
	case IndexSecondary:
		stmts = append(stmts,
			fmt.Sprintf("CREATE INDEX tlabelout_nid ON %s (nid)", TblOut),
			fmt.Sprintf("CREATE INDEX tlabelin_nid ON %s (nid)", TblIn))
	case IndexNone:
		// bare heaps; label scans degrade to full scans.
	}
	stmts = append(stmts,
		fmt.Sprintf("CREATE TABLE %s (nid INT, dist INT, f INT)", TblWork),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlblwork_nid ON %s (nid)", TblWork),
		fmt.Sprintf("CREATE TABLE %s (nid INT, cost INT)", TblExpand),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlblexpand_nid ON %s (nid)", TblExpand),
		fmt.Sprintf("CREATE TABLE %s (nid INT, deg INT)", TblDeg),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlbldeg_nid ON %s (nid)", TblDeg),
		fmt.Sprintf("CREATE TABLE %s (nid INT, deg INT)", TblDegIn),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlbldegin_nid ON %s (nid)", TblDegIn),
		fmt.Sprintf("CREATE TABLE %s (nid INT, dist INT)", TblScrTo),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlblto_nid ON %s (nid)", TblScrTo),
		fmt.Sprintf("CREATE TABLE %s (nid INT, dist INT)", TblScrFrom),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlblfrom_nid ON %s (nid)", TblScrFrom),
	)
	for _, q := range stmts {
		if err := exec(q); err != nil {
			return n, err
		}
	}
	return n, nil
}

// rankDegrees materializes total degree (in + out) per node into TLblDeg —
// the hub processing order. Nodes without edges never enter the ranking.
func (b *builder) rankDegrees() error {
	stmts := []string{
		fmt.Sprintf("INSERT INTO %s (nid, deg) SELECT fid, COUNT(*) FROM %s GROUP BY fid",
			TblDeg, b.p.EdgesTable),
		fmt.Sprintf("INSERT INTO %s (nid, deg) SELECT tid, COUNT(*) FROM %s GROUP BY tid",
			TblDegIn, b.p.EdgesTable),
		fmt.Sprintf("UPDATE %[1]s SET deg = %[1]s.deg + s.deg FROM %[2]s s WHERE %[1]s.nid = s.nid",
			TblDeg, TblDegIn),
		fmt.Sprintf("INSERT INTO %[1]s (nid, deg) SELECT s.nid, s.deg FROM %[2]s s "+
			"WHERE NOT EXISTS (SELECT nid FROM %[1]s g WHERE g.nid = s.nid)",
			TblDeg, TblDegIn),
	}
	for _, q := range stmts {
		if _, err := b.exec(q); err != nil {
			return err
		}
	}
	return nil
}

// pickHub pops the highest-degree unprocessed node off the ranking.
func (b *builder) pickHub() (int64, bool, error) {
	hub, null, err := b.queryIntNull(fmt.Sprintf(
		"SELECT TOP 1 nid FROM %[1]s WHERE deg = (SELECT MAX(deg) FROM %[1]s)", TblDeg))
	if err != nil {
		return 0, false, err
	}
	if null {
		return 0, false, nil // every node with an edge has been processed
	}
	if _, err := b.exec(fmt.Sprintf("DELETE FROM %s WHERE nid = ?", TblDeg), hub); err != nil {
		return 0, false, err
	}
	return hub, true, nil
}

// pass runs one pruned single-source relaxation from hub: forward over
// outgoing edges (dist(hub, x), feeding TLabelIn) or backward over
// incoming ones (dist(x, hub), feeding TLabelOut). The frontier rule is
// the SegTable construction's set-Dijkstra batch rule (§4.2): candidates
// below k*wmin, or at the global minimum, settle together; with positive
// weights every settled-and-expanded distance is final.
//
// The PLL twist is the prune step between settling and expansion: a
// settled candidate x whose distance is already matched by a detour
// through an earlier (higher-ranked) hub — the correlated label query
// d(hub, x) over the materialized TLabelOut/TLabelIn — flips to flag 3:
// never expanded, never labeled. The relaxation MERGE may later reopen a
// pruned node at a smaller distance (flag back to 0); it then re-enters a
// wave and the prune test re-applies at the improved distance, which is
// exactly the test the sequential algorithm would have run. Because this
// pass's own rows are materialized only at pass end, in-pass prune
// queries see earlier hubs' labels only — pruning is never more
// aggressive than classic PLL, so the Theorem-1 exactness induction
// holds, at the cost of slightly larger label sets.
func (b *builder) pass(hub int64, forward bool) error {
	joinCol, newCol := "fid", "tid"
	labelTbl := TblIn
	// Prune test: label-query the distance between the current hub and
	// the candidate, oriented with the pass direction.
	pruneQ := fmt.Sprintf(
		"UPDATE %[1]s SET f = 3 WHERE f = 2 AND (SELECT MIN(a.dist + b.dist) FROM %[2]s a, %[3]s b "+
			"WHERE a.nid = ? AND b.nid = %[1]s.nid AND a.hub = b.hub) <= %[1]s.dist",
		TblWork, TblOut, TblIn)
	if !forward {
		joinCol, newCol = "tid", "fid"
		labelTbl = TblOut
		pruneQ = fmt.Sprintf(
			"UPDATE %[1]s SET f = 3 WHERE f = 2 AND (SELECT MIN(a.dist + b.dist) FROM %[2]s a, %[3]s b "+
				"WHERE a.nid = %[1]s.nid AND b.nid = ? AND a.hub = b.hub) <= %[1]s.dist",
			TblWork, TblOut, TblIn)
	}
	if _, err := b.exec("DELETE FROM " + TblWork); err != nil {
		return err
	}
	if _, err := b.exec(fmt.Sprintf(
		"INSERT INTO %s (nid, dist, f) VALUES (?, 0, 0)", TblWork), hub); err != nil {
		return err
	}
	frontierQ := fmt.Sprintf(
		"UPDATE %[1]s SET f = 2 WHERE f = 0 AND (dist < ? OR dist = "+
			"(SELECT MIN(dist) FROM %[1]s WHERE f = 0))", TblWork)
	resetQ := fmt.Sprintf("UPDATE %s SET f = 1 WHERE f = 2", TblWork)
	srcQ := fmt.Sprintf(
		"SELECT out.%s, MIN(out.cost + q.dist) FROM %s q, %s out "+
			"WHERE q.nid = out.%s AND q.f = 2 GROUP BY out.%s",
		newCol, TblWork, b.p.EdgesTable, joinCol, newCol)
	mergeQ := fmt.Sprintf(
		"MERGE INTO %s AS target USING (%s) AS source (nid, cost) "+
			"ON (target.nid = source.nid) "+
			"WHEN MATCHED AND target.dist > source.cost THEN UPDATE SET dist = source.cost, f = 0 "+
			"WHEN NOT MATCHED THEN INSERT (nid, dist, f) VALUES (source.nid, source.cost, 0)",
		TblWork, srcQ)

	for k := int64(1); ; k++ {
		if err := rdb.ContextErr(b.ctx); err != nil {
			return fmt.Errorf("labels: build cancelled during pass from %d: %w", hub, err)
		}
		if int(k) > b.p.MaxIters {
			return fmt.Errorf("labels: pass from %d exceeded %d iterations", hub, b.p.MaxIters)
		}
		cnt, err := b.exec(frontierQ, k*b.p.WMin)
		if err != nil {
			return err
		}
		if cnt == 0 {
			break
		}
		b.st.Iterations++
		pruned, err := b.exec(pruneQ, hub)
		if err != nil {
			return err
		}
		b.st.Pruned += pruned
		// Expansion reads q.f = 2, so pruned candidates contribute no
		// relaxations — their whole subtree is covered by earlier hubs.
		if b.p.UseMerge {
			if _, err := b.exec(mergeQ); err != nil {
				return err
			}
		} else {
			if err := b.relaxNoMerge(srcQ); err != nil {
				return err
			}
		}
		if _, err := b.exec(resetQ); err != nil {
			return err
		}
	}
	// Materialize the pass: every settled, unpruned node gets a label row
	// for this hub (including the hub's own (hub, hub, 0) — the root
	// settles at 0 and no earlier-hub detour beats 0 with positive
	// weights). Unreached nodes get no row: the distance join treats a
	// missing hub pair as unreachable, which is exact.
	_, err := b.exec(fmt.Sprintf(
		"INSERT INTO %s (nid, hub, dist) SELECT nid, ?, dist FROM %s WHERE f <> 3",
		labelTbl, TblWork), hub)
	return err
}

// relaxNoMerge emulates the relaxation MERGE with UPDATE + INSERT through
// the TLblExpand scratch table (PostgreSQL-9 profile).
func (b *builder) relaxNoMerge(srcQ string) error {
	stmts := []string{
		"DELETE FROM " + TblExpand,
		fmt.Sprintf("INSERT INTO %s (nid, cost) %s", TblExpand, srcQ),
		fmt.Sprintf("UPDATE %[1]s SET dist = s.cost, f = 0 FROM %[2]s s "+
			"WHERE %[1]s.nid = s.nid AND %[1]s.dist > s.cost", TblWork, TblExpand),
		fmt.Sprintf("INSERT INTO %[1]s (nid, dist, f) SELECT s.nid, s.cost, 0 FROM %[2]s s "+
			"WHERE NOT EXISTS (SELECT nid FROM %[1]s v WHERE v.nid = s.nid)", TblWork, TblExpand),
	}
	for _, q := range stmts {
		if _, err := b.exec(q); err != nil {
			return err
		}
	}
	return nil
}
