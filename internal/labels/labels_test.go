package labels

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// loadGraphTables materializes g into bare TNodes/TEdges relations the way
// the engine's loader does, without depending on internal/core.
func loadGraphTables(t *testing.T, sess *rdb.Session, g *graph.Graph) {
	t.Helper()
	stmts := []string{
		"CREATE TABLE TNodes (nid INT PRIMARY KEY)",
		"CREATE TABLE TEdges (fid INT, tid INT, cost INT)",
		"CREATE CLUSTERED INDEX tedges_fid ON TEdges (fid)",
		"CREATE INDEX tedges_tid ON TEdges (tid)",
	}
	for _, q := range stmts {
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	for nid := int64(0); nid < g.N; nid++ {
		if _, err := sess.Exec("INSERT INTO TNodes (nid) VALUES (?)", nid); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges {
		if _, err := sess.Exec("INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)",
			e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
}

func buildParams(g *graph.Graph, useMerge bool) Params {
	return Params{
		NodesTable: "TNodes",
		EdgesTable: "TEdges",
		WMin:       g.WMin(),
		MaxIters:   int(16*g.N) + 1024,
		UseMerge:   useMerge,
		Index:      IndexClustered,
	}
}

// TestBuildCoverExact is the package-level exactness check: after a build,
// the 2-hop query MIN(out(s).dist + in(t).dist) over common hubs must
// equal the true distance for every pair — and come back NULL exactly for
// the unreachable ones — on both the MERGE and UPDATE+INSERT relaxation
// paths.
func TestBuildCoverExact(t *testing.T) {
	base := graph.Random(40, 100, 7)
	g, err := graph.New(base.N+1, base.Edges) // node g.N-1 is isolated
	if err != nil {
		t.Fatal(err)
	}
	for _, useMerge := range []bool{true, false} {
		name := "merge"
		profile := rdb.ProfileDBMSX
		if !useMerge {
			name = "update-insert"
			profile = rdb.ProfilePostgreSQL9
		}
		t.Run(name, func(t *testing.T) {
			db, err := rdb.Open(rdb.Options{Profile: profile})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			sess := db.Session()
			defer sess.Close()
			loadGraphTables(t, sess, g)

			lbl, st, err := Build(context.Background(), sess, buildParams(g, useMerge))
			if err != nil {
				t.Fatal(err)
			}
			if lbl.Hubs == 0 || lbl.Rows() == 0 {
				t.Fatalf("empty index: %+v", lbl)
			}
			if st.Hubs != lbl.Hubs || st.RowsOut != lbl.RowsOut || st.RowsIn != lbl.RowsIn {
				t.Fatalf("stats disagree with index: %+v vs %+v", st, lbl)
			}
			// The pruned build must stay well under the quadratic naive
			// cover (every node labeled with every hub).
			if naive := int(g.N) * lbl.Hubs * 2; lbl.Rows() >= naive {
				t.Errorf("no pruning: %d rows >= naive %d", lbl.Rows(), naive)
			}

			distQ := "SELECT MIN(a.dist + b.dist) FROM " + TblOut + " a, " + TblIn +
				" b WHERE a.nid = ? AND b.nid = ? AND a.hub = b.hub"
			for s := int64(0); s < g.N; s++ {
				for d := int64(0); d < g.N; d++ {
					if s == d {
						// Trivial pairs are answered before the index is
						// consulted (an edgeless node has no labels at all).
						continue
					}
					got, null, err := sess.QueryInt(distQ, s, d)
					if err != nil {
						t.Fatal(err)
					}
					ref := graph.MDJ(g, s, d)
					if ref.Found == null {
						t.Fatalf("s=%d t=%d: found=%v but query null=%v", s, d, ref.Found, null)
					}
					if ref.Found && got != ref.Distance {
						t.Fatalf("s=%d t=%d: label distance %d, reference %d", s, d, got, ref.Distance)
					}
				}
			}
		})
	}
}

// TestBuildEdgeless covers the degenerate graph with nodes but no edges:
// zero hubs, zero rows, and that empty cover is still exact (every s != t
// pair is unreachable).
func TestBuildEdgeless(t *testing.T) {
	g, err := graph.New(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session()
	defer sess.Close()
	loadGraphTables(t, sess, g)
	lbl, _, err := Build(context.Background(), sess, buildParams(g, true))
	if err != nil {
		t.Fatal(err)
	}
	if lbl.Hubs != 0 || lbl.Rows() != 0 {
		t.Fatalf("edgeless graph built a non-empty index: %+v", lbl)
	}
}

// TestBuildCancellation checks that a pre-cancelled context aborts the
// build with the context error instead of running to completion.
func TestBuildCancellation(t *testing.T) {
	g := graph.Random(30, 80, 3)
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session()
	defer sess.Close()
	loadGraphTables(t, sess, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Build(ctx, sess, buildParams(g, true)); err == nil {
		t.Fatal("cancelled build must fail")
	}
}
