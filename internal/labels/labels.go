// Package labels implements a relational pruned 2-hop (hub) label index
// in the spirit of pruned landmark labeling ("Shortest Paths in
// Microseconds", Akiba et al.): for every node v two label sets are
// materialized as relations,
//
//	TLabelOut(nid, hub, dist)  — dist(nid, hub) for hubs on v's out-side
//	TLabelIn (nid, hub, dist)  — dist(hub, nid) for hubs on v's in-side
//
// with a composite index on (nid, hub). The 2-hop cover property makes
// every exact distance a single merge-join over two index scans:
//
//	d(s,t) = MIN(a.dist + b.dist)
//	         FROM TLabelOut a, TLabelIn b
//	         WHERE a.nid = s AND b.nid = t AND a.hub = b.hub
//
// — no frontier loop, no touch of TEdges. Construction processes every
// node with at least one edge as a hub in degree-descending order and runs
// one pruned single-source pass per direction, using the same batch
// set-Dijkstra statement machinery as internal/oracle: candidates settle
// in wmin-widened waves, and a settled candidate x is pruned (flag 3, not
// expanded, not labeled) when the labels of the already-processed hubs
// prove d(hub, x) via an earlier hub is no longer than the settled
// distance. Pruning keeps the index near-linear on hub-heavy graphs while
// preserving exactness: a pruned pair is by definition covered by an
// earlier hub, and the classic PLL induction (Akiba et al., Theorem 1)
// carries over because each pass prunes against fully materialized earlier
// labels only (this pass's rows land at pass end, so the batch prunes no
// more aggressively than the sequential algorithm).
//
// The package speaks to the database through an rdb.Session; the engine
// integration (build latching, AlgLabel, the planner's "labels" decision,
// mutation keep-or-invalidate analysis) lives in internal/core.
package labels

import (
	"fmt"
	"time"
)

// Relation names owned by the label subsystem.
const (
	// TblOut holds the out-label sets: one row per (nid, hub) with
	// dist(nid, hub).
	TblOut = "TLabelOut"
	// TblIn holds the in-label sets: one row per (nid, hub) with
	// dist(hub, nid).
	TblIn = "TLabelIn"
	// TblWork is the pruned single-source relaxation working set.
	TblWork = "TLblWork"
	// TblExpand is the relaxation scratch table for profiles without MERGE.
	TblExpand = "TLblExpand"
	// TblDeg is the degree ranking that orders hub processing.
	TblDeg = "TLblDeg"
	// TblDegIn is the in-degree half of the degree ranking.
	TblDegIn = "TLblDegIn"
	// TblScrTo / TblScrFrom are scratch relations for the engine's
	// decremental keep-analysis: label distances to / from a mutated
	// edge's endpoints, materialized per check.
	TblScrTo   = "TLblTo"
	TblScrFrom = "TLblFrom"
)

// Tables lists every relation the label index owns, for loaders that need
// to drop them when the graph is replaced.
func Tables() []string {
	return []string{TblOut, TblIn, TblWork, TblExpand, TblDeg, TblDegIn, TblScrTo, TblScrFrom}
}

// IndexMode mirrors the engine's physical-design axis for the two label
// relations (the working tables are always clustered, like TSeg).
type IndexMode int

const (
	// IndexClustered stores each label set as a B+tree on (nid, hub).
	IndexClustered IndexMode = iota
	// IndexSecondary keeps heaps plus non-clustered indexes on nid.
	IndexSecondary
	// IndexNone keeps bare heaps; every label scan is a full scan.
	IndexNone
)

// Params is the full build parameterization the engine passes down.
type Params struct {
	// NodesTable / EdgesTable name the graph relations to read.
	NodesTable string
	EdgesTable string
	// WMin is the minimal edge weight (drives the set-Dijkstra frontier
	// widening, like the SegTable construction rule).
	WMin int64
	// MaxIters caps relaxation rounds per pass as a safety net.
	MaxIters int
	// UseMerge selects the MERGE relaxation step; profiles without MERGE
	// get the UPDATE + INSERT emulation.
	UseMerge bool
	// Index is the physical design for TLabelOut / TLabelIn.
	Index IndexMode
}

// Labels describes a built hub-label index. It carries only scalar
// metadata — the label entries themselves live in TLabelOut / TLabelIn.
type Labels struct {
	// Hubs is the number of nodes processed as hubs (every node with at
	// least one edge).
	Hubs int
	// RowsOut / RowsIn are |TLabelOut| and |TLabelIn|.
	RowsOut int
	RowsIn  int
}

// Rows is the total label entry count.
func (l *Labels) Rows() int { return l.RowsOut + l.RowsIn }

// BuildStats reports one label construction.
type BuildStats struct {
	Hubs       int
	RowsOut    int
	RowsIn     int
	Pruned     int64 // settled candidates discarded by the prune rule
	Iterations int   // relaxation rounds across all hubs and directions
	Statements int   // SQL statements issued
	BuildTime  time.Duration
}

func (s *BuildStats) String() string {
	return fmt.Sprintf("Labels(hubs=%d): rows=%d+%d pruned=%d iters=%d stmts=%d time=%v",
		s.Hubs, s.RowsOut, s.RowsIn, s.Pruned, s.Iterations, s.Statements,
		s.BuildTime.Round(time.Millisecond))
}
