package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
	"repro/internal/shard"
)

// The sharding benchmark: the same cold, seek-bound regime as the parallel
// sweep (evicted pools, 15ms per page transfer), but run on the bench
// power-law graph — Barabási–Albert attachment with unit weights, so
// distances are hop counts and each superstep's frontier is a whole BFS
// level of hub-scattered nodes. That is the workload partition parallelism
// targets: hash partitioning spreads every frontier across all shards, and
// each shard's E-operator pages in its slice of the edge table concurrently
// while the single engine fetches the same pages serially inside one
// statement. (The segmented-ring workload of the parallel sweep is the
// opposite regime — a near-singleton weighted frontier leaves nothing to
// fan out and only prices coordination.) The comparison is a single engine
// against partition-parallel ShardedEngines at k = 1, 2, 4. Every
// configuration serves the same pairs with the same
// client count, and every shard gets the same buffer-pool budget as the
// single engine — each shard models one machine of a scale-out deployment,
// so aggregate memory grows with k exactly as it would across real nodes.
// The sharded rows then isolate what partitioning buys: per-superstep scans
// touch only the owner shard's (roughly 1/k-sized) visited table, and the
// frontier-exchange fan-out overlaps page waits across shards. The k=1 row
// has resources identical to the baseline and prices the pure coordination
// tax (superstep round trips against one shard); k=2 and k=4 must first win
// that back. No portal sketch is built — the headline numbers come from the
// superstep protocol alone.
//
// The pool is sized so the graph's hot working set does NOT fit one
// machine (5.8k pages loaded vs 256 per engine): the single engine pays a
// serial page wait per edge-index probe inside each expansion statement,
// while the sharded engines overlap waits two ways — across shards (the
// exchange fan-out) and within each shard (frontier prefetch warms the
// adjacency pages with concurrent probes before the expansion scans them).
// The k=1 row prices what the protocol costs when neither axis can win:
// one undersized machine pays the superstep round trips and a prefetch
// pass whose warmed pages its own pool cannot keep resident.
//
// Each sharded result is checked against the single-engine distances
// before it is reported: a speedup with wrong answers is not a speedup.

// shardBenchLthd is 1, not the 20 the weighted benches use: SegTable
// construction is an all-sources Dijkstra bounded by lthd, and on a
// unit-weight power-law graph radius 20 covers nearly every (u,v) pair —
// O(n^2) segments. Radius 1 is the analog of the weighted benches'
// ~1-hop-deep setting (avg weight 50, lthd 20).
const (
	shardBenchPool    = 256
	shardBenchSeek    = 15 * time.Millisecond
	shardBenchLthd    = 1
	shardBenchClients = 4
	shardBenchQueries = 16
)

// RunShard measures cold sharded QPS against the single-engine baseline.
func RunShard(c Config) (*Table, error) {
	n := c.scale(12288)
	g, err := unitPowerGraph(n)
	if err != nil {
		return nil, err
	}
	pairs := graph.RandomQueries(g, shardBenchQueries, 7)

	// Load and index at memory speed; the seek cost is armed per engine
	// just before its measured phase.
	c.logf("shard: baseline engine (n=%d, pool=%d, seek=%v)", n, shardBenchPool, shardBenchSeek)
	base, err := makeEngine(g, rdb.Options{
		BufferPoolPages: shardBenchPool,
	}, core.Options{CacheSize: -1})
	if err != nil {
		return nil, err
	}
	defer base.close()
	if _, err := base.eng.BuildSegTable(shardBenchLthd); err != nil {
		return nil, err
	}
	base.db.SetSimulatedIOLatency(shardBenchSeek)

	shardKs := []int{1, 2, 4}
	engines := make([]*shard.ShardedEngine, len(shardKs))
	for i, k := range shardKs {
		c.logf("shard: opening %d-shard engine", k)
		// Options.BufferPoolPages is the total split across shards; pass
		// k pools so each shard carries the single-engine machine profile.
		se, err := shard.Open(g, shard.Options{
			Shards:          k,
			Lthd:            shardBenchLthd,
			BufferPoolPages: k * shardBenchPool,
		})
		if err != nil {
			return nil, err
		}
		defer se.Close()
		se.SetSimulatedIOLatency(shardBenchSeek)
		engines[i] = se
	}

	tab := &Table{
		ID: "shard",
		Title: fmt.Sprintf("Partition-parallel FEM: cold QPS vs single engine, %d-node unit-weight power-law graph (%d random pairs, %d clients), pool=%d pages per engine, seek=%v",
			n, shardBenchQueries, shardBenchClients, shardBenchPool, shardBenchSeek),
		Header: []string{"alg", "engine", "queries", "time", "queries/sec", "p50", "p99", "speedup", "supersteps", "exchanged"},
	}
	for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgBSEG} {
		// Baseline: the unsharded engine under the read gate, same clients.
		if err := base.db.Pool().EvictAll(); err != nil {
			return nil, err
		}
		io0 := base.db.Stats().IO
		want, bm, err := measureShardLevel(pairs, func(ctx context.Context, s, t int64) (core.QueryResult, error) {
			return base.eng.Query(ctx, core.QueryRequest{Source: s, Target: t, Alg: alg})
		})
		if err != nil {
			return nil, err
		}
		io1 := base.db.Stats().IO
		c.logf("shard: %v single: %.1f queries/sec (p50 %v, p99 %v) reads=%d readDelay=%v", alg, bm.qps, bm.p50, bm.p99, io1.Reads-io0.Reads, io1.ReadDelay-io0.ReadDelay)
		tab.Rows = append(tab.Rows, []string{
			alg.String(), "single", fmt.Sprint(len(pairs)), ms(bm.dur),
			fmt.Sprintf("%.1f", bm.qps), bm.p50.Round(time.Microsecond).String(), bm.p99.Round(time.Microsecond).String(),
			"1.0x", "-", "-",
		})

		for i, k := range shardKs {
			se := engines[i]
			if err := se.EvictAll(); err != nil {
				return nil, err
			}
			st0 := se.Stats()
			sio0 := shardIOTotals(se, k)
			got, sm, err := measureShardLevel(pairs, func(ctx context.Context, s, t int64) (core.QueryResult, error) {
				return se.Query(ctx, core.QueryRequest{Source: s, Target: t, Alg: alg})
			})
			if err != nil {
				return nil, err
			}
			sio1 := shardIOTotals(se, k)
			for q := range pairs {
				if got[q] != want[q] {
					return nil, fmt.Errorf("shard: %v k=%d pair (%d,%d): distance %d, single engine says %d",
						alg, k, pairs[q][0], pairs[q][1], got[q], want[q])
				}
			}
			st1 := se.Stats()
			speedup := 0.0
			if bm.qps > 0 {
				speedup = sm.qps / bm.qps
			}
			c.logf("shard: %v k=%d: %.1f queries/sec (p50 %v, p99 %v, %.1fx) reads=%d readDelay=%v", alg, k, sm.qps, sm.p50, sm.p99, speedup, sio1.reads-sio0.reads, sio1.delay-sio0.delay)
			tab.Rows = append(tab.Rows, []string{
				alg.String(), fmt.Sprintf("%d-shard", k), fmt.Sprint(len(pairs)), ms(sm.dur),
				fmt.Sprintf("%.1f", sm.qps), sm.p50.Round(time.Microsecond).String(), sm.p99.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1fx", speedup),
				fmt.Sprint(st1.Supersteps - st0.Supersteps),
				fmt.Sprint(st1.Exchanged - st0.Exchanged),
			})
		}
	}
	return tab, nil
}

type shardIO struct {
	reads uint64
	delay time.Duration
}

func shardIOTotals(se *shard.ShardedEngine, k int) shardIO {
	var t shardIO
	for i := 0; i < k; i++ {
		io := se.Engine(i).DB().Stats().IO
		t.reads += io.Reads
		t.delay += io.ReadDelay
	}
	return t
}

// unitPowerGraph builds the bench power-law graph: Barabási–Albert
// preferential attachment (the paper's §5.1 power-law family) with unit
// weights, so distances are hop counts and BSDJ's min-distance frontier is
// an entire BFS level rather than the near-singleton frontier distinct
// weights produce.
func unitPowerGraph(n int64) (*graph.Graph, error) {
	pg := graph.Power(n, 6, 42)
	edges := make([]graph.Edge, len(pg.Edges))
	for i, e := range pg.Edges {
		edges[i] = graph.Edge{From: e.From, To: e.To, Weight: 1}
	}
	return graph.New(n, edges)
}

type shardMeasure struct {
	dur      time.Duration
	qps      float64
	p50, p99 time.Duration
}

// measureShardLevel drives the pairs through query with shardBenchClients
// workers and returns the per-pair distances (-1 when unreachable) plus
// the latency profile. Identical driver for all configurations.
func measureShardLevel(pairs [][2]int64, query func(ctx context.Context, s, t int64) (core.QueryResult, error)) ([]int64, *shardMeasure, error) {
	dists := make([]int64, len(pairs))
	lats := make([]time.Duration, len(pairs))
	errsByQ := make([]error, len(pairs))
	var next int
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(pairs) {
			return -1
		}
		i := next
		next++
		return i
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < shardBenchClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				q0 := time.Now()
				res, err := query(context.Background(), pairs[i][0], pairs[i][1])
				lats[i] = time.Since(q0)
				errsByQ[i] = err
				if err == nil {
					if res.Found {
						dists[i] = res.Distance
					} else {
						dists[i] = -1
					}
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(t0)
	for i, err := range errsByQ {
		if err != nil {
			return nil, nil, fmt.Errorf("pair (%d,%d): %w", pairs[i][0], pairs[i][1], err)
		}
	}
	m := &shardMeasure{dur: dur}
	if dur > 0 {
		m.qps = float64(len(pairs)) / dur.Seconds()
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m.p50 = sorted[len(sorted)/2]
	m.p99 = sorted[min(len(sorted)-1, len(sorted)*99/100)]
	return dists, m, nil
}
