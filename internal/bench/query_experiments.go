package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// powerSizes are the Table-2 / Fig-6 x-axis points: the paper uses Power
// graphs of 20k..100k nodes; the harness defaults to 1/10 of that.
func (c Config) powerSizes() []int64 {
	var out []int64
	for _, base := range []int64{2000, 4000, 6000, 8000, 10000} {
		out = append(out, c.scale(base))
	}
	return out
}

// smallPowerSizes are the Fig-7(c)/8 x-axis points (paper: 100k..500k).
func (c Config) smallPowerSizes() []int64 {
	var out []int64
	for _, base := range []int64{1000, 2000, 3000, 4000, 5000} {
		out = append(out, c.scale(base))
	}
	return out
}

// RunTable2 regenerates Table 2: expansions and time for DJ, BDJ and BSDJ
// on Power graphs. DJ is run on the two smallest sizes only (the paper
// itself reports ">600s" beyond its smallest size).
func RunTable2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table2",
		Title:  "Exps (# expansions) and Time (ms/query) on Power graphs",
		Header: []string{"|V|", "DJ Exps", "DJ Time", "BDJ Exps", "BDJ Time", "BSDJ Exps", "BSDJ Time"},
	}
	for i, n := range cfg.powerSizes() {
		cfg.logf("table2: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		if i < 2 {
			a, err := runQueries(setup.eng, core.AlgDJ, queries[:min(2, len(queries))])
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, f1(a.Exps), ms(a.Time))
		} else {
			row = append(row, ">", ">") // beyond the DJ time budget, as in the paper
		}
		for _, alg := range []core.Algorithm{core.AlgBDJ, core.AlgBSDJ} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, f1(a.Exps), ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig6a regenerates Fig 6(a): BDJ vs BSDJ query time vs graph scale.
func RunFig6a(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig6a",
		Title:  "Query time (ms) vs graph scale, Power graphs, BDJ vs BSDJ",
		Header: []string{"|V|", "BDJ", "BSDJ"},
	}
	for i, n := range cfg.powerSizes() {
		cfg.logf("fig6a: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []core.Algorithm{core.AlgBDJ, core.AlgBSDJ} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig6b regenerates Fig 6(b): BSDJ query time split into the PE (path
// expansion), SC (statistics collection) and FPR (full path recovery)
// phases.
func RunFig6b(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig6b",
		Title:  "BSDJ query time (ms) by phase, Power graphs",
		Header: []string{"|V|", "PE", "SC", "FPR"},
	}
	for i, n := range cfg.powerSizes() {
		cfg.logf("fig6b: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		a, err := runQueries(setup.eng, core.AlgBSDJ, queries)
		setup.close()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), ms(a.PE), ms(a.SC), ms(a.FPR)})
	}
	return t, nil
}

// RunFig6c regenerates Fig 6(c): F/E/M operator times with the operators
// translated into separate SQL statements.
func RunFig6c(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig6c",
		Title:  "BSDJ query time (ms) by operator (separate statements), Power graphs",
		Header: []string{"|V|", "F-operator", "E-operator", "M-operator"},
	}
	for i, n := range cfg.powerSizes() {
		cfg.logf("fig6c: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{SeparateOperators: true})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		a, err := runQueries(setup.eng, core.AlgBSDJ, queries)
		setup.close()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), ms(a.FOp), ms(a.EOp), ms(a.MOp)})
	}
	return t, nil
}

// RunFig6d regenerates Fig 6(d): new SQL features (window + MERGE) vs the
// traditional formulation.
func RunFig6d(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig6d",
		Title:  "BSDJ query time (ms): NSQL (window+MERGE) vs TSQL, Power graphs",
		Header: []string{"|V|", "NSQL", "TSQL"},
	}
	for i, n := range cfg.powerSizes() {
		cfg.logf("fig6d: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, traditional := range []bool{false, true} {
			setup, err := makeEngine(g, rdb.Options{}, core.Options{TraditionalSQL: traditional})
			if err != nil {
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSDJ, queries)
			setup.close()
			if err != nil {
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig7a regenerates Fig 7(a): BSDJ vs BBFS vs BSEG(3) on
// LiveJournal-like graphs of growing size.
func RunFig7a(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig7a",
		Title:  "Query time (ms) on LiveJournal-like graphs (scaled)",
		Header: []string{"|V|", "BSDJ", "BBFS", "BSEG(3)"},
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for i, s := range []float64{0.002, 0.004, 0.006, 0.008} {
		g := graph.LiveJournalLike(s*scale, cfg.Seed)
		cfg.logf("fig7a: |V|=%d", g.N)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(3); err != nil {
			setup.close()
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", g.N)}
		for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgBBFS, core.AlgBSEG} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig7b regenerates Fig 7(b): BBFS, BSDJ and BSEG at several lthd on
// Random graphs.
func RunFig7b(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig7b",
		Title:  "Query time (ms) on Random graphs (avg degree 3)",
		Header: []string{"|V|", "BBFS", "BSDJ", "BSEG(3)", "BSEG(5)", "BSEG(7)"},
	}
	for i, base := range []int64{10000, 20000, 30000, 40000} {
		n := cfg.scale(base)
		cfg.logf("fig7b: |V|=%d", n)
		g := graph.RandomDegree(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []core.Algorithm{core.AlgBBFS, core.AlgBSDJ} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		for _, lthd := range []int64{3, 5, 7} {
			if _, err := setup.eng.BuildSegTable(lthd); err != nil {
				setup.close()
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSEG, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunTable3 regenerates Table 3: time, expansions and visited nodes for
// BSDJ, BBFS and BSEG(5) on Random graphs.
func RunTable3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Table3",
		Title: "Time (ms), Exps and Vst (visited nodes) on Random graphs",
		Header: []string{"|V|",
			"BSDJ Time", "BSDJ Exps", "BSDJ Vst",
			"BBFS Time", "BBFS Exps", "BBFS Vst",
			"BSEG Time", "BSEG Exps", "BSEG Vst"},
	}
	for i, base := range []int64{10000, 20000, 30000, 40000} {
		n := cfg.scale(base)
		cfg.logf("table3: |V|=%d", n)
		g := graph.RandomDegree(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(5); err != nil {
			setup.close()
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgBBFS, core.AlgBSEG} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time), f1(a.Exps), f1(a.Visited))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig7c regenerates Fig 7(c): BSEG query time vs the index threshold
// lthd on Power graphs.
func RunFig7c(cfg Config) (*Table, error) {
	lthds := []int64{10, 30, 40, 50}
	t := &Table{
		ID:     "Fig7c",
		Title:  "BSEG query time (ms) vs lthd, Power graphs",
		Header: []string{"|V|", "lthd=10", "lthd=30", "lthd=40", "lthd=50"},
	}
	for i, n := range cfg.smallPowerSizes() {
		cfg.logf("fig7c: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, lthd := range lthds {
			if _, err := setup.eng.BuildSegTable(lthd); err != nil {
				setup.close()
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSEG, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// realLikeGraphs returns the two real-dataset analogs used by Fig 7(d) and
// Fig 9(b)/9(d).
func (c Config) realLikeGraphs() []struct {
	Name string
	G    *graph.Graph
} {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return []struct {
		Name string
		G    *graph.Graph
	}{
		{"GoogleWeb~", graph.GoogleWebLike(0.004*s, c.Seed)},
		{"DBLP~", graph.DBLPLike(0.01*s, c.Seed)},
	}
}

// RunFig7d regenerates Fig 7(d): BSEG query time vs lthd on the real-like
// datasets.
func RunFig7d(cfg Config) (*Table, error) {
	lthds := []int64{2, 4, 6, 8, 10}
	t := &Table{
		ID:     "Fig7d",
		Title:  "BSEG query time (ms) vs lthd, real-like graphs",
		Header: []string{"dataset", "lthd=2", "lthd=4", "lthd=6", "lthd=8", "lthd=10"},
	}
	for _, ds := range cfg.realLikeGraphs() {
		cfg.logf("fig7d: %s |V|=%d", ds.Name, ds.G.N)
		setup, err := makeEngine(ds.G, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		queries := graph.RandomQueries(ds.G, cfg.queries(), cfg.Seed)
		row := []string{fmt.Sprintf("%s(|V|=%d)", ds.Name, ds.G.N)}
		for _, lthd := range lthds {
			if _, err := setup.eng.BuildSegTable(lthd); err != nil {
				setup.close()
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSEG, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig8a regenerates Fig 8(a): BBFS vs BSEG(20) on the PostgreSQL
// profile (window functions available, MERGE emulated by UPDATE+INSERT).
func RunFig8a(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig8a",
		Title:  "Query time (ms) on PostgreSQL profile, Power graphs",
		Header: []string{"|V|", "BBFS", "BSEG(20)"},
	}
	for i, n := range cfg.smallPowerSizes() {
		cfg.logf("fig8a: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{Profile: rdb.ProfilePostgreSQL9}, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(20); err != nil {
			setup.close()
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []core.Algorithm{core.AlgBBFS, core.AlgBSEG} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig8b regenerates Fig 8(b): query time vs buffer-pool size on a
// file-backed database with simulated disk latency.
func RunFig8b(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig8b",
		Title:  "BSEG(3) query time (ms) vs buffer size (pages), LiveJournal-like, simulated disk",
		Header: []string{"buffer pages", "time", "pool misses/query"},
	}
	s := cfg.Scale
	if s <= 0 {
		s = 1
	}
	// Deliberately smaller than the other LiveJournal experiments: every
	// page miss pays simulated latency and the database is rebuilt per
	// pool size, so this sweep is the harness's most expensive point.
	g := graph.LiveJournalLike(0.0015*s, cfg.Seed)
	queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed)
	for _, pages := range []int{128, 256, 512, 1024, 2048} {
		cfg.logf("fig8b: pages=%d |V|=%d", pages, g.N)
		dbo := rdb.Options{
			Path:               cfg.fileDBPath("fig8b"),
			BufferPoolPages:    pages,
			SimulatedIOLatency: 15 * time.Microsecond,
		}
		setup, err := makeEngine(g, dbo, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(3); err != nil {
			setup.close()
			return nil, err
		}
		setup.db.ResetStats()
		a, err := runQueries(setup.eng, core.AlgBSEG, queries)
		if err != nil {
			setup.close()
			return nil, err
		}
		st := setup.db.Stats()
		setup.close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pages), ms(a.Time),
			fmt.Sprintf("%.0f", float64(st.Pool.Misses)/float64(len(queries))),
		})
	}
	return t, nil
}

// RunFig8c regenerates Fig 8(c): the NoIndex / Index / CluIndex physical
// designs.
func RunFig8c(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig8c",
		Title:  "BSEG(20) query time (ms) by index strategy, Power graphs",
		Header: []string{"|V|", "NoIndex", "Index", "CluIndex"},
	}
	for i, n := range cfg.smallPowerSizes() {
		cfg.logf("fig8c: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, strat := range []core.IndexStrategy{core.NoIndex, core.SecondaryIndex, core.ClusteredIndex} {
			setup, err := makeEngine(g, rdb.Options{}, core.Options{Strategy: strat})
			if err != nil {
				return nil, err
			}
			if _, err := setup.eng.BuildSegTable(20); err != nil {
				setup.close()
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSEG, queries)
			setup.close()
			if err != nil {
				return nil, err
			}
			row = append(row, ms(a.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig8d regenerates Fig 8(d): the relational BSEG against the in-memory
// baselines MDJ and MBDJ.
func RunFig8d(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig8d",
		Title:  "Query time (ms): in-memory MDJ/MBDJ vs relational BSEG(20), Power graphs",
		Header: []string{"|V|", "MDJ", "BSEG(20)", "MBDJ"},
	}
	for i, n := range cfg.smallPowerSizes() {
		cfg.logf("fig8d: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))

		mdjTime, mbdjTime := time.Duration(0), time.Duration(0)
		for _, q := range queries {
			t0 := time.Now()
			graph.MDJ(g, q[0], q[1])
			mdjTime += time.Since(t0)
			t1 := time.Now()
			graph.MBDJ(g, q[0], q[1])
			mbdjTime += time.Since(t1)
		}
		mdjTime /= time.Duration(len(queries))
		mbdjTime /= time.Duration(len(queries))

		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(20); err != nil {
			setup.close()
			return nil, err
		}
		a, err := runQueries(setup.eng, core.AlgBSEG, queries)
		setup.close()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), ms(mdjTime), ms(a.Time), ms(mbdjTime)})
	}
	return t, nil
}
