package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// RunMutationThroughput measures the dynamic-graph mutation subsystem on a
// SegTable-backed engine: single-edge insert/delete/update latency (each
// delete and weight increase runs the decremental repair), the batched
// ApplyMutations form (one latch acquisition and version bump for the
// whole batch), and the rebuild fallback for comparison. The table lands
// in BENCH_mutations.json under -json.
func RunMutationThroughput(cfg Config) (*Table, error) {
	const lthd = 8
	n := cfg.scale(2000)
	rnd := rand.New(rand.NewSource(cfg.Seed))
	// Small weights keep multi-hop segments common so repairs do real work.
	g := smallWeightPower(n, 3, cfg.Seed)
	cfg.logf("mutation-throughput: power graph |V|=%d |E|=%d, lthd=%d", g.N, g.M(), lthd)

	setup, err := makeEngine(g, rdb.Options{}, core.Options{})
	if err != nil {
		return nil, err
	}
	defer setup.close()
	eng := setup.eng
	if _, err := eng.BuildSegTable(lthd); err != nil {
		return nil, err
	}

	count := cfg.queries() * 4
	if count < 8 {
		count = 8
	}
	tab := &Table{
		ID:     "mutations",
		Title:  fmt.Sprintf("Mutation throughput, power(%d,3), lthd=%d, %d mutations per row", g.N, lthd, count),
		Header: []string{"op", "mutations", "time(ms)", "mut/sec", "affected", "repaired", "rebuilds"},
	}

	// mirror tracks live pairs so deletes/updates always hit existing
	// edges; engine state stays the source of truth for the timings.
	mirror := g.Clone()
	record := func(op string, muts []core.Mutation, batched bool) error {
		start := time.Now()
		var affected, repaired int64
		var rebuilds int
		if batched {
			st, err := eng.ApplyMutations(muts)
			if err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			affected, repaired = st.Affected, st.Repaired
			if st.Rebuilt {
				rebuilds++
			}
		} else {
			for _, m := range muts {
				st, err := eng.ApplyMutations([]core.Mutation{m})
				if err != nil {
					return fmt.Errorf("%s: %w", op, err)
				}
				affected += st.Affected
				repaired += st.Repaired
				if st.Rebuilt {
					rebuilds++
				}
			}
		}
		dur := time.Since(start)
		cfg.logf("mutation-throughput: %s: %d mutations in %v", op, len(muts), dur.Round(time.Millisecond))
		tab.Rows = append(tab.Rows, []string{
			op, fmt.Sprint(len(muts)), ms(dur),
			fmt.Sprintf("%.0f", float64(len(muts))/dur.Seconds()),
			fmt.Sprint(affected), fmt.Sprint(repaired), fmt.Sprint(rebuilds),
		})
		return nil
	}

	makeInserts := func() []core.Mutation {
		muts := make([]core.Mutation, 0, count)
		for i := 0; i < count; i++ {
			u, v := rnd.Int63n(g.N), rnd.Int63n(g.N)
			w := 1 + rnd.Int63n(9)
			muts = append(muts, core.Mutation{Op: core.MutInsert, From: u, To: v, Weight: w})
			if err := mirror.InsertEdge(u, v, w); err != nil {
				panic(err) // bounds guaranteed by the draws above
			}
		}
		return muts
	}
	pickPairs := func() [][2]int64 {
		pairs := make([][2]int64, 0, count)
		seen := map[[2]int64]bool{}
		// Bounded draws: at high -queries the mirror can hold fewer
		// distinct pairs than requested, and re-draws of seen pairs make
		// no progress — the rows then simply run with fewer mutations.
		for attempts := 0; len(pairs) < count && attempts < 20*count && mirror.M() > 0; attempts++ {
			ed := mirror.Edges[rnd.Intn(mirror.M())]
			key := [2]int64{ed.From, ed.To}
			if seen[key] {
				continue
			}
			seen[key] = true
			pairs = append(pairs, key)
		}
		return pairs
	}

	// Row 1: single inserts (the PR-2 era baseline mutation).
	if err := record("insert (single)", makeInserts(), false); err != nil {
		return nil, err
	}
	// Row 2: single weight increases — decremental repair per mutation.
	var muts []core.Mutation
	for _, p := range pickPairs() {
		w := int64(60 + rnd.Int63n(40))
		muts = append(muts, core.Mutation{Op: core.MutUpdate, From: p[0], To: p[1], Weight: w})
		if _, err := mirror.UpdateEdgeWeight(p[0], p[1], w); err != nil {
			panic(err)
		}
	}
	if err := record("update-weaken (single)", muts, false); err != nil {
		return nil, err
	}
	// Row 3: single deletes — the decremental headline number.
	muts = muts[:0]
	for _, p := range pickPairs() {
		muts = append(muts, core.Mutation{Op: core.MutDelete, From: p[0], To: p[1]})
		if _, err := mirror.DeleteEdge(p[0], p[1]); err != nil {
			panic(err)
		}
	}
	if err := record("delete (single)", muts, false); err != nil {
		return nil, err
	}
	// Row 4: one batch of mixed mutations — the amortized form.
	muts = makeInserts()
	for i, p := range pickPairs() {
		if i%2 == 0 {
			muts = append(muts, core.Mutation{Op: core.MutDelete, From: p[0], To: p[1]})
			if _, err := mirror.DeleteEdge(p[0], p[1]); err != nil {
				panic(err)
			}
		} else {
			w := 1 + rnd.Int63n(9)
			muts = append(muts, core.Mutation{Op: core.MutUpdate, From: p[0], To: p[1], Weight: w})
			if _, err := mirror.UpdateEdgeWeight(p[0], p[1], w); err != nil {
				panic(err)
			}
		}
	}
	if err := record("mixed (batched)", muts, true); err != nil {
		return nil, err
	}
	// Row 5: deletes under a forced rebuild — what every deletion cost
	// before the decremental repair existed.
	rebuildEng, err := makeEngine(mirror, rdb.Options{}, core.Options{RepairThreshold: -1})
	if err != nil {
		return nil, err
	}
	defer rebuildEng.close()
	if _, err := rebuildEng.eng.BuildSegTable(lthd); err != nil {
		return nil, err
	}
	rebuildCount := count / 4
	if rebuildCount < 2 {
		rebuildCount = 2
	}
	eng = rebuildEng.eng
	muts = muts[:0]
	for _, p := range pickPairs() {
		if len(muts) >= rebuildCount {
			break
		}
		muts = append(muts, core.Mutation{Op: core.MutDelete, From: p[0], To: p[1]})
		if _, err := mirror.DeleteEdge(p[0], p[1]); err != nil {
			panic(err)
		}
	}
	if err := record("delete (rebuild fallback)", muts, false); err != nil {
		return nil, err
	}
	return tab, nil
}

// smallWeightPower is graph.Power with weights redrawn in [1, 9]: the
// generator's 1..100 weights would leave lthd-bounded segments rare and
// the repair path idle.
func smallWeightPower(n int64, d int, seed int64) *graph.Graph {
	base := graph.Power(n, d, seed)
	rnd := rand.New(rand.NewSource(seed + 1))
	edges := make([]graph.Edge, len(base.Edges))
	for i, e := range base.Edges {
		edges[i] = graph.Edge{From: e.From, To: e.To, Weight: 1 + rnd.Int63n(9)}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
