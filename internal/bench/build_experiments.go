package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// RunFig9a regenerates Fig 9(a): SegTable size (encoding number) vs lthd
// on Power graphs.
func RunFig9a(cfg Config) (*Table, error) {
	lthds := []int64{10, 20, 30, 40}
	t := &Table{
		ID:     "Fig9a",
		Title:  "SegTable encoding number vs lthd, Power graphs",
		Header: []string{"|V|", "lthd=10", "lthd=20", "lthd=30", "lthd=40"},
	}
	for _, n := range cfg.smallPowerSizes() {
		cfg.logf("fig9a: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, lthd := range lthds {
			st, err := setup.eng.BuildSegTable(lthd)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", st.EncodingNumber()))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9b regenerates Fig 9(b): SegTable size vs lthd on the real-like
// datasets (GoogleWeb's skewed degrees make it more lthd-sensitive).
func RunFig9b(cfg Config) (*Table, error) {
	lthds := []int64{2, 4, 6, 8, 10}
	t := &Table{
		ID:     "Fig9b",
		Title:  "SegTable encoding number vs lthd, real-like graphs",
		Header: []string{"dataset", "lthd=2", "lthd=4", "lthd=6", "lthd=8", "lthd=10"},
	}
	for _, ds := range cfg.realLikeGraphs() {
		cfg.logf("fig9b: %s |V|=%d", ds.Name, ds.G.N)
		setup, err := makeEngine(ds.G, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%s(|V|=%d)", ds.Name, ds.G.N)}
		for _, lthd := range lthds {
			st, err := setup.eng.BuildSegTable(lthd)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", st.EncodingNumber()))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9c regenerates Fig 9(c): SegTable construction time vs lthd on
// Power graphs.
func RunFig9c(cfg Config) (*Table, error) {
	lthds := []int64{10, 20, 30, 40}
	t := &Table{
		ID:     "Fig9c",
		Title:  "SegTable construction time (ms) vs lthd, Power graphs",
		Header: []string{"|V|", "lthd=10", "lthd=20", "lthd=30", "lthd=40"},
	}
	for _, n := range cfg.smallPowerSizes() {
		cfg.logf("fig9c: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, lthd := range lthds {
			st, err := setup.eng.BuildSegTable(lthd)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(st.BuildTime))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9d regenerates Fig 9(d): construction time vs lthd on real-like
// datasets.
func RunFig9d(cfg Config) (*Table, error) {
	lthds := []int64{2, 4, 6, 8}
	t := &Table{
		ID:     "Fig9d",
		Title:  "SegTable construction time (ms) vs lthd, real-like graphs",
		Header: []string{"dataset", "lthd=2", "lthd=4", "lthd=6", "lthd=8"},
	}
	for _, ds := range cfg.realLikeGraphs() {
		cfg.logf("fig9d: %s |V|=%d", ds.Name, ds.G.N)
		setup, err := makeEngine(ds.G, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%s(|V|=%d)", ds.Name, ds.G.N)}
		for _, lthd := range lthds {
			st, err := setup.eng.BuildSegTable(lthd)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(st.BuildTime))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9e regenerates Fig 9(e): construction time on the PostgreSQL
// profile (no MERGE; UPDATE+INSERT emulation).
func RunFig9e(cfg Config) (*Table, error) {
	lthds := []int64{10, 20, 30}
	t := &Table{
		ID:     "Fig9e",
		Title:  "SegTable construction time (ms) vs lthd on PostgreSQL profile, Power graphs",
		Header: []string{"|V|", "lthd=10", "lthd=20", "lthd=30"},
	}
	sizes := cfg.smallPowerSizes()
	for _, n := range sizes[:3] {
		cfg.logf("fig9e: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{Profile: rdb.ProfilePostgreSQL9}, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, lthd := range lthds {
			st, err := setup.eng.BuildSegTable(lthd)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, ms(st.BuildTime))
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9f regenerates Fig 9(f): construction time with new vs traditional
// SQL features.
func RunFig9f(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig9f",
		Title:  "SegTable construction time (ms), NSQL vs TSQL (lthd=20), Power graphs",
		Header: []string{"|V|", "NSQL", "TSQL"},
	}
	for _, n := range cfg.smallPowerSizes() {
		cfg.logf("fig9f: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		row := []string{fmt.Sprintf("%d", n)}
		for _, traditional := range []bool{false, true} {
			setup, err := makeEngine(g, rdb.Options{}, core.Options{TraditionalSQL: traditional})
			if err != nil {
				return nil, err
			}
			st, err := setup.eng.BuildSegTable(20)
			setup.close()
			if err != nil {
				return nil, err
			}
			row = append(row, ms(st.BuildTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunFig9g regenerates Fig 9(g): construction time vs buffer size on a
// file-backed database with simulated disk latency.
func RunFig9g(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig9g",
		Title:  "SegTable(3) construction time (ms) vs buffer size (pages), LiveJournal-like, simulated disk",
		Header: []string{"buffer pages", "time", "pool misses"},
	}
	s := cfg.Scale
	if s <= 0 {
		s = 1
	}
	g := graph.LiveJournalLike(0.001*s, cfg.Seed)
	for _, pages := range []int{128, 256, 512, 1024} {
		cfg.logf("fig9g: pages=%d |V|=%d", pages, g.N)
		dbo := rdb.Options{
			Path:               cfg.fileDBPath("fig9g"),
			BufferPoolPages:    pages,
			SimulatedIOLatency: 15 * time.Microsecond,
		}
		setup, err := makeEngine(g, dbo, core.Options{})
		if err != nil {
			return nil, err
		}
		setup.db.ResetStats()
		st, err := setup.eng.BuildSegTable(3)
		if err != nil {
			setup.close()
			return nil, err
		}
		dbst := setup.db.Stats()
		setup.close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pages), ms(st.BuildTime), fmt.Sprintf("%d", dbst.Pool.Misses)})
	}
	return t, nil
}

// RunFig9h regenerates Fig 9(h): construction time vs graph scale on
// LiveJournal-like graphs.
func RunFig9h(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig9h",
		Title:  "SegTable(3) construction time (ms) vs graph scale, LiveJournal-like",
		Header: []string{"|V|", "time", "encoding number"},
	}
	s := cfg.Scale
	if s <= 0 {
		s = 1
	}
	for _, frac := range []float64{0.001, 0.002, 0.003, 0.004} {
		g := graph.LiveJournalLike(frac*s, cfg.Seed)
		cfg.logf("fig9h: |V|=%d", g.N)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{})
		if err != nil {
			return nil, err
		}
		st, err := setup.eng.BuildSegTable(3)
		setup.close()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", g.N), ms(st.BuildTime), fmt.Sprintf("%d", st.EncodingNumber())})
	}
	return t, nil
}

// RunAblationPruning measures the Theorem-1 pruning rule's effect on BSDJ
// (beyond the paper's experiments; DESIGN.md §5).
func RunAblationPruning(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "AblationPruning",
		Title:  "BSDJ with/without Theorem-1 pruning, Random graphs",
		Header: []string{"|V|", "pruned time", "pruned visited", "unpruned time", "unpruned visited"},
	}
	for i, base := range []int64{10000, 20000} {
		n := cfg.scale(base)
		cfg.logf("ablation-pruning: |V|=%d", n)
		g := graph.RandomDegree(n, 3, cfg.Seed)
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, disable := range []bool{false, true} {
			setup, err := makeEngine(g, rdb.Options{}, core.Options{DisablePruning: disable})
			if err != nil {
				return nil, err
			}
			a, err := runQueries(setup.eng, core.AlgBSDJ, queries)
			setup.close()
			if err != nil {
				return nil, err
			}
			row = append(row, ms(a.Time), f1(a.Visited))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunAblationDirection compares the fewer-frontier direction policy (§4.1)
// against strict alternation.
func RunAblationDirection(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "AblationDirection",
		Title:  "BSDJ direction policy: fewer-frontier vs strict alternation, LiveJournal-like",
		Header: []string{"|V|", "fewer-frontier time", "ff exps", "alternate time", "alt exps"},
	}
	s := cfg.Scale
	if s <= 0 {
		s = 1
	}
	g := graph.LiveJournalLike(0.004*s, cfg.Seed)
	queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed)
	row := []string{fmt.Sprintf("%d", g.N)}
	for _, alternate := range []bool{false, true} {
		setup, err := makeEngine(g, rdb.Options{}, core.Options{AlternateDirections: alternate})
		if err != nil {
			return nil, err
		}
		a, err := runQueries(setup.eng, core.AlgBSDJ, queries)
		setup.close()
		if err != nil {
			return nil, err
		}
		row = append(row, ms(a.Time), f1(a.Exps))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}
