package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// Oracle experiments: the landmark distance oracle has no counterpart in
// the paper's evaluation, so these two runners extend the harness — the
// build-cost axis (like Fig 9 does for SegTable) and the headline
// ALT-vs-BSDJ pruning comparison on the benchmark power-law graph.

// RunOracleBuild measures oracle construction across landmark counts and
// placement strategies on a Power graph: landmarks placed, TLandmark rows,
// relaxation rounds, statements and wall time — the Fig-9 shape for the
// new index.
func RunOracleBuild(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "OracleBuild",
		Title:  "Landmark oracle construction, Power graph",
		Header: []string{"|V|", "k", "strategy", "rows", "iters", "stmts", "time"},
	}
	n := cfg.scale(2000)
	g := graph.Power(n, 3, cfg.Seed)
	for _, k := range []int{4, 8, 16} {
		for _, strat := range []oracle.Strategy{oracle.Degree, oracle.Farthest} {
			cfg.logf("oracle-build: |V|=%d k=%d %s", n, k, strat)
			setup, err := makeEngine(g, rdb.Options{}, core.Options{})
			if err != nil {
				return nil, err
			}
			st, err := setup.eng.BuildOracle(oracle.Config{K: k, Strategy: strat})
			setup.close()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), strat.String(),
				fmt.Sprintf("%d", st.Rows), fmt.Sprintf("%d", st.Iterations),
				fmt.Sprintf("%d", st.Statements), ms(st.BuildTime)})
		}
	}
	return t, nil
}

// RunOracleALT is the acceptance experiment for the ALT tentpole: the same
// query set under BSDJ and ALT on Power graphs, reporting per-algorithm
// tuples affected (the SQLCA sums), statements, wall time, and the number
// of candidates the landmark bound settled without expansion. The caches
// are disabled so both columns measure the relational search itself.
func RunOracleALT(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "OracleALT",
		Title: "ALT vs BSDJ pruning, Power graphs (landmark oracle, k=8)",
		Header: []string{"|V|",
			"BSDJ Affected", "BSDJ Stmts", "BSDJ Time",
			"ALT Affected", "ALT Stmts", "ALT Time", "ALT Pruned"},
	}
	for i, base := range []int64{2000, 4000, 6000} {
		n := cfg.scale(base)
		cfg.logf("oracle-alt: |V|=%d", n)
		g := graph.Power(n, 3, cfg.Seed)
		setup, err := makeEngine(g, rdb.Options{}, core.Options{CacheSize: -1})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildOracle(oracle.Config{K: 8, Strategy: oracle.Degree}); err != nil {
			setup.close()
			return nil, err
		}
		queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgALT} {
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			row = append(row, f1(a.Affected), f1(a.Stmts), ms(a.Time))
			if alg == core.AlgALT {
				row = append(row, f1(a.Pruned))
			}
		}
		setup.close()
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunOracleApprox measures the approximate-answer path: interval tightness
// (mean upper/exact ratio over connected pairs) and lookup time against
// the exact ALT search — the scale+speed trade the oracle buys.
func RunOracleApprox(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "OracleApprox",
		Title:  "Approximate distance quality, Power graph (k=8, degree)",
		Header: []string{"|V|", "pairs", "exact-hit", "mean upper/exact", "approx time", "search time"},
	}
	n := cfg.scale(4000)
	g := graph.Power(n, 3, cfg.Seed)
	setup, err := makeEngine(g, rdb.Options{}, core.Options{CacheSize: -1})
	if err != nil {
		return nil, err
	}
	defer setup.close()
	if _, err := setup.eng.BuildOracle(oracle.Config{K: 8, Strategy: oracle.Degree}); err != nil {
		return nil, err
	}
	queries := graph.RandomQueries(g, cfg.queries()*4, cfg.Seed)
	searchAgg, err := runQueries(setup.eng, core.AlgALT, queries[:cfg.queries()])
	if err != nil {
		return nil, err
	}
	var ratioSum float64
	var connected, exactHits int
	var approxDur time.Duration
	for _, q := range queries {
		t0 := time.Now()
		iv, err := setup.eng.DistanceInterval(context.Background(), q[0], q[1])
		approxDur += time.Since(t0)
		if err != nil {
			return nil, err
		}
		ref := graph.MDJ(g, q[0], q[1])
		if !ref.Found || !iv.UpperKnown() || ref.Distance == 0 {
			continue
		}
		connected++
		ratioSum += float64(iv.Upper) / float64(ref.Distance)
		if iv.Exact() {
			exactHits++
		}
	}
	ratio := "n/a"
	if connected > 0 {
		ratio = fmt.Sprintf("%.3f", ratioSum/float64(connected))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(queries)),
		fmt.Sprintf("%d/%d", exactHits, connected), ratio,
		ms(approxDur / time.Duration(len(queries))), ms(searchAgg.Time)})
	return t, nil
}
