package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// The parallel-read scaling benchmark: a cold, disk-resident workload driven
// at increasing concurrency, with GOMAXPROCS pinned to the worker count per
// level. It reproduces the regime the paper's DBMS experiments live in —
// graphs too large for the buffer pool, query time dominated by page
// transfers — and measures whether the reader/writer gate lets concurrent
// searches overlap those transfers.
//
// Three properties make the measurement honest on a small machine:
//
//   - Each query searches its own segment of a ring-with-chords graph, so
//     the cold page footprints of concurrent queries are disjoint. Shared
//     footprints would either serialize on the buffer pool's loading fences
//     (everyone waits for the same page) or evict each other's working sets
//     (miss amplification); both mask the gate's behaviour.
//   - The pool is evicted (EvictAll) between the load phase and the measured
//     phase, and sized so the measured phase itself never evicts: every page
//     is missed exactly once, at every concurrency level. The miss counts
//     are identical across levels by construction, so QPS differences are
//     attributable to overlap alone.
//   - The simulated per-page latency models a seek-bound rotating disk (the
//     hardware of the paper's 2011 evaluation), which is what makes the
//     workload transfer-dominated rather than CPU-dominated.
//
// Under the one-slot latch this benchmark is flat: level 4 equals level 1.
// With shared admission, level N overlaps N queries' page waits and QPS
// scales until compute saturates the CPU.

// ParallelLoadGenConfig configures one scaling sweep.
type ParallelLoadGenConfig struct {
	// Nodes is the ring size. Each query owns a Nodes/Queries segment, so
	// larger rings mean larger (and longer) per-query searches.
	Nodes int64
	// Queries is the number of distinct cold pairs issued per level, one
	// per ring segment.
	Queries int
	// Levels are the concurrency levels; each runs with GOMAXPROCS = level
	// and a worker pool of the same width.
	Levels []int
	// Alg is the algorithm under load.
	Alg core.Algorithm
	// BufferPoolPages and SimulatedIOLatency shape the disk-resident
	// regime. The pool must hold the union of the per-query footprints (so
	// the measured phase never evicts); the latency models one seek.
	BufferPoolPages    int
	SimulatedIOLatency time.Duration
}

// DefaultParallelLoadGenConfig sizes a sweep that keeps every search
// seek-bound — a few pages of private footprint per query at 15ms per page
// against the relational compute — with enough queries per level (48) that
// each level's QPS averages over scheduler noise instead of riding on a
// handful of samples.
func DefaultParallelLoadGenConfig() ParallelLoadGenConfig {
	return ParallelLoadGenConfig{
		Nodes:              12288,
		Queries:            48,
		Levels:             []int{1, 2, 4},
		Alg:                core.AlgBSDJ,
		BufferPoolPages:    768,
		SimulatedIOLatency: 15 * time.Millisecond,
	}
}

// segmentedGraph builds the deterministic ring-with-chords graph: every node
// links ahead by 1, 8, 64 and 512 positions with weights that make the long
// chords the cheap highways. Searches between nodes of one segment stay
// inside that segment (plus a bounded spill at the seams), which is what
// keeps concurrent queries' page footprints disjoint.
func segmentedGraph(n int64) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, 4*n)
	for i := int64(0); i < n; i++ {
		edges = append(edges,
			graph.Edge{From: i, To: (i + 1) % n, Weight: 1 + i%5},
			graph.Edge{From: i, To: (i + 8) % n, Weight: 6 + i%7},
			graph.Edge{From: i, To: (i + 64) % n, Weight: 40 + i%9},
			graph.Edge{From: i, To: (i + 512) % n, Weight: 300 + i%17},
		)
	}
	return graph.New(n, edges)
}

// segmentPairs deals one query to each ring segment: from its first node to
// a quarter of the way through. Spans are identical, so per-query work is
// uniform and the levels compare like for like.
func segmentPairs(nodes int64, queries int) [][2]int64 {
	seg := nodes / int64(queries)
	pairs := make([][2]int64, queries)
	for q := range pairs {
		s := int64(q) * seg
		pairs[q] = [2]int64{s, s + seg/4}
	}
	return pairs
}

// ParallelLevelResult is one concurrency level's measurement.
type ParallelLevelResult struct {
	Level       int           `json:"level"` // GOMAXPROCS and worker count
	Queries     int           `json:"queries"`
	QPS         float64       `json:"qps"`
	P50         time.Duration `json:"-"`
	P99         time.Duration `json:"-"`
	P50MS       float64       `json:"p50_ms"`
	P99MS       float64       `json:"p99_ms"`
	Dur         time.Duration `json:"-"`
	PeakReaders int           `json:"peak_readers"`
	ColdMisses  uint64        `json:"cold_misses"`
	Errors      int           `json:"errors"`
	// Speedup is this level's QPS over level 1's, filled in after the sweep.
	Speedup float64 `json:"speedup_vs_level1"`
}

// ParallelLoadGenResult is the full sweep.
type ParallelLoadGenResult struct {
	Levels []ParallelLevelResult
	// Scaling is QPS(highest level) / QPS(level 1), the headline number.
	Scaling float64
}

// RunParallelLoadGen executes the sweep. GOMAXPROCS is adjusted per level
// and restored before returning.
func RunParallelLoadGen(cfg ParallelLoadGenConfig, logf func(format string, args ...any)) (*ParallelLoadGenResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("bench: no concurrency levels")
	}
	if cfg.Queries < 1 || cfg.Nodes/int64(cfg.Queries) < 4 {
		return nil, fmt.Errorf("bench: %d nodes cannot seat %d query segments", cfg.Nodes, cfg.Queries)
	}
	g, err := segmentedGraph(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	pairs := segmentPairs(cfg.Nodes, cfg.Queries)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	out := &ParallelLoadGenResult{}
	for _, level := range cfg.Levels {
		if level < 1 {
			return nil, fmt.Errorf("bench: concurrency level %d < 1", level)
		}
		runtime.GOMAXPROCS(level)
		lr, err := runParallelLevel(cfg, g, pairs, level, logf)
		if err != nil {
			return nil, err
		}
		out.Levels = append(out.Levels, *lr)
	}
	base := out.Levels[0]
	last := out.Levels[len(out.Levels)-1]
	if base.QPS > 0 {
		out.Scaling = last.QPS / base.QPS
		for i := range out.Levels {
			out.Levels[i].Speedup = out.Levels[i].QPS / base.QPS
		}
	}
	return out, nil
}

func runParallelLevel(cfg ParallelLoadGenConfig, g *graph.Graph, pairs [][2]int64, level int, logf func(string, ...any)) (*ParallelLevelResult, error) {
	// A fresh engine per level: identical cold state, no cross-level cache
	// or buffer-pool warmth. The path cache is off so every query is a real
	// search — parallel scaling cannot hide behind memoization. The load
	// phase runs at memory speed; the simulated seek is armed below, for
	// the measured phase only.
	db, err := rdb.Open(rdb.Options{
		BufferPoolPages: cfg.BufferPoolPages,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	eng := core.NewEngine(db, core.Options{CacheSize: -1})
	defer eng.Close()
	if err := eng.LoadGraph(g); err != nil {
		return nil, err
	}
	if cfg.Alg == core.AlgBSEG {
		if _, err := eng.BuildSegTable(20); err != nil {
			return nil, err
		}
	}
	// Loading warmed the pool; evict so the measured phase is truly cold.
	db.SetSimulatedIOLatency(cfg.SimulatedIOLatency)
	if err := db.Pool().EvictAll(); err != nil {
		return nil, err
	}
	miss0 := db.Pool().Stats().Misses

	lats := make([]time.Duration, len(pairs))
	errsByQ := make([]error, len(pairs))
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		if i >= len(pairs) {
			return -1
		}
		return i
	}

	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				q0 := time.Now()
				_, err := eng.Query(context.Background(), core.QueryRequest{
					Source: pairs[i][0], Target: pairs[i][1], Alg: cfg.Alg,
				})
				lats[i] = time.Since(q0)
				errsByQ[i] = err
			}
		}()
	}
	wg.Wait()
	dur := time.Since(t0)

	lr := &ParallelLevelResult{Level: level, Dur: dur}
	lr.ColdMisses = db.Pool().Stats().Misses - miss0
	ok := make([]time.Duration, 0, len(pairs))
	for i, err := range errsByQ {
		if err != nil {
			lr.Errors++
			continue
		}
		ok = append(ok, lats[i])
	}
	lr.Queries = len(ok)
	if dur > 0 {
		lr.QPS = float64(len(ok)) / dur.Seconds()
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	if len(ok) > 0 {
		lr.P50 = ok[len(ok)/2]
		lr.P99 = ok[min(len(ok)-1, len(ok)*99/100)]
		lr.P50MS = float64(lr.P50.Microseconds()) / 1000
		lr.P99MS = float64(lr.P99.Microseconds()) / 1000
	}
	lr.PeakReaders = eng.ConcurrencyStats().Gate.PeakReaders
	logf("parallel: level %d: %d queries in %v (%.1f queries/sec, p50 %v, p99 %v, peak readers %d, cold misses %d)",
		level, lr.Queries, dur.Round(time.Millisecond), lr.QPS,
		lr.P50.Round(time.Microsecond), lr.P99.Round(time.Microsecond), lr.PeakReaders, lr.ColdMisses)
	return lr, nil
}

// ParallelLoadGenTable formats the sweep in the harness table style.
func ParallelLoadGenTable(cfg ParallelLoadGenConfig, r *ParallelLoadGenResult) *Table {
	tab := &Table{
		ID: "parallel",
		Title: fmt.Sprintf("Parallel cold-read scaling, %s over %d-node segmented ring (%d disjoint pairs), pool=%d pages, seek=%v",
			cfg.Alg, cfg.Nodes, cfg.Queries, cfg.BufferPoolPages, cfg.SimulatedIOLatency),
		Header: []string{"gomaxprocs=workers", "queries", "time", "queries/sec", "p50", "p99", "peak readers", "cold misses", "scaling"},
	}
	base := r.Levels[0].QPS
	for _, lv := range r.Levels {
		scal := "1.0x"
		if base > 0 {
			scal = fmt.Sprintf("%.1fx", lv.QPS/base)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(lv.Level), fmt.Sprint(lv.Queries), ms(lv.Dur),
			fmt.Sprintf("%.1f", lv.QPS),
			lv.P50.Round(time.Microsecond).String(), lv.P99.Round(time.Microsecond).String(),
			fmt.Sprint(lv.PeakReaders), fmt.Sprint(lv.ColdMisses), scal,
		})
	}
	return tab
}

// ParallelJSON is the serialized sweep: per-level QPS and tail latency,
// plus the headline scaling factor.
type ParallelJSON struct {
	ID       string                `json:"id"`
	Config   map[string]any        `json:"config"`
	Levels   []ParallelLevelResult `json:"levels"`
	Scaling  float64               `json:"scaling"`
	UnixTime int64                 `json:"unix_time"`
}

// WriteParallelJSON writes the sweep as BENCH_parallel.json under dir.
func WriteParallelJSON(dir string, cfg ParallelLoadGenConfig, r *ParallelLoadGenResult) (string, error) {
	res := ParallelJSON{
		ID: "parallel",
		Config: map[string]any{
			"alg":        cfg.Alg.String(),
			"nodes":      cfg.Nodes,
			"queries":    cfg.Queries,
			"levels":     cfg.Levels,
			"pool_pages": cfg.BufferPoolPages,
			"io_latency": cfg.SimulatedIOLatency.String(),
		},
		Levels:   r.Levels,
		Scaling:  r.Scaling,
		UnixTime: time.Now().Unix(),
	}
	return writeJSONFile(dir, "parallel", res)
}
