package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// RunLabels is the acceptance experiment for the hub-label tentpole: the
// same query set answered from the 2-hop label index (AlgLabel), the
// landmark-guided frontier search (ALT, k=8) and the plain bidirectional
// set-Dijkstra (BSDJ) on the benchmark power-law graph. The label index
// replaces the frontier loop with one merge-join per distance, so its
// per-query column is the headline: it should sit an order of magnitude
// under ALT's. The build row prices that speed — label construction is the
// expensive end of the trade. Caches are off so every column measures the
// relational work itself.
func RunLabels(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "labels",
		Title:  "Hub labels: AlgLabel vs ALT vs BSDJ exact queries, Power graph",
		Header: []string{"phase", "affected", "stmts", "total (ms)", "per-query"},
	}
	n := cfg.scale(2000)
	g := graph.Power(n, 3, cfg.Seed)
	cfg.logf("labels: |V|=%d", n)
	setup, err := makeEngine(g, rdb.Options{}, core.Options{CacheSize: -1})
	if err != nil {
		return nil, err
	}
	defer setup.close()
	st, err := setup.eng.BuildLabels()
	if err != nil {
		return nil, err
	}
	cfg.logf("labels: %s", st)
	if _, err := setup.eng.BuildOracle(oracle.Config{K: 8, Strategy: oracle.Degree}); err != nil {
		return nil, err
	}
	lbl := setup.eng.Labels()
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("build (hubs=%d rows=%d)", st.Hubs, lbl.Rows()),
		fmt.Sprintf("%d", st.Pruned), fmt.Sprintf("%d", st.Statements),
		ms(st.BuildTime), "-"})

	queries := graph.RandomQueries(g, cfg.queries(), cfg.Seed)
	for _, alg := range []core.Algorithm{core.AlgLabel, core.AlgALT, core.AlgBSDJ} {
		a, err := runQueries(setup.eng, alg, queries)
		if err != nil {
			return nil, err
		}
		perQuery := (a.Time / time.Duration(len(queries))).Round(time.Microsecond)
		t.Rows = append(t.Rows, []string{
			alg.String(), f1(a.Affected), f1(a.Stmts), ms(a.Time), perQuery.String()})
	}
	return t, nil
}
