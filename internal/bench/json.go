package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Machine-readable benchmark output: every experiment (and the load
// generator) can be written as BENCH_<name>.json so the perf trajectory of
// the repository is recorded per commit instead of scrolling away in CI
// logs. The schema keeps the table verbatim (header + rows) and adds the
// run configuration, so downstream tooling can diff runs without parsing
// the human tables.

// JSONResult is the serialized form of one experiment run.
type JSONResult struct {
	ID         string         `json:"id"`
	Title      string         `json:"title"`
	Header     []string       `json:"header"`
	Rows       [][]string     `json:"rows"`
	Config     map[string]any `json:"config,omitempty"`
	DurationMS int64          `json:"duration_ms"`
	// UnixTime stamps the run (seconds) for trajectory plots.
	UnixTime int64 `json:"unix_time"`
}

// WriteTableJSON writes tab as BENCH_<id>.json under dir (created if
// missing) and returns the file path.
func WriteTableJSON(dir string, tab *Table, cfg Config, dur time.Duration) (string, error) {
	res := JSONResult{
		ID:     tab.ID,
		Title:  tab.Title,
		Header: tab.Header,
		Rows:   tab.Rows,
		Config: map[string]any{
			"queries": cfg.queries(),
			"scale":   cfg.Scale,
			"seed":    cfg.Seed,
		},
		DurationMS: dur.Milliseconds(),
		UnixTime:   time.Now().Unix(),
	}
	return writeJSONFile(dir, tab.ID, res)
}

// LoadGenJSON is the serialized load-generator run: the cold/hot QPS split
// the serving tier is judged by.
type LoadGenJSON struct {
	ID             string         `json:"id"`
	Config         map[string]any `json:"config"`
	ColdQPS        float64        `json:"cold_qps"`
	ColdMS         int64          `json:"cold_ms"`
	ColdErrors     int            `json:"cold_errors"`
	ColdGateWaitUS int64          `json:"cold_gate_wait_us"`
	HotQPS         float64        `json:"hot_qps"`
	HotMS          int64          `json:"hot_ms"`
	HotErrors      int            `json:"hot_errors"`
	HotGateWaitUS  int64          `json:"hot_gate_wait_us"`
	Speedup        float64        `json:"speedup"`
	CacheHits      uint64         `json:"cache_hits"`
	CacheMiss      uint64         `json:"cache_misses"`
	Errors         int            `json:"errors"`
	UnixTime       int64          `json:"unix_time"`
}

// WriteLoadGenJSON writes a load-generator result as BENCH_loadgen.json
// under dir and returns the file path.
func WriteLoadGenJSON(dir string, cfg LoadGenConfig, r *LoadGenResult) (string, error) {
	speedup := 0.0
	if r.ColdQPS > 0 {
		speedup = r.HotQPS / r.ColdQPS
	}
	res := LoadGenJSON{
		ID: "loadgen",
		Config: map[string]any{
			"alg":     cfg.Alg.String(),
			"nodes":   cfg.Nodes,
			"queries": cfg.Queries,
			"repeat":  cfg.Repeat,
			"clients": cfg.Clients,
			"seed":    cfg.Seed,
		},
		ColdQPS:        r.ColdQPS,
		ColdMS:         r.ColdDur.Milliseconds(),
		ColdErrors:     r.ColdErrors,
		ColdGateWaitUS: r.ColdGateWait.Microseconds(),
		HotQPS:         r.HotQPS,
		HotMS:          r.HotDur.Milliseconds(),
		HotErrors:      r.HotErrors,
		HotGateWaitUS:  r.HotGateWait.Microseconds(),
		Speedup:        speedup,
		CacheHits:      r.Cache.Hits,
		CacheMiss:      r.Cache.Misses,
		Errors:         r.Errors,
		UnixTime:       time.Now().Unix(),
	}
	return writeJSONFile(dir, "loadgen", res)
}

func writeJSONFile(dir, name string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", name))
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
