package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// The hydration benchmark: how fast does a replica come up from a
// snapshot + WAL suffix versus the cold path (CSV re-ingest plus a full
// SegTable and oracle rebuild)? This is the number the fleet-hydration
// design is judged by — BENCH_recovery.json records it per commit.

// RunRecovery measures cold replica startup against snapshot hydration
// over the same durable state.
func RunRecovery(c Config) (*Table, error) {
	n := c.scale(4000)
	lthd := int64(20)
	k := 4
	g := graph.Power(n, 3, c.Seed)

	work, err := os.MkdirTemp(c.dataDir(), "fem_recovery_")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)
	csvPath := filepath.Join(work, "graph.csv")
	if err := g.SaveFile(csvPath); err != nil {
		return nil, err
	}
	dataDir := filepath.Join(work, "data")

	// Phase 0 (untimed): a durable primary builds the state both startup
	// paths will restore — load, SegTable, oracle, snapshot, then a few
	// post-snapshot mutation batches so hydration also replays a WAL
	// suffix, exactly like a crashed or rolling-restarted replica.
	c.logf("recovery: building durable state (n=%d, lthd=%d, k=%d)", n, lthd, k)
	primary, err := makeEngine(g, rdb.Options{}, core.Options{DataDir: dataDir})
	if err != nil {
		return nil, err
	}
	if _, err := primary.eng.BuildSegTable(lthd); err != nil {
		primary.close()
		return nil, err
	}
	if _, err := primary.eng.BuildOracle(oracle.Config{K: k}); err != nil {
		primary.close()
		return nil, err
	}
	if _, err := primary.eng.Snapshot(context.Background()); err != nil {
		primary.close()
		return nil, err
	}
	for i := int64(0); i < 4; i++ {
		m := core.Mutation{Op: core.MutInsert, From: i, To: (i*37 + 11) % n, Weight: 3 + i}
		if _, err := primary.eng.ApplyMutations([]core.Mutation{m}); err != nil {
			primary.close()
			return nil, err
		}
	}
	primary.close()

	// Cold path, timed phase by phase: parse the CSV, bulk-load the
	// relations, rebuild both indexes from scratch.
	c.logf("recovery: cold path (CSV + rebuild)")
	t0 := time.Now()
	g2, err := graph.LoadFile(csvPath)
	if err != nil {
		return nil, err
	}
	parseDur := time.Since(t0)
	t1 := time.Now()
	cold, err := makeEngine(g2, rdb.Options{}, core.Options{})
	if err != nil {
		return nil, err
	}
	defer cold.close()
	loadDur := time.Since(t1)
	t2 := time.Now()
	if _, err := cold.eng.BuildSegTable(lthd); err != nil {
		return nil, err
	}
	segDur := time.Since(t2)
	t3 := time.Now()
	if _, err := cold.eng.BuildOracle(oracle.Config{K: k}); err != nil {
		return nil, err
	}
	orcDur := time.Since(t3)
	coldTotal := time.Since(t0)

	// Hydrate path, timed as one unit: open a fresh database and restore
	// snapshot + WAL suffix. Indexes come back from the manifest.
	c.logf("recovery: hydrate path (snapshot + WAL replay)")
	t4 := time.Now()
	hdb, err := rdb.Open(rdb.Options{})
	if err != nil {
		return nil, err
	}
	heng, err := core.OpenFromSnapshot(hdb, core.Options{DataDir: dataDir})
	if err != nil {
		hdb.Close()
		return nil, fmt.Errorf("hydrate: %w", err)
	}
	hydrateDur := time.Since(t4)
	defer heng.Close()
	ds := heng.DurabilityStats()
	// The SegTable must come back from the manifest (replayed batches
	// repair it in place); the oracle was restored too, then went cold
	// during replay exactly as it did on the primary — the mutation path
	// invalidates it, and a faithful replay must re-enact that.
	if heng.SegLthd() != lthd || !heng.OracleInvalidated() {
		return nil, fmt.Errorf("hydrated replica state off (lthd=%d, oracle invalidated=%v)",
			heng.SegLthd(), heng.OracleInvalidated())
	}

	speedup := float64(coldTotal) / float64(hydrateDur)
	tab := &Table{
		ID:     "recovery",
		Title:  fmt.Sprintf("replica startup, Power n=%d: CSV re-ingest + rebuild vs snapshot hydrate", n),
		Header: []string{"path", "phase", "time ms", "notes"},
		Rows: [][]string{
			{"cold", "csv parse", ms(parseDur), fmt.Sprintf("%d edges", g2.M())},
			{"cold", "bulk load", ms(loadDur), ""},
			{"cold", "build segtable", ms(segDur), fmt.Sprintf("lthd=%d", lthd)},
			{"cold", "build oracle", ms(orcDur), fmt.Sprintf("k=%d", k)},
			{"cold", "total", ms(coldTotal), ""},
			{"hydrate", "total", ms(hydrateDur),
				fmt.Sprintf("snapshot v%d + %d WAL records", ds.LastSnapshotVersion, ds.ReplayedRecords)},
			{"", "speedup", fmt.Sprintf("%.1fx", speedup), "cold total / hydrate total"},
		},
	}
	return tab, nil
}
