package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// RunPlanner is the acceptance experiment for the unified Query API: the
// same query set with every hand-picked exact algorithm and with AlgAuto,
// on a power-law graph carrying both indexes (SegTable and landmark
// oracle), so the planner has its full decision space. The auto row should
// track the best hand-picked row — the planner's job is to not be the
// slowest column — and its decision mix shows which way it leaned. The
// cache is disabled so every row measures the search itself; the JSON form
// (BENCH_planner.json) records the auto-vs-manual trajectory per commit.
func RunPlanner(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "planner",
		Title:  "Cost-based planner vs hand-picked algorithms, Power graph (lthd=20, k=8)",
		Header: []string{"alg", "time", "stmts", "affected", "found", "decisions"},
	}
	n := cfg.scale(2000)
	g := graph.Power(n, 3, cfg.Seed)
	setup, err := makeEngine(g, rdb.Options{}, core.Options{CacheSize: -1})
	if err != nil {
		return nil, err
	}
	defer setup.close()
	if _, err := setup.eng.BuildSegTable(20); err != nil {
		return nil, err
	}
	if _, err := setup.eng.BuildOracle(oracle.Config{K: 8, Strategy: oracle.Degree}); err != nil {
		return nil, err
	}
	queries := graph.RandomQueries(g, cfg.queries()*2, cfg.Seed)
	for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgBSEG, core.AlgALT, core.AlgAuto} {
		cfg.logf("planner: |V|=%d %s", n, alg)
		a, err := runQueries(setup.eng, alg, queries)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			alg.String(), ms(a.Time), f1(a.Stmts), f1(a.Affected),
			fmt.Sprintf("%d/%d", a.Found, a.N), formatDecisions(a.Decisions)})
	}
	return t, nil
}

// formatDecisions renders a stable "label:count" list for the table.
func formatDecisions(d map[string]int) string {
	if len(d) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", k, d[k])
	}
	return out
}
