package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// The soak benchmark: sustained mixed read/mutation load against one shared
// engine for a fixed wall-clock duration, reporting latency percentiles per
// time window rather than one end-of-run number. A single aggregate hides
// exactly what sustained load exists to find — tail drift as caches churn,
// latency spikes when a mutation batch drains the gate, throughput sag
// after an index repair — so the unit of output is the window. Gate-wait
// share (total admission wait over total latency) rides along per window:
// it separates "queries got slower" from "queries waited longer to start".

// SoakConfig configures one sustained-load run.
type SoakConfig struct {
	// Graph spec (power-law, like the serving load generator).
	Nodes     int64
	AvgDegree int
	Seed      int64
	// Duration is the measured wall-clock span; Window the percentile
	// bucket width (the run reports ceil(Duration/Window) windows).
	Duration time.Duration
	Window   time.Duration
	// Clients is the reader worker-pool width.
	Clients int
	// Alg is the read workload's algorithm (BSEG builds its index first).
	Alg  core.Algorithm
	Lthd int64
	// Pairs is the distinct query-pair pool readers cycle through; small
	// pools exercise the path cache, mutations keep invalidating it.
	Pairs int
	// MutateEvery paces the mutation loop: one batch per interval
	// (0 disables mutations — a pure-read soak). Each batch applies
	// MutateBatch weight updates on existing edges plus an insert/delete
	// churn pair, so the SegTable repair path runs under read load.
	MutateEvery time.Duration
	MutateBatch int
	// CacheSize for the engine (0 = default).
	CacheSize int
	// DataDir arms the durability subsystem: mutations are WAL-fsynced
	// before applying, an initial snapshot is taken after load, and each
	// window reports the share of mutation wall time spent in WAL fsync
	// (empty = no durability, WAL share reads 0).
	DataDir string
}

// DefaultSoakConfig sizes a run that finishes in seconds; CI's smoke run
// shrinks Duration further.
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		Nodes:       3000,
		AvgDegree:   3,
		Seed:        42,
		Duration:    10 * time.Second,
		Window:      2 * time.Second,
		Clients:     8,
		Alg:         core.AlgBSDJ,
		Lthd:        20,
		Pairs:       64,
		MutateEvery: 500 * time.Millisecond,
		MutateBatch: 4,
	}
}

// SoakWindow is one time window's aggregate (the Overall summary reuses the
// shape with Index -1 spanning the whole run).
type SoakWindow struct {
	Index   int     `json:"index"`
	StartMS int64   `json:"start_ms"`
	EndMS   int64   `json:"end_ms"`
	Queries int     `json:"queries"`
	Errors  int     `json:"errors"`
	QPS     float64 `json:"qps"`
	P50US   int64   `json:"p50_us"`
	P95US   int64   `json:"p95_us"`
	P99US   int64   `json:"p99_us"`
	MaxUS   int64   `json:"max_us"`
	// GateShare is total admission wait / total query latency in the
	// window: the fraction of observed latency spent queued, not searching.
	GateShare float64 `json:"gate_share"`
	// WALShare is total WAL fsync time / total mutation wall time in the
	// window (0 without SoakConfig.DataDir): how much of the write path
	// durability costs, reported alongside gate wait so operators can tell
	// "mutations got slower" apart from "fsync got slower".
	WALShare float64 `json:"wal_share"`
}

// SoakResult is the full run.
type SoakResult struct {
	Windows []SoakWindow
	Overall SoakWindow
	// Mutations counts applied edge mutations; MutationErrors failed
	// batches (a failed batch may still have applied a prefix).
	Mutations      int
	MutationErrors int
	Elapsed        time.Duration
	Cache          core.CacheStats
}

// soakSample is one finished read query.
type soakSample struct {
	offset time.Duration // since run start
	lat    time.Duration
	gate   time.Duration
	err    bool
}

// soakMutSample is one applied mutation batch: wall time and the WAL
// fsync time inside it (0 without durability).
type soakMutSample struct {
	offset  time.Duration
	wall    time.Duration
	walSync time.Duration
}

// RunSoak executes the sustained-load profile.
func RunSoak(cfg SoakConfig, logf func(format string, args ...any)) (*SoakResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Duration <= 0 || cfg.Window <= 0 || cfg.Window > cfg.Duration {
		return nil, fmt.Errorf("bench: soak needs 0 < window <= duration (got %v / %v)", cfg.Window, cfg.Duration)
	}
	if cfg.Clients < 1 || cfg.Pairs < 1 {
		return nil, fmt.Errorf("bench: soak needs at least one client and one pair")
	}
	g := graph.Power(cfg.Nodes, cfg.AvgDegree, cfg.Seed)
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	eng := core.NewEngine(db, core.Options{CacheSize: cfg.CacheSize, DataDir: cfg.DataDir})
	defer eng.Close()
	logf("soak: loading power graph (%d nodes, %d edges)", g.N, g.M())
	if err := eng.LoadGraph(g); err != nil {
		return nil, err
	}
	if cfg.Alg == core.AlgBSEG {
		logf("soak: building SegTable (lthd=%d)", cfg.Lthd)
		if _, err := eng.BuildSegTable(cfg.Lthd); err != nil {
			return nil, err
		}
	}
	if cfg.DataDir != "" {
		// Snapshot the loaded state so the run measures steady-state WAL
		// appends, not a log growing over an uncaptured base.
		logf("soak: durability armed (%s), writing initial snapshot", cfg.DataDir)
		if _, err := eng.Snapshot(context.Background()); err != nil {
			return nil, err
		}
	}
	pairs := graph.RandomQueries(g, cfg.Pairs, cfg.Seed+1)

	res := &SoakResult{}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var (
		mu         sync.Mutex
		samples    []soakSample
		mutSamples []soakMutSample
		wg         sync.WaitGroup
	)
	t0 := time.Now()

	// Readers: each cycles the pair pool in its own deterministic order
	// until the deadline. Queries cut off by the deadline itself are
	// discarded — a half-measured latency is not a latency.
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			local := make([]soakSample, 0, 1024)
			for ctx.Err() == nil {
				p := pairs[rng.Intn(len(pairs))]
				q0 := time.Now()
				qres, qerr := eng.Query(ctx, core.QueryRequest{Source: p[0], Target: p[1], Alg: cfg.Alg})
				lat := time.Since(q0)
				if qerr != nil && (errors.Is(qerr, context.Canceled) || errors.Is(qerr, context.DeadlineExceeded)) {
					break
				}
				s := soakSample{offset: time.Since(t0) - lat, lat: lat, err: qerr != nil}
				if qs := qres.Stats; qs != nil {
					s.gate = qs.GateWait
				}
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}

	// Mutator: one batch per tick — weight updates on existing edges plus
	// an insert/delete churn pair, so cache invalidation and SegTable
	// repair both run under the read load.
	if cfg.MutateEvery > 0 && cfg.MutateBatch > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 104729))
			tick := time.NewTicker(cfg.MutateEvery)
			defer tick.Stop()
			// The single mutator is the only WAL appender, so the fsync-time
			// delta across one batch is exactly that batch's fsync cost.
			prevSync := eng.DurabilityStats().WAL.SyncTime
			var churn [][2]int64 // inserted chords awaiting deletion
			// occupied tracks every (from, to) pair with a live edge: the
			// initial graph plus chords not yet deleted. Churn chords must
			// avoid these pairs — MutDelete removes every parallel (from, to)
			// edge, so deleting a chord that collided with a graph edge would
			// silently drift the graph away from the configured profile for
			// the rest of the run.
			occupied := make(map[[2]int64]bool, len(g.Edges))
			for _, ed := range g.Edges {
				occupied[[2]int64{ed.From, ed.To}] = true
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				muts := make([]core.Mutation, 0, cfg.MutateBatch+2)
				for i := 0; i < cfg.MutateBatch; i++ {
					ed := g.Edges[rng.Intn(len(g.Edges))]
					muts = append(muts, core.Mutation{
						Op: core.MutUpdate, From: ed.From, To: ed.To,
						Weight: 1 + rng.Int63n(10),
					})
				}
				if chord, ok := pickChord(rng, g.N, occupied); ok {
					muts = append(muts, core.Mutation{
						Op: core.MutInsert, From: chord[0], To: chord[1], Weight: 1 + rng.Int63n(10)})
					occupied[chord] = true
					churn = append(churn, chord)
				}
				if len(churn) > 8 {
					old := churn[0]
					churn = churn[1:]
					muts = append(muts, core.Mutation{Op: core.MutDelete, From: old[0], To: old[1]})
					delete(occupied, old)
				}
				b0 := time.Now()
				st, merr := eng.ApplyMutations(muts)
				wall := time.Since(b0)
				syncNow := eng.DurabilityStats().WAL.SyncTime
				msamp := soakMutSample{offset: time.Since(t0) - wall, wall: wall, walSync: syncNow - prevSync}
				prevSync = syncNow
				mu.Lock()
				mutSamples = append(mutSamples, msamp)
				if st != nil {
					res.Mutations += st.Applied
				}
				if merr != nil && !errors.Is(merr, context.Canceled) {
					res.MutationErrors++
				}
				mu.Unlock()
			}
		}()
	}

	wg.Wait()
	res.Elapsed = time.Since(t0)
	res.Cache = eng.CacheStats()

	// Window the samples by arrival offset and aggregate.
	n := int((cfg.Duration + cfg.Window - 1) / cfg.Window)
	byWin := make([][]soakSample, n)
	for _, s := range samples {
		w := int(s.offset / cfg.Window)
		if w < 0 {
			w = 0
		}
		if w >= n {
			w = n - 1
		}
		byWin[w] = append(byWin[w], s)
	}
	byMutWin := make([][]soakMutSample, n)
	for _, s := range mutSamples {
		w := int(s.offset / cfg.Window)
		if w < 0 {
			w = 0
		}
		if w >= n {
			w = n - 1
		}
		byMutWin[w] = append(byMutWin[w], s)
	}
	for w, ws := range byWin {
		// The final window may be truncated by the deadline; QPS must divide
		// by the span it actually covers, not the nominal window width.
		start := time.Duration(w) * cfg.Window
		end := start + cfg.Window
		if end > cfg.Duration {
			end = cfg.Duration
		}
		sw := aggregateWindow(ws, end-start)
		sw.Index = w
		sw.StartMS = start.Milliseconds()
		sw.EndMS = end.Milliseconds()
		sw.WALShare = walShare(byMutWin[w])
		res.Windows = append(res.Windows, sw)
		logf("soak: window %d [%d-%dms]: %d queries (%.0f/sec), p50 %dus p95 %dus p99 %dus, gate %.1f%%, wal %.1f%%, %d errors",
			w, sw.StartMS, sw.EndMS, sw.Queries, sw.QPS, sw.P50US, sw.P95US, sw.P99US, 100*sw.GateShare, 100*sw.WALShare, sw.Errors)
	}
	res.Overall = aggregateWindow(samples, res.Elapsed)
	res.Overall.Index = -1
	res.Overall.EndMS = res.Elapsed.Milliseconds()
	res.Overall.WALShare = walShare(mutSamples)
	return res, nil
}

// walShare is total WAL fsync time over total mutation wall time for a
// sample set (0 with no mutations or no durability).
func walShare(samples []soakMutSample) float64 {
	var wall, fsync time.Duration
	for _, s := range samples {
		wall += s.wall
		fsync += s.walSync
	}
	if wall <= 0 {
		return 0
	}
	return float64(fsync) / float64(wall)
}

// pickChord draws a churn chord (from, to) colliding with no live edge:
// self-loops and occupied pairs are redrawn, up to a bounded number of
// attempts (a dense graph may simply have no free pair — the caller then
// skips this tick's churn rather than risking a collision).
func pickChord(rng *rand.Rand, n int64, occupied map[[2]int64]bool) ([2]int64, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		c := [2]int64{rng.Int63n(n), rng.Int63n(n)}
		if c[0] == c[1] || occupied[c] {
			continue
		}
		return c, true
	}
	return [2]int64{}, false
}

// aggregateWindow computes one window's percentiles over its samples. span
// is the window's wall-clock width (for QPS).
func aggregateWindow(ws []soakSample, span time.Duration) SoakWindow {
	sw := SoakWindow{}
	lats := make([]time.Duration, 0, len(ws))
	var latSum, gateSum time.Duration
	for _, s := range ws {
		if s.err {
			sw.Errors++
			continue
		}
		lats = append(lats, s.lat)
		latSum += s.lat
		gateSum += s.gate
	}
	sw.Queries = len(lats)
	if span > 0 {
		sw.QPS = float64(len(lats)) / span.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sw.P50US = lats[len(lats)/2].Microseconds()
		sw.P95US = lats[min(len(lats)-1, len(lats)*95/100)].Microseconds()
		sw.P99US = lats[min(len(lats)-1, len(lats)*99/100)].Microseconds()
		sw.MaxUS = lats[len(lats)-1].Microseconds()
		if latSum > 0 {
			sw.GateShare = float64(gateSum) / float64(latSum)
		}
	}
	return sw
}

// SoakTable formats the run in the harness table style: one row per window,
// then the whole-run summary.
func SoakTable(cfg SoakConfig, r *SoakResult) *Table {
	tab := &Table{
		ID: "soak",
		Title: fmt.Sprintf("Sustained load, %s over power(%d,%d), %d clients, %v in %v windows, mutations every %v",
			cfg.Alg, cfg.Nodes, cfg.AvgDegree, cfg.Clients, cfg.Duration, cfg.Window, cfg.MutateEvery),
		Header: []string{"window", "queries", "errors", "queries/sec", "p50", "p95", "p99", "max", "gate share", "wal share"},
	}
	wal := func(w SoakWindow) string {
		if cfg.DataDir == "" {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*w.WALShare)
	}
	row := func(name string, w SoakWindow) []string {
		return []string{
			name, fmt.Sprint(w.Queries), fmt.Sprint(w.Errors), fmt.Sprintf("%.0f", w.QPS),
			us(w.P50US), us(w.P95US), us(w.P99US), us(w.MaxUS),
			fmt.Sprintf("%.1f%%", 100*w.GateShare), wal(w),
		}
	}
	for _, w := range r.Windows {
		tab.Rows = append(tab.Rows, row(fmt.Sprintf("[%d-%dms]", w.StartMS, w.EndMS), w))
	}
	tab.Rows = append(tab.Rows, row("overall", r.Overall))
	return tab
}

// us renders a microsecond figure as a duration string.
func us(v int64) string {
	return (time.Duration(v) * time.Microsecond).Round(10 * time.Microsecond).String()
}

// SoakJSON is the serialized run: the windowed percentile series the perf
// trajectory is judged by, plus the whole-run summary.
type SoakJSON struct {
	ID             string         `json:"id"`
	Config         map[string]any `json:"config"`
	Windows        []SoakWindow   `json:"windows"`
	Overall        SoakWindow     `json:"overall"`
	Mutations      int            `json:"mutations"`
	MutationErrors int            `json:"mutation_errors"`
	CacheHits      uint64         `json:"cache_hits"`
	CacheMisses    uint64         `json:"cache_misses"`
	ElapsedMS      int64          `json:"elapsed_ms"`
	UnixTime       int64          `json:"unix_time"`
}

// WriteSoakJSON writes the run as BENCH_soak.json under dir.
func WriteSoakJSON(dir string, cfg SoakConfig, r *SoakResult) (string, error) {
	res := SoakJSON{
		ID: "soak",
		Config: map[string]any{
			"alg":          cfg.Alg.String(),
			"nodes":        cfg.Nodes,
			"clients":      cfg.Clients,
			"duration":     cfg.Duration.String(),
			"window":       cfg.Window.String(),
			"pairs":        cfg.Pairs,
			"mutate_every": cfg.MutateEvery.String(),
			"mutate_batch": cfg.MutateBatch,
			"seed":         cfg.Seed,
			"durable":      cfg.DataDir != "",
		},
		Windows:        r.Windows,
		Overall:        r.Overall,
		Mutations:      r.Mutations,
		MutationErrors: r.MutationErrors,
		CacheHits:      r.Cache.Hits,
		CacheMisses:    r.Cache.Misses,
		ElapsedMS:      r.Elapsed.Milliseconds(),
		UnixTime:       time.Now().Unix(),
	}
	return writeJSONFile(dir, "soak", res)
}
