package bench

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// Regression tests for the two soak measurement bugs: churn chords that
// collide with live edges (the delayed MutDelete then strips every
// parallel edge and drifts the graph), and the truncated final window
// reporting QPS against the full nominal window width.

func TestPickChordAvoidsCollisions(t *testing.T) {
	// n = 2 with (0, 1) occupied leaves exactly one legal pair; every seed
	// must land on it — a single collision here means a run would have
	// deleted a pre-existing graph edge.
	occupied := map[[2]int64]bool{{0, 1}: true}
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, ok := pickChord(rng, 2, occupied)
		if !ok {
			t.Fatalf("seed %d: gave up with a free pair available", seed)
		}
		if c != [2]int64{1, 0} {
			t.Fatalf("seed %d: chord %v is occupied or a self-loop", seed, c)
		}
	}
	// With every pair occupied the picker must give up, not collide.
	occupied[[2]int64{1, 0}] = true
	if c, ok := pickChord(rand.New(rand.NewSource(1)), 2, occupied); ok {
		t.Fatalf("returned %v with no free pair left", c)
	}
	// n = 1 only offers self-loops.
	if c, ok := pickChord(rand.New(rand.NewSource(1)), 1, map[[2]int64]bool{}); ok {
		t.Fatalf("returned self-loop %v", c)
	}
}

func TestAggregateWindowTruncatedSpan(t *testing.T) {
	ws := make([]soakSample, 0, 10)
	for i := 0; i < 10; i++ {
		ws = append(ws, soakSample{lat: time.Millisecond})
	}
	if got := aggregateWindow(ws, 2*time.Second).QPS; got != 5 {
		t.Errorf("full window: QPS = %v, want 5", got)
	}
	// A deadline-truncated 500ms window with the same samples carries 4x
	// the rate; dividing by the nominal 2s width under-reported it 4x.
	if got := aggregateWindow(ws, 500*time.Millisecond).QPS; got != 20 {
		t.Errorf("truncated window: QPS = %v, want 20", got)
	}
}

// TestRunSoakTruncatedWindow runs a soak whose duration is not a multiple
// of the window width: the final window must cover only the leftover span
// and report QPS against it.
func TestRunSoakTruncatedWindow(t *testing.T) {
	cfg := SoakConfig{
		Nodes:       200,
		AvgDegree:   3,
		Seed:        42,
		Duration:    300 * time.Millisecond,
		Window:      200 * time.Millisecond,
		Clients:     2,
		Alg:         core.AlgBSDJ,
		Pairs:       8,
		MutateEvery: 50 * time.Millisecond,
		MutateBatch: 2,
	}
	res, err := RunSoak(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("expected 2 windows, got %d", len(res.Windows))
	}
	last := res.Windows[1]
	if last.StartMS != 200 || last.EndMS != 300 {
		t.Fatalf("last window spans [%d-%dms], want [200-300ms]", last.StartMS, last.EndMS)
	}
	for _, w := range res.Windows {
		span := float64(w.EndMS-w.StartMS) / 1000
		if want := float64(w.Queries) / span; math.Abs(w.QPS-want) > 1e-9*want {
			t.Errorf("window %d: QPS %v != queries/span %v (%d queries over %dms)",
				w.Index, w.QPS, want, w.Queries, w.EndMS-w.StartMS)
		}
	}
}
