package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tinyConfig keeps runner tests fast.
func tinyConfig() Config {
	return Config{Queries: 2, Seed: 7, Scale: 0.05}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 33 {
		t.Fatalf("expected 33 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Fn == nil {
			t.Errorf("%s: nil runner", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := Lookup(e.ID); !ok {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
		if _, ok := Lookup(strings.ToUpper(e.ID)); !ok {
			t.Errorf("Lookup(%s) should be case-insensitive", e.ID)
		}
	}
	if _, ok := Lookup("does-not-exist"); ok {
		t.Error("Lookup of unknown id should fail")
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Format()
	if !strings.Contains(out, "== X: demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "longcolumn") {
		t.Errorf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d: %q", len(lines), out)
	}
}

// runAndCheck executes a runner and sanity-checks its output shape.
func runAndCheck(t *testing.T, id string, wantCols int) *Table {
	t.Helper()
	fn, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tab, err := fn(tinyConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Header) != wantCols {
		t.Fatalf("%s: expected %d columns, got %d (%v)", id, wantCols, len(tab.Header), tab.Header)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	for _, r := range tab.Rows {
		if len(r) != wantCols {
			t.Fatalf("%s: row arity %d != %d: %v", id, len(r), wantCols, r)
		}
	}
	return tab
}

func TestRunTable2(t *testing.T) { runAndCheck(t, "table2", 7) }
func TestRunFig6b(t *testing.T)  { runAndCheck(t, "fig6b", 4) }
func TestRunFig6c(t *testing.T)  { runAndCheck(t, "fig6c", 4) }
func TestRunFig6d(t *testing.T)  { runAndCheck(t, "fig6d", 3) }
func TestRunFig7c(t *testing.T)  { runAndCheck(t, "fig7c", 5) }
func TestRunFig8c(t *testing.T)  { runAndCheck(t, "fig8c", 4) }
func TestRunFig8d(t *testing.T)  { runAndCheck(t, "fig8d", 4) }
func TestRunFig9a(t *testing.T)  { runAndCheck(t, "fig9a", 5) }
func TestRunFig9f(t *testing.T)  { runAndCheck(t, "fig9f", 3) }
func TestRunFig9h(t *testing.T)  { runAndCheck(t, "fig9h", 3) }
func TestRunAblation(t *testing.T) {
	runAndCheck(t, "ablation-pruning", 5)
	runAndCheck(t, "ablation-direction", 5)
}

func TestRunFig8b(t *testing.T) { runAndCheck(t, "fig8b", 3) }
func TestRunFig9g(t *testing.T) { runAndCheck(t, "fig9g", 3) }
func TestRunFig7a(t *testing.T) { runAndCheck(t, "fig7a", 4) }
func TestRunFig9b(t *testing.T) { runAndCheck(t, "fig9b", 6) }

func TestRunOracleALT(t *testing.T) {
	tab := runAndCheck(t, "oracle-alt", 8)
	// The headline claim of the experiment — ALT affects fewer tuples
	// than BSDJ — is asserted statistically in core's differential suite;
	// here (tiny, noisy config) just surface the columns for inspection.
	for _, r := range tab.Rows {
		t.Logf("|V|=%s: BSDJ affected %s, ALT affected %s (pruned %s)", r[0], r[1], r[4], r[7])
	}
}

func TestRunOracleApprox(t *testing.T) { runAndCheck(t, "oracle-approx", 6) }

func TestRunLabels(t *testing.T) { runAndCheck(t, "labels", 5) }

func TestRunRecovery(t *testing.T) {
	tab := runAndCheck(t, "recovery", 4)
	// The last row is the cold-total / hydrate-total speedup.
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "speedup" {
		t.Fatalf("expected a speedup row, got %v", last)
	}
	t.Logf("recovery speedup: %s", last[2])
}

// TestRunPlanner smoke-tests the auto-vs-manual experiment: four rows
// (BSDJ, BSEG, ALT, Auto), and the Auto row carries a planner decision mix
// while the manual rows do not.
func TestRunPlanner(t *testing.T) {
	tab := runAndCheck(t, "planner", 6)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Auto" {
		t.Fatalf("last row should be Auto, got %q", last[0])
	}
	if last[5] == "-" || last[5] == "" {
		t.Errorf("Auto row should report planner decisions, got %q", last[5])
	}
	for _, r := range tab.Rows[:len(tab.Rows)-1] {
		if r[5] != "-" {
			t.Errorf("manual row %s should not report decisions, got %q", r[0], r[5])
		}
	}
}

// TestRunMutationThroughput smoke-tests the dynamic-graph experiment: all
// five rows present, singles and batch both applied, and the table ID that
// names the BENCH_mutations.json artifact.
func TestRunMutationThroughput(t *testing.T) {
	tab := runAndCheck(t, "mutation-throughput", 7)
	if tab.ID != "mutations" {
		t.Errorf("table ID %q, want mutations (names the JSON artifact)", tab.ID)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("expected 5 rows, got %d", len(tab.Rows))
	}
}

// TestJSONWriters round-trips the machine-readable output.
func TestJSONWriters(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	path, err := WriteTableJSON(dir, tab, tinyConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_X.json") {
		t.Fatalf("unexpected path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res JSONResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "X" || len(res.Rows) != 1 || res.Config["queries"] == nil {
		t.Fatalf("bad JSON round-trip: %+v", res)
	}

	lg, err := WriteLoadGenJSON(dir, DefaultLoadGenConfig(), &LoadGenResult{ColdQPS: 10, HotQPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(lg)
	if err != nil {
		t.Fatal(err)
	}
	var lgr LoadGenJSON
	if err := json.Unmarshal(data, &lgr); err != nil {
		t.Fatal(err)
	}
	if lgr.Speedup != 3 || lgr.ID != "loadgen" {
		t.Fatalf("bad loadgen JSON: %+v", lgr)
	}
}
