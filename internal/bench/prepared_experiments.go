package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// RunPrepared is the acceptance experiment for the prepared-statement
// subsystem: the same query workload against two engines that differ only
// in the plan cache — on (every statement shape compiles once, the FEM
// loops re-execute cached plans) versus off (the paper's
// statement-at-a-time baseline, re-parsing and re-planning every
// statement like SQL text shipped through JDBC). The metric that matters
// is per-statement latency and its parse/plan share: the workload issues
// thousands of statements per search, so shaving the constant parse cost
// off each one is exactly the microseconds-vs-milliseconds lever the
// "Shortest Paths in Microseconds" line of work describes. The JSON form
// (BENCH_prepared.json) records the prepared-vs-reparse trajectory per
// commit.
func RunPrepared(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "prepared",
		Title: "Prepared execution (plan cache) vs statement-at-a-time re-parse, Power graph (lthd=20)",
		Header: []string{"mode", "alg", "time", "qps", "stmts", "stmt_us",
			"parse_us/stmt", "cache_hit%"},
	}
	n := cfg.scale(2000)
	g := graph.Power(n, 3, cfg.Seed)
	queries := graph.RandomQueries(g, cfg.queries()*2, cfg.Seed)

	modes := []struct {
		name string
		dbo  rdb.Options
	}{
		{"prepared", rdb.Options{}},
		{"reparse", rdb.Options{PlanCacheSize: -1}},
	}
	for _, mode := range modes {
		// The path cache is off so every query runs its relational search:
		// this experiment measures statement execution, not memoization.
		setup, err := makeEngine(g, mode.dbo, core.Options{CacheSize: -1})
		if err != nil {
			return nil, err
		}
		if _, err := setup.eng.BuildSegTable(20); err != nil {
			setup.close()
			return nil, err
		}
		for _, alg := range []core.Algorithm{core.AlgBSDJ, core.AlgBSEG} {
			cfg.logf("prepared: |V|=%d mode=%s %s", n, mode.name, alg)
			// One warm-up pass fills the plan cache so the measured pass
			// reflects steady-state serving, then counters reset.
			if _, err := runQueries(setup.eng, alg, queries[:1]); err != nil {
				setup.close()
				return nil, err
			}
			setup.db.ResetStats()
			t0 := time.Now()
			a, err := runQueries(setup.eng, alg, queries)
			if err != nil {
				setup.close()
				return nil, err
			}
			wall := time.Since(t0)
			st := setup.db.Stats()
			stmts := st.Statements
			var stmtUS, parseUS float64
			if stmts > 0 {
				stmtUS = float64((st.ParsePlanDur + st.ExecDur).Microseconds()) / float64(stmts)
				parseUS = float64(st.ParsePlanDur.Microseconds()) / float64(stmts)
			}
			hitPct := 0.0
			if lookups := st.PlanCacheHits + st.PlanCacheMisses; lookups > 0 {
				hitPct = 100 * float64(st.PlanCacheHits) / float64(lookups)
			}
			qps := 0.0
			if wall > 0 {
				qps = float64(a.N) / wall.Seconds()
			}
			t.Rows = append(t.Rows, []string{
				mode.name, alg.String(), ms(a.Time), f1(qps), f1(a.Stmts),
				fmt.Sprintf("%.2f", stmtUS), fmt.Sprintf("%.2f", parseUS),
				f1(hitPct)})
		}
		setup.close()
	}
	return t, nil
}
