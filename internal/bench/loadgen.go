package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// LoadGenConfig configures the serving-tier load generator: a pool of
// concurrent clients drives one shared Engine through a cold round (the
// distinct pairs once, cache empty — every query is a real relational
// search) and a hot round (each pair replayed Repeat times against the warm
// cache). The cold/hot split is the serving-layer headline number: it shows
// what fraction of traffic the relational search actually has to absorb
// once answers are cached.
type LoadGenConfig struct {
	// Graph spec.
	Nodes     int64
	AvgDegree int
	Seed      int64
	// Workload: Queries distinct pairs, replayed Repeat times per round.
	Queries int
	Repeat  int
	// Clients is the worker-pool width.
	Clients int
	// Algorithm under load (BSEG builds its index first).
	Alg  core.Algorithm
	Lthd int64
	// CacheSize for the engine (0 = default).
	CacheSize int
}

// DefaultLoadGenConfig sizes a run that finishes in seconds.
func DefaultLoadGenConfig() LoadGenConfig {
	return LoadGenConfig{
		Nodes:     5000,
		AvgDegree: 3,
		Seed:      42,
		Queries:   20,
		Repeat:    5,
		Clients:   8,
		Alg:       core.AlgBSDJ,
		Lthd:      20,
	}
}

// LoadGenResult reports one cold-vs-hot load run. Per-round error counts
// and cumulative gate wait ride along with the QPS numbers: a throughput
// figure with hidden failures or admission queueing is not a throughput
// figure.
type LoadGenResult struct {
	ColdQueries  int
	ColdQPS      float64
	ColdDur      time.Duration
	ColdErrors   int
	ColdGateWait time.Duration
	HotQueries   int
	HotQPS       float64
	HotDur       time.Duration
	HotErrors    int
	HotGateWait  time.Duration
	Cache        core.CacheStats
	Errors       int
}

// RunLoadGen executes the load profile and returns cold/hot throughput.
func RunLoadGen(cfg LoadGenConfig, logf func(format string, args ...any)) (*LoadGenResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g := graph.Power(cfg.Nodes, cfg.AvgDegree, cfg.Seed)
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	eng := core.NewEngine(db, core.Options{CacheSize: cfg.CacheSize})
	defer eng.Close()
	logf("loadgen: loading power graph (%d nodes, %d edges)", g.N, g.M())
	if err := eng.LoadGraph(g); err != nil {
		return nil, err
	}
	if cfg.Alg == core.AlgBSEG {
		logf("loadgen: building SegTable (lthd=%d)", cfg.Lthd)
		if _, err := eng.BuildSegTable(cfg.Lthd); err != nil {
			return nil, err
		}
	}

	// Distinct pairs form the cold workload (every query a genuine
	// relational search); the hot workload replays each pair Repeat times
	// against the warm cache — the realistic shape of serving traffic,
	// where popular pairs dominate.
	pairs := graph.RandomQueries(g, cfg.Queries, cfg.Seed+1)
	cold := make([]core.QueryRequest, 0, len(pairs))
	for _, q := range pairs {
		cold = append(cold, core.QueryRequest{Source: q[0], Target: q[1], Alg: cfg.Alg})
	}
	hot := make([]core.QueryRequest, 0, len(cold)*cfg.Repeat)
	for r := 0; r < cfg.Repeat; r++ {
		hot = append(hot, cold...)
	}

	res := &LoadGenResult{}
	run := func(tag string, workload []core.QueryRequest) (int, float64, time.Duration, int, time.Duration) {
		t0 := time.Now()
		results := eng.QueryBatch(context.Background(), workload, cfg.Clients)
		dur := time.Since(t0)
		n, errs := 0, 0
		var gate time.Duration
		for _, r := range results {
			if qs := r.Result.Stats; qs != nil {
				gate += qs.GateWait
			}
			if r.Err != nil {
				errs++
				continue
			}
			n++
		}
		res.Errors += errs
		qps := float64(n) / dur.Seconds()
		logf("loadgen: %s round: %d queries in %v (%.0f queries/sec, %d errors, %v gate wait)",
			tag, n, dur.Round(time.Millisecond), qps, errs, gate.Round(time.Millisecond))
		return n, qps, dur, errs, gate
	}

	// Cold round: empty cache, distinct pairs only — pure search cost.
	res.ColdQueries, res.ColdQPS, res.ColdDur, res.ColdErrors, res.ColdGateWait = run("cold", cold)
	// Hot round: the full repeated set against the warm cache.
	res.HotQueries, res.HotQPS, res.HotDur, res.HotErrors, res.HotGateWait = run("hot", hot)
	res.Cache = eng.CacheStats()
	return res, nil
}

// LoadGenTable formats a result in the harness table style.
func LoadGenTable(cfg LoadGenConfig, r *LoadGenResult) *Table {
	speedup := "n/a"
	if r.ColdQPS > 0 {
		speedup = fmt.Sprintf("%.1fx", r.HotQPS/r.ColdQPS)
	}
	return &Table{
		ID:     "loadgen",
		Title:  fmt.Sprintf("Serving throughput, %s over power(%d,%d), %d clients, %d distinct pairs x%d", cfg.Alg, cfg.Nodes, cfg.AvgDegree, cfg.Clients, cfg.Queries, cfg.Repeat),
		Header: []string{"round", "queries", "errors", "time", "queries/sec", "gate wait", "cache hits", "speedup"},
		Rows: [][]string{
			{"cold", fmt.Sprint(r.ColdQueries), fmt.Sprint(r.ColdErrors), ms(r.ColdDur),
				fmt.Sprintf("%.0f", r.ColdQPS), ms(r.ColdGateWait), "-", "1.0x"},
			{"hot (cached)", fmt.Sprint(r.HotQueries), fmt.Sprint(r.HotErrors), ms(r.HotDur),
				fmt.Sprintf("%.0f", r.HotQPS), ms(r.HotGateWait), fmt.Sprint(r.Cache.Hits), speedup},
		},
	}
}
