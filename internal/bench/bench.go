// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment id (Table2, Fig6a, ... Fig9h) has a
// runner returning a formatted Table whose rows mirror the paper's plots:
// same series, same x-axes, scaled-down sizes (see DESIGN.md §2 and
// EXPERIMENTS.md for the scale mapping).
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// Config controls workload sizes shared by all runners.
type Config struct {
	// Queries per data point (the paper uses 100; default 5 keeps the full
	// harness in CI budgets).
	Queries int
	// Seed drives all generators and workloads.
	Seed int64
	// Scale multiplies the default (already scaled-down) node counts.
	Scale float64
	// Verbose receives progress lines (nil = quiet).
	Verbose io.Writer
	// DataDir holds file-backed databases for the buffer experiments
	// (default: os.TempDir()).
	DataDir string
}

// DefaultConfig returns the harness defaults.
func DefaultConfig() Config {
	return Config{Queries: 5, Seed: 42, Scale: 1.0}
}

func (c Config) queries() int {
	if c.Queries <= 0 {
		return 5
	}
	return c.Queries
}

func (c Config) scale(base int64) int64 {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int64(float64(base) * s)
	if n < 64 {
		n = 64
	}
	return n
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

func (c Config) dataDir() string {
	if c.DataDir != "" {
		return c.DataDir
	}
	return os.TempDir()
}

// Table is one regenerated result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Fprint writes the formatted table.
func (t *Table) Fprint(w io.Writer) { fmt.Fprint(w, t.Format()) }

// engineSetup bundles one loaded engine and its teardown.
type engineSetup struct {
	eng   *core.Engine
	db    *rdb.DB
	close func()
}

// makeEngine opens a database and loads g under the given configuration.
func makeEngine(g *graph.Graph, dbo rdb.Options, opts core.Options) (*engineSetup, error) {
	db, err := rdb.Open(dbo)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(db, opts)
	if err := eng.LoadGraph(g); err != nil {
		db.Close()
		return nil, err
	}
	cleanup := func() {
		db.Close()
		if dbo.Path != "" {
			os.Remove(dbo.Path)
		}
	}
	return &engineSetup{eng: eng, db: db, close: cleanup}, nil
}

// fileDBPath returns a fresh path for a file-backed database.
func (c Config) fileDBPath(tag string) string {
	return filepath.Join(c.dataDir(), fmt.Sprintf("fem_%s_%d.db", tag, time.Now().UnixNano()))
}

// agg averages per-query metrics over a workload.
type agg struct {
	N       int
	Time    time.Duration // mean per query
	Exps    float64
	Visited float64
	Stmts   float64
	// Affected is the mean of the per-query affected-tuple totals (the
	// SQLCA sums); Pruned the mean of ALT's settled-without-expansion
	// counts.
	Affected float64
	Pruned   float64
	PE       time.Duration
	SC       time.Duration
	FPR      time.Duration
	FOp      time.Duration
	EOp      time.Duration
	MOp      time.Duration
	Found    int
	// Decisions tallies the planner's choices on AlgAuto workloads.
	Decisions map[string]int
}

// runQueries executes the workload through the unified Query API,
// averaging the stats. With core.AlgAuto the planner decides per query;
// decisions land in agg.Decisions.
func runQueries(e *core.Engine, alg core.Algorithm, queries [][2]int64) (agg, error) {
	var a agg
	var totT, pe, sc, fpr, fo, eo, mo time.Duration
	for _, q := range queries {
		res, err := e.Query(context.Background(), core.QueryRequest{Source: q[0], Target: q[1], Alg: alg})
		if err != nil {
			return a, fmt.Errorf("%v s=%d t=%d: %w", alg, q[0], q[1], err)
		}
		qs := res.Stats
		if res.Found {
			a.Found++
		}
		if alg == core.AlgAuto && qs.Planner != "" {
			if a.Decisions == nil {
				a.Decisions = map[string]int{}
			}
			a.Decisions[qs.Planner]++
		}
		totT += qs.Total
		pe += qs.PE
		sc += qs.SC
		fpr += qs.FPR
		fo += qs.FOp
		eo += qs.EOp
		mo += qs.MOp
		a.Exps += float64(qs.Expansions)
		a.Visited += float64(qs.VisitedRows)
		a.Stmts += float64(qs.Statements)
		a.Affected += float64(qs.TuplesAffected)
		a.Pruned += float64(qs.PrunedRows)
	}
	n := len(queries)
	if n == 0 {
		return a, fmt.Errorf("empty workload")
	}
	a.N = n
	a.Time = totT / time.Duration(n)
	a.PE = pe / time.Duration(n)
	a.SC = sc / time.Duration(n)
	a.FPR = fpr / time.Duration(n)
	a.FOp = fo / time.Duration(n)
	a.EOp = eo / time.Duration(n)
	a.MOp = mo / time.Duration(n)
	a.Exps /= float64(n)
	a.Visited /= float64(n)
	a.Stmts /= float64(n)
	a.Affected /= float64(n)
	a.Pruned /= float64(n)
	return a, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Runner is one experiment entry point.
type Runner func(Config) (*Table, error)

// Experiments maps experiment ids to runners, in the paper's order.
func Experiments() []struct {
	ID  string
	Fn  Runner
	Doc string
} {
	return []struct {
		ID  string
		Fn  Runner
		Doc string
	}{
		{"table2", RunTable2, "Table 2: expansions & time for DJ/BDJ/BSDJ on Power graphs"},
		{"fig6a", RunFig6a, "Fig 6(a): query time vs graph scale, BDJ vs BSDJ"},
		{"fig6b", RunFig6b, "Fig 6(b): query time by phase (PE/SC/FPR)"},
		{"fig6c", RunFig6c, "Fig 6(c): query time by operator (F/E/M)"},
		{"fig6d", RunFig6d, "Fig 6(d): NSQL vs TSQL query time"},
		{"fig7a", RunFig7a, "Fig 7(a): BSDJ/BBFS/BSEG(3) on LiveJournal-like graphs"},
		{"fig7b", RunFig7b, "Fig 7(b): BBFS/BSDJ/BSEG(3,5,7) on Random graphs"},
		{"table3", RunTable3, "Table 3: time/expansions/visited on Random graphs"},
		{"fig7c", RunFig7c, "Fig 7(c): BSEG query time vs lthd on Power graphs"},
		{"fig7d", RunFig7d, "Fig 7(d): BSEG query time vs lthd on real-like graphs"},
		{"fig8a", RunFig8a, "Fig 8(a): BBFS vs BSEG on the PostgreSQL profile"},
		{"fig8b", RunFig8b, "Fig 8(b): query time vs buffer size"},
		{"fig8c", RunFig8c, "Fig 8(c): index strategies (NoIndex/Index/CluIndex)"},
		{"fig8d", RunFig8d, "Fig 8(d): BSEG vs in-memory MDJ/MBDJ"},
		{"fig9a", RunFig9a, "Fig 9(a): SegTable size vs lthd (Power)"},
		{"fig9b", RunFig9b, "Fig 9(b): SegTable size vs lthd (real-like)"},
		{"fig9c", RunFig9c, "Fig 9(c): construction time vs lthd (Power)"},
		{"fig9d", RunFig9d, "Fig 9(d): construction time vs lthd (real-like)"},
		{"fig9e", RunFig9e, "Fig 9(e): construction time on the PostgreSQL profile"},
		{"fig9f", RunFig9f, "Fig 9(f): construction NSQL vs TSQL"},
		{"fig9g", RunFig9g, "Fig 9(g): construction time vs buffer size"},
		{"fig9h", RunFig9h, "Fig 9(h): construction time vs graph scale"},
		{"ablation-pruning", RunAblationPruning, "Ablation: Theorem-1 pruning on/off"},
		{"ablation-direction", RunAblationDirection, "Ablation: direction policy (fewer-frontier vs alternation)"},
		{"oracle-build", RunOracleBuild, "Oracle: landmark oracle construction vs k and strategy"},
		{"oracle-alt", RunOracleALT, "Oracle: ALT vs BSDJ tuples affected / statements / time"},
		{"oracle-approx", RunOracleApprox, "Oracle: approximate-answer quality and latency"},
		{"labels", RunLabels, "Hub labels: 2-hop index query latency vs ALT and BSDJ"},
		{"mutation-throughput", RunMutationThroughput, "Mutations: insert/delete/update repair + batch throughput"},
		{"planner", RunPlanner, "Planner: AlgAuto vs hand-picked algorithm latency + decision mix"},
		{"prepared", RunPrepared, "Prepared statements: plan-cache execution vs statement-at-a-time re-parse"},
		{"recovery", RunRecovery, "Durability: cold CSV re-ingest + rebuild vs snapshot hydrate + WAL replay"},
		{"shard", RunShard, "Sharding: partition-parallel FEM cold QPS vs single engine"},
	}
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e.Fn, true
		}
	}
	return nil, false
}
