package table

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

func newCatalog(t *testing.T) *Catalog {
	t.Helper()
	return NewCatalog(storage.NewBufferPool(storage.NewMemDiskManager(0), 64))
}

func edgeSchema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "fid", Type: record.TInt},
		record.Column{Name: "tid", Type: record.TInt},
		record.Column{Name: "cost", Type: record.TInt},
	)
}

func TestHeapTableCRUD(t *testing.T) {
	c := newCatalog(t)
	tb, err := c.Create("edges", edgeSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := tb.Insert(record.Row{record.Int(1), record.Int(2), record.Int(30)})
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := tb.Fetch(loc)
	if err != nil || !ok || row[2].I != 30 {
		t.Fatalf("fetch: %v %v %v", row, ok, err)
	}
	newLoc, err := tb.Update(loc, row, record.Row{record.Int(1), record.Int(2), record.Int(25)})
	if err != nil {
		t.Fatal(err)
	}
	row2, _, _ := tb.Fetch(newLoc)
	if row2[2].I != 25 {
		t.Fatalf("update lost: %v", row2)
	}
	if err := tb.Delete(newLoc, row2); err != nil {
		t.Fatal(err)
	}
	if tb.RowCount() != 0 {
		t.Fatalf("rowcount: %d", tb.RowCount())
	}
}

func TestClusteredTableOrdering(t *testing.T) {
	c := newCatalog(t)
	tb, err := c.Create("edges", edgeSchema(), Options{ClusterOn: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Insert out of order; scan must come back sorted by fid.
	for _, fid := range []int64{5, 1, 3, 1, 5, 2} {
		if _, err := tb.Insert(record.Row{record.Int(fid), record.Int(fid * 10), record.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	it := tb.Scan()
	var got []int64
	for it.Next() {
		got = append(got, it.Row()[0].I)
	}
	want := []int64{1, 1, 2, 3, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clustered order: %v", got)
		}
	}
	// Prefix scan fetches exactly the duplicates.
	it = tb.ScanClusteredPrefix([]record.Value{record.Int(1)})
	n := 0
	for it.Next() {
		if it.Row()[0].I != 1 {
			t.Fatalf("prefix scan wrong row: %v", it.Row())
		}
		n++
	}
	if n != 2 {
		t.Fatalf("prefix scan count: %d", n)
	}
}

func TestClusteredUniqueViolation(t *testing.T) {
	c := newCatalog(t)
	tb, err := c.Create("v", record.MustSchema(
		record.Column{Name: "nid", Type: record.TInt},
		record.Column{Name: "d", Type: record.TInt},
	), Options{ClusterOn: []int{0}, ClusterUnique: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(record.Row{record.Int(1), record.Int(0)}); err != nil {
		t.Fatal(err)
	}
	_, err = tb.Insert(record.Row{record.Int(1), record.Int(9)})
	if !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("expected unique violation, got %v", err)
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("edges", edgeSchema(), Options{})
	ix, err := tb.CreateIndex("by_tid", []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	locs := make([]Loc, 0)
	rows := []record.Row{
		{record.Int(1), record.Int(7), record.Int(10)},
		{record.Int(2), record.Int(7), record.Int(20)},
		{record.Int(3), record.Int(8), record.Int(30)},
	}
	for _, r := range rows {
		loc, err := tb.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	countEq := func(v int64) int {
		it := tb.LookupEq(ix, []record.Value{record.Int(v)})
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		return n
	}
	if countEq(7) != 2 || countEq(8) != 1 || countEq(9) != 0 {
		t.Fatal("index lookup counts wrong")
	}
	// Update moves index entries.
	nl, err := tb.Update(locs[0], rows[0], record.Row{record.Int(1), record.Int(8), record.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if countEq(7) != 1 || countEq(8) != 2 {
		t.Fatal("index not maintained on update")
	}
	// Delete removes them.
	r, _, _ := tb.Fetch(nl)
	if err := tb.Delete(nl, r); err != nil {
		t.Fatal(err)
	}
	if countEq(8) != 1 {
		t.Fatal("index not maintained on delete")
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("v", record.MustSchema(
		record.Column{Name: "nid", Type: record.TInt},
		record.Column{Name: "d", Type: record.TInt},
	), Options{})
	if _, err := tb.CreateIndex("u_nid", []int{0}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(record.Row{record.Int(5), record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	_, err := tb.Insert(record.Row{record.Int(5), record.Int(2)})
	if !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("expected unique violation, got %v", err)
	}
	// Failed insert must not leave a stale row behind.
	if tb.RowCount() != 1 {
		t.Fatalf("rowcount after failed insert: %d", tb.RowCount())
	}
	n := 0
	it := tb.Scan()
	for it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("scan after failed insert: %d rows", n)
	}
}

func TestCreateIndexBackfill(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("edges", edgeSchema(), Options{})
	for i := 0; i < 50; i++ {
		if _, err := tb.Insert(record.Row{record.Int(int64(i % 5)), record.Int(int64(i)), record.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tb.CreateIndex("by_fid", []int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	it := tb.LookupEq(ix, []record.Value{record.Int(2)})
	n := 0
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("backfill count: %d", n)
	}
	// Unique backfill over duplicate data fails.
	if _, err := tb.CreateIndex("u_fid", []int{0}, true); err == nil {
		t.Fatal("unique backfill over duplicates must fail")
	}
}

func TestTruncate(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("edges", edgeSchema(), Options{ClusterOn: []int{0}})
	ix, _ := tb.CreateIndex("by_tid", []int{1}, false)
	for i := 0; i < 10; i++ {
		if _, err := tb.Insert(record.Row{record.Int(int64(i)), record.Int(1), record.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tb.RowCount() != 0 {
		t.Fatal("truncate rowcount")
	}
	it := tb.Scan()
	if it.Next() {
		t.Fatal("truncated table scan should be empty")
	}
	iit := tb.LookupEq(ix, []record.Value{record.Int(1)})
	if iit.Next() {
		t.Fatal("truncated index should be empty")
	}
	// Table remains usable after truncate.
	if _, err := tb.Insert(record.Row{record.Int(1), record.Int(2), record.Int(3)}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalog(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Create("t", edgeSchema(), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("T", edgeSchema(), Options{}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	if _, ok := c.Get("t"); !ok {
		t.Fatal("get by name")
	}
	if _, ok := c.Get("T"); !ok {
		t.Fatal("case-insensitive get")
	}
	if len(c.Names()) != 1 {
		t.Fatal("names")
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("t"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestClusteredKeyUpdate(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("v", record.MustSchema(
		record.Column{Name: "nid", Type: record.TInt},
		record.Column{Name: "d", Type: record.TInt},
	), Options{ClusterOn: []int{0}, ClusterUnique: true})
	loc, err := tb.Insert(record.Row{record.Int(1), record.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	// Non-key update keeps the location.
	loc2, err := tb.Update(loc, record.Row{record.Int(1), record.Int(100)}, record.Row{record.Int(1), record.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	if string(loc2.Key) != string(loc.Key) {
		t.Fatal("non-key update should keep the clustered key")
	}
	// Key update relocates.
	loc3, err := tb.Update(loc2, record.Row{record.Int(1), record.Int(50)}, record.Row{record.Int(2), record.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	if string(loc3.Key) == string(loc2.Key) {
		t.Fatal("key update must move the row")
	}
	row, ok, _ := tb.Fetch(loc3)
	if !ok || row[0].I != 2 {
		t.Fatalf("moved row: %v %v", row, ok)
	}
	if tb.RowCount() != 1 {
		t.Fatalf("rowcount: %d", tb.RowCount())
	}
}

func TestManyRowsThroughSmallPool(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemDiskManager(0), 8)
	c := NewCatalog(pool)
	tb, _ := c.Create("edges", edgeSchema(), Options{ClusterOn: []int{0}})
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(record.Row{record.Int(int64(i)), record.Int(int64(i * 2)), record.Int(int64(i % 100))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	it := tb.Scan()
	count := 0
	for it.Next() {
		count++
	}
	if it.Err() != nil || count != n {
		t.Fatalf("scan through tiny pool: count=%d err=%v", count, it.Err())
	}
	if pool.PinnedPages() != 0 {
		t.Fatalf("pin leak: %d", pool.PinnedPages())
	}
}

func TestValidationErrors(t *testing.T) {
	c := newCatalog(t)
	tb, _ := c.Create("edges", edgeSchema(), Options{})
	if _, err := tb.Insert(record.Row{record.Int(1)}); err == nil {
		t.Fatal("short row must fail")
	}
	if _, err := tb.Insert(record.Row{record.Text("x"), record.Int(1), record.Int(1)}); err == nil {
		t.Fatal("wrong type must fail")
	}
}

func TestLocString(t *testing.T) {
	// RID formatting aids debugging; exercise it.
	l := Loc{}
	if l.bytes() == nil {
		t.Fatal("heap loc bytes")
	}
	s := fmt.Sprintf("%v", l.RID)
	if s == "" {
		t.Fatal("rid string")
	}
}
