package table

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/record"
	"repro/internal/storage"
)

// Catalog tracks the tables of one database instance. Metadata is held in
// memory: the experiments rebuild their databases per run, exactly as the
// paper's harness loads each dataset before measuring, so catalog
// persistence is out of scope (data pages themselves live on disk through
// the buffer pool).
//
// The catalog is safe for concurrent use: readers resolving table names
// race with DDL (per-query scratch tables are created and dropped while
// other queries run), so the map is guarded here rather than relying on
// the caller's statement-level locking.
type Catalog struct {
	pool   *storage.BufferPool
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog creates an empty catalog over pool.
func NewCatalog(pool *storage.BufferPool) *Catalog {
	return &Catalog{pool: pool, tables: make(map[string]*Table)}
}

// Pool returns the buffer pool shared by all tables.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// Create registers a new table.
func (c *Catalog) Create(name string, schema *record.Schema, opts Options) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("table: %q already exists", name)
	}
	t, err := New(c.pool, name, schema, opts)
	if err != nil {
		return nil, err
	}
	c.tables[key] = t
	return t, nil
}

// Get looks a table up by case-insensitive name.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Drop removes a table from the catalog. Its pages become garbage; the
// single-file disk layout has no free-list, which is acceptable for
// benchmark databases that are rebuilt per run.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("table: %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Names lists the catalog's tables (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for k := range c.tables {
		out = append(out, k)
	}
	return out
}
