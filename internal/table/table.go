// Package table layers schemas, index maintenance and uniqueness
// enforcement over the heapfile and btree packages. A table is stored
// either as a heap file (optionally with secondary B+tree indexes) or as a
// clustered B+tree whose leaves hold the tuples themselves — the three
// physical designs compared by the paper's Fig 8(c) experiment
// (NoIndex / Index / CluIndex).
package table

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/heapfile"
	"repro/internal/record"
	"repro/internal/storage"
)

// ErrUniqueViolation is returned when an insert or update would duplicate a
// unique key.
var ErrUniqueViolation = errors.New("table: unique constraint violation")

// Loc addresses one row inside a table: a heap RID for heap tables, or the
// clustered B+tree key for clustered tables.
type Loc struct {
	RID heapfile.RID
	Key []byte // non-nil iff the table is clustered
}

func ridBytes(r heapfile.RID) []byte {
	var b [6]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(r.Page))
	binary.LittleEndian.PutUint16(b[4:], r.Slot)
	return b[:]
}

func ridFromBytes(b []byte) heapfile.RID {
	return heapfile.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(b[:4])),
		Slot: binary.LittleEndian.Uint16(b[4:6]),
	}
}

func (l Loc) bytes() []byte {
	if l.Key != nil {
		return l.Key
	}
	return ridBytes(l.RID)
}

// Index is a secondary B+tree index over a subset of columns.
//
// Unique secondary index entry:     key = EncodeKey(cols...)            val = loc
// Non-unique secondary index entry: key = EncodeKey(cols...) ++ loc     val = loc
//
// loc is the heap RID or the clustered key of the indexed table, so lookups
// can fetch rows without an extra indirection table.
type Index struct {
	Name   string
	Cols   []int // ordinals into the table schema
	Unique bool
	tree   *btree.BTree
}

// Tree exposes the underlying B+tree (diagnostics/tests).
func (ix *Index) Tree() *btree.BTree { return ix.tree }

// Table is one relational table.
type Table struct {
	Name       string
	Schema     *record.Schema
	pool       *storage.BufferPool
	heap       *heapfile.HeapFile // nil iff clustered
	clustered  *Index             // nil iff heap
	Secondary  []*Index
	uniquifier int64 // suffix for non-unique clustered keys
	rows       int
}

// Options configures table creation.
type Options struct {
	// ClusterOn lists column ordinals for a clustered index; empty = heap.
	ClusterOn []int
	// ClusterUnique marks the clustered key as unique.
	ClusterUnique bool
}

// New creates an empty table.
func New(pool *storage.BufferPool, name string, schema *record.Schema, opts Options) (*Table, error) {
	t := &Table{Name: name, Schema: schema, pool: pool}
	if len(opts.ClusterOn) > 0 {
		tr, err := btree.New(pool)
		if err != nil {
			return nil, err
		}
		t.clustered = &Index{Name: name + "_clu", Cols: append([]int(nil), opts.ClusterOn...), Unique: opts.ClusterUnique, tree: tr}
	} else {
		h, err := heapfile.New(pool)
		if err != nil {
			return nil, err
		}
		t.heap = h
	}
	return t, nil
}

// Clustered returns the clustered index, or nil for heap tables.
func (t *Table) Clustered() *Index { return t.clustered }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.rows }

// keyFor builds the clustered tree key for a row (appending a uniquifier
// when the clustered key is non-unique).
func (t *Table) keyFor(row record.Row) []byte {
	vals := make([]record.Value, 0, len(t.clustered.Cols)+1)
	for _, c := range t.clustered.Cols {
		vals = append(vals, row[c])
	}
	if !t.clustered.Unique {
		t.uniquifier++
		vals = append(vals, record.Int(t.uniquifier))
	}
	return record.EncodeKey(nil, vals...)
}

// indexKey builds the secondary-index key for row at loc.
func indexKey(ix *Index, row record.Row, loc Loc) []byte {
	vals := make([]record.Value, 0, len(ix.Cols))
	for _, c := range ix.Cols {
		vals = append(vals, row[c])
	}
	k := record.EncodeKey(nil, vals...)
	if !ix.Unique {
		k = append(k, loc.bytes()...)
	}
	return k
}

// Insert validates and stores a row, maintaining all indexes.
func (t *Table) Insert(row record.Row) (Loc, error) {
	if err := t.Schema.Validate(row); err != nil {
		return Loc{}, err
	}
	t.Schema.Coerce(row)
	data, err := record.EncodeTuple(nil, t.Schema, row)
	if err != nil {
		return Loc{}, err
	}
	var loc Loc
	if t.clustered != nil {
		key := t.keyFor(row)
		if t.clustered.Unique {
			if err := t.clustered.tree.Insert(key, data); err != nil {
				if errors.Is(err, btree.ErrDuplicateKey) {
					return Loc{}, fmt.Errorf("%w: %s clustered key", ErrUniqueViolation, t.Name)
				}
				return Loc{}, err
			}
		} else {
			if err := t.clustered.tree.Insert(key, data); err != nil {
				return Loc{}, err
			}
		}
		loc = Loc{Key: key}
	} else {
		// Check unique secondary indexes before touching storage.
		for _, ix := range t.Secondary {
			if !ix.Unique {
				continue
			}
			probe := indexKey(ix, row, Loc{})
			if _, found, err := ix.tree.Get(probe); err != nil {
				return Loc{}, err
			} else if found {
				return Loc{}, fmt.Errorf("%w: index %s", ErrUniqueViolation, ix.Name)
			}
		}
		rid, err := t.heap.Insert(data)
		if err != nil {
			return Loc{}, err
		}
		loc = Loc{RID: rid}
	}
	for _, ix := range t.Secondary {
		k := indexKey(ix, row, loc)
		var err error
		if ix.Unique {
			err = ix.tree.Insert(k, loc.bytes())
			if errors.Is(err, btree.ErrDuplicateKey) {
				// Roll back the storage write to keep the table consistent.
				t.removeStorage(loc)
				return Loc{}, fmt.Errorf("%w: index %s", ErrUniqueViolation, ix.Name)
			}
		} else {
			err = ix.tree.Insert(k, loc.bytes())
		}
		if err != nil {
			return Loc{}, err
		}
	}
	t.rows++
	return loc, nil
}

func (t *Table) removeStorage(loc Loc) {
	if t.clustered != nil {
		_, _ = t.clustered.tree.Delete(loc.Key)
	} else {
		_ = t.heap.Delete(loc.RID)
	}
}

// Delete removes the row at loc; row must be its current content (needed to
// locate index entries).
func (t *Table) Delete(loc Loc, row record.Row) error {
	for _, ix := range t.Secondary {
		k := indexKey(ix, row, loc)
		if _, err := ix.tree.Delete(k); err != nil {
			return err
		}
	}
	if t.clustered != nil {
		ok, err := t.clustered.tree.Delete(loc.Key)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("table: delete of missing clustered key in %s", t.Name)
		}
	} else {
		if err := t.heap.Delete(loc.RID); err != nil {
			return err
		}
	}
	t.rows--
	return nil
}

// Update replaces the row at loc with newRow, returning the row's new
// location. Clustered-key changes or heap relocations are handled by
// delete+insert of the affected index entries.
func (t *Table) Update(loc Loc, oldRow, newRow record.Row) (Loc, error) {
	if err := t.Schema.Validate(newRow); err != nil {
		return Loc{}, err
	}
	t.Schema.Coerce(newRow)
	if t.clustered != nil {
		keyChanged := false
		for _, c := range t.clustered.Cols {
			if record.Compare(oldRow[c], newRow[c]) != 0 {
				keyChanged = true
				break
			}
		}
		if keyChanged {
			if err := t.Delete(loc, oldRow); err != nil {
				return Loc{}, err
			}
			return t.Insert(newRow)
		}
		data, err := record.EncodeTuple(nil, t.Schema, newRow)
		if err != nil {
			return Loc{}, err
		}
		if err := t.clustered.tree.Put(loc.Key, data); err != nil {
			return Loc{}, err
		}
		if err := t.fixSecondaries(loc, loc, oldRow, newRow); err != nil {
			return Loc{}, err
		}
		return loc, nil
	}
	data, err := record.EncodeTuple(nil, t.Schema, newRow)
	if err != nil {
		return Loc{}, err
	}
	newRID, err := t.heap.Update(loc.RID, data)
	if err != nil {
		return Loc{}, err
	}
	newLoc := Loc{RID: newRID}
	if err := t.fixSecondaries(loc, newLoc, oldRow, newRow); err != nil {
		return Loc{}, err
	}
	return newLoc, nil
}

func (t *Table) fixSecondaries(oldLoc, newLoc Loc, oldRow, newRow record.Row) error {
	for _, ix := range t.Secondary {
		oldK := indexKey(ix, oldRow, oldLoc)
		newK := indexKey(ix, newRow, newLoc)
		if string(oldK) == string(newK) {
			continue
		}
		if _, err := ix.tree.Delete(oldK); err != nil {
			return err
		}
		if err := ix.tree.Insert(newK, newLoc.bytes()); err != nil {
			if errors.Is(err, btree.ErrDuplicateKey) {
				return fmt.Errorf("%w: index %s", ErrUniqueViolation, ix.Name)
			}
			return err
		}
	}
	return nil
}

// Fetch reads the row at loc.
func (t *Table) Fetch(loc Loc) (record.Row, bool, error) {
	var data []byte
	var ok bool
	var err error
	if t.clustered != nil {
		data, ok, err = t.clustered.tree.Get(loc.Key)
	} else {
		data, ok, err = t.heap.Get(loc.RID)
	}
	if err != nil || !ok {
		return nil, ok, err
	}
	row, _, err := record.DecodeTuple(data, t.Schema)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// CreateIndex adds a secondary index (backfilling existing rows).
func (t *Table) CreateIndex(name string, cols []int, unique bool) (*Index, error) {
	tr, err := btree.New(t.pool)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Cols: append([]int(nil), cols...), Unique: unique, tree: tr}
	it := t.Scan()
	for it.Next() {
		k := indexKey(ix, it.Row(), it.Loc())
		if err := ix.tree.Insert(k, it.Loc().bytes()); err != nil {
			if errors.Is(err, btree.ErrDuplicateKey) {
				return nil, fmt.Errorf("%w: backfill of %s", ErrUniqueViolation, name)
			}
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	t.Secondary = append(t.Secondary, ix)
	return ix, nil
}

// Truncate discards every row, resetting storage and all indexes in place:
// each structure keeps its first page and discards the rest from the pool
// without write-back, so truncate-heavy scratch traffic (the FEM expansion
// table, cleared every round) neither allocates a page per cycle nor fills
// the pool with dead dirty pages awaiting eviction I/O.
func (t *Table) Truncate() error {
	if t.clustered != nil {
		if err := t.clustered.tree.Reset(); err != nil {
			return err
		}
	} else if err := t.heap.Reset(); err != nil {
		return err
	}
	for _, ix := range t.Secondary {
		if err := ix.tree.Reset(); err != nil {
			return err
		}
	}
	t.rows = 0
	t.uniquifier = 0
	return nil
}

// Iterator yields (Loc, Row) pairs.
type Iterator struct {
	t      *Table
	bit    *btree.Iterator
	hit    *heapfile.Iterator
	row    record.Row
	loc    Loc
	err    error
	filter func(record.Row) bool
}

// Scan iterates every row in storage order (clustered-key order for
// clustered tables).
func (t *Table) Scan() *Iterator {
	if t.clustered != nil {
		return &Iterator{t: t, bit: t.clustered.tree.Scan(nil, nil)}
	}
	return &Iterator{t: t, hit: t.heap.Scan()}
}

// ScanRange iterates clustered rows with encoded keys in [lo, hi). Only
// valid for clustered tables.
func (t *Table) ScanRange(lo, hi []byte) *Iterator {
	return &Iterator{t: t, bit: t.clustered.tree.Scan(lo, hi)}
}

// ScanClusteredPrefix iterates clustered rows whose key starts with the
// encoding of vals.
func (t *Table) ScanClusteredPrefix(vals []record.Value) *Iterator {
	prefix := record.EncodeKey(nil, vals...)
	return &Iterator{t: t, bit: t.clustered.tree.ScanPrefix(prefix)}
}

// Next advances the iterator.
func (it *Iterator) Next() bool {
	for {
		if it.bit != nil {
			if !it.bit.Next() {
				it.err = it.bit.Err()
				return false
			}
			row, _, err := record.DecodeTuple(it.bit.Value(), it.t.Schema)
			if err != nil {
				it.err = err
				return false
			}
			key := make([]byte, len(it.bit.Key()))
			copy(key, it.bit.Key())
			it.row, it.loc = row, Loc{Key: key}
		} else {
			if !it.hit.Next() {
				it.err = it.hit.Err()
				return false
			}
			row, _, err := record.DecodeTuple(it.hit.Tuple(), it.t.Schema)
			if err != nil {
				it.err = err
				return false
			}
			it.row, it.loc = row, Loc{RID: it.hit.RID()}
		}
		if it.filter != nil && !it.filter(it.row) {
			continue
		}
		return true
	}
}

// Row returns the current row.
func (it *Iterator) Row() record.Row { return it.row }

// Loc returns the current row's location.
func (it *Iterator) Loc() Loc { return it.loc }

// Err reports any error that terminated iteration.
func (it *Iterator) Err() error { return it.err }

// IndexIterator yields rows via a secondary index.
type IndexIterator struct {
	t   *Table
	ix  *Index
	bit *btree.Iterator
	row record.Row
	loc Loc
	err error
}

// LookupEq iterates rows where the index columns equal vals. vals may be a
// prefix of the index columns.
func (t *Table) LookupEq(ix *Index, vals []record.Value) *IndexIterator {
	prefix := record.EncodeKey(nil, vals...)
	return &IndexIterator{t: t, ix: ix, bit: ix.tree.ScanPrefix(prefix)}
}

// LookupRange iterates rows whose encoded index key lies in [lo, hi).
func (t *Table) LookupRange(ix *Index, lo, hi []byte) *IndexIterator {
	return &IndexIterator{t: t, ix: ix, bit: ix.tree.Scan(lo, hi)}
}

// Next advances, fetching the base row for each index entry.
func (it *IndexIterator) Next() bool {
	if !it.bit.Next() {
		it.err = it.bit.Err()
		return false
	}
	locBytes := it.bit.Value()
	var loc Loc
	if it.t.clustered != nil {
		loc = Loc{Key: append([]byte(nil), locBytes...)}
	} else {
		loc = Loc{RID: ridFromBytes(locBytes)}
	}
	row, ok, err := it.t.Fetch(loc)
	if err != nil {
		it.err = err
		return false
	}
	if !ok {
		it.err = fmt.Errorf("table: index %s points at missing row", it.ix.Name)
		return false
	}
	it.row, it.loc = row, loc
	return true
}

// Row returns the current row.
func (it *IndexIterator) Row() record.Row { return it.row }

// Loc returns the current row's location.
func (it *IndexIterator) Loc() Loc { return it.loc }

// Err reports any error that terminated iteration.
func (it *IndexIterator) Err() error { return it.err }
