// Package btree implements a disk-resident B+tree over the storage layer's
// buffer pool. Keys and values are arbitrary byte slices; keys compare with
// bytes.Compare, so callers use record.EncodeKey to obtain order-preserving
// composite keys.
//
// The tree backs every index in the engine: clustered tables store whole
// tuples in leaf values, secondary indexes store RIDs. Leaves are chained
// for range scans — the access pattern the paper's clustered-index
// experiment (Fig 8(c)) depends on: edges of one node land on adjacent
// leaves, so an expansion touches few pages.
//
// Deletion is lazy (no merging/rebalancing); the workload is insert- and
// scan-heavy, and empty leaves are skipped by iterators.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Node page layout (both kinds):
//
//	off 0  type      byte  (1 = leaf, 2 = internal)
//	off 1  reserved  byte
//	off 2  nKeys     uint16
//	off 4  next      uint32 (leaf: right sibling; internal: leftmost child)
//	off 8  cellStart uint16 (lowest used cell offset; cells grow down)
//	off 10 slots     nKeys * uint16 (cell offsets in key order)
//
// Leaf cell:     uvarint keyLen | key | uvarint valLen | val
// Internal cell: uvarint keyLen | key | uint32 rightChild
const (
	nodeLeaf     = 1
	nodeInternal = 2

	offType      = 0
	offNKeys     = 2
	offNext      = 4
	offCellStart = 8
	offSlots     = 10
)

// ErrDuplicateKey is returned by Insert when the exact key already exists.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// MaxEntrySize bounds key+value size so at least four cells fit per page.
const MaxEntrySize = (storage.PageSize - offSlots) / 4

// BTree is a handle to one tree. It is not safe for concurrent use; the
// engine serializes statements, as the paper's client does.
type BTree struct {
	pool  *storage.BufferPool
	root  storage.PageID
	pages []storage.PageID // every node page, in allocation order
	n     int              // entry count
}

// New allocates an empty tree (a single empty leaf as root).
func New(pool *storage.BufferPool) (*BTree, error) {
	pg, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initNode(pg, nodeLeaf)
	id := pg.ID()
	pool.Unpin(pg, true)
	return &BTree{pool: pool, root: id, pages: []storage.PageID{id}}, nil
}

// Reset truncates the tree in place: its first-allocated page is
// re-initialized as an empty leaf root and every other node page is
// discarded from the buffer pool without write-back — a truncated table's
// nodes are dead, and flushing them on eviction would charge I/O for
// content nothing will read. Hot truncate-refill cycles (the FEM scratch
// tables, cleared every expansion round) reuse one page instead of leaking
// the whole tree per cycle.
func (t *BTree) Reset() error {
	first := t.pages[0]
	pg, err := t.pool.Fetch(first)
	if err != nil {
		return err
	}
	initNode(pg, nodeLeaf)
	t.pool.Unpin(pg, true)
	for _, id := range t.pages[1:] {
		t.pool.Discard(id)
	}
	t.pages = t.pages[:1]
	t.root = first
	t.n = 0
	return nil
}

// RootID returns the current root page (it changes as the tree grows).
func (t *BTree) RootID() storage.PageID { return t.root }

// Len returns the number of live entries.
func (t *BTree) Len() int { return t.n }

func initNode(pg *storage.Page, typ byte) {
	for i := range pg.Data {
		pg.Data[i] = 0
	}
	pg.Data[offType] = typ
	pg.PutU16(offNKeys, 0)
	pg.PutU32(offNext, uint32(storage.InvalidPageID))
	pg.PutU16(offCellStart, storage.PageSize)
}

// cell accessors ------------------------------------------------------------

func nKeys(pg *storage.Page) int     { return int(pg.U16(offNKeys)) }
func cellStart(pg *storage.Page) int { return int(pg.U16(offCellStart)) }
func slotOff(i int) int              { return offSlots + 2*i }

func cellAt(pg *storage.Page, i int) (key, val []byte, child storage.PageID) {
	off := int(pg.U16(slotOff(i)))
	kl, w := binary.Uvarint(pg.Data[off:])
	key = pg.Data[off+w : off+w+int(kl)]
	rest := off + w + int(kl)
	if pg.Data[offType] == nodeLeaf {
		vl, w2 := binary.Uvarint(pg.Data[rest:])
		val = pg.Data[rest+w2 : rest+w2+int(vl)]
		return key, val, storage.InvalidPageID
	}
	return key, nil, storage.PageID(pg.U32(rest))
}

func freeSpace(pg *storage.Page) int {
	return cellStart(pg) - (offSlots + 2*nKeys(pg))
}

func leafCellSize(key, val []byte) int {
	return uvarintLen(len(key)) + len(key) + uvarintLen(len(val)) + len(val)
}

func internalCellSize(key []byte) int {
	return uvarintLen(len(key)) + len(key) + 4
}

func uvarintLen(n int) int {
	l := 1
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

// search returns the index of the first slot whose key is >= key, and
// whether an exact match exists at that index.
func search(pg *storage.Page, key []byte) (int, bool) {
	lo, hi := 0, nKeys(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _, _ := cellAt(pg, mid)
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < nKeys(pg) {
		k, _, _ := cellAt(pg, lo)
		return lo, bytes.Equal(k, key)
	}
	return lo, false
}

// childFor returns the child page to descend into for key.
func childFor(pg *storage.Page, key []byte) storage.PageID {
	// children: leftmost in header; cell i holds separator key_i and the
	// child holding keys >= key_i (until key_{i+1}).
	lo, hi := 0, nKeys(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _, _ := cellAt(pg, mid)
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return storage.PageID(pg.U32(offNext))
	}
	_, _, child := cellAt(pg, lo-1)
	return child
}

// rawCell copies the full cell bytes at slot i (for splits/compaction).
func rawCell(pg *storage.Page, i int) []byte {
	off := int(pg.U16(slotOff(i)))
	kl, w := binary.Uvarint(pg.Data[off:])
	end := off + w + int(kl)
	if pg.Data[offType] == nodeLeaf {
		vl, w2 := binary.Uvarint(pg.Data[end:])
		end += w2 + int(vl)
	} else {
		end += 4
	}
	out := make([]byte, end-off)
	copy(out, pg.Data[off:end])
	return out
}

// insertCellAt writes a prepared cell into the node at slot index i.
// The caller must have verified space.
func insertCellAt(pg *storage.Page, i int, cell []byte) {
	start := cellStart(pg) - len(cell)
	copy(pg.Data[start:], cell)
	pg.PutU16(offCellStart, uint16(start))
	n := nKeys(pg)
	// shift slots [i, n) right by one
	copy(pg.Data[slotOff(i+1):slotOff(n+1)], pg.Data[slotOff(i):slotOff(n)])
	pg.PutU16(slotOff(i), uint16(start))
	pg.PutU16(offNKeys, uint16(n+1))
}

// removeCellAt deletes slot i (cell bytes become dead space).
func removeCellAt(pg *storage.Page, i int) {
	n := nKeys(pg)
	copy(pg.Data[slotOff(i):slotOff(n-1)], pg.Data[slotOff(i+1):slotOff(n)])
	pg.PutU16(offNKeys, uint16(n-1))
}

// compact rewrites all live cells tightly to reclaim dead space.
func compact(pg *storage.Page) {
	n := nKeys(pg)
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		cells[i] = rawCell(pg, i)
	}
	typ := pg.Data[offType]
	next := pg.U32(offNext)
	initNode(pg, typ)
	pg.PutU32(offNext, next)
	writeCells(pg, cells)
}

// writeCells appends cells (already in key order) to an empty node.
func writeCells(pg *storage.Page, cells [][]byte) {
	start := cellStart(pg)
	for i, c := range cells {
		start -= len(c)
		copy(pg.Data[start:], c)
		pg.PutU16(slotOff(i), uint16(start))
	}
	pg.PutU16(offCellStart, uint16(start))
	pg.PutU16(offNKeys, uint16(len(cells)))
}

// makeLeafCell builds the serialized leaf cell for key/val.
func makeLeafCell(key, val []byte) []byte {
	out := make([]byte, 0, leafCellSize(key, val))
	out = binary.AppendUvarint(out, uint64(len(key)))
	out = append(out, key...)
	out = binary.AppendUvarint(out, uint64(len(val)))
	out = append(out, val...)
	return out
}

// makeInternalCell builds the serialized internal cell.
func makeInternalCell(key []byte, child storage.PageID) []byte {
	out := make([]byte, 0, internalCellSize(key))
	out = binary.AppendUvarint(out, uint64(len(key)))
	out = append(out, key...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(child))
	out = append(out, tmp[:]...)
	return out
}

// public operations ---------------------------------------------------------

// Get returns the value stored under key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return nil, false, err
		}
		if pg.Data[offType] == nodeInternal {
			next := childFor(pg, key)
			t.pool.Unpin(pg, false)
			id = next
			continue
		}
		i, exact := search(pg, key)
		if !exact {
			t.pool.Unpin(pg, false)
			return nil, false, nil
		}
		_, v, _ := cellAt(pg, i)
		out := make([]byte, len(v))
		copy(out, v)
		t.pool.Unpin(pg, false)
		return out, true, nil
	}
}

// Insert stores key/val, failing with ErrDuplicateKey if key exists.
func (t *BTree) Insert(key, val []byte) error { return t.put(key, val, false) }

// Put stores key/val, overwriting any existing value.
func (t *BTree) Put(key, val []byte) error { return t.put(key, val, true) }

type splitResult struct {
	split bool
	sep   []byte
	right storage.PageID
}

func (t *BTree) put(key, val []byte, overwrite bool) error {
	if leafCellSize(key, val) > MaxEntrySize {
		return fmt.Errorf("btree: entry of %d bytes exceeds max %d", leafCellSize(key, val), MaxEntrySize)
	}
	res, inserted, err := t.putRec(t.root, key, val, overwrite)
	if err != nil {
		return err
	}
	if res.split {
		// Grow a new root.
		pg, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		initNode(pg, nodeInternal)
		pg.PutU32(offNext, uint32(t.root))
		insertCellAt(pg, 0, makeInternalCell(res.sep, res.right))
		t.root = pg.ID()
		t.pages = append(t.pages, pg.ID())
		t.pool.Unpin(pg, true)
	}
	if inserted {
		t.n++
	}
	return nil
}

func (t *BTree) putRec(id storage.PageID, key, val []byte, overwrite bool) (splitResult, bool, error) {
	pg, err := t.pool.Fetch(id)
	if err != nil {
		return splitResult{}, false, err
	}
	if pg.Data[offType] == nodeInternal {
		child := childFor(pg, key)
		t.pool.Unpin(pg, false)
		res, inserted, err := t.putRec(child, key, val, overwrite)
		if err != nil || !res.split {
			return splitResult{}, inserted, err
		}
		// Re-fetch parent to add the separator.
		pg, err = t.pool.Fetch(id)
		if err != nil {
			return splitResult{}, inserted, err
		}
		defer func() { t.pool.Unpin(pg, true) }()
		cell := makeInternalCell(res.sep, res.right)
		i, _ := search(pg, res.sep)
		if len(cell)+2 <= freeSpace(pg) {
			insertCellAt(pg, i, cell)
			return splitResult{}, inserted, nil
		}
		if deadSpace(pg)+freeSpace(pg) >= len(cell)+2 {
			compact(pg)
			insertCellAt(pg, i, cell)
			return splitResult{}, inserted, nil
		}
		sr, err := t.splitInsert(pg, i, cell)
		return sr, inserted, err
	}
	// Leaf.
	defer func() { t.pool.Unpin(pg, true) }()
	i, exact := search(pg, key)
	if exact {
		if !overwrite {
			return splitResult{}, false, ErrDuplicateKey
		}
		// Replace: remove then re-insert (value size may differ).
		removeCellAt(pg, i)
		cell := makeLeafCell(key, val)
		if len(cell)+2 <= freeSpace(pg) {
			insertCellAt(pg, i, cell)
			return splitResult{}, false, nil
		}
		if deadSpace(pg)+freeSpace(pg) >= len(cell)+2 {
			compact(pg)
			insertCellAt(pg, i, cell)
			return splitResult{}, false, nil
		}
		sr, err := t.splitInsert(pg, i, cell)
		return sr, false, err
	}
	cell := makeLeafCell(key, val)
	if len(cell)+2 <= freeSpace(pg) {
		insertCellAt(pg, i, cell)
		return splitResult{}, true, nil
	}
	if deadSpace(pg)+freeSpace(pg) >= len(cell)+2 {
		compact(pg)
		insertCellAt(pg, i, cell)
		return splitResult{}, true, nil
	}
	sr, err := t.splitInsert(pg, i, cell)
	return sr, true, err
}

// deadSpace estimates reclaimable bytes (space between the slot region and
// cellStart already counted as free; dead cells are PageSize - cellStart
// minus live cell bytes).
func deadSpace(pg *storage.Page) int {
	live := 0
	for i := 0; i < nKeys(pg); i++ {
		live += len(rawCellView(pg, i))
	}
	return (storage.PageSize - cellStart(pg)) - live
}

// rawCellView is rawCell without the copy (only for length accounting).
func rawCellView(pg *storage.Page, i int) []byte {
	off := int(pg.U16(slotOff(i)))
	kl, w := binary.Uvarint(pg.Data[off:])
	end := off + w + int(kl)
	if pg.Data[offType] == nodeLeaf {
		vl, w2 := binary.Uvarint(pg.Data[end:])
		end += w2 + int(vl)
	} else {
		end += 4
	}
	return pg.Data[off:end]
}

// splitInsert splits pg while inserting cell at slot i, returning the
// separator and new right sibling. pg remains the left node.
func (t *BTree) splitInsert(pg *storage.Page, i int, cell []byte) (splitResult, error) {
	n := nKeys(pg)
	cells := make([][]byte, 0, n+1)
	for j := 0; j < n; j++ {
		cells = append(cells, rawCell(pg, j))
	}
	cells = append(cells[:i], append([][]byte{cell}, cells[i:]...)...)

	// Split by bytes so variable-size cells balance.
	total := 0
	for _, c := range cells {
		total += len(c)
	}
	mid, acc := 0, 0
	for mid = 0; mid < len(cells)-1; mid++ {
		acc += len(cells[mid])
		if acc*2 >= total {
			mid++
			break
		}
	}
	if mid < 1 {
		mid = 1
	}
	if mid >= len(cells) {
		mid = len(cells) - 1
	}
	left, right := cells[:mid], cells[mid:]

	rpg, err := t.pool.NewPage()
	if err != nil {
		return splitResult{}, err
	}
	t.pages = append(t.pages, rpg.ID())
	typ := pg.Data[offType]
	initNode(rpg, typ)

	var sep []byte
	if typ == nodeLeaf {
		// Copy-up: separator is the first key of the right node.
		next := pg.U32(offNext)
		rpg.PutU32(offNext, next)
		writeCells(rpg, right)
		k, _ := cellKey(right[0], true)
		sep = append([]byte(nil), k...)

		initNode(pg, nodeLeaf)
		pg.PutU32(offNext, uint32(rpg.ID()))
		writeCells(pg, left)
	} else {
		// Move-up: right's first cell's key becomes the separator; its child
		// becomes the right node's leftmost child.
		k, child := cellKeyChild(right[0])
		sep = append([]byte(nil), k...)
		rpg.PutU32(offNext, uint32(child))
		writeCells(rpg, right[1:])

		old := pg.U32(offNext)
		initNode(pg, nodeInternal)
		pg.PutU32(offNext, old)
		writeCells(pg, left)
	}
	rid := rpg.ID()
	t.pool.Unpin(rpg, true)
	return splitResult{split: true, sep: sep, right: rid}, nil
}

// cellKey extracts the key bytes from a serialized cell.
func cellKey(cell []byte, leaf bool) ([]byte, int) {
	kl, w := binary.Uvarint(cell)
	return cell[w : w+int(kl)], w + int(kl)
}

func cellKeyChild(cell []byte) ([]byte, storage.PageID) {
	kl, w := binary.Uvarint(cell)
	key := cell[w : w+int(kl)]
	child := storage.PageID(binary.LittleEndian.Uint32(cell[w+int(kl):]))
	return key, child
}

// Delete removes key, reporting whether it existed. Nodes are not merged.
func (t *BTree) Delete(key []byte) (bool, error) {
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return false, err
		}
		if pg.Data[offType] == nodeInternal {
			next := childFor(pg, key)
			t.pool.Unpin(pg, false)
			id = next
			continue
		}
		i, exact := search(pg, key)
		if !exact {
			t.pool.Unpin(pg, false)
			return false, nil
		}
		removeCellAt(pg, i)
		t.pool.Unpin(pg, true)
		t.n--
		return true, nil
	}
}

// Iterator walks entries in key order within [lo, hi); nil bounds mean
// unbounded. Each leaf is copied out before advancing, so the iterator
// holds no pins between Next calls and tolerates page eviction.
type Iterator struct {
	tree    *BTree
	hi      []byte
	keys    [][]byte
	vals    [][]byte
	pos     int
	nextPg  storage.PageID
	done    bool
	lastErr error
}

// Scan returns an iterator over [lo, hi).
func (t *BTree) Scan(lo, hi []byte) *Iterator {
	it := &Iterator{tree: t, hi: hi}
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			it.lastErr = err
			it.done = true
			return it
		}
		if pg.Data[offType] == nodeInternal {
			var next storage.PageID
			if lo == nil {
				next = storage.PageID(pg.U32(offNext))
			} else {
				next = childFor(pg, lo)
			}
			t.pool.Unpin(pg, false)
			id = next
			continue
		}
		start := 0
		if lo != nil {
			start, _ = search(pg, lo)
		}
		it.loadLeaf(pg, start)
		t.pool.Unpin(pg, false)
		return it
	}
}

// ScanPrefix iterates all entries whose key starts with prefix.
func (t *BTree) ScanPrefix(prefix []byte) *Iterator {
	return t.Scan(prefix, keySuccessor(prefix))
}

func keySuccessor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	out[len(k)] = 0xFF
	return out
}

func (it *Iterator) loadLeaf(pg *storage.Page, start int) {
	n := nKeys(pg)
	it.keys = it.keys[:0]
	it.vals = it.vals[:0]
	for i := start; i < n; i++ {
		k, v, _ := cellAt(pg, i)
		if it.hi != nil && bytes.Compare(k, it.hi) >= 0 {
			it.nextPg = storage.InvalidPageID
			it.pos = 0
			return
		}
		kc := make([]byte, len(k))
		copy(kc, k)
		vc := make([]byte, len(v))
		copy(vc, v)
		it.keys = append(it.keys, kc)
		it.vals = append(it.vals, vc)
	}
	it.pos = 0
	it.nextPg = storage.PageID(pg.U32(offNext))
}

// Next advances to the next entry, returning false at the end.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for it.pos >= len(it.keys) {
		if it.nextPg == storage.InvalidPageID {
			it.done = true
			return false
		}
		pg, err := it.tree.pool.Fetch(it.nextPg)
		if err != nil {
			it.lastErr = err
			it.done = true
			return false
		}
		it.loadLeaf(pg, 0)
		it.tree.pool.Unpin(pg, false)
		if it.nextPg == storage.InvalidPageID && len(it.keys) == 0 {
			it.done = true
			return false
		}
	}
	it.pos++
	return true
}

// Key returns the current entry's key (valid until the next Next call).
func (it *Iterator) Key() []byte { return it.keys[it.pos-1] }

// Value returns the current entry's value.
func (it *Iterator) Value() []byte { return it.vals[it.pos-1] }

// Err reports any I/O error that terminated the scan.
func (it *Iterator) Err() error { return it.lastErr }

// Check verifies structural invariants (sorted keys per node, leaf chain
// globally sorted, separator bounds). Test helper.
func (t *BTree) Check() error {
	var prev []byte
	it := t.Scan(nil, nil)
	count := 0
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			return fmt.Errorf("btree: leaf chain out of order at %x", it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("btree: count mismatch scan=%d len=%d", count, t.n)
	}
	return nil
}
