package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newTree(t *testing.T, pages int) *BTree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemDiskManager(0), pages)
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("new tree: %v", err)
	}
	return tr
}

func k(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func TestInsertGet(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(k(42), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(k(42))
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	_, ok, err = tr.Get(k(7))
	if err != nil || ok {
		t.Fatalf("missing key should not be found: %v %v", ok, err)
	}
}

func TestDuplicateKey(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(k(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	err := tr.Insert(k(1), []byte("b"))
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("expected ErrDuplicateKey, got %v", err)
	}
	// Put overwrites.
	if err := tr.Put(k(1), []byte("c")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tr.Get(k(1))
	if string(v) != "c" {
		t.Fatalf("put did not overwrite: %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len should stay 1, got %d", tr.Len())
	}
}

func TestManyKeysSplits(t *testing.T) {
	tr := newTree(t, 256)
	const n = 20000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(k(int64(i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len: %d", tr.Len())
	}
	for i := 0; i < n; i += 373 {
		v, ok, err := tr.Get(k(int64(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d: %q %v %v", i, v, ok, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Full scan is sorted and complete.
	it := tr.Scan(nil, nil)
	count := 0
	var prev []byte
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if it.Err() != nil || count != n {
		t.Fatalf("scan: count=%d err=%v", count, it.Err())
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(k(int64(i*2)), k(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Scan(k(10), k(20)) // [10, 20): keys 10,12,14,16,18
	var got []int64
	for it.Next() {
		got = append(got, int64(binary.BigEndian.Uint64(it.Key())))
	}
	want := []int64{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("range scan: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan: %v", got)
		}
	}
	// Unbounded-low scan.
	it = tr.Scan(nil, k(5))
	n := 0
	for it.Next() {
		n++
	}
	if n != 3 { // 0, 2, 4
		t.Fatalf("low-unbounded scan: %d", n)
	}
	// Empty range.
	it = tr.Scan(k(1000), nil)
	if it.Next() {
		t.Fatal("scan beyond max should be empty")
	}
}

func TestScanPrefix(t *testing.T) {
	tr := newTree(t, 64)
	// Composite-style keys: prefix byte + suffix.
	for p := byte(0); p < 5; p++ {
		for s := byte(0); s < 10; s++ {
			if err := tr.Insert([]byte{p, s}, []byte{p}); err != nil {
				t.Fatal(err)
			}
		}
	}
	it := tr.ScanPrefix([]byte{3})
	n := 0
	for it.Next() {
		if it.Key()[0] != 3 {
			t.Fatalf("wrong prefix: %v", it.Key())
		}
		n++
	}
	if n != 10 {
		t.Fatalf("prefix scan found %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(k(int64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(k(int64(i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	ok, err := tr.Delete(k(0))
	if err != nil || ok {
		t.Fatalf("double delete should report false: %v %v", ok, err)
	}
	if tr.Len() != 250 {
		t.Fatalf("len after deletes: %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, found, _ := tr.Get(k(int64(i)))
		if found != (i%2 == 1) {
			t.Fatalf("key %d: found=%v", i, found)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
}

func TestLargeValues(t *testing.T) {
	tr := newTree(t, 128)
	big := bytes.Repeat([]byte("x"), 900)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(k(int64(i)), big); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	v, ok, err := tr.Get(k(150))
	if err != nil || !ok || len(v) != 900 {
		t.Fatalf("large value: %d %v %v", len(v), ok, err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryTooLarge(t *testing.T) {
	tr := newTree(t, 64)
	huge := make([]byte, MaxEntrySize+1)
	if err := tr.Insert(k(1), huge); err == nil {
		t.Fatal("oversized entry should error")
	}
}

func TestPutGrowsAndShrinksValue(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(k(1), []byte("short")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(k(1), bytes.Repeat([]byte("L"), 500)); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tr.Get(k(1))
	if len(v) != 500 {
		t.Fatalf("grow failed: %d", len(v))
	}
	if err := tr.Put(k(1), []byte("s")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tr.Get(k(1))
	if string(v) != "s" {
		t.Fatalf("shrink failed: %q", v)
	}
}

// TestQuickModelEquivalence drives the tree with random operations and
// compares against a map + sort model.
func TestQuickModelEquivalence(t *testing.T) {
	fn := func(ops []uint16, seed int64) bool {
		pool := storage.NewBufferPool(storage.NewMemDiskManager(0), 64)
		tr, err := New(pool)
		if err != nil {
			return false
		}
		model := map[string]string{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := k(int64(op % 512))
			switch rng.Intn(3) {
			case 0:
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				_ = tr.Put(key, []byte(val))
				model[string(key)] = val
			case 1:
				ok, _ := tr.Delete(key)
				_, inModel := model[string(key)]
				if ok != inModel {
					return false
				}
				delete(model, string(key))
			case 2:
				v, ok, _ := tr.Get(key)
				mv, inModel := model[string(key)]
				if ok != inModel || (ok && string(v) != mv) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		// Scan must equal the sorted model.
		var keys []string
		for mk := range model {
			keys = append(keys, mk)
		}
		sort.Strings(keys)
		it := tr.Scan(nil, nil)
		i := 0
		for it.Next() {
			if i >= len(keys) || string(it.Key()) != keys[i] || string(it.Value()) != model[keys[i]] {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(keys)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, 16)
	if tr.Len() != 0 {
		t.Fatal("empty tree len")
	}
	it := tr.Scan(nil, nil)
	if it.Next() {
		t.Fatal("empty tree scan should yield nothing")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallPoolEviction(t *testing.T) {
	// A pool much smaller than the tree forces evictions mid-operation.
	pool := storage.NewBufferPool(storage.NewMemDiskManager(0), 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(k(int64(i)), k(int64(i*7))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 97 {
		v, ok, err := tr.Get(k(int64(i)))
		if err != nil || !ok || int64(binary.BigEndian.Uint64(v)) != int64(i*7) {
			t.Fatalf("get %d after eviction: %v %v", i, ok, err)
		}
	}
	if pool.PinnedPages() != 0 {
		t.Fatalf("pin leak: %d pages pinned", pool.PinnedPages())
	}
	if pool.Stats().Evictions == 0 {
		t.Fatal("expected evictions with an 8-page pool")
	}
}
