package oracle

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rdb"
)

// builder carries one construction run.
type builder struct {
	ctx  context.Context
	sess *rdb.Session
	p    Params
	st   *BuildStats
}

// Build constructs the landmark oracle over the session's graph tables.
// The caller is responsible for exclusion against concurrent searches and
// graph mutation (the engine holds its query latch across the build). A
// cancelled ctx aborts the build at the next statement or relaxation round;
// the caller must then treat the oracle as not built (the engine leaves its
// oracle pointer nil, so a partial TLandmark is never consulted).
func Build(ctx context.Context, sess *rdb.Session, p Params) (*Oracle, *BuildStats, error) {
	if p.K <= 0 {
		p.K = DefaultK
	}
	if p.WMin < 1 {
		p.WMin = 1
	}
	if p.MaxIters <= 0 {
		p.MaxIters = 1 << 30
	}
	b := &builder{ctx: ctx, sess: sess, p: p, st: &BuildStats{K: p.K, Strategy: p.Strategy}}
	start := time.Now()

	if err := b.createTables(); err != nil {
		return nil, nil, err
	}
	if err := b.rankDegrees(); err != nil {
		return nil, nil, err
	}

	nodes, err := b.queryInt(fmt.Sprintf("SELECT COUNT(*) FROM %s", p.NodesTable))
	if err != nil {
		return nil, nil, err
	}
	k := p.K
	if int64(k) > nodes {
		k = int(nodes)
	}

	var landmarks []int64
	for i := 0; i < k; i++ {
		lid, ok, err := b.pickLandmark(i, landmarks)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break // fewer placeable landmarks than requested
		}
		landmarks = append(landmarks, lid)
		// Forward pass dist(l, v) over outgoing edges, then materialize
		// the landmark's rows (Unreached for nodes the pass never saw).
		if err := b.sssp(lid, true); err != nil {
			return nil, nil, err
		}
		if err := b.materializeForward(int64(i)); err != nil {
			return nil, nil, err
		}
		// Farthest-point selection feeds on the forward distances.
		if p.Strategy == Farthest {
			if err := b.foldFarthest(); err != nil {
				return nil, nil, err
			}
		}
		// Backward pass dist(v, l) over incoming edges.
		if err := b.sssp(lid, false); err != nil {
			return nil, nil, err
		}
		if err := b.materializeBackward(int64(i)); err != nil {
			return nil, nil, err
		}
	}
	if len(landmarks) == 0 {
		return nil, nil, fmt.Errorf("oracle: no landmarks placeable (empty graph?)")
	}

	rows, err := b.queryInt(fmt.Sprintf("SELECT COUNT(*) FROM %s", TblLandmark))
	if err != nil {
		return nil, nil, err
	}
	b.st.Landmarks = landmarks
	b.st.Rows = int(rows)
	b.st.BuildTime = time.Since(start)
	orc := &Oracle{
		K:         len(landmarks),
		Strategy:  p.Strategy,
		Landmarks: landmarks,
		Rows:      int(rows),
	}
	return orc, b.st, nil
}

func (b *builder) exec(q string, args ...any) (int64, error) {
	res, err := b.sess.ExecContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, fmt.Errorf("oracle: %w", err)
	}
	return res.RowsAffected, nil
}

func (b *builder) queryInt(q string, args ...any) (int64, error) {
	v, _, err := b.sess.QueryIntContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, fmt.Errorf("oracle: %w", err)
	}
	return v, nil
}

// queryIntNull is queryInt with the NULL flag exposed.
func (b *builder) queryIntNull(q string, args ...any) (int64, bool, error) {
	v, null, err := b.sess.QueryIntContext(b.ctx, q, args...)
	b.st.Statements++
	if err != nil {
		return 0, false, fmt.Errorf("oracle: %w", err)
	}
	return v, null, nil
}

// createTables (re)creates every oracle relation. TLandmark follows the
// engine's physical design; the working tables are always clustered, like
// the SegTable construction's TSeg.
func (b *builder) createTables() error {
	n, err := CreateTables(b.ctx, b.sess, b.p.Index)
	b.st.Statements += n
	return err
}

// CreateTables (re)creates every oracle relation under the given index
// mode, returning the number of statements issued. Exported so snapshot
// hydration can restore the DDL and bulk-load TLandmark rows without
// running a build.
func CreateTables(ctx context.Context, sess *rdb.Session, index IndexMode) (int, error) {
	n := 0
	exec := func(q string) error {
		_, err := sess.ExecContext(ctx, q)
		n++
		if err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
		return nil
	}
	cat := sess.DB().Catalog()
	for _, tbl := range Tables() {
		if _, ok := cat.Get(tbl); ok {
			if err := exec("DROP TABLE " + tbl); err != nil {
				return n, err
			}
		}
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (lid INT, nid INT, dout INT, din INT)", TblLandmark),
	}
	switch index {
	case IndexClustered:
		stmts = append(stmts,
			fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlandmark_key ON %s (nid, lid)", TblLandmark))
	case IndexSecondary:
		stmts = append(stmts,
			fmt.Sprintf("CREATE INDEX tlandmark_nid ON %s (nid)", TblLandmark))
	case IndexNone:
		// bare heap; bound probes degrade to scans.
	}
	stmts = append(stmts,
		fmt.Sprintf("CREATE TABLE %s (nid INT, dist INT, f INT)", TblWork),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlmkwork_nid ON %s (nid)", TblWork),
		fmt.Sprintf("CREATE TABLE %s (nid INT, cost INT)", TblExpand),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlmkexpand_nid ON %s (nid)", TblExpand),
		fmt.Sprintf("CREATE TABLE %s (nid INT, deg INT)", TblDeg),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlmkdeg_nid ON %s (nid)", TblDeg),
		fmt.Sprintf("CREATE TABLE %s (nid INT, deg INT)", TblDegIn),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlmkdegin_nid ON %s (nid)", TblDegIn),
		fmt.Sprintf("CREATE TABLE %s (nid INT, dmin INT)", TblFar),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tlmkfar_nid ON %s (nid)", TblFar),
	)
	for _, q := range stmts {
		if err := exec(q); err != nil {
			return n, err
		}
	}
	return n, nil
}

// rankDegrees materializes total degree (in + out) per node into TLmkDeg,
// and seeds the farthest-point state with every node at Unreached.
func (b *builder) rankDegrees() error {
	stmts := []struct {
		q    string
		args []any
	}{
		{fmt.Sprintf("INSERT INTO %s (nid, deg) SELECT fid, COUNT(*) FROM %s GROUP BY fid",
			TblDeg, b.p.EdgesTable), nil},
		{fmt.Sprintf("INSERT INTO %s (nid, deg) SELECT tid, COUNT(*) FROM %s GROUP BY tid",
			TblDegIn, b.p.EdgesTable), nil},
		{fmt.Sprintf("UPDATE %[1]s SET deg = %[1]s.deg + s.deg FROM %[2]s s WHERE %[1]s.nid = s.nid",
			TblDeg, TblDegIn), nil},
		{fmt.Sprintf("INSERT INTO %[1]s (nid, deg) SELECT s.nid, s.deg FROM %[2]s s "+
			"WHERE NOT EXISTS (SELECT nid FROM %[1]s g WHERE g.nid = s.nid)",
			TblDeg, TblDegIn), nil},
		{fmt.Sprintf("INSERT INTO %s (nid, dmin) SELECT nid, ? FROM %s",
			TblFar, b.p.NodesTable), []any{Unreached}},
	}
	for _, s := range stmts {
		if _, err := b.exec(s.q, s.args...); err != nil {
			return err
		}
	}
	return nil
}

// pickLandmark returns the i-th landmark under the configured strategy.
// Degree: i-th highest total degree. Farthest: highest degree first, then
// the node maximizing the distance to its nearest chosen landmark.
func (b *builder) pickLandmark(i int, chosen []int64) (int64, bool, error) {
	if b.p.Strategy == Farthest && i > 0 {
		// Prefer the farthest node reachable from some landmark; fall back
		// to an unreached node (another component) so coverage spreads.
		lid, null, err := b.queryIntNull(fmt.Sprintf(
			"SELECT TOP 1 nid FROM %[1]s WHERE dmin > 0 AND dmin < ? AND dmin = "+
				"(SELECT MAX(dmin) FROM %[1]s WHERE dmin > 0 AND dmin < ?)",
			TblFar), Unreached, Unreached)
		if err != nil {
			return 0, false, err
		}
		if !null {
			// Keep the degree ranking consistent for later fallbacks.
			if _, err := b.exec(fmt.Sprintf("DELETE FROM %s WHERE nid = ?", TblDeg), lid); err != nil {
				return 0, false, err
			}
			return lid, true, nil
		}
		// Every remaining node is unreached from the chosen set: pick the
		// highest-degree one among them via the degree ranking below.
	}
	// Degree ranking; previously chosen nodes are deleted from TLmkDeg so
	// TOP 1 at MAX(deg) walks down the ranking.
	lid, null, err := b.queryIntNull(fmt.Sprintf(
		"SELECT TOP 1 nid FROM %[1]s WHERE deg = (SELECT MAX(deg) FROM %[1]s)", TblDeg))
	if err != nil {
		return 0, false, err
	}
	if null {
		return 0, false, nil // no node with an edge left to pick
	}
	if _, err := b.exec(fmt.Sprintf("DELETE FROM %s WHERE nid = ?", TblDeg), lid); err != nil {
		return 0, false, err
	}
	return lid, true, nil
}

// sssp relaxes single-source distances from l to fixpoint in TLmkWork:
// forward over outgoing edges (dist(l, v)) or backward over incoming ones
// (dist(v, l)). The frontier rule is the SegTable construction's
// set-Dijkstra batch rule (§4.2) without the lthd bound: candidates below
// k*wmin, or at the global minimum, expand together; with positive weights
// every expanded distance is final, so the loop reaches the exact SSSP
// fixpoint when no candidate remains.
func (b *builder) sssp(l int64, forward bool) error {
	joinCol, newCol := "fid", "tid"
	if !forward {
		joinCol, newCol = "tid", "fid"
	}
	if _, err := b.exec("DELETE FROM " + TblWork); err != nil {
		return err
	}
	if _, err := b.exec(fmt.Sprintf(
		"INSERT INTO %s (nid, dist, f) VALUES (?, 0, 0)", TblWork), l); err != nil {
		return err
	}
	frontierQ := fmt.Sprintf(
		"UPDATE %[1]s SET f = 2 WHERE f = 0 AND (dist < ? OR dist = "+
			"(SELECT MIN(dist) FROM %[1]s WHERE f = 0))", TblWork)
	resetQ := fmt.Sprintf("UPDATE %s SET f = 1 WHERE f = 2", TblWork)
	// E-operator source: the cheapest in-bound relaxation per node. No
	// parent is carried, so the aggregate form works on every profile —
	// no window function needed.
	srcQ := fmt.Sprintf(
		"SELECT out.%s, MIN(out.cost + q.dist) FROM %s q, %s out "+
			"WHERE q.nid = out.%s AND q.f = 2 GROUP BY out.%s",
		newCol, TblWork, b.p.EdgesTable, joinCol, newCol)
	mergeQ := fmt.Sprintf(
		"MERGE INTO %s AS target USING (%s) AS source (nid, cost) "+
			"ON (target.nid = source.nid) "+
			"WHEN MATCHED AND target.dist > source.cost THEN UPDATE SET dist = source.cost, f = 0 "+
			"WHEN NOT MATCHED THEN INSERT (nid, dist, f) VALUES (source.nid, source.cost, 0)",
		TblWork, srcQ)

	for k := int64(1); ; k++ {
		if err := rdb.ContextErr(b.ctx); err != nil {
			return fmt.Errorf("oracle: build cancelled during SSSP from %d: %w", l, err)
		}
		if int(k) > b.p.MaxIters {
			return fmt.Errorf("oracle: SSSP from %d exceeded %d iterations", l, b.p.MaxIters)
		}
		cnt, err := b.exec(frontierQ, k*b.p.WMin)
		if err != nil {
			return err
		}
		if cnt == 0 {
			return nil
		}
		b.st.Iterations++
		if b.p.UseMerge {
			if _, err := b.exec(mergeQ); err != nil {
				return err
			}
		} else {
			if err := b.relaxNoMerge(srcQ); err != nil {
				return err
			}
		}
		if _, err := b.exec(resetQ); err != nil {
			return err
		}
	}
}

// relaxNoMerge emulates the relaxation MERGE with UPDATE + INSERT through
// the TLmkExpand scratch table (PostgreSQL-9 profile).
func (b *builder) relaxNoMerge(srcQ string) error {
	stmts := []string{
		"DELETE FROM " + TblExpand,
		fmt.Sprintf("INSERT INTO %s (nid, cost) %s", TblExpand, srcQ),
		fmt.Sprintf("UPDATE %[1]s SET dist = s.cost, f = 0 FROM %[2]s s "+
			"WHERE %[1]s.nid = s.nid AND %[1]s.dist > s.cost", TblWork, TblExpand),
		fmt.Sprintf("INSERT INTO %[1]s (nid, dist, f) SELECT s.nid, s.cost, 0 FROM %[2]s s "+
			"WHERE NOT EXISTS (SELECT nid FROM %[1]s v WHERE v.nid = s.nid)", TblWork, TblExpand),
	}
	for _, q := range stmts {
		if _, err := b.exec(q); err != nil {
			return err
		}
	}
	return nil
}

// materializeForward writes landmark i's rows: dout from the forward pass,
// din left at Unreached until the backward pass, and sentinel rows for
// nodes the pass never reached — every (lid, nid) pair gets exactly one
// row, which keeps the bound subqueries total.
func (b *builder) materializeForward(lid int64) error {
	if _, err := b.exec(fmt.Sprintf(
		"INSERT INTO %s (lid, nid, dout, din) SELECT ?, nid, dist, ? FROM %s",
		TblLandmark, TblWork), lid, Unreached); err != nil {
		return err
	}
	_, err := b.exec(fmt.Sprintf(
		"INSERT INTO %s (lid, nid, dout, din) SELECT ?, n.nid, ?, ? FROM %s n "+
			"WHERE NOT EXISTS (SELECT nid FROM %s w WHERE w.nid = n.nid)",
		TblLandmark, b.p.NodesTable, TblWork), lid, Unreached, Unreached)
	return err
}

// materializeBackward folds the backward pass into din.
func (b *builder) materializeBackward(lid int64) error {
	_, err := b.exec(fmt.Sprintf(
		"UPDATE %[1]s SET din = s.dist FROM %[2]s s "+
			"WHERE %[1]s.nid = s.nid AND %[1]s.lid = ?", TblLandmark, TblWork), lid)
	return err
}

// foldFarthest lowers each node's distance-to-nearest-landmark with the
// forward distances still sitting in TLmkWork.
func (b *builder) foldFarthest() error {
	_, err := b.exec(fmt.Sprintf(
		"UPDATE %[1]s SET dmin = s.dist FROM %[2]s s "+
			"WHERE %[1]s.nid = s.nid AND %[1]s.dmin > s.dist", TblFar, TblWork))
	return err
}
