package oracle

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// loadGraphTables materializes g into bare TNodes/TEdges relations the way
// the engine's loader does, without depending on internal/core.
func loadGraphTables(t *testing.T, sess *rdb.Session, g *graph.Graph) {
	t.Helper()
	stmts := []string{
		"CREATE TABLE TNodes (nid INT PRIMARY KEY)",
		"CREATE TABLE TEdges (fid INT, tid INT, cost INT)",
		"CREATE CLUSTERED INDEX tedges_fid ON TEdges (fid)",
		"CREATE INDEX tedges_tid ON TEdges (tid)",
	}
	for _, q := range stmts {
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	for nid := int64(0); nid < g.N; nid++ {
		if _, err := sess.Exec("INSERT INTO TNodes (nid) VALUES (?)", nid); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges {
		if _, err := sess.Exec("INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)",
			e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
}

func buildParams(cfg Config, g *graph.Graph, useMerge bool) Params {
	return Params{
		Config:     cfg,
		NodesTable: "TNodes",
		EdgesTable: "TEdges",
		WMin:       g.WMin(),
		MaxIters:   int(16*g.N) + 1024,
		UseMerge:   useMerge,
		Index:      IndexClustered,
	}
}

// TestBuildDistancesExact cross-checks every TLandmark row against the
// in-memory Dijkstra: dout = dist(l, v) and din = dist(v, l) exactly, with
// the Unreached sentinel standing in for missing paths — on both the MERGE
// and the UPDATE+INSERT relaxation paths.
func TestBuildDistancesExact(t *testing.T) {
	g := graph.Random(40, 100, 7)
	for _, useMerge := range []bool{true, false} {
		name := "merge"
		profile := rdb.ProfileDBMSX
		if !useMerge {
			name = "update-insert"
			profile = rdb.ProfilePostgreSQL9
		}
		t.Run(name, func(t *testing.T) {
			db, err := rdb.Open(rdb.Options{Profile: profile})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			sess := db.Session()
			defer sess.Close()
			loadGraphTables(t, sess, g)

			orc, st, err := Build(context.Background(), sess, buildParams(Config{K: 4}, g, useMerge))
			if err != nil {
				t.Fatal(err)
			}
			if len(orc.Landmarks) != 4 {
				t.Fatalf("expected 4 landmarks, got %v", orc.Landmarks)
			}
			if orc.Rows != 4*int(g.N) {
				t.Fatalf("expected %d rows (k*|V|), got %d", 4*g.N, orc.Rows)
			}
			if st.Iterations == 0 || st.Statements == 0 {
				t.Fatalf("empty build stats: %+v", st)
			}
			rows, err := db.Query(fmt.Sprintf("SELECT lid, nid, dout, din FROM %s", TblLandmark))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows.Data {
				lid, nid, dout, din := r[0].I, r[1].I, r[2].I, r[3].I
				l := orc.Landmarks[lid]
				fwd := graph.MDJ(g, l, nid)
				want := Unreached
				if fwd.Found {
					want = fwd.Distance
				}
				if dout != want {
					t.Errorf("dout(l=%d, v=%d) = %d, want %d", l, nid, dout, want)
				}
				bwd := graph.MDJ(g, nid, l)
				want = Unreached
				if bwd.Found {
					want = bwd.Distance
				}
				if din != want {
					t.Errorf("din(l=%d, v=%d) = %d, want %d", l, nid, din, want)
				}
			}
		})
	}
}

// TestDegreeSelectionOrder: the degree strategy must pick the k
// highest-total-degree nodes.
func TestDegreeSelectionOrder(t *testing.T) {
	// A star around node 0 plus a light tail: degrees 0 >> 1 > others.
	var edges []graph.Edge
	for i := int64(1); i <= 6; i++ {
		edges = append(edges, graph.Edge{From: 0, To: i, Weight: 1})
		edges = append(edges, graph.Edge{From: i, To: 0, Weight: 1})
	}
	edges = append(edges,
		graph.Edge{From: 1, To: 2, Weight: 1},
		graph.Edge{From: 2, To: 1, Weight: 1},
		graph.Edge{From: 1, To: 3, Weight: 1})
	g, err := graph.New(8, edges) // node 7 isolated
	if err != nil {
		t.Fatal(err)
	}
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session()
	defer sess.Close()
	loadGraphTables(t, sess, g)
	orc, _, err := Build(context.Background(), sess, buildParams(Config{K: 2, Strategy: Degree}, g, true))
	if err != nil {
		t.Fatal(err)
	}
	if orc.Landmarks[0] != 0 || orc.Landmarks[1] != 1 {
		t.Fatalf("degree strategy should pick hub 0 then 1, got %v", orc.Landmarks)
	}
}

// TestFarthestSpreads: farthest-point selection on a path graph must jump
// to the far end after the first pick.
func TestFarthestSpreads(t *testing.T) {
	// 0 - 1 - ... - 9 bidirectional path; node 0 gets an extra edge so the
	// first (degree) pick lands mid-path deterministically at node 1.
	var edges []graph.Edge
	for i := int64(0); i < 9; i++ {
		edges = append(edges, graph.Edge{From: i, To: i + 1, Weight: 1})
		edges = append(edges, graph.Edge{From: i + 1, To: i, Weight: 1})
	}
	g, err := graph.New(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session()
	defer sess.Close()
	loadGraphTables(t, sess, g)
	orc, _, err := Build(context.Background(), sess, buildParams(Config{K: 2, Strategy: Farthest}, g, true))
	if err != nil {
		t.Fatal(err)
	}
	first := orc.Landmarks[0]
	second := orc.Landmarks[1]
	// The second pick must be one of the path's endpoints — whichever is
	// farther from the first pick.
	wantSecond := int64(0)
	if first < 5 {
		wantSecond = 9
	}
	if second != wantSecond {
		t.Fatalf("farthest pick after %d should be %d, got %d (landmarks %v)",
			first, wantSecond, second, orc.Landmarks)
	}
}

// TestKClamp: requesting more landmarks than placeable nodes stops early
// instead of failing.
func TestKClamp(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 0, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session()
	defer sess.Close()
	loadGraphTables(t, sess, g)
	orc, _, err := Build(context.Background(), sess, buildParams(Config{K: 10}, g, true))
	if err != nil {
		t.Fatal(err)
	}
	// Only nodes 0 and 1 carry edges; node 2 never enters the ranking.
	if orc.K != 2 || len(orc.Landmarks) != 2 {
		t.Fatalf("expected 2 placeable landmarks, got %+v", orc)
	}
	// Every node still gets rows for every placed landmark.
	if orc.Rows != 2*3 {
		t.Fatalf("expected 6 rows, got %d", orc.Rows)
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{"degree": Degree, "FARTHEST": Farthest} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("expected an error for an unknown strategy")
	}
}
