// Package oracle implements a relational landmark distance oracle in the
// spirit of the paper's SegTable (§4.3): precomputed shortest-path state
// stored as a relation and queried with SQL. A small set of k landmarks is
// selected (by degree or farthest-point), and for every landmark l the
// exact distances dist(l, v) and dist(v, l) are computed by single-source
// set-Dijkstra relaxation to fixpoint — the same FEM loop shape as the
// SegTable construction — and materialized into
//
//	TLandmark(lid, nid, dout, din)
//
// with a composite index on (nid, lid). Two consumers sit on top:
//
//   - ALT pruning: for a search toward t, every candidate v carries the
//     lower bound max_l max(dout(t)-dout(v), din(v)-din(t)) <= dist(v,t)
//     (triangle inequality, both directions of a directed graph). The
//     engine folds this term into the frontier-selection SQL so
//     provably-unhelpful tuples never enter the frontier.
//   - Approximate answers: dist(s,t) is bracketed by
//     [max_l lower-bound, min_l dist(s,l)+dist(l,t)] with two aggregate
//     SELECTs over TLandmark and no touch of TEdges.
//
// The package speaks to the database through an rdb.Session; the engine
// integration (build latching, versioned invalidation, the ALT femSpec and
// ApproxDistance) lives in internal/core.
package oracle

import (
	"fmt"
	"strings"
	"time"
)

// Relation names owned by the oracle subsystem.
const (
	// TblLandmark is the oracle relation: one row per (landmark, node)
	// with the landmark's id, the node, dist(l, node) and dist(node, l).
	TblLandmark = "TLandmark"
	// TblWork is the single-source relaxation working set.
	TblWork = "TLmkWork"
	// TblExpand is the relaxation scratch table for profiles without MERGE.
	TblExpand = "TLmkExpand"
	// TblDeg is the degree ranking used by landmark selection.
	TblDeg = "TLmkDeg"
	// TblDegIn is the in-degree half of the degree ranking.
	TblDegIn = "TLmkDegIn"
	// TblFar holds each node's distance to the nearest chosen landmark
	// (farthest-point selection state).
	TblFar = "TLmkFar"
)

// Tables lists every relation the oracle owns, for loaders that need to
// drop them when the graph is replaced.
func Tables() []string {
	return []string{TblLandmark, TblWork, TblExpand, TblDeg, TblDegIn, TblFar}
}

// Unreached is the sentinel distance for (landmark, node) pairs with no
// connecting path. It matches core.MaxDist so sentinel arithmetic stays
// consistent across TVisited and TLandmark: a lower bound derived from one
// finite and one Unreached distance is a genuine unreachability proof (see
// the bound derivation in the package comment).
const Unreached = int64(1) << 50

// Strategy selects how landmarks are placed.
type Strategy int

const (
	// Degree picks the k highest-degree nodes (in+out) — cheap, and on
	// power-law graphs the hubs cover most shortest paths.
	Degree Strategy = iota
	// Farthest picks the highest-degree node first, then repeatedly the
	// node farthest (by dist from the chosen set) from all chosen
	// landmarks — the classic farthest-point spread, better geographic
	// coverage on flat-degree graphs.
	Farthest
)

func (s Strategy) String() string {
	switch s {
	case Degree:
		return "degree"
	case Farthest:
		return "farthest"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a case-insensitive strategy name to its Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "degree":
		return Degree, nil
	case "farthest":
		return Farthest, nil
	}
	return 0, fmt.Errorf("oracle: unknown strategy %q (degree|farthest)", s)
}

// IndexMode mirrors the engine's physical-design axis for the TLandmark
// relation (the working tables are always clustered, like TSeg).
type IndexMode int

const (
	// IndexClustered stores TLandmark as a B+tree on (nid, lid).
	IndexClustered IndexMode = iota
	// IndexSecondary keeps a heap plus a non-clustered index on nid.
	IndexSecondary
	// IndexNone keeps a bare heap; every probe is a scan.
	IndexNone
)

// Config is the caller-facing build configuration.
type Config struct {
	// K is the number of landmarks (0 selects DefaultK; clamped to the
	// number of placeable nodes).
	K int
	// Strategy picks landmark placement (default Degree).
	Strategy Strategy
}

// DefaultK is the landmark count used when Config.K is zero.
const DefaultK = 8

// Params is the full build parameterization the engine passes down.
type Params struct {
	Config
	// NodesTable / EdgesTable name the graph relations to read.
	NodesTable string
	EdgesTable string
	// WMin is the minimal edge weight (drives the set-Dijkstra frontier
	// widening, like the SegTable construction rule).
	WMin int64
	// MaxIters caps relaxation rounds per landmark as a safety net.
	MaxIters int
	// UseMerge selects the MERGE relaxation step; profiles without MERGE
	// get the UPDATE + INSERT emulation.
	UseMerge bool
	// Index is the physical design for TLandmark.
	Index IndexMode
}

// Oracle describes a built landmark oracle. It carries only scalar
// metadata — the distances themselves live in TLandmark.
type Oracle struct {
	K         int
	Strategy  Strategy
	Landmarks []int64
	// Rows is |TLandmark| = K * |V|.
	Rows int
}

// BuildStats reports one oracle construction.
type BuildStats struct {
	K          int
	Strategy   Strategy
	Landmarks  []int64
	Rows       int
	Iterations int // relaxation rounds across all landmarks and directions
	Statements int // SQL statements issued
	BuildTime  time.Duration
}

func (s *BuildStats) String() string {
	return fmt.Sprintf("Oracle(k=%d, %s): rows=%d iters=%d stmts=%d time=%v",
		s.K, s.Strategy, s.Rows, s.Iterations, s.Statements,
		s.BuildTime.Round(time.Millisecond))
}
