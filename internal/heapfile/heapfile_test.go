package heapfile

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/storage"
)

func newHeap(t *testing.T) *HeapFile {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemDiskManager(0), 32)
	h, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestInsertGet(t *testing.T) {
	h := newHeap(t)
	rid, err := h.Insert([]byte("tuple-1"))
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := h.Get(rid)
	if err != nil || !ok || string(data) != "tuple-1" {
		t.Fatalf("get: %q %v %v", data, ok, err)
	}
	if h.Len() != 1 {
		t.Fatalf("len: %d", h.Len())
	}
}

func TestPageOverflowChains(t *testing.T) {
	h := newHeap(t)
	big := bytes.Repeat([]byte("x"), 1000)
	var rids []RID
	for i := 0; i < 100; i++ { // ~100 KB over 8 KB pages
		rid, err := h.Insert(append([]byte(fmt.Sprintf("%03d-", i)), big...))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids = append(rids, rid)
	}
	pages := map[storage.PageID]bool{}
	for i, rid := range rids {
		pages[rid.Page] = true
		data, ok, err := h.Get(rid)
		if err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
		if string(data[:4]) != fmt.Sprintf("%03d-", i) {
			t.Fatalf("content %d wrong: %q", i, data[:4])
		}
	}
	if len(pages) < 10 {
		t.Fatalf("expected many pages, got %d", len(pages))
	}
}

func TestDelete(t *testing.T) {
	h := newHeap(t)
	rid, _ := h.Insert([]byte("gone"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	_, ok, err := h.Get(rid)
	if err != nil || ok {
		t.Fatalf("deleted tuple still visible: %v %v", ok, err)
	}
	if err := h.Delete(rid); err == nil {
		t.Fatal("double delete must fail")
	}
	if h.Len() != 0 {
		t.Fatalf("len after delete: %d", h.Len())
	}
}

func TestUpdateInPlaceAndMove(t *testing.T) {
	h := newHeap(t)
	rid, _ := h.Insert([]byte("abcdef"))
	// Shrink: stays in place.
	nrid, err := h.Update(rid, []byte("xyz"))
	if err != nil || nrid != rid {
		t.Fatalf("shrink update: %v %v", nrid, err)
	}
	data, _, _ := h.Get(rid)
	if string(data) != "xyz" {
		t.Fatalf("shrink content: %q", data)
	}
	// Grow within page free space: same RID.
	nrid, err = h.Update(rid, bytes.Repeat([]byte("g"), 100))
	if err != nil || nrid != rid {
		t.Fatalf("grow update: %v %v", nrid, err)
	}
	// Fill the page so the next growth must move.
	for i := 0; i < 7; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte("f"), 1000)); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := h.Update(rid, bytes.Repeat([]byte("m"), 4000))
	if err != nil {
		t.Fatal(err)
	}
	if moved == rid {
		t.Fatal("expected relocation")
	}
	data, ok, _ := h.Get(moved)
	if !ok || len(data) != 4000 {
		t.Fatalf("moved tuple: ok=%v len=%d", ok, len(data))
	}
	// The old slot is dead.
	_, ok, _ = h.Get(rid)
	if ok {
		t.Fatal("old RID should be dead after move")
	}
	if _, err := h.Update(rid, []byte("no")); err == nil {
		t.Fatal("update of dead tuple must fail")
	}
}

func TestScan(t *testing.T) {
	h := newHeap(t)
	var want []string
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("row-%d", i)
		if _, err := h.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want = append(want, s)
	}
	// Delete every third row.
	it := h.Scan()
	var rids []RID
	for it.Next() {
		rids = append(rids, it.RID())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	kept := map[string]bool{}
	for i, rid := range rids {
		if i%3 == 0 {
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
		} else {
			kept[want[i]] = true
		}
	}
	it = h.Scan()
	n := 0
	for it.Next() {
		if !kept[string(it.Tuple())] {
			t.Fatalf("scan returned deleted/unknown tuple %q", it.Tuple())
		}
		n++
	}
	if n != len(kept) {
		t.Fatalf("scan count: %d want %d", n, len(kept))
	}
}

func TestTupleTooLarge(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Insert(make([]byte, storage.PageSize)); err == nil {
		t.Fatal("page-sized tuple must fail")
	}
}

func TestBadSlot(t *testing.T) {
	h := newHeap(t)
	rid, _ := h.Insert([]byte("a"))
	bad := RID{Page: rid.Page, Slot: 99}
	if _, _, err := h.Get(bad); err == nil {
		t.Fatal("bad slot get must fail")
	}
	if err := h.Delete(bad); err == nil {
		t.Fatal("bad slot delete must fail")
	}
	if _, err := h.Update(bad, []byte("x")); err == nil {
		t.Fatal("bad slot update must fail")
	}
}
