// Package heapfile implements slotted-page heap tables: unordered tuple
// storage addressed by RID (page, slot). Heap files back tables without a
// clustered index — the "NoIndex" and secondary-"Index" configurations of
// the paper's Fig 8(c) experiment.
package heapfile

import (
	"fmt"

	"repro/internal/storage"
)

// Page layout:
//
//	off 0  type      byte (3)
//	off 2  nSlots    uint16
//	off 4  freeStart uint16 (lowest used cell byte; cells grow down)
//	off 6  next      uint32 (next page in file chain)
//	off 10 slots     nSlots * (offset uint16, length uint16); length 0 = dead
const (
	heapPageType = 3

	offType      = 0
	offNSlots    = 2
	offFreeStart = 4
	offNext      = 6
	offSlots     = 10

	slotSize = 4
)

// RID addresses one tuple.
type RID struct {
	Page storage.PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is a chain of slotted pages. Not safe for concurrent use.
type HeapFile struct {
	pool  *storage.BufferPool
	first storage.PageID
	last  storage.PageID
	pages []storage.PageID // every chained page, in allocation order
	n     int
}

// New creates an empty heap file with one page.
func New(pool *storage.BufferPool) (*HeapFile, error) {
	pg, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initPage(pg)
	id := pg.ID()
	pool.Unpin(pg, true)
	return &HeapFile{pool: pool, first: id, last: id, pages: []storage.PageID{id}}, nil
}

func initPage(pg *storage.Page) {
	for i := range pg.Data {
		pg.Data[i] = 0
	}
	pg.Data[offType] = heapPageType
	pg.PutU16(offNSlots, 0)
	pg.PutU16(offFreeStart, storage.PageSize)
	pg.PutU32(offNext, uint32(storage.InvalidPageID))
}

// Len returns the number of live tuples.
func (h *HeapFile) Len() int { return h.n }

// FirstPage returns the head of the page chain (for diagnostics).
func (h *HeapFile) FirstPage() storage.PageID { return h.first }

func freeSpace(pg *storage.Page) int {
	return int(pg.U16(offFreeStart)) - (offSlots + slotSize*int(pg.U16(offNSlots)))
}

// Insert appends a tuple, returning its RID.
func (h *HeapFile) Insert(data []byte) (RID, error) {
	if len(data)+slotSize > storage.PageSize-offSlots {
		return RID{}, fmt.Errorf("heapfile: tuple of %d bytes exceeds page capacity", len(data))
	}
	pg, err := h.pool.Fetch(h.last)
	if err != nil {
		return RID{}, err
	}
	if freeSpace(pg) < len(data)+slotSize {
		// Allocate a new page and link it.
		npg, err := h.pool.NewPage()
		if err != nil {
			h.pool.Unpin(pg, false)
			return RID{}, err
		}
		initPage(npg)
		pg.PutU32(offNext, uint32(npg.ID()))
		h.pool.Unpin(pg, true)
		h.last = npg.ID()
		h.pages = append(h.pages, npg.ID())
		pg = npg
	}
	slot := pg.U16(offNSlots)
	start := int(pg.U16(offFreeStart)) - len(data)
	copy(pg.Data[start:], data)
	pg.PutU16(offFreeStart, uint16(start))
	base := offSlots + slotSize*int(slot)
	pg.PutU16(base, uint16(start))
	pg.PutU16(base+2, uint16(len(data)))
	pg.PutU16(offNSlots, slot+1)
	rid := RID{Page: pg.ID(), Slot: slot}
	h.pool.Unpin(pg, true)
	h.n++
	return rid, nil
}

// Reset truncates the heap in place: the first page is re-initialized and
// becomes the whole file again, and every other chained page is discarded
// from the buffer pool without write-back — a truncated table's pages are
// dead, and flushing them on eviction would charge I/O for content nothing
// will read. Hot truncate-refill cycles (the FEM scratch tables) reuse one
// page instead of leaking a page per cycle.
func (h *HeapFile) Reset() error {
	pg, err := h.pool.Fetch(h.first)
	if err != nil {
		return err
	}
	initPage(pg)
	h.pool.Unpin(pg, true)
	for _, id := range h.pages[1:] {
		h.pool.Discard(id)
	}
	h.pages = h.pages[:1]
	h.last = h.first
	h.n = 0
	return nil
}

// Get returns a copy of the tuple at rid, or ok=false if it was deleted.
func (h *HeapFile) Get(rid RID) ([]byte, bool, error) {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer h.pool.Unpin(pg, false)
	if int(rid.Slot) >= int(pg.U16(offNSlots)) {
		return nil, false, fmt.Errorf("heapfile: bad slot %v", rid)
	}
	base := offSlots + slotSize*int(rid.Slot)
	off, ln := int(pg.U16(base)), int(pg.U16(base+2))
	if ln == 0 {
		return nil, false, nil
	}
	out := make([]byte, ln)
	copy(out, pg.Data[off:off+ln])
	return out, true, nil
}

// Delete removes the tuple at rid (space reclaimed only on page reuse).
func (h *HeapFile) Delete(rid RID) error {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(pg, true)
	if int(rid.Slot) >= int(pg.U16(offNSlots)) {
		return fmt.Errorf("heapfile: bad slot %v", rid)
	}
	base := offSlots + slotSize*int(rid.Slot)
	if pg.U16(base+2) == 0 {
		return fmt.Errorf("heapfile: double delete %v", rid)
	}
	pg.PutU16(base+2, 0)
	h.n--
	return nil
}

// Update replaces the tuple at rid. If the new tuple fits in the page's
// free space it stays on the page with the same RID; otherwise it moves to
// the end of the file and the new RID is returned.
func (h *HeapFile) Update(rid RID, data []byte) (RID, error) {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return RID{}, err
	}
	if int(rid.Slot) >= int(pg.U16(offNSlots)) {
		h.pool.Unpin(pg, false)
		return RID{}, fmt.Errorf("heapfile: bad slot %v", rid)
	}
	base := offSlots + slotSize*int(rid.Slot)
	off, ln := int(pg.U16(base)), int(pg.U16(base+2))
	if ln == 0 {
		h.pool.Unpin(pg, false)
		return RID{}, fmt.Errorf("heapfile: update of deleted tuple %v", rid)
	}
	if len(data) <= ln {
		// Overwrite in place (shrink allowed; slack bytes stay dead).
		copy(pg.Data[off:], data)
		pg.PutU16(base+2, uint16(len(data)))
		h.pool.Unpin(pg, true)
		return rid, nil
	}
	if freeSpace(pg) >= len(data) {
		start := int(pg.U16(offFreeStart)) - len(data)
		copy(pg.Data[start:], data)
		pg.PutU16(offFreeStart, uint16(start))
		pg.PutU16(base, uint16(start))
		pg.PutU16(base+2, uint16(len(data)))
		h.pool.Unpin(pg, true)
		return rid, nil
	}
	// Move: delete here, insert at the end.
	pg.PutU16(base+2, 0)
	h.pool.Unpin(pg, true)
	h.n-- // Insert will re-increment
	return h.Insert(data)
}

// Iterator walks all live tuples. Each page is copied out before advancing,
// so no pins are held between Next calls.
type Iterator struct {
	h       *HeapFile
	rids    []RID
	tuples  [][]byte
	pos     int
	nextPg  storage.PageID
	done    bool
	lastErr error
}

// Scan returns an iterator over every live tuple.
func (h *HeapFile) Scan() *Iterator {
	return &Iterator{h: h, nextPg: h.first}
}

// Next advances the iterator.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for it.pos >= len(it.tuples) {
		if it.nextPg == storage.InvalidPageID {
			it.done = true
			return false
		}
		pg, err := it.h.pool.Fetch(it.nextPg)
		if err != nil {
			it.lastErr = err
			it.done = true
			return false
		}
		it.tuples = it.tuples[:0]
		it.rids = it.rids[:0]
		n := int(pg.U16(offNSlots))
		for s := 0; s < n; s++ {
			base := offSlots + slotSize*s
			off, ln := int(pg.U16(base)), int(pg.U16(base+2))
			if ln == 0 {
				continue
			}
			buf := make([]byte, ln)
			copy(buf, pg.Data[off:off+ln])
			it.tuples = append(it.tuples, buf)
			it.rids = append(it.rids, RID{Page: pg.ID(), Slot: uint16(s)})
		}
		it.nextPg = storage.PageID(pg.U32(offNext))
		it.h.pool.Unpin(pg, false)
		it.pos = 0
	}
	it.pos++
	return true
}

// Tuple returns the current tuple bytes.
func (it *Iterator) Tuple() []byte { return it.tuples[it.pos-1] }

// RID returns the current tuple's RID.
func (it *Iterator) RID() RID { return it.rids[it.pos-1] }

// Err reports any error that terminated the scan.
func (it *Iterator) Err() error { return it.lastErr }
