package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// CheckExposition validates a rendered text-exposition page: every line must
// be a HELP/TYPE comment or a well-formed sample, every sample must sit
// under its family's TYPE header, and each family's series must be
// consecutive. It exists so endpoint tests (the serving tier's /metrics)
// can assert scraper-compatibility without depending on a real Prometheus
// parser; the Exporter already enforces these rules at build time, so a
// failure here means a bug in the Exporter itself, not in a collector.
func CheckExposition(page string) error {
	typed := map[string]string{}
	lastFamily := ""
	closed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			typed[name] = typ
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = name
			continue
		}
		if !expositionSample.MatchString(line) {
			return fmt.Errorf("line %d: malformed sample: %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE header", ln+1, name)
		}
		if closed[family] {
			return fmt.Errorf("line %d: family %s series are not consecutive", ln+1, family)
		}
		if family != lastFamily {
			return fmt.Errorf("line %d: sample %s under family %s header", ln+1, name, lastFamily)
		}
	}
	return nil
}

// expositionSample matches one valid sample line of the text format.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
