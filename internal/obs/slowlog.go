package obs

import (
	"sync"
	"time"
)

// SlowQueryEntry is one logged query: enough context to reproduce it (the
// endpoints and algorithm) and enough decomposition to see where the time
// went (the stage-timing model of QueryStats: admission wait, planning, SQL
// execution, total).
type SlowQueryEntry struct {
	Time      time.Time     `json:"time"`
	Source    int64         `json:"source"`
	Target    int64         `json:"target"`
	Algorithm string        `json:"algorithm"`
	Planner   string        `json:"planner,omitempty"`
	Duration  time.Duration `json:"-"`
	// Stage decomposition (microseconds in JSON to match the serving tier's
	// duration_us convention).
	DurationUS int64  `json:"duration_us"`
	GateWaitUS int64  `json:"gate_wait_us"`
	PlanUS     int64  `json:"plan_us"`
	SQLUS      int64  `json:"sql_us"`
	Statements int    `json:"statements"`
	Iterations int    `json:"iterations,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	Err        string `json:"error,omitempty"`
}

// SlowLog is a bounded ring of the most recent queries slower than a
// threshold. Overwrites are by arrival order: the ring always holds the
// newest Cap entries, and Total counts every entry ever admitted so
// operators can tell "quiet fleet" from "ring turning over fast".
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []SlowQueryEntry
	next      int // ring index the next entry lands in
	size      int // live entries (== len(ring) once wrapped)
	total     uint64
}

// DefaultSlowLogSize bounds the ring when NewSlowLog gets capacity <= 0.
const DefaultSlowLogSize = 128

// NewSlowLog creates a ring of at most capacity entries admitting queries
// with Duration >= threshold. A zero or negative threshold disables
// admission entirely (Note becomes a cheap no-op) — the log still serves,
// empty.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowQueryEntry, capacity)}
}

// Threshold returns the admission threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Note admits e if it crosses the threshold, overwriting the oldest entry
// when the ring is full. It reports whether the entry was admitted.
func (l *SlowLog) Note(e SlowQueryEntry) bool {
	if l.threshold <= 0 || e.Duration < l.threshold {
		return false
	}
	e.DurationUS = e.Duration.Microseconds()
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Entries returns the logged queries, newest first.
func (l *SlowLog) Entries() []SlowQueryEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQueryEntry, 0, l.size)
	for i := 1; i <= l.size; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Total counts entries ever admitted (including those overwritten).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Cap returns the ring capacity.
func (l *SlowLog) Cap() int { return len(l.ring) }
