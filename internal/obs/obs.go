// Package obs is the zero-dependency observability layer: race-safe
// counters, gauges and fixed-bucket histograms, a scrape-time Collector
// interface, and a renderer for the Prometheus text exposition format
// (version 0.0.4 — the format every scraper understands).
//
// The design splits instrument from transport. Hot paths own the
// instruments (a Histogram's Observe is a handful of atomic adds, safe from
// any goroutine, no allocation); the serving tier owns a Registry of
// Collectors that, on each GET /metrics, walk the instruments and the
// pre-existing stats structs (gate admissions, plan cache, buffer-pool
// shards, ...) and emit samples into an Exporter. Nothing here imports
// anything beyond the standard library, and nothing outside cmd/spdbd needs
// to know the text format exists.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Collector contributes samples to one scrape. Implementations read their
// subsystem's counters at call time — scrapes see current values without
// the subsystem pushing anything.
type Collector interface {
	CollectMetrics(x *Exporter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(x *Exporter)

// CollectMetrics calls f.
func (f CollectorFunc) CollectMetrics(x *Exporter) { f(x) }

// Registry is an ordered set of Collectors rendered into one exposition.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Collectors render in registration order, so
// register one collector per subsystem and keep each metric family's
// samples inside a single collector (the text format requires a family's
// series to be consecutive).
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus renders every collector into w in the text exposition
// format. It returns the first rendering error (a duplicate family emitted
// across collectors, an invalid name) — scrape handlers should turn that
// into a 500 rather than serve a half-valid page.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	x := &Exporter{seen: make(map[string]bool)}
	for _, c := range cs {
		c.CollectMetrics(x)
	}
	if x.err != nil {
		return x.err
	}
	_, err := w.Write([]byte(x.b.String()))
	return err
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Exporter accumulates one scrape. Collectors call Counter, Gauge and
// Histogram; the first malformed emission latches an error and subsequent
// calls become no-ops, so a bad metric name fails the scrape loudly instead
// of corrupting the page.
type Exporter struct {
	b    strings.Builder
	seen map[string]bool
	last string // family currently open, for the consecutive-series check
	err  error
}

// Counter emits one sample of a monotonically increasing family.
func (x *Exporter) Counter(name, help string, v float64, labels ...Label) {
	x.sample(name, help, "counter", v, labels)
}

// Gauge emits one sample of a family that can go up and down.
func (x *Exporter) Gauge(name, help string, v float64, labels ...Label) {
	x.sample(name, help, "gauge", v, labels)
}

// Histogram emits a histogram family snapshot: one _bucket series per
// bound (cumulative, le-labelled, +Inf last), plus _sum and _count.
func (x *Exporter) Histogram(name, help string, h *Histogram, labels ...Label) {
	if x.err != nil {
		return
	}
	if err := x.openFamily(name, help, "histogram"); err != nil {
		x.err = err
		return
	}
	snap := h.Snapshot()
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += snap.Counts[i]
		x.series(name+"_bucket", append(labels[:len(labels):len(labels)], L("le", formatFloat(ub))), float64(cum))
	}
	cum += snap.Counts[len(h.bounds)]
	x.series(name+"_bucket", append(labels[:len(labels):len(labels)], L("le", "+Inf")), float64(cum))
	x.series(name+"_sum", labels, snap.Sum)
	// _count is the +Inf cumulative bucket, not the separately-read total:
	// a concurrent Observe landing between the two reads must never make
	// _count disagree with the buckets scrapers integrate over.
	x.series(name+"_count", labels, float64(cum))
}

func (x *Exporter) sample(name, help, typ string, v float64, labels []Label) {
	if x.err != nil {
		return
	}
	if err := x.openFamily(name, help, typ); err != nil {
		x.err = err
		return
	}
	x.series(name, labels, v)
}

// openFamily writes the # HELP / # TYPE header the first time a family
// appears, and rejects a family re-opened after another one rendered
// (non-consecutive series are invalid exposition).
func (x *Exporter) openFamily(name, help, typ string) error {
	if !validName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	if x.last == name {
		return nil
	}
	if x.seen[name] {
		return fmt.Errorf("obs: metric family %q emitted non-consecutively", name)
	}
	x.seen[name] = true
	x.last = name
	fmt.Fprintf(&x.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&x.b, "# TYPE %s %s\n", name, typ)
	return nil
}

func (x *Exporter) series(name string, labels []Label, v float64) {
	x.b.WriteString(name)
	if len(labels) > 0 {
		x.b.WriteByte('{')
		for i, l := range labels {
			if !validLabelName(l.Name) {
				x.err = fmt.Errorf("obs: invalid label name %q on %s", l.Name, name)
				return
			}
			if i > 0 {
				x.b.WriteByte(',')
			}
			fmt.Fprintf(&x.b, "%s=%q", l.Name, l.Value)
		}
		x.b.WriteByte('}')
	}
	x.b.WriteByte(' ')
	x.b.WriteString(formatFloat(v))
	x.b.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without an exponent
// (scrapers and humans both prefer "1024" to "1.024e+03"), infinities in
// the exposition spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	// Label names allow the metric charset minus ':'.
	return validName(s) && !strings.Contains(s, ":")
}

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer-valued level, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram, safe for concurrent Observe from
// any number of goroutines. Bounds are upper-inclusive bucket edges in
// ascending order; an implicit +Inf bucket catches the tail. Observations
// are float64 by convention in the base unit of the metric name (seconds
// for *_seconds families).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// DefLatencyBuckets spans cache-hit microseconds to stuck-query seconds:
// the range one relational shortest-path query can land in.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram creates a histogram with the given ascending bucket bounds.
// It panics on unordered or empty bounds — bucket layouts are compile-time
// decisions, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("obs: duplicate histogram bound")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the +Inf bucket is index
	// len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time read of a histogram. Counts are per
// bucket (not cumulative), the last entry being the +Inf overflow. The
// snapshot is not atomic across buckets — concurrent Observes can land
// between bucket reads — but each counter is individually consistent and
// Count >= sum over a subset read earlier, which is all exposition needs.
type HistSnapshot struct {
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot reads the current bucket counts, sum and total count.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Counts: make([]uint64, len(h.counts))}
	// Read count and sum first: if Observes race the bucket reads, the
	// bucket cumulative total can only be >= Count, never behind it in a
	// way that invents observations.
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation inside the winning bucket — the usual Prometheus
// histogram_quantile estimate. It returns 0 with no observations; tail
// observations beyond the last finite bound clamp to that bound.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			ub := h.bounds[i]
			if c == 0 {
				return ub
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (ub-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}
