package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact text a small registry renders:
// header placement, label quoting, histogram series layout, float
// formatting. A scraper-visible format change must show up here.
func TestExpositionGolden(t *testing.T) {
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r := NewRegistry()
	r.Register(CollectorFunc(func(x *Exporter) {
		x.Counter("spdb_requests_total", "Requests served.", 42)
		x.Counter("spdb_admissions_total", "Gate admissions.", 3, L("mode", "shared"))
		x.Counter("spdb_admissions_total", "Gate admissions.", 1, L("mode", "exclusive"))
		x.Gauge("spdb_inflight_queries", "Queries in flight.", 2)
		x.Histogram("spdb_query_duration_seconds", "Query latency.", h, L("algorithm", "BSDJ"))
	}))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP spdb_requests_total Requests served.
# TYPE spdb_requests_total counter
spdb_requests_total 42
# HELP spdb_admissions_total Gate admissions.
# TYPE spdb_admissions_total counter
spdb_admissions_total{mode="shared"} 3
spdb_admissions_total{mode="exclusive"} 1
# HELP spdb_inflight_queries Queries in flight.
# TYPE spdb_inflight_queries gauge
spdb_inflight_queries 2
# HELP spdb_query_duration_seconds Query latency.
# TYPE spdb_query_duration_seconds histogram
spdb_query_duration_seconds_bucket{algorithm="BSDJ",le="0.1"} 1
spdb_query_duration_seconds_bucket{algorithm="BSDJ",le="1"} 2
spdb_query_duration_seconds_bucket{algorithm="BSDJ",le="+Inf"} 3
spdb_query_duration_seconds_sum{algorithm="BSDJ"} 5.55
spdb_query_duration_seconds_count{algorithm="BSDJ"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// ValidateExposition asserts the rendered page passes CheckExposition (the
// package's own scraper-compatibility validator, shared with the spdbd
// /metrics test via the exported function).
func ValidateExposition(t *testing.T, page string) {
	t.Helper()
	if err := CheckExposition(page); err != nil {
		t.Fatal(err)
	}
}

func TestExpositionValidates(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets...)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 50)
	}
	r := NewRegistry()
	r.Register(CollectorFunc(func(x *Exporter) {
		x.Counter("a_total", "a", 1)
		x.Gauge("b_level", `with "quotes" and back\slash`, -3.5, L("k", `v"quoted\`))
		x.Histogram("c_seconds", "c", h)
	}))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	ValidateExposition(t, b.String())
}

// TestCheckExpositionRejects proves the validator is not a rubber stamp:
// hand-built invalid pages must fail it.
func TestCheckExpositionRejects(t *testing.T) {
	for name, page := range map[string]string{
		"sample without TYPE": "a_total 1\n",
		"malformed sample":    "# TYPE a counter\na{ 1\n",
		"split family":        "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"bad type keyword":    "# TYPE a summary\na 1\n",
	} {
		if err := CheckExposition(page); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpositionErrors(t *testing.T) {
	for name, emit := range map[string]func(x *Exporter){
		"bad metric name":   func(x *Exporter) { x.Counter("1bad", "h", 1) },
		"bad label name":    func(x *Exporter) { x.Counter("ok_total", "h", 1, L("9x", "v")) },
		"split family":      func(x *Exporter) { x.Counter("a", "h", 1); x.Counter("b", "h", 1); x.Counter("a", "h", 2) },
		"colon label name":  func(x *Exporter) { x.Counter("ok_total", "h", 1, L("a:b", "v")) },
		"empty metric name": func(x *Exporter) { x.Gauge("", "h", 1) },
	} {
		r := NewRegistry()
		r.Register(CollectorFunc(emit))
		var b strings.Builder
		if err := r.WritePrometheus(&b); err == nil {
			t.Errorf("%s: expected error, rendered:\n%s", name, b.String())
		}
	}
}

func TestHistogramCorrectness(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper-inclusive buckets: le=1 gets {0.5, 1}, le=2 gets {1.5, 2},
	// le=4 gets {3, 4}, +Inf gets {5, 100}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count %d want 8", s.Count)
	}
	if math.Abs(s.Sum-117) > 1e-9 {
		t.Fatalf("sum %v want 117", s.Sum)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 %v outside [1,2]", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 %v: tail must clamp to the last finite bound", q)
	}
	empty := NewHistogram(1)
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile %v want 0", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewHistogram(%v) did not panic", name, bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks no observation is lost and the sum converges exactly (every
// observed value is representable, so the CAS loop must account for all of
// them). Run under -race this also proves Observe/Snapshot are safe.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.25, 0.5, 0.75, 1)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent reader exercises Snapshot against in-flight Observes.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%4) * 0.25)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("lost observations: count %d want %d", s.Count, workers*perWorker)
	}
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// Each worker observes 0, .25, .5, .75 cyclically: per full cycle 1.5.
	want := float64(workers) * float64(perWorker) / 4 * 1.5
	if math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum %v want %v", s.Sum, want)
	}
}

func TestSlowLogRingBounds(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 4)
	if l.Cap() != 4 {
		t.Fatalf("cap %d want 4", l.Cap())
	}
	// Below threshold: rejected.
	if l.Note(SlowQueryEntry{Duration: 9 * time.Millisecond}) {
		t.Fatal("entry under threshold admitted")
	}
	for i := 0; i < 10; i++ {
		ok := l.Note(SlowQueryEntry{Source: int64(i), Duration: time.Duration(10+i) * time.Millisecond})
		if !ok {
			t.Fatalf("entry %d rejected", i)
		}
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	// Newest first: sources 9, 8, 7, 6 survive.
	for i, want := range []int64{9, 8, 7, 6} {
		if got[i].Source != want {
			t.Fatalf("entry %d: source %d want %d", i, got[i].Source, want)
		}
		if got[i].DurationUS != got[i].Duration.Microseconds() {
			t.Fatalf("entry %d: DurationUS not derived", i)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("total %d want 10", l.Total())
	}
}

func TestSlowLogDisabled(t *testing.T) {
	l := NewSlowLog(0, 8)
	if l.Note(SlowQueryEntry{Duration: time.Hour}) {
		t.Fatal("disabled log admitted an entry")
	}
	if len(l.Entries()) != 0 || l.Total() != 0 {
		t.Fatal("disabled log not empty")
	}
}

func TestSlowLogPartialRing(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 0) // default capacity
	if l.Cap() != DefaultSlowLogSize {
		t.Fatalf("default cap %d want %d", l.Cap(), DefaultSlowLogSize)
	}
	l.Note(SlowQueryEntry{Source: 1, Duration: time.Second})
	l.Note(SlowQueryEntry{Source: 2, Duration: time.Second})
	got := l.Entries()
	if len(got) != 2 || got[0].Source != 2 || got[1].Source != 1 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
}

// TestSlowLogConcurrent proves Note/Entries are race-safe and the ring
// never exceeds its bound.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(time.Nanosecond, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Note(SlowQueryEntry{Source: int64(w), Duration: time.Millisecond})
				if n := len(l.Entries()); n > 16 {
					t.Errorf("ring grew to %d", n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != 8000 {
		t.Fatalf("total %d want 8000", l.Total())
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		0:            "0",
		42:           "42",
		-3:           "-3",
		1024:         "1024",
		0.5:          "0.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1e15:         "1e+15",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q want %q", v, got, want)
		}
	}
	// Round-trip: every rendered value parses back to itself.
	for _, v := range []float64{0.1, 123456.789, 1e-9, 3} {
		got := formatFloat(v)
		back, err := strconv.ParseFloat(got, 64)
		if err != nil || back != v {
			t.Errorf("formatFloat(%v) = %q does not round-trip (%v, %v)", v, got, back, err)
		}
	}
}
