package sql

import (
	"strings"
	"testing"

	"repro/internal/record"
)

// --- lexer -------------------------------------------------------------------

func TestTokenize(t *testing.T) {
	toks, err := Tokenize("SELECT nid, d2s FROM TVisited WHERE f = 0 AND d2s >= 1.5 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber, TokKeyword,
		TokIdent, TokSymbol, TokNumber, TokSymbol, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count %d want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: kind %v want %v (%v)", i, toks[i].Kind, k, toks[i])
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize("'it''s ok'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's ok" {
		t.Fatalf("escaped string: %v", toks[0])
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("<= >= <> != = < > + - * / ( ) , . ? ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "<>", "<>", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", "?", ";"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("operator %d: %q want %q", i, toks[i].Text, w)
		}
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("SELECT @x"); err == nil {
		t.Fatal("bad character must fail")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := Tokenize("select SeLeCt SELECT")
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword || tok.Text != "SELECT" {
			t.Fatalf("keyword folding: %v", tok)
		}
	}
}

// --- parser ------------------------------------------------------------------

func parseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("expected SelectStmt, got %T", st)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT a, b AS bee, t.c FROM t WHERE a = 1 ORDER BY a DESC LIMIT 5")
	if len(sel.Items) != 3 || sel.Items[1].Alias != "bee" {
		t.Fatalf("items: %+v", sel.Items)
	}
	cr := sel.Items[2].Expr.(*ColumnRef)
	if cr.Table != "t" || cr.Name != "c" {
		t.Fatalf("qualified ref: %+v", cr)
	}
	if len(sel.From) != 1 || sel.From[0].Table != "t" {
		t.Fatalf("from: %+v", sel.From)
	}
	if sel.OrderBy[0].Desc != true || sel.Limit == nil {
		t.Fatalf("orderby/limit: %+v", sel)
	}
}

func TestParseTop(t *testing.T) {
	sel := parseSelect(t, "SELECT TOP 1 nid FROM TVisited")
	lit, ok := sel.Top.(*Literal)
	if !ok || lit.Val.I != 1 {
		t.Fatalf("top: %+v", sel.Top)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 + 2 * 3")
	b := sel.Items[0].Expr.(*Binary)
	if b.Op != "+" {
		t.Fatalf("outer op: %s", b.Op)
	}
	if inner, ok := b.R.(*Binary); !ok || inner.Op != "*" {
		t.Fatalf("precedence broken: %+v", b.R)
	}
	// AND binds tighter than OR.
	sel = parseSelect(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	w := sel.Where.(*Binary)
	if w.Op != "OR" {
		t.Fatalf("where root: %s", w.Op)
	}
	if r, ok := w.R.(*Binary); !ok || r.Op != "AND" {
		t.Fatalf("AND/OR precedence: %+v", w.R)
	}
}

func TestParseParams(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a = ? AND b = ?")
	conj := sel.Where.(*Binary)
	p1 := conj.L.(*Binary).R.(*Param)
	p2 := conj.R.(*Binary).R.(*Param)
	if p1.Index != 0 || p2.Index != 1 {
		t.Fatalf("param numbering: %d %d", p1.Index, p2.Index)
	}
	n, err := ParamCount("SELECT ? , ?, ?")
	if err != nil || n != 3 {
		t.Fatalf("param count: %d %v", n, err)
	}
}

func TestParseCommaJoin(t *testing.T) {
	sel := parseSelect(t, "SELECT q.nid FROM TVisited q, TEdges out WHERE q.nid = out.fid")
	if len(sel.From) != 2 || sel.From[0].Alias != "q" || sel.From[1].Alias != "out" {
		t.Fatalf("from: %+v", sel.From)
	}
}

func TestParseJoinOn(t *testing.T) {
	sel := parseSelect(t, "SELECT a.x FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.y = c.z WHERE a.x > 0")
	if len(sel.From) != 3 {
		t.Fatalf("from: %+v", sel.From)
	}
	// Three conjuncts folded into WHERE.
	conj := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		conj++
	}
	walk(sel.Where)
	if conj != 3 {
		t.Fatalf("folded conjuncts: %d", conj)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := parseSelect(t, "SELECT nid FROM (SELECT nid, d2s FROM TVisited) tmp (nid, d2s) WHERE d2s = 1")
	if sel.From[0].Sub == nil || sel.From[0].Alias != "tmp" {
		t.Fatalf("derived: %+v", sel.From[0])
	}
	if len(sel.From[0].SubCols) != 2 || sel.From[0].SubCols[1] != "d2s" {
		t.Fatalf("subcols: %+v", sel.From[0].SubCols)
	}
	if _, err := Parse("SELECT x FROM (SELECT 1)"); err == nil {
		t.Fatal("derived table without alias must fail")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := parseSelect(t, "SELECT city, COUNT(*) FROM p GROUP BY city HAVING COUNT(*) > 1")
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("group/having: %+v", sel)
	}
	fc := sel.Items[1].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("count(*): %+v", fc)
	}
}

func TestParseWindow(t *testing.T) {
	sel := parseSelect(t, `SELECT out.tid, ROW_NUMBER() OVER (PARTITION BY out.tid, q.src ORDER BY out.cost + q.d2s DESC) FROM TEdges out`)
	fc := sel.Items[1].Expr.(*FuncCall)
	if fc.Window == nil || len(fc.Window.PartitionBy) != 2 || len(fc.Window.OrderBy) != 1 {
		t.Fatalf("window: %+v", fc.Window)
	}
	if !fc.Window.OrderBy[0].Desc {
		t.Fatal("window order desc")
	}
}

func TestParseSubqueryAndExists(t *testing.T) {
	sel := parseSelect(t, "SELECT nid FROM v WHERE d2s = (SELECT MIN(d2s) FROM v WHERE f = 0)")
	cmp := sel.Where.(*Binary)
	if _, ok := cmp.R.(*Subquery); !ok {
		t.Fatalf("scalar subquery: %T", cmp.R)
	}
	sel = parseSelect(t, "SELECT nid FROM v WHERE NOT EXISTS (SELECT nid FROM w WHERE w.nid = v.nid)")
	ex := sel.Where.(*Exists)
	if !ex.Not {
		t.Fatal("NOT EXISTS flag")
	}
	sel = parseSelect(t, "SELECT nid FROM v WHERE EXISTS (SELECT 1 FROM w)")
	ex = sel.Where.(*Exists)
	if ex.Not {
		t.Fatal("EXISTS flag")
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	if lit := ins.Rows[0][1].(*Literal); lit.Val.S != "x" {
		t.Fatalf("string literal: %+v", lit)
	}
	if lit := ins.Rows[1][1].(*Literal); !lit.Val.Null {
		t.Fatalf("null literal: %+v", lit)
	}
	st, err = Parse("INSERT INTO t (a) SELECT x FROM s WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*InsertStmt).Select == nil {
		t.Fatal("insert-select")
	}
}

func TestParseUpdate(t *testing.T) {
	st, err := Parse("UPDATE TVisited SET f = 1, d2s = d2s + 1 WHERE nid = ?")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil || up.From != nil {
		t.Fatalf("update: %+v", up)
	}
	st, err = Parse("UPDATE v SET d2s = s.cost FROM TExpand s WHERE v.nid = s.nid")
	if err != nil {
		t.Fatal(err)
	}
	up = st.(*UpdateStmt)
	if up.From == nil || up.From.Alias != "s" {
		t.Fatalf("update-from: %+v", up)
	}
}

func TestParseDeleteTruncateDrop(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a = 1")
	if err != nil || st.(*DeleteStmt).Where == nil {
		t.Fatalf("delete: %v %v", st, err)
	}
	st, err = Parse("TRUNCATE TABLE t")
	if err != nil || st.(*TruncateStmt).Name != "t" {
		t.Fatalf("truncate: %v %v", st, err)
	}
	st, err = Parse("DROP TABLE t")
	if err != nil || st.(*DropTableStmt).Name != "t" {
		t.Fatalf("drop: %v %v", st, err)
	}
}

func TestParseCreate(t *testing.T) {
	st, err := Parse("CREATE TABLE v (nid INT PRIMARY KEY, d2s INT, note VARCHAR(100), w FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if len(ct.Cols) != 4 || !ct.Cols[0].PrimaryKey || ct.Cols[2].Type != record.TText || ct.Cols[3].Type != record.TFloat {
		t.Fatalf("create table: %+v", ct)
	}
	st, err = Parse("CREATE UNIQUE CLUSTERED INDEX ix ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndexStmt)
	if !ci.Unique || !ci.Clustered || len(ci.Cols) != 2 {
		t.Fatalf("create index: %+v", ci)
	}
}

func TestParseMerge(t *testing.T) {
	st, err := Parse(`MERGE INTO TVisited AS target USING (
		SELECT nid, par, cost FROM (
			SELECT out.tid, q.nid, out.cost + q.d2s,
				ROW_NUMBER() OVER (PARTITION BY out.tid ORDER BY out.cost + q.d2s)
			FROM TVisited q, TEdges out
			WHERE q.nid = out.fid AND q.f = 2 AND out.cost + q.d2s + ? < ?
		) tmp (nid, par, cost, rn) WHERE rn = 1
	) AS source (nid, par, cost) ON (target.nid = source.nid)
	WHEN MATCHED AND target.d2s > source.cost THEN UPDATE SET d2s = source.cost, p2s = source.par, f = 0
	WHEN NOT MATCHED BY TARGET THEN INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.par, 0)`)
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*MergeStmt)
	if m.Target != "TVisited" || m.TargetAlias != "target" {
		t.Fatalf("merge target: %+v", m)
	}
	if m.Source.Sub == nil || len(m.Source.SubCols) != 3 {
		t.Fatalf("merge source: %+v", m.Source)
	}
	if len(m.Matched) != 1 || m.Matched[0].And == nil || len(m.Matched[0].Sets) != 3 {
		t.Fatalf("matched branch: %+v", m.Matched)
	}
	if m.NotMatched == nil || len(m.NotMatched.Cols) != 4 {
		t.Fatalf("not-matched branch: %+v", m.NotMatched)
	}
}

func TestParseMergeDelete(t *testing.T) {
	st, err := Parse("MERGE INTO a USING b ON (a.k = b.k) WHEN MATCHED THEN DELETE")
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*MergeStmt)
	if !m.Matched[0].Delete {
		t.Fatal("delete branch")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC x",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT INTO",
		"INSERT INTO t VALUES",
		"UPDATE t",
		"UPDATE t SET",
		"DELETE t",
		"CREATE TABLE t",
		"CREATE TABLE t (a BOGUS)",
		"MERGE INTO t USING s ON (t.k = s.k)",
		"SELECT a FROM t trailing garbage (",
		"SELECT (SELECT 1",
		"SELECT a FROM t GROUP BY",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTrailingSemicolonAndGarbage(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Fatalf("trailing semicolon: %v", err)
	}
	if _, err := Parse("SELECT 1; SELECT 2"); err == nil {
		t.Fatal("two statements must fail")
	}
}

func TestParseNotAndUnary(t *testing.T) {
	sel := parseSelect(t, "SELECT -a FROM t WHERE NOT f = 1")
	if u, ok := sel.Items[0].Expr.(*Unary); !ok || u.Op != "-" {
		t.Fatalf("unary minus: %+v", sel.Items[0].Expr)
	}
	if u, ok := sel.Where.(*Unary); !ok || u.Op != "NOT" {
		t.Fatalf("NOT: %+v", sel.Where)
	}
}

func TestParseIsNullBetweenIn(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a IS NOT NULL AND b BETWEEN 1 AND 5 AND c IN (1, ?, 3)")
	conj := sel.Where.(*Binary)
	inner := conj.L.(*Binary)
	if isn, ok := inner.L.(*IsNull); !ok || !isn.Not {
		t.Fatalf("IS NOT NULL: %+v", inner.L)
	}
	if in, ok := conj.R.(*InList); !ok || len(in.Items) != 3 {
		t.Fatalf("IN: %+v", conj.R)
	}
}

func TestPaperListing2Statements(t *testing.T) {
	// Every statement shape from the paper's Listing 2/3/4 must parse.
	statements := []string{
		"INSERT INTO TVisited (nid, d2s, p2s, f) VALUES (?, 0, ?, 0)",
		"SELECT TOP 1 nid FROM TVisited WHERE f = 0 AND d2s = (SELECT MIN(d2s) FROM TVisited WHERE f = 0)",
		"SELECT * FROM TVisited WHERE f = 1 AND nid = ?",
		"UPDATE TVisited SET f = 1 WHERE nid = ?",
		"SELECT p2s FROM TVisited WHERE nid = ?",
		"UPDATE TVisited SET f = 2 WHERE (d2s <= ? OR d2s = (SELECT MIN(d2s) FROM TVisited WHERE f = 0)) AND f = 0",
		"UPDATE TVisited SET f = 1 WHERE f = 2",
		"SELECT MIN(d2s) FROM TVisited WHERE f = 0",
		"SELECT MIN(d2s + d2t) FROM TVisited",
		"SELECT nid FROM TVisited WHERE d2s + d2t = ?",
	}
	for _, q := range statements {
		if _, err := Parse(q); err != nil {
			t.Errorf("paper statement failed to parse: %v\n  %s", err, q)
		}
	}
}

func TestParamIndexingAcrossClauses(t *testing.T) {
	st, err := Parse("SELECT TOP ? a FROM t WHERE b = ? AND c IN (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.Top.(*Param).Index != 0 {
		t.Fatal("TOP param should be first")
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE !")
	if err == nil || !strings.Contains(err.Error(), "at 22") {
		t.Fatalf("lexer error should carry a byte position: %v", err)
	}
	_, err = Parse("SELECT a FROM WHERE")
	if err == nil || !strings.Contains(err.Error(), "byte") {
		t.Fatalf("parser error should carry a byte position: %v", err)
	}
}
