package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/record"
)

// Parser turns SQL text into an AST.
type Parser struct {
	toks   []Token
	pos    int
	params int
	src    string
}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	st, _, err := ParseStmt(src)
	return st, err
}

// ParseStmt parses one statement and also reports the number of ?
// placeholders it contains, so callers can validate bound arguments.
func ParseStmt(src string) (Statement, int, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, 0, err
	}
	p := &Parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.acceptSymbol(";")
	if p.peek().Kind != TokEOF {
		return nil, 0, p.errf("trailing input starting at %q", p.peek().Text)
	}
	return st, p.params, nil
}

// NumParams reports how many ? placeholders the last Parse call saw.
// (Callers normally use rdb's prepared statement wrapper instead.)
func (p *Parser) NumParams() int { return p.params }

// ParamCount parses src and returns the number of placeholders.
func ParamCount(src string) (int, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range toks {
		if t.Kind == TokParam {
			n++
		}
	}
	return n, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return Token{Kind: TokEOF}
}
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near byte %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) isSymbol(s string) bool {
	t := p.peek()
	return t.Kind == TokSymbol && t.Text == s
}

func (p *Parser) acceptSymbol(s string) bool {
	if p.isSymbol(s) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, got %q", s, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	// KEY is only reserved inside PRIMARY KEY; allow it as an identifier.
	if t.Kind == TokIdent || (t.Kind == TokKeyword && t.Text == "KEY") {
		p.next()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, got %q", t.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("TRUNCATE"):
		return p.parseTruncate()
	case p.isKeyword("MERGE"):
		return p.parseMerge()
	}
	return nil, p.errf("expected statement, got %q", p.peek().Text)
}

// --- SELECT -----------------------------------------------------------------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.acceptKeyword("TOP") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		st.Top = e
	}
	if p.acceptKeyword("DISTINCT") {
		st.Distinct = true
	}
	for {
		if p.acceptSymbol("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.next().Text
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, tr)
		for {
			if p.acceptSymbol(",") {
				tr, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				st.From = append(st.From, tr)
				continue
			}
			// [INNER] JOIN tr ON cond  folds the condition into WHERE.
			inner := p.acceptKeyword("INNER")
			if p.acceptKeyword("JOIN") {
				tr, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				st.From = append(st.From, tr)
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if st.Where == nil {
					st.Where = cond
				} else {
					st.Where = &Binary{Op: "AND", L: st.Where, R: cond}
				}
				continue
			}
			if inner {
				return nil, p.errf("INNER must be followed by JOIN")
			}
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if st.Where == nil {
			st.Where = e
		} else {
			st.Where = &Binary{Op: "AND", L: st.Where, R: e}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if p.acceptKeyword("HAVING") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Having = e
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		st.OrderBy = items
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	return st, nil
}

func (p *Parser) parseOrderList() ([]OrderItem, error) {
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := OrderItem{Expr: e}
		if p.acceptKeyword("DESC") {
			it.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		items = append(items, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return items, nil
}

func (p *Parser) parseTableRef() (*TableRef, error) {
	tr := &TableRef{}
	if p.isSymbol("(") {
		// Derived table.
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		tr.Sub = sub
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Table = name
	}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Alias = a
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	if tr.Sub == nil && tr.Alias == "" && tr.Table == "" {
		return nil, p.errf("empty table reference")
	}
	if tr.Sub != nil && tr.Alias == "" {
		return nil, p.errf("derived table requires an alias")
	}
	// Optional derived-column list: alias (c1, c2, ...).
	if p.isSymbol("(") && tr.Alias != "" {
		p.next()
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tr.SubCols = append(tr.SubCols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// --- INSERT / UPDATE / DELETE ------------------------------------------------

func (p *Parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.isSymbol("(") {
		p.next()
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.acceptSymbol(",") {
				break
			}
		}
		return st, nil
	}
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errf("expected VALUES or SELECT in INSERT")
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Alias = a
	} else if p.peek().Kind == TokIdent && !p.isKeyword("SET") {
		st.Alias = p.next().Text
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	sets, err := p.parseSetList()
	if err != nil {
		return nil, err
	}
	st.Sets = sets
	if p.acceptKeyword("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = tr
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseSetList() ([]SetClause, error) {
	var sets []SetClause
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Col: c, Val: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	return sets, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- DDL ----------------------------------------------------------------------

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	clustered := p.acceptKeyword("CLUSTERED")
	if p.acceptKeyword("TABLE") {
		if unique || clustered {
			return nil, p.errf("UNIQUE/CLUSTERED not valid on CREATE TABLE")
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		st := &CreateTableStmt{Name: name}
		for {
			cn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var typ record.Type
			switch {
			case p.acceptKeyword("INT"), p.acceptKeyword("INTEGER"):
				typ = record.TInt
			case p.acceptKeyword("FLOAT"):
				typ = record.TFloat
			case p.acceptKeyword("TEXT"), p.acceptKeyword("VARCHAR"):
				typ = record.TText
				// Optional length: VARCHAR(100)
				if p.acceptSymbol("(") {
					if p.peek().Kind != TokNumber {
						return nil, p.errf("expected length in VARCHAR(n)")
					}
					p.next()
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
				}
			default:
				return nil, p.errf("expected column type, got %q", p.peek().Text)
			}
			cd := ColumnDef{Name: cn, Type: typ}
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				cd.PrimaryKey = true
			}
			st.Cols = append(st.Cols, cd)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		tbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		st := &CreateIndexStmt{Name: name, Table: tbl, Unique: unique, Clustered: clustered}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

func (p *Parser) parseTruncate() (Statement, error) {
	if err := p.expectKeyword("TRUNCATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Name: name}, nil
}

// --- MERGE ---------------------------------------------------------------------

func (p *Parser) parseMerge() (*MergeStmt, error) {
	if err := p.expectKeyword("MERGE"); err != nil {
		return nil, err
	}
	p.acceptKeyword("INTO")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &MergeStmt{Target: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.TargetAlias = a
	} else if p.peek().Kind == TokIdent {
		st.TargetAlias = p.next().Text
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	src, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.Source = src
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.On = on
	for p.isKeyword("WHEN") {
		p.next()
		if p.acceptKeyword("MATCHED") {
			m := &MergeMatched{}
			if p.acceptKeyword("AND") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				m.And = e
			}
			if err := p.expectKeyword("THEN"); err != nil {
				return nil, err
			}
			if p.acceptKeyword("DELETE") {
				m.Delete = true
			} else {
				if err := p.expectKeyword("UPDATE"); err != nil {
					return nil, err
				}
				if err := p.expectKeyword("SET"); err != nil {
					return nil, err
				}
				sets, err := p.parseSetList()
				if err != nil {
					return nil, err
				}
				m.Sets = sets
			}
			st.Matched = append(st.Matched, m)
			continue
		}
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("MATCHED"); err != nil {
			return nil, err
		}
		// Optional "BY TARGET".
		if p.acceptKeyword("BY") {
			word, err := p.expectIdent()
			if err != nil || !strings.EqualFold(word, "target") {
				return nil, p.errf("expected TARGET after BY")
			}
		}
		ins := &MergeInsert{}
		if p.acceptKeyword("AND") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ins.And = e
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INSERT"); err != nil {
			return nil, err
		}
		if p.isSymbol("(") {
			p.next()
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ins.Cols = append(ins.Cols, c)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("VALUES"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ins.Vals = append(ins.Vals, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if st.NotMatched != nil {
			return nil, p.errf("multiple WHEN NOT MATCHED branches")
		}
		st.NotMatched = ins
	}
	if len(st.Matched) == 0 && st.NotMatched == nil {
		return nil, p.errf("MERGE requires at least one WHEN branch")
	}
	return st, nil
}

// --- expressions -----------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") && !(p.peek2().Kind == TokKeyword && p.peek2().Text == "EXISTS") {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	if p.isKeyword("NOT") && p.peek2().Kind == TokKeyword && p.peek2().Text == "EXISTS" {
		p.next()
		return p.parseExists(true)
	}
	if p.isKeyword("EXISTS") {
		return p.parseExists(false)
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.Text, L: l, R: r}, nil
		}
	}
	if p.isKeyword("IS") {
		p.next()
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Not: not, E: l}, nil
	}
	notIn := false
	if p.isKeyword("NOT") && p.peek2().Kind == TokKeyword && p.peek2().Text == "IN" {
		p.next()
		notIn = true
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InList{Not: notIn, E: l}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.Items = append(in.Items, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "AND",
			L: &Binary{Op: ">=", L: l, R: lo},
			R: &Binary{Op: "<=", L: l, R: hi}}, nil
	}
	return l, nil
}

func (p *Parser) parseExists(not bool) (Expr, error) {
	if err := p.expectKeyword("EXISTS"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &Exists{Not: not, Select: sel}, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isSymbol("-") {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad float %q", t.Text)
			}
			return &Literal{Val: record.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Literal{Val: record.Int(i)}, nil
	case TokString:
		p.next()
		return &Literal{Val: record.Text(t.Text)}, nil
	case TokParam:
		p.next()
		e := &Param{Index: p.params}
		p.params++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: record.Value{Null: true}}, nil
		case "EXISTS":
			return p.parseExists(false)
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			if p.isKeyword("SELECT") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &Subquery{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			// COUNT(*) is handled in parseFuncArgs; a bare * is invalid here.
			return nil, p.errf("unexpected *")
		}
		return nil, p.errf("unexpected symbol %q", t.Text)
	case TokIdent:
		name := p.next().Text
		if p.isSymbol("(") {
			return p.parseFuncCall(name)
		}
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.acceptSymbol("*") {
		fc.Star = true
	} else if !p.isSymbol(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("OVER") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		w := &WindowSpec{}
		if p.acceptKeyword("PARTITION") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				w.PartitionBy = append(w.PartitionBy, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if p.acceptKeyword("ORDER") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			items, err := p.parseOrderList()
			if err != nil {
				return nil, err
			}
			w.OrderBy = items
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		fc.Window = w
	}
	return fc, nil
}
