package sql

import (
	"repro/internal/record"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface{ expr() }

// --- statements -------------------------------------------------------------

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       record.Type
	PrimaryKey bool
}

// CreateTableStmt creates a table. A PRIMARY KEY column becomes a unique
// clustered index on that column.
type CreateTableStmt struct {
	Name string
	Cols []ColumnDef
}

// CreateIndexStmt creates an index. CLUSTERED is only valid on an empty
// table and re-organizes its storage.
type CreateIndexStmt struct {
	Name      string
	Table     string
	Cols      []string
	Unique    bool
	Clustered bool
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

// TruncateStmt discards all rows of a table.
type TruncateStmt struct{ Name string }

// InsertStmt inserts literal rows or the result of a query.
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr    // VALUES form
	Select *SelectStmt // INSERT ... SELECT form
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col string
	Val Expr
}

// UpdateStmt updates rows, optionally joining a source (PostgreSQL-style
// UPDATE ... FROM, which the paper's TSQL fallback needs for the merge
// emulation).
type UpdateStmt struct {
	Table string
	Alias string
	Sets  []SetClause
	From  *TableRef // optional
	Where Expr
}

// DeleteStmt deletes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectItem is one projection; Star marks "*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a named table or a derived table, with optional alias and
// derived-column list (e.g. `(SELECT ...) tmp (nid, p2s, cost)`).
type TableRef struct {
	Table   string
	Alias   string
	Sub     *SelectStmt
	SubCols []string
}

// Name returns the reference's binding name (alias or table name).
func (t *TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// SelectStmt is a query block.
type SelectStmt struct {
	Top      Expr // TOP n (SQL Server spelling used in the paper's listings)
	Distinct bool
	Items    []SelectItem
	From     []*TableRef // comma-join list (JOIN ... ON folds into Where)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // LIMIT n (PostgreSQL spelling)
}

// MergeMatched is one WHEN MATCHED [AND cond] THEN UPDATE/DELETE branch.
type MergeMatched struct {
	And    Expr
	Sets   []SetClause
	Delete bool
}

// MergeInsert is the WHEN NOT MATCHED THEN INSERT branch.
type MergeInsert struct {
	And  Expr
	Cols []string
	Vals []Expr
}

// MergeStmt is the SQL:2008 MERGE the paper leans on for the M-operator.
type MergeStmt struct {
	Target      string
	TargetAlias string
	Source      *TableRef
	On          Expr
	Matched     []*MergeMatched
	NotMatched  *MergeInsert
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*TruncateStmt) stmt()    {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*MergeStmt) stmt()       {}

// --- expressions ------------------------------------------------------------

// ColumnRef references a column, optionally qualified.
type ColumnRef struct {
	Table string // "" if unqualified
	Name  string
}

// Literal is a constant.
type Literal struct{ Val record.Value }

// Param is a ? placeholder; Index is its zero-based position.
type Param struct{ Index int }

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is -expr or NOT expr.
type Unary struct {
	Op string
	E  Expr
}

// WindowSpec is the OVER(...) clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// FuncCall is an aggregate (MIN/MAX/SUM/COUNT/AVG), ROW_NUMBER, or other
// function; Star marks COUNT(*); Window is non-nil for window functions.
type FuncCall struct {
	Name   string // upper-cased
	Args   []Expr
	Star   bool
	Window *WindowSpec
}

// Subquery is a scalar subquery (must yield <= 1 row, 1 column).
type Subquery struct{ Select *SelectStmt }

// Exists is [NOT] EXISTS (subquery).
type Exists struct {
	Not    bool
	Select *SelectStmt
}

// InList is expr [NOT] IN (e1, e2, ...).
type InList struct {
	Not   bool
	E     Expr
	Items []Expr
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	Not bool
	E   Expr
}

func (*ColumnRef) expr() {}
func (*Literal) expr()   {}
func (*Param) expr()     {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*FuncCall) expr()  {}
func (*Subquery) expr()  {}
func (*Exists) expr()    {}
func (*InList) expr()    {}
func (*IsNull) expr()    {}
