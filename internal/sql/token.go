// Package sql implements the lexer, AST and recursive-descent parser for
// the SQL dialect the engine executes. The dialect covers everything the
// paper's listings use: SELECT with comma joins, derived tables, GROUP BY,
// ORDER BY, TOP, scalar and EXISTS subqueries, the ROW_NUMBER window
// function (SQL:2003), and the MERGE statement (SQL:2008), plus the DML/DDL
// around them.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokParam  // ?
	TokSymbol // operators and punctuation
)

// Token is one lexical unit. Text preserves the original spelling except
// for keywords, which are upper-cased.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "TOP": true, "DISTINCT": true, "FROM": true,
	"WHERE": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"UNIQUE": true, "CLUSTERED": true, "INDEX": true, "TABLE": true,
	"DROP": true, "ON": true, "MERGE": true, "USING": true,
	"WHEN": true, "MATCHED": true, "THEN": true, "EXISTS": true,
	"NULL": true, "IS": true, "OVER": true, "PARTITION": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "TEXT": true,
	"VARCHAR": true, "PRIMARY": true, "KEY": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "IN": true, "TRUNCATE": true,
	"HAVING": true, "BETWEEN": true,
}

// Lexer tokenizes a SQL string.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string at %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil
	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';':
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// Tokenize lexes the whole input (test helper).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
