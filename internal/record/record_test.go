package record

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Text("hi"), "hi"},
		{NullOf(TInt), "NULL"},
		{Bool(true), "1"},
		{Bool(false), "0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2.0), Int(2), 0},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{NullOf(TInt), Int(0), -1}, // NULL sorts first
		{Int(0), NullOf(TInt), 1},
		{NullOf(TInt), NullOf(TText), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(NullOf(TInt), NullOf(TInt)) {
		t.Error("NULL = NULL must be false under predicate semantics")
	}
	if !Equal(Int(3), Int(3)) {
		t.Error("3 = 3")
	}
	if Equal(Int(3), Int(4)) {
		t.Error("3 != 4")
	}
}

func TestTruthy(t *testing.T) {
	if !Int(1).Truthy() || Int(0).Truthy() {
		t.Error("int truthiness")
	}
	if NullOf(TInt).Truthy() {
		t.Error("NULL is not truthy")
	}
	if !Text("x").Truthy() || Text("").Truthy() {
		t.Error("text truthiness")
	}
	if !Float(0.1).Truthy() || Float(0).Truthy() {
		t.Error("float truthiness")
	}
}

func TestSchema(t *testing.T) {
	s := MustSchema(
		Column{Name: "nid", Type: TInt},
		Column{Name: "d2s", Type: TInt},
		Column{Name: "note", Type: TText},
	)
	if s.Ordinal("D2S") != 1 {
		t.Error("case-insensitive ordinal")
	}
	if s.Ordinal("missing") != -1 {
		t.Error("missing ordinal")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TInt}, Column{Name: "A", Type: TInt}); err == nil {
		t.Error("duplicate column names must fail")
	}
	if err := s.Validate(Row{Int(1), Int(2), Text("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{Int(1), Int(2)}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := s.Validate(Row{Int(1), Text("no"), Text("x")}); err == nil {
		t.Error("wrong type must fail")
	}
	if err := s.Validate(Row{Int(1), NullOf(TInt), Text("x")}); err != nil {
		t.Errorf("NULL should pass: %v", err)
	}
}

func TestSchemaCoerce(t *testing.T) {
	s := MustSchema(Column{Name: "f", Type: TFloat})
	r := Row{Int(3)}
	if err := s.Validate(r); err != nil {
		t.Fatalf("INT into FLOAT should validate: %v", err)
	}
	s.Coerce(r)
	if r[0].Typ != TFloat || r[0].F != 3.0 {
		t.Fatalf("coerce failed: %v", r[0])
	}
}

func TestTupleRoundtrip(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: TInt},
		Column{Name: "b", Type: TFloat},
		Column{Name: "c", Type: TText},
		Column{Name: "d", Type: TInt},
	)
	rows := []Row{
		{Int(1), Float(2.5), Text("hello"), Int(-9)},
		{Int(0), Float(0), Text(""), Int(1 << 60)},
		{NullOf(TInt), NullOf(TFloat), NullOf(TText), Int(5)},
		{Int(-1), Float(math.Inf(1)), Text("utf8 ✓ ok"), NullOf(TInt)},
	}
	for _, r := range rows {
		buf, err := EncodeTuple(nil, s, r)
		if err != nil {
			t.Fatalf("encode %v: %v", r, err)
		}
		got, n, err := DecodeTuple(buf, s)
		if err != nil || n != len(buf) {
			t.Fatalf("decode %v: n=%d err=%v", r, n, err)
		}
		for i := range r {
			if r[i].Null != got[i].Null || Compare(r[i], got[i]) != 0 {
				t.Fatalf("roundtrip mismatch at %d: %v vs %v", i, r[i], got[i])
			}
		}
	}
}

func TestTupleErrors(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: TInt})
	if _, err := EncodeTuple(nil, s, Row{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := EncodeTuple(nil, s, Row{Text("x")}); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, _, err := DecodeTuple([]byte{}, s); err == nil {
		t.Error("truncated bitmap must fail")
	}
	if _, _, err := DecodeTuple([]byte{0x00, 1, 2}, s); err == nil {
		t.Error("truncated int must fail")
	}
}

func TestQuickTupleRoundtrip(t *testing.T) {
	s := MustSchema(
		Column{Name: "a", Type: TInt},
		Column{Name: "b", Type: TText},
	)
	fn := func(a int64, bs []byte, aNull bool) bool {
		r := Row{Int(a), Text(string(bs))}
		if aNull {
			r[0] = NullOf(TInt)
		}
		buf, err := EncodeTuple(nil, s, r)
		if err != nil {
			return false
		}
		got, _, err := DecodeTuple(buf, s)
		if err != nil {
			return false
		}
		if got[0].Null != aNull {
			return false
		}
		if !aNull && got[0].I != a {
			return false
		}
		return got[1].S == string(bs)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyEncodingOrder is the load-bearing property: bytes.Compare over
// EncodeKey must agree with semantic value ordering, or every B+tree scan
// in the engine breaks.
func TestKeyEncodingOrder(t *testing.T) {
	fn := func(a, b int64) bool {
		ka := EncodeKey(nil, Int(a))
		kb := EncodeKey(nil, Int(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Int(a), Int(b)))
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
	ff := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, Float(a))
		kb := EncodeKey(nil, Float(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Float(a), Float(b)))
	}
	if err := quick.Check(ff, nil); err != nil {
		t.Fatal(err)
	}
	fs := func(a, b string) bool {
		ka := EncodeKey(nil, Text(a))
		kb := EncodeKey(nil, Text(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Text(a), Text(b)))
	}
	if err := quick.Check(fs, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCompositeKeyOrder: concatenated components order lexicographically
// by component.
func TestCompositeKeyOrder(t *testing.T) {
	fn := func(a1, a2, b1, b2 int64) bool {
		ka := EncodeKey(nil, Int(a1), Int(a2))
		kb := EncodeKey(nil, Int(b1), Int(b2))
		want := 0
		if a1 != b1 {
			want = sign(Compare(Int(a1), Int(b1)))
		} else {
			want = sign(Compare(Int(a2), Int(b2)))
		}
		return sign(bytes.Compare(ka, kb)) == want
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDecodeRoundtrip(t *testing.T) {
	vals := []Value{Int(-5), Float(3.25), Text("a\x00b"), NullOf(TInt), Int(1 << 62)}
	key := EncodeKey(nil, vals...)
	got, n, err := DecodeKey(key, len(vals))
	if err != nil || n != len(key) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range vals {
		if vals[i].Null != got[i].Null {
			t.Fatalf("null mismatch at %d", i)
		}
		if !vals[i].Null && Compare(vals[i], got[i]) != 0 {
			t.Fatalf("mismatch at %d: %v vs %v", i, vals[i], got[i])
		}
	}
}

func TestKeySuccessorIsPrefixUpperBound(t *testing.T) {
	fn := func(prefix, suffix int64) bool {
		p := EncodeKey(nil, Int(prefix))
		full := EncodeKey(nil, Int(prefix), Int(suffix))
		succ := KeySuccessor(p)
		// Every key extending p sorts before succ(p).
		return bytes.Compare(full, succ) < 0 && bytes.Compare(p, succ) < 0
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTextKeyZeroBytes(t *testing.T) {
	// Strings containing 0x00 must keep correct relative order.
	a := EncodeKey(nil, Text("a\x00"))
	b := EncodeKey(nil, Text("a\x00\x00"))
	c := EncodeKey(nil, Text("a\x01"))
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("zero-byte escaping breaks order")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Text("x")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Fatal("clone aliases the original")
	}
	if r.String() != "(1, x)" {
		t.Fatalf("row string: %q", r.String())
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
