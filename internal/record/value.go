// Package record defines the engine's value model: typed SQL values,
// table schemas, the on-page tuple encoding, and an order-preserving key
// encoding used by the B+tree so composite keys compare correctly as raw
// bytes.
package record

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the column types the engine supports. The paper's schema
// only needs integers, but FLOAT and TEXT round the engine out for the
// examples and tests.
type Type uint8

// Column types.
const (
	TInt Type = iota + 1
	TFloat
	TText
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is one SQL value. The zero Value is NULL of unknown type.
type Value struct {
	Typ  Type
	Null bool
	I    int64
	F    float64
	S    string
}

// Int returns an INT value.
func Int(v int64) Value { return Value{Typ: TInt, I: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{Typ: TFloat, F: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{Typ: TText, S: v} }

// Null returns a typed NULL.
func NullOf(t Type) Value { return Value{Typ: t, Null: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// AsFloat widens INT to FLOAT for mixed arithmetic/comparison.
func (v Value) AsFloat() float64 {
	if v.Typ == TInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the value for display and debugging.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TText:
		return v.S
	default:
		return "?"
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before any non-NULL
// (needed for deterministic ORDER BY); comparing NULLs yields 0. INT and
// FLOAT compare numerically across types; TEXT compares lexicographically.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.Typ == TText || b.Typ == TText {
		return strings.Compare(a.S, b.S)
	}
	if a.Typ == TInt && b.Typ == TInt {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// Equal reports SQL equality treating NULL = NULL as false (use Compare for
// ordering semantics, Equal for predicate semantics).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// Truthy interprets a value as a SQL boolean: non-zero numerics are true;
// NULL is false.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	switch v.Typ {
	case TInt:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TText:
		return v.S != ""
	}
	return false
}

// Row is one tuple flowing through the executor.
type Row []Value

// Clone deep-copies a row (strings are immutable, so a shallow value copy
// suffices per element).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Bool converts a Go bool to the engine's boolean representation (INT 0/1).
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// floatBits maps a float64 to an orderable uint64 (IEEE-754 total order for
// non-NaN values): flip the sign bit for positives, all bits for negatives.
func floatBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}
