package record

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema; column names are case-insensitive and must be
// unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("record: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error (for literals in tests).
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Ordinal returns the index of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Validate checks a row's arity and types against the schema. NULLs pass
// regardless of declared type.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("record: row has %d values, schema %d", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.Null {
			continue
		}
		if v.Typ != s.Columns[i].Type {
			// Allow INT literals into FLOAT columns (implicit widening).
			if s.Columns[i].Type == TFloat && v.Typ == TInt {
				continue
			}
			return fmt.Errorf("record: column %s expects %s, got %s",
				s.Columns[i].Name, s.Columns[i].Type, v.Typ)
		}
	}
	return nil
}

// Coerce widens INT values destined for FLOAT columns in place.
func (s *Schema) Coerce(r Row) {
	for i := range r {
		if i < len(s.Columns) && s.Columns[i].Type == TFloat && r[i].Typ == TInt && !r[i].Null {
			r[i] = Float(float64(r[i].I))
		}
	}
}

func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
