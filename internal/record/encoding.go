package record

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tuple encoding
//
// A tuple is serialized as:
//
//	nullBitmap  ceil(n/8) bytes, bit i set => column i is NULL
//	per column  INT:   8 bytes little-endian two's complement
//	            FLOAT: 8 bytes little-endian IEEE-754
//	            TEXT:  uvarint length + raw bytes
//
// NULL columns are skipped in the body. The encoding is self-delimiting
// given the schema, which is how heap pages and B+tree leaves store rows.

// EncodeTuple appends the serialized row to dst and returns the result.
func EncodeTuple(dst []byte, s *Schema, r Row) ([]byte, error) {
	if len(r) != s.Len() {
		return nil, fmt.Errorf("record: encode row arity %d vs schema %d", len(r), s.Len())
	}
	nb := (s.Len() + 7) / 8
	bitmapAt := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	var tmp [8]byte
	for i, v := range r {
		if v.Null {
			dst[bitmapAt+i/8] |= 1 << (i % 8)
			continue
		}
		switch s.Columns[i].Type {
		case TInt:
			if v.Typ != TInt {
				return nil, fmt.Errorf("record: column %s expects INT, got %s", s.Columns[i].Name, v.Typ)
			}
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
			dst = append(dst, tmp[:]...)
		case TFloat:
			f := v.F
			if v.Typ == TInt {
				f = float64(v.I)
			} else if v.Typ != TFloat {
				return nil, fmt.Errorf("record: column %s expects FLOAT, got %s", s.Columns[i].Name, v.Typ)
			}
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
			dst = append(dst, tmp[:]...)
		case TText:
			if v.Typ != TText {
				return nil, fmt.Errorf("record: column %s expects TEXT, got %s", s.Columns[i].Name, v.Typ)
			}
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			return nil, fmt.Errorf("record: unknown type %v", s.Columns[i].Type)
		}
	}
	return dst, nil
}

// DecodeTuple parses a row serialized by EncodeTuple. It returns the row and
// the number of bytes consumed.
func DecodeTuple(src []byte, s *Schema) (Row, int, error) {
	nb := (s.Len() + 7) / 8
	if len(src) < nb {
		return nil, 0, fmt.Errorf("record: truncated tuple (bitmap)")
	}
	bitmap := src[:nb]
	off := nb
	r := make(Row, s.Len())
	for i := 0; i < s.Len(); i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			r[i] = NullOf(s.Columns[i].Type)
			continue
		}
		switch s.Columns[i].Type {
		case TInt:
			if len(src) < off+8 {
				return nil, 0, fmt.Errorf("record: truncated INT column %d", i)
			}
			r[i] = Int(int64(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case TFloat:
			if len(src) < off+8 {
				return nil, 0, fmt.Errorf("record: truncated FLOAT column %d", i)
			}
			r[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case TText:
			n, w := binary.Uvarint(src[off:])
			if w <= 0 || len(src) < off+w+int(n) {
				return nil, 0, fmt.Errorf("record: truncated TEXT column %d", i)
			}
			r[i] = Text(string(src[off+w : off+w+int(n)]))
			off += w + int(n)
		default:
			return nil, 0, fmt.Errorf("record: unknown type %v", s.Columns[i].Type)
		}
	}
	return r, off, nil
}

// Key encoding
//
// B+tree keys are byte slices compared with bytes.Compare, so every value is
// encoded order-preservingly:
//
//	NULL:  tag 0x00
//	INT:   tag 0x01 + big-endian uint64 with the sign bit flipped
//	FLOAT: tag 0x02 + orderable IEEE-754 bits (see floatBits)
//	TEXT:  tag 0x03 + escaped bytes (0x00 -> 0x00 0xFF) + terminator 0x00 0x00
//
// Components of a composite key simply concatenate; because every component
// is self-delimiting and prefix-free per type tag, the concatenation orders
// lexicographically by component.

// EncodeKey appends the order-preserving encoding of vals to dst.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		if v.Null {
			dst = append(dst, 0x00)
			continue
		}
		switch v.Typ {
		case TInt:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], uint64(v.I)^(1<<63))
			dst = append(dst, 0x01)
			dst = append(dst, tmp[:]...)
		case TFloat:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], floatBits(v.F))
			dst = append(dst, 0x02)
			dst = append(dst, tmp[:]...)
		case TText:
			dst = append(dst, 0x03)
			for i := 0; i < len(v.S); i++ {
				b := v.S[i]
				dst = append(dst, b)
				if b == 0x00 {
					dst = append(dst, 0xFF)
				}
			}
			dst = append(dst, 0x00, 0x00)
		}
	}
	return dst
}

// DecodeKey parses count components off the front of src, returning the
// values and bytes consumed. Used by clustered tables to recover key columns.
func DecodeKey(src []byte, count int) ([]Value, int, error) {
	out := make([]Value, 0, count)
	off := 0
	for k := 0; k < count; k++ {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("record: truncated key component %d", k)
		}
		tag := src[off]
		off++
		switch tag {
		case 0x00:
			out = append(out, Value{Null: true})
		case 0x01:
			if len(src) < off+8 {
				return nil, 0, fmt.Errorf("record: truncated INT key")
			}
			u := binary.BigEndian.Uint64(src[off:]) ^ (1 << 63)
			out = append(out, Int(int64(u)))
			off += 8
		case 0x02:
			if len(src) < off+8 {
				return nil, 0, fmt.Errorf("record: truncated FLOAT key")
			}
			u := binary.BigEndian.Uint64(src[off:])
			if u&(1<<63) != 0 {
				u = u &^ (1 << 63)
			} else {
				u = ^u
			}
			out = append(out, Float(math.Float64frombits(u)))
			off += 8
		case 0x03:
			var sb []byte
			for {
				if off >= len(src) {
					return nil, 0, fmt.Errorf("record: unterminated TEXT key")
				}
				b := src[off]
				off++
				if b == 0x00 {
					if off >= len(src) {
						return nil, 0, fmt.Errorf("record: unterminated TEXT key escape")
					}
					nxt := src[off]
					off++
					if nxt == 0x00 {
						// terminator
						goto done
					}
					if nxt == 0xFF {
						sb = append(sb, 0x00)
						continue
					}
					return nil, 0, fmt.Errorf("record: bad TEXT key escape %x", nxt)
				}
				sb = append(sb, b)
			}
		done:
			out = append(out, Text(string(sb)))
		default:
			return nil, 0, fmt.Errorf("record: bad key tag %x", tag)
		}
	}
	return out, off, nil
}

// KeySuccessor returns the smallest key strictly greater than every key with
// prefix k: append 0xFF sentinel-free by appending a zero byte is wrong for
// arbitrary bytes; instead we return k + 0xFF...? The tag scheme guarantees
// no component begins with 0xFF, so appending a single 0xFF yields a correct
// exclusive upper bound for prefix scans.
func KeySuccessor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	out[len(k)] = 0xFF
	return out
}
