package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// FormatVersion guards against reading manifests written by an
// incompatible future layout.
const FormatVersion = 1

// chunkRows bounds one chunk's row count: large tables split into multiple
// objects so a later object-store backend uploads bounded parts.
const chunkRows = 1 << 16

// ErrNoManifest is returned by Latest when the store holds no complete
// snapshot.
var ErrNoManifest = errors.New("snapshot: no complete snapshot in store")

// ChunkMeta describes one stored chunk of a table.
type ChunkMeta struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	Bytes int    `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// TableMeta describes one dumped table: fixed integer columns, rows split
// across chunks in order.
type TableMeta struct {
	Name   string      `json:"name"`
	Cols   int         `json:"cols"`
	Rows   int         `json:"rows"`
	Chunks []ChunkMeta `json:"chunks"`
}

// OracleMeta carries the distance-oracle parameters a hydrating engine
// installs alongside the TLandmark rows, skipping the build.
type OracleMeta struct {
	K         int     `json:"k"`
	Strategy  string  `json:"strategy"`
	Landmarks []int64 `json:"landmarks"`
	Rows      int     `json:"rows"`
}

// LabelsMeta carries the hub-label counts installed alongside the
// TLabelOut/TLabelIn rows.
type LabelsMeta struct {
	Hubs    int `json:"hubs"`
	RowsOut int `json:"rows_out"`
	RowsIn  int `json:"rows_in"`
}

// Manifest is the commit record of one snapshot version. It is written
// last: a version directory without one does not exist as far as readers
// are concerned.
type Manifest struct {
	Format        int    `json:"format"`
	Version       uint64 `json:"version"`
	CreatedUnixMS int64  `json:"created_unix_ms"`

	Nodes int64 `json:"nodes"`
	Edges int64 `json:"edges"`
	WMin  int64 `json:"wmin"`

	// Strategy records the physical-design strategy the snapshot was taken
	// under, for operator info; a hydrating engine applies its own.
	Strategy string `json:"strategy"`

	SegBuilt bool  `json:"seg_built"`
	SegLthd  int64 `json:"seg_lthd,omitempty"`

	Oracle *OracleMeta `json:"oracle,omitempty"`
	Labels *LabelsMeta `json:"labels,omitempty"`

	Tables []TableMeta `json:"tables"`
}

// Table returns the named table's metadata, or nil.
func (m *Manifest) Table(name string) *TableMeta {
	for i := range m.Tables {
		if m.Tables[i].Name == name {
			return &m.Tables[i]
		}
	}
	return nil
}

// versionDir names a snapshot version's directory. Zero-padding keeps
// lexicographic order equal to numeric order, which List relies on.
func versionDir(version uint64) string {
	return fmt.Sprintf("v%016d", version)
}

// parseVersionDir inverts versionDir for a path's first segment.
func parseVersionDir(seg string) (uint64, bool) {
	if len(seg) != 17 || seg[0] != 'v' {
		return 0, false
	}
	var v uint64
	for _, c := range seg[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}

// Writer accumulates one snapshot version: chunks stream out through
// AddTable, Commit writes the manifest to make the version visible.
type Writer struct {
	store    ChunkStore
	manifest Manifest
	dir      string
	bytes    int64
	done     bool
}

// NewWriter starts a snapshot at the given graph version. CreatedUnixMS is
// stamped by the caller (the engine) so this package stays clock-free.
func NewWriter(store ChunkStore, version uint64, createdUnixMS int64) *Writer {
	return &Writer{
		store: store,
		manifest: Manifest{
			Format:        FormatVersion,
			Version:       version,
			CreatedUnixMS: createdUnixMS,
		},
		dir: versionDir(version),
	}
}

// Manifest exposes the in-progress manifest for the caller to fill in
// scalar metadata (nodes, edges, index validity) before Commit.
func (w *Writer) Manifest() *Manifest { return &w.manifest }

// Bytes returns the chunk bytes written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// AddTable dumps one table's rows as CRC-stamped chunks and records it in
// the manifest.
func (w *Writer) AddTable(name string, cols int, rows [][]int64) error {
	if w.done {
		return errors.New("snapshot: writer already committed")
	}
	tm := TableMeta{Name: name, Cols: cols, Rows: len(rows)}
	for start := 0; start < len(rows) || (len(rows) == 0 && start == 0); start += chunkRows {
		end := min(start+chunkRows, len(rows))
		part := rows[start:end]
		data := encodeChunk(cols, part)
		cm := ChunkMeta{
			Name:  fmt.Sprintf("%s/%s.%04d.chunk", w.dir, strings.ToLower(name), len(tm.Chunks)),
			Rows:  len(part),
			Bytes: len(data),
			CRC:   crc32.ChecksumIEEE(data),
		}
		if err := w.store.Put(cm.Name, data); err != nil {
			return err
		}
		w.bytes += int64(len(data))
		tm.Chunks = append(tm.Chunks, cm)
		if len(rows) == 0 {
			break
		}
	}
	w.manifest.Tables = append(w.manifest.Tables, tm)
	return nil
}

// Commit writes the manifest — the snapshot's commit point. Until it
// returns nil the version is invisible to Latest and fair game for GC
// once superseded.
func (w *Writer) Commit() error {
	if w.done {
		return errors.New("snapshot: writer already committed")
	}
	data, err := json.MarshalIndent(&w.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: marshal manifest: %w", err)
	}
	if err := w.store.Put(w.dir+"/manifest.json", data); err != nil {
		return err
	}
	w.done = true
	return nil
}

// Latest returns the highest-version complete snapshot's manifest, or
// ErrNoManifest.
func Latest(store ChunkStore) (*Manifest, error) {
	names, err := store.List("v")
	if err != nil {
		return nil, err
	}
	best := ""
	var bestV uint64
	for _, n := range names {
		dir, rest, ok := strings.Cut(n, "/")
		if !ok || rest != "manifest.json" {
			continue
		}
		v, ok := parseVersionDir(dir)
		if !ok {
			continue
		}
		if best == "" || v > bestV {
			best, bestV = n, v
		}
	}
	if best == "" {
		return nil, ErrNoManifest
	}
	data, err := store.Get(best)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("snapshot: parse %s: %w", best, err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("snapshot: %s has format %d, want %d", best, m.Format, FormatVersion)
	}
	return &m, nil
}

// ReadTable loads one table's rows from a committed snapshot, verifying
// each chunk's CRC and shape against the manifest.
func ReadTable(store ChunkStore, tm *TableMeta) ([][]int64, error) {
	rows := make([][]int64, 0, tm.Rows)
	for _, cm := range tm.Chunks {
		data, err := store.Get(cm.Name)
		if err != nil {
			return nil, err
		}
		if len(data) != cm.Bytes || crc32.ChecksumIEEE(data) != cm.CRC {
			return nil, fmt.Errorf("snapshot: chunk %s corrupt (bytes %d/%d)", cm.Name, len(data), cm.Bytes)
		}
		cols, part, err := decodeChunk(data)
		if err != nil {
			return nil, fmt.Errorf("snapshot: chunk %s: %w", cm.Name, err)
		}
		if cols != tm.Cols || len(part) != cm.Rows {
			return nil, fmt.Errorf("snapshot: chunk %s shape %dx%d, manifest says %dx%d",
				cm.Name, len(part), cols, cm.Rows, tm.Cols)
		}
		rows = append(rows, part...)
	}
	if len(rows) != tm.Rows {
		return nil, fmt.Errorf("snapshot: table %s has %d rows, manifest says %d", tm.Name, len(rows), tm.Rows)
	}
	return rows, nil
}

// encodeChunk renders rows as [cols u32][rows u32] then row-major i64
// little-endian values.
func encodeChunk(cols int, rows [][]int64) []byte {
	data := make([]byte, 0, 8+8*cols*len(rows))
	data = binary.LittleEndian.AppendUint32(data, uint32(cols))
	data = binary.LittleEndian.AppendUint32(data, uint32(len(rows)))
	for _, r := range rows {
		for _, v := range r {
			data = binary.LittleEndian.AppendUint64(data, uint64(v))
		}
	}
	return data
}

// decodeChunk inverts encodeChunk.
func decodeChunk(data []byte) (int, [][]int64, error) {
	if len(data) < 8 {
		return 0, nil, errors.New("short header")
	}
	cols := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if cols <= 0 || n < 0 || len(data) != 8+8*cols*n {
		return 0, nil, fmt.Errorf("bad shape %dx%d for %d bytes", n, cols, len(data))
	}
	rows := make([][]int64, n)
	flat := make([]int64, cols*n)
	off := 8
	for i := range flat {
		flat[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	for i := range rows {
		rows[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return cols, rows, nil
}

// Versions lists every version directory in the store, complete or not,
// ascending, with completeness flags.
func Versions(store ChunkStore) ([]VersionInfo, error) {
	names, err := store.List("v")
	if err != nil {
		return nil, err
	}
	byVer := map[uint64]*VersionInfo{}
	for _, n := range names {
		dir, rest, ok := strings.Cut(n, "/")
		if !ok {
			continue
		}
		v, ok := parseVersionDir(dir)
		if !ok {
			continue
		}
		vi := byVer[v]
		if vi == nil {
			vi = &VersionInfo{Version: v}
			byVer[v] = vi
		}
		vi.Objects = append(vi.Objects, n)
		if rest == "manifest.json" {
			vi.Complete = true
		}
	}
	out := make([]VersionInfo, 0, len(byVer))
	for _, vi := range byVer {
		sort.Strings(vi.Objects)
		out = append(out, *vi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// VersionInfo describes one version directory in the store.
type VersionInfo struct {
	Version  uint64
	Complete bool // manifest.json present
	Objects  []string
}
