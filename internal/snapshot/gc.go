package snapshot

// GC removes superseded snapshot versions, returning how many version
// directories it deleted. It keeps the `keep` newest complete snapshots
// and removes:
//
//   - complete versions older than the keep set, and
//   - manifest-less (failed or abandoned) version directories whose
//     version is below the latest complete manifest's.
//
// The second rule is what makes GC safe to run concurrently with a
// snapshot in progress: an in-flight writer's version equals the engine's
// current graph version, which is >= the latest committed manifest's
// version (hydration starts at the manifest version and versions only
// ever grow), so a directory strictly below the latest manifest can never
// be a live write — only a crashed one.
func GC(store ChunkStore, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	vis, err := Versions(store)
	if err != nil {
		return 0, err
	}
	var latestComplete uint64
	haveComplete := false
	complete := 0
	for _, vi := range vis {
		if vi.Complete {
			complete++
			if vi.Version > latestComplete {
				latestComplete = vi.Version
				haveComplete = true
			}
		}
	}
	removed := 0
	surviving := complete
	for _, vi := range vis { // ascending: oldest candidates first
		del := false
		switch {
		case vi.Complete:
			if surviving > keep {
				del = true
				surviving--
			}
		default:
			del = haveComplete && vi.Version < latestComplete
		}
		if !del {
			continue
		}
		// Manifest first so the version stops being "complete" before its
		// chunks disappear — a crash mid-GC leaves a manifest-less dir that
		// the next GC pass finishes off.
		objs := vi.Objects
		if vi.Complete {
			m := versionDir(vi.Version) + "/manifest.json"
			if err := store.Delete(m); err != nil {
				return removed, err
			}
			rest := objs[:0:0]
			for _, o := range objs {
				if o != m {
					rest = append(rest, o)
				}
			}
			objs = rest
		}
		for _, o := range objs {
			if err := store.Delete(o); err != nil {
				return removed, err
			}
		}
		removed++
	}
	return removed, nil
}
