package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRows(n int) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i * 2), int64(-i)}
	}
	return rows
}

func writeSnapshot(t *testing.T, store ChunkStore, version uint64, rows [][]int64) *Manifest {
	t.Helper()
	w := NewWriter(store, version, 1700000000000)
	m := w.Manifest()
	m.Nodes = 10
	m.Edges = int64(len(rows))
	m.WMin = 1
	m.Strategy = "clustered"
	if err := w.AddTable("TEdges", 3, rows); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return m
}

// TestRoundtrip: write a snapshot, read it back through Latest+ReadTable,
// rows and metadata survive intact.
func TestRoundtrip(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(100)
	writeSnapshot(t, store, 5, rows)

	m, err := Latest(store)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if m.Version != 5 || m.Edges != 100 || m.Nodes != 10 {
		t.Fatalf("manifest %+v", m)
	}
	tm := m.Table("TEdges")
	if tm == nil {
		t.Fatal("TEdges missing from manifest")
	}
	got, err := ReadTable(store, tm)
	if err != nil {
		t.Fatalf("ReadTable: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d col %d: %d != %d", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

// TestEmptyTable: a zero-row table still roundtrips (one empty chunk).
func TestEmptyTable(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(t, store, 1, nil)
	m, err := Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(store, m.Table("TEdges"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}

// TestMultiChunk: a table larger than chunkRows splits and reassembles.
func TestMultiChunk(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(chunkRows + 37)
	writeSnapshot(t, store, 2, rows)
	m, err := Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Table("TEdges")
	if len(tm.Chunks) != 2 {
		t.Fatalf("chunks %d, want 2", len(tm.Chunks))
	}
	got, err := ReadTable(store, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) || got[chunkRows][0] != int64(chunkRows) {
		t.Fatalf("reassembly wrong: %d rows", len(got))
	}
}

// TestLatestPicksHighest: Latest returns the highest complete version and
// ignores a higher manifest-less (in-flight/failed) directory.
func TestLatestPicksHighest(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(t, store, 3, testRows(5))
	writeSnapshot(t, store, 12, testRows(8))

	// Partial v20: chunks but no manifest — must be invisible.
	w := NewWriter(store, 20, 0)
	if err := w.AddTable("TEdges", 3, testRows(4)); err != nil {
		t.Fatal(err)
	}

	m, err := Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 12 {
		t.Fatalf("Latest picked v%d, want v12", m.Version)
	}
}

// TestLatestEmpty: an empty store yields ErrNoManifest.
func TestLatestEmpty(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Latest(store); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err %v, want ErrNoManifest", err)
	}
}

// TestChunkCorruption: a flipped byte in a stored chunk fails ReadTable's
// CRC check instead of yielding bad rows.
func TestChunkCorruption(t *testing.T) {
	root := t.TempDir()
	store, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(t, store, 1, testRows(10))
	m, err := Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Table("TEdges")
	p := filepath.Join(root, filepath.FromSlash(tm.Chunks[0].Name))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTable(store, tm); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted chunk read: err=%v", err)
	}
}

// TestGC: keeps the newest `keep` complete versions, removes older ones
// and stale partials, and never touches a partial at or above the latest
// complete version (it could be an in-flight snapshot).
func TestGC(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3, 4} {
		writeSnapshot(t, store, v, testRows(3))
	}
	// Stale partial below latest complete (crashed attempt): removable.
	wCrash := NewWriter(store, 0, 0)
	if err := wCrash.AddTable("TEdges", 3, testRows(2)); err != nil {
		t.Fatal(err)
	}
	// In-flight partial above latest complete: must survive.
	wLive := NewWriter(store, 9, 0)
	if err := wLive.AddTable("TEdges", 3, testRows(2)); err != nil {
		t.Fatal(err)
	}

	removed, err := GC(store, 2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	// Expect gone: complete v1, v2 and partial v0. Kept: v3, v4, partial v9.
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	vis, err := Versions(store)
	if err != nil {
		t.Fatal(err)
	}
	var kept []uint64
	for _, vi := range vis {
		kept = append(kept, vi.Version)
	}
	want := []uint64{3, 4, 9}
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
	if m, err := Latest(store); err != nil || m.Version != 4 {
		t.Fatalf("Latest after GC: %+v, %v", m, err)
	}
}

// TestGCKeepsAllWhenFew: GC with keep larger than the population removes
// nothing.
func TestGCKeepsAllWhenFew(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSnapshot(t, store, 1, testRows(3))
	removed, err := GC(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed %d, want 0", removed)
	}
}

// TestDiskStoreAtomicity: temp files from an interrupted Put are invisible
// to List and Get.
func TestDiskStoreAtomicity(t *testing.T) {
	root := t.TempDir()
	store, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("v0000000000000001/a.chunk", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a leftover temp file in the version dir.
	tmp := filepath.Join(root, "v0000000000000001", ".put-leftover")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "v0000000000000001/a.chunk" {
		t.Fatalf("List sees temp files: %v", names)
	}
	if _, err := store.Get("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := store.Delete("missing"); err != nil {
		t.Fatalf("Delete missing: %v", err)
	}
	if err := store.Put("../escape", nil); err == nil {
		t.Fatal("path escape accepted")
	}
}

// TestChunkEncoding: decodeChunk rejects malformed data.
func TestChunkEncoding(t *testing.T) {
	data := encodeChunk(2, [][]int64{{1, -2}, {3, 4}})
	cols, rows, err := decodeChunk(data)
	if err != nil || cols != 2 || len(rows) != 2 || rows[0][1] != -2 {
		t.Fatalf("roundtrip: cols=%d rows=%v err=%v", cols, rows, err)
	}
	if _, _, err := decodeChunk(data[:len(data)-1]); err == nil {
		t.Fatal("truncated chunk accepted")
	}
	if _, _, err := decodeChunk([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
}
