// Package snapshot implements versioned, manifest-led snapshots of the
// engine's relational state: the loaded graph (TEdges) plus every built
// index (TOutSegs/TInSegs, TLandmark, TLabelOut/TLabelIn) and the scalar
// metadata needed to serve from them without a rebuild. A snapshot is a
// set of fixed-size row chunks plus one manifest.json, written through the
// pluggable ChunkStore interface — a disk backend ships first; the
// interface is shaped (flat names, whole-object Put/Get, prefix List) so
// an S3-compatible backend is a drop-in.
//
// Commit protocol: chunks are written first, the manifest last, and a
// snapshot exists if and only if its manifest does. Readers (Latest) and
// the GC treat a version directory without a manifest as a failed or
// in-flight attempt — invisible to hydration, reclaimable once a newer
// complete snapshot exists. See docs/ARCHITECTURE.md §Durability for the
// full safety argument.
package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ChunkStore is the pluggable snapshot backend: a flat namespace of
// immutable objects with "/"-separated names. Put must be durable on
// return (the commit protocol relies on it); List returns every object
// name with the given prefix, in any order.
type ChunkStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List(prefix string) ([]string, error)
	Delete(name string) error
}

// ErrNotExist is returned by Get for a missing object.
var ErrNotExist = errors.New("snapshot: object does not exist")

// DiskStore is the filesystem ChunkStore: objects are files under a root
// directory, Put writes a temp file, fsyncs it, renames into place and
// fsyncs the directory — an object is either fully present or absent,
// never half-written.
type DiskStore struct {
	root string
}

// NewDiskStore opens (creating if needed) a disk-backed chunk store.
func NewDiskStore(root string) (*DiskStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: mkdir %s: %w", root, err)
	}
	return &DiskStore{root: root}, nil
}

// path maps an object name to its file path, refusing escapes.
func (s *DiskStore) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || strings.HasPrefix(name, "/") {
		return "", fmt.Errorf("snapshot: bad object name %q", name)
	}
	return filepath.Join(s.root, filepath.FromSlash(name)), nil
}

// Put stores data under name, durably.
func (s *DiskStore) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: mkdir %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("snapshot: temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: rename %s: %w", name, err)
	}
	return syncDir(dir)
}

// Get returns the object's bytes, or ErrNotExist.
func (s *DiskStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, fmt.Errorf("snapshot: read %s: %w", name, err)
	}
	return data, nil
}

// List returns every object name under the root with the given prefix.
func (s *DiskStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".put-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the object (missing is not an error) and prunes its
// parent directory if now empty.
func (s *DiskStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("snapshot: delete %s: %w", name, err)
	}
	// Best-effort prune: an empty version directory after the last chunk
	// goes is just clutter.
	if dir := filepath.Dir(p); dir != s.root {
		os.Remove(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: sync dir %s: %w", dir, err)
	}
	return nil
}
