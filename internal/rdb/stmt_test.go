package rdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPlanCacheHitCounters checks that repeated texts reuse their compiled
// plan: one miss per distinct text, a hit per re-execution, and bound
// arguments still vary per call.
func TestPlanCacheHitCounters(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	base := db.Stats()

	const q = "SELECT id FROM people WHERE age = ? ORDER BY id"
	want := map[int64]int{30: 2, 25: 2, 40: 1}
	for round := 0; round < 3; round++ {
		for age, n := range want {
			rows := mustQuery(t, db, q, age)
			if rows.Len() != n {
				t.Fatalf("age %d: got %d rows, want %d", age, rows.Len(), n)
			}
		}
	}
	st := db.Stats()
	misses := st.PlanCacheMisses - base.PlanCacheMisses
	hits := st.PlanCacheHits - base.PlanCacheHits
	if misses != 1 {
		t.Errorf("expected 1 plan-cache miss for one text, got %d", misses)
	}
	if hits != 8 {
		t.Errorf("expected 8 plan-cache hits (9 executions - 1 compile), got %d", hits)
	}
	if st.PlanCacheEntries == 0 {
		t.Error("expected live plan-cache entries")
	}
}

// TestPreparedStatementReuse drives an explicit Stmt handle through both
// read and write shapes, including multiplied parameters in UPDATE
// set/where arithmetic ("d2s-style" bind slots).
func TestPreparedStatementReuse(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE v (nid INT PRIMARY KEY, d2s INT, f INT)")
	ins, err := db.Prepare("INSERT INTO v (nid, d2s, f) VALUES (?, ?, 0)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ins.Exec(int64(i), int64(10*i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Parameter arithmetic in both the SET and WHERE clauses: the k*lthd
	// idiom of the BSEG frontier, bound as two values each.
	upd, err := db.Prepare("UPDATE v SET f = ? * ? WHERE d2s <= ? * ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := upd.Exec(int64(1), int64(2), int64(3), int64(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 4 { // d2s in {0,10,20,30}
		t.Fatalf("update affected %d rows, want 4", res.RowsAffected)
	}
	sel, err := db.Prepare("SELECT COUNT(*) FROM v WHERE f = ? * ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n, null, err := sel.QueryInt(int64(1), int64(2))
		if err != nil || null {
			t.Fatalf("select: n=%d null=%v err=%v", n, null, err)
		}
		if n != 4 {
			t.Fatalf("got %d rows with f=2, want 4", n)
		}
	}
	// Re-running the update must keep counting matched rows (SQL counts
	// matches even when values are unchanged) — the plan is re-executed,
	// not replayed.
	res, err = upd.Exec(int64(1), int64(2), int64(3), int64(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 4 {
		t.Fatalf("re-run affected %d rows, want 4", res.RowsAffected)
	}
}

// TestPlanCacheInvalidationOnDDL is the dropped-heapfile safety test: a
// cached plan (pinned by a Stmt and cached by text) must never touch a
// dropped table's storage. After DROP + CREATE of the same name, both the
// Stmt and the text-cached path must re-compile against the new catalog
// entry and see the new rows.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE g (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO g (id, v) VALUES (1, 100)")

	sel, err := db.Prepare("SELECT v FROM g WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := sel.QueryInt(int64(1)); err != nil || v != 100 {
		t.Fatalf("before DDL: v=%d err=%v", v, err)
	}
	// Also warm the text-keyed path.
	mustQuery(t, db, "SELECT v FROM g WHERE id = ?", int64(1))

	base := db.Stats()
	mustExec(t, db, "DROP TABLE g")
	mustExec(t, db, "CREATE TABLE g (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO g (id, v) VALUES (1, 777)")

	if st := db.Stats(); st.SchemaEpoch <= base.SchemaEpoch {
		t.Fatalf("schema epoch did not advance across DDL: %d -> %d", base.SchemaEpoch, st.SchemaEpoch)
	}
	if v, _, err := sel.QueryInt(int64(1)); err != nil || v != 777 {
		t.Fatalf("stmt after DDL: v=%d err=%v (stale plan touched dropped storage?)", v, err)
	}
	if v, _, err := db.QueryInt("SELECT v FROM g WHERE id = ?", int64(1)); err != nil || v != 777 {
		t.Fatalf("text path after DDL: v=%d err=%v", v, err)
	}
	if st := db.Stats(); st.PlanCacheInvalidations == base.PlanCacheInvalidations {
		t.Error("expected plan-cache invalidations after DDL, counter unchanged")
	}

	// TRUNCATE is DDL for epoch purposes too (the issue's conservative
	// rule): the next lookup recompiles rather than reusing blindly.
	pre := db.Stats().SchemaEpoch
	mustExec(t, db, "TRUNCATE TABLE g")
	if st := db.Stats(); st.SchemaEpoch <= pre {
		t.Error("TRUNCATE did not bump the schema epoch")
	}
	if v, null, err := sel.QueryInt(int64(1)); err != nil || !null {
		t.Fatalf("after TRUNCATE: v=%d null=%v err=%v", v, null, err)
	}
}

// TestPlanCacheProfileKeying checks the cache key includes the profile: a
// plan compiled under one profile must not answer for another even if a
// cache were ever shared across them.
func TestPlanCacheProfileKeying(t *testing.T) {
	c := newPlanCache(8)
	cp := &cachedPlan{kind: planKindSelect, epoch: 0}
	c.put(planKey{text: "SELECT 1", profile: ProfileDBMSX.Name}, cp)
	if got, _ := c.get(planKey{text: "SELECT 1", profile: ProfilePostgreSQL9.Name}, 0); got != nil {
		t.Fatal("PostgreSQL9 lookup returned a DBMS-X plan: profile is not part of the key")
	}
	if got, _ := c.get(planKey{text: "SELECT 1", profile: ProfileDBMSX.Name}, 0); got != cp {
		t.Fatal("same-profile lookup missed")
	}
	// Stale-epoch entries invalidate instead of hitting.
	if got, stale := c.get(planKey{text: "SELECT 1", profile: ProfileDBMSX.Name}, 1); got != nil || !stale {
		t.Fatalf("epoch-1 lookup: got=%v stale=%v, want nil/true", got, stale)
	}

	// End-to-end: the MERGE substitution paths compile independently per
	// profile — PostgreSQL 9.0 refuses MERGE at prepare time even though a
	// DBMS-X engine happily caches the same text.
	dbx := openDB(t, Options{Profile: ProfileDBMSX})
	pg := openDB(t, Options{Profile: ProfilePostgreSQL9})
	for _, db := range []*DB{dbx, pg} {
		mustExec(t, db, "CREATE TABLE m (id INT PRIMARY KEY, v INT)")
		mustExec(t, db, "CREATE TABLE src (id INT PRIMARY KEY, v INT)")
	}
	const mergeQ = "MERGE INTO m AS target USING src AS source ON (target.id = source.id) " +
		"WHEN MATCHED AND target.v > source.v THEN UPDATE SET v = source.v " +
		"WHEN NOT MATCHED THEN INSERT (id, v) VALUES (source.id, source.v)"
	if _, err := dbx.Prepare(mergeQ); err != nil {
		t.Fatalf("DBMS-X prepare MERGE: %v", err)
	}
	if _, err := pg.Prepare(mergeQ); err == nil || !strings.Contains(err.Error(), "MERGE") {
		t.Fatalf("PostgreSQL9 prepare MERGE: err=%v, want feature rejection", err)
	}
}

// TestPlanCacheLRUEviction bounds the cache: unbounded unique texts (the
// bulk loader's VALUES batches) must not grow it past capacity.
func TestPlanCacheLRUEviction(t *testing.T) {
	db := openDB(t, Options{PlanCacheSize: 4})
	seedPeople(t, db)
	for i := 0; i < 32; i++ {
		mustQuery(t, db, fmt.Sprintf("SELECT id FROM people WHERE age = %d", 20+i))
	}
	if n := db.Stats().PlanCacheEntries; n > 4 {
		t.Fatalf("cache grew to %d entries past capacity 4", n)
	}
}

// TestPlanCacheDisabled keeps the re-parse baseline honest: with caching
// off every execution compiles (misses only, no entries).
func TestPlanCacheDisabled(t *testing.T) {
	db := openDB(t, Options{PlanCacheSize: -1})
	seedPeople(t, db)
	for i := 0; i < 5; i++ {
		mustQuery(t, db, "SELECT id FROM people WHERE age = ?", int64(30))
	}
	st := db.Stats()
	if st.PlanCacheHits != 0 {
		t.Errorf("disabled cache reported %d hits", st.PlanCacheHits)
	}
	if st.PlanCacheMisses < 5 {
		t.Errorf("disabled cache reported %d misses, want >= 5", st.PlanCacheMisses)
	}
	if st.PlanCacheEntries != 0 {
		t.Errorf("disabled cache holds %d entries", st.PlanCacheEntries)
	}
}

// TestConcurrentSessionsSharedStatement is the -race test for shared plan
// execution: many sessions prepare and execute the same statement texts
// concurrently — including a correlated-subquery shape whose per-execution
// state (plan instances, memoized subquery results) must live in the
// execution context, not the shared compiled plan — while writers churn
// the table through a prepared DML handle.
func TestConcurrentSessionsSharedStatement(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE c (id INT PRIMARY KEY, grp INT, v INT)")
	for i := 0; i < 64; i++ {
		mustExec(t, db, "INSERT INTO c (id, grp, v) VALUES (?, ?, ?)",
			int64(i), int64(i%4), int64(i))
	}
	const (
		readers    = 8
		iterations = 40
	)
	// A shape with an uncorrelated scalar subquery (memoized per
	// execution) plus a parameter.
	const subQ = "SELECT COUNT(*) FROM c WHERE v >= (SELECT MIN(v) FROM c) AND grp = ?"
	const aggQ = "SELECT MAX(v) FROM c WHERE grp = ?"

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			sub, err := sess.Prepare(subQ)
			if err != nil {
				errs <- err
				return
			}
			agg, err := sess.Prepare(aggQ)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < iterations; i++ {
				grp := int64((r + i) % 4)
				if n, null, err := sub.QueryInt(grp); err != nil || null || n < 1 {
					errs <- fmt.Errorf("reader %d sub: n=%d null=%v err=%v", r, n, null, err)
					return
				}
				if _, _, err := agg.QueryInt(grp); err != nil {
					errs <- fmt.Errorf("reader %d agg: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := db.Session()
		defer sess.Close()
		upd, err := sess.Prepare("UPDATE c SET v = v + ? WHERE grp = ?")
		if err != nil {
			errs <- err
			return
		}
		for i := 0; i < iterations; i++ {
			if _, err := upd.Exec(int64(1), int64(i%4)); err != nil {
				errs <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := db.Stats(); st.PlanCacheHits == 0 {
		t.Error("expected shared-statement executions to hit the plan cache")
	}
}
