package rdb

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Session is a per-caller handle over a shared DB, the unit of concurrency
// in the serving tier: each client of the query server (or each worker in a
// batch pool) opens one. Sessions add no locking of their own — the DB's RW
// latch already lets reads run concurrently — but they carry per-caller
// statement counters that fold into DBStats, so the serving layer can
// report per-client and aggregate activity, like per-connection counters in
// a networked DBMS.
//
// A Session is safe for concurrent use by multiple goroutines, though the
// intended pattern is one session per goroutine.
type Session struct {
	db *DB
	id uint64

	stmts    atomic.Uint64
	queries  atomic.Uint64
	execs    atomic.Uint64
	busyNs   atomic.Int64
	closed   atomic.Bool
	lastUsed atomic.Int64 // unix nanos of the last statement
}

// SessionStats snapshots one session's activity.
type SessionStats struct {
	ID         uint64
	Statements uint64
	Queries    uint64
	Execs      uint64
	// Busy is the total wall time this session spent inside statements.
	Busy time.Duration
	// LastUsed is the wall-clock time of the most recent statement
	// (zero time if the session never issued one).
	LastUsed time.Time
}

// Session opens a per-caller handle. Close it when the caller disconnects
// so ActiveSessions in Stats stays meaningful.
func (db *DB) Session() *Session {
	id := db.sessionSeq.Add(1)
	db.sessionsOpen.Add(1)
	return &Session{db: db, id: id}
}

// ID returns the session's open-order identifier (1-based).
func (s *Session) ID() uint64 { return s.id }

// DB returns the underlying shared database.
func (s *Session) DB() *DB { return s.db }

// Close marks the session disconnected. Statements on a closed session
// fail; closing twice is a no-op.
func (s *Session) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.db.sessionsOpen.Add(-1)
	}
	return nil
}

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	st := SessionStats{
		ID:         s.id,
		Statements: s.stmts.Load(),
		Queries:    s.queries.Load(),
		Execs:      s.execs.Load(),
		Busy:       time.Duration(s.busyNs.Load()),
	}
	if ns := s.lastUsed.Load(); ns != 0 {
		st.LastUsed = time.Unix(0, ns)
	}
	return st
}

func (s *Session) begin() (time.Time, error) {
	if s.closed.Load() {
		return time.Time{}, fmt.Errorf("rdb: session %d is closed", s.id)
	}
	return time.Now(), nil
}

func (s *Session) finish(t0 time.Time) {
	now := time.Now()
	s.stmts.Add(1)
	s.busyNs.Add(int64(now.Sub(t0)))
	s.lastUsed.Store(now.UnixNano())
	s.db.sessionStmts.Add(1)
}

// Exec runs a mutating statement through the session (exclusive latch).
func (s *Session) Exec(query string, args ...any) (Result, error) {
	t0, err := s.begin()
	if err != nil {
		return Result{}, err
	}
	defer s.finish(t0)
	s.execs.Add(1)
	return s.db.Exec(query, args...)
}

// Query runs a SELECT through the session (shared latch; concurrent with
// other sessions' reads).
func (s *Session) Query(query string, args ...any) (*Rows, error) {
	t0, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer s.finish(t0)
	s.queries.Add(1)
	return s.db.Query(query, args...)
}

// QueryInt runs a single-value query; null reports a NULL (or empty) result.
func (s *Session) QueryInt(query string, args ...any) (v int64, null bool, err error) {
	t0, err := s.begin()
	if err != nil {
		return 0, false, err
	}
	defer s.finish(t0)
	s.queries.Add(1)
	return s.db.QueryInt(query, args...)
}

// Context-aware statement execution. Statements themselves are short (the
// workload is many small statements, like the paper's JDBC loop), so
// cancellation is checked at statement boundaries: a cancelled context
// refuses the next statement before any parsing or latching happens. This
// is the rdb half of the engine's cooperative cancellation — the engine
// checks once per frontier iteration, the session once per statement.

// ContextErr reports whether ctx is dead, enforcing deadlines by the
// clock rather than only by ctx.Err(). The distinction matters: a timed
// context reports DeadlineExceeded only after the runtime timer goroutine
// fired its cancellation, and the engine's statement loop is tight enough
// to outrun that timer on a single-P scheduler (GOMAXPROCS=1, saturated
// CPU quota) — an expired query could then run to completion. Every
// cancellation checkpoint in the stack goes through this helper.
func ContextErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// ExecContext is Exec with a cancellation check at the statement boundary.
func (s *Session) ExecContext(ctx context.Context, query string, args ...any) (Result, error) {
	if err := ContextErr(ctx); err != nil {
		return Result{}, err
	}
	return s.Exec(query, args...)
}

// QueryContext is Query with a cancellation check at the statement boundary.
func (s *Session) QueryContext(ctx context.Context, query string, args ...any) (*Rows, error) {
	if err := ContextErr(ctx); err != nil {
		return nil, err
	}
	return s.Query(query, args...)
}

// QueryIntContext is QueryInt with a cancellation check at the statement
// boundary.
func (s *Session) QueryIntContext(ctx context.Context, query string, args ...any) (v int64, null bool, err error) {
	if err := ContextErr(ctx); err != nil {
		return 0, false, err
	}
	return s.QueryInt(query, args...)
}
