package rdb

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Stmt is a prepared statement: a handle over one compiled plan that can be
// re-executed with fresh bound arguments, the JDBC PreparedStatement of the
// paper's client. Preparation parses, feature-checks and compiles the text
// once; every execution binds parameters and runs, skipping parse/plan
// entirely while the schema epoch the plan was compiled against still
// holds. After a DDL statement bumps the epoch the handle transparently
// re-compiles on its next use — a stale plan is never executed.
//
// A Stmt is safe for concurrent use: the pinned plan is an atomic pointer
// and plan entries are immutable (executions clone the plan template).
type Stmt struct {
	db   *DB
	sess *Session // non-nil when prepared through a Session (accounting)
	text string
	plan atomic.Pointer[cachedPlan]
}

// Prepare compiles a statement for repeated execution.
func (db *DB) Prepare(query string) (*Stmt, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("rdb: database is closed")
	}
	cp, err := db.plan(query)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, text: query}
	st.plan.Store(cp)
	return st, nil
}

// Prepare compiles a statement through the session; executions carry the
// session's per-caller accounting like Exec/Query do.
func (s *Session) Prepare(query string) (*Stmt, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("rdb: session %d is closed", s.id)
	}
	st, err := s.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	st.sess = s
	return st, nil
}

// PrepareContext is Prepare with a cancellation check first: a dead context
// refuses before any parsing or latching happens.
func (s *Session) PrepareContext(ctx context.Context, query string) (*Stmt, error) {
	if err := ContextErr(ctx); err != nil {
		return nil, err
	}
	return s.Prepare(query)
}

// Text returns the statement's SQL text.
func (st *Stmt) Text() string { return st.text }

// Close releases the handle. The compiled plan stays in the shared cache
// (other handles and plain Exec/Query reuse it); Close exists for driver
// familiarity and is a no-op.
func (st *Stmt) Close() error { return nil }

// current returns the pinned plan when it is still valid for the present
// schema epoch, re-compiling (through the shared cache) otherwise. Callers
// hold db.mu in either mode, so the epoch cannot move underneath the check:
// DDL requires the exclusive latch.
func (st *Stmt) current() (*cachedPlan, error) {
	if st.db.plans == nil {
		// Caching disabled (PlanCacheSize < 0): the whole engine runs
		// statement-at-a-time, so prepared handles re-compile every
		// execution too — this is the honest re-parse baseline the
		// fembench prepared experiment compares against.
		return st.db.plan(st.text)
	}
	if cp := st.plan.Load(); cp != nil && cp.epoch == st.db.epoch.Load() {
		st.db.planHits.Add(1)
		return cp, nil
	}
	cp, err := st.db.plan(st.text)
	if err != nil {
		return nil, err
	}
	st.plan.Store(cp)
	return cp, nil
}

// Exec runs the prepared mutating statement with fresh arguments
// (exclusive latch).
func (st *Stmt) Exec(args ...any) (Result, error) {
	if s := st.sess; s != nil {
		t0, err := s.begin()
		if err != nil {
			return Result{}, err
		}
		defer s.finish(t0)
		s.execs.Add(1)
	}
	return st.db.execText(st.text, st, args)
}

// ExecContext is Exec with a cancellation check at the bind/execute
// boundary.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (Result, error) {
	if err := ContextErr(ctx); err != nil {
		return Result{}, err
	}
	return st.Exec(args...)
}

// Query runs the prepared SELECT with fresh arguments (shared latch;
// concurrent with other readers).
func (st *Stmt) Query(args ...any) (*Rows, error) {
	if s := st.sess; s != nil {
		t0, err := s.begin()
		if err != nil {
			return nil, err
		}
		defer s.finish(t0)
		s.queries.Add(1)
	}
	return st.db.queryText(st.text, st, args)
}

// QueryContext is Query with a cancellation check at the bind/execute
// boundary.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	if err := ContextErr(ctx); err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// QueryInt runs the prepared single-value query; null reports a NULL (or
// empty) result.
func (st *Stmt) QueryInt(args ...any) (v int64, null bool, err error) {
	rows, err := st.Query(args...)
	if err != nil {
		return 0, false, err
	}
	return intFromRows(rows)
}

// QueryIntContext is QueryInt with a cancellation check at the bind/execute
// boundary.
func (st *Stmt) QueryIntContext(ctx context.Context, args ...any) (v int64, null bool, err error) {
	if err := ContextErr(ctx); err != nil {
		return 0, false, err
	}
	return st.QueryInt(args...)
}
