// Package rdb is the embedded database facade: it owns the storage stack
// (disk manager, buffer pool, catalog) and exposes the statement-at-a-time
// interface the paper's client uses over JDBC — Exec with SQLCA-style
// affected-row counts, Query with positional ? parameters, and per-engine
// feature profiles (DBMS-x supports MERGE, PostgreSQL 9.0 does not).
//
// Concurrency model: a DB carries an RW facade latch plus per-table RW
// locks. SELECTs (Query/QueryInt) and DML (INSERT/UPDATE/DELETE/MERGE) both
// run under the shared side of the facade latch; each statement then locks
// exactly the tables its compiled plan reads (shared) and writes
// (exclusive), in sorted order, so statements over disjoint tables — for
// example two searches scribbling into their own private scratch tables —
// execute fully in parallel while two writers of one table still serialize.
// DDL (CREATE/DROP/TRUNCATE) takes the exclusive facade latch, draining
// every in-flight statement, and bumps the schema epoch that invalidates
// cached plans. Callers that want per-caller accounting open a Session
// (see session.go).
package rdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/table"
)

// Profile models the feature set of the emulated DBMS.
type Profile struct {
	Name string
	// SupportsMerge gates the SQL:2008 MERGE statement.
	SupportsMerge bool
	// SupportsWindow gates SQL:2003 window functions.
	SupportsWindow bool
}

// ProfileDBMSX models the commercial system in the paper: both new SQL
// features available.
var ProfileDBMSX = Profile{Name: "DBMS-X", SupportsMerge: true, SupportsWindow: true}

// ProfilePostgreSQL9 models PostgreSQL 9.0: window functions but no MERGE
// (the paper substitutes an UPDATE followed by an INSERT).
var ProfilePostgreSQL9 = Profile{Name: "PostgreSQL9", SupportsMerge: false, SupportsWindow: true}

// Options configures an engine instance.
type Options struct {
	// Path locates the backing file; empty means an in-memory page store.
	Path string
	// BufferPoolPages bounds the cache (default 4096 pages = 32 MiB).
	BufferPoolPages int
	// SimulatedIOLatency is charged per physical page transfer to model
	// spinning-disk cost in buffer-size experiments. Zero for most runs.
	SimulatedIOLatency time.Duration
	// Profile selects the emulated DBMS feature set (default DBMS-X).
	Profile Profile
	// PlanCacheSize bounds the compiled-plan cache in entries (default
	// DefaultPlanCacheSize; negative disables caching, re-compiling every
	// statement — the paper's statement-at-a-time baseline, kept for the
	// fembench prepared-vs-reparse comparison).
	PlanCacheSize int
}

// DefaultPlanCacheSize is the plan-cache capacity when Options.PlanCacheSize
// is 0. The workload's statement-shape count is small (a few dozen per
// algorithm); the bound exists so unbounded texts (bulk-load batches)
// cannot grow the cache without limit.
const DefaultPlanCacheSize = 256

// Stats aggregates engine activity since Open or the last ResetStats.
// Session counters are folded in: SessionStatements is the subset of
// Statements issued through Session handles, and ActiveSessions /
// SessionsOpened track the serving tier's concurrency.
type Stats struct {
	Statements uint64
	// ParsePlanDur is the time spent parsing and compiling statements —
	// plan-cache misses only, so it measures exactly the cost the cache
	// removes from the hot path.
	ParsePlanDur time.Duration
	ExecDur      time.Duration
	// SessionsOpened counts Session handles created since Open.
	SessionsOpened uint64
	// ActiveSessions counts Session handles not yet closed.
	ActiveSessions int64
	// SessionStatements counts statements issued through sessions.
	SessionStatements uint64
	// PlanCacheHits counts statements that reused a compiled plan and
	// skipped parse/plan entirely; PlanCacheMisses counts compilations;
	// PlanCacheInvalidations counts cached plans discarded because a DDL
	// statement bumped the schema epoch underneath them.
	PlanCacheHits          uint64
	PlanCacheMisses        uint64
	PlanCacheInvalidations uint64
	// PlanCacheEntries is the live entry count (0 when caching is off).
	PlanCacheEntries int
	// SchemaEpoch is the catalog generation: bumped by every DDL statement
	// (CREATE/DROP/TRUNCATE), it is what cached plans are validated against.
	SchemaEpoch uint64
	Pool        storage.PoolStats
	IO          storage.IOStats
}

// DB is one embedded database instance. Queries and DML run concurrently
// under the shared side of the facade latch, serialized per table by the
// plan's table-lock set; DDL is exclusive.
type DB struct {
	mu      sync.RWMutex
	disk    storage.DiskManager
	pool    *storage.BufferPool
	cat     *table.Catalog
	planner *exec.Planner
	profile Profile

	// tlocks maps lowercase table name → its RW lock; tlMu guards the map
	// itself. Entries persist for the life of the DB (names recycle).
	tlMu   sync.Mutex
	tlocks map[string]*sync.RWMutex

	// plans caches compiled statements keyed by (text, profile); nil when
	// caching is disabled. epoch is the schema generation entries are
	// validated against (bumped by DDL under the exclusive latch).
	plans *planCache
	epoch atomic.Uint64

	// Counters are atomics because the read path updates them while
	// holding only the shared latch.
	stmts           atomic.Uint64
	parseDurNs      atomic.Int64
	execDurNs       atomic.Int64
	sessionSeq      atomic.Uint64
	sessionsOpen    atomic.Int64
	sessionStmts    atomic.Uint64
	planHits        atomic.Uint64
	planMisses      atomic.Uint64
	planInvalidated atomic.Uint64
	closed          bool
}

// Open creates a fresh database.
func Open(opts Options) (*DB, error) {
	if opts.BufferPoolPages == 0 {
		opts.BufferPoolPages = 4096
	}
	if opts.Profile.Name == "" {
		opts.Profile = ProfileDBMSX
	}
	var disk storage.DiskManager
	var err error
	if opts.Path == "" {
		disk = storage.NewMemDiskManager(opts.SimulatedIOLatency)
	} else {
		disk, err = storage.NewFileDiskManager(opts.Path, opts.SimulatedIOLatency)
		if err != nil {
			return nil, err
		}
	}
	pool := storage.NewBufferPool(disk, opts.BufferPoolPages)
	cat := table.NewCatalog(pool)
	db := &DB{
		disk:    disk,
		pool:    pool,
		cat:     cat,
		planner: exec.NewPlanner(cat),
		profile: opts.Profile,
		tlocks:  make(map[string]*sync.RWMutex),
	}
	size := opts.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	if size > 0 {
		db.plans = newPlanCache(size)
	}
	return db, nil
}

// Close flushes and releases the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.disk.Close()
}

// SetSimulatedIOLatency changes the per-page-transfer simulated latency at
// runtime. Benchmarks open with zero latency for the load/index phase and
// arm the seek cost only for the measured phase.
func (db *DB) SetSimulatedIOLatency(lat time.Duration) { db.disk.SetLatency(lat) }

// Profile returns the engine's feature profile.
func (db *DB) Profile() Profile { return db.profile }

// Catalog exposes table metadata (used by tests and the loader).
func (db *DB) Catalog() *table.Catalog { return db.cat }

// Pool exposes the buffer pool (stats, capacity).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// Stats snapshots engine counters.
func (db *DB) Stats() Stats {
	st := Stats{
		Statements:             db.stmts.Load(),
		ParsePlanDur:           time.Duration(db.parseDurNs.Load()),
		ExecDur:                time.Duration(db.execDurNs.Load()),
		SessionsOpened:         db.sessionSeq.Load(),
		ActiveSessions:         db.sessionsOpen.Load(),
		SessionStatements:      db.sessionStmts.Load(),
		PlanCacheHits:          db.planHits.Load(),
		PlanCacheMisses:        db.planMisses.Load(),
		PlanCacheInvalidations: db.planInvalidated.Load(),
		SchemaEpoch:            db.epoch.Load(),
		Pool:                   db.pool.Stats(),
		IO:                     db.disk.Stats(),
	}
	if db.plans != nil {
		st.PlanCacheEntries = db.plans.size()
	}
	return st
}

// ResetStats zeroes statement and buffer counters (between bench phases).
func (db *DB) ResetStats() {
	db.stmts.Store(0)
	db.parseDurNs.Store(0)
	db.execDurNs.Store(0)
	db.sessionStmts.Store(0)
	db.planHits.Store(0)
	db.planMisses.Store(0)
	db.planInvalidated.Store(0)
	db.pool.ResetStats()
}

// Result is the SQLCA-style outcome of a mutating statement.
type Result = exec.Result

// Rows is a fully materialized query result (result sets in the workload
// are tiny: frontier ids, minima, path links).
type Rows struct {
	Columns []string
	Data    []record.Row
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

func convertArgs(args []any) ([]record.Value, error) {
	out := make([]record.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = record.Value{Null: true}
		case int:
			out[i] = record.Int(int64(v))
		case int32:
			out[i] = record.Int(int64(v))
		case int64:
			out[i] = record.Int(v)
		case uint32:
			out[i] = record.Int(int64(v))
		case float64:
			out[i] = record.Float(v)
		case string:
			out[i] = record.Text(v)
		case bool:
			out[i] = record.Bool(v)
		case record.Value:
			out[i] = v
		default:
			return nil, fmt.Errorf("rdb: unsupported parameter type %T", a)
		}
	}
	return out, nil
}

func (db *DB) checkFeatures(st sql.Statement) error {
	switch s := st.(type) {
	case *sql.MergeStmt:
		if !db.profile.SupportsMerge {
			return fmt.Errorf("rdb: %s does not support MERGE", db.profile.Name)
		}
		if s.Source.Sub != nil && !db.profile.SupportsWindow && selectUsesWindow(s.Source.Sub) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	case *sql.SelectStmt:
		if !db.profile.SupportsWindow && selectUsesWindow(s) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	case *sql.InsertStmt:
		if s.Select != nil && !db.profile.SupportsWindow && selectUsesWindow(s.Select) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	}
	return nil
}

func selectUsesWindow(st *sql.SelectStmt) bool {
	for _, it := range st.Items {
		if !it.Star && exprUsesWindow(it.Expr) {
			return true
		}
	}
	for _, fr := range st.From {
		if fr.Sub != nil && selectUsesWindow(fr.Sub) {
			return true
		}
	}
	return false
}

func exprUsesWindow(e sql.Expr) bool {
	switch ex := e.(type) {
	case *sql.FuncCall:
		if ex.Window != nil {
			return true
		}
		for _, a := range ex.Args {
			if exprUsesWindow(a) {
				return true
			}
		}
	case *sql.Binary:
		return exprUsesWindow(ex.L) || exprUsesWindow(ex.R)
	case *sql.Unary:
		return exprUsesWindow(ex.E)
	case *sql.Subquery:
		return selectUsesWindow(ex.Select)
	case *sql.Exists:
		return selectUsesWindow(ex.Select)
	}
	return false
}

// plan resolves a statement text to a compiled plan — from the cache when a
// current-epoch entry exists, compiling (and caching) otherwise. Callers
// hold db.mu in either mode; the cache carries its own latch so concurrent
// readers can hit it together. DDL statements are classified but never
// cached: each execution invalidates every plan anyway.
func (db *DB) plan(query string) (*cachedPlan, error) {
	epoch := db.epoch.Load()
	key := planKey{text: query, profile: db.profile.Name}
	if db.plans != nil {
		if cp, stale := db.plans.get(key, epoch); cp != nil {
			db.planHits.Add(1)
			return cp, nil
		} else if stale {
			db.planInvalidated.Add(1)
		}
	}
	t0 := time.Now()
	st, nparams, err := sql.ParseStmt(query)
	if err != nil {
		return nil, fmt.Errorf("rdb: %w\n  in: %s", err, query)
	}
	if err := db.checkFeatures(st); err != nil {
		return nil, err
	}
	cp := &cachedPlan{epoch: epoch, nparams: nparams, locks: stmtLockSpecs(st)}
	switch s := st.(type) {
	case *sql.SelectStmt:
		ps, err := db.planner.PrepareSelect(s)
		if err != nil {
			return nil, wrapErr(err, query)
		}
		cp.kind, cp.sel = planKindSelect, ps
	case *sql.InsertStmt:
		pd, err := db.planner.PrepareInsert(s)
		if err != nil {
			return nil, wrapErr(err, query)
		}
		cp.kind, cp.dml = planKindDML, pd
	case *sql.UpdateStmt:
		pd, err := db.planner.PrepareUpdate(s)
		if err != nil {
			return nil, wrapErr(err, query)
		}
		cp.kind, cp.dml = planKindDML, pd
	case *sql.DeleteStmt:
		pd, err := db.planner.PrepareDelete(s)
		if err != nil {
			return nil, wrapErr(err, query)
		}
		cp.kind, cp.dml = planKindDML, pd
	case *sql.MergeStmt:
		pd, err := db.planner.PrepareMerge(s)
		if err != nil {
			return nil, wrapErr(err, query)
		}
		cp.kind, cp.dml = planKindDML, pd
	default:
		cp.kind, cp.stmt = planKindDDL, st
	}
	db.parseDurNs.Add(int64(time.Since(t0)))
	if cp.kind != planKindDDL {
		db.planMisses.Add(1)
		if db.plans != nil {
			db.plans.put(key, cp)
		}
	}
	return cp, nil
}

// planFor resolves the plan for a call: through the Stmt's pinned entry
// (prepared-statement fast path) or by text.
func (db *DB) planFor(st *Stmt, query string) (*cachedPlan, error) {
	if st != nil {
		return st.current()
	}
	return db.plan(query)
}

// Exec runs one statement, returning the SQLCA-style affected-row count.
// DML runs under the shared facade latch plus the plan's table locks, so
// mutations of disjoint tables proceed concurrently with each other and
// with queries; DDL takes the exclusive latch (draining every in-flight
// statement) and bumps the schema epoch, invalidating every cached plan.
func (db *DB) Exec(query string, args ...any) (exec.Result, error) {
	return db.execText(query, nil, args)
}

func (db *DB) execText(query string, st *Stmt, args []any) (exec.Result, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return exec.Result{}, fmt.Errorf("rdb: database is closed")
	}
	params, err := convertArgs(args)
	if err != nil {
		db.mu.RUnlock()
		return exec.Result{}, err
	}
	cp, err := db.planFor(st, query)
	if err != nil {
		db.mu.RUnlock()
		return exec.Result{}, err
	}
	if cp.nparams != len(params) {
		db.mu.RUnlock()
		return exec.Result{}, fmt.Errorf("rdb: statement has %d placeholders, %d arguments bound\n  in: %s",
			cp.nparams, len(params), query)
	}
	switch cp.kind {
	case planKindSelect:
		db.mu.RUnlock()
		return exec.Result{}, fmt.Errorf("rdb: use Query for SELECT")
	case planKindDML:
		db.stmts.Add(1)
		t1 := time.Now()
		unlock := db.lockPlanTables(cp)
		res, err := cp.dml.Run(&exec.Ctx{Params: params})
		unlock()
		db.mu.RUnlock()
		db.execDurNs.Add(int64(time.Since(t1)))
		return res, wrapErr(err, query)
	}
	// DDL: re-enter on the exclusive side. The parsed statement resolves
	// catalog names at execution time, so the plan cannot go stale across
	// the latch upgrade.
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return exec.Result{}, fmt.Errorf("rdb: database is closed")
	}
	db.stmts.Add(1)
	t1 := time.Now()
	defer func() { db.execDurNs.Add(int64(time.Since(t1))) }()
	res, err := db.execDDL(cp.stmt)
	if err == nil {
		// The catalog changed shape: every cached plan may now reference
		// dropped or rebuilt storage, so the epoch moves and entries
		// invalidate lazily on their next lookup.
		db.epoch.Add(1)
	}
	return res, wrapErr(err, query)
}

// execDDL dispatches a schema statement; callers hold the exclusive latch
// and bump the epoch on success.
func (db *DB) execDDL(st sql.Statement) (exec.Result, error) {
	switch s := st.(type) {
	case *sql.CreateTableStmt:
		return exec.Result{}, db.planner.ExecCreateTable(s)
	case *sql.CreateIndexStmt:
		return exec.Result{}, db.planner.ExecCreateIndex(s)
	case *sql.DropTableStmt:
		return exec.Result{}, db.planner.ExecDropTable(s)
	case *sql.TruncateStmt:
		return db.planner.ExecTruncate(s)
	}
	return exec.Result{}, fmt.Errorf("rdb: unsupported statement %T", st)
}

func wrapErr(err error, query string) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w\n  in: %s", err, query)
}

// Query runs a SELECT, materializing the result. SELECTs take the shared
// facade latch plus read locks on the plan's tables, so sessions can read
// concurrently (and concurrently with DML over other tables); repeated
// texts reuse their compiled plan (each execution gets a private instance).
func (db *DB) Query(query string, args ...any) (*Rows, error) {
	return db.queryText(query, nil, args)
}

func (db *DB) queryText(query string, st *Stmt, args []any) (*Rows, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("rdb: database is closed")
	}
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	cp, err := db.planFor(st, query)
	if err != nil {
		return nil, err
	}
	if cp.kind != planKindSelect {
		return nil, fmt.Errorf("rdb: Query requires a SELECT statement")
	}
	if cp.nparams != len(params) {
		return nil, fmt.Errorf("rdb: statement has %d placeholders, %d arguments bound\n  in: %s",
			cp.nparams, len(params), query)
	}
	db.stmts.Add(1)
	t1 := time.Now()
	unlock := db.lockPlanTables(cp)
	rows, err := cp.sel.Run(&exec.Ctx{Params: params})
	unlock()
	db.execDurNs.Add(int64(time.Since(t1)))
	if err != nil {
		return nil, wrapErr(err, query)
	}
	return &Rows{Columns: cp.sel.Columns(), Data: rows}, nil
}

// QueryInt runs a single-value query; null reports a NULL (or empty) result.
func (db *DB) QueryInt(query string, args ...any) (v int64, null bool, err error) {
	rows, err := db.Query(query, args...)
	if err != nil {
		return 0, false, err
	}
	return intFromRows(rows)
}

// intFromRows extracts the single INT value of a scalar query result.
func intFromRows(rows *Rows) (v int64, null bool, err error) {
	if rows.Len() == 0 {
		return 0, true, nil
	}
	val := rows.Data[0][0]
	if val.Null {
		return 0, true, nil
	}
	if val.Typ != record.TInt {
		return 0, false, fmt.Errorf("rdb: expected INT result, got %s", val.Typ)
	}
	return val.I, false, nil
}
