// Package rdb is the embedded database facade: it owns the storage stack
// (disk manager, buffer pool, catalog) and exposes the statement-at-a-time
// interface the paper's client uses over JDBC — Exec with SQLCA-style
// affected-row counts, Query with positional ? parameters, and per-engine
// feature profiles (DBMS-x supports MERGE, PostgreSQL 9.0 does not).
//
// Concurrency model: a DB carries an RW latch. SELECTs (Query/QueryInt)
// run under the shared side, so any number of sessions can read at once;
// statements that mutate data or schema (Exec) take the exclusive side.
// Combined with the sharded buffer pool underneath, this makes the read
// path scale with concurrent callers while writers keep the serialized
// one-statement-at-a-time semantics the paper's client assumes. Callers
// that want per-caller accounting open a Session (see session.go).
package rdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/record"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/table"
)

// Profile models the feature set of the emulated DBMS.
type Profile struct {
	Name string
	// SupportsMerge gates the SQL:2008 MERGE statement.
	SupportsMerge bool
	// SupportsWindow gates SQL:2003 window functions.
	SupportsWindow bool
}

// ProfileDBMSX models the commercial system in the paper: both new SQL
// features available.
var ProfileDBMSX = Profile{Name: "DBMS-X", SupportsMerge: true, SupportsWindow: true}

// ProfilePostgreSQL9 models PostgreSQL 9.0: window functions but no MERGE
// (the paper substitutes an UPDATE followed by an INSERT).
var ProfilePostgreSQL9 = Profile{Name: "PostgreSQL9", SupportsMerge: false, SupportsWindow: true}

// Options configures an engine instance.
type Options struct {
	// Path locates the backing file; empty means an in-memory page store.
	Path string
	// BufferPoolPages bounds the cache (default 4096 pages = 32 MiB).
	BufferPoolPages int
	// SimulatedIOLatency is charged per physical page transfer to model
	// spinning-disk cost in buffer-size experiments. Zero for most runs.
	SimulatedIOLatency time.Duration
	// Profile selects the emulated DBMS feature set (default DBMS-X).
	Profile Profile
}

// Stats aggregates engine activity since Open or the last ResetStats.
// Session counters are folded in: SessionStatements is the subset of
// Statements issued through Session handles, and ActiveSessions /
// SessionsOpened track the serving tier's concurrency.
type Stats struct {
	Statements   uint64
	ParsePlanDur time.Duration
	ExecDur      time.Duration
	// SessionsOpened counts Session handles created since Open.
	SessionsOpened uint64
	// ActiveSessions counts Session handles not yet closed.
	ActiveSessions int64
	// SessionStatements counts statements issued through sessions.
	SessionStatements uint64
	Pool              storage.PoolStats
	IO                storage.IOStats
}

// DB is one embedded database instance. Reads (Query) run concurrently
// under the shared side of an RW latch; writes (Exec) are exclusive,
// mirroring the paper's single JDBC writer while letting many readers in.
type DB struct {
	mu      sync.RWMutex
	disk    storage.DiskManager
	pool    *storage.BufferPool
	cat     *table.Catalog
	planner *exec.Planner
	profile Profile

	// Counters are atomics because the read path updates them while
	// holding only the shared latch.
	stmts        atomic.Uint64
	parseDurNs   atomic.Int64
	execDurNs    atomic.Int64
	sessionSeq   atomic.Uint64
	sessionsOpen atomic.Int64
	sessionStmts atomic.Uint64
	closed       bool
}

// Open creates a fresh database.
func Open(opts Options) (*DB, error) {
	if opts.BufferPoolPages == 0 {
		opts.BufferPoolPages = 4096
	}
	if opts.Profile.Name == "" {
		opts.Profile = ProfileDBMSX
	}
	var disk storage.DiskManager
	var err error
	if opts.Path == "" {
		disk = storage.NewMemDiskManager(opts.SimulatedIOLatency)
	} else {
		disk, err = storage.NewFileDiskManager(opts.Path, opts.SimulatedIOLatency)
		if err != nil {
			return nil, err
		}
	}
	pool := storage.NewBufferPool(disk, opts.BufferPoolPages)
	cat := table.NewCatalog(pool)
	return &DB{
		disk:    disk,
		pool:    pool,
		cat:     cat,
		planner: exec.NewPlanner(cat),
		profile: opts.Profile,
	}, nil
}

// Close flushes and releases the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.disk.Close()
}

// Profile returns the engine's feature profile.
func (db *DB) Profile() Profile { return db.profile }

// Catalog exposes table metadata (used by tests and the loader).
func (db *DB) Catalog() *table.Catalog { return db.cat }

// Pool exposes the buffer pool (stats, capacity).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// Stats snapshots engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		Statements:        db.stmts.Load(),
		ParsePlanDur:      time.Duration(db.parseDurNs.Load()),
		ExecDur:           time.Duration(db.execDurNs.Load()),
		SessionsOpened:    db.sessionSeq.Load(),
		ActiveSessions:    db.sessionsOpen.Load(),
		SessionStatements: db.sessionStmts.Load(),
		Pool:              db.pool.Stats(),
		IO:                db.disk.Stats(),
	}
}

// ResetStats zeroes statement and buffer counters (between bench phases).
func (db *DB) ResetStats() {
	db.stmts.Store(0)
	db.parseDurNs.Store(0)
	db.execDurNs.Store(0)
	db.sessionStmts.Store(0)
	db.pool.ResetStats()
}

// Result is the SQLCA-style outcome of a mutating statement.
type Result = exec.Result

// Rows is a fully materialized query result (result sets in the workload
// are tiny: frontier ids, minima, path links).
type Rows struct {
	Columns []string
	Data    []record.Row
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

func convertArgs(args []any) ([]record.Value, error) {
	out := make([]record.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = record.Value{Null: true}
		case int:
			out[i] = record.Int(int64(v))
		case int32:
			out[i] = record.Int(int64(v))
		case int64:
			out[i] = record.Int(v)
		case uint32:
			out[i] = record.Int(int64(v))
		case float64:
			out[i] = record.Float(v)
		case string:
			out[i] = record.Text(v)
		case bool:
			out[i] = record.Bool(v)
		case record.Value:
			out[i] = v
		default:
			return nil, fmt.Errorf("rdb: unsupported parameter type %T", a)
		}
	}
	return out, nil
}

func (db *DB) checkFeatures(st sql.Statement) error {
	switch s := st.(type) {
	case *sql.MergeStmt:
		if !db.profile.SupportsMerge {
			return fmt.Errorf("rdb: %s does not support MERGE", db.profile.Name)
		}
		if s.Source.Sub != nil && !db.profile.SupportsWindow && selectUsesWindow(s.Source.Sub) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	case *sql.SelectStmt:
		if !db.profile.SupportsWindow && selectUsesWindow(s) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	case *sql.InsertStmt:
		if s.Select != nil && !db.profile.SupportsWindow && selectUsesWindow(s.Select) {
			return fmt.Errorf("rdb: %s does not support window functions", db.profile.Name)
		}
	}
	return nil
}

func selectUsesWindow(st *sql.SelectStmt) bool {
	for _, it := range st.Items {
		if !it.Star && exprUsesWindow(it.Expr) {
			return true
		}
	}
	for _, fr := range st.From {
		if fr.Sub != nil && selectUsesWindow(fr.Sub) {
			return true
		}
	}
	return false
}

func exprUsesWindow(e sql.Expr) bool {
	switch ex := e.(type) {
	case *sql.FuncCall:
		if ex.Window != nil {
			return true
		}
		for _, a := range ex.Args {
			if exprUsesWindow(a) {
				return true
			}
		}
	case *sql.Binary:
		return exprUsesWindow(ex.L) || exprUsesWindow(ex.R)
	case *sql.Unary:
		return exprUsesWindow(ex.E)
	case *sql.Subquery:
		return selectUsesWindow(ex.Select)
	case *sql.Exists:
		return selectUsesWindow(ex.Select)
	}
	return false
}

// Exec parses, plans and runs one statement, returning the SQLCA-style
// affected-row count. Mutating statements take the exclusive latch, so an
// Exec drains concurrent readers before running and blocks new ones.
func (db *DB) Exec(query string, args ...any) (exec.Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return exec.Result{}, fmt.Errorf("rdb: database is closed")
	}
	params, err := convertArgs(args)
	if err != nil {
		return exec.Result{}, err
	}
	t0 := time.Now()
	st, nparams, err := sql.ParseStmt(query)
	if err != nil {
		return exec.Result{}, fmt.Errorf("rdb: %w\n  in: %s", err, query)
	}
	if nparams != len(params) {
		return exec.Result{}, fmt.Errorf("rdb: statement has %d placeholders, %d arguments bound\n  in: %s",
			nparams, len(params), query)
	}
	if err := db.checkFeatures(st); err != nil {
		return exec.Result{}, err
	}
	db.parseDurNs.Add(int64(time.Since(t0)))
	db.stmts.Add(1)
	ctx := &exec.Ctx{Params: params}
	t1 := time.Now()
	defer func() { db.execDurNs.Add(int64(time.Since(t1))) }()
	switch s := st.(type) {
	case *sql.CreateTableStmt:
		return exec.Result{}, db.planner.ExecCreateTable(s)
	case *sql.CreateIndexStmt:
		return exec.Result{}, db.planner.ExecCreateIndex(s)
	case *sql.DropTableStmt:
		return exec.Result{}, db.planner.ExecDropTable(s)
	case *sql.TruncateStmt:
		return db.planner.ExecTruncate(s)
	case *sql.InsertStmt:
		res, err := db.planner.ExecInsert(s, ctx)
		return res, wrapErr(err, query)
	case *sql.UpdateStmt:
		res, err := db.planner.ExecUpdate(s, ctx)
		return res, wrapErr(err, query)
	case *sql.DeleteStmt:
		res, err := db.planner.ExecDelete(s, ctx)
		return res, wrapErr(err, query)
	case *sql.MergeStmt:
		res, err := db.planner.ExecMerge(s, ctx)
		return res, wrapErr(err, query)
	case *sql.SelectStmt:
		return exec.Result{}, fmt.Errorf("rdb: use Query for SELECT")
	}
	return exec.Result{}, fmt.Errorf("rdb: unsupported statement %T", st)
}

func wrapErr(err error, query string) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w\n  in: %s", err, query)
}

// Query parses, plans and runs a SELECT, materializing the result. SELECTs
// take only the shared latch, so sessions can read concurrently.
func (db *DB) Query(query string, args ...any) (*Rows, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("rdb: database is closed")
	}
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	st, nparams, err := sql.ParseStmt(query)
	if err != nil {
		return nil, fmt.Errorf("rdb: %w\n  in: %s", err, query)
	}
	if nparams != len(params) {
		return nil, fmt.Errorf("rdb: statement has %d placeholders, %d arguments bound\n  in: %s",
			nparams, len(params), query)
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdb: Query requires a SELECT statement")
	}
	if err := db.checkFeatures(st); err != nil {
		return nil, err
	}
	plan, layout, err := db.planner.Select(sel)
	if err != nil {
		return nil, wrapErr(err, query)
	}
	db.parseDurNs.Add(int64(time.Since(t0)))
	db.stmts.Add(1)
	ctx := &exec.Ctx{Params: params}
	t1 := time.Now()
	rows, err := exec.RunPlanPublic(plan, ctx)
	db.execDurNs.Add(int64(time.Since(t1)))
	if err != nil {
		return nil, wrapErr(err, query)
	}
	cols := make([]string, len(layout.Cols))
	for i, c := range layout.Cols {
		cols[i] = c.Name
	}
	return &Rows{Columns: cols, Data: rows}, nil
}

// QueryInt runs a single-value query; null reports a NULL (or empty) result.
func (db *DB) QueryInt(query string, args ...any) (v int64, null bool, err error) {
	rows, err := db.Query(query, args...)
	if err != nil {
		return 0, false, err
	}
	if rows.Len() == 0 {
		return 0, true, nil
	}
	val := rows.Data[0][0]
	if val.Null {
		return 0, true, nil
	}
	if val.Typ != record.TInt {
		return 0, false, fmt.Errorf("rdb: expected INT result, got %s", val.Typ)
	}
	return val.I, false, nil
}
