package rdb

import (
	"container/list"
	"sync"

	"repro/internal/exec"
	"repro/internal/sql"
)

// The plan cache removes parse→plan from the statement hot path. The
// paper's FEM loops issue the same handful of statement shapes thousands
// of times per query with only the bound values changing; a 2011-era JDBC
// client amortized that through PreparedStatement, and the engine does the
// same transparently: every Exec/Query first consults a cache keyed by
// (SQL text, profile) whose entries are compiled plans tagged with the
// schema epoch they were built against.
//
// Invalidation is epoch-based: every DDL statement (CREATE/DROP/TRUNCATE,
// including LoadGraph's table rebuild) bumps the catalog epoch, and a
// cached plan from an older epoch is discarded on its next lookup instead
// of executing — a stale plan holds *table.Table handles that may point at
// dropped heapfiles. Entries themselves are immutable; executions clone
// the plan template (exec.Node.Clone), so concurrent readers can share one
// entry safely.

// planKind classifies a compiled statement.
type planKind int

const (
	planKindSelect planKind = iota
	planKindDML
	planKindDDL // dispatched directly, never cached
)

// cachedPlan is one compiled statement. Immutable after construction.
type cachedPlan struct {
	kind    planKind
	epoch   uint64 // schema epoch the plan was compiled against
	nparams int    // ? placeholders (validated against bound args)
	sel     *exec.PreparedSelect
	dml     *exec.PreparedDML
	stmt    sql.Statement // DDL only
	// locks is the sorted per-table lock set executions acquire (write
	// subsumes read); nil for DDL, which runs under the exclusive latch.
	locks []tableLockSpec
}

// planKey identifies a cache entry. The profile is part of the key because
// statement compilation is profile-dependent (MERGE and window-function
// availability): a plan compiled under DBMS-X must never answer for a
// PostgreSQL 9.0 text even if an embedding ever shared a cache.
type planKey struct {
	text    string
	profile string
}

// planCache is a bounded LRU of compiled plans. It carries its own latch:
// lookups happen under the DB's shared read latch, so any number of
// sessions may hit it concurrently.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   list.List // of *planElem, front = most recently used
	byKey map[planKey]*list.Element
}

type planElem struct {
	key planKey
	cp  *cachedPlan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, byKey: make(map[planKey]*list.Element)}
}

// get returns the cached plan for key if it exists and was compiled at the
// given epoch. stale reports that an entry existed but belonged to an older
// epoch (it is removed — the caller counts an invalidation).
func (c *planCache) get(key planKey, epoch uint64) (cp *cachedPlan, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	pe := el.Value.(*planElem)
	if pe.cp.epoch != epoch {
		c.lru.Remove(el)
		delete(c.byKey, key)
		return nil, true
	}
	c.lru.MoveToFront(el)
	return pe.cp, false
}

// put inserts (or replaces) a compiled plan, evicting the least recently
// used entries past capacity.
func (c *planCache) put(key planKey, cp *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planElem).cp = cp
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&planElem{key: key, cp: cp})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*planElem).key)
	}
}

// size reports the live entry count.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
