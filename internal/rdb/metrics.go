package rdb

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/storage"
)

// CollectMetrics implements obs.Collector: the storage-tier families of the
// /metrics page — statement throughput, plan cache, buffer pool (pool-wide
// and per shard), and physical I/O. Everything reads the same atomics that
// Stats() snapshots; a scrape costs one latch round per pool shard and
// nothing on the statement hot path.
func (db *DB) CollectMetrics(x *obs.Exporter) {
	st := db.Stats()

	x.Counter("spdb_sql_statements_total",
		"SQL statements executed (all sessions).", float64(st.Statements))
	x.Counter("spdb_sql_session_statements_total",
		"Statements issued through Session handles.", float64(st.SessionStatements))
	x.Counter("spdb_sql_parse_plan_seconds_total",
		"Cumulative parse+compile time (plan-cache misses only).", st.ParsePlanDur.Seconds())
	x.Counter("spdb_sql_exec_seconds_total",
		"Cumulative statement execution time.", st.ExecDur.Seconds())
	x.Counter("spdb_sessions_opened_total",
		"Session handles created since open.", float64(st.SessionsOpened))
	x.Gauge("spdb_sessions_active", "Session handles not yet closed.",
		float64(st.ActiveSessions))

	x.Counter("spdb_plan_cache_hits_total",
		"Statements that reused a compiled plan.", float64(st.PlanCacheHits))
	x.Counter("spdb_plan_cache_misses_total",
		"Statements that had to parse and compile.", float64(st.PlanCacheMisses))
	x.Counter("spdb_plan_cache_invalidations_total",
		"Cached plans discarded after a DDL schema-epoch bump.",
		float64(st.PlanCacheInvalidations))
	x.Gauge("spdb_plan_cache_entries", "Live plan cache entries.",
		float64(st.PlanCacheEntries))
	x.Counter("spdb_schema_epoch",
		"Catalog generation (bumped by every DDL statement).", float64(st.SchemaEpoch))

	// Pool-wide sums, then one labeled series per latch domain: a hot shard
	// (one page-id residue class absorbing the traffic) is invisible in the
	// sums but obvious side by side.
	pool := db.Pool()
	x.Gauge("spdb_bufferpool_capacity_pages", "Total frames across shards.",
		float64(pool.Capacity()))
	x.Gauge("spdb_bufferpool_shards", "Buffer pool latch domains.",
		float64(pool.Shards()))
	// Family-major order: the exposition format wants each family's series
	// consecutive, so iterate families outermost and shards inside.
	shards := pool.ShardStats()
	perShard := func(name, help string, get func(storage.PoolStats) uint64) {
		for i, ps := range shards {
			x.Counter(name, help, float64(get(ps)), obs.L("shard", strconv.Itoa(i)))
		}
	}
	perShard("spdb_bufferpool_hits_total",
		"Fetches answered from a resident frame, by shard.",
		func(ps storage.PoolStats) uint64 { return ps.Hits })
	perShard("spdb_bufferpool_misses_total",
		"Fetches that issued a physical read, by shard.",
		func(ps storage.PoolStats) uint64 { return ps.Misses })
	perShard("spdb_bufferpool_evictions_total",
		"Frames reclaimed by the clock sweep, by shard.",
		func(ps storage.PoolStats) uint64 { return ps.Evictions })
	perShard("spdb_bufferpool_flushes_total",
		"Dirty pages written back, by shard.",
		func(ps storage.PoolStats) uint64 { return ps.Flushes })
	perShard("spdb_bufferpool_fence_waits_total",
		"Fetches that parked on an in-flight victim write-back, by shard.",
		func(ps storage.PoolStats) uint64 { return ps.FenceWaits })

	x.Counter("spdb_disk_reads_total", "Physical page reads.", float64(st.IO.Reads))
	x.Counter("spdb_disk_writes_total", "Physical page writes.", float64(st.IO.Writes))
	x.Counter("spdb_disk_allocs_total", "Pages allocated on disk.", float64(st.IO.Allocs))
	x.Counter("spdb_disk_read_delay_seconds_total",
		"Simulated I/O latency charged to reads.", st.IO.ReadDelay.Seconds())
	x.Counter("spdb_disk_write_delay_seconds_total",
		"Simulated I/O latency charged to writes.", st.IO.WriteDelay.Seconds())
}
