package rdb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessionReads exercises the shared side of the DB latch:
// many sessions SELECT concurrently over one database, and their
// per-session counters fold into DBStats.
func TestConcurrentSessionReads(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	const rows = 200
	for i := 0; i < rows; i++ {
		if _, err := db.Exec("INSERT INTO t (k, v) VALUES (?, ?)", i, i*i); err != nil {
			t.Fatal(err)
		}
	}

	const (
		nSessions = 8
		nReads    = 25
	)
	base := db.Stats()
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		sessions[i] = db.Session()
	}
	if got := db.Stats().ActiveSessions; got != nSessions {
		t.Fatalf("active sessions: got %d, want %d", got, nSessions)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for r := 0; r < nReads; r++ {
				k := (i*nReads + r) % rows
				v, null, err := s.QueryInt("SELECT v FROM t WHERE k = ?", k)
				if err != nil {
					errs <- err
					return
				}
				if null || v != int64(k*k) {
					errs <- fmt.Errorf("session %d: k=%d got v=%d null=%v", i, k, v, null)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.Stats()
	if want := uint64(nSessions * nReads); st.SessionStatements != want {
		t.Errorf("session statements: got %d, want %d", st.SessionStatements, want)
	}
	if got := st.Statements - base.Statements; got != uint64(nSessions*nReads) {
		t.Errorf("db statements delta: got %d, want %d", got, nSessions*nReads)
	}
	for i, s := range sessions {
		ss := s.Stats()
		if ss.Statements != nReads || ss.Queries != nReads || ss.Execs != 0 {
			t.Errorf("session %d stats: %+v", i, ss)
		}
		if ss.LastUsed.IsZero() || ss.Busy <= 0 {
			t.Errorf("session %d: missing busy/last-used accounting: %+v", i, ss)
		}
		if err := s.Close(); err != nil {
			t.Errorf("close %d: %v", i, err)
		}
	}
	if got := db.Stats().ActiveSessions; got != 0 {
		t.Errorf("active sessions after close: %d", got)
	}
	if _, err := sessions[0].Query("SELECT v FROM t WHERE k = 0"); err == nil {
		t.Error("query on closed session must fail")
	}
	if st := db.Stats(); st.SessionsOpened != nSessions {
		t.Errorf("sessions opened: got %d, want %d", st.SessionsOpened, nSessions)
	}
}

// TestSessionMixedReadWrite interleaves one writing session with several
// readers: the RW latch must keep every read consistent (readers see a k=v*v
// invariant that each write statement preserves atomically).
func TestSessionMixedReadWrite(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO kv (k, v) VALUES (0, 0)"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	writer := db.Session()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writer.Close()
		for i := 1; i <= 50; i++ {
			if _, err := writer.Exec("UPDATE kv SET v = ? WHERE k = 0", i); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for i := 0; i < 50; i++ {
				v, null, err := s.QueryInt("SELECT v FROM kv WHERE k = 0")
				if err != nil {
					errs <- err
					return
				}
				if null || v < 0 || v > 50 {
					errs <- fmt.Errorf("reader saw inconsistent value v=%d null=%v", v, null)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
