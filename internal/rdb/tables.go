package rdb

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/sql"
)

// Per-statement table locking.
//
// The facade used to run every mutating statement under the exclusive side
// of db.mu, which serialized all DML — including the frontier/visited
// scribbling of concurrent read-only searches that write disjoint private
// scratch tables. Statement compilation now extracts the set of tables a
// plan reads and writes; execution takes db.mu shared (DDL still exclusive)
// plus per-table RW locks in a canonical order, so statements touching
// disjoint tables run fully in parallel while two writers of the same table
// still serialize.
//
// The lock order is global — db.mu first, then table locks sorted by name —
// which makes the scheme deadlock-free: no statement ever acquires a lower-
// ordered lock while holding a higher-ordered one.

// tableLockSpec names one table a compiled plan touches and the mode its
// execution needs. Specs are sorted by name with write subsuming read.
type tableLockSpec struct {
	name  string
	write bool
}

// stmtLockSpecs derives the sorted table-lock set for a parsed statement.
// DDL returns nil: schema changes run under the exclusive facade latch.
func stmtLockSpecs(st sql.Statement) []tableLockSpec {
	c := &tableSetCollector{mode: map[string]bool{}}
	switch s := st.(type) {
	case *sql.SelectStmt:
		c.selectStmt(s)
	case *sql.InsertStmt:
		c.add(s.Table, true)
		for _, row := range s.Rows {
			for _, e := range row {
				c.expr(e)
			}
		}
		if s.Select != nil {
			c.selectStmt(s.Select)
		}
	case *sql.UpdateStmt:
		c.add(s.Table, true)
		for _, set := range s.Sets {
			c.expr(set.Val)
		}
		if s.From != nil {
			c.tableRef(s.From)
		}
		c.expr(s.Where)
	case *sql.DeleteStmt:
		c.add(s.Table, true)
		c.expr(s.Where)
	case *sql.MergeStmt:
		c.add(s.Target, true)
		c.tableRef(s.Source)
		c.expr(s.On)
		for _, m := range s.Matched {
			c.expr(m.And)
			for _, set := range m.Sets {
				c.expr(set.Val)
			}
		}
		if nm := s.NotMatched; nm != nil {
			c.expr(nm.And)
			for _, v := range nm.Vals {
				c.expr(v)
			}
		}
	default:
		return nil
	}
	specs := make([]tableLockSpec, 0, len(c.mode))
	for name, write := range c.mode {
		specs = append(specs, tableLockSpec{name: name, write: write})
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].name < specs[j].name })
	return specs
}

// tableSetCollector accumulates table → needs-write-lock while walking a
// statement. Names are lowercased: the catalog is case-insensitive.
type tableSetCollector struct {
	mode map[string]bool
}

func (c *tableSetCollector) add(name string, write bool) {
	if name == "" {
		return
	}
	name = strings.ToLower(name)
	c.mode[name] = c.mode[name] || write
}

func (c *tableSetCollector) tableRef(fr *sql.TableRef) {
	if fr == nil {
		return
	}
	if fr.Sub != nil {
		c.selectStmt(fr.Sub)
		return
	}
	c.add(fr.Table, false)
}

func (c *tableSetCollector) selectStmt(s *sql.SelectStmt) {
	if s == nil {
		return
	}
	c.expr(s.Top)
	for _, it := range s.Items {
		if !it.Star {
			c.expr(it.Expr)
		}
	}
	for _, fr := range s.From {
		c.tableRef(fr)
	}
	c.expr(s.Where)
	for _, e := range s.GroupBy {
		c.expr(e)
	}
	c.expr(s.Having)
	for _, o := range s.OrderBy {
		c.expr(o.Expr)
	}
	c.expr(s.Limit)
}

func (c *tableSetCollector) expr(e sql.Expr) {
	switch ex := e.(type) {
	case *sql.Binary:
		c.expr(ex.L)
		c.expr(ex.R)
	case *sql.Unary:
		c.expr(ex.E)
	case *sql.FuncCall:
		for _, a := range ex.Args {
			c.expr(a)
		}
		if ex.Window != nil {
			for _, p := range ex.Window.PartitionBy {
				c.expr(p)
			}
			for _, o := range ex.Window.OrderBy {
				c.expr(o.Expr)
			}
		}
	case *sql.Subquery:
		c.selectStmt(ex.Select)
	case *sql.Exists:
		c.selectStmt(ex.Select)
	case *sql.InList:
		c.expr(ex.E)
		for _, it := range ex.Items {
			c.expr(it)
		}
	case *sql.IsNull:
		c.expr(ex.E)
	}
}

// tableLock returns (creating on first use) the RW lock for a table name.
// Entries are never deleted: scratch-table ids are recycled by the layer
// above, so the map stays bounded by the distinct names ever used.
func (db *DB) tableLock(name string) *sync.RWMutex {
	db.tlMu.Lock()
	l, ok := db.tlocks[name]
	if !ok {
		l = &sync.RWMutex{}
		db.tlocks[name] = l
	}
	db.tlMu.Unlock()
	return l
}

// lockPlanTables acquires the plan's table locks in canonical order and
// returns the matching release. Callers hold db.mu (shared).
func (db *DB) lockPlanTables(cp *cachedPlan) func() {
	specs := cp.locks
	if len(specs) == 0 {
		return func() {}
	}
	held := make([]*sync.RWMutex, len(specs))
	for i, sp := range specs {
		l := db.tableLock(sp.name)
		if sp.write {
			l.Lock()
		} else {
			l.RLock()
		}
		held[i] = l
	}
	return func() {
		for i := len(specs) - 1; i >= 0; i-- {
			if specs[i].write {
				held[i].Unlock()
			} else {
				held[i].RUnlock()
			}
		}
	}
}
