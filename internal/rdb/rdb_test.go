package rdb

import (
	"strings"
	"testing"

	"repro/internal/record"
)

func openDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, q string, args ...any) int64 {
	t.Helper()
	res, err := db.Exec(q, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res.RowsAffected
}

func mustQuery(t *testing.T, db *DB, q string, args ...any) *Rows {
	t.Helper()
	rows, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return rows
}

// seedPeople creates a small table used by many tests.
func seedPeople(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE people (id INT PRIMARY KEY, age INT, city TEXT, score FLOAT)")
	mustExec(t, db, `INSERT INTO people (id, age, city, score) VALUES
		(1, 30, 'berlin', 1.5), (2, 25, 'paris', 2.5), (3, 30, 'berlin', 3.5),
		(4, 40, 'tokyo', 4.5), (5, 25, 'paris', 0.5)`)
}

func TestCreateInsertSelect(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT id, age FROM people WHERE city = 'berlin' ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("expected 2 rows, got %d", rows.Len())
	}
	if rows.Data[0][0].I != 1 || rows.Data[1][0].I != 3 {
		t.Fatalf("wrong ids: %v", rows.Data)
	}
	if rows.Columns[0] != "id" || rows.Columns[1] != "age" {
		t.Fatalf("wrong column names: %v", rows.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT * FROM people WHERE id = 4")
	if rows.Len() != 1 || len(rows.Data[0]) != 4 {
		t.Fatalf("unexpected: %v", rows.Data)
	}
	if rows.Data[0][2].S != "tokyo" {
		t.Fatalf("wrong city: %v", rows.Data[0])
	}
}

func TestParams(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT id FROM people WHERE age = ? AND city = ?", 25, "paris")
	if rows.Len() != 2 {
		t.Fatalf("expected 2 rows, got %d", rows.Len())
	}
	if _, err := db.Query("SELECT id FROM people WHERE age = ?"); err == nil {
		t.Fatal("missing parameter should error")
	}
}

func TestOrderByDesc(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT id FROM people ORDER BY age DESC, id ASC")
	want := []int64{4, 1, 3, 2, 5}
	for i, w := range want {
		if rows.Data[i][0].I != w {
			t.Fatalf("row %d: got %d want %d (%v)", i, rows.Data[i][0].I, w, rows.Data)
		}
	}
}

func TestTopAndLimit(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT TOP 2 id FROM people ORDER BY id")
	if rows.Len() != 2 || rows.Data[0][0].I != 1 {
		t.Fatalf("TOP failed: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM people ORDER BY id DESC LIMIT 1")
	if rows.Len() != 1 || rows.Data[0][0].I != 5 {
		t.Fatalf("LIMIT failed: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT TOP ? id FROM people ORDER BY id", 3)
	if rows.Len() != 3 {
		t.Fatalf("parameterized TOP failed: %v", rows.Data)
	}
}

func TestDistinct(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT DISTINCT city FROM people ORDER BY city")
	if rows.Len() != 3 {
		t.Fatalf("expected 3 cities, got %v", rows.Data)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT id, age * 2 + 1 FROM people WHERE age / 5 = 5")
	if rows.Len() != 2 {
		t.Fatalf("expected the two 25-year-olds: %v", rows.Data)
	}
	if rows.Data[0][1].I != 51 {
		t.Fatalf("arithmetic wrong: %v", rows.Data[0])
	}
	rows = mustQuery(t, db, "SELECT id FROM people WHERE age <> 30 AND (city = 'paris' OR age >= 40) ORDER BY id")
	if rows.Len() != 3 {
		t.Fatalf("boolean logic wrong: %v", rows.Data)
	}
}

func TestBetweenAndIn(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT id FROM people WHERE age BETWEEN 26 AND 35 ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("BETWEEN wrong: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM people WHERE id IN (1, 3, 99) ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("IN wrong: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM people WHERE id NOT IN (1, 2, 3, 4) ORDER BY id")
	if rows.Len() != 1 || rows.Data[0][0].I != 5 {
		t.Fatalf("NOT IN wrong: %v", rows.Data)
	}
}

func TestNullHandling(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE nt (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO nt (id, v) VALUES (1, 10), (2, NULL), (3, 30)")
	rows := mustQuery(t, db, "SELECT id FROM nt WHERE v IS NULL")
	if rows.Len() != 1 || rows.Data[0][0].I != 2 {
		t.Fatalf("IS NULL wrong: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM nt WHERE v IS NOT NULL ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("IS NOT NULL wrong: %v", rows.Data)
	}
	// NULL comparisons are UNKNOWN -> excluded.
	rows = mustQuery(t, db, "SELECT id FROM nt WHERE v > 0")
	if rows.Len() != 2 {
		t.Fatalf("NULL comparison should exclude: %v", rows.Data)
	}
	// COUNT(v) skips NULLs, COUNT(*) does not.
	rows = mustQuery(t, db, "SELECT COUNT(v), COUNT(*) FROM nt")
	if rows.Data[0][0].I != 2 || rows.Data[0][1].I != 3 {
		t.Fatalf("COUNT null semantics wrong: %v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db, "SELECT MIN(age), MAX(age), SUM(age), COUNT(*), AVG(age) FROM people")
	r := rows.Data[0]
	if r[0].I != 25 || r[1].I != 40 || r[2].I != 150 || r[3].I != 5 {
		t.Fatalf("aggregates wrong: %v", r)
	}
	if r[4].F != 30.0 {
		t.Fatalf("AVG wrong: %v", r[4])
	}
}

func TestGroupBy(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db,
		"SELECT city, COUNT(*), MIN(age) FROM people GROUP BY city ORDER BY city")
	if rows.Len() != 3 {
		t.Fatalf("expected 3 groups: %v", rows.Data)
	}
	if rows.Data[0][0].S != "berlin" || rows.Data[0][1].I != 2 || rows.Data[0][2].I != 30 {
		t.Fatalf("berlin group wrong: %v", rows.Data[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db,
		"SELECT city, COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY city")
	if rows.Len() != 2 {
		t.Fatalf("HAVING wrong: %v", rows.Data)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE e (v INT)")
	rows := mustQuery(t, db, "SELECT MIN(v), COUNT(*) FROM e")
	if rows.Len() != 1 {
		t.Fatalf("global aggregate over empty input must yield one row: %v", rows.Data)
	}
	if !rows.Data[0][0].Null {
		t.Fatalf("MIN of nothing must be NULL: %v", rows.Data[0])
	}
	if rows.Data[0][1].I != 0 {
		t.Fatalf("COUNT of nothing must be 0: %v", rows.Data[0])
	}
	// With GROUP BY: no rows at all.
	rows = mustQuery(t, db, "SELECT v, COUNT(*) FROM e GROUP BY v")
	if rows.Len() != 0 {
		t.Fatalf("grouped aggregate over empty input must be empty: %v", rows.Data)
	}
}

func TestJoins(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	mustExec(t, db, "CREATE TABLE orders (oid INT PRIMARY KEY, pid INT, amount INT)")
	mustExec(t, db, "INSERT INTO orders (oid, pid, amount) VALUES (10, 1, 100), (11, 1, 150), (12, 3, 50), (13, 99, 1)")
	// Comma join with equality (index-nested-loop into people PK).
	rows := mustQuery(t, db,
		"SELECT p.id, o.amount FROM orders o, people p WHERE p.id = o.pid ORDER BY o.oid")
	if rows.Len() != 3 {
		t.Fatalf("join wrong: %v", rows.Data)
	}
	// Explicit JOIN ... ON syntax.
	rows = mustQuery(t, db,
		"SELECT p.id, o.amount FROM orders o JOIN people p ON p.id = o.pid ORDER BY o.oid")
	if rows.Len() != 3 {
		t.Fatalf("JOIN..ON wrong: %v", rows.Data)
	}
	// Aggregation over a join.
	rows = mustQuery(t, db,
		"SELECT p.id, SUM(o.amount) FROM orders o, people p WHERE p.id = o.pid GROUP BY p.id ORDER BY p.id")
	if rows.Len() != 2 || rows.Data[0][1].I != 250 {
		t.Fatalf("join aggregate wrong: %v", rows.Data)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE a (x INT PRIMARY KEY)")
	mustExec(t, db, "CREATE TABLE b (x INT, y INT)")
	mustExec(t, db, "CREATE TABLE c (y INT PRIMARY KEY, z TEXT)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b (x, y) VALUES (1, 10), (2, 20), (2, 10)")
	mustExec(t, db, "INSERT INTO c (y, z) VALUES (10, 'ten'), (20, 'twenty')")
	rows := mustQuery(t, db,
		"SELECT a.x, c.z FROM a, b, c WHERE a.x = b.x AND b.y = c.y ORDER BY a.x, c.z")
	if rows.Len() != 3 {
		t.Fatalf("3-way join wrong: %v", rows.Data)
	}
	if rows.Data[0][1].S != "ten" {
		t.Fatalf("3-way join content wrong: %v", rows.Data)
	}
}

func TestHashJoinWithoutIndex(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE l (k INT, v INT)")
	mustExec(t, db, "CREATE TABLE r (k INT, w INT)")
	mustExec(t, db, "INSERT INTO l (k, v) VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, db, "INSERT INTO r (k, w) VALUES (2, 200), (3, 300), (4, 400)")
	rows := mustQuery(t, db, "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY l.v")
	if rows.Len() != 2 || rows.Data[0][0].I != 20 || rows.Data[0][1].I != 200 {
		t.Fatalf("hash join wrong: %v", rows.Data)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db,
		"SELECT id FROM people WHERE age = (SELECT MIN(age) FROM people) ORDER BY id")
	if rows.Len() != 2 || rows.Data[0][0].I != 2 {
		t.Fatalf("scalar subquery wrong: %v", rows.Data)
	}
	// Multi-row scalar subquery is an error.
	if _, err := db.Query("SELECT id FROM people WHERE age = (SELECT age FROM people)"); err == nil {
		t.Fatal("multi-row scalar subquery should error")
	}
}

func TestExistsCorrelated(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	mustExec(t, db, "CREATE TABLE vip (id INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO vip (id) VALUES (1), (4)")
	rows := mustQuery(t, db,
		"SELECT p.id FROM people p WHERE EXISTS (SELECT id FROM vip v WHERE v.id = p.id) ORDER BY p.id")
	if rows.Len() != 2 || rows.Data[1][0].I != 4 {
		t.Fatalf("EXISTS wrong: %v", rows.Data)
	}
	rows = mustQuery(t, db,
		"SELECT p.id FROM people p WHERE NOT EXISTS (SELECT id FROM vip v WHERE v.id = p.id) ORDER BY p.id")
	if rows.Len() != 3 || rows.Data[0][0].I != 2 {
		t.Fatalf("NOT EXISTS wrong: %v", rows.Data)
	}
}

func TestWindowRowNumber(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db,
		"SELECT id, ROW_NUMBER() OVER (PARTITION BY city ORDER BY score DESC) FROM people ORDER BY id")
	// berlin: id3 (3.5) rn1, id1 (1.5) rn2; paris: id2 rn1, id5 rn2; tokyo id4 rn1.
	want := map[int64]int64{1: 2, 2: 1, 3: 1, 4: 1, 5: 2}
	for _, r := range rows.Data {
		if r[1].I != want[r[0].I] {
			t.Fatalf("row_number wrong for id %d: got %d want %d", r[0].I, r[1].I, want[r[0].I])
		}
	}
}

func TestWindowInDerivedTable(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	// The paper's E-operator shape: keep only the top-ranked row per group.
	rows := mustQuery(t, db,
		`SELECT id, score FROM (
			SELECT id, score, ROW_NUMBER() OVER (PARTITION BY city ORDER BY score DESC)
			FROM people
		) tmp (id, score, rn) WHERE rn = 1 ORDER BY id`)
	if rows.Len() != 3 {
		t.Fatalf("expected one winner per city: %v", rows.Data)
	}
	if rows.Data[0][0].I != 2 || rows.Data[1][0].I != 3 || rows.Data[2][0].I != 4 {
		t.Fatalf("winners wrong: %v", rows.Data)
	}
}

func TestRankWindow(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE s (id INT PRIMARY KEY, g INT, v INT)")
	mustExec(t, db, "INSERT INTO s (id, g, v) VALUES (1, 1, 10), (2, 1, 10), (3, 1, 20), (4, 2, 5)")
	rows := mustQuery(t, db,
		"SELECT id, RANK() OVER (PARTITION BY g ORDER BY v) FROM s ORDER BY id")
	want := []int64{1, 1, 3, 1}
	for i, r := range rows.Data {
		if r[1].I != want[i] {
			t.Fatalf("rank wrong at %d: %v", i, rows.Data)
		}
	}
}

func TestUpdateBasic(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	n := mustExec(t, db, "UPDATE people SET age = age + 1 WHERE city = 'paris'")
	if n != 2 {
		t.Fatalf("expected 2 affected, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT age FROM people WHERE id = 2")
	if rows.Data[0][0].I != 26 {
		t.Fatalf("update failed: %v", rows.Data)
	}
}

func TestUpdateFrom(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	mustExec(t, db, "CREATE TABLE bumps (id INT PRIMARY KEY, delta INT)")
	mustExec(t, db, "INSERT INTO bumps (id, delta) VALUES (1, 5), (3, 7), (99, 1)")
	n := mustExec(t, db,
		"UPDATE people SET age = people.age + s.delta FROM bumps s WHERE people.id = s.id")
	if n != 2 {
		t.Fatalf("expected 2 affected, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT age FROM people WHERE id = 3")
	if rows.Data[0][0].I != 37 {
		t.Fatalf("update-from failed: %v", rows.Data)
	}
}

func TestDeleteAndTruncate(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	n := mustExec(t, db, "DELETE FROM people WHERE age = 25")
	if n != 2 {
		t.Fatalf("expected 2 deleted, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM people")
	if rows.Data[0][0].I != 3 {
		t.Fatalf("delete failed: %v", rows.Data)
	}
	n = mustExec(t, db, "DELETE FROM people")
	if n != 3 {
		t.Fatalf("truncating delete should report 3, got %d", n)
	}
	n = mustExec(t, db, "TRUNCATE TABLE people")
	if n != 0 {
		t.Fatalf("truncate of empty table should report 0, got %d", n)
	}
}

func TestInsertSelect(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	mustExec(t, db, "CREATE TABLE elders (id INT PRIMARY KEY, age INT)")
	n := mustExec(t, db, "INSERT INTO elders (id, age) SELECT id, age FROM people WHERE age >= 30")
	if n != 3 {
		t.Fatalf("expected 3 inserted, got %d", n)
	}
}

func TestMerge(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE tgt (k INT PRIMARY KEY, v INT)")
	mustExec(t, db, "CREATE TABLE src (k INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO tgt (k, v) VALUES (1, 100), (2, 50)")
	mustExec(t, db, "INSERT INTO src (k, v) VALUES (1, 10), (2, 90), (3, 30)")
	n := mustExec(t, db, `MERGE INTO tgt AS target USING src AS source ON (target.k = source.k)
		WHEN MATCHED AND target.v > source.v THEN UPDATE SET v = source.v
		WHEN NOT MATCHED THEN INSERT (k, v) VALUES (source.k, source.v)`)
	// k=1: 100>10 update; k=2: 50<90 no branch; k=3: insert. => 2 affected.
	if n != 2 {
		t.Fatalf("expected 2 affected, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT k, v FROM tgt ORDER BY k")
	want := [][2]int64{{1, 10}, {2, 50}, {3, 30}}
	for i, w := range want {
		if rows.Data[i][0].I != w[0] || rows.Data[i][1].I != w[1] {
			t.Fatalf("merge result wrong: %v", rows.Data)
		}
	}
}

func TestMergeDeleteBranch(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE tgt (k INT PRIMARY KEY, v INT)")
	mustExec(t, db, "CREATE TABLE src (k INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO tgt (k, v) VALUES (1, 1), (2, 2)")
	mustExec(t, db, "INSERT INTO src (k) VALUES (1)")
	n := mustExec(t, db, `MERGE INTO tgt USING src ON (tgt.k = src.k)
		WHEN MATCHED THEN DELETE`)
	if n != 1 {
		t.Fatalf("expected 1 affected, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM tgt")
	if rows.Data[0][0].I != 1 {
		t.Fatalf("merge delete failed: %v", rows.Data)
	}
}

func TestMergeDerivedSource(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE tgt (k INT PRIMARY KEY, v INT)")
	mustExec(t, db, "CREATE TABLE raw (k INT, v INT)")
	mustExec(t, db, "INSERT INTO raw (k, v) VALUES (1, 5), (1, 3), (2, 7)")
	n := mustExec(t, db, `MERGE INTO tgt AS target USING (
			SELECT k, MIN(v) FROM raw GROUP BY k
		) AS source (k, v) ON (target.k = source.k)
		WHEN MATCHED AND target.v > source.v THEN UPDATE SET v = source.v
		WHEN NOT MATCHED THEN INSERT (k, v) VALUES (source.k, source.v)`)
	if n != 2 {
		t.Fatalf("expected 2 affected, got %d", n)
	}
	rows := mustQuery(t, db, "SELECT v FROM tgt WHERE k = 1")
	if rows.Data[0][0].I != 3 {
		t.Fatalf("derived merge wrong: %v", rows.Data)
	}
}

func TestUniqueViolation(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE u (k INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO u (k) VALUES (1)")
	if _, err := db.Exec("INSERT INTO u (k) VALUES (1)"); err == nil {
		t.Fatal("duplicate PK should error")
	}
	mustExec(t, db, "CREATE TABLE u2 (k INT)")
	mustExec(t, db, "CREATE UNIQUE INDEX u2k ON u2 (k)")
	mustExec(t, db, "INSERT INTO u2 (k) VALUES (1)")
	if _, err := db.Exec("INSERT INTO u2 (k) VALUES (1)"); err == nil {
		t.Fatal("duplicate unique-index key should error")
	}
}

func TestProfileGating(t *testing.T) {
	db := openDB(t, Options{Profile: ProfilePostgreSQL9})
	mustExec(t, db, "CREATE TABLE t1 (k INT PRIMARY KEY)")
	mustExec(t, db, "CREATE TABLE t2 (k INT PRIMARY KEY)")
	_, err := db.Exec("MERGE INTO t1 USING t2 ON (t1.k = t2.k) WHEN NOT MATCHED THEN INSERT (k) VALUES (t2.k)")
	if err == nil || !strings.Contains(err.Error(), "MERGE") {
		t.Fatalf("PostgreSQL profile must reject MERGE, got %v", err)
	}
	// Window functions are fine on PostgreSQL 9.
	mustExec(t, db, "INSERT INTO t1 (k) VALUES (1), (2)")
	rows := mustQuery(t, db, "SELECT k, ROW_NUMBER() OVER (ORDER BY k) FROM t1")
	if rows.Len() != 2 {
		t.Fatalf("window on postgres failed: %v", rows.Data)
	}
	// A profile without window support rejects them.
	db2 := openDB(t, Options{Profile: Profile{Name: "old", SupportsMerge: false, SupportsWindow: false}})
	mustExec(t, db2, "CREATE TABLE t3 (k INT)")
	if _, err := db2.Query("SELECT ROW_NUMBER() OVER (ORDER BY k) FROM t3"); err == nil {
		t.Fatal("no-window profile must reject window functions")
	}
}

func TestDropTable(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE d (k INT)")
	mustExec(t, db, "DROP TABLE d")
	if _, err := db.Query("SELECT * FROM d"); err == nil {
		t.Fatal("query of dropped table should error")
	}
	if _, err := db.Exec("DROP TABLE d"); err == nil {
		t.Fatal("double drop should error")
	}
}

func TestQueryInt(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	v, null, err := db.QueryInt("SELECT MIN(age) FROM people WHERE city = ?", "tokyo")
	if err != nil || null || v != 40 {
		t.Fatalf("QueryInt: v=%d null=%v err=%v", v, null, err)
	}
	_, null, err = db.QueryInt("SELECT MIN(age) FROM people WHERE city = 'nowhere'")
	if err != nil || !null {
		t.Fatalf("QueryInt of empty aggregate should be NULL: null=%v err=%v", null, err)
	}
	_, null, err = db.QueryInt("SELECT id FROM people WHERE id = 99")
	if err != nil || !null {
		t.Fatalf("QueryInt of empty result should be NULL: null=%v err=%v", null, err)
	}
}

func TestStatsCounting(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE s (k INT PRIMARY KEY)")
	before := db.Stats().Statements
	mustExec(t, db, "INSERT INTO s (k) VALUES (1)")
	mustQuery(t, db, "SELECT k FROM s")
	after := db.Stats().Statements
	if after-before != 2 {
		t.Fatalf("expected 2 statements counted, got %d", after-before)
	}
	db.ResetStats()
	if db.Stats().Statements != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestExecRejectsSelect(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE s (k INT)")
	if _, err := db.Exec("SELECT k FROM s"); err == nil {
		t.Fatal("Exec of SELECT should error")
	}
	if _, err := db.Query("INSERT INTO s (k) VALUES (1)"); err == nil {
		t.Fatal("Query of INSERT should error")
	}
}

func TestClosedDB(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := db.Exec("CREATE TABLE x (k INT)"); err == nil {
		t.Fatal("exec on closed db should error")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close should be a no-op: %v", err)
	}
}

func TestUnsupportedParamType(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE s (k INT)")
	if _, err := db.Exec("INSERT INTO s (k) VALUES (?)", struct{}{}); err == nil {
		t.Fatal("struct parameter should error")
	}
	// record.Value passes through.
	mustExec(t, db, "INSERT INTO s (k) VALUES (?)", record.Int(7))
	rows := mustQuery(t, db, "SELECT k FROM s")
	if rows.Data[0][0].I != 7 {
		t.Fatalf("record.Value param wrong: %v", rows.Data)
	}
}

func TestInsertPartialColumns(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE p (a INT PRIMARY KEY, b INT, c TEXT)")
	mustExec(t, db, "INSERT INTO p (a) VALUES (1)")
	rows := mustQuery(t, db, "SELECT a, b, c FROM p")
	if !rows.Data[0][1].Null || !rows.Data[0][2].Null {
		t.Fatalf("unlisted columns must be NULL: %v", rows.Data)
	}
}

func TestFloatColumnCoercion(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE f (v FLOAT)")
	mustExec(t, db, "INSERT INTO f (v) VALUES (3)") // INT literal into FLOAT
	rows := mustQuery(t, db, "SELECT v + 0.5 FROM f")
	if rows.Data[0][0].F != 3.5 {
		t.Fatalf("coercion wrong: %v", rows.Data)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := openDB(t, Options{})
	rows := mustQuery(t, db, "SELECT 1 + 2, 'x'")
	if rows.Len() != 1 || rows.Data[0][0].I != 3 || rows.Data[0][1].S != "x" {
		t.Fatalf("constant select wrong: %v", rows.Data)
	}
}

func TestDerivedTable(t *testing.T) {
	db := openDB(t, Options{})
	seedPeople(t, db)
	rows := mustQuery(t, db,
		"SELECT c, n FROM (SELECT city, COUNT(*) FROM people GROUP BY city) d (c, n) WHERE n > 1 ORDER BY c")
	if rows.Len() != 2 || rows.Data[0][0].S != "berlin" {
		t.Fatalf("derived table wrong: %v", rows.Data)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE e (fid INT, tid INT, cost INT)")
	mustExec(t, db, "CREATE INDEX e_fid ON e (fid)")
	mustExec(t, db, "INSERT INTO e (fid, tid, cost) VALUES (1, 2, 10), (1, 3, 20), (2, 3, 30)")
	rows := mustQuery(t, db, "SELECT tid FROM e WHERE fid = 1 ORDER BY tid")
	if rows.Len() != 2 || rows.Data[1][0].I != 3 {
		t.Fatalf("secondary lookup wrong: %v", rows.Data)
	}
}

func TestClusteredRangeGrouping(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE e (fid INT, tid INT, cost INT)")
	mustExec(t, db, "CREATE CLUSTERED INDEX e_fid ON e (fid)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO e (fid, tid, cost) VALUES (?, ?, ?)", i%5, i, i)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM e WHERE fid = 3")
	if rows.Data[0][0].I != 10 {
		t.Fatalf("clustered probe wrong: %v", rows.Data)
	}
}

func TestFileBackedDB(t *testing.T) {
	path := t.TempDir() + "/test.db"
	db, err := Open(Options{Path: path, BufferPoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE big (k INT PRIMARY KEY, pad TEXT)")
	pad := strings.Repeat("x", 500)
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO big (k, pad) VALUES (?, ?)", i, pad)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM big")
	if rows.Data[0][0].I != 500 {
		t.Fatalf("file-backed count wrong: %v", rows.Data)
	}
	st := db.Stats()
	if st.Pool.Misses == 0 {
		t.Error("a 16-page pool over 500 padded rows must miss")
	}
	if st.IO.Writes == 0 {
		t.Error("evictions must write dirty pages")
	}
}

func TestParamCountValidation(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE pc (k INT)")
	if _, err := db.Exec("INSERT INTO pc (k) VALUES (?)", 1, 2); err == nil {
		t.Fatal("extra arguments must be rejected")
	}
	if _, err := db.Exec("INSERT INTO pc (k) VALUES (?)"); err == nil {
		t.Fatal("missing arguments must be rejected")
	}
	if _, err := db.Query("SELECT k FROM pc WHERE k = ?", 1, 2); err == nil {
		t.Fatal("Query must reject extra arguments")
	}
}
