package storage

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// IOStats counts physical page transfers performed by a disk manager.
type IOStats struct {
	Reads      uint64
	Writes     uint64
	Allocs     uint64
	ReadDelay  time.Duration // total simulated latency charged to reads
	WriteDelay time.Duration
}

// DiskManager abstracts the page-granular backing store. Two implementations
// exist: FileDiskManager (a real file, used by benchmarks so buffer-pool
// misses hit the OS) and MemDiskManager (byte slices, used by unit tests).
//
// Both implementations perform the physical transfer (and any simulated
// latency sleep) outside their bookkeeping mutex, so concurrent sessions
// reading disjoint pages overlap their I/O instead of queueing on the
// manager. This is what lets the parallel read path scale: with the transfer
// under the lock, N concurrent cold queries would serialize on the disk
// manager no matter how the layers above are latched.
type DiskManager interface {
	// ReadPage fills data with the content of page id.
	ReadPage(id PageID, data []byte) error
	// WritePage persists data as the content of page id.
	WritePage(id PageID, data []byte) error
	// AllocatePage reserves a fresh page id.
	AllocatePage() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns cumulative I/O counters.
	Stats() IOStats
	// SetLatency changes the simulated per-transfer latency. Benchmarks
	// use it to load and index at memory speed, then arm the seek cost for
	// the measured phase only.
	SetLatency(lat time.Duration)
	// Close releases the underlying resources.
	Close() error
}

// FileDiskManager stores pages in a single file at PageSize granularity.
// An optional Latency is charged on every physical read and write to
// simulate rotating-disk cost; the container's page cache would otherwise
// hide the buffer-size effects the paper measures (Fig 8(b), 9(g)).
type FileDiskManager struct {
	mu      sync.Mutex
	f       *os.File
	nPages  int
	stats   IOStats
	latency time.Duration
}

// NewFileDiskManager creates (truncating) the backing file at path.
func NewFileDiskManager(path string, latency time.Duration) (*FileDiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileDiskManager{f: f, latency: latency}, nil
}

// ReadPage implements DiskManager. The positional read happens outside the
// mutex: ReadAt is safe for concurrent use and the file only ever grows
// (AllocatePage extends it eagerly), so a page that passed the bounds check
// stays readable.
func (d *FileDiskManager) ReadPage(id PageID, data []byte) error {
	d.mu.Lock()
	if int(id) >= d.nPages {
		d.mu.Unlock()
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, d.nPages)
	}
	d.stats.Reads++
	lat := d.latency
	if lat > 0 {
		d.stats.ReadDelay += lat
	}
	d.mu.Unlock()
	if _, err := d.f.ReadAt(data[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return nil
}

// WritePage implements DiskManager. Like ReadPage, the positional write and
// the simulated latency happen outside the mutex so concurrent flushes of
// distinct pages overlap.
func (d *FileDiskManager) WritePage(id PageID, data []byte) error {
	d.mu.Lock()
	if int(id) >= d.nPages {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, d.nPages)
	}
	d.stats.Writes++
	lat := d.latency
	if lat > 0 {
		d.stats.WriteDelay += lat
	}
	d.mu.Unlock()
	if _, err := d.f.WriteAt(data[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return nil
}

// AllocatePage implements DiskManager. Newly allocated pages are extended
// lazily; the file grows on first write.
func (d *FileDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.nPages)
	d.nPages++
	d.stats.Allocs++
	// Extend the file eagerly so later ReadAt of an unwritten page succeeds.
	if err := d.f.Truncate(int64(d.nPages) * PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extend to %d pages: %w", d.nPages, err)
	}
	return id, nil
}

// NumPages implements DiskManager.
func (d *FileDiskManager) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nPages
}

// Stats implements DiskManager.
func (d *FileDiskManager) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetLatency implements DiskManager. In-flight transfers keep the latency
// they read at admission; the next transfer sees the new value.
func (d *FileDiskManager) SetLatency(lat time.Duration) {
	d.mu.Lock()
	d.latency = lat
	d.mu.Unlock()
}

// Close implements DiskManager.
func (d *FileDiskManager) Close() error { return d.f.Close() }

// MemDiskManager keeps pages in memory. It still counts I/O and honours a
// simulated latency, which lets tests exercise buffer-pool behaviour without
// touching the filesystem.
type MemDiskManager struct {
	mu      sync.Mutex
	pages   [][]byte
	stats   IOStats
	latency time.Duration
}

// NewMemDiskManager returns an empty in-memory disk.
func NewMemDiskManager(latency time.Duration) *MemDiskManager {
	return &MemDiskManager{latency: latency}
}

// ReadPage implements DiskManager. The copy stays under the mutex (page
// slices are shared state) but the simulated latency is charged after
// unlocking, so concurrent simulated reads overlap their sleeps exactly the
// way positional file reads overlap real transfers.
func (d *MemDiskManager) ReadPage(id PageID, data []byte) error {
	d.mu.Lock()
	if int(id) >= len(d.pages) {
		d.mu.Unlock()
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(d.pages))
	}
	copy(data[:PageSize], d.pages[id])
	d.stats.Reads++
	lat := d.latency
	if lat > 0 {
		d.stats.ReadDelay += lat
	}
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *MemDiskManager) WritePage(id PageID, data []byte) error {
	d.mu.Lock()
	if int(id) >= len(d.pages) {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(d.pages))
	}
	copy(d.pages[id], data[:PageSize])
	d.stats.Writes++
	lat := d.latency
	if lat > 0 {
		d.stats.WriteDelay += lat
	}
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return nil
}

// AllocatePage implements DiskManager.
func (d *MemDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	d.stats.Allocs++
	return id, nil
}

// NumPages implements DiskManager.
func (d *MemDiskManager) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Stats implements DiskManager.
func (d *MemDiskManager) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetLatency implements DiskManager.
func (d *MemDiskManager) SetLatency(lat time.Duration) {
	d.mu.Lock()
	d.latency = lat
	d.mu.Unlock()
}

// Close implements DiskManager.
func (d *MemDiskManager) Close() error { return nil }
