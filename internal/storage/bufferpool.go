package storage

import (
	"fmt"
	"sync"
)

// PoolStats counts buffer-pool activity. Hits+Misses equals the number of
// Fetch calls; Misses drive physical reads on the disk manager.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// maxShards bounds how far a pool fans out; 16 latches is plenty for the
// session counts a single embedded engine serves.
const maxShards = 16

// minFramesPerShard is the smallest shard worth creating: below this, clock
// eviction degenerates and small test pools would lose their exact-capacity
// pin semantics, so pools under 2*minFramesPerShard frames stay unsharded.
const minFramesPerShard = 64

// BufferPool caches a bounded number of pages over a DiskManager, using the
// clock (second-chance) replacement policy. All table and index access in
// the engine flows through a pool, which is what makes the paper's
// buffer-size experiments (Fig 8(b), 9(g)) meaningful.
//
// The pool is sharded by page id: each shard owns its own latch, frame
// array and clock hand, so concurrent read sessions fetching disjoint pages
// do not contend on a single mutex. Small pools (under 128 frames) keep a
// single shard, preserving the exact pin-capacity semantics the unit tests
// and the paper's tiny buffer-sweep configurations rely on.
type BufferPool struct {
	disk   DiskManager
	shards []*poolShard
}

// poolShard is one latch domain of the pool.
type poolShard struct {
	mu     sync.Mutex
	disk   DiskManager
	frames []*Page
	table  map[PageID]int // pageID -> frame index
	hand   int            // clock hand
	stats  PoolStats
}

// NewBufferPool creates a pool of capacity pages (at least 8) over disk.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	nshards := capacity / minFramesPerShard
	if nshards > maxShards {
		nshards = maxShards
	}
	if nshards < 1 {
		nshards = 1
	}
	bp := &BufferPool{disk: disk, shards: make([]*poolShard, nshards)}
	base, rem := capacity/nshards, capacity%nshards
	for i := range bp.shards {
		n := base
		if i < rem {
			n++
		}
		bp.shards[i] = &poolShard{
			disk:   disk,
			frames: make([]*Page, n),
			table:  make(map[PageID]int, n),
		}
	}
	return bp
}

// shardFor maps a page id to its latch domain.
func (bp *BufferPool) shardFor(id PageID) *poolShard {
	return bp.shards[int(id)%len(bp.shards)]
}

// Capacity returns the total number of frames across all shards.
func (bp *BufferPool) Capacity() int {
	c := 0
	for _, sh := range bp.shards {
		c += len(sh.frames)
	}
	return c
}

// Shards returns the number of latch domains (1 for small pools).
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Disk exposes the underlying disk manager (for stats).
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Stats returns cumulative counters summed over all shards.
func (bp *BufferPool) Stats() PoolStats {
	var s PoolStats
	for _, sh := range bp.shards {
		sh.mu.Lock()
		s.Hits += sh.stats.Hits
		s.Misses += sh.stats.Misses
		s.Evictions += sh.stats.Evictions
		s.Flushes += sh.stats.Flushes
		sh.mu.Unlock()
	}
	return s
}

// ResetStats zeroes the counters (used between benchmark phases).
func (bp *BufferPool) ResetStats() {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		sh.stats = PoolStats{}
		sh.mu.Unlock()
	}
}

// NewPage allocates a fresh page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := sh.victimLocked()
	if err != nil {
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true}
	pg.dirty = true // fresh page must be written at least once
	sh.frames[idx] = pg
	sh.table[id] = idx
	return pg, nil
}

// Fetch pins page id, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: fetch of invalid page")
	}
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if idx, ok := sh.table[id]; ok {
		pg := sh.frames[idx]
		pg.pinCount++
		pg.refbit = true
		sh.stats.Hits++
		sh.mu.Unlock()
		return pg, nil
	}
	sh.stats.Misses++
	idx, err := sh.victimLocked()
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true}
	sh.frames[idx] = pg
	sh.table[id] = idx
	// The read happens under the shard latch so no other session can see
	// the frame until its content is valid; only this shard blocks.
	err = sh.disk.ReadPage(id, pg.Data[:])
	if err != nil {
		// Unmap the never-initialized frame: leaving it would hand later
		// fetches zeroed bytes as a cache hit and leak the pin.
		delete(sh.table, id)
		sh.frames[idx] = nil
		sh.mu.Unlock()
		return nil, err
	}
	sh.mu.Unlock()
	return pg, nil
}

// Unpin releases one pin on page id; dirty marks the content modified.
func (bp *BufferPool) Unpin(pg *Page, dirty bool) {
	sh := bp.shardFor(pg.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if dirty {
		pg.dirty = true
	}
	if pg.pinCount > 0 {
		pg.pinCount--
	}
}

// victimLocked finds a free or evictable frame, flushing dirty victims.
func (sh *poolShard) victimLocked() (int, error) {
	n := len(sh.frames)
	for i := 0; i < n; i++ {
		if sh.frames[i] == nil {
			return i, nil
		}
	}
	// Clock sweep: up to 2 full rotations (first clears refbits).
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := sh.hand
		sh.hand = (sh.hand + 1) % n
		pg := sh.frames[idx]
		if pg.pinCount > 0 {
			continue
		}
		if pg.refbit {
			pg.refbit = false
			continue
		}
		if pg.dirty {
			if err := sh.disk.WritePage(pg.id, pg.Data[:]); err != nil {
				return 0, err
			}
			sh.stats.Flushes++
		}
		delete(sh.table, pg.id)
		sh.frames[idx] = nil
		sh.stats.Evictions++
		return idx, nil
	}
	return 0, fmt.Errorf("storage: buffer pool shard exhausted (%d frames, all pinned)", n)
}

// FlushAll writes every dirty page back to disk (pages stay cached).
func (bp *BufferPool) FlushAll() error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, pg := range sh.frames {
			if pg != nil && pg.dirty {
				if err := sh.disk.WritePage(pg.id, pg.Data[:]); err != nil {
					sh.mu.Unlock()
					return err
				}
				pg.dirty = false
				sh.stats.Flushes++
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// PinnedPages reports how many pages currently hold pins (test helper to
// catch pin leaks, which would otherwise exhaust the pool mid-benchmark).
func (bp *BufferPool) PinnedPages() int {
	c := 0
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, pg := range sh.frames {
			if pg != nil && pg.pinCount > 0 {
				c++
			}
		}
		sh.mu.Unlock()
	}
	return c
}
