package storage

import (
	"fmt"
	"sync"
)

// PoolStats counts buffer-pool activity. Hits+Misses equals the number of
// Fetch calls; Misses drive physical reads on the disk manager. FenceWaits
// counts fetches that parked on a write-back fence — a victim's dirty flush
// still in flight when its page was wanted back — which is the pool-level
// signal that the working set is thrashing across eviction.
type PoolStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Flushes    uint64
	FenceWaits uint64
}

// maxShards bounds how far a pool fans out; 16 latches is plenty for the
// session counts a single embedded engine serves.
const maxShards = 16

// minFramesPerShard is the smallest shard worth creating: below this, clock
// eviction degenerates and small test pools would lose their exact-capacity
// pin semantics, so pools under 2*minFramesPerShard frames stay unsharded.
const minFramesPerShard = 64

// BufferPool caches a bounded number of pages over a DiskManager, using the
// clock (second-chance) replacement policy. All table and index access in
// the engine flows through a pool, which is what makes the paper's
// buffer-size experiments (Fig 8(b), 9(g)) meaningful.
//
// The pool is sharded by page id: each shard owns its own latch, frame
// array and clock hand, so concurrent read sessions fetching disjoint pages
// do not contend on a single mutex. Small pools (under 128 frames) keep a
// single shard, preserving the exact pin-capacity semantics the unit tests
// and the paper's tiny buffer-sweep configurations rely on.
type BufferPool struct {
	disk   DiskManager
	shards []*poolShard
}

// poolShard is one latch domain of the pool.
type poolShard struct {
	mu     sync.Mutex
	disk   DiskManager
	frames []*Page
	table  map[PageID]int // pageID -> frame index
	hand   int            // clock hand
	stats  PoolStats

	// flushing fences dirty victims whose write-back is still in flight:
	// victimLocked registers the victim's id here (under the latch, before
	// the page leaves the table) and the evicting goroutine closes the
	// channel once the WritePage lands. A Fetch of that id must wait on the
	// fence instead of treating the lookup as a miss — reading the page from
	// disk while its flush is in flight could return the stale pre-flush
	// bytes and silently lose the victim's updates.
	flushing map[PageID]chan struct{}
}

// NewBufferPool creates a pool of capacity pages (at least 8) over disk.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	nshards := capacity / minFramesPerShard
	if nshards > maxShards {
		nshards = maxShards
	}
	if nshards < 1 {
		nshards = 1
	}
	bp := &BufferPool{disk: disk, shards: make([]*poolShard, nshards)}
	base, rem := capacity/nshards, capacity%nshards
	for i := range bp.shards {
		n := base
		if i < rem {
			n++
		}
		bp.shards[i] = &poolShard{
			disk:     disk,
			frames:   make([]*Page, n),
			table:    make(map[PageID]int, n),
			flushing: make(map[PageID]chan struct{}),
		}
	}
	return bp
}

// shardFor maps a page id to its latch domain.
func (bp *BufferPool) shardFor(id PageID) *poolShard {
	return bp.shards[int(id)%len(bp.shards)]
}

// Capacity returns the total number of frames across all shards.
func (bp *BufferPool) Capacity() int {
	c := 0
	for _, sh := range bp.shards {
		c += len(sh.frames)
	}
	return c
}

// Shards returns the number of latch domains (1 for small pools).
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Disk exposes the underlying disk manager (for stats).
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Stats returns cumulative counters summed over all shards.
func (bp *BufferPool) Stats() PoolStats {
	var s PoolStats
	for _, sh := range bp.shards {
		sh.mu.Lock()
		s.Hits += sh.stats.Hits
		s.Misses += sh.stats.Misses
		s.Evictions += sh.stats.Evictions
		s.Flushes += sh.stats.Flushes
		s.FenceWaits += sh.stats.FenceWaits
		sh.mu.Unlock()
	}
	return s
}

// ShardStats returns each latch domain's counters separately, in shard
// order. A hot shard (one page-id residue class absorbing most traffic)
// shows up here while the pool-wide sums still look healthy; /metrics
// exports one labeled series per shard from this.
func (bp *BufferPool) ShardStats() []PoolStats {
	out := make([]PoolStats, len(bp.shards))
	for i, sh := range bp.shards {
		sh.mu.Lock()
		out[i] = sh.stats
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters (used between benchmark phases).
func (bp *BufferPool) ResetStats() {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		sh.stats = PoolStats{}
		sh.mu.Unlock()
	}
}

// NewPage allocates a fresh page on disk and returns it pinned. A zeroed
// frame is valid content for a fresh page, so the new frame is installed
// immediately; only the dirty victim's flush (if any) happens outside the
// latch.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	sh := bp.shardFor(id)
	sh.mu.Lock()
	idx, victim, err := sh.victimLocked()
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true}
	pg.dirty = true // fresh page must be written at least once
	sh.frames[idx] = pg
	sh.table[id] = idx
	sh.mu.Unlock()
	if victim != nil {
		if err := sh.disk.WritePage(victim.id, victim.Data[:]); err != nil {
			// The victim's in-memory copy is the only one holding its
			// updates; undo the allocation's frame grab and keep the victim
			// resident (still dirty) instead of silently dropping it.
			sh.mu.Lock()
			sh.flushDoneLocked(victim.id)
			delete(sh.table, pg.id)
			victim.refbit = true
			sh.frames[idx] = victim
			sh.table[victim.id] = idx
			sh.mu.Unlock()
			return nil, err
		}
		sh.mu.Lock()
		sh.flushDoneLocked(victim.id)
		sh.mu.Unlock()
	}
	return pg, nil
}

// Fetch pins page id, reading it from disk on a miss. The physical read
// happens outside the shard latch: the loader installs a pinned frame with a
// loading fence, releases the latch, performs the read (plus the dirty
// victim's flush), then closes the fence. Concurrent fetchers of the same
// page wait on the fence rather than the latch, and fetchers of other pages
// in the shard are not blocked behind the I/O at all.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: fetch of invalid page")
	}
	sh := bp.shardFor(id)
	sh.mu.Lock()
	for {
		if idx, ok := sh.table[id]; ok {
			pg := sh.frames[idx]
			pg.pinCount++
			pg.refbit = true
			sh.stats.Hits++
			if ch := pg.loading; ch != nil {
				// Another session is reading this page in right now; the pin
				// taken above keeps the frame from being victimized while we
				// wait for its content to become valid.
				sh.mu.Unlock()
				<-ch
				sh.mu.Lock()
				if err := pg.loadErr; err != nil {
					pg.pinCount--
					sh.mu.Unlock()
					return nil, err
				}
				sh.mu.Unlock()
				return pg, nil
			}
			sh.mu.Unlock()
			return pg, nil
		}
		ch, inFlight := sh.flushing[id]
		if !inFlight {
			break
		}
		// The page was just evicted and its dirty write-back is still in
		// flight: a disk read issued now races the write and can observe the
		// stale pre-flush bytes. Wait for the flush fence, then re-check —
		// on flush success the read below sees the flushed bytes; on flush
		// failure the victim is reinstalled and the lookup becomes a hit.
		sh.stats.FenceWaits++
		sh.mu.Unlock()
		<-ch
		sh.mu.Lock()
	}
	sh.stats.Misses++
	idx, victim, err := sh.victimLocked()
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true, loading: make(chan struct{})}
	sh.frames[idx] = pg
	sh.table[id] = idx
	sh.mu.Unlock()

	// Physical I/O outside the latch. The victim (if dirty) was detached
	// with zero pins under the latch and its id fenced in sh.flushing, so
	// this goroutine owns the flush exclusively while concurrent fetchers of
	// the victim's id wait on the fence instead of racing the write-back.
	if victim != nil {
		if werr := sh.disk.WritePage(victim.id, victim.Data[:]); werr != nil {
			// The victim's in-memory copy is the only one holding its
			// updates; reinstall it (still dirty) in the frame we took and
			// fail this fetch instead of silently dropping the writes.
			sh.mu.Lock()
			sh.flushDoneLocked(victim.id)
			delete(sh.table, id)
			victim.refbit = true
			sh.frames[idx] = victim
			sh.table[victim.id] = idx
			pg.loadErr = werr
			ch := pg.loading
			pg.loading = nil
			close(ch)
			sh.mu.Unlock()
			return nil, werr
		}
		sh.mu.Lock()
		sh.flushDoneLocked(victim.id)
		sh.mu.Unlock()
	}
	ioErr := sh.disk.ReadPage(id, pg.Data[:])

	sh.mu.Lock()
	if ioErr != nil {
		// Unmap the never-initialized frame: leaving it would hand later
		// fetches zeroed bytes as a cache hit and leak the pin. Waiters
		// blocked on the fence observe loadErr and drop their own pins.
		pg.loadErr = ioErr
		delete(sh.table, id)
		sh.frames[idx] = nil
	}
	ch := pg.loading
	pg.loading = nil
	close(ch)
	sh.mu.Unlock()
	if ioErr != nil {
		return nil, ioErr
	}
	return pg, nil
}

// flushDoneLocked closes and clears the write-back fence for page id,
// releasing fetchers parked in Fetch's flushing check. Called with the shard
// latch held, whether the flush succeeded or failed.
func (sh *poolShard) flushDoneLocked(id PageID) {
	if ch, ok := sh.flushing[id]; ok {
		delete(sh.flushing, id)
		close(ch)
	}
}

// Unpin releases one pin on page id; dirty marks the content modified.
func (bp *BufferPool) Unpin(pg *Page, dirty bool) {
	sh := bp.shardFor(pg.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if dirty {
		pg.dirty = true
	}
	if pg.pinCount > 0 {
		pg.pinCount--
	}
}

// victimLocked finds a free or evictable frame. A dirty victim is detached
// (unmapped, unpinned, so this caller owns it exclusively) and returned for
// the caller to flush outside the shard latch, with its id registered in
// sh.flushing so fetchers of that page wait for the write-back (the caller
// must close the fence via flushDoneLocked); clean victims are simply
// dropped. Frames mid-load are never selected: their loaders hold a pin.
func (sh *poolShard) victimLocked() (idx int, victim *Page, err error) {
	n := len(sh.frames)
	for i := 0; i < n; i++ {
		if sh.frames[i] == nil {
			return i, nil, nil
		}
	}
	// Clock sweep: up to 2 full rotations (first clears refbits).
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := sh.hand
		sh.hand = (sh.hand + 1) % n
		pg := sh.frames[idx]
		if pg.pinCount > 0 {
			continue
		}
		if pg.refbit {
			pg.refbit = false
			continue
		}
		if pg.dirty {
			victim = pg
			sh.stats.Flushes++
			sh.flushing[pg.id] = make(chan struct{})
		}
		delete(sh.table, pg.id)
		sh.frames[idx] = nil
		sh.stats.Evictions++
		return idx, victim, nil
	}
	return 0, nil, fmt.Errorf("storage: buffer pool shard exhausted (%d frames, all pinned)", n)
}

// Discard drops page id from the pool without writing it back. The caller
// asserts nothing references the page anymore — a truncated table's
// abandoned chain — so its content, dirty or not, is dead; flushing it
// would charge eviction I/O for bytes nothing will ever read. Pinned
// frames and frames mid-load are left alone (their holders still expect
// valid content), and absent pages are a no-op: the disk copy may keep
// stale bytes, but page ids are allocated monotonically and an
// unreferenced id is never fetched again.
func (bp *BufferPool) Discard(id PageID) {
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.table[id]
	if !ok {
		return
	}
	pg := sh.frames[idx]
	if pg.pinCount > 0 || pg.loading != nil {
		return
	}
	delete(sh.table, id)
	sh.frames[idx] = nil
}

// FlushAll writes every dirty page back to disk (pages stay cached). Frames
// mid-load are skipped: their content is not valid yet and cannot be dirty.
func (bp *BufferPool) FlushAll() error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, pg := range sh.frames {
			if pg != nil && pg.dirty && pg.loading == nil {
				if err := sh.disk.WritePage(pg.id, pg.Data[:]); err != nil {
					sh.mu.Unlock()
					return err
				}
				pg.dirty = false
				sh.stats.Flushes++
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// EvictAll flushes every dirty page and drops all unpinned frames, so the
// next Fetch of any page is a physical read again. Loading a database warms
// the pool as a side effect; cold-read benchmarks call this between the
// load phase and the measured phase so that what they time is the miss
// path, not the residue of the loader. Pinned frames and frames mid-load
// stay resident. Flushes here bypass the disk manager's simulated latency
// accounting only in the sense that they are setup cost, not measured cost;
// callers should snapshot stats after EvictAll, not before.
func (bp *BufferPool) EvictAll() error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for i, pg := range sh.frames {
			if pg == nil || pg.loading != nil || pg.pinCount > 0 {
				continue
			}
			if pg.dirty {
				if err := sh.disk.WritePage(pg.id, pg.Data[:]); err != nil {
					sh.mu.Unlock()
					return err
				}
				sh.stats.Flushes++
			}
			delete(sh.table, pg.id)
			sh.frames[i] = nil
			sh.stats.Evictions++
		}
		sh.mu.Unlock()
	}
	return nil
}

// PinnedPages reports how many pages currently hold pins (test helper to
// catch pin leaks, which would otherwise exhaust the pool mid-benchmark).
func (bp *BufferPool) PinnedPages() int {
	c := 0
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, pg := range sh.frames {
			if pg != nil && pg.pinCount > 0 {
				c++
			}
		}
		sh.mu.Unlock()
	}
	return c
}
