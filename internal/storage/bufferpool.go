package storage

import (
	"fmt"
	"sync"
)

// PoolStats counts buffer-pool activity. Hits+Misses equals the number of
// Fetch calls; Misses drive physical reads on the disk manager.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// BufferPool caches a bounded number of pages over a DiskManager, using the
// clock (second-chance) replacement policy. All table and index access in
// the engine flows through a pool, which is what makes the paper's
// buffer-size experiments (Fig 8(b), 9(g)) meaningful.
//
// The pool is safe for concurrent use, though the query engine above it is
// single-statement-at-a-time, mirroring the paper's JDBC client.
type BufferPool struct {
	mu     sync.Mutex
	disk   DiskManager
	frames []*Page
	table  map[PageID]int // pageID -> frame index
	hand   int            // clock hand
	stats  PoolStats
}

// NewBufferPool creates a pool of capacity pages (at least 8) over disk.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	return &BufferPool{
		disk:   disk,
		frames: make([]*Page, capacity),
		table:  make(map[PageID]int, capacity),
	}
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return len(bp.frames) }

// Disk exposes the underlying disk manager (for stats).
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Stats returns cumulative counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (used between benchmark phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// NewPage allocates a fresh page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true}
	pg.dirty = true // fresh page must be written at least once
	bp.frames[idx] = pg
	bp.table[id] = idx
	return pg, nil
}

// Fetch pins page id, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: fetch of invalid page")
	}
	bp.mu.Lock()
	if idx, ok := bp.table[id]; ok {
		pg := bp.frames[idx]
		pg.pinCount++
		pg.refbit = true
		bp.stats.Hits++
		bp.mu.Unlock()
		return pg, nil
	}
	bp.stats.Misses++
	idx, err := bp.victimLocked()
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	pg := &Page{id: id, pinCount: 1, refbit: true}
	bp.frames[idx] = pg
	bp.table[id] = idx
	// Read outside the critical section would be nicer, but the engine is
	// effectively single-threaded per statement; keep the invariant simple.
	err = bp.disk.ReadPage(id, pg.Data[:])
	bp.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// Unpin releases one pin on page id; dirty marks the content modified.
func (bp *BufferPool) Unpin(pg *Page, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		pg.dirty = true
	}
	if pg.pinCount > 0 {
		pg.pinCount--
	}
}

// victimLocked finds a free or evictable frame, flushing dirty victims.
func (bp *BufferPool) victimLocked() (int, error) {
	n := len(bp.frames)
	for i := 0; i < n; i++ {
		if bp.frames[i] == nil {
			return i, nil
		}
	}
	// Clock sweep: up to 2 full rotations (first clears refbits).
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := bp.hand
		bp.hand = (bp.hand + 1) % n
		pg := bp.frames[idx]
		if pg.pinCount > 0 {
			continue
		}
		if pg.refbit {
			pg.refbit = false
			continue
		}
		if pg.dirty {
			if err := bp.disk.WritePage(pg.id, pg.Data[:]); err != nil {
				return 0, err
			}
			bp.stats.Flushes++
		}
		delete(bp.table, pg.id)
		bp.frames[idx] = nil
		bp.stats.Evictions++
		return idx, nil
	}
	return 0, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", n)
}

// FlushAll writes every dirty page back to disk (pages stay cached).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, pg := range bp.frames {
		if pg != nil && pg.dirty {
			if err := bp.disk.WritePage(pg.id, pg.Data[:]); err != nil {
				return err
			}
			pg.dirty = false
			bp.stats.Flushes++
		}
	}
	return nil
}

// PinnedPages reports how many pages currently hold pins (test helper to
// catch pin leaks, which would otherwise exhaust the pool mid-benchmark).
func (bp *BufferPool) PinnedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	c := 0
	for _, pg := range bp.frames {
		if pg != nil && pg.pinCount > 0 {
			c++
		}
	}
	return c
}
