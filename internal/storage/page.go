// Package storage implements the lowest layer of the embedded relational
// engine: fixed-size pages, a disk manager that persists them to a single
// file (or to memory for tests), and a buffer pool with clock eviction.
//
// The paper's experiments depend on a genuine disk/buffer split — buffer
// size sweeps (Fig 8(b), 9(g)) and clustered-index locality (Fig 8(c)) only
// make sense when tables live on pages that must be fetched through a
// bounded cache — so this layer is a real page store, not a map.
//
// Concurrency: the buffer pool is sharded by page id, one latch per shard,
// and physical I/O (disk reads, victim flushes, simulated latency) happens
// outside the latch behind a per-frame loading fence, so concurrent read
// sessions fetching disjoint pages overlap their misses as well as their
// hits. Page contents carry no latch of their own — the layers above
// guarantee that writers to a table are exclusive (the rdb facade's
// per-table RW locks) while any number of readers share pinned pages.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every on-disk page in bytes. 8 KiB matches common
// DBMS defaults (SQL Server, PostgreSQL) and gives edge tables realistic
// tuples-per-page density.
const PageSize = 8192

// PageID identifies a page within a disk manager's file. Page 0 is reserved
// as the metadata page; InvalidPageID marks "no page" (e.g. end of a B+tree
// leaf chain).
type PageID uint32

// InvalidPageID is the sentinel for "no page".
const InvalidPageID PageID = 0xFFFFFFFF

// Page is an in-buffer copy of one disk page plus bookkeeping used by the
// buffer pool. Callers must hold a pin (via BufferPool.Fetch/NewPage) while
// reading or writing Data.
type Page struct {
	id       PageID
	Data     [PageSize]byte
	dirty    bool
	pinCount int
	refbit   bool // clock reference bit

	// loading fences a frame whose content is still being read from disk:
	// the loader installs the frame (pinned) under the shard latch, performs
	// the physical read outside it, then closes the channel. Fetchers that
	// find a non-nil loading channel wait on it instead of the latch, then
	// consult loadErr. Both fields are written under the shard latch; the
	// channel close publishes Data to waiters.
	loading chan struct{}
	loadErr error
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// MarkDirty records that the page content changed and must be written back
// before eviction.
func (p *Page) MarkDirty() { p.dirty = true }

// Dirty reports whether the page has unsaved changes.
func (p *Page) Dirty() bool { return p.dirty }

// PinCount returns the number of outstanding pins (for tests/diagnostics).
func (p *Page) PinCount() int { return p.pinCount }

// PutU32 writes v at byte offset off in the page.
func (p *Page) PutU32(off int, v uint32) {
	binary.LittleEndian.PutUint32(p.Data[off:], v)
}

// U32 reads a uint32 at byte offset off.
func (p *Page) U32(off int) uint32 {
	return binary.LittleEndian.Uint32(p.Data[off:])
}

// PutU16 writes v at byte offset off.
func (p *Page) PutU16(off int, v uint16) {
	binary.LittleEndian.PutUint16(p.Data[off:], v)
}

// U16 reads a uint16 at byte offset off.
func (p *Page) U16(off int) uint16 {
	return binary.LittleEndian.Uint16(p.Data[off:])
}

// PutU64 writes v at byte offset off.
func (p *Page) PutU64(off int, v uint64) {
	binary.LittleEndian.PutUint64(p.Data[off:], v)
}

// U64 reads a uint64 at byte offset off.
func (p *Page) U64(off int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[off:])
}

func (p *Page) String() string {
	return fmt.Sprintf("Page(%d dirty=%v pins=%d)", p.id, p.dirty, p.pinCount)
}
