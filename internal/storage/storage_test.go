package storage

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestPageAccessors(t *testing.T) {
	var p Page
	p.PutU16(0, 0xBEEF)
	p.PutU32(2, 0xDEADBEEF)
	p.PutU64(6, 0x1122334455667788)
	if p.U16(0) != 0xBEEF || p.U32(2) != 0xDEADBEEF || p.U64(6) != 0x1122334455667788 {
		t.Fatal("page accessors broken")
	}
}

func testDiskManager(t *testing.T, d DiskManager) {
	t.Helper()
	id0, err := d.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := d.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	if id0 == id1 {
		t.Fatal("duplicate page ids")
	}
	buf := make([]byte, PageSize)
	buf[0], buf[PageSize-1] = 0xAA, 0x55
	if err := d.WritePage(id1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA || got[PageSize-1] != 0x55 {
		t.Fatal("readback mismatch")
	}
	if err := d.ReadPage(PageID(99), got); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := d.WritePage(PageID(99), got); err == nil {
		t.Fatal("write of unallocated page must fail")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if d.NumPages() != 2 {
		t.Fatalf("numpages: %d", d.NumPages())
	}
}

func TestMemDiskManager(t *testing.T) {
	testDiskManager(t, NewMemDiskManager(0))
}

func TestFileDiskManager(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := NewFileDiskManager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	testDiskManager(t, d)
}

func TestSimulatedLatency(t *testing.T) {
	d := NewMemDiskManager(2 * time.Millisecond)
	id, _ := d.AllocatePage()
	buf := make([]byte, PageSize)
	start := time.Now()
	_ = d.WritePage(id, buf)
	_ = d.ReadPage(id, buf)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("latency not applied")
	}
	st := d.Stats()
	if st.ReadDelay == 0 || st.WriteDelay == 0 {
		t.Fatalf("delay accounting: %+v", st)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	disk := NewMemDiskManager(0)
	bp := NewBufferPool(disk, 8)
	pg, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID()
	pg.Data[17] = 0x42
	bp.Unpin(pg, true)

	pg2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if pg2.Data[17] != 0x42 {
		t.Fatal("cached content lost")
	}
	bp.Unpin(pg2, false)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := bp.Fetch(InvalidPageID); err == nil {
		t.Fatal("fetch of invalid page must fail")
	}
}

func TestBufferPoolEvictionWriteback(t *testing.T) {
	disk := NewMemDiskManager(0)
	bp := NewBufferPool(disk, 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		pg, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data[0] = byte(i)
		ids = append(ids, pg.ID())
		bp.Unpin(pg, true)
	}
	// All 32 pages must read back correctly despite only 8 frames.
	for i, id := range ids {
		pg, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if pg.Data[0] != byte(i) {
			t.Fatalf("page %d content lost: %d", id, pg.Data[0])
		}
		bp.Unpin(pg, false)
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("expected evictions and flushes: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("expected misses: %+v", st)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	disk := NewMemDiskManager(0)
	bp := NewBufferPool(disk, 8)
	var pinned []*Page
	for i := 0; i < 8; i++ {
		pg, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, pg)
	}
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("exhausted pool must refuse")
	}
	if bp.PinnedPages() != 8 {
		t.Fatalf("pinned count: %d", bp.PinnedPages())
	}
	// Releasing one pin frees a frame.
	bp.Unpin(pinned[0], false)
	// The clock needs the refbit cleared before eviction; two chances are
	// built into victimLocked, so this must now succeed.
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	disk := NewMemDiskManager(0)
	bp := NewBufferPool(disk, 8)
	pg, _ := bp.NewPage()
	pg.Data[0] = 0x77
	id := pg.ID()
	bp.Unpin(pg, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := disk.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x77 {
		t.Fatal("flush did not persist")
	}
}

func TestBufferPoolMinimumCapacity(t *testing.T) {
	bp := NewBufferPool(NewMemDiskManager(0), 1)
	if bp.Capacity() < 8 {
		t.Fatalf("capacity floor: %d", bp.Capacity())
	}
}

// TestQuickPoolPersistence: any sequence of page writes through a tiny
// pool reads back intact (write-back + eviction correctness).
func TestQuickPoolPersistence(t *testing.T) {
	fn := func(writes []byte, seed int64) bool {
		disk := NewMemDiskManager(0)
		bp := NewBufferPool(disk, 8)
		rng := rand.New(rand.NewSource(seed))
		const nPages = 24
		var ids []PageID
		model := make(map[PageID]byte)
		for i := 0; i < nPages; i++ {
			pg, err := bp.NewPage()
			if err != nil {
				return false
			}
			ids = append(ids, pg.ID())
			model[pg.ID()] = 0
			bp.Unpin(pg, true)
		}
		for _, w := range writes {
			id := ids[rng.Intn(nPages)]
			pg, err := bp.Fetch(id)
			if err != nil {
				return false
			}
			pg.Data[100] = w
			model[id] = w
			bp.Unpin(pg, true)
		}
		for id, want := range model {
			pg, err := bp.Fetch(id)
			if err != nil {
				return false
			}
			ok := pg.Data[100] == want
			bp.Unpin(pg, false)
			if !ok {
				return false
			}
		}
		return bp.PinnedPages() == 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// gatedDisk blocks WritePage of one page id until the gate channel is
// closed, holding a victim write-back in flight so tests can race fetches
// against it deterministically.
type gatedDisk struct {
	DiskManager
	gateID  PageID
	gate    chan struct{} // closed to release the blocked write
	entered chan struct{} // signaled when a write reaches the gate
}

func (d *gatedDisk) WritePage(id PageID, data []byte) error {
	if id == d.gateID {
		d.entered <- struct{}{}
		<-d.gate
	}
	return d.DiskManager.WritePage(id, data)
}

// TestBufferPoolFetchWaitsForVictimFlush: a fetch of a page whose dirty
// eviction write-back is still in flight must park on the flush fence, not
// race the write with a disk read — the racy read returns the stale
// pre-flush bytes and silently loses the victim's updates.
func TestBufferPoolFetchWaitsForVictimFlush(t *testing.T) {
	gd := &gatedDisk{
		DiskManager: NewMemDiskManager(0),
		gateID:      InvalidPageID,
		gate:        make(chan struct{}),
		entered:     make(chan struct{}, 4),
	}
	bp := NewBufferPool(gd, 8)
	var ids []PageID
	for i := 0; i < 8; i++ {
		pg, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data[0] = 0xAB
		ids = append(ids, pg.ID())
		bp.Unpin(pg, true)
	}
	victimID := ids[0]
	gd.gateID = victimID

	// Trigger an eviction: the clock picks frame 0 (the victim), detaches it
	// dirty, and its write-back parks on the gate with the latch released.
	newDone := make(chan error, 1)
	go func() {
		pg, err := bp.NewPage()
		if err == nil {
			bp.Unpin(pg, false)
		}
		newDone <- err
	}()
	<-gd.entered

	got := make(chan byte, 1)
	fetchErr := make(chan error, 1)
	go func() {
		pg, err := bp.Fetch(victimID)
		if err != nil {
			fetchErr <- err
			return
		}
		b := pg.Data[0]
		bp.Unpin(pg, false)
		got <- b
	}()
	// The fetch must not complete while the flush is in flight; without the
	// fence it reads the zeroed disk copy and publishes it as valid.
	select {
	case b := <-got:
		t.Fatalf("fetch completed mid-flush with content %#x", b)
	case err := <-fetchErr:
		t.Fatalf("fetch failed mid-flush: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gd.gate)
	select {
	case b := <-got:
		if b != 0xAB {
			t.Fatalf("victim updates lost: fetched %#x, want 0xab", b)
		}
	case err := <-fetchErr:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("fetch never completed after flush release")
	}
	if err := <-newDone; err != nil {
		t.Fatal(err)
	}
}

// flakyDisk fails writes of one page id.
type flakyDisk struct {
	DiskManager
	failID PageID
}

var errInjectedWrite = errors.New("injected write failure")

func (d *flakyDisk) WritePage(id PageID, data []byte) error {
	if id == d.failID {
		return errInjectedWrite
	}
	return d.DiskManager.WritePage(id, data)
}

// TestBufferPoolVictimFlushFailureKeepsPage: when a detached victim's
// write-back fails, the victim must be reinstalled (still dirty) rather
// than dropped — the frame copy is the only one holding its updates.
func TestBufferPoolVictimFlushFailureKeepsPage(t *testing.T) {
	for _, mode := range []string{"fetch", "newpage"} {
		t.Run(mode, func(t *testing.T) {
			fd := &flakyDisk{DiskManager: NewMemDiskManager(0), failID: InvalidPageID}
			bp := NewBufferPool(fd, 8)
			var ids []PageID
			for i := 0; i < 8; i++ {
				pg, err := bp.NewPage()
				if err != nil {
					t.Fatal(err)
				}
				pg.Data[0] = 0xCD
				ids = append(ids, pg.ID())
				bp.Unpin(pg, true)
			}
			fd.failID = ids[0]

			var evictErr error
			if mode == "fetch" {
				extra, err := fd.DiskManager.AllocatePage()
				if err != nil {
					t.Fatal(err)
				}
				_, evictErr = bp.Fetch(extra)
			} else {
				_, evictErr = bp.NewPage()
			}
			if !errors.Is(evictErr, errInjectedWrite) {
				t.Fatalf("eviction over failing flush: err=%v, want injected failure", evictErr)
			}
			fd.failID = InvalidPageID

			// The victim must still be resident with its content intact; a
			// dropped victim would re-read the zeroed disk copy here.
			pg, err := bp.Fetch(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			if pg.Data[0] != 0xCD {
				t.Fatalf("victim content lost after failed flush: %#x", pg.Data[0])
			}
			bp.Unpin(pg, false)
			if bp.PinnedPages() != 0 {
				t.Fatalf("pin leak after failed eviction: %d", bp.PinnedPages())
			}
		})
	}
}

func TestFileDiskPersistAcrossManagers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := NewFileDiskManager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.AllocatePage()
	buf := make([]byte, PageSize)
	copy(buf, "hello disk")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// NewFileDiskManager truncates; verify the file contains data first by
	// reopening read-style through a fresh manager after manual alloc.
	d2, err := NewFileDiskManager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 0 {
		t.Fatal("fresh manager starts empty (truncate semantics)")
	}
}
