package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/oracle"
	"repro/internal/rdb"
)

// femSpec parameterizes the generic bi-directional FEM loop. The four
// bi-directional algorithms differ only in (i) the frontier-selection rule
// (the F-operator), (ii) the edge source (TEdges vs SegTable) and (iii)
// whether the lf/lb bounds participate in termination — exactly the axes
// §4 varies.
//
// Statement shapes are rendered once per query (the text is stable for the
// whole search — and across searches, so the engine's prepared-statement
// cache reuses the compiled plan); per-iteration values (the expansion
// counter k, the best known cost minCost) bind as ? parameters through the
// shape's args function.
type femSpec struct {
	name    string
	edgeFwd string
	edgeBwd string
	// frontier renders the F-operator sign update for a direction; the
	// returned shape's args function binds the 1-based expansion counter k
	// of that direction (used by BSEG's d2s <= k*lthd rule, bound as
	// "? * ?"). The statement must set sign=2 on the selected frontier and
	// report the frontier size as its affected count.
	frontier func(d direction) stmtShape
	// preFrontier, when set, renders a statement that runs (repeatedly,
	// until it affects nothing) before every frontier selection once a
	// path is known: ALT's settle-without-expand of frontier-minimum
	// candidates whose landmark lower bound proves they cannot improve the
	// best path, so provably-unhelpful tuples never enter the frontier.
	// The per-iteration minCost binds through the shape's args function.
	// Restricting the check to the current minimum matters for the work
	// metric: deeper candidates may never be selected before termination,
	// and settling those would be pure overhead.
	preFrontier func(d direction) stmtShape
	// trackL enables the lf+lb >= minCost termination (Dijkstra-family);
	// BBFS leaves bounds at zero and terminates by exhaustion.
	trackL bool
	prune  bool
	// smallerL picks the direction with the smaller frontier distance
	// (classic bi-directional Dijkstra) instead of the fewer-frontier rule
	// of §4.1. Node-at-a-time BDJ needs this: its frontier counts are
	// always 1, so the fewer-frontier rule would never switch direction.
	smallerL bool
}

// stmtShape is one prepared statement shape: stable text plus a binder for
// the per-iteration value (the expansion counter for frontiers, minCost for
// the ALT pre-frontier prune). args may be nil when the shape binds nothing.
type stmtShape struct {
	text string
	args func(v int64) []any
}

// bind returns the argument list for one execution.
func (s stmtShape) bind(v int64) []any {
	if s.args == nil {
		return nil
	}
	return s.args(v)
}

// The per-set statement texts of the bi-directional loop (biInit, resets,
// minima) live on scratchSet, rendered once at mint time; the frontier
// shapes below embed the set's visited-table name the same way. Texts are
// stable per (shape, scratch set), so prepared handles and cached plans
// recycle with the pool's bounded id space.

// specBDJ: bi-directional Dijkstra, one frontier node per expansion.
func specBDJ(sc *scratchSet) femSpec {
	return femSpec{
		name:    "BDJ",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction) stmtShape {
			return stmtShape{text: "UPDATE " + sc.visited + " SET " + d.sign + " = 2 WHERE " + d.sign +
				" = 0 AND nid = (SELECT TOP 1 nid FROM " + sc.visited + " WHERE " + d.sign +
				" = 0 AND " + d.dist + " = " + sc.minCandidate(d) + ")"}
		},
		trackL:   true,
		prune:    false, // pruning is introduced with the set variant (§4.1)
		smallerL: true,
	}
}

// specBSDJ: bi-directional set Dijkstra — all nodes at the minimal
// distance become the frontier together (§4.1's RDB-friendly batch rule).
func specBSDJ(sc *scratchSet) femSpec {
	return femSpec{
		name:    "BSDJ",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction) stmtShape {
			return stmtShape{text: "UPDATE " + sc.visited + " SET " + d.sign + " = 2 WHERE " + d.sign +
				" = 0 AND " + d.dist + " = " + sc.minCandidate(d)}
		},
		trackL: true,
		prune:  true,
	}
}

// specBBFS: bi-directional BFS — every candidate expands every round.
func specBBFS(sc *scratchSet) femSpec {
	return femSpec{
		name:    "BBFS",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction) stmtShape {
			return stmtShape{text: "UPDATE " + sc.visited + " SET " + d.sign + " = 2 WHERE " + d.sign + " = 0"}
		},
		trackL: false,
		prune:  true,
	}
}

// specBSEG: selective expansion over SegTable (Listing 4(1)): candidates
// within k*lthd expand together with the minimal one. k and lthd bind as
// two parameters (the arithmetic happens in the statement, "? * ?"), so
// the text never changes across iterations or thresholds.
func specBSEG(sc *scratchSet, lthd int64) femSpec {
	return femSpec{
		name:    "BSEG",
		edgeFwd: TblOutSegs,
		edgeBwd: TblInSegs,
		frontier: func(d direction) stmtShape {
			return stmtShape{
				text: "UPDATE " + sc.visited + " SET " + d.sign + " = 2 WHERE " + d.sign +
					" = 0 AND (" + d.dist + " <= ? * ? OR " + d.dist + " = " + sc.minCandidate(d) + ")",
				args: func(k int64) []any { return []any{k, lthd} },
			}
		},
		trackL: true,
		prune:  true,
	}
}

// specALT: the bi-directional set Dijkstra of §4.1 extended with ALT
// goal-directed pruning over the landmark oracle. Before each frontier
// selection (once some s-t path is known), candidates whose landmark lower
// bound proves every path through them is at least the best known cost are
// settled without expansion:
//
//	forward:  d2s(v) + max_l max(dout_l(t)-dout_l(v), din_l(v)-din_l(t)) >= minCost
//	backward: d2t(v) + max_l max(dout_l(v)-dout_l(s), din_l(s)-din_l(v)) >= minCost
//
// Both terms inside the max are triangle-inequality lower bounds on the
// remaining distance (dist(v,t) forward, dist(s,v) backward) valid on
// directed graphs; the two directions are two conjunct-level comparisons
// so no GREATEST() support is needed. Settling with the CURRENT tentative
// distance is sound because the M-operator reopens any settled node whose
// distance later improves (sets its sign back to 0), so a candidate is
// only permanently excluded once the bound holds for its exact distance —
// and then every s-t path through it costs at least minCost at prune time,
// which itself bounds the final answer from above.
func specALT(sc *scratchSet, s, t int64) femSpec {
	spec := specBSDJ(sc)
	spec.name = "ALT"
	spec.preFrontier = func(d direction) stmtShape {
		end := t
		boundFwd, boundBwd := "lt.dout - lv.dout", "lv.din - lt.din"
		if !d.forward {
			end = s
			boundFwd, boundBwd = "lv.dout - lt.dout", "lt.din - lv.din"
		}
		text := "UPDATE " + sc.visited + " SET " + d.sign + " = 1 WHERE " + d.sign +
			" = 0 AND " + d.dist + " = " + sc.minCandidate(d) + " AND (" +
			d.dist + " + (SELECT MAX(" + boundFwd + ") FROM " + oracle.TblLandmark + " lv, " +
			oracle.TblLandmark + " lt WHERE lv.lid = lt.lid AND lt.nid = ? AND lv.nid = " +
			sc.visited + ".nid) >= ? OR " +
			d.dist + " + (SELECT MAX(" + boundBwd + ") FROM " + oracle.TblLandmark + " lv, " +
			oracle.TblLandmark + " lt WHERE lv.lid = lt.lid AND lt.nid = ? AND lv.nid = " +
			sc.visited + ".nid) >= ?)"
		return stmtShape{
			text: text,
			args: func(minCost int64) []any { return []any{end, minCost, end, minCost} },
		}
	}
	return spec
}

// bidirectional runs the generic FEM loop of Algorithm 2: initialize
// TVisited with s and t, repeatedly pick the direction with the smaller
// frontier, run F (sign update), E+M (expansion), collect lf/lb/minCost,
// and stop when lf + lb >= minCost or either search exhausts (§4.1's
// termination; exhaustion of one side finalizes that side's distances, so
// minCost is then exact). Every statement shape is prepared once — the
// loop only binds fresh parameters.
func (e *Engine) bidirectional(ctx context.Context, sc *scratchSet, spec femSpec, s, t int64, budget int64) (Path, *QueryStats, error) {
	qs := &QueryStats{Algorithm: spec.name, budget: budget}
	start := time.Now()
	defer func() {
		qs.Total = time.Since(start)
	}()

	if err := e.resetVisited(ctx, qs, sc); err != nil {
		return Path{}, qs, err
	}
	if s == t {
		return Path{Found: true, Length: 0, Nodes: []int64{s}}, qs, nil
	}
	// Initialize with the two endpoints (line 1 of Algorithm 2); the
	// MaxDist/NoParent sentinels bind as parameters like everything else.
	if _, err := e.exec(ctx, qs, &qs.PE, nil, sc.biInit,
		s, s, MaxDist, NoParent, t, MaxDist, NoParent, t); err != nil {
		return Path{}, qs, err
	}

	fwd, bwd := fwdDir(), bwdDir()
	xpF := e.buildExpand(fwd, spec.edgeFwd, "q.f = 2", 0, spec.prune, sc)
	xpB := e.buildExpand(bwd, spec.edgeBwd, "q.b = 2", 0, spec.prune, sc)
	frontF, frontB := spec.frontier(fwd), spec.frontier(bwd)
	var preF, preB stmtShape
	if spec.preFrontier != nil {
		preF, preB = spec.preFrontier(fwd), spec.preFrontier(bwd)
	}

	var lf, lb int64
	nf, nb := int64(1), int64(1)
	candF, candB := true, true
	kf, kb := int64(0), int64(0)
	minCost := int64(4 * MaxDist)
	limit := e.maxIters()

	for iter := 0; ; iter++ {
		// Cooperative cancellation: one check per frontier iteration, so a
		// dead query releases the latch within a single expansion round.
		if err := rdb.ContextErr(ctx); err != nil {
			return Path{}, qs, fmt.Errorf("core: %s cancelled after %d iterations: %w", spec.name, iter, err)
		}
		if iter > limit {
			return Path{}, qs, fmt.Errorf("core: %s exceeded %d iterations (s=%d t=%d)", spec.name, limit, s, t)
		}
		qs.Iterations = iter + 1
		// Statistics collection: current best meeting cost (line 16).
		mc, null, err := e.queryInt(ctx, qs, &qs.SC, sc.biMinSum)
		if err != nil {
			return Path{}, qs, err
		}
		if !null {
			minCost = mc
		}
		pathFound := minCost < MaxDist
		if spec.trackL && StopCondition(lf, lb, minCost) {
			break
		}
		if !candF && !candB {
			break
		}
		var forward bool
		switch {
		case e.opts.AlternateDirections:
			forward = candF && (!candB || iter%2 == 0)
		case spec.smallerL:
			forward = candF && (!candB || lf <= lb)
		default:
			// The paper's §4.1 policy: expand the direction with fewer
			// frontier nodes to limit intermediate results.
			forward = candF && (!candB || nf <= nb)
		}
		var xp *expandSQL
		var front, pre stmtShape
		var reset, minQ string
		var lOther int64
		var k int64
		if forward {
			xp, front, pre, reset, minQ, lOther = xpF, frontF, preF, sc.biResetF, sc.biMinF, lb
			kf++
			k = kf
		} else {
			xp, front, pre, reset, minQ, lOther = xpB, frontB, preB, sc.biResetB, sc.biMinB, lf
			kb++
			k = kb
		}

		// ALT pruning: once a path is known, settle frontier-minimum
		// candidates the landmark bound proves unable to improve it, before
		// they can be selected. Repeats while whole minimum sets fall: each
		// settled row was next in line for an expansion. The loop is
		// bounded — every round either affects nothing (stop) or shrinks
		// the candidate pool.
		var pruned int64
		if spec.preFrontier != nil && pathFound {
			pargs := pre.bind(minCost)
			for {
				n, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, pre.text, pargs...)
				if err != nil {
					return Path{}, qs, err
				}
				if n == 0 {
					break
				}
				pruned += n
			}
			qs.PrunedRows += pruned
		}

		// F-operator: select and mark the frontier (Listing 4(1)).
		cnt, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, front.text, front.bind(k)...)
		if err != nil {
			return Path{}, qs, err
		}
		if cnt == 0 {
			if forward {
				kf--
			} else {
				kb--
			}
			if pruned > 0 {
				// Every candidate the frontier would have taken was settled
				// by the ALT bound this round; candidates may remain (the
				// pool only shrinks while no expansion runs, so this cannot
				// loop forever). Retry the direction choice from the top.
				continue
			}
			// This side is exhausted: its distances are final, so minCost
			// is exact; the loop re-checks at the top.
			if forward {
				candF = false
			} else {
				candB = false
			}
			continue
		}

		// E + M operators (Listing 4(2)).
		if _, err := e.runExpand(ctx, qs, xp, nil, lOther, minCost); err != nil {
			return Path{}, qs, err
		}
		if forward {
			qs.ForwardExpansions++
		} else {
			qs.BackwardExpansions++
		}

		// Mark the frontier as expanded (Listing 4(3)).
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, reset); err != nil {
			return Path{}, qs, err
		}

		// Collect the latest minimal distance (Listing 4(4)).
		l, lnull, err := e.queryInt(ctx, qs, &qs.SC, minQ)
		if err != nil {
			return Path{}, qs, err
		}
		if forward {
			if lnull {
				candF = false
			} else {
				lf = l
			}
			nf = cnt
		} else {
			if lnull {
				candB = false
			} else {
				lb = l
			}
			nb = cnt
		}
	}
	qs.Expansions = qs.ForwardExpansions + qs.BackwardExpansions

	vc, err := e.visitedCount(ctx, qs, sc)
	if err != nil {
		return Path{}, qs, err
	}
	qs.VisitedRows = vc

	if minCost >= MaxDist {
		return Path{Found: false}, qs, nil
	}
	nodes, err := e.recoverBidirectional(ctx, qs, sc, s, t, minCost, spec.edgeFwd != TblEdges)
	if err != nil {
		return Path{}, qs, err
	}
	return Path{Found: true, Length: minCost, Nodes: nodes}, qs, nil
}
