package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/oracle"
	"repro/internal/rdb"
)

// femSpec parameterizes the generic bi-directional FEM loop. The four
// bi-directional algorithms differ only in (i) the frontier-selection rule
// (the F-operator), (ii) the edge source (TEdges vs SegTable) and (iii)
// whether the lf/lb bounds participate in termination — exactly the axes
// §4 varies.
type femSpec struct {
	name    string
	edgeFwd string
	edgeBwd string
	// frontier renders the F-operator sign update for a direction; k is
	// the 1-based expansion counter of that direction (used by BSEG's
	// d2s <= k*lthd rule). The statement must set sign=2 on the selected
	// frontier and report the frontier size as its affected count.
	frontier func(d direction, k int) (string, []any)
	// preFrontier, when set, renders a statement that runs (repeatedly,
	// until it affects nothing) before every frontier selection once a
	// path is known: ALT's settle-without-expand of frontier-minimum
	// candidates whose landmark lower bound proves they cannot improve the
	// best path, so provably-unhelpful tuples never enter the frontier.
	// Restricting the check to the current minimum matters for the work
	// metric: deeper candidates may never be selected before termination,
	// and settling those would be pure overhead.
	preFrontier func(d direction, minCost int64) (string, []any)
	// trackL enables the lf+lb >= minCost termination (Dijkstra-family);
	// BBFS leaves bounds at zero and terminates by exhaustion.
	trackL bool
	prune  bool
	// smallerL picks the direction with the smaller frontier distance
	// (classic bi-directional Dijkstra) instead of the fewer-frontier rule
	// of §4.1. Node-at-a-time BDJ needs this: its frontier counts are
	// always 1, so the fewer-frontier rule would never switch direction.
	smallerL bool
}

// specBDJ: bi-directional Dijkstra, one frontier node per expansion.
func specBDJ() femSpec {
	return femSpec{
		name:    "BDJ",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction, _ int) (string, []any) {
			q := fmt.Sprintf(
				"UPDATE %[1]s SET %[2]s = 2 WHERE %[2]s = 0 AND nid = "+
					"(SELECT TOP 1 nid FROM %[1]s WHERE %[2]s = 0 AND %[3]s = "+
					"(SELECT MIN(%[3]s) FROM %[1]s WHERE %[2]s = 0))",
				TblVisited, d.sign, d.dist)
			return q, nil
		},
		trackL:   true,
		prune:    false, // pruning is introduced with the set variant (§4.1)
		smallerL: true,
	}
}

// specBSDJ: bi-directional set Dijkstra — all nodes at the minimal
// distance become the frontier together (§4.1's RDB-friendly batch rule).
func specBSDJ() femSpec {
	return femSpec{
		name:    "BSDJ",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction, _ int) (string, []any) {
			q := fmt.Sprintf(
				"UPDATE %[1]s SET %[2]s = 2 WHERE %[2]s = 0 AND %[3]s = "+
					"(SELECT MIN(%[3]s) FROM %[1]s WHERE %[2]s = 0)",
				TblVisited, d.sign, d.dist)
			return q, nil
		},
		trackL: true,
		prune:  true,
	}
}

// specBBFS: bi-directional BFS — every candidate expands every round.
func specBBFS() femSpec {
	return femSpec{
		name:    "BBFS",
		edgeFwd: TblEdges,
		edgeBwd: TblEdges,
		frontier: func(d direction, _ int) (string, []any) {
			q := fmt.Sprintf("UPDATE %[1]s SET %[2]s = 2 WHERE %[2]s = 0", TblVisited, d.sign)
			return q, nil
		},
		trackL: false,
		prune:  true,
	}
}

// specBSEG: selective expansion over SegTable (Listing 4(1)): candidates
// within k*lthd expand together with the minimal one.
func specBSEG(lthd int64) femSpec {
	return femSpec{
		name:    "BSEG",
		edgeFwd: TblOutSegs,
		edgeBwd: TblInSegs,
		frontier: func(d direction, k int) (string, []any) {
			q := fmt.Sprintf(
				"UPDATE %[1]s SET %[2]s = 2 WHERE %[2]s = 0 AND (%[3]s <= ? OR %[3]s = "+
					"(SELECT MIN(%[3]s) FROM %[1]s WHERE %[2]s = 0))",
				TblVisited, d.sign, d.dist)
			return q, []any{int64(k) * lthd}
		},
		trackL: true,
		prune:  true,
	}
}

// specALT: the bi-directional set Dijkstra of §4.1 extended with ALT
// goal-directed pruning over the landmark oracle. Before each frontier
// selection (once some s-t path is known), candidates whose landmark lower
// bound proves every path through them is at least the best known cost are
// settled without expansion:
//
//	forward:  d2s(v) + max_l max(dout_l(t)-dout_l(v), din_l(v)-din_l(t)) >= minCost
//	backward: d2t(v) + max_l max(dout_l(v)-dout_l(s), din_l(s)-din_l(v)) >= minCost
//
// Both terms inside the max are triangle-inequality lower bounds on the
// remaining distance (dist(v,t) forward, dist(s,v) backward) valid on
// directed graphs; the two directions are two conjunct-level comparisons
// so no GREATEST() support is needed. Settling with the CURRENT tentative
// distance is sound because the M-operator reopens any settled node whose
// distance later improves (sets its sign back to 0), so a candidate is
// only permanently excluded once the bound holds for its exact distance —
// and then every s-t path through it costs at least minCost at prune time,
// which itself bounds the final answer from above.
func specALT(s, t int64) femSpec {
	spec := specBSDJ()
	spec.name = "ALT"
	spec.preFrontier = func(d direction, minCost int64) (string, []any) {
		if d.forward {
			q := fmt.Sprintf(
				"UPDATE %[1]s SET %[2]s = 1 WHERE %[2]s = 0 AND %[3]s = "+
					"(SELECT MIN(%[3]s) FROM %[1]s WHERE %[2]s = 0) AND ("+
					"%[3]s + (SELECT MAX(lt.dout - lv.dout) FROM %[4]s lv, %[4]s lt "+
					"WHERE lv.lid = lt.lid AND lt.nid = ? AND lv.nid = %[1]s.nid) >= ? OR "+
					"%[3]s + (SELECT MAX(lv.din - lt.din) FROM %[4]s lv, %[4]s lt "+
					"WHERE lv.lid = lt.lid AND lt.nid = ? AND lv.nid = %[1]s.nid) >= ?)",
				TblVisited, d.sign, d.dist, oracle.TblLandmark)
			return q, []any{t, minCost, t, minCost}
		}
		q := fmt.Sprintf(
			"UPDATE %[1]s SET %[2]s = 1 WHERE %[2]s = 0 AND %[3]s = "+
				"(SELECT MIN(%[3]s) FROM %[1]s WHERE %[2]s = 0) AND ("+
				"%[3]s + (SELECT MAX(lv.dout - ls.dout) FROM %[4]s lv, %[4]s ls "+
				"WHERE lv.lid = ls.lid AND ls.nid = ? AND lv.nid = %[1]s.nid) >= ? OR "+
				"%[3]s + (SELECT MAX(ls.din - lv.din) FROM %[4]s lv, %[4]s ls "+
				"WHERE lv.lid = ls.lid AND ls.nid = ? AND lv.nid = %[1]s.nid) >= ?)",
			TblVisited, d.sign, d.dist, oracle.TblLandmark)
		return q, []any{s, minCost, s, minCost}
	}
	return spec
}

// bidirectional runs the generic FEM loop of Algorithm 2: initialize
// TVisited with s and t, repeatedly pick the direction with the smaller
// frontier, run F (sign update), E+M (expansion), collect lf/lb/minCost,
// and stop when lf + lb >= minCost or either search exhausts (§4.1's
// termination; exhaustion of one side finalizes that side's distances, so
// minCost is then exact).
func (e *Engine) bidirectional(ctx context.Context, spec femSpec, s, t int64, budget int64) (Path, *QueryStats, error) {
	qs := &QueryStats{Algorithm: spec.name, budget: budget}
	start := time.Now()
	defer func() {
		qs.Total = time.Since(start)
	}()

	if err := e.resetVisited(ctx, qs); err != nil {
		return Path{}, qs, err
	}
	if s == t {
		return Path{Found: true, Length: 0, Nodes: []int64{s}}, qs, nil
	}
	// Initialize with the two endpoints (line 1 of Algorithm 2).
	if _, err := e.exec(ctx, qs, &qs.PE, nil,
		fmt.Sprintf("INSERT INTO %s (nid, d2s, p2s, f, d2t, p2t, b) VALUES (?, 0, ?, 0, ?, %d, 1), (?, ?, %d, 1, 0, ?, 0)",
			TblVisited, NoParent, NoParent),
		s, s, MaxDist, t, MaxDist, t); err != nil {
		return Path{}, qs, err
	}

	fwd, bwd := fwdDir(), bwdDir()
	xpF := e.buildExpand(fwd, spec.edgeFwd, "q.f = 2", 0, spec.prune)
	xpB := e.buildExpand(bwd, spec.edgeBwd, "q.b = 2", 0, spec.prune)
	resetF := fmt.Sprintf("UPDATE %s SET f = 1 WHERE f = 2", TblVisited)
	resetB := fmt.Sprintf("UPDATE %s SET b = 1 WHERE b = 2", TblVisited)
	minSumQ := fmt.Sprintf("SELECT MIN(d2s + d2t) FROM %s", TblVisited)
	minFQ := fmt.Sprintf("SELECT MIN(d2s) FROM %s WHERE f = 0", TblVisited)
	minBQ := fmt.Sprintf("SELECT MIN(d2t) FROM %s WHERE b = 0", TblVisited)

	var lf, lb int64
	nf, nb := int64(1), int64(1)
	candF, candB := true, true
	kf, kb := 0, 0
	minCost := int64(4 * MaxDist)
	limit := e.maxIters()

	for iter := 0; ; iter++ {
		// Cooperative cancellation: one check per frontier iteration, so a
		// dead query releases the latch within a single expansion round.
		if err := rdb.ContextErr(ctx); err != nil {
			return Path{}, qs, fmt.Errorf("core: %s cancelled after %d iterations: %w", spec.name, iter, err)
		}
		if iter > limit {
			return Path{}, qs, fmt.Errorf("core: %s exceeded %d iterations (s=%d t=%d)", spec.name, limit, s, t)
		}
		qs.Iterations = iter + 1
		// Statistics collection: current best meeting cost (line 16).
		mc, null, err := e.queryInt(ctx, qs, &qs.SC, minSumQ)
		if err != nil {
			return Path{}, qs, err
		}
		if !null {
			minCost = mc
		}
		pathFound := minCost < MaxDist
		if spec.trackL && pathFound && lf+lb >= minCost {
			break
		}
		if !candF && !candB {
			break
		}
		var forward bool
		switch {
		case e.opts.AlternateDirections:
			forward = candF && (!candB || iter%2 == 0)
		case spec.smallerL:
			forward = candF && (!candB || lf <= lb)
		default:
			// The paper's §4.1 policy: expand the direction with fewer
			// frontier nodes to limit intermediate results.
			forward = candF && (!candB || nf <= nb)
		}
		var d direction
		var xp *expandSQL
		var reset, minQ string
		var lOther int64
		var k int
		if forward {
			d, xp, reset, minQ, lOther = fwd, xpF, resetF, minFQ, lb
			kf++
			k = kf
		} else {
			d, xp, reset, minQ, lOther = bwd, xpB, resetB, minBQ, lf
			kb++
			k = kb
		}

		// ALT pruning: once a path is known, settle frontier-minimum
		// candidates the landmark bound proves unable to improve it, before
		// they can be selected. Repeats while whole minimum sets fall: each
		// settled row was next in line for an expansion. The loop is
		// bounded — every round either affects nothing (stop) or shrinks
		// the candidate pool.
		var pruned int64
		if spec.preFrontier != nil && pathFound {
			pq, pargs := spec.preFrontier(d, minCost)
			for {
				n, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, pq, pargs...)
				if err != nil {
					return Path{}, qs, err
				}
				if n == 0 {
					break
				}
				pruned += n
			}
			qs.PrunedRows += pruned
		}

		// F-operator: select and mark the frontier (Listing 4(1)).
		fq, fargs := spec.frontier(d, k)
		cnt, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, fq, fargs...)
		if err != nil {
			return Path{}, qs, err
		}
		if cnt == 0 {
			if forward {
				kf--
			} else {
				kb--
			}
			if pruned > 0 {
				// Every candidate the frontier would have taken was settled
				// by the ALT bound this round; candidates may remain (the
				// pool only shrinks while no expansion runs, so this cannot
				// loop forever). Retry the direction choice from the top.
				continue
			}
			// This side is exhausted: its distances are final, so minCost
			// is exact; the loop re-checks at the top.
			if forward {
				candF = false
			} else {
				candB = false
			}
			continue
		}

		// E + M operators (Listing 4(2)).
		if _, err := e.runExpand(ctx, qs, xp, nil, lOther, minCost); err != nil {
			return Path{}, qs, err
		}
		if forward {
			qs.ForwardExpansions++
		} else {
			qs.BackwardExpansions++
		}

		// Mark the frontier as expanded (Listing 4(3)).
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, reset); err != nil {
			return Path{}, qs, err
		}

		// Collect the latest minimal distance (Listing 4(4)).
		l, lnull, err := e.queryInt(ctx, qs, &qs.SC, minQ)
		if err != nil {
			return Path{}, qs, err
		}
		if forward {
			if lnull {
				candF = false
			} else {
				lf = l
			}
			nf = cnt
		} else {
			if lnull {
				candB = false
			} else {
				lb = l
			}
			nb = cnt
		}
	}
	qs.Expansions = qs.ForwardExpansions + qs.BackwardExpansions

	vc, err := e.visitedCount(ctx, qs)
	if err != nil {
		return Path{}, qs, err
	}
	qs.VisitedRows = vc

	if minCost >= MaxDist {
		return Path{Found: false}, qs, nil
	}
	nodes, err := e.recoverBidirectional(ctx, qs, s, t, minCost, spec.edgeFwd != TblEdges)
	if err != nil {
		return Path{}, qs, err
	}
	return Path{Found: true, Length: minCost, Nodes: nodes}, qs, nil
}
