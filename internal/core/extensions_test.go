package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// kruskalWeight computes the minimal spanning forest weight in memory
// (reference for the FEM MST). Treats each directed edge as undirected.
func kruskalWeight(g *graph.Graph) (int64, int) {
	type ue struct{ u, v, w int64 }
	var edges []ue
	for _, e := range g.Edges {
		edges = append(edges, ue{e.From, e.To, e.Weight})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total int64
	merged := 0
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += e.w
			merged++
		}
	}
	return total, int(g.N) - merged // component count
}

// directedAsUndirected doubles every edge so FEM-MST (which expands
// out-edges) sees an undirected graph.
func directedAsUndirected(g *graph.Graph) *graph.Graph {
	var edges []graph.Edge
	for _, e := range g.Edges {
		edges = append(edges, e, graph.Edge{From: e.To, To: e.From, Weight: e.Weight})
	}
	out, err := graph.New(g.N, edges)
	if err != nil {
		panic(err)
	}
	return out
}

func TestMSTMatchesKruskal(t *testing.T) {
	base := graph.Random(40, 100, 21)
	g := directedAsUndirected(base)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	res, err := e.MinimumSpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	want, comps := kruskalWeight(g)
	if res.TotalWeight != want {
		t.Fatalf("MST weight %d, Kruskal %d", res.TotalWeight, want)
	}
	if res.Components != comps {
		t.Fatalf("components %d, want %d", res.Components, comps)
	}
	if len(res.Edges) != int(g.N)-comps {
		t.Fatalf("edge count %d, want %d", len(res.Edges), int(g.N)-comps)
	}
	// Every reported edge must exist with that weight.
	for _, me := range res.Edges {
		found := false
		g.OutEdges(me.From, func(v, w int64) {
			if v == me.To && w == me.Weight {
				found = true
			}
		})
		if !found {
			t.Fatalf("MST edge %v not in graph", me)
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	// Two components: 0-1-2 and 3-4.
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 2}, {From: 1, To: 0, Weight: 2},
		{From: 1, To: 2, Weight: 3}, {From: 2, To: 1, Weight: 3},
		{From: 3, To: 4, Weight: 7}, {From: 4, To: 3, Weight: 7},
	}
	g, _ := graph.New(5, edges)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	res, err := e.MinimumSpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 2 || res.TotalWeight != 12 || len(res.Edges) != 3 {
		t.Fatalf("forest wrong: %+v", res)
	}
}

func TestQuickMSTWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(10 + rng.Intn(25))
		g := directedAsUndirected(graph.Random(n, int(n)*2, seed))
		db, err := rdb.Open(rdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		e := NewEngine(db, Options{})
		if err := e.LoadGraph(g); err != nil {
			return false
		}
		res, err := e.MinimumSpanningForest()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, _ := kruskalWeight(g)
		return res.TotalWeight == want
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTOnPostgresProfile(t *testing.T) {
	g := directedAsUndirected(graph.Random(25, 60, 5))
	e := newTestEngine(t, g, rdb.Options{Profile: rdb.ProfilePostgreSQL9}, Options{})
	res, err := e.MinimumSpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := kruskalWeight(g)
	if res.TotalWeight != want {
		t.Fatalf("postgres-profile MST weight %d, want %d", res.TotalWeight, want)
	}
}

func TestReachable(t *testing.T) {
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1},
		{From: 4, To: 0, Weight: 1}, // 4 reaches all; nothing reaches 4
	}
	g, _ := graph.New(5, edges)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	r, err := e.Reachable(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable || r.Hops != 3 {
		t.Fatalf("0->3: %+v", r)
	}
	r, err = e.Reachable(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatalf("0->4 must be unreachable: %+v", r)
	}
	r, err = e.Reachable(2, 2)
	if err != nil || !r.Reachable || r.Hops != 0 {
		t.Fatalf("self: %+v %v", r, err)
	}
}

func TestQuickReachability(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(10 + rng.Intn(30))
		g := graph.Random(n, int(n)*2, seed)
		db, err := rdb.Open(rdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		e := NewEngine(db, Options{})
		if err := e.LoadGraph(g); err != nil {
			return false
		}
		for trial := 0; trial < 4; trial++ {
			s, tt := rng.Int63n(n), rng.Int63n(n)
			ref := graph.MDJ(g, s, tt)
			r, err := e.Reachable(s, tt)
			if err != nil || r.Reachable != ref.Found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// segTableSnapshot reads (fid,tid)->cost maps for comparison.
func segTableSnapshot(t *testing.T, e *Engine, tbl string) map[[2]int64]int64 {
	t.Helper()
	rows, err := e.DB().Query("SELECT fid, tid, cost FROM " + tbl)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[[2]int64]int64, rows.Len())
	for _, r := range rows.Data {
		out[[2]int64{r[0].I, r[1].I}] = r[2].I
	}
	return out
}

// TestIncrementalSegMaintenance: inserting edges one by one with
// InsertEdge must leave the SegTable with exactly the distances a from-
// scratch rebuild computes.
func TestIncrementalSegMaintenance(t *testing.T) {
	const lthd = 20
	rng := rand.New(rand.NewSource(77))
	base := graph.Random(30, 60, 13)

	// Engine A: build from the base graph, then insert extra edges
	// incrementally.
	eA := newTestEngine(t, base, rdb.Options{}, Options{})
	if _, err := eA.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	var extra []graph.Edge
	for i := 0; i < 15; i++ {
		u, v := rng.Int63n(base.N), rng.Int63n(base.N)
		if u == v {
			continue
		}
		w := 1 + rng.Int63n(30)
		extra = append(extra, graph.Edge{From: u, To: v, Weight: w})
		if _, err := eA.InsertEdge(u, v, w); err != nil {
			t.Fatalf("insert edge %d: %v", i, err)
		}
	}

	// Engine B: build from scratch over the final graph.
	full, err := graph.New(base.N, append(append([]graph.Edge(nil), base.Edges...), extra...))
	if err != nil {
		t.Fatal(err)
	}
	eB := newTestEngine(t, full, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}

	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, eA, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		for pair, want := range ref {
			got, ok := inc[pair]
			if !ok {
				t.Fatalf("%s: incremental misses pair %v (cost %d)", tbl, pair, want)
			}
			if got != want {
				t.Fatalf("%s: pair %v cost %d, rebuild says %d", tbl, pair, got, want)
			}
		}
		for pair, got := range inc {
			if _, ok := ref[pair]; !ok {
				t.Fatalf("%s: incremental has extra pair %v (cost %d)", tbl, pair, got)
			}
		}
	}

	// And BSEG queries on the maintained engine stay exact.
	for _, q := range graph.RandomQueries(full, 6, 3) {
		ref := graph.MDJ(full, q[0], q[1])
		p, _, err := shortestPath(eA, AlgBSEG, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if p.Found != ref.Found || (p.Found && p.Length != ref.Distance) {
			t.Fatalf("BSEG after maintenance: %+v vs %+v", p, ref)
		}
	}
}

// TestIncrementalMaintenancePostgresProfile covers the merge-free path.
func TestIncrementalMaintenancePostgresProfile(t *testing.T) {
	base := graph.Random(20, 40, 9)
	eA := newTestEngine(t, base, rdb.Options{Profile: rdb.ProfilePostgreSQL9}, Options{})
	if _, err := eA.BuildSegTable(15); err != nil {
		t.Fatal(err)
	}
	if _, err := eA.InsertEdge(0, 7, 2); err != nil {
		t.Fatal(err)
	}
	full, _ := graph.New(base.N, append(append([]graph.Edge(nil), base.Edges...),
		graph.Edge{From: 0, To: 7, Weight: 2}))
	eB := newTestEngine(t, full, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(15); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, eA, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		if len(inc) != len(ref) {
			t.Fatalf("%s: size %d vs %d", tbl, len(inc), len(ref))
		}
		for pair, want := range ref {
			if inc[pair] != want {
				t.Fatalf("%s: pair %v cost %d want %d", tbl, pair, inc[pair], want)
			}
		}
	}
}

// TestInsertEdgeWithoutSegTable: plain edge insertion works pre-index.
func TestInsertEdgeWithoutSegTable(t *testing.T) {
	g := graph.Random(10, 20, 4)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	before := e.Edges()
	if _, err := e.InsertEdge(0, 5, 3); err != nil {
		t.Fatal(err)
	}
	if e.Edges() != before+1 {
		t.Fatalf("edge count: %d", e.Edges())
	}
	if _, err := e.InsertEdge(0, 5, 0); err == nil {
		t.Fatal("zero weight must fail")
	}
	if _, err := e.InsertEdge(0, 99, 1); err == nil {
		t.Fatal("out of range must fail")
	}
}
