// Package core implements the paper's contribution: the relational FEM
// (Frontier-select / Expand / Merge) framework and the five shortest-path
// algorithms built on it — DJ (Algorithm 1), BDJ, BSDJ (bi-directional set
// Dijkstra), BBFS, and BSEG (Algorithm 2, selective expansion over the
// SegTable index) — plus the SegTable construction of §4.2. All graph work
// happens in SQL against rdb.DB; the Go side only holds scalar loop state,
// exactly like the paper's JDBC client.
package core

import (
	"fmt"
	"time"
)

// Phase identifies the paper's Fig 6(b) decomposition of a query.
type Phase int

// Query phases.
const (
	PhasePE  Phase = iota // path expansion (F/E/M statements)
	PhaseSC               // statistics collection (mins, counts, termination)
	PhaseFPR              // full path recovery
)

// QueryStats aggregates one shortest-path discovery, covering every metric
// the paper reports: expansions (Table 2/3), statement counts, visited-node
// counts (Table 3), phase split (Fig 6(b)) and operator split (Fig 6(c)).
type QueryStats struct {
	Algorithm string
	// Planner records the planner decision that selected this algorithm
	// (one of the core.Decision* labels; "hint" when the caller named the
	// algorithm, empty for engine-internal work like index builds).
	Planner string
	// Iterations counts main-loop rounds (frontier selections for the
	// bi-directional algorithms, node expansions for DJ) — how much of the
	// Options.MaxIters bound the query actually used.
	Iterations int
	// Expansions counts E-operator executions (forward + backward).
	Expansions         int
	ForwardExpansions  int
	BackwardExpansions int
	// Statements counts SQL statements issued.
	Statements int
	// TuplesAffected totals the affected-row counts of every write
	// statement the query issued (the SQLCA sums) — the work metric the
	// ALT-vs-BSDJ experiments compare.
	TuplesAffected int64
	// PrunedRows counts candidates settled without expansion by the ALT
	// landmark bound (zero for the other algorithms).
	PrunedRows int64
	// VisitedRows is |TVisited| when the search stops (search space).
	VisitedRows int
	// Phase timings (Fig 6(b)).
	PE, SC, FPR time.Duration
	// Operator timings (Fig 6(c); populated when SeparateOperators is on,
	// where F, E and M run as distinct statements).
	FOp, EOp, MOp time.Duration
	// Total wall time of the query.
	Total time.Duration
	// Stage timings of the serving path around the search itself (the
	// observability decomposition; see docs/ARCHITECTURE.md §Observability).
	// GateWait is the time spent queued on the admission gate (summed over
	// snapshot retries and the degraded exclusive fallback); PlanDur the
	// planner's wall time including its landmark-bound reads (summed over
	// replans). Both are zero for engine-internal work that bypasses
	// Engine.Query.
	GateWait time.Duration
	PlanDur  time.Duration
	// CacheHit reports that the answer came from the path cache: no SQL
	// ran, and every other counter is zero.
	CacheHit bool

	// budget is the per-query statement cap (QueryRequest.MaxStatements);
	// exec/queryInt enforce it. 0 = unlimited.
	budget int64
}

// SQLDur is the time the query spent executing SQL statements: the sum of
// the three phase accumulators (every statement charges exactly one). The
// remainder of Total is the Go-side frontier loop — scalar bookkeeping,
// direction choice, termination tests.
func (q *QueryStats) SQLDur() time.Duration { return q.PE + q.SC + q.FPR }

func (q *QueryStats) String() string {
	if q.CacheHit {
		return fmt.Sprintf("%s: cache hit", q.Algorithm)
	}
	pruned := ""
	if q.PrunedRows > 0 {
		pruned = fmt.Sprintf(" pruned=%d", q.PrunedRows)
	}
	return fmt.Sprintf("%s: exps=%d (f=%d b=%d) stmts=%d affected=%d visited=%d%s total=%v [PE=%v SC=%v FPR=%v]",
		q.Algorithm, q.Expansions, q.ForwardExpansions, q.BackwardExpansions,
		q.Statements, q.TuplesAffected, q.VisitedRows, pruned, q.Total.Round(time.Microsecond),
		q.PE.Round(time.Microsecond), q.SC.Round(time.Microsecond), q.FPR.Round(time.Microsecond))
}

// Path is a discovered shortest path.
type Path struct {
	Found  bool
	Length int64
	Nodes  []int64 // s..t inclusive; nil when !Found
}

// SegTableStats reports one SegTable construction (§5.3's metrics).
type SegTableStats struct {
	Lthd       int64
	OutSegs    int // rows in TOutSegs (pre-computed segments + edges)
	InSegs     int
	Iterations int
	Statements int
	BuildTime  time.Duration
}

func (s *SegTableStats) String() string {
	return fmt.Sprintf("SegTable(lthd=%d): out=%d in=%d iters=%d stmts=%d time=%v",
		s.Lthd, s.OutSegs, s.InSegs, s.Iterations, s.Statements, s.BuildTime.Round(time.Millisecond))
}

// EncodingNumber is the index-size metric of Fig 9(a)/9(b): the total
// number of encoded segment tuples.
func (s *SegTableStats) EncodingNumber() int { return s.OutSegs + s.InSegs }
