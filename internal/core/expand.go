package core

import (
	"context"
	"fmt"
)

// direction captures the column/table asymmetry between forward expansion
// (from s along outgoing edges, maintaining d2s/p2s/f) and backward
// expansion (from t along incoming edges, maintaining d2t/p2t/b) — §4.1's
// extension of TVisited.
type direction struct {
	forward bool
	dist    string // d2s / d2t
	par     string // p2s / p2t
	sign    string // f / b
	joinCol string // edge column matched against q.nid (fid fwd, tid bwd)
	newCol  string // edge column of the newly expanded node
}

func fwdDir() direction {
	return direction{forward: true, dist: "d2s", par: "p2s", sign: "f", joinCol: "fid", newCol: "tid"}
}

func bwdDir() direction {
	return direction{forward: false, dist: "d2t", par: "p2t", sign: "b", joinCol: "tid", newCol: "fid"}
}

// insertValues renders the 7-column TVisited insert list for a newly
// discovered node: its own direction gets (cost, parent, sign=0), the other
// direction the MaxDist sentinel with sign=1 (not a candidate until relaxed
// from that side). The sentinels bind as two ? parameters — MaxDist then
// NoParent, appended by runExpand — instead of rendered literals, so the
// statement text stays constant and cacheable by shape.
func (d direction) insertValues(prefix string) string {
	if d.forward {
		return "(" + prefix + ".nid, " + prefix + ".cost, " + prefix + ".par, 0, ?, ?, 1)"
	}
	return "(" + prefix + ".nid, ?, ?, 1, " + prefix + ".cost, " + prefix + ".par, 0)"
}

// insertSelectList is the same shape for INSERT ... SELECT (no parens).
func (d direction) insertSelectList(prefix string) string {
	if d.forward {
		return prefix + ".nid, " + prefix + ".cost, " + prefix + ".par, 0, ?, ?, 1"
	}
	return prefix + ".nid, ?, ?, 1, " + prefix + ".cost, " + prefix + ".par, 0"
}

// expandSQL carries the pre-rendered statements for one (direction,
// edge-table, frontier, dialect) combination. Statements are rendered once
// per query and executed as prepared statements — only the bound values
// (frontier node, prune bound, sentinels) change between iterations, so
// the compiled plans come from the cache instead of being re-parsed like
// the paper's client, which shipped SQL text through JDBC every iteration.
type expandSQL struct {
	dir direction

	// NSQL fused: window function + MERGE in a single statement
	// (Listing 2(3,4) / Listing 4(2) of the paper).
	fused string

	// Materialized E-operator (separate-operator and no-MERGE paths).
	clearExpand string
	insExpand   string // window-function form

	// Traditional E-operator: aggregate + join-back (pre-SQL:2003).
	clearCost   string
	insCost     string
	insExpandTr string

	// M-operator alternatives.
	mMerge  string // MERGE from TExpand
	mUpdate string // UPDATE ... FROM TExpand
	mInsert string // INSERT ... WHERE NOT EXISTS

	frontierArgs int // number of ? placeholders in the frontier predicate
	prune        bool
}

// sentinelArgs are the bound values for the insertValues/insertSelectList
// placeholders: the not-yet-reached distance and the unset parent link.
var sentinelArgs = []any{MaxDist, NoParent}

// buildExpand renders the expansion statements over sc's working tables.
// frontier is a predicate over the alias q (e.g. "q.f = 2" or "q.nid = ?");
// frontierArgs counts its placeholders. prune appends the Theorem-1 bound
// "out.cost + q.<dist> + ? < ?" with two more placeholders.
func (e *Engine) buildExpand(d direction, edgeTbl, frontier string, frontierArgs int, prune bool, sc *scratchSet) *expandSQL {
	x := &expandSQL{dir: d, frontierArgs: frontierArgs, prune: prune}
	pruneSQL := ""
	if prune {
		pruneSQL = " AND out.cost + q." + d.dist + " + ? < ?"
	}

	// The windowed expansion source (E-operator): all candidate expansions
	// joined from the frontier, keeping only the cheapest per new node via
	// ROW_NUMBER — the SQL:2003 feature that also carries the parent along
	// without a second join.
	windowSrc := "SELECT nid, par, cost FROM (" +
		"SELECT out." + d.newCol + ", q.nid, out.cost + q." + d.dist + ", " +
		"ROW_NUMBER() OVER (PARTITION BY out." + d.newCol + " ORDER BY out.cost + q." + d.dist + ") " +
		"FROM " + sc.visited + " q, " + edgeTbl + " out " +
		"WHERE q.nid = out." + d.joinCol + " AND " + frontier + pruneSQL +
		") tmp (nid, par, cost, rn) WHERE rn = 1"

	x.fused = "MERGE INTO " + sc.visited + " AS target USING (" + windowSrc + ") AS source (nid, par, cost) " +
		"ON (target.nid = source.nid) " +
		"WHEN MATCHED AND target." + d.dist + " > source.cost THEN UPDATE SET " +
		d.dist + " = source.cost, " + d.par + " = source.par, " + d.sign + " = 0 " +
		"WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f, d2t, p2t, b) VALUES " + d.insertValues("source")

	x.clearExpand = "DELETE FROM " + sc.expand
	x.insExpand = "INSERT INTO " + sc.expand + " (nid, par, cost) " + windowSrc

	// Traditional two-step E-operator: aggregate the minimal cost per new
	// node, then join back to find a parent achieving it (§3.3's discussion
	// of why the direct translation is verbose and slow).
	x.clearCost = "DELETE FROM " + sc.expCost
	x.insCost = "INSERT INTO " + sc.expCost + " (nid, cost) " +
		"SELECT out." + d.newCol + ", MIN(out.cost + q." + d.dist + ") FROM " + sc.visited + " q, " + edgeTbl + " out " +
		"WHERE q.nid = out." + d.joinCol + " AND " + frontier + pruneSQL + " GROUP BY out." + d.newCol
	x.insExpandTr = "INSERT INTO " + sc.expand + " (nid, par, cost) " +
		"SELECT ec.nid, MIN(q.nid), ec.cost FROM " + sc.visited + " q, " + edgeTbl + " out, " + sc.expCost + " ec " +
		"WHERE q.nid = out." + d.joinCol + " AND " + frontier + pruneSQL +
		" AND ec.nid = out." + d.newCol + " AND out.cost + q." + d.dist + " = ec.cost " +
		"GROUP BY ec.nid, ec.cost"

	x.mMerge = "MERGE INTO " + sc.visited + " AS target USING " + sc.expand + " AS source ON (target.nid = source.nid) " +
		"WHEN MATCHED AND target." + d.dist + " > source.cost THEN UPDATE SET " +
		d.dist + " = source.cost, " + d.par + " = source.par, " + d.sign + " = 0 " +
		"WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f, d2t, p2t, b) VALUES " + d.insertValues("source")
	x.mUpdate = "UPDATE " + sc.visited + " SET " + d.dist + " = s.cost, " + d.par + " = s.par, " + d.sign + " = 0 " +
		"FROM " + sc.expand + " s WHERE " + sc.visited + ".nid = s.nid AND " + sc.visited + "." + d.dist + " > s.cost"
	x.mInsert = "INSERT INTO " + sc.visited + " (nid, d2s, p2s, f, d2t, p2t, b) SELECT " +
		d.insertSelectList("s") + " FROM " + sc.expand + " s " +
		"WHERE NOT EXISTS (SELECT nid FROM " + sc.visited + " v WHERE v.nid = s.nid)"
	return x
}

// runExpand executes one E+M round, returning the number of affected
// TVisited rows (the SQLCA count Algorithm 1/2 read). The statement shape
// depends on the dialect and engine profile:
//
//	NSQL, MERGE available, fused:     1 statement  (window + MERGE)
//	NSQL, MERGE available, separate:  3 statements (clear, E-insert, MERGE)
//	NSQL, no MERGE (PostgreSQL 9.0):  4 statements (clear, E-insert, UPDATE, INSERT)
//	TSQL:                             6 statements (aggregate E ×2 + UPDATE, INSERT)
func (e *Engine) runExpand(ctx context.Context, qs *QueryStats, x *expandSQL, frontierArgs []any, lOther, minCost int64) (int64, error) {
	if len(frontierArgs) != x.frontierArgs {
		return 0, fmt.Errorf("core: expansion expects %d frontier args, got %d", x.frontierArgs, len(frontierArgs))
	}
	var pruneArgs []any
	if x.prune {
		bound := minCost
		if e.opts.DisablePruning || bound >= MaxDist {
			bound = 4 * MaxDist // effectively unbounded
		}
		pruneArgs = []any{lOther, bound}
	}
	eArgs := append(append([]any{}, frontierArgs...), pruneArgs...)

	useTraditional := e.opts.TraditionalSQL
	useMerge := e.db.Profile().SupportsMerge && !useTraditional
	fusedOK := useMerge && !e.opts.SeparateOperators && e.db.Profile().SupportsWindow

	if fusedOK {
		// The VALUES clause trails the windowed source, so the sentinel
		// binds come after the frontier and prune parameters.
		return e.exec(ctx, qs, &qs.PE, &qs.EOp, x.fused, append(eArgs, sentinelArgs...)...)
	}

	// Materialize the E-operator output.
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.clearExpand); err != nil {
		return 0, err
	}
	if !useTraditional && e.db.Profile().SupportsWindow {
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insExpand, eArgs...); err != nil {
			return 0, err
		}
	} else {
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.clearCost); err != nil {
			return 0, err
		}
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insCost, eArgs...); err != nil {
			return 0, err
		}
		// insExpandTr contains the frontier+prune placeholders once more.
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insExpandTr, eArgs...); err != nil {
			return 0, err
		}
	}

	// Apply the M-operator.
	if useMerge {
		return e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mMerge, sentinelArgs...)
	}
	upd, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mUpdate)
	if err != nil {
		return 0, err
	}
	ins, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mInsert, sentinelArgs...)
	if err != nil {
		return 0, err
	}
	return upd + ins, nil
}
