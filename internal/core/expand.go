package core

import (
	"context"
	"fmt"
)

// direction captures the column/table asymmetry between forward expansion
// (from s along outgoing edges, maintaining d2s/p2s/f) and backward
// expansion (from t along incoming edges, maintaining d2t/p2t/b) — §4.1's
// extension of TVisited.
type direction struct {
	forward bool
	dist    string // d2s / d2t
	par     string // p2s / p2t
	sign    string // f / b
	joinCol string // edge column matched against q.nid (fid fwd, tid bwd)
	newCol  string // edge column of the newly expanded node
}

func fwdDir() direction {
	return direction{forward: true, dist: "d2s", par: "p2s", sign: "f", joinCol: "fid", newCol: "tid"}
}

func bwdDir() direction {
	return direction{forward: false, dist: "d2t", par: "p2t", sign: "b", joinCol: "tid", newCol: "fid"}
}

// insertValues renders the 7-column TVisited insert list for a newly
// discovered node: its own direction gets (cost, parent, sign=0), the other
// direction the MaxDist sentinel with sign=1 (not a candidate until
// relaxed from that side).
func (d direction) insertValues(prefix string) string {
	if d.forward {
		return fmt.Sprintf("(%[1]s.nid, %[1]s.cost, %[1]s.par, 0, %[2]d, %[3]d, 1)", prefix, MaxDist, NoParent)
	}
	return fmt.Sprintf("(%[1]s.nid, %[2]d, %[3]d, 1, %[1]s.cost, %[1]s.par, 0)", prefix, MaxDist, NoParent)
}

// insertSelectList is the same shape for INSERT ... SELECT (no parens).
func (d direction) insertSelectList(prefix string) string {
	if d.forward {
		return fmt.Sprintf("%[1]s.nid, %[1]s.cost, %[1]s.par, 0, %[2]d, %[3]d, 1", prefix, MaxDist, NoParent)
	}
	return fmt.Sprintf("%[1]s.nid, %[2]d, %[3]d, 1, %[1]s.cost, %[1]s.par, 0", prefix, MaxDist, NoParent)
}

// expandSQL carries the pre-rendered statements for one (direction,
// edge-table, frontier, dialect) combination. Statements are rendered once
// per query, then re-parsed per execution by the engine — matching the
// paper's client, which ships SQL text through JDBC every iteration.
type expandSQL struct {
	dir direction

	// NSQL fused: window function + MERGE in a single statement
	// (Listing 2(3,4) / Listing 4(2) of the paper).
	fused string

	// Materialized E-operator (separate-operator and no-MERGE paths).
	clearExpand string
	insExpand   string // window-function form

	// Traditional E-operator: aggregate + join-back (pre-SQL:2003).
	clearCost   string
	insCost     string
	insExpandTr string

	// M-operator alternatives.
	mMerge  string // MERGE from TExpand
	mUpdate string // UPDATE ... FROM TExpand
	mInsert string // INSERT ... WHERE NOT EXISTS

	frontierArgs int // number of ? placeholders in the frontier predicate
	prune        bool
}

// buildExpand renders the expansion statements. frontier is a predicate
// over the alias q (e.g. "q.f = 2" or "q.nid = ?"); frontierArgs counts its
// placeholders. prune appends the Theorem-1 bound
// "out.cost + q.<dist> + ? < ?" with two more placeholders.
func (e *Engine) buildExpand(d direction, edgeTbl, frontier string, frontierArgs int, prune bool) *expandSQL {
	x := &expandSQL{dir: d, frontierArgs: frontierArgs, prune: prune}
	pruneSQL := ""
	if prune {
		pruneSQL = fmt.Sprintf(" AND out.cost + q.%s + ? < ?", d.dist)
	}

	// The windowed expansion source (E-operator): all candidate expansions
	// joined from the frontier, keeping only the cheapest per new node via
	// ROW_NUMBER — the SQL:2003 feature that also carries the parent along
	// without a second join.
	windowSrc := fmt.Sprintf(
		"SELECT nid, par, cost FROM ("+
			"SELECT out.%s, q.nid, out.cost + q.%s, "+
			"ROW_NUMBER() OVER (PARTITION BY out.%s ORDER BY out.cost + q.%s) "+
			"FROM %s q, %s out "+
			"WHERE q.nid = out.%s AND %s%s"+
			") tmp (nid, par, cost, rn) WHERE rn = 1",
		d.newCol, d.dist, d.newCol, d.dist, TblVisited, edgeTbl, d.joinCol, frontier, pruneSQL)

	x.fused = fmt.Sprintf(
		"MERGE INTO %s AS target USING (%s) AS source (nid, par, cost) "+
			"ON (target.nid = source.nid) "+
			"WHEN MATCHED AND target.%s > source.cost THEN UPDATE SET %s = source.cost, %s = source.par, %s = 0 "+
			"WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f, d2t, p2t, b) VALUES %s",
		TblVisited, windowSrc, d.dist, d.dist, d.par, d.sign, d.insertValues("source"))

	x.clearExpand = "DELETE FROM " + TblExpand
	x.insExpand = fmt.Sprintf("INSERT INTO %s (nid, par, cost) %s", TblExpand, windowSrc)

	// Traditional two-step E-operator: aggregate the minimal cost per new
	// node, then join back to find a parent achieving it (§3.3's discussion
	// of why the direct translation is verbose and slow).
	x.clearCost = "DELETE FROM " + TblExpCost
	x.insCost = fmt.Sprintf(
		"INSERT INTO %s (nid, cost) "+
			"SELECT out.%s, MIN(out.cost + q.%s) FROM %s q, %s out "+
			"WHERE q.nid = out.%s AND %s%s GROUP BY out.%s",
		TblExpCost, d.newCol, d.dist, TblVisited, edgeTbl, d.joinCol, frontier, pruneSQL, d.newCol)
	x.insExpandTr = fmt.Sprintf(
		"INSERT INTO %s (nid, par, cost) "+
			"SELECT ec.nid, MIN(q.nid), ec.cost FROM %s q, %s out, %s ec "+
			"WHERE q.nid = out.%s AND %s%s AND ec.nid = out.%s AND out.cost + q.%s = ec.cost "+
			"GROUP BY ec.nid, ec.cost",
		TblExpand, TblVisited, edgeTbl, TblExpCost, d.joinCol, frontier, pruneSQL, d.newCol, d.dist)

	x.mMerge = fmt.Sprintf(
		"MERGE INTO %s AS target USING %s AS source ON (target.nid = source.nid) "+
			"WHEN MATCHED AND target.%s > source.cost THEN UPDATE SET %s = source.cost, %s = source.par, %s = 0 "+
			"WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f, d2t, p2t, b) VALUES %s",
		TblVisited, TblExpand, d.dist, d.dist, d.par, d.sign, d.insertValues("source"))
	x.mUpdate = fmt.Sprintf(
		"UPDATE %s SET %s = s.cost, %s = s.par, %s = 0 FROM %s s "+
			"WHERE %s.nid = s.nid AND %s.%s > s.cost",
		TblVisited, d.dist, d.par, d.sign, TblExpand, TblVisited, TblVisited, d.dist)
	x.mInsert = fmt.Sprintf(
		"INSERT INTO %s (nid, d2s, p2s, f, d2t, p2t, b) SELECT %s FROM %s s "+
			"WHERE NOT EXISTS (SELECT nid FROM %s v WHERE v.nid = s.nid)",
		TblVisited, d.insertSelectList("s"), TblExpand, TblVisited)
	return x
}

// runExpand executes one E+M round, returning the number of affected
// TVisited rows (the SQLCA count Algorithm 1/2 read). The statement shape
// depends on the dialect and engine profile:
//
//	NSQL, MERGE available, fused:     1 statement  (window + MERGE)
//	NSQL, MERGE available, separate:  3 statements (clear, E-insert, MERGE)
//	NSQL, no MERGE (PostgreSQL 9.0):  4 statements (clear, E-insert, UPDATE, INSERT)
//	TSQL:                             6 statements (aggregate E ×2 + UPDATE, INSERT)
func (e *Engine) runExpand(ctx context.Context, qs *QueryStats, x *expandSQL, frontierArgs []any, lOther, minCost int64) (int64, error) {
	if len(frontierArgs) != x.frontierArgs {
		return 0, fmt.Errorf("core: expansion expects %d frontier args, got %d", x.frontierArgs, len(frontierArgs))
	}
	var pruneArgs []any
	if x.prune {
		bound := minCost
		if e.opts.DisablePruning || bound >= MaxDist {
			bound = 4 * MaxDist // effectively unbounded
		}
		pruneArgs = []any{lOther, bound}
	}
	eArgs := append(append([]any{}, frontierArgs...), pruneArgs...)

	useTraditional := e.opts.TraditionalSQL
	useMerge := e.db.Profile().SupportsMerge && !useTraditional
	fusedOK := useMerge && !e.opts.SeparateOperators && e.db.Profile().SupportsWindow

	if fusedOK {
		return e.exec(ctx, qs, &qs.PE, &qs.EOp, x.fused, eArgs...)
	}

	// Materialize the E-operator output.
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.clearExpand); err != nil {
		return 0, err
	}
	if !useTraditional && e.db.Profile().SupportsWindow {
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insExpand, eArgs...); err != nil {
			return 0, err
		}
	} else {
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.clearCost); err != nil {
			return 0, err
		}
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insCost, eArgs...); err != nil {
			return 0, err
		}
		// insExpandTr contains the frontier+prune placeholders once more.
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, x.insExpandTr, eArgs...); err != nil {
			return 0, err
		}
	}

	// Apply the M-operator.
	if useMerge {
		return e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mMerge)
	}
	upd, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mUpdate)
	if err != nil {
		return 0, err
	}
	ins, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, x.mInsert)
	if err != nil {
		return 0, err
	}
	return upd + ins, nil
}
