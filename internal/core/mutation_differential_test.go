package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// The randomized mutation differential harness: >= 1000 random
// insert/delete/update steps, applied in batches through ApplyMutations
// and mirrored on an in-memory graph, with every relational algorithm
// checked against graph.MDJ after every batch. The seed is logged (and
// overridable via MUTATION_DIFF_SEED) so any failure reproduces exactly.

// mutationDiffSeed returns the harness seed, preferring the environment
// override.
func mutationDiffSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if s := os.Getenv("MUTATION_DIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MUTATION_DIFF_SEED %q: %v", s, err)
		}
		return v
	}
	return def
}

// randomMutation draws one mutation that is valid against the mirror and
// applies it to the mirror. Deletes and updates target existing pairs;
// when no edges remain the step degrades to an insert.
func randomMutation(t *testing.T, rnd *rand.Rand, mirror *graph.Graph) Mutation {
	t.Helper()
	op := rnd.Intn(10)
	if mirror.M() == 0 {
		op = 0
	}
	switch {
	case op < 4: // insert (40%)
		u := rnd.Int63n(mirror.N)
		v := rnd.Int63n(mirror.N)
		w := 1 + rnd.Int63n(9)
		if err := mirror.InsertEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
		return Mutation{Op: MutInsert, From: u, To: v, Weight: w}
	case op < 7: // delete (30%)
		ed := mirror.Edges[rnd.Intn(mirror.M())]
		if _, err := mirror.DeleteEdge(ed.From, ed.To); err != nil {
			t.Fatal(err)
		}
		return Mutation{Op: MutDelete, From: ed.From, To: ed.To}
	default: // update (30%)
		ed := mirror.Edges[rnd.Intn(mirror.M())]
		w := 1 + rnd.Int63n(9)
		if _, err := mirror.UpdateEdgeWeight(ed.From, ed.To, w); err != nil {
			t.Fatal(err)
		}
		return Mutation{Op: MutUpdate, From: ed.From, To: ed.To, Weight: w}
	}
}

func TestMutationDifferential(t *testing.T) {
	const (
		steps    = 1000
		nodes    = 28
		edges    = 80
		lthd     = 6
		batchMax = 8
	)
	seed := mutationDiffSeed(t, 20260726)
	t.Logf("mutation differential: seed=%d (override with MUTATION_DIFF_SEED), %d steps", seed, steps)
	rnd := rand.New(rand.NewSource(seed))

	// Small weights keep multi-hop segments under lthd common, so the
	// decremental repair is exercised constantly rather than degenerating
	// into single-edge touch sets.
	var init []graph.Edge
	for i := 0; i < edges; i++ {
		u := rnd.Int63n(nodes)
		v := rnd.Int63n(nodes)
		init = append(init, graph.Edge{From: u, To: v, Weight: 1 + rnd.Int63n(9)})
	}
	mirror, err := graph.New(nodes, init)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}

	applied, batches := 0, 0
	for applied < steps {
		k := 1 + rnd.Intn(batchMax)
		if applied+k > steps {
			k = steps - applied
		}
		muts := make([]Mutation, 0, k)
		for i := 0; i < k; i++ {
			muts = append(muts, randomMutation(t, rnd, mirror))
		}
		if _, err := e.ApplyMutations(muts); err != nil {
			t.Fatalf("step %d (batch %v): %v", applied, muts, err)
		}
		applied += k
		batches++

		// Every batch kills the oracle; rebuild a small one so ALT is in
		// the comparison after every batch, per the acceptance criterion.
		if _, err := e.BuildOracle(oracle.Config{K: 2}); err != nil {
			t.Fatalf("step %d: oracle rebuild: %v", applied, err)
		}
		queries := [][2]int64{
			{rnd.Int63n(nodes), rnd.Int63n(nodes)},
			{rnd.Int63n(nodes), rnd.Int63n(nodes)},
		}
		for _, alg := range allAlgorithms() {
			for _, q := range queries {
				p, _, err := shortestPath(e, alg, q[0], q[1])
				if err != nil {
					t.Fatalf("step %d %v s=%d t=%d: %v", applied, alg, q[0], q[1], err)
				}
				checkPath(t, mirror, alg, q[0], q[1], p)
			}
		}
	}

	ms := e.MutationStats()
	t.Logf("applied %d mutations in %d batches: %+v", applied, batches, ms)
	if ms.Inserts+ms.Deletes+ms.Updates != steps {
		t.Errorf("mutation counters disagree with the plan: %+v", ms)
	}
	if ms.SegRepairs == 0 {
		t.Error("the harness never took the scoped decremental repair path")
	}

	// Final invariant: the incrementally maintained index must equal a
	// from-scratch build over the final graph.
	eB := newTestEngine(t, mirror, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, e, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		if len(inc) != len(ref) {
			t.Fatalf("%s: %d rows vs rebuild %d", tbl, len(inc), len(ref))
		}
		for pair, want := range ref {
			if inc[pair] != want {
				t.Fatalf("%s: pair %v cost %d, rebuild says %d", tbl, pair, inc[pair], want)
			}
		}
	}
}

// TestMutationRace drives ApplyMutations concurrently with exact and
// approximate queries under -race. Every concurrent answer must be
// consistent with the pre- or post-batch graph (never a torn mix), and
// once the batch has returned — one version bump later — every fresh
// query must match the post state exactly: no stale cached answer, no
// stale oracle bound.
func TestMutationRace(t *testing.T) {
	pre := graph.Power(150, 3, 77)
	e := newTestEngine(t, pre.Clone(), rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}

	post := pre.Clone()
	del1, del2 := pre.Edges[10], pre.Edges[40]
	muts := []Mutation{
		{Op: MutInsert, From: 3, To: 120, Weight: 1},
		{Op: MutDelete, From: del1.From, To: del1.To},
		{Op: MutUpdate, From: del2.From, To: del2.To, Weight: del2.Weight + 30},
	}
	if err := post.InsertEdge(3, 120, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := post.DeleteEdge(del1.From, del1.To); err != nil {
		t.Fatal(err)
	}
	if _, err := post.UpdateEdgeWeight(del2.From, del2.To, del2.Weight+30); err != nil {
		t.Fatal(err)
	}

	queries := graph.RandomQueries(pre, 10, 19)
	v0 := e.GraphVersion()
	errs := make(chan error, 128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			algs := []Algorithm{AlgBSDJ, AlgBSEG}
			for i := 0; i < 20; i++ {
				q := queries[(seed+i)%len(queries)]
				alg := algs[i%len(algs)]
				p, _, err := shortestPath(e, alg, q[0], q[1])
				if err != nil {
					errs <- err
					continue
				}
				refPre := graph.MDJ(pre, q[0], q[1])
				refPost := graph.MDJ(post, q[0], q[1])
				okPre := p.Found == refPre.Found && (!p.Found || p.Length == refPre.Distance)
				okPost := p.Found == refPost.Found && (!p.Found || p.Length == refPost.Distance)
				if !okPre && !okPost {
					errs <- fmt.Errorf("%v s=%d t=%d: %+v matches neither pre (%+v) nor post (%+v)",
						alg, q[0], q[1], p, refPre, refPost)
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(seed+2*i)%len(queries)]
				iv, err := approxDistance(e, q[0], q[1])
				if err != nil {
					// The mutation window legitimately refuses.
					if !strings.Contains(err.Error(), "BuildOracle") &&
						!strings.Contains(err.Error(), "kept changing") {
						errs <- err
					}
					continue
				}
				if iv.Lower > iv.Upper {
					errs <- fmt.Errorf("inverted interval [%d, %d]", iv.Lower, iv.Upper)
					continue
				}
				// The bounds must bracket a real graph state's distance:
				// the oracle is built against exactly one version.
				refPre := graph.MDJ(pre, q[0], q[1])
				refPost := graph.MDJ(post, q[0], q[1])
				brackets := func(ref graph.PathResult) bool {
					if !ref.Found {
						return !iv.UpperKnown()
					}
					return iv.Lower <= ref.Distance && (!iv.UpperKnown() || ref.Distance <= iv.Upper)
				}
				if !brackets(refPre) && !brackets(refPost) {
					errs <- fmt.Errorf("approx s=%d t=%d: [%d, %d] brackets neither graph state", q[0], q[1], iv.Lower, iv.Upper)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.ApplyMutations(muts); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent mutation: %v", err)
	}

	if e.GraphVersion() != v0+1 {
		t.Errorf("batch must bump the version exactly once: %d -> %d", v0, e.GraphVersion())
	}
	// Across the bump: fresh queries must reflect the post state, cache
	// and SegTable included. (The first queries may still be cache hits —
	// that is the point: hits keyed to the new version are post-state.)
	for _, q := range queries {
		for _, alg := range []Algorithm{AlgBSDJ, AlgBSEG} {
			p, _, err := shortestPath(e, alg, q[0], q[1])
			if err != nil {
				t.Fatalf("post-batch %v s=%d t=%d: %v", alg, q[0], q[1], err)
			}
			checkPath(t, post, alg, q[0], q[1], p)
		}
	}
	// The oracle went cold during the batch and must refuse until rebuilt.
	if !e.OracleInvalidated() {
		t.Error("batch must leave the oracle marked cold")
	}
	if _, err := approxDistance(e, queries[0][0], queries[0][1]); err == nil {
		t.Error("ApproxDistance must refuse across the bump until BuildOracle")
	}
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:4] {
		iv, err := approxDistance(e, q[0], q[1])
		if err != nil {
			t.Fatalf("post-rebuild approx: %v", err)
		}
		ref := graph.MDJ(post, q[0], q[1])
		if ref.Found && (iv.Lower > ref.Distance || (iv.UpperKnown() && iv.Upper < ref.Distance)) {
			t.Errorf("post-rebuild approx s=%d t=%d: [%d, %d] does not bracket %d",
				q[0], q[1], iv.Lower, iv.Upper, ref.Distance)
		}
	}
}
