package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// TestQuickAllAlgorithmsMatchDijkstra is the library's flagship property:
// on arbitrary random graphs, every relational algorithm returns exactly
// the in-memory Dijkstra distance, and the recovered path realizes it.
func TestQuickAllAlgorithmsMatchDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(15 + rng.Intn(35))
		m := int(n) * (2 + rng.Intn(2))
		g := graph.Random(n, m, seed)

		db, err := rdb.Open(rdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		e := NewEngine(db, Options{})
		if err := e.LoadGraph(g); err != nil {
			return false
		}
		lthd := int64(5 + rng.Intn(30))
		if _, err := e.BuildSegTable(lthd); err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			s, tt := rng.Int63n(n), rng.Int63n(n)
			ref := graph.MDJ(g, s, tt)
			for _, alg := range []Algorithm{AlgDJ, AlgBDJ, AlgBSDJ, AlgBBFS, AlgBSEG} {
				p, _, err := shortestPath(e, alg, s, tt)
				if err != nil {
					t.Logf("seed=%d alg=%v s=%d t=%d: %v", seed, alg, s, tt, err)
					return false
				}
				if p.Found != ref.Found {
					t.Logf("seed=%d alg=%v s=%d t=%d: found=%v want %v", seed, alg, s, tt, p.Found, ref.Found)
					return false
				}
				if !p.Found {
					continue
				}
				if p.Length != ref.Distance {
					t.Logf("seed=%d alg=%v s=%d t=%d: len=%d want %d", seed, alg, s, tt, p.Length, ref.Distance)
					return false
				}
				got, ok := g.PathLength(p.Nodes)
				if !ok || got != ref.Distance {
					t.Logf("seed=%d alg=%v s=%d t=%d: bad path %v", seed, alg, s, tt, p.Nodes)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSegTablePreservesDistances: searching the SegTable graph G'
// (segments + residual edges) yields the same distances as G — the
// property Definition 4 is built on.
func TestQuickSegTablePreservesDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	fn := func(seed int64, lthdRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(12 + rng.Intn(24))
		g := graph.Random(n, int(n)*3, seed)
		lthd := int64(lthdRaw%40) + 2

		db, err := rdb.Open(rdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		e := NewEngine(db, Options{})
		if err := e.LoadGraph(g); err != nil {
			return false
		}
		if _, err := e.BuildSegTable(lthd); err != nil {
			return false
		}
		// Rebuild G' from TOutSegs and compare all-source distances from a
		// few roots.
		rows, err := db.Query("SELECT fid, tid, cost FROM TOutSegs")
		if err != nil {
			return false
		}
		var edges []graph.Edge
		for _, r := range rows.Data {
			edges = append(edges, graph.Edge{From: r[0].I, To: r[1].I, Weight: r[2].I})
		}
		gp, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		for trial := 0; trial < 4; trial++ {
			s, tt := rng.Int63n(n), rng.Int63n(n)
			a := graph.MDJ(g, s, tt)
			b := graph.MDJ(gp, s, tt)
			if a.Found != b.Found {
				return false
			}
			if a.Found && a.Distance != b.Distance {
				t.Logf("seed=%d lthd=%d s=%d t=%d: G=%d G'=%d", seed, lthd, s, tt, a.Distance, b.Distance)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBSEGOnPowerGraphs exercises BSEG on skewed graphs where hub
// nodes produce large frontiers and many same-distance ties.
func TestQuickBSEGOnPowerGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(30 + rng.Intn(50))
		g := graph.Power(n, 4, seed)
		db, err := rdb.Open(rdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		e := NewEngine(db, Options{})
		if err := e.LoadGraph(g); err != nil {
			return false
		}
		if _, err := e.BuildSegTable(int64(10 + rng.Intn(25))); err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			s, tt := rng.Int63n(n), rng.Int63n(n)
			ref := graph.MDJ(g, s, tt)
			p, _, err := shortestPath(e, AlgBSEG, s, tt)
			if err != nil || p.Found != ref.Found {
				return false
			}
			if p.Found && p.Length != ref.Distance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
