package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/rdb"
)

// The unified query surface: one declarative entry point (Engine.Query)
// replaces the pick-an-algorithm toolbox. A QueryRequest names the
// endpoints and, optionally, an algorithm hint, an error tolerance and a
// statement budget; the context carries deadlines and cancellation. With
// AlgAuto (the zero value) a cost-based planner chooses among the
// relational algorithms — or answers from the landmark oracle alone —
// using only statistics the engine already tracks: graph size, wmin, the
// SegTable threshold, oracle validity, the landmark bounds for the
// concrete s–t pair, and the path-cache state. This mirrors the paper's
// central move of pushing search decisions into the database layer, and
// the ALT/landmark planning ideas of Goldberg & Harrelson (PAPERS.md).

// ErrBudgetExceeded reports that a query spent its QueryRequest.MaxStatements
// budget before finishing. Identify it with errors.Is.
var ErrBudgetExceeded = errors.New("core: statement budget exceeded")

// ErrNoGraph reports an operation against an engine with no loaded graph.
// Callers (the shard coordinator, spdbd readiness) branch on it with
// errors.Is instead of matching the message text.
var ErrNoGraph = errors.New("core: no graph loaded")

// Planner thresholds. They are deliberately coarse: the planner's inputs
// are cheap scalars, and the differential suite pins every choice to exact
// answers, so a misprediction costs latency, never correctness.
const (
	// PlannerTinyNodes is the graph size below which the planner always
	// picks BSDJ: on tiny graphs the set-Dijkstra finishes in a handful of
	// statements and index indirection (SegTable probes, landmark bound
	// subqueries) costs more than it saves.
	PlannerTinyNodes = 256
	// PlannerWeakSegFactor compares the SegTable threshold against wmin:
	// a frontier round advances roughly lthd under BSEG and wmin under the
	// Dijkstra family, so with lthd < PlannerWeakSegFactor×wmin the
	// segments compress almost nothing (they are mostly single edges) and
	// ALT's goal-directed pruning wins; with real compression BSEG's
	// fewer, fatter rounds win, measured across both the paper's Fig 7
	// experiments and the fembench planner experiment.
	PlannerWeakSegFactor = 2
)

// Planner decision labels, recorded in QueryStats.Planner and surfaced by
// spdbd /stats as the planner_decisions map.
const (
	// DecisionHint: the request named a concrete algorithm; no planning ran.
	DecisionHint = "hint"
	// DecisionCached: an auto query answered from the path cache before any
	// planning (a previously resolved algorithm's exact answer is exact for
	// every hint).
	DecisionCached = "cache"
	// DecisionTrivial: s == t, answered without touching the database.
	DecisionTrivial = "trivial"
	// DecisionLabels: a valid hub-label index answers exactly with no
	// frontier loop — it beats every other row, so a valid index
	// short-circuits the rest of the table (landmark interval reads
	// included: labels answer unreachable and tolerant queries exactly).
	DecisionLabels = "labels"
	// DecisionUnreachable: the landmark oracle proved no s–t path exists.
	DecisionUnreachable = "oracle-unreachable"
	// DecisionApprox: the oracle interval met MaxRelError; no search ran.
	DecisionApprox = "oracle-approx"
	// DecisionTinyBSDJ: graph under PlannerTinyNodes, plain set-Dijkstra.
	DecisionTinyBSDJ = "bsdj-tiny"
	// DecisionALT: oracle valid, no SegTable — goal-directed search.
	DecisionALT = "alt"
	// DecisionALTWeakSeg: oracle and SegTable both valid, but the SegTable
	// threshold is too close to wmin to compress anything.
	DecisionALTWeakSeg = "alt-weak-seg"
	// DecisionBSEG: SegTable valid with real compression.
	DecisionBSEG = "bseg"
	// DecisionBSDJ: no index helps; the paper's best index-free algorithm.
	DecisionBSDJ = "bsdj"
)

// QueryRequest is one declarative shortest-path question.
type QueryRequest struct {
	// Source and Target are the path endpoints.
	Source int64
	Target int64
	// Alg hints the algorithm. The zero value AlgAuto engages the planner;
	// a concrete algorithm bypasses it (recorded as a "hint" decision).
	Alg Algorithm
	// MaxRelError is the acceptable relative error of the answer. 0 demands
	// an exact path. A positive tolerance allows the planner to answer from
	// the landmark oracle alone when the interval [lower, upper] satisfies
	// (upper-lower)/lower <= MaxRelError — microseconds instead of a
	// relational search, with QueryResult.Approximate set and the bounds
	// reported. Only meaningful with AlgAuto.
	MaxRelError float64
	// MaxStatements caps the SQL statements one search may issue (a cost
	// budget); past it the query fails with ErrBudgetExceeded. 0 = unlimited.
	MaxStatements int64
}

// QueryResult is the unified answer shape.
type QueryResult struct {
	// Found reports that an s–t path exists (exact searches and oracle
	// answers alike; an oracle-certified unreachable pair reports false).
	Found bool
	// Distance is the path length: exact when Approximate is false, the
	// upper bound of the oracle interval (a real path length through a
	// landmark) when true.
	Distance int64
	// Path is the full node sequence for exact answers; zero-valued for
	// approximate ones (the oracle knows lengths, not routes).
	Path Path
	// Approximate reports an oracle-only answer within MaxRelError.
	Approximate bool
	// Lower and Upper bracket the true distance. Exact found answers have
	// Lower == Upper == Distance; certified-unreachable answers have both
	// at MaxDist.
	Lower int64
	Upper int64
	// Algorithm is the concrete algorithm that ran (AlgAuto when the
	// oracle answered without a search).
	Algorithm Algorithm
	// Stats carries the per-query metrics, including the planner decision
	// and the iteration count.
	Stats *QueryStats
}

// queryPlan is one planning outcome: either a resolved algorithm or a
// complete answer from the oracle alone.
type queryPlan struct {
	alg      Algorithm
	decision string
	// answer short-circuits the search (oracle-approx / oracle-unreachable).
	answer *QueryResult
	// snap is the statistics snapshot the plan was computed against; any
	// drift after acquiring the latch forces a replan. Comparing the whole
	// snapshot (not just the version) matters: a failed or cancelled index
	// build clears segBuilt / the oracle WITHOUT bumping the version, and a
	// stale plan would then hard-error on a missing index instead of
	// degrading the way the decision table promises.
	snap statSnapshot
}

// snapshotRetryLimit is how many shared-mode attempts a query makes before
// degrading to an exclusive admission. Commit-time validation failing is
// already exceptional (the gate excludes writers while readers run), so two
// optimistic rounds before the guaranteed-progress fallback is plenty.
const snapshotRetryLimit = 2

// stageRec accumulates the per-query stage timings Engine.Query threads
// through admission and planning: the serving-path decomposition the
// latency histograms and the slow-query log report. One recorder lives on
// Query's stack per call — recording costs two duration adds, no
// allocation, no locking.
type stageRec struct {
	gate time.Duration // queued on the admission gate (all attempts)
	plan time.Duration // planQuery wall time (initial plan + replans)
}

// Query answers one declarative shortest-path request. It is the single
// context-aware entry point the serving tier builds on:
//
//   - ctx carries the deadline; a cancelled context returns ctx.Err()
//     within one frontier iteration (or immediately, while still queued on
//     the admission gate), releasing its slot and caching nothing.
//   - req.Alg == AlgAuto lets the cost-based planner pick the algorithm or
//     answer from the landmark oracle (see the Decision* labels).
//   - cache hits return from memory without touching gate or database.
//
// Safe for any number of concurrent callers: read-only searches enter the
// shared side of the query gate and run in parallel, each over a private
// scratch-table set, while mutations take the exclusive side.
//
// Every call — success, error or cancellation — is recorded in the
// engine's observability instruments: the per-algorithm latency histogram,
// the gate-wait histogram, and the stage timings attached to
// QueryResult.Stats (GateWait, PlanDur).
func (e *Engine) Query(ctx context.Context, req QueryRequest) (QueryResult, error) {
	t0 := time.Now()
	var rec stageRec
	res, err := e.runQuery(ctx, req, &rec)
	if res.Stats != nil {
		res.Stats.GateWait = rec.gate
		res.Stats.PlanDur = rec.plan
	}
	e.observeQuery(req, res, err, rec, time.Since(t0))
	return res, err
}

// runQuery is Query's body; the wrapper owns timing and observation.
func (e *Engine) runQuery(ctx context.Context, req QueryRequest, rec *stageRec) (QueryResult, error) {
	if e.optErr != nil {
		return QueryResult{}, e.optErr
	}
	if err := rdb.ContextErr(ctx); err != nil {
		return QueryResult{}, err
	}
	if math.IsNaN(req.MaxRelError) || req.MaxRelError < 0 {
		return QueryResult{}, fmt.Errorf("core: MaxRelError must be non-negative, got %v", req.MaxRelError)
	}
	if req.MaxStatements < 0 {
		return QueryResult{}, fmt.Errorf("core: MaxStatements must be non-negative, got %d", req.MaxStatements)
	}
	s, t := req.Source, req.Target
	snap := e.snapshotStats()
	if snap.nodes == 0 {
		return QueryResult{}, ErrNoGraph
	}
	if s < 0 || t < 0 || int(s) >= snap.nodes || int(t) >= snap.nodes {
		return QueryResult{}, fmt.Errorf("core: node out of range (n=%d)", snap.nodes)
	}
	// s == t needs no statement at all under the planner. Explicit hints
	// keep the legacy behavior (the algorithm's own trivial-path handling)
	// so their QueryStats stay comparable across releases.
	if s == t && req.Alg == AlgAuto {
		p := Path{Found: true, Length: 0, Nodes: []int64{s}}
		return exactResult(p, AlgAuto, &QueryStats{Algorithm: AlgAuto.String(), Planner: DecisionTrivial}), nil
	}

	// Serve auto traffic from the cache before consulting the oracle: any
	// concrete algorithm's cached answer for this pair is exact on the
	// current graph, so repeated queries stay zero-SQL even though the
	// planner would otherwise read landmark bounds first.
	if req.Alg == AlgAuto && e.cache != nil {
		if p, alg, ok := e.cacheProbeAuto(snap.version, s, t); ok {
			return exactResult(p, alg, &QueryStats{Algorithm: alg.String(), Planner: DecisionCached, CacheHit: true}), nil
		}
	}

	tp := time.Now()
	pl, err := e.planQuery(ctx, req, snap)
	rec.plan += time.Since(tp)
	if err != nil {
		return QueryResult{}, err
	}
	if pl.answer != nil {
		return *pl.answer, nil
	}
	key := cacheKey{version: pl.snap.version, alg: pl.alg, s: s, t: t}
	if e.cache != nil {
		if p, ok := e.cache.get(key); ok {
			return exactResult(p, pl.alg, &QueryStats{Algorithm: pl.alg.String(), Planner: pl.decision, CacheHit: true}), nil
		}
	}

	// Optimistic snapshot execution: run under a shared admission, then
	// validate at commit that the graph version the plan saw is still
	// current. The gate already excludes writers while readers run, so a
	// failed validation is a safety net (for any future mutation path that
	// bypasses the gate), not the normal case — it discards the attempt and
	// retries, the DistanceInterval optimistic pattern, degrading to an
	// exclusive admission on the final attempt so progress is guaranteed.
	for attempt := 0; ; attempt++ {
		res, retry, aerr := e.queryAttempt(ctx, req, &pl, attempt >= snapshotRetryLimit, rec)
		if aerr != nil || !retry {
			return res, aerr
		}
		e.snapRetries.Add(1)
	}
}

// queryAttempt runs one admission-to-commit round of Query. It reports
// retry=true when commit-time validation found the graph version moved
// under the search (the answer is discarded). exclusive requests the
// writer side of the gate — the degraded, guaranteed-stable mode.
func (e *Engine) queryAttempt(ctx context.Context, req QueryRequest, pl *queryPlan, exclusive bool, rec *stageRec) (QueryResult, bool, error) {
	s, t := req.Source, req.Target
	tg := time.Now()
	if exclusive {
		err := e.gate.lockExclusive(ctx)
		rec.gate += time.Since(tg)
		if err != nil {
			return QueryResult{}, false, err
		}
		// Counted only once admission succeeds: a degraded attempt cancelled
		// while still queued ran no exclusive search and must not inflate
		// the stat.
		e.degraded.Add(1)
		defer e.gate.unlockExclusive()
	} else {
		err := e.lockShared(ctx)
		rec.gate += time.Since(tg)
		if err != nil {
			return QueryResult{}, false, err
		}
		defer e.unlockShared()
	}
	// The graph may have changed while we waited for admission (edge
	// mutation, index rebuild, full reload). Re-validate against the
	// current generation — and replan, since the decision inputs (oracle
	// validity, SegTable, size) may have moved — so the answer we compute
	// belongs to the graph we actually query. Once admitted the replan is
	// stable: every mutator needs the exclusive side of the gate.
	snap := e.snapshotStats()
	if snap.nodes == 0 {
		return QueryResult{}, false, ErrNoGraph
	}
	if int(s) >= snap.nodes || int(t) >= snap.nodes {
		return QueryResult{}, false, fmt.Errorf("core: node out of range (n=%d)", snap.nodes)
	}
	if snap != pl.snap {
		tp := time.Now()
		npl, err := e.planQuery(ctx, req, snap)
		rec.plan += time.Since(tp)
		if err != nil {
			return QueryResult{}, false, err
		}
		*pl = npl
		if pl.answer != nil {
			return *pl.answer, false, nil
		}
	}
	key := cacheKey{version: pl.snap.version, alg: pl.alg, s: s, t: t}
	// Re-check after admission: a concurrent caller may have computed and
	// cached this exact answer while we waited.
	if e.cache != nil {
		if p, ok := e.cache.recheck(key); ok {
			return exactResult(p, pl.alg, &QueryStats{Algorithm: pl.alg.String(), Planner: pl.decision, CacheHit: true}), false, nil
		}
	}
	// Lease a private scratch set: concurrent readers write disjoint
	// working tables, which is what lets them share the gate at all.
	sc, err := e.scratch.acquire()
	if err != nil {
		return QueryResult{}, false, err
	}
	defer e.scratch.release(sc)
	if h := e.hookSearchStart; h != nil {
		h()
	}
	p, qs, err := e.search(ctx, sc, pl.alg, s, t, req.MaxStatements)
	if qs != nil {
		qs.Planner = pl.decision
	}
	if err != nil {
		return QueryResult{Stats: qs}, false, err
	}
	// Commit-time validation: the answer is only published (and cached) if
	// the graph version is still the one the plan snapshot saw.
	if e.GraphVersion() != pl.snap.version {
		return QueryResult{}, true, nil
	}
	if e.cache != nil {
		e.cache.put(key, p)
	}
	return exactResult(p, pl.alg, qs), false, nil
}

// exactResult wraps a relational-search path in the unified answer shape.
func exactResult(p Path, alg Algorithm, qs *QueryStats) QueryResult {
	res := QueryResult{Found: p.Found, Path: p, Algorithm: alg, Stats: qs}
	if p.Found {
		res.Distance = p.Length
		res.Lower, res.Upper = p.Length, p.Length
	} else {
		res.Lower, res.Upper = MaxDist, MaxDist
	}
	return res
}

// statSnapshot is the planner's input: the cheap scalars the engine
// already maintains, read under one metadata lock acquisition.
type statSnapshot struct {
	nodes    int
	wmin     int64
	segBuilt bool
	segLthd  int64
	oracle   bool
	labels   bool
	version  uint64
}

func (e *Engine) snapshotStats() statSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return statSnapshot{
		nodes:    e.nodes,
		wmin:     e.wmin,
		segBuilt: e.segBuilt,
		segLthd:  e.segLthd,
		oracle:   e.orc != nil,
		labels:   e.lbl != nil,
		version:  e.version,
	}
}

// planQuery resolves a request to a concrete algorithm — or a complete
// oracle answer — from the statistics snapshot. The decision table (also
// in docs/ARCHITECTURE.md §Query planning & cancellation):
//
//	hint             Alg != AlgAuto                       run the hint
//	labels           hub-label index valid                Label (exact, no loop)
//	oracle-unreachable  landmark bounds prove no path     answer, no search
//	oracle-approx    interval within MaxRelError          answer, no search
//	bsdj-tiny        nodes <= PlannerTinyNodes            BSDJ
//	alt              oracle valid, no SegTable            ALT
//	alt-weak-seg     oracle+SegTable, lthd < 2*wmin       ALT
//	bseg             SegTable valid                       BSEG
//	bsdj             no index available                   BSDJ
//
// The landmark bounds for the concrete pair come from the same latch-free
// interval reads ApproxDistance uses; when they fail (oracle went cold
// mid-read) the planner degrades to the index-driven rows of the table.
func (e *Engine) planQuery(ctx context.Context, req QueryRequest, snap statSnapshot) (queryPlan, error) {
	if req.Alg != AlgAuto {
		return queryPlan{alg: req.Alg, decision: DecisionHint, snap: snap}, nil
	}
	// A valid hub-label index dominates: exact answers (unreachability and
	// tolerant requests included) in a constant number of statements, so
	// planning skips even the landmark interval reads.
	if snap.labels {
		return queryPlan{alg: AlgLabel, decision: DecisionLabels, snap: snap}, nil
	}
	s, t := req.Source, req.Target
	var iv Interval
	var ivStmts int
	var ivDur time.Duration
	haveIV := false
	if snap.oracle {
		t0 := time.Now()
		v, n, err := e.distanceIntervalStats(ctx, s, t)
		ivStmts, ivDur = n, time.Since(t0)
		if err == nil {
			iv, haveIV = v, true
		} else if cerr := rdb.ContextErr(ctx); cerr != nil {
			return queryPlan{}, cerr
		}
		// Other interval errors (oracle invalidated between the snapshot
		// and the read) just mean planning proceeds without bounds.
	}
	// Oracle-only answers report the landmark reads as their cost — they
	// ran real statements, and the fembench planner comparison must not
	// flatter AlgAuto with a zero-statement row.
	oracleStats := func(decision string) *QueryStats {
		return &QueryStats{Algorithm: AlgAuto.String(), Planner: decision,
			Statements: ivStmts, SC: ivDur, Total: ivDur}
	}
	if haveIV && iv.Unreachable() {
		return queryPlan{decision: DecisionUnreachable, snap: snap, answer: &QueryResult{
			Found: false, Lower: iv.Lower, Upper: iv.Upper, Algorithm: AlgAuto,
			Stats: oracleStats(DecisionUnreachable),
		}}, nil
	}
	if haveIV && req.MaxRelError > 0 && iv.UpperKnown() && iv.Lower > 0 &&
		float64(iv.Upper-iv.Lower) <= req.MaxRelError*float64(iv.Lower) {
		return queryPlan{decision: DecisionApprox, snap: snap, answer: &QueryResult{
			Found: true, Distance: iv.Upper, Approximate: true,
			Lower: iv.Lower, Upper: iv.Upper, Algorithm: AlgAuto,
			Stats: oracleStats(DecisionApprox),
		}}, nil
	}
	pick := func(alg Algorithm, decision string) (queryPlan, error) {
		return queryPlan{alg: alg, decision: decision, snap: snap}, nil
	}
	if snap.nodes <= PlannerTinyNodes {
		return pick(AlgBSDJ, DecisionTinyBSDJ)
	}
	if snap.oracle {
		switch {
		case !snap.segBuilt:
			return pick(AlgALT, DecisionALT)
		case snap.segLthd < PlannerWeakSegFactor*snap.wmin:
			return pick(AlgALT, DecisionALTWeakSeg)
		default:
			return pick(AlgBSEG, DecisionBSEG)
		}
	}
	if snap.segBuilt {
		return pick(AlgBSEG, DecisionBSEG)
	}
	return pick(AlgBSDJ, DecisionBSDJ)
}

// cacheProbeAuto looks for a cached exact answer for (s, t) under any
// concrete algorithm at the given graph version. Misses are not counted —
// this is an opportunistic pre-planning probe, and the planner's own
// lookup accounts for the query's single miss.
func (e *Engine) cacheProbeAuto(version uint64, s, t int64) (Path, Algorithm, bool) {
	for _, alg := range []Algorithm{AlgLabel, AlgBSEG, AlgALT, AlgBSDJ, AlgBBFS, AlgBDJ, AlgDJ} {
		if p, ok := e.cache.recheck(cacheKey{version: version, alg: alg, s: s, t: t}); ok {
			return p, alg, true
		}
	}
	return Path{}, AlgAuto, false
}

// QueryResponse pairs one batch request with its outcome. Err is
// per-request: one bad request does not fail the batch.
type QueryResponse struct {
	Request QueryRequest
	Result  QueryResult
	Err     error
}

// QueryBatch answers a set of requests, fanning them across a pool of
// worker goroutines (workers <= 0 means GOMAXPROCS). Results come back in
// input order. Cancelling ctx stops the batch: requests not yet started
// fail fast with ctx.Err(), the in-flight ones die within a frontier
// iteration.
//
// The pool's parallelism pays off throughout: requests answered by the
// path cache (or the oracle) complete concurrently without touching the
// admission gate, duplicate pairs in the same batch collapse — the first
// worker to finish populates the cache, the rest hit it on the post-
// admission re-check — and distinct uncached searches run in parallel
// under shared admissions, each over its own scratch-table set.
func (e *Engine) QueryBatch(ctx context.Context, reqs []QueryRequest, workers int) []QueryResponse {
	results := make([]QueryResponse, len(reqs))
	runBatch(ctx, len(reqs), workers, func(i int) {
		res, err := e.Query(ctx, reqs[i])
		results[i] = QueryResponse{Request: reqs[i], Result: res, Err: err}
	}, func(i int) {
		results[i] = QueryResponse{Request: reqs[i], Err: ctx.Err()}
	})
	return results
}
