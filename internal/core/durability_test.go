package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// The durability test battery: snapshot/hydrate round-trips with every
// index, WAL suffix replay, a kill-mid-churn differential (the PR's
// acceptance bar: recover to the exact relational state and prove it by
// driving every algorithm against the in-memory reference), torn-tail
// recovery, skip/GC behavior, and the no-snapshot fallback contract.

// hydrateEngine opens a fresh database and hydrates an engine from dir's
// newest snapshot plus the WAL suffix.
func hydrateEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	e, err := OpenFromSnapshot(db, Options{DataDir: dir})
	if err != nil {
		t.Fatalf("hydrate: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// abandonedEngine builds an engine with durability armed and does NOT
// register Close: dropping it mid-test simulates kill -9 — the WAL fsyncs
// on every batch, so the on-disk state is exactly what a crashed process
// leaves behind.
func abandonedEngine(t *testing.T, g *graph.Graph, dir string) *Engine {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	e := NewEngine(db, Options{DataDir: dir})
	if err := e.LoadGraph(g); err != nil {
		t.Fatalf("load graph: %v", err)
	}
	return e
}

// TestSnapshotHydrate: a snapshot taken with every index built must
// hydrate a fresh engine that serves exact answers with zero rebuilds.
func TestSnapshotHydrate(t *testing.T) {
	dir := t.TempDir()
	g, _ := paperGraph(t)
	e := newTestEngine(t, g, rdb.Options{}, Options{DataDir: dir})
	if _, err := e.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}
	buildOracle(t, e)
	if _, err := e.BuildLabels(); err != nil {
		t.Fatal(err)
	}
	st, err := e.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped || st.Tables != 6 || st.Bytes <= 0 {
		t.Fatalf("snapshot stats: %+v", st)
	}

	h := hydrateEngine(t, dir)
	// The hydrated replica must have every index warm without a Build*
	// call — that is the entire point of fleet hydration.
	if h.Nodes() != e.Nodes() || h.Edges() != e.Edges() {
		t.Fatalf("hydrated shape %d/%d, want %d/%d", h.Nodes(), h.Edges(), e.Nodes(), e.Edges())
	}
	if h.SegLthd() != 6 {
		t.Fatalf("hydrated SegLthd = %d, want 6", h.SegLthd())
	}
	if h.Oracle() == nil {
		t.Fatal("hydrated engine lost the oracle")
	}
	if h.Labels() == nil {
		t.Fatal("hydrated engine lost the label index")
	}
	ds := h.DurabilityStats()
	if ds.Hydrations != 1 || ds.ReplayedRecords != 0 || !ds.Armed {
		t.Fatalf("durability stats: %+v", ds)
	}

	algs := append(allAlgorithms(), AlgLabel)
	nodes := []int64{0, 3, 5, 8, 10}
	for _, s := range nodes {
		for _, tt := range nodes {
			for _, alg := range algs {
				p, _, err := shortestPath(h, alg, s, tt)
				if err != nil {
					t.Fatalf("%v s=%d t=%d: %v", alg, s, tt, err)
				}
				checkPath(t, g, alg, s, tt, p)
			}
		}
	}

	// The hydrated SegTable must be byte-for-byte the builder's output.
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		want := segTableSnapshot(t, e, tbl)
		got := segTableSnapshot(t, h, tbl)
		if len(want) != len(got) {
			t.Fatalf("%s: %d rows hydrated, want %d", tbl, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: row %v = %d, want %d", tbl, k, got[k], v)
			}
		}
	}
}

// TestHydrateReplaysWAL: mutations applied after the last snapshot live
// only in the WAL; hydration must replay them on top of the snapshot.
func TestHydrateReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	seed := mutationDiffSeed(t, 20260807)
	rnd := rand.New(rand.NewSource(seed))
	mirror := graph.Random(20, 50, 11)
	e := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{DataDir: dir})
	if _, err := e.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	const batches = 5
	for b := 0; b < batches; b++ {
		k := 1 + rnd.Intn(4)
		muts := make([]Mutation, 0, k)
		for i := 0; i < k; i++ {
			muts = append(muts, randomMutation(t, rnd, mirror))
		}
		if _, err := e.ApplyMutations(muts); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	h := hydrateEngine(t, dir)
	ds := h.DurabilityStats()
	if ds.ReplayedRecords != batches {
		t.Fatalf("replayed %d records, want %d", ds.ReplayedRecords, batches)
	}
	buildOracle(t, h)
	for i := 0; i < 12; i++ {
		s, tt := rnd.Int63n(mirror.N), rnd.Int63n(mirror.N)
		for _, alg := range allAlgorithms() {
			p, _, err := shortestPath(h, alg, s, tt)
			if err != nil {
				t.Fatalf("%v s=%d t=%d: %v", alg, s, tt, err)
			}
			checkPath(t, mirror, alg, s, tt, p)
		}
	}

	// Post-hydration mutations must be durable too: the WAL re-arms.
	m := randomMutation(t, rnd, mirror)
	if _, err := h.ApplyMutations([]Mutation{m}); err != nil {
		t.Fatal(err)
	}
	if ds = h.DurabilityStats(); !ds.Armed || ds.WAL.Appends == 0 {
		t.Fatalf("post-hydration WAL not armed: %+v", ds)
	}
}

// TestKillMidChurnDifferential is the acceptance criterion: an engine
// killed without warning in the middle of a mutation churn (with a
// snapshot taken partway) must recover — snapshot plus WAL replay — to
// the exact relational state, proven by a differential across every
// algorithm against the in-memory reference and a SegTable row
// comparison against a from-scratch rebuild.
func TestKillMidChurnDifferential(t *testing.T) {
	const (
		steps    = 120
		nodes    = 24
		edges    = 70
		lthd     = 6
		batchMax = 6
	)
	seed := mutationDiffSeed(t, 20260808)
	t.Logf("kill-mid-churn differential: seed=%d (override with MUTATION_DIFF_SEED)", seed)
	rnd := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	var init []graph.Edge
	for i := 0; i < edges; i++ {
		init = append(init, graph.Edge{
			From: rnd.Int63n(nodes), To: rnd.Int63n(nodes), Weight: 1 + rnd.Int63n(9),
		})
	}
	mirror, err := graph.New(nodes, init)
	if err != nil {
		t.Fatal(err)
	}

	a := abandonedEngine(t, mirror.Clone(), dir)
	if _, err := a.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	applied, batches := 0, 0
	for applied < steps {
		k := 1 + rnd.Intn(batchMax)
		if applied+k > steps {
			k = steps - applied
		}
		muts := make([]Mutation, 0, k)
		for i := 0; i < k; i++ {
			muts = append(muts, randomMutation(t, rnd, mirror))
		}
		if _, err := a.ApplyMutations(muts); err != nil {
			t.Fatalf("step %d: %v", applied, err)
		}
		applied += k
		batches++
		// A mid-churn snapshot exercises the WAL reset: later batches form
		// the replay suffix, earlier ones are covered by the manifest.
		if batches == 8 {
			if _, err := a.Snapshot(context.Background()); err != nil {
				t.Fatalf("mid-churn snapshot: %v", err)
			}
		}
	}
	// Kill: a is abandoned here without Close — no final sync, no
	// snapshot. Everything the recovery sees was fsynced batch by batch.

	h := hydrateEngine(t, dir)
	ds := h.DurabilityStats()
	if ds.Hydrations != 1 || ds.ReplayedRecords == 0 {
		t.Fatalf("expected a replayed WAL suffix, got stats %+v", ds)
	}
	t.Logf("recovered: %d WAL records replayed on the mid-churn snapshot", ds.ReplayedRecords)

	if h.Edges() != mirror.M() {
		t.Fatalf("recovered edge count %d, want %d", h.Edges(), mirror.M())
	}
	buildOracle(t, h)
	for i := 0; i < 12; i++ {
		s, tt := rnd.Int63n(mirror.N), rnd.Int63n(mirror.N)
		for _, alg := range allAlgorithms() {
			p, _, err := shortestPath(h, alg, s, tt)
			if err != nil {
				t.Fatalf("%v s=%d t=%d: %v", alg, s, tt, err)
			}
			checkPath(t, mirror, alg, s, tt, p)
		}
	}

	// The recovered SegTable (snapshot rows + replayed repairs) must equal
	// a from-scratch rebuild over the final graph.
	ref := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{})
	if _, err := ref.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		want := segTableSnapshot(t, ref, tbl)
		got := segTableSnapshot(t, h, tbl)
		if len(want) != len(got) {
			t.Fatalf("%s: %d rows recovered, want %d", tbl, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: row %v = %d, want %d", tbl, k, got[k], v)
			}
		}
	}
}

// TestHydrateTornTail: a crash can tear the last WAL frame mid-write.
// Recovery must keep every intact record and drop the torn tail.
func TestHydrateTornTail(t *testing.T) {
	dir := t.TempDir()
	g, _ := paperGraph(t)
	mirror := g.Clone()
	a := abandonedEngine(t, g, dir)
	if _, err := a.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Batch 1 survives: mirrored on the reference.
	if err := mirror.InsertEdge(0, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyMutations([]Mutation{{Op: MutInsert, From: 0, To: 10, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "mutations.wal")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	intact := fi.Size()

	// Batch 2 gets torn: applied to the engine, NOT the mirror, then the
	// file is cut 5 bytes into its frame.
	if _, err := a.ApplyMutations([]Mutation{{Op: MutDelete, From: 0, To: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, intact+5); err != nil {
		t.Fatal(err)
	}

	h := hydrateEngine(t, dir)
	ds := h.DurabilityStats()
	if ds.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (the intact batch)", ds.ReplayedRecords)
	}
	buildOracle(t, h)
	for _, pair := range [][2]int64{{0, 10}, {0, 7}, {4, 9}} {
		for _, alg := range allAlgorithms() {
			p, _, err := shortestPath(h, alg, pair[0], pair[1])
			if err != nil {
				t.Fatalf("%v %v: %v", alg, pair, err)
			}
			checkPath(t, mirror, alg, pair[0], pair[1], p)
		}
	}
}

// TestSnapshotSkipUnchanged: snapshotting an unmoved graph version writes
// nothing — periodic snapshots are free on an idle server.
func TestSnapshotSkipUnchanged(t *testing.T) {
	dir := t.TempDir()
	g, _ := paperGraph(t)
	e := newTestEngine(t, g, rdb.Options{}, Options{DataDir: dir})
	if _, err := e.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := e.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Skipped {
		t.Fatalf("second snapshot not skipped: %+v", st)
	}
	if ds := e.DurabilityStats(); ds.Snapshots != 1 || ds.SnapshotSkips != 1 {
		t.Fatalf("stats: %+v", ds)
	}
}

// TestSnapshotGCBoundsVersions: repeated mutate+snapshot cycles must not
// accumulate snapshot versions on disk — GC keeps the newest two.
func TestSnapshotGCBoundsVersions(t *testing.T) {
	dir := t.TempDir()
	g, _ := paperGraph(t)
	e := newTestEngine(t, g, rdb.Options{}, Options{DataDir: dir})
	for i := 0; i < 4; i++ {
		m := Mutation{Op: MutInsert, From: 0, To: int64(4 + i), Weight: int64(20 + i)}
		if _, err := e.ApplyMutations([]Mutation{m}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Snapshot(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, ent := range entries {
		if ent.IsDir() {
			dirs = append(dirs, ent.Name())
		}
	}
	if len(dirs) > 2 {
		t.Fatalf("GC left %d snapshot versions on disk: %v", len(dirs), dirs)
	}
	if ds := e.DurabilityStats(); ds.GCRemoved < 2 {
		t.Fatalf("expected >= 2 versions reclaimed, stats %+v", ds)
	}
}

// TestOpenFromSnapshotEmpty: with no snapshot on disk, OpenFromSnapshot
// fails with ErrNoSnapshot and leaves the database usable for the
// LoadGraph fallback.
func TestOpenFromSnapshotEmpty(t *testing.T) {
	dir := t.TempDir()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := OpenFromSnapshot(db, Options{DataDir: dir}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	// Fallback path: the same DB must accept a fresh engine and load.
	g, _ := paperGraph(t)
	e := NewEngine(db, Options{DataDir: dir})
	t.Cleanup(func() { e.Close() })
	if err := e.LoadGraph(g); err != nil {
		t.Fatalf("fallback load after failed hydration: %v", err)
	}
	if _, err := e.Snapshot(context.Background()); err != nil {
		t.Fatalf("first snapshot after fallback: %v", err)
	}
}
