package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// The differential suite: every relational algorithm against the in-memory
// Dijkstra reference on random and power-law graphs, explicitly covering
// s==t, unreachable pairs, and re-querying after InsertEdge. checkPath
// verifies Found, the distance, the endpoints, and that the returned node
// sequence is a real path of exactly the shortest length.

// differentialGraphs returns the two workload shapes with one guaranteed
// unreachable node appended (no edges touch it).
func differentialGraphs() map[string]*graph.Graph {
	out := map[string]*graph.Graph{}
	rnd := graph.Random(50, 150, 1234)
	pow := graph.Power(60, 3, 99)
	for name, g := range map[string]*graph.Graph{"random": rnd, "power": pow} {
		widened, err := graph.New(g.N+1, g.Edges) // node g.N is isolated
		if err != nil {
			panic(err)
		}
		out[name] = widened
	}
	return out
}

func TestDifferentialAllAlgorithms(t *testing.T) {
	for name, g := range differentialGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, g, rdb.Options{}, Options{})
			if _, err := e.BuildSegTable(8); err != nil {
				t.Fatalf("segtable: %v", err)
			}
			buildOracle(t, e)
			iso := g.N - 1 // the appended isolated node
			queries := graph.RandomQueries(g, 8, 7)
			queries = append(queries,
				[2]int64{3, 3},     // s == t
				[2]int64{0, iso},   // unreachable target
				[2]int64{iso, 0},   // unreachable source
				[2]int64{iso, iso}, // degenerate on the isolated node
			)
			for _, alg := range allAlgorithms() {
				for _, q := range queries {
					p, _, err := shortestPath(e, alg, q[0], q[1])
					if err != nil {
						t.Fatalf("%v s=%d t=%d: %v", alg, q[0], q[1], err)
					}
					checkPath(t, g, alg, q[0], q[1], p)
				}
			}

			// Insert a shortcut edge between two random-query endpoints and
			// re-run every algorithm: answers must track the new graph
			// (IN particular the oracle must not serve stale ALT bounds).
			u, v := queries[0][0], queries[1][1]
			if _, err := e.InsertEdge(u, v, 1); err != nil {
				t.Fatalf("insert edge: %v", err)
			}
			g2, err := graph.New(g.N, append(append([]graph.Edge{}, g.Edges...),
				graph.Edge{From: u, To: v, Weight: 1}))
			if err != nil {
				t.Fatal(err)
			}
			buildOracle(t, e) // ALT needs a rebuild after the graph change
			for _, alg := range allAlgorithms() {
				for _, q := range queries {
					p, _, err := shortestPath(e, alg, q[0], q[1])
					if err != nil {
						t.Fatalf("post-insert %v s=%d t=%d: %v", alg, q[0], q[1], err)
					}
					checkPath(t, g2, alg, q[0], q[1], p)
				}
			}
		})
	}
}

// TestALTAgainstBSDJ pins the tentpole's exactness claim the long way
// round: on a larger power-law graph, ALT and BSDJ answers agree with the
// reference on every query, and ALT actually prunes (settles candidates
// without expansion) while affecting fewer tuples in total.
func TestALTAgainstBSDJ(t *testing.T) {
	g := graph.Power(400, 3, 5)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})
	if _, err := e.BuildOracle(oracle.Config{K: 8, Strategy: oracle.Degree}); err != nil {
		t.Fatal(err)
	}
	queries := graph.RandomQueries(g, 10, 21)
	var altAffected, bsdjAffected, pruned int64
	for _, q := range queries {
		pa, qsa, err := shortestPath(e, AlgALT, q[0], q[1])
		if err != nil {
			t.Fatalf("ALT s=%d t=%d: %v", q[0], q[1], err)
		}
		checkPath(t, g, AlgALT, q[0], q[1], pa)
		pb, qsb, err := shortestPath(e, AlgBSDJ, q[0], q[1])
		if err != nil {
			t.Fatalf("BSDJ s=%d t=%d: %v", q[0], q[1], err)
		}
		if pa.Found != pb.Found || (pa.Found && pa.Length != pb.Length) {
			t.Fatalf("ALT and BSDJ disagree on s=%d t=%d: %+v vs %+v", q[0], q[1], pa, pb)
		}
		altAffected += qsa.TuplesAffected
		bsdjAffected += qsb.TuplesAffected
		pruned += qsa.PrunedRows
	}
	if pruned == 0 {
		t.Error("ALT never pruned a candidate on a power-law workload")
	}
	if altAffected >= bsdjAffected {
		t.Errorf("ALT should affect fewer tuples than BSDJ: %d vs %d", altAffected, bsdjAffected)
	}
	t.Logf("tuples affected: ALT=%d BSDJ=%d (pruned %d candidates)", altAffected, bsdjAffected, pruned)
}

// TestApproxDistanceBounds is the bracketing property test: for every pair
// of a random workload, Lower <= dist(s,t) <= Upper, an unreachable
// verdict is never wrong, and unreachable pairs never get a finite upper
// bound.
func TestApproxDistanceBounds(t *testing.T) {
	for name, g := range differentialGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, g, rdb.Options{}, Options{})
			for _, strat := range []oracle.Strategy{oracle.Degree, oracle.Farthest} {
				if _, err := e.BuildOracle(oracle.Config{K: 6, Strategy: strat}); err != nil {
					t.Fatal(err)
				}
				iso := g.N - 1
				pairs := graph.RandomQueries(g, 30, 17)
				pairs = append(pairs, [2]int64{2, 2}, [2]int64{0, iso}, [2]int64{iso, 0})
				for _, q := range pairs {
					iv, err := approxDistance(e, q[0], q[1])
					if err != nil {
						t.Fatalf("%v approx s=%d t=%d: %v", strat, q[0], q[1], err)
					}
					ref := graph.MDJ(g, q[0], q[1])
					if ref.Found {
						if iv.Unreachable() {
							t.Fatalf("%v s=%d t=%d: unreachable verdict but dist=%d", strat, q[0], q[1], ref.Distance)
						}
						if iv.Lower > ref.Distance {
							t.Fatalf("%v s=%d t=%d: lower %d > dist %d", strat, q[0], q[1], iv.Lower, ref.Distance)
						}
						if iv.UpperKnown() && iv.Upper < ref.Distance {
							t.Fatalf("%v s=%d t=%d: upper %d < dist %d", strat, q[0], q[1], iv.Upper, ref.Distance)
						}
					} else if iv.UpperKnown() {
						t.Fatalf("%v s=%d t=%d: finite upper %d on an unreachable pair", strat, q[0], q[1], iv.Upper)
					}
					if iv.Lower > iv.Upper {
						t.Fatalf("%v s=%d t=%d: inverted interval [%d, %d]", strat, q[0], q[1], iv.Lower, iv.Upper)
					}
				}
			}
		})
	}
}

// TestApproxConcurrent hammers the latch-free ApproxDistance from many
// goroutines while exact searches, edge inserts and oracle rebuilds run —
// the optimistic version-validation path. Run under -race in CI. The only
// acceptable failures are the explicit "oracle not built" and "graph kept
// changing" refusals during the mutation window.
func TestApproxConcurrent(t *testing.T) {
	g := graph.Power(200, 3, 13)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildOracle(oracle.Config{K: 4}); err != nil {
		t.Fatal(err)
	}
	queries := graph.RandomQueries(g, 8, 5)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(seed+i)%len(queries)]
				iv, err := approxDistance(e, q[0], q[1])
				if err != nil {
					if !strings.Contains(err.Error(), "BuildOracle") &&
						!strings.Contains(err.Error(), "kept changing") {
						errs <- err
					}
					continue
				}
				if iv.Lower > iv.Upper {
					errs <- fmt.Errorf("inverted interval [%d, %d]", iv.Lower, iv.Upper)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			q := queries[i%len(queries)]
			if _, _, err := shortestPath(e, AlgBSDJ, q[0], q[1]); err != nil {
				errs <- err
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.InsertEdge(1, 100, 2); err != nil {
			errs <- err
		}
		if _, err := e.BuildOracle(oracle.Config{K: 4}); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent approx: %v", err)
	}
}

// TestOracleInvalidation: graph changes must invalidate the oracle so ALT
// and ApproxDistance cannot serve unsound bounds, and a rebuild restores
// them.
func TestOracleInvalidation(t *testing.T) {
	g := graph.Random(30, 90, 3)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if e.Oracle() == nil {
		t.Fatal("oracle should be built")
	}
	if _, err := approxDistance(e, 0, 1); err != nil {
		t.Fatalf("approx before invalidation: %v", err)
	}
	v0 := e.GraphVersion()
	if _, err := e.InsertEdge(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if e.GraphVersion() == v0 {
		t.Error("InsertEdge must bump the graph version")
	}
	if e.Oracle() != nil {
		t.Error("InsertEdge must invalidate the oracle")
	}
	if _, _, err := shortestPath(e, AlgALT, 0, 1); err == nil {
		t.Error("ALT must refuse to run on an invalidated oracle")
	}
	if _, err := approxDistance(e, 0, 1); err == nil {
		t.Error("ApproxDistance must refuse to run on an invalidated oracle")
	}
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := shortestPath(e, AlgALT, 0, 1); err != nil {
		t.Errorf("ALT after rebuild: %v", err)
	}
	// LoadGraph also invalidates.
	if err := e.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	if e.Oracle() != nil {
		t.Error("LoadGraph must invalidate the oracle")
	}
}
