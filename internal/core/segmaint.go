package core

import (
	"context"
	"time"
)

// Incremental SegTable maintenance for edge insertions — the paper's third
// future-work item ("the pre-computed results, such as SegTable, should be
// maintained incrementally").
//
// Soundness: weights are positive, so a new shortest path within lthd that
// uses the new edge (u,v) exactly once decomposes into a pre-existing
// shortest prefix x -> u (possibly empty), the edge, and a pre-existing
// shortest suffix v -> y (possibly empty). Both halves are within lthd,
// hence already recorded in the SegTable (or trivial). Four MERGE
// statements per direction — one per {x = u, x != u} x {y = v, y != v}
// combination — therefore cover every improved pair. Weight decreases are
// the same case (UpdateEdgeWeight). Edge deletions and weight increases
// can lengthen distances and take the decremental path of mutation.go: a
// touch set over the same four shapes, recomputed by a bounded sweep.
//
// Statement texts are rendered once at package init (the eight
// maintenance shapes below); each mutation only binds (u, v, w, lthd), so
// batches re-execute cached plans instead of re-rendering SQL per edge.

// MaintStats reports one maintenance step (a single edge mutation or an
// ApplyMutations batch).
type MaintStats struct {
	// Applied counts the mutations fully applied. On success it equals the
	// batch length; on an execution error it reports the persisted prefix
	// (ApplyMutations returns the partial stats alongside the error).
	Applied int
	// Affected counts SegTable rows inserted or improved by insertion
	// maintenance plus rows in decremental touch sets.
	Affected int64
	// Repaired counts rows re-materialized by scoped decremental repairs.
	Repaired int64
	// Rebuilt reports that some decremental touch set exceeded
	// Options.RepairThreshold and the index was rebuilt wholesale.
	Rebuilt bool
	// OracleInvalidated reports that this mutation killed a built landmark
	// oracle: ALT and ApproxDistance refuse until BuildOracle runs again.
	OracleInvalidated bool
	// LabelsInvalidated reports that this mutation (or batch) failed the
	// hub-label keep-analysis and sent the label index cold: AlgLabel
	// refuses until BuildLabels runs again. A mutation the analysis
	// absorbed leaves it false and counts in MutationCounters.LabelKeeps.
	LabelsInvalidated bool
	// Version is the graph generation the mutation committed as, read
	// while the batch still holds the query latch (GraphVersion read
	// afterwards could already belong to a later batch).
	Version    uint64
	Statements int
	Time       time.Duration
}

// InsertEdge adds a (from, to, weight) edge to TEdges and, when a SegTable
// is built, incrementally maintains TOutSegs and TInSegs.
func (e *Engine) InsertEdge(from, to, weight int64) (*MaintStats, error) {
	return e.applyMutations([]Mutation{{Op: MutInsert, From: from, To: to, Weight: weight}}, false)
}

// maintShape is one candidate-pair source of the insertion maintenance:
// the source select, its fused MERGE form, and the binder producing the
// arguments from the mutated edge (u, v, w) and the index threshold.
type maintShape struct {
	src   string
	merge string
	args  func(u, v, w, lthd int64) []any
}

// maintMerge renders the maintenance MERGE skeleton for one target table
// and candidate-pair source.
func maintMerge(target, src string) string {
	return "MERGE INTO " + target + " AS target USING (" + src + ") AS source (fid, tid, pid, cost) " +
		"ON (target.fid = source.fid AND target.tid = source.tid) " +
		"WHEN MATCHED AND target.cost > source.cost THEN UPDATE SET cost = source.cost, pid = source.pid " +
		"WHEN NOT MATCHED THEN INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.pid, source.cost)"
}

func maintShapes(target string, srcs []string, binders []func(u, v, w, lthd int64) []any) []maintShape {
	out := make([]maintShape, len(srcs))
	for i, src := range srcs {
		out[i] = maintShape{src: src, merge: maintMerge(target, src), args: binders[i]}
	}
	return out
}

// The four forward shapes (TOutSegs; pid = predecessor of tid on the path)
// and the four backward shapes (TInSegs; pid = successor of fid), per the
// {x = u, x != u} x {y = v, y != v} decomposition.
var (
	maintFwdShapes = maintShapes(TblOutSegs,
		[]string{
			// 1) the pair (u, v) itself: pid = u.
			"SELECT ?, ?, ?, ?",
			// 2) x != u, y = v: prefixes x -> u from TInSegs (clustered on tid).
			"SELECT a.fid, ?, ?, a.cost + ? FROM " + TblInSegs +
				" a WHERE a.tid = ? AND a.fid <> ? AND a.cost + ? <= ?",
			// 3) x = u, y != v: suffixes v -> y from TOutSegs (clustered on fid).
			"SELECT ?, b.tid, b.pid, b.cost + ? FROM " + TblOutSegs +
				" b WHERE b.fid = ? AND b.tid <> ? AND b.cost + ? <= ?",
			// 4) x != u, y != v: both halves, deduped to the cheapest per pair.
			"SELECT fid, tid, pid, cost FROM (" +
				"SELECT a.fid, b.tid, b.pid, a.cost + ? + b.cost, " +
				"ROW_NUMBER() OVER (PARTITION BY a.fid, b.tid ORDER BY a.cost + b.cost) " +
				"FROM " + TblInSegs + " a, " + TblOutSegs + " b " +
				"WHERE a.tid = ? AND b.fid = ? AND a.fid <> ? AND b.tid <> ? AND a.fid <> b.tid " +
				"AND a.cost + b.cost + ? <= ?" +
				") tmp (fid, tid, pid, cost, rn) WHERE rn = 1",
		},
		[]func(u, v, w, lthd int64) []any{
			func(u, v, w, _ int64) []any { return []any{u, v, u, w} },
			func(u, v, w, lthd int64) []any { return []any{v, u, w, u, v, w, lthd} },
			func(u, v, w, lthd int64) []any { return []any{u, w, v, u, w, lthd} },
			func(u, v, w, lthd int64) []any { return []any{w, u, v, v, u, w, lthd} },
		})

	maintBwdShapes = maintShapes(TblInSegs,
		[]string{
			// 1) the pair (u, v): successor of u is v.
			"SELECT ?, ?, ?, ?",
			// 2) x != u, y = v: prefixes x -> u keep their successor pid.
			"SELECT a.fid, ?, a.pid, a.cost + ? FROM " + TblInSegs +
				" a WHERE a.tid = ? AND a.fid <> ? AND a.cost + ? <= ?",
			// 3) x = u, y != v: successor of u is v on every u -> v -> y path.
			"SELECT ?, b.tid, ?, b.cost + ? FROM " + TblOutSegs +
				" b WHERE b.fid = ? AND b.tid <> ? AND b.cost + ? <= ?",
			// 4) x != u, y != v: successor comes from the prefix half.
			"SELECT fid, tid, pid, cost FROM (" +
				"SELECT a.fid, b.tid, a.pid, a.cost + ? + b.cost, " +
				"ROW_NUMBER() OVER (PARTITION BY a.fid, b.tid ORDER BY a.cost + b.cost) " +
				"FROM " + TblInSegs + " a, " + TblOutSegs + " b " +
				"WHERE a.tid = ? AND b.fid = ? AND a.fid <> ? AND b.tid <> ? AND a.fid <> b.tid " +
				"AND a.cost + b.cost + ? <= ?" +
				") tmp (fid, tid, pid, cost, rn) WHERE rn = 1",
		},
		[]func(u, v, w, lthd int64) []any{
			func(u, v, w, _ int64) []any { return []any{u, v, v, w} },
			func(u, v, w, lthd int64) []any { return []any{v, w, u, v, w, lthd} },
			func(u, v, w, lthd int64) []any { return []any{u, v, w, v, u, w, lthd} },
			func(u, v, w, lthd int64) []any { return []any{w, u, v, v, u, w, lthd} },
		})
)

// maintainDirection updates TOutSegs (forward=true) or TInSegs with the
// consequences of the new edge (u, v, w) by running the four pre-rendered
// maintenance shapes with the edge bound as parameters.
func (e *Engine) maintainDirection(ctx context.Context, qs *QueryStats, u, v, w int64, forward bool) (int64, error) {
	lthd := e.segLthd
	shapes, target := maintFwdShapes, TblOutSegs
	if !forward {
		shapes, target = maintBwdShapes, TblInSegs
	}
	useMerge := e.db.Profile().SupportsMerge
	var total int64
	for _, sh := range shapes {
		args := sh.args(u, v, w, lthd)
		var n int64
		var err error
		if useMerge {
			n, err = e.exec(ctx, qs, nil, nil, sh.merge, args...)
		} else {
			n, err = e.mergelessMaintain(ctx, qs, target, sh.src, args)
		}
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Mergeless maintenance statement shapes (created lazily with TSegMaint).
const (
	segMaintClearQ = "DELETE FROM TSegMaint"
	segMaintInsQ   = "INSERT INTO TSegMaint (fid, tid, pid, cost) "
)

func maintUpdate(target string) string {
	return "UPDATE " + target + " SET cost = s.cost, pid = s.pid FROM TSegMaint s " +
		"WHERE " + target + ".fid = s.fid AND " + target + ".tid = s.tid AND " + target + ".cost > s.cost"
}

func maintInsert(target string) string {
	return "INSERT INTO " + target + " (fid, tid, pid, cost) SELECT s.fid, s.tid, s.pid, s.cost FROM TSegMaint s " +
		"WHERE NOT EXISTS (SELECT fid FROM " + target + " g WHERE g.fid = s.fid AND g.tid = s.tid)"
}

var (
	maintUpdateQ = map[string]string{TblOutSegs: maintUpdate(TblOutSegs), TblInSegs: maintUpdate(TblInSegs)}
	maintInsertQ = map[string]string{TblOutSegs: maintInsert(TblOutSegs), TblInSegs: maintInsert(TblInSegs)}
)

// mergelessMaintain emulates the maintenance MERGE with UPDATE + INSERT on
// profiles without MERGE support.
func (e *Engine) mergelessMaintain(ctx context.Context, qs *QueryStats, target, srcSelect string, args []any) (int64, error) {
	if _, ok := e.db.Catalog().Get("TSegMaint"); !ok {
		for _, q := range []string{
			"CREATE TABLE TSegMaint (fid INT, tid INT, pid INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegmaint_key ON TSegMaint (fid, tid)",
		} {
			if _, err := e.sess.Exec(q); err != nil {
				return 0, err
			}
			qs.Statements++
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, segMaintClearQ); err != nil {
		return 0, err
	}
	if _, err := e.exec(ctx, qs, nil, nil, segMaintInsQ+srcSelect, args...); err != nil {
		return 0, err
	}
	n1, err := e.exec(ctx, qs, nil, nil, maintUpdateQ[target])
	if err != nil {
		return 0, err
	}
	n2, err := e.exec(ctx, qs, nil, nil, maintInsertQ[target])
	if err != nil {
		return 0, err
	}
	return n1 + n2, nil
}
