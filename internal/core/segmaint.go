package core

import (
	"context"
	"fmt"
	"time"
)

// Incremental SegTable maintenance for edge insertions — the paper's third
// future-work item ("the pre-computed results, such as SegTable, should be
// maintained incrementally").
//
// Soundness: weights are positive, so a new shortest path within lthd that
// uses the new edge (u,v) exactly once decomposes into a pre-existing
// shortest prefix x -> u (possibly empty), the edge, and a pre-existing
// shortest suffix v -> y (possibly empty). Both halves are within lthd,
// hence already recorded in the SegTable (or trivial). Four MERGE
// statements per direction — one per {x = u, x != u} x {y = v, y != v}
// combination — therefore cover every improved pair. Weight decreases are
// the same case (UpdateEdgeWeight). Edge deletions and weight increases
// can lengthen distances and take the decremental path of mutation.go: a
// touch set over the same four shapes, recomputed by a bounded sweep.

// MaintStats reports one maintenance step (a single edge mutation or an
// ApplyMutations batch).
type MaintStats struct {
	// Applied counts the mutations fully applied. On success it equals the
	// batch length; on an execution error it reports the persisted prefix
	// (ApplyMutations returns the partial stats alongside the error).
	Applied int
	// Affected counts SegTable rows inserted or improved by insertion
	// maintenance plus rows in decremental touch sets.
	Affected int64
	// Repaired counts rows re-materialized by scoped decremental repairs.
	Repaired int64
	// Rebuilt reports that some decremental touch set exceeded
	// Options.RepairThreshold and the index was rebuilt wholesale.
	Rebuilt bool
	// OracleInvalidated reports that this mutation killed a built landmark
	// oracle: ALT and ApproxDistance refuse until BuildOracle runs again.
	OracleInvalidated bool
	// Version is the graph generation the mutation committed as, read
	// while the batch still holds the query latch (GraphVersion read
	// afterwards could already belong to a later batch).
	Version    uint64
	Statements int
	Time       time.Duration
}

// InsertEdge adds a (from, to, weight) edge to TEdges and, when a SegTable
// is built, incrementally maintains TOutSegs and TInSegs.
func (e *Engine) InsertEdge(from, to, weight int64) (*MaintStats, error) {
	return e.applyMutations([]Mutation{{Op: MutInsert, From: from, To: to, Weight: weight}}, false)
}

// maintainDirection updates TOutSegs (forward=true) or TInSegs with the
// consequences of the new edge (u, v, w).
func (e *Engine) maintainDirection(ctx context.Context, qs *QueryStats, u, v, w int64, forward bool) (int64, error) {
	lthd := e.segLthd
	var total int64

	// mergeInto builds the MERGE skeleton for one candidate-pair source.
	target := TblOutSegs
	if !forward {
		target = TblInSegs
	}
	mergeInto := func(srcSelect string, args ...any) (int64, error) {
		q := fmt.Sprintf(
			"MERGE INTO %s AS target USING (%s) AS source (fid, tid, pid, cost) "+
				"ON (target.fid = source.fid AND target.tid = source.tid) "+
				"WHEN MATCHED AND target.cost > source.cost THEN UPDATE SET cost = source.cost, pid = source.pid "+
				"WHEN NOT MATCHED THEN INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.pid, source.cost)",
			target, srcSelect)
		if !e.db.Profile().SupportsMerge {
			return e.mergelessMaintain(ctx, qs, target, srcSelect, args)
		}
		return e.exec(ctx, qs, nil, nil, q, args...)
	}

	// pid semantics: TOutSegs.pid = predecessor of tid on the path;
	// TInSegs.pid = successor of fid on the path.
	if forward {
		// 1) the pair (u, v) itself: pid = u.
		n, err := mergeInto("SELECT ?, ?, ?, ?", u, v, u, w)
		if err != nil {
			return 0, err
		}
		total += n
		// 2) x != u, y = v: prefixes x -> u from TInSegs (clustered on tid).
		n, err = mergeInto(fmt.Sprintf(
			"SELECT a.fid, ?, ?, a.cost + ? FROM %s a WHERE a.tid = ? AND a.fid <> ? AND a.cost + ? <= ?",
			TblInSegs), v, u, w, u, v, w, lthd)
		if err != nil {
			return 0, err
		}
		total += n
		// 3) x = u, y != v: suffixes v -> y from TOutSegs (clustered on fid).
		n, err = mergeInto(fmt.Sprintf(
			"SELECT ?, b.tid, b.pid, b.cost + ? FROM %s b WHERE b.fid = ? AND b.tid <> ? AND b.cost + ? <= ?",
			TblOutSegs), u, w, v, u, w, lthd)
		if err != nil {
			return 0, err
		}
		total += n
		// 4) x != u, y != v: both halves, deduped to the cheapest per pair.
		n, err = mergeInto(fmt.Sprintf(
			"SELECT fid, tid, pid, cost FROM ("+
				"SELECT a.fid, b.tid, b.pid, a.cost + ? + b.cost, "+
				"ROW_NUMBER() OVER (PARTITION BY a.fid, b.tid ORDER BY a.cost + b.cost) "+
				"FROM %s a, %s b "+
				"WHERE a.tid = ? AND b.fid = ? AND a.fid <> ? AND b.tid <> ? AND a.fid <> b.tid "+
				"AND a.cost + b.cost + ? <= ?"+
				") tmp (fid, tid, pid, cost, rn) WHERE rn = 1",
			TblInSegs, TblOutSegs), w, u, v, v, u, w, lthd)
		if err != nil {
			return 0, err
		}
		total += n
		return total, nil
	}

	// TInSegs: rows (fid=x, tid=y, pid=successor of x, cost).
	// 1) the pair (u, v): successor of u is v.
	n, err := mergeInto("SELECT ?, ?, ?, ?", u, v, v, w)
	if err != nil {
		return 0, err
	}
	total += n
	// 2) x != u, y = v: prefixes x -> u keep their successor pid.
	n, err = mergeInto(fmt.Sprintf(
		"SELECT a.fid, ?, a.pid, a.cost + ? FROM %s a WHERE a.tid = ? AND a.fid <> ? AND a.cost + ? <= ?",
		TblInSegs), v, w, u, v, w, lthd)
	if err != nil {
		return 0, err
	}
	total += n
	// 3) x = u, y != v: successor of u is v on every u -> v -> y path.
	n, err = mergeInto(fmt.Sprintf(
		"SELECT ?, b.tid, ?, b.cost + ? FROM %s b WHERE b.fid = ? AND b.tid <> ? AND b.cost + ? <= ?",
		TblOutSegs), u, v, w, v, u, w, lthd)
	if err != nil {
		return 0, err
	}
	total += n
	// 4) x != u, y != v: successor comes from the prefix half.
	n, err = mergeInto(fmt.Sprintf(
		"SELECT fid, tid, pid, cost FROM ("+
			"SELECT a.fid, b.tid, a.pid, a.cost + ? + b.cost, "+
			"ROW_NUMBER() OVER (PARTITION BY a.fid, b.tid ORDER BY a.cost + b.cost) "+
			"FROM %s a, %s b "+
			"WHERE a.tid = ? AND b.fid = ? AND a.fid <> ? AND b.tid <> ? AND a.fid <> b.tid "+
			"AND a.cost + b.cost + ? <= ?"+
			") tmp (fid, tid, pid, cost, rn) WHERE rn = 1",
		TblInSegs, TblOutSegs), w, u, v, v, u, w, lthd)
	if err != nil {
		return 0, err
	}
	total += n
	return total, nil
}

// mergelessMaintain emulates the maintenance MERGE with UPDATE + INSERT on
// profiles without MERGE support.
func (e *Engine) mergelessMaintain(ctx context.Context, qs *QueryStats, target, srcSelect string, args []any) (int64, error) {
	if _, ok := e.db.Catalog().Get("TSegMaint"); !ok {
		for _, q := range []string{
			"CREATE TABLE TSegMaint (fid INT, tid INT, pid INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegmaint_key ON TSegMaint (fid, tid)",
		} {
			if _, err := e.sess.Exec(q); err != nil {
				return 0, err
			}
			qs.Statements++
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM TSegMaint"); err != nil {
		return 0, err
	}
	insQ := fmt.Sprintf("INSERT INTO TSegMaint (fid, tid, pid, cost) %s", srcSelect)
	if _, err := e.exec(ctx, qs, nil, nil, insQ, args...); err != nil {
		return 0, err
	}
	updQ := fmt.Sprintf(
		"UPDATE %[1]s SET cost = s.cost, pid = s.pid FROM TSegMaint s "+
			"WHERE %[1]s.fid = s.fid AND %[1]s.tid = s.tid AND %[1]s.cost > s.cost", target)
	n1, err := e.exec(ctx, qs, nil, nil, updQ)
	if err != nil {
		return 0, err
	}
	ins2Q := fmt.Sprintf(
		"INSERT INTO %[1]s (fid, tid, pid, cost) SELECT s.fid, s.tid, s.pid, s.cost FROM TSegMaint s "+
			"WHERE NOT EXISTS (SELECT fid FROM %[1]s g WHERE g.fid = s.fid AND g.tid = s.tid)", target)
	n2, err := e.exec(ctx, qs, nil, nil, ins2Q)
	if err != nil {
		return 0, err
	}
	return n1 + n2, nil
}
