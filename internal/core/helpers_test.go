package core

import "context"

// shortestPath is the test-suite shim for the pre-PR5 Engine.ShortestPath
// wrapper: one exact query with an explicit algorithm hint.
func shortestPath(e *Engine, alg Algorithm, s, t int64) (Path, *QueryStats, error) {
	res, err := e.Query(context.Background(), QueryRequest{Source: s, Target: t, Alg: alg})
	return res.Path, res.Stats, err
}

// approxDistance is the test-suite shim for the pre-PR5 Engine.ApproxDistance
// wrapper: a latch-free oracle interval read.
func approxDistance(e *Engine, s, t int64) (Interval, error) {
	return e.DistanceInterval(context.Background(), s, t)
}
