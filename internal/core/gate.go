package core

import (
	"context"
	"sync"

	"repro/internal/rdb"
)

// queryGate is the engine's admission control: read-only searches enter the
// shared side and run concurrently (each over its own scratch-table set),
// while mutators — LoadGraph, ApplyMutations, BuildSegTable, BuildOracle,
// MST, Reachable — take the exclusive side, draining every in-flight reader
// first and blocking new ones. It replaces the old one-slot query latch,
// which serialized all searches because they shared one TVisited table.
//
// The gate is writer-preferring: once a writer is queued, new readers hold
// back until every queued writer has run, so a steady stream of queries can
// never starve a mutation. Waiters of either kind abandon the queue when
// their context dies — a request stuck behind a slow search fails at its
// deadline without ever touching the database.
//
// Waiting uses a broadcast channel replaced on every release (close wakes
// all waiters; each re-checks the admission predicate under the mutex), so
// cancellation composes with queueing through a plain select.
type queryGate struct {
	mu             sync.Mutex
	readers        int
	writer         bool
	readersWaiting int
	writersWaiting int
	turn           chan struct{}

	// Counters for /stats and the concurrency tests.
	sharedAdmits    uint64
	exclusiveAdmits uint64
	abandons        uint64
	drains          uint64 // exclusive admissions that waited for the gate
	peakReaders     int
}

// GateStats snapshots the admission gate for the serving tier.
type GateStats struct {
	// SharedAdmits / ExclusiveAdmits count successful admissions.
	SharedAdmits    uint64 `json:"shared_admits"`
	ExclusiveAdmits uint64 `json:"exclusive_admits"`
	// Abandons counts waiters that gave up on a cancelled context.
	Abandons uint64 `json:"abandons"`
	// Drains counts exclusive admissions that had to wait (for readers to
	// finish or another writer to release).
	Drains uint64 `json:"drains"`
	// Readers is the current in-flight reader count; PeakReaders its
	// high-water mark — direct evidence of parallel read admission.
	Readers        int  `json:"readers"`
	PeakReaders    int  `json:"peak_readers"`
	ReadersWaiting int  `json:"readers_waiting"`
	WritersWaiting int  `json:"writers_waiting"`
	WriterActive   bool `json:"writer_active"`
}

func newQueryGate() *queryGate {
	return &queryGate{turn: make(chan struct{})}
}

// broadcastLocked wakes every waiter to re-check admission.
func (g *queryGate) broadcastLocked() {
	close(g.turn)
	g.turn = make(chan struct{})
}

// lockShared admits a reader, waiting while a writer runs or is queued.
func (g *queryGate) lockShared(ctx context.Context) error {
	if err := rdb.ContextErr(ctx); err != nil {
		return err
	}
	g.mu.Lock()
	for g.writer || g.writersWaiting > 0 {
		g.readersWaiting++
		ch := g.turn
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			g.mu.Lock()
			g.readersWaiting--
			g.abandons++
			g.mu.Unlock()
			return ctx.Err()
		}
		g.mu.Lock()
		g.readersWaiting--
	}
	g.readers++
	g.sharedAdmits++
	if g.readers > g.peakReaders {
		g.peakReaders = g.readers
	}
	g.mu.Unlock()
	return nil
}

// unlockShared releases a reader; the last one out wakes queued writers.
func (g *queryGate) unlockShared() {
	g.mu.Lock()
	g.readers--
	if g.readers == 0 {
		g.broadcastLocked()
	}
	g.mu.Unlock()
}

// lockExclusive admits a writer once every reader has drained and no other
// writer runs. On cancellation the waiter withdraws its queue slot and, if
// it was the last queued writer, wakes the readers it was holding back.
func (g *queryGate) lockExclusive(ctx context.Context) error {
	if err := rdb.ContextErr(ctx); err != nil {
		return err
	}
	g.mu.Lock()
	g.writersWaiting++
	waited := false
	for g.writer || g.readers > 0 {
		waited = true
		ch := g.turn
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			g.mu.Lock()
			g.writersWaiting--
			g.abandons++
			if g.writersWaiting == 0 {
				g.broadcastLocked()
			}
			g.mu.Unlock()
			return ctx.Err()
		}
		g.mu.Lock()
	}
	g.writersWaiting--
	g.writer = true
	g.exclusiveAdmits++
	if waited {
		g.drains++
	}
	g.mu.Unlock()
	return nil
}

// unlockExclusive releases the writer and wakes everyone queued.
func (g *queryGate) unlockExclusive() {
	g.mu.Lock()
	g.writer = false
	g.broadcastLocked()
	g.mu.Unlock()
}

// stats snapshots the gate.
func (g *queryGate) stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		SharedAdmits:    g.sharedAdmits,
		ExclusiveAdmits: g.exclusiveAdmits,
		Abandons:        g.abandons,
		Drains:          g.drains,
		Readers:         g.readers,
		PeakReaders:     g.peakReaders,
		ReadersWaiting:  g.readersWaiting,
		WritersWaiting:  g.writersWaiting,
		WriterActive:    g.writer,
	}
}
