package core

import (
	"context"
	"fmt"
)

// Path recovery (the FPR phase of Fig 6(b)): walk the p2s links from the
// meeting node back to s, and the p2t links forward to t, one SELECT per
// hop (Listing 3(3)). Under BSEG each hop is a pre-computed segment whose
// interior nodes are unfolded through the SegTable's pid chains.

// recoverForward returns the node sequence s..x following p2s links.
func (e *Engine) recoverForward(ctx context.Context, qs *QueryStats, sc *scratchSet, s, x int64, segs bool) ([]int64, error) {
	q := sc.recP2S
	var rev []int64
	cur := x
	guard := e.nodes + 2
	for step := 0; ; step++ {
		if step > guard {
			return nil, fmt.Errorf("core: p2s chain longer than node count (cycle?)")
		}
		rev = append(rev, cur)
		if cur == s {
			break
		}
		p, null, err := e.queryInt(ctx, qs, &qs.FPR, q, cur)
		if err != nil {
			return nil, err
		}
		if null || p == NoParent {
			return nil, fmt.Errorf("core: broken p2s chain at node %d", cur)
		}
		if segs && p != cur {
			// Unfold the segment p -> cur through TOutSegs pid links.
			interior, err := e.unfoldOutSegment(ctx, qs, p, cur)
			if err != nil {
				return nil, err
			}
			// interior is p..cur exclusive of both ends, reversed order.
			rev = append(rev, interior...)
		}
		cur = p
	}
	// Reverse into s..x order.
	out := make([]int64, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

// unfoldOutSegment returns the interior nodes of the shortest segment
// u -> v recorded in TOutSegs, in reverse order (closest-to-v first).
// Every prefix of a shortest segment is itself a recorded segment, so the
// pid chain (u,v) -> (u,pre(v)) -> ... terminates at u.
func (e *Engine) unfoldOutSegment(ctx context.Context, qs *QueryStats, u, v int64) ([]int64, error) {
	const q = "SELECT pid FROM " + TblOutSegs + " WHERE fid = ? AND tid = ?"
	var out []int64
	cur := v
	guard := e.nodes + 2
	for step := 0; ; step++ {
		if step > guard {
			return nil, fmt.Errorf("core: TOutSegs pid chain for (%d,%d) does not terminate", u, v)
		}
		p, null, err := e.queryInt(ctx, qs, &qs.FPR, q, u, cur)
		if err != nil {
			return nil, err
		}
		if null {
			return nil, fmt.Errorf("core: missing TOutSegs entry (%d,%d)", u, cur)
		}
		if p == u {
			return out, nil
		}
		out = append(out, p)
		cur = p
	}
}

// recoverBackward returns the node sequence x..t following p2t links
// (excluding x itself).
func (e *Engine) recoverBackward(ctx context.Context, qs *QueryStats, sc *scratchSet, x, t int64, segs bool) ([]int64, error) {
	q := sc.recP2T
	var out []int64
	cur := x
	guard := e.nodes + 2
	for step := 0; ; step++ {
		if step > guard {
			return nil, fmt.Errorf("core: p2t chain longer than node count (cycle?)")
		}
		if cur == t {
			return out, nil
		}
		p, null, err := e.queryInt(ctx, qs, &qs.FPR, q, cur)
		if err != nil {
			return nil, err
		}
		if null || p == NoParent {
			return nil, fmt.Errorf("core: broken p2t chain at node %d", cur)
		}
		if segs && p != cur {
			interior, err := e.unfoldInSegment(ctx, qs, cur, p)
			if err != nil {
				return nil, err
			}
			out = append(out, interior...)
		}
		out = append(out, p)
		cur = p
	}
}

// unfoldInSegment returns the interior nodes of the shortest segment
// u -> v recorded in TInSegs (path from u to v), in path order, excluding
// both endpoints. TInSegs pid is the successor of fid, and every suffix of
// a shortest segment is recorded, so (u,v) -> (pid,v) -> ... reaches v.
func (e *Engine) unfoldInSegment(ctx context.Context, qs *QueryStats, u, v int64) ([]int64, error) {
	const q = "SELECT pid FROM " + TblInSegs + " WHERE fid = ? AND tid = ?"
	var out []int64
	cur := u
	guard := e.nodes + 2
	for step := 0; ; step++ {
		if step > guard {
			return nil, fmt.Errorf("core: TInSegs pid chain for (%d,%d) does not terminate", u, v)
		}
		p, null, err := e.queryInt(ctx, qs, &qs.FPR, q, cur, v)
		if err != nil {
			return nil, err
		}
		if null {
			return nil, fmt.Errorf("core: missing TInSegs entry (%d,%d)", cur, v)
		}
		if p == v {
			return out, nil
		}
		out = append(out, p)
		cur = p
	}
}

// recoverBidirectional locates a node on the optimal path (Listing 4(6))
// and concatenates the two half-paths (lines 17-20 of Algorithm 2).
func (e *Engine) recoverBidirectional(ctx context.Context, qs *QueryStats, sc *scratchSet, s, t, minCost int64, segs bool) ([]int64, error) {
	meet, null, err := e.queryInt(ctx, qs, &qs.FPR, sc.meet, minCost)
	if err != nil {
		return nil, err
	}
	if null {
		return nil, fmt.Errorf("core: no meeting node for minCost=%d", minCost)
	}
	p0, err := e.recoverForward(ctx, qs, sc, s, meet, segs)
	if err != nil {
		return nil, err
	}
	p1, err := e.recoverBackward(ctx, qs, sc, meet, t, segs)
	if err != nil {
		return nil, err
	}
	return append(p0, p1...), nil
}
