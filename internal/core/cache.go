package core

import (
	"container/list"
	"sync"
)

// cacheKey identifies one answer in the path cache. Version is the engine's
// graph version, bumped whenever the loaded graph or the SegTable index
// changes, so stale answers die without an explicit sweep: keys minted
// against an old version can never match again and age out of the LRU.
type cacheKey struct {
	version uint64
	alg     Algorithm
	s, t    int64
}

// CacheStats snapshots path-cache effectiveness for the serving tier.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Invalidations counts whole-cache purges (graph reload, index build,
	// edge insertion).
	Invalidations uint64
	Entries       int
	Capacity      int
}

// pathCache is a bounded LRU of shortest-path answers keyed by
// (graph version, algorithm, source, target). It is the layer that turns
// the single-writer engine into a serving tier: repeated queries — the
// common shape of road-network and social-graph traffic — bypass the
// relational search entirely and never touch the DB latch.
type pathCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recent; values are *cacheEntry
	index map[cacheKey]*list.Element
	stats CacheStats
}

type cacheEntry struct {
	key  cacheKey
	path Path
}

// newPathCache creates a cache holding at most capacity answers.
func newPathCache(capacity int) *pathCache {
	return &pathCache{
		cap:   capacity,
		lru:   list.New(),
		index: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns a copy of the cached path for key, if present.
func (c *pathCache) get(key cacheKey) (Path, bool) {
	return c.lookup(key, true)
}

// recheck is the under-latch double-checked lookup: a hit still counts
// (another caller computed the answer while we waited), but a miss must
// not — the first probe already counted this query's miss.
func (c *pathCache) recheck(key cacheKey) (Path, bool) {
	return c.lookup(key, false)
}

func (c *pathCache) lookup(key cacheKey, countMiss bool) (Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		if countMiss {
			c.stats.Misses++
		}
		return Path{}, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return copyPath(el.Value.(*cacheEntry).path), true
}

// put stores a copy of path under key, evicting the LRU entry when full.
func (c *pathCache) put(key cacheKey, path Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheEntry).path = copyPath(path)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.index, back.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
	c.index[key] = c.lru.PushFront(&cacheEntry{key: key, path: copyPath(path)})
}

// purge drops every entry (the version bump already makes them
// unreachable; purging releases the memory immediately).
func (c *pathCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[cacheKey]*list.Element, c.cap)
	c.stats.Invalidations++
}

// snapshot returns the current counters.
func (c *pathCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Capacity = c.cap
	return s
}

// copyPath deep-copies a Path so cache entries and callers never share the
// Nodes slice.
func copyPath(p Path) Path {
	if p.Nodes != nil {
		nodes := make([]int64, len(p.Nodes))
		copy(nodes, p.Nodes)
		p.Nodes = nodes
	}
	return p
}
