package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// The hub-label test battery: an all-pairs differential against graph.MDJ
// on the shared differential graphs, the planner preference / degradation
// contract, the per-mutation keep-vs-invalidate analysis on a handcrafted
// graph where every verdict is provable by eye, and a randomized
// ApplyMutations harness with rebuild-on-invalidation.

// buildLabels builds the hub-label index or fails the test.
func buildLabels(t *testing.T, e *Engine) {
	t.Helper()
	if _, err := e.BuildLabels(); err != nil {
		t.Fatalf("labels: %v", err)
	}
}

func TestLabelDifferential(t *testing.T) {
	for name, g := range differentialGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, g, rdb.Options{}, Options{})
			buildLabels(t, e)
			lbl := e.Labels()
			if lbl == nil || lbl.Rows() == 0 || lbl.Hubs == 0 {
				t.Fatalf("label index empty after build: %+v", lbl)
			}
			// Every pair, s == t and the isolated node g.N-1 included: the
			// label answer (distance and recovered route) must match the
			// in-memory reference exactly.
			for s := int64(0); s < g.N; s++ {
				for d := int64(0); d < g.N; d++ {
					p, _, err := shortestPath(e, AlgLabel, s, d)
					if err != nil {
						t.Fatalf("label s=%d t=%d: %v", s, d, err)
					}
					checkPath(t, g, AlgLabel, s, d, p)
				}
			}
		})
	}
}

func TestLabelPlannerPreference(t *testing.T) {
	g := graph.Power(60, 3, 7)
	mirror := g.Clone()
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	buildLabels(t, e)

	queries := graph.RandomQueries(mirror, 8, 11)
	for _, q := range queries {
		res, err := e.Query(context.Background(), QueryRequest{Source: q[0], Target: q[1]})
		if err != nil {
			t.Fatalf("auto s=%d t=%d: %v", q[0], q[1], err)
		}
		if q[0] != q[1] {
			if res.Stats.Planner != DecisionLabels {
				t.Fatalf("planner chose %q with a valid label index", res.Stats.Planner)
			}
			if res.Algorithm != AlgLabel {
				t.Fatalf("decision %q ran %v, want %v", res.Stats.Planner, res.Algorithm, AlgLabel)
			}
		}
		checkPath(t, mirror, res.Algorithm, q[0], q[1], res.Path)
	}

	// A shortcut edge (strictly below the current distance) cannot be
	// absorbed: the index must go cold and the planner must degrade to a
	// frontier search — still exact — while the AlgLabel hint refuses.
	u, v := findDistantPair(t, mirror)
	v0 := e.GraphVersion()
	st, err := e.InsertEdge(u, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mirror.InsertEdge(u, v, 1); err != nil {
		t.Fatal(err)
	}
	if !st.LabelsInvalidated {
		t.Error("shortcut insert must report LabelsInvalidated")
	}
	if e.Labels() != nil || !e.LabelsInvalidated() {
		t.Fatalf("shortcut insert must kill the index: labels=%v stale=%v",
			e.Labels(), e.LabelsInvalidated())
	}
	if e.GraphVersion() != v0+1 {
		t.Errorf("mutation must bump the version: %d -> %d", v0, e.GraphVersion())
	}
	if _, _, err := shortestPath(e, AlgLabel, u, v); err == nil ||
		!strings.Contains(err.Error(), "BuildLabels") {
		t.Fatalf("AlgLabel hint must refuse while stale, got %v", err)
	}
	for _, q := range queries {
		res, err := e.Query(context.Background(), QueryRequest{Source: q[0], Target: q[1]})
		if err != nil {
			t.Fatalf("degraded auto s=%d t=%d: %v", q[0], q[1], err)
		}
		if res.Stats.Planner == DecisionLabels {
			t.Fatalf("planner still says %q after invalidation", res.Stats.Planner)
		}
		checkPath(t, mirror, res.Algorithm, q[0], q[1], res.Path)
	}

	// Rebuilding restores the preference; a graph reload clears both the
	// index and the stale marker (fresh graph, clean slate).
	buildLabels(t, e)
	if e.Labels() == nil || e.LabelsInvalidated() {
		t.Fatal("rebuild must clear the stale marker")
	}
	res, err := e.Query(context.Background(), QueryRequest{Source: u, Target: v})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Planner != DecisionLabels {
		t.Fatalf("planner chose %q after rebuild", res.Stats.Planner)
	}
	checkPath(t, mirror, res.Algorithm, u, v, res.Path)
	if err := e.LoadGraph(mirror); err != nil {
		t.Fatal(err)
	}
	if e.Labels() != nil || e.LabelsInvalidated() {
		t.Fatal("LoadGraph must reset the label state to never-built")
	}
}

// findDistantPair returns a reachable pair at distance > 1, so inserting a
// weight-1 edge between them strictly shortens the graph.
func findDistantPair(t *testing.T, g *graph.Graph) (int64, int64) {
	t.Helper()
	for s := int64(0); s < g.N; s++ {
		for d := int64(0); d < g.N; d++ {
			if s == d {
				continue
			}
			if ref := graph.MDJ(g, s, d); ref.Found && ref.Distance > 1 {
				return s, d
			}
		}
	}
	t.Fatal("no reachable pair at distance > 1")
	return 0, 0
}

// TestLabelKeepAnalysis drives each keep / invalidate verdict on a
// four-node graph small enough to verify by hand:
//
//	0 -> 1 -> 2 -> 3   (weight 2 each; the only shortest chain)
//	0 ------> 2        (weight 5; strictly non-shortest chord)
func TestLabelKeepAnalysis(t *testing.T) {
	mirror, err := graph.New(4, []graph.Edge{
		{From: 0, To: 1, Weight: 2},
		{From: 1, To: 2, Weight: 2},
		{From: 2, To: 3, Weight: 2},
		{From: 0, To: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{})
	buildLabels(t, e)

	allPairs := func(stage string) {
		t.Helper()
		for s := int64(0); s < mirror.N; s++ {
			for d := int64(0); d < mirror.N; d++ {
				p, _, err := shortestPath(e, AlgLabel, s, d)
				if err != nil {
					t.Fatalf("%s: label s=%d t=%d: %v", stage, s, d, err)
				}
				checkPath(t, mirror, AlgLabel, s, d, p)
			}
		}
	}
	expectKeep := func(stage string, st *MaintStats) {
		t.Helper()
		if st.LabelsInvalidated || e.Labels() == nil {
			t.Fatalf("%s: keep-analysis should have absorbed this mutation (stats %+v)", stage, st)
		}
		allPairs(stage)
	}
	expectInvalidate := func(stage string, st *MaintStats) {
		t.Helper()
		if !st.LabelsInvalidated || e.Labels() != nil || !e.LabelsInvalidated() {
			t.Fatalf("%s: mutation must invalidate the index (stats %+v)", stage, st)
		}
		buildLabels(t, e)
		allPairs(stage + " (rebuilt)")
	}
	allPairs("initial build")

	// Insert at exactly the current distance: redundant, kept.
	st, err := e.InsertEdge(0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := mirror.InsertEdge(0, 3, 6); err != nil {
		t.Fatal(err)
	}
	expectKeep("insert 0->3 w6 (= d)", st)

	// Insert strictly above the current distance: kept.
	if st, err = e.InsertEdge(1, 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := mirror.InsertEdge(1, 3, 7); err != nil {
		t.Fatal(err)
	}
	expectKeep("insert 1->3 w7 (> d)", st)

	// Decrease down to the current distance: still covered, kept.
	if st, err = e.UpdateEdgeWeight(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.UpdateEdgeWeight(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	expectKeep("update 1->3 w7->4 (= d)", st)

	// Delete the strictly non-shortest chord: no label entry can have
	// routed through it, kept.
	if st, err = e.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	expectKeep("delete non-shortest chord 0->2 w5", st)

	keeps := e.MutationStats().LabelKeeps
	if keeps != 4 {
		t.Errorf("LabelKeeps = %d, want 4", keeps)
	}

	// Shortcut insert below the current distance: invalidated.
	if st, err = e.InsertEdge(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := mirror.InsertEdge(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	expectInvalidate("shortcut insert 0->2 w3", st)

	// Increase a bridge on shortest paths: invalidated.
	if st, err = e.UpdateEdgeWeight(2, 3, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.UpdateEdgeWeight(2, 3, 6); err != nil {
		t.Fatal(err)
	}
	expectInvalidate("update bridge 2->3 w2->6", st)

	// Delete a bridge — pair (1, 2) becomes unreachable; the rebuilt index
	// must certify that too.
	if st, err = e.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	expectInvalidate("delete bridge 1->2", st)
	if ref := graph.MDJ(mirror, 1, 2); ref.Found {
		t.Fatal("test premise broken: 1->2 should be unreachable now")
	}

	ms := e.MutationStats()
	if ms.LabelKeeps != 4 || ms.LabelInvalidations != 3 {
		t.Errorf("counters: keeps=%d invalidations=%d, want 4 and 3",
			ms.LabelKeeps, ms.LabelInvalidations)
	}
}

// TestLabelMutationDifferential churns the graph through randomized
// ApplyMutations batches, rebuilding the label index whenever a batch
// invalidates it, and checks AlgLabel and the Auto planner against the
// in-memory mirror after every batch.
func TestLabelMutationDifferential(t *testing.T) {
	const (
		steps    = 240
		nodes    = 24
		edges    = 70
		batchMax = 6
	)
	seed := mutationDiffSeed(t, 20260807)
	t.Logf("label differential: seed=%d (override with MUTATION_DIFF_SEED), %d steps", seed, steps)
	rnd := rand.New(rand.NewSource(seed))

	var init []graph.Edge
	for i := 0; i < edges; i++ {
		init = append(init, graph.Edge{
			From: rnd.Int63n(nodes), To: rnd.Int63n(nodes), Weight: 1 + rnd.Int63n(9),
		})
	}
	mirror, err := graph.New(nodes, init)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{})
	buildLabels(t, e)

	applied, rebuilds := 0, 0
	for applied < steps {
		k := 1 + rnd.Intn(batchMax)
		if applied+k > steps {
			k = steps - applied
		}
		muts := make([]Mutation, 0, k)
		for i := 0; i < k; i++ {
			muts = append(muts, randomMutation(t, rnd, mirror))
		}
		st, err := e.ApplyMutations(muts)
		if err != nil {
			t.Fatalf("step %d (batch %v): %v", applied, muts, err)
		}
		applied += k
		if e.Labels() == nil {
			if !st.LabelsInvalidated || !e.LabelsInvalidated() {
				t.Fatalf("step %d: index gone without the invalidation markers (%+v)", applied, st)
			}
			buildLabels(t, e)
			rebuilds++
		} else if st.LabelsInvalidated {
			t.Fatalf("step %d: stats report invalidation but the index survived", applied)
		}

		queries := [][2]int64{
			{rnd.Int63n(nodes), rnd.Int63n(nodes)},
			{rnd.Int63n(nodes), rnd.Int63n(nodes)},
			{rnd.Int63n(nodes), rnd.Int63n(nodes)},
		}
		for _, q := range queries {
			for _, alg := range []Algorithm{AlgLabel, AlgAuto} {
				p, _, err := shortestPath(e, alg, q[0], q[1])
				if err != nil {
					t.Fatalf("step %d %v s=%d t=%d: %v", applied, alg, q[0], q[1], err)
				}
				checkPath(t, mirror, alg, q[0], q[1], p)
			}
		}
	}

	ms := e.MutationStats()
	t.Logf("applied %d mutations, %d label rebuilds: keeps=%d invalidations=%d",
		applied, rebuilds, ms.LabelKeeps, ms.LabelInvalidations)
	if ms.LabelKeeps == 0 {
		t.Error("the keep-analysis never absorbed a mutation")
	}
	if ms.LabelInvalidations == 0 {
		t.Error("the harness never invalidated the index")
	}
	if ms.LabelKeeps+ms.LabelInvalidations > uint64(steps) {
		t.Errorf("keeps+invalidations (%d+%d) exceed applied mutations (%d)",
			ms.LabelKeeps, ms.LabelInvalidations, steps)
	}
}
