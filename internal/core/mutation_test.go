package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// mutationGraph returns a connected-ish random graph and a deep copy to
// mutate as the in-memory mirror.
func mutationGraph(t *testing.T, n int64, m int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	g := graph.Random(n, m, seed)
	return g, g.Clone()
}

// checkAllAlgorithms runs every algorithm (ALT only when an oracle is
// built) over the queries and compares against the mirror.
func checkAllAlgorithms(t *testing.T, e *Engine, mirror *graph.Graph, queries [][2]int64) {
	t.Helper()
	for _, alg := range allAlgorithms() {
		if alg == AlgALT && e.Oracle() == nil {
			continue
		}
		if alg == AlgBSEG && e.SegLthd() == 0 {
			continue
		}
		for _, q := range queries {
			p, _, err := shortestPath(e, alg, q[0], q[1])
			if err != nil {
				t.Fatalf("%v s=%d t=%d: %v", alg, q[0], q[1], err)
			}
			checkPath(t, mirror, alg, q[0], q[1], p)
		}
	}
}

// TestDeleteEdgeScopedRepair is the acceptance-criterion test: DeleteEdge
// followed by a re-query returns exact distances with no manual
// BuildSegTable, and the scoped (non-rebuild) repair path is the one that
// ran. The repaired SegTable must equal a from-scratch rebuild row for row.
func TestDeleteEdgeScopedRepair(t *testing.T) {
	const lthd = 60 // generator weights are 1..100: keep multi-hop segments common
	g, mirror := mutationGraph(t, 30, 70, 21)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}

	// Delete several existing edges, repairing after each.
	rng := rand.New(rand.NewSource(5))
	deleted := 0
	var repaired int64
	for deleted < 8 && mirror.M() > 0 {
		ed := mirror.Edges[rng.Intn(mirror.M())]
		if _, err := mirror.DeleteEdge(ed.From, ed.To); err != nil {
			t.Fatal(err)
		}
		st, err := e.DeleteEdge(ed.From, ed.To)
		if err != nil {
			t.Fatalf("delete (%d,%d): %v", ed.From, ed.To, err)
		}
		if st.Rebuilt {
			t.Fatalf("delete (%d,%d): fell back to a rebuild under the default threshold", ed.From, ed.To)
		}
		repaired += st.Repaired
		deleted++
	}
	if repaired == 0 {
		t.Error("eight deletions on a dense graph never repaired a SegTable row")
	}
	ms := e.MutationStats()
	if ms.Deletes != uint64(deleted) || ms.SegRebuilds != 0 {
		t.Errorf("counters: %+v", ms)
	}
	if ms.SegRepairs == 0 {
		t.Error("scoped repair path never taken")
	}

	// The maintained index must match a from-scratch build over the
	// post-delete graph exactly.
	eB := newTestEngine(t, mirror, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, e, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		for pair, want := range ref {
			got, ok := inc[pair]
			if !ok {
				t.Fatalf("%s: repair misses pair %v (cost %d)", tbl, pair, want)
			}
			if got != want {
				t.Fatalf("%s: pair %v cost %d, rebuild says %d", tbl, pair, got, want)
			}
		}
		for pair, got := range inc {
			if _, ok := ref[pair]; !ok {
				t.Fatalf("%s: repair kept stale pair %v (cost %d)", tbl, pair, got)
			}
		}
	}

	queries := append(graph.RandomQueries(mirror, 8, 3), [2]int64{2, 2})
	checkAllAlgorithms(t, e, mirror, queries)
}

// TestUpdateEdgeWeight covers both repair directions: a relaxation takes
// the insertion-style maintenance, a weakening the decremental pass, and
// every algorithm stays exact against the mirror either way.
func TestUpdateEdgeWeight(t *testing.T) {
	const lthd = 15
	g, mirror := mutationGraph(t, 25, 60, 8)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 10; step++ {
		ed := mirror.Edges[rng.Intn(mirror.M())]
		var w int64
		if step%2 == 0 {
			w = 1 + rng.Int63n(3) // likely a relaxation
		} else {
			w = 50 + rng.Int63n(50) // likely a weakening
		}
		if _, err := mirror.UpdateEdgeWeight(ed.From, ed.To, w); err != nil {
			t.Fatal(err)
		}
		if _, err := e.UpdateEdgeWeight(ed.From, ed.To, w); err != nil {
			t.Fatalf("update (%d,%d)->%d: %v", ed.From, ed.To, w, err)
		}
	}
	eB := newTestEngine(t, mirror, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, e, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		if len(inc) != len(ref) {
			t.Fatalf("%s: size %d vs rebuild %d", tbl, len(inc), len(ref))
		}
		for pair, want := range ref {
			if inc[pair] != want {
				t.Fatalf("%s: pair %v cost %d want %d", tbl, pair, inc[pair], want)
			}
		}
	}
	checkAllAlgorithms(t, e, mirror, graph.RandomQueries(mirror, 8, 4))
}

// TestMutationsOnPostgresProfile drives delete and weaken repairs through
// the merge-free statement forms.
func TestMutationsOnPostgresProfile(t *testing.T) {
	g, mirror := mutationGraph(t, 20, 50, 9)
	e := newTestEngine(t, g, rdb.Options{Profile: rdb.ProfilePostgreSQL9}, Options{})
	if _, err := e.BuildSegTable(12); err != nil {
		t.Fatal(err)
	}
	ed := mirror.Edges[0]
	if _, err := mirror.DeleteEdge(ed.From, ed.To); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteEdge(ed.From, ed.To); err != nil {
		t.Fatal(err)
	}
	ed = mirror.Edges[1]
	if _, err := mirror.UpdateEdgeWeight(ed.From, ed.To, ed.Weight+40); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateEdgeWeight(ed.From, ed.To, ed.Weight+40); err != nil {
		t.Fatal(err)
	}
	eB := newTestEngine(t, mirror, rdb.Options{}, Options{})
	if _, err := eB.BuildSegTable(12); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{TblOutSegs, TblInSegs} {
		inc := segTableSnapshot(t, e, tbl)
		ref := segTableSnapshot(t, eB, tbl)
		if len(inc) != len(ref) {
			t.Fatalf("%s: size %d vs rebuild %d", tbl, len(inc), len(ref))
		}
		for pair, want := range ref {
			if inc[pair] != want {
				t.Fatalf("%s: pair %v cost %d want %d", tbl, pair, inc[pair], want)
			}
		}
	}
}

// TestRepairThresholdFallback: a negative threshold forces every
// decremental repair into the rebuild path, which must stay exact too.
func TestRepairThresholdFallback(t *testing.T) {
	g, mirror := mutationGraph(t, 25, 60, 33)
	e := newTestEngine(t, g, rdb.Options{}, Options{RepairThreshold: -1})
	if _, err := e.BuildSegTable(15); err != nil {
		t.Fatal(err)
	}
	ed := mirror.Edges[4]
	if _, err := mirror.DeleteEdge(ed.From, ed.To); err != nil {
		t.Fatal(err)
	}
	st, err := e.DeleteEdge(ed.From, ed.To)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rebuilt {
		t.Fatalf("negative threshold must force a rebuild: %+v", st)
	}
	if ms := e.MutationStats(); ms.SegRebuilds != 1 || ms.SegRepairs != 0 {
		t.Errorf("counters after forced rebuild: %+v", ms)
	}
	if e.SegLthd() != 15 {
		t.Errorf("rebuild lost the lthd: %d", e.SegLthd())
	}
	checkAllAlgorithms(t, e, mirror, graph.RandomQueries(mirror, 6, 2))
}

// TestDeleteEdgeRefreshesWMin: removing the cheapest edge must re-derive
// the engine's minimal weight (the frontier-selection bound).
func TestDeleteEdgeRefreshesWMin(t *testing.T) {
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 5},
		{From: 0, To: 2, Weight: 9},
	}
	g, err := graph.New(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if e.WMin() != 1 {
		t.Fatalf("wmin: %d", e.WMin())
	}
	if _, err := e.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if e.WMin() != 5 {
		t.Fatalf("wmin after delete: %d", e.WMin())
	}
	if _, err := e.UpdateEdgeWeight(1, 2, 12); err != nil {
		t.Fatal(err)
	}
	if e.WMin() != 9 {
		t.Fatalf("wmin after weaken: %d", e.WMin())
	}
	if _, err := e.UpdateEdgeWeight(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if e.WMin() != 2 {
		t.Fatalf("wmin after relax: %d", e.WMin())
	}
	if e.Edges() != 2 {
		t.Fatalf("edge count: %d", e.Edges())
	}
}

// TestMutationErrors pins the validation surface.
func TestMutationErrors(t *testing.T) {
	g := graph.Random(10, 20, 4)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	for name, fn := range map[string]func() error{
		"delete missing":      func() error { _, err := e.DeleteEdge(0, 9); return err },
		"delete out of range": func() error { _, err := e.DeleteEdge(0, 99); return err },
		"update missing":      func() error { _, err := e.UpdateEdgeWeight(0, 9, 3); return err },
		"update zero weight":  func() error { _, err := e.UpdateEdgeWeight(0, 1, 0); return err },
		"insert zero weight":  func() error { _, err := e.InsertEdge(0, 1, 0); return err },
		"batch bad op":        func() error { _, err := e.ApplyMutations([]Mutation{{Op: MutOp(9), From: 0, To: 1}}); return err },
	} {
		if err := fn(); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// DeleteEdge(0, 9) depends on the workload not containing that pair.
	found := false
	for _, ed := range g.Edges {
		if ed.From == 0 && ed.To == 9 {
			found = true
		}
	}
	if found {
		t.Fatal("test workload has edge (0,9); pick another seed")
	}
}

// TestApplyMutationsBatch: one latch acquisition, one version bump, one
// cache purge for the whole batch — and the result is exact.
func TestApplyMutationsBatch(t *testing.T) {
	g, mirror := mutationGraph(t, 25, 60, 11)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(12); err != nil {
		t.Fatal(err)
	}
	// Warm the cache so the purge is observable.
	queries := graph.RandomQueries(mirror, 5, 6)
	for _, q := range queries {
		if _, _, err := shortestPath(e, AlgBSDJ, q[0], q[1]); err != nil {
			t.Fatal(err)
		}
	}
	v0 := e.GraphVersion()
	inv0 := e.CacheStats().Invalidations

	del := mirror.Edges[2]
	upd := mirror.Edges[7]
	muts := []Mutation{
		{Op: MutInsert, From: 1, To: 18, Weight: 2},
		{Op: MutDelete, From: del.From, To: del.To},
		{Op: MutUpdate, From: upd.From, To: upd.To, Weight: upd.Weight + 25},
	}
	if err := mirror.InsertEdge(1, 18, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.DeleteEdge(del.From, del.To); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.UpdateEdgeWeight(upd.From, upd.To, upd.Weight+25); err != nil {
		t.Fatal(err)
	}
	st, err := e.ApplyMutations(muts)
	if err != nil {
		t.Fatal(err)
	}
	if e.GraphVersion() != v0+1 {
		t.Errorf("batch must bump the version exactly once: %d -> %d", v0, e.GraphVersion())
	}
	if st.Version != v0+1 {
		t.Errorf("MaintStats must carry the committed version: %d, want %d", st.Version, v0+1)
	}
	if st.Applied != len(muts) {
		t.Errorf("applied %d, want %d", st.Applied, len(muts))
	}
	if inv := e.CacheStats().Invalidations; inv != inv0+1 {
		t.Errorf("batch must purge the cache exactly once: %d -> %d", inv0, inv)
	}
	if st.Rebuilt {
		t.Errorf("small batch fell back to rebuild: %+v", st)
	}
	if ms := e.MutationStats(); ms.Batches != 1 || ms.Inserts != 1 || ms.Deletes != 1 || ms.Updates != 1 {
		t.Errorf("batch counters: %+v", ms)
	}
	if e.Edges() != mirror.M() {
		t.Errorf("edge count %d, mirror %d", e.Edges(), mirror.M())
	}
	checkAllAlgorithms(t, e, mirror, append(queries, graph.RandomQueries(mirror, 5, 7)...))
}

// TestApplyMutationsValidation: a bad mutation anywhere in the batch
// applies nothing — no version bump, no edge change.
func TestApplyMutationsValidation(t *testing.T) {
	g := graph.Random(12, 30, 5)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	v0 := e.GraphVersion()
	edges0 := e.Edges()
	_, err := e.ApplyMutations([]Mutation{
		{Op: MutInsert, From: 0, To: 1, Weight: 3},
		{Op: MutInsert, From: 0, To: 99, Weight: 3}, // out of range
	})
	if err == nil || !strings.Contains(err.Error(), "mutation 1") {
		t.Fatalf("expected a positional validation error, got %v", err)
	}
	if e.GraphVersion() != v0 || e.Edges() != edges0 {
		t.Errorf("failed validation must apply nothing: version %d->%d edges %d->%d",
			v0, e.GraphVersion(), edges0, e.Edges())
	}
	if ms := e.MutationStats(); ms.Batches != 0 {
		t.Errorf("a rejected batch must not count: %+v", ms)
	}
	// The empty batch is a no-op, not an error.
	st, err := e.ApplyMutations(nil)
	if err != nil || st.Statements != 0 {
		t.Fatalf("empty batch: %+v, %v", st, err)
	}
	if e.GraphVersion() != v0 {
		t.Error("empty batch must not bump the version")
	}
}

// TestMutationOracleInvalidation: any mutation kills a built oracle, the
// engine and MaintStats both say so, and BuildOracle clears the flag.
func TestMutationOracleInvalidation(t *testing.T) {
	g, mirror := mutationGraph(t, 20, 50, 14)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	// Without an oracle the flag stays down.
	st, err := e.InsertEdge(0, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.OracleInvalidated || e.OracleInvalidated() {
		t.Error("no oracle built, nothing to invalidate")
	}
	if err := mirror.InsertEdge(0, 9, 2); err != nil {
		t.Fatal(err)
	}

	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	ed := mirror.Edges[3]
	if _, err := mirror.DeleteEdge(ed.From, ed.To); err != nil {
		t.Fatal(err)
	}
	st, err = e.DeleteEdge(ed.From, ed.To)
	if err != nil {
		t.Fatal(err)
	}
	if !st.OracleInvalidated {
		t.Error("MaintStats must surface the oracle invalidation")
	}
	if !e.OracleInvalidated() {
		t.Error("engine must report the oracle as cold")
	}
	if _, err := approxDistance(e, 0, 1); err == nil {
		t.Error("ApproxDistance must refuse on a cold oracle")
	}
	if ms := e.MutationStats(); ms.OracleInvalidations != 1 {
		t.Errorf("invalidation counter: %+v", ms)
	}
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if e.OracleInvalidated() {
		t.Error("BuildOracle must clear the stale flag")
	}
	checkAllAlgorithms(t, e, mirror, graph.RandomQueries(mirror, 5, 9))
}

// TestFailedMutationKeepsOracle: a mutation that fails before writing
// anything (missing edge) must not cold-stop approximate service — the
// graph is unchanged, so the pre-batch oracle is restored.
func TestFailedMutationKeepsOracle(t *testing.T) {
	g := graph.Random(15, 40, 6)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildOracle(oracle.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	// Find a pair with no edge so the delete fails without writing.
	present := map[[2]int64]bool{}
	for _, ed := range g.Edges {
		present[[2]int64{ed.From, ed.To}] = true
	}
	pair := [2]int64{-1, -1}
	for u := int64(0); u < g.N && pair[0] < 0; u++ {
		for v := int64(0); v < g.N; v++ {
			if u != v && !present[[2]int64{u, v}] {
				pair = [2]int64{u, v}
				break
			}
		}
	}
	st, err := e.DeleteEdge(pair[0], pair[1])
	if err == nil {
		t.Fatal("deleting a missing edge must fail")
	}
	if st == nil || st.Applied != 0 || st.OracleInvalidated {
		t.Fatalf("partial stats after no-op failure: %+v", st)
	}
	if e.Oracle() == nil || e.OracleInvalidated() {
		t.Error("a no-op failure must leave the oracle warm")
	}
	if ms := e.MutationStats(); ms.OracleInvalidations != 0 {
		t.Errorf("invalidation counter after restore: %+v", ms)
	}
	if _, err := approxDistance(e, 0, 1); err != nil {
		t.Errorf("approx after failed mutation: %v", err)
	}

	// A batch that fails after a write keeps the prefix AND the cold
	// oracle, reporting how much persisted.
	edges0 := e.Edges()
	st, err = e.ApplyMutations([]Mutation{
		{Op: MutInsert, From: 0, To: 5, Weight: 2},
		{Op: MutDelete, From: pair[0], To: pair[1]}, // still missing
	})
	if err == nil {
		t.Fatal("batch with a missing delete must fail")
	}
	if st == nil || st.Applied != 1 {
		t.Fatalf("prefix not reported: %+v", st)
	}
	if e.Edges() != edges0+1 {
		t.Errorf("applied prefix lost: edges %d, want %d", e.Edges(), edges0+1)
	}
	if e.Oracle() != nil || !e.OracleInvalidated() {
		t.Error("a written prefix must leave the oracle cold")
	}
	// Batches counts only batches that applied something: the failed
	// no-op DeleteEdge above was a single helper, the prefix batch counts.
	if ms := e.MutationStats(); ms.Batches != 1 {
		t.Errorf("batch counter after prefix failure: %+v", ms)
	}
}

// TestParseMutOp is the table-driven parser test shared with spdbd.
func TestParseMutOp(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MutOp
		ok   bool
	}{
		{"insert", MutInsert, true},
		{"INSERT", MutInsert, true},
		{"Delete", MutDelete, true},
		{"update", MutUpdate, true},
		{"upsert", 0, false},
		{"", 0, false},
	} {
		got, err := ParseMutOp(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseMutOp(%q): err=%v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseMutOp(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, op := range []MutOp{MutInsert, MutDelete, MutUpdate} {
		back, err := ParseMutOp(op.String())
		if err != nil || back != op {
			t.Errorf("round-trip %v: %v, %v", op, back, err)
		}
	}
	if s := MutOp(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown op string: %q", s)
	}
}
