package core

import (
	"context"
	"fmt"
	"time"
)

// Reachability via the FEM framework (§3.1 cites it as the simplest graph
// search query). Nodes carry only the visited flag; the frontier is every
// newly discovered node; expansion inserts unseen successors. Iterations
// equal the BFS depth at which t is found.

// ReachResult reports one reachability test.
type ReachResult struct {
	Reachable  bool
	Hops       int // BFS depth at which t appeared (0 when s == t)
	Visited    int
	Iterations int
	Statements int
	Time       time.Duration
}

// Reachable reports whether t is reachable from s following directed edges.
func (e *Engine) Reachable(s, t int64) (*ReachResult, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// Shares the TVisited working table with searches.
	ctx := context.Background()
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	nodes := e.Nodes()
	if nodes == 0 {
		return nil, ErrNoGraph
	}
	if s < 0 || t < 0 || int(s) >= nodes || int(t) >= nodes {
		return nil, fmt.Errorf("core: node out of range (n=%d)", nodes)
	}
	qs := &QueryStats{Algorithm: "Reach"}
	start := time.Now()
	res := &ReachResult{}

	if err := e.resetVisited(ctx, qs, e.scratchGlobal); err != nil {
		return nil, err
	}
	if s == t {
		res.Reachable = true
		res.Visited = 1
		res.Statements = qs.Statements
		res.Time = time.Since(start)
		return res, nil
	}
	// d2s doubles as the BFS depth.
	if _, err := e.exec(ctx, qs, &qs.PE, nil, reachInitQ, s, s); err != nil {
		return nil, err
	}

	limit := e.maxIters()
	for iter := 0; ; iter++ {
		if iter > limit {
			return nil, fmt.Errorf("core: reachability exceeded %d iterations", limit)
		}
		cnt, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, reachFrontierQ)
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			break
		}
		res.Iterations++
		if _, err := e.runReachExpand(ctx, qs); err != nil {
			return nil, err
		}
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, reachResetQ); err != nil {
			return nil, err
		}
		d, null, err := e.queryInt(ctx, qs, &qs.SC, reachTargetQ, t)
		if err != nil {
			return nil, err
		}
		if !null {
			res.Reachable = true
			res.Hops = int(d)
			break
		}
	}
	vc, err := e.visitedCount(ctx, qs, e.scratchGlobal)
	if err != nil {
		return nil, err
	}
	res.Visited = vc
	res.Statements = qs.Statements
	res.Time = time.Since(start)
	return res, nil
}

// Reachability statement shapes (constant texts; the expansion source is
// shared between the MERGE and INSERT-only forms).
const (
	reachInitQ = "INSERT INTO " + TblVisited +
		" (nid, d2s, p2s, f, d2t, p2t, b) VALUES (?, 0, ?, 0, 0, 0, 0)"
	reachFrontierQ = "UPDATE " + TblVisited + " SET f = 2 WHERE f = 0"
	reachResetQ    = "UPDATE " + TblVisited + " SET f = 1 WHERE f = 2"
	reachTargetQ   = "SELECT d2s FROM " + TblVisited + " WHERE nid = ?"

	reachExpandSrc = "SELECT out.tid, q.nid, q.d2s + 1, " +
		"ROW_NUMBER() OVER (PARTITION BY out.tid ORDER BY q.d2s) " +
		"FROM " + TblVisited + " q, " + TblEdges + " out WHERE q.nid = out.fid AND q.f = 2"
	// Only NOT MATCHED inserts: reachability never revisits a node.
	reachMergeQ = "MERGE INTO " + TblVisited + " AS target USING (" +
		"SELECT nid, par, d FROM (" + reachExpandSrc + ") tmp (nid, par, d, rn) WHERE rn = 1" +
		") AS source (nid, par, d) ON (target.nid = source.nid) " +
		"WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f, d2t, p2t, b) " +
		"VALUES (source.nid, source.d, source.par, 0, 0, 0, 0)"
	reachInsertQ = "INSERT INTO " + TblVisited + " (nid, d2s, p2s, f, d2t, p2t, b) " +
		"SELECT tmp.nid, tmp.d, tmp.par, 0, 0, 0, 0 FROM (" + reachExpandSrc +
		") tmp (nid, par, d, rn) " +
		"WHERE tmp.rn = 1 AND NOT EXISTS (SELECT nid FROM " + TblVisited + " v WHERE v.nid = tmp.nid)"
)

// runReachExpand applies the reachability expansion, with the INSERT-only
// fallback for profiles without MERGE.
func (e *Engine) runReachExpand(ctx context.Context, qs *QueryStats) (int64, error) {
	if e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL {
		return e.exec(ctx, qs, &qs.PE, &qs.EOp, reachMergeQ)
	}
	return e.exec(ctx, qs, &qs.PE, &qs.EOp, reachInsertQ)
}
