package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rdb"
)

// Construction statement shapes. Texts are compile-time constants (or
// rendered once per sweep for the direction-dependent forms); every
// per-round value — the frontier widening bound k*wmin, the lthd cap —
// binds as a parameter, so the construction loop re-executes cached plans.
const (
	segClearQ = "DELETE FROM " + TblSeg
	segSeedQ  = "INSERT INTO " + TblSeg + " (src, nid, dist, par, f) SELECT nid, nid, 0, nid, 0 FROM "
	// F-operator (construction rule of §4.2): candidates below k*wmin
	// (bound as "? * ?"), or the global minimum, expand together.
	segFrontierQ = "UPDATE " + TblSeg +
		" SET f = 2 WHERE f = 0 AND (dist < ? * ? OR dist = (SELECT MIN(dist) FROM " + TblSeg + " WHERE f = 0))"
	segResetQ    = "UPDATE " + TblSeg + " SET f = 1 WHERE f = 2"
	segCountOutQ = "SELECT COUNT(*) FROM " + TblOutSegs
	segCountInQ  = "SELECT COUNT(*) FROM " + TblInSegs

	// Materialization of the finished sweep (Definition 4(1)).
	segInsOutQ = "INSERT INTO " + TblOutSegs +
		" (fid, tid, pid, cost) SELECT src, nid, par, dist FROM " + TblSeg + " WHERE src <> nid"
	// Backward pass computed paths nid -> src; store as (fid=nid, tid=src,
	// pid=successor of nid).
	segInsInQ = "INSERT INTO " + TblInSegs +
		" (fid, tid, pid, cost) SELECT nid, src, par, dist FROM " + TblSeg + " WHERE src <> nid"
)

// segSweepSQL carries the direction-dependent construction statements,
// rendered once per sweep and re-executed (as cached plans) every round.
type segSweepSQL struct {
	frontier string // segFrontierQ (constant, kept here for symmetry)
	merge    string // fused MERGE form
	// No-MERGE emulation (PostgreSQL 9.0 / TSQL).
	insWindow string
	insAgg    string
	insBack   string
	update    string
	insert    string
}

// buildSegSweep renders one direction's sweep statements. forward walks
// outgoing edges (distances FROM each source), backward incoming edges
// (distances TO each source).
func buildSegSweep(forward bool) *segSweepSQL {
	joinCol, newCol := "fid", "tid"
	if !forward {
		joinCol, newCol = "tid", "fid"
	}
	// E-operator source: the cheapest in-bound expansion per (src, node);
	// the lthd cap binds as the single parameter.
	expandSrc := "SELECT q.src, out." + newCol + ", q.nid, out.cost + q.dist, " +
		"ROW_NUMBER() OVER (PARTITION BY q.src, out." + newCol + " ORDER BY out.cost + q.dist) " +
		"FROM " + TblSeg + " q, " + TblEdges + " out WHERE q.nid = out." + joinCol +
		" AND q.f = 2 AND out.cost + q.dist <= ?"
	x := &segSweepSQL{frontier: segFrontierQ}
	x.merge = "MERGE INTO " + TblSeg + " AS target USING (" +
		"SELECT src, nid, par, cost FROM (" + expandSrc + ") tmp (src, nid, par, cost, rn) WHERE rn = 1" +
		") AS source (src, nid, par, cost) " +
		"ON (target.src = source.src AND target.nid = source.nid) " +
		"WHEN MATCHED AND target.dist > source.cost THEN UPDATE SET dist = source.cost, par = source.par, f = 0 " +
		"WHEN NOT MATCHED THEN INSERT (src, nid, dist, par, f) VALUES (source.src, source.nid, source.cost, source.par, 0)"
	x.insWindow = "INSERT INTO TSegExpand (src, nid, par, cost) " +
		"SELECT src, nid, par, cost FROM (" + expandSrc + ") tmp (src, nid, par, cost, rn) WHERE rn = 1"
	x.insAgg = "INSERT INTO TSegExpCost (src, nid, cost) " +
		"SELECT q.src, out." + newCol + ", MIN(out.cost + q.dist) FROM " + TblSeg + " q, " + TblEdges + " out " +
		"WHERE q.nid = out." + joinCol + " AND q.f = 2 AND out.cost + q.dist <= ? GROUP BY q.src, out." + newCol
	x.insBack = "INSERT INTO TSegExpand (src, nid, par, cost) " +
		"SELECT ec.src, ec.nid, MIN(q.nid), ec.cost FROM " + TblSeg + " q, " + TblEdges + " out, TSegExpCost ec " +
		"WHERE q.nid = out." + joinCol + " AND q.f = 2 AND out.cost + q.dist <= ? " +
		"AND ec.src = q.src AND ec.nid = out." + newCol + " AND out.cost + q.dist = ec.cost " +
		"GROUP BY ec.src, ec.nid, ec.cost"
	x.update = "UPDATE " + TblSeg + " SET dist = s.cost, par = s.par, f = 0 FROM TSegExpand s " +
		"WHERE " + TblSeg + ".src = s.src AND " + TblSeg + ".nid = s.nid AND " + TblSeg + ".dist > s.cost"
	x.insert = "INSERT INTO " + TblSeg + " (src, nid, dist, par, f) " +
		"SELECT s.src, s.nid, s.cost, s.par, 0 FROM TSegExpand s " +
		"WHERE NOT EXISTS (SELECT nid FROM " + TblSeg + " v WHERE v.src = s.src AND v.nid = s.nid)"
	return x
}

// BuildSegTable constructs the SegTable index of Definition 4: TOutSegs
// holds every pre-computed shortest segment (u,v) with δ(u,v) <= lthd plus
// the original edges not dominated by a segment; TInSegs is the symmetric
// incoming-direction table. Construction itself runs through the FEM
// framework (§4.2): all nodes start as sources in a working table TSeg
// keyed on (src, nid), bounded multi-source set-Dijkstra expands until the
// minimal unfinalized distance exceeds lthd, and a final MERGE folds in the
// remaining original edges.
func (e *Engine) BuildSegTable(lthd int64) (*SegTableStats, error) {
	return e.BuildSegTableContext(context.Background(), lthd)
}

// BuildSegTableContext is BuildSegTable with cooperative cancellation: a
// cancelled ctx aborts the construction at the next statement or sweep
// round, leaving the engine with no SegTable (segBuilt stays false, so
// BSEG refuses cleanly) rather than a partial index.
func (e *Engine) BuildSegTableContext(ctx context.Context, lthd int64) (*SegTableStats, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// In flight (queued on the gate included) means not ready: /readyz
	// routes traffic away while the index is cold.
	defer e.trackBuild()()
	// Building excludes searches (shared working tables) and invalidates
	// every cached answer: BSEG results depend on the index.
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	return e.buildSegTableLocked(ctx, lthd, true)
}

// buildSegTableLocked is the construction body; callers hold queryMu. The
// decremental repair fallback calls it with bump=false: the mutation batch
// already bumped the graph version, concurrent searches are latched out,
// and the path cache is empty, so a second invalidation would only distort
// the stats.
func (e *Engine) buildSegTableLocked(ctx context.Context, lthd int64, bump bool) (*SegTableStats, error) {
	if e.Nodes() == 0 {
		return nil, ErrNoGraph
	}
	if lthd < 1 {
		return nil, fmt.Errorf("core: lthd must be positive, got %d", lthd)
	}
	st := &SegTableStats{Lthd: lthd}
	start := time.Now()
	qs := &QueryStats{Algorithm: "SegBuild"} // reuse the statement counter

	db := e.sess
	// The previous index dies the moment its tables are dropped: a failed
	// or cancelled build must leave segBuilt false (BSEG refuses cleanly)
	// rather than pointing the planner and searches at a partial index.
	// Cached BSEG answers stay sound — they are real shortest paths of the
	// unchanged graph — so no version bump is needed here.
	e.mu.Lock()
	e.segBuilt = false
	e.mu.Unlock()
	// (Re)create the index tables under the engine's strategy.
	n, err := e.createSegTables()
	qs.Statements += n
	if err != nil {
		return nil, err
	}

	// Forward pass: shortest segments in the outgoing direction. par holds
	// pre(v), the predecessor of v on the path src -> v, which becomes
	// TOutSegs.pid (Definition 4(1)).
	itF, err := e.segPass(ctx, qs, lthd, true)
	if err != nil {
		return nil, err
	}
	// Backward pass over incoming edges. par holds the successor of v on
	// the path v -> src, which becomes TInSegs.pid.
	itB, err := e.segPass(ctx, qs, lthd, false)
	if err != nil {
		return nil, err
	}
	st.Iterations = itF + itB

	outCnt, _, err := db.QueryInt(segCountOutQ)
	if err != nil {
		return nil, err
	}
	inCnt, _, err := db.QueryInt(segCountInQ)
	if err != nil {
		return nil, err
	}
	qs.Statements += 2
	st.OutSegs = int(outCnt)
	st.InSegs = int(inCnt)
	st.Statements = qs.Statements
	st.BuildTime = time.Since(start)
	e.mu.Lock()
	e.segBuilt = true
	e.segLthd = lthd
	e.opts.Lthd = lthd
	if bump {
		e.bumpVersionLocked()
	}
	e.mu.Unlock()
	return st, nil
}

// createSegTables (re)creates TOutSegs/TInSegs and the TSeg working set
// under the engine's strategy, returning the number of statements issued.
// Shared by the construction path and snapshot hydration (durability.go),
// which bulk-loads the segment rows instead of sweeping.
func (e *Engine) createSegTables() (int, error) {
	db := e.sess
	n := 0
	for _, tbl := range []string{TblOutSegs, TblInSegs, TblSeg} {
		if _, ok := e.db.Catalog().Get(tbl); ok {
			if _, err := db.Exec("DROP TABLE " + tbl); err != nil {
				return n, err
			}
			n++
		}
	}
	stmts := []string{
		"CREATE TABLE " + TblOutSegs + " (fid INT, tid INT, pid INT, cost INT)",
		"CREATE TABLE " + TblInSegs + " (fid INT, tid INT, pid INT, cost INT)",
	}
	switch e.opts.Strategy {
	case ClusteredIndex:
		stmts = append(stmts,
			"CREATE CLUSTERED INDEX toutsegs_fid ON "+TblOutSegs+" (fid)",
			"CREATE CLUSTERED INDEX tinsegs_tid ON "+TblInSegs+" (tid)",
		)
	case SecondaryIndex:
		stmts = append(stmts,
			"CREATE INDEX toutsegs_fid ON "+TblOutSegs+" (fid)",
			"CREATE INDEX tinsegs_tid ON "+TblInSegs+" (tid)",
		)
	case NoIndex:
		// bare heaps; probes degrade to scans, as Fig 8(c) measures.
	}
	// The construction working set always gets a clustered (src, nid) key:
	// the paper's construction assumes the intermediate results are
	// indexed ("we build indices over the relational tables for ...
	// intermediate results").
	stmts = append(stmts,
		"CREATE TABLE "+TblSeg+" (src INT, nid INT, dist INT, par INT, f INT)",
		"CREATE UNIQUE CLUSTERED INDEX tseg_key ON "+TblSeg+" (src, nid)",
	)
	for _, q := range stmts {
		if _, err := db.Exec(q); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// segPass runs one direction of the construction and materializes the
// segment table plus the original-edge merge.
func (e *Engine) segPass(ctx context.Context, qs *QueryStats, lthd int64, forward bool) (int, error) {
	// Every node is a source at distance 0 from itself.
	iterations, err := e.segSweep(ctx, qs, lthd, forward, TblNodes)
	if err != nil {
		return 0, err
	}

	// Materialize the segments (Definition 4(1)) ...
	insQ := segInsOutQ
	if !forward {
		insQ = segInsInQ
	}
	if _, err := e.exec(ctx, qs, nil, nil, insQ); err != nil {
		return 0, err
	}

	// ... and fold in the remaining original edges (Definition 4(2)): an
	// edge is discarded when a recorded segment already dominates it; a
	// cheaper parallel edge updates the recorded cost.
	if err := e.foldEdges(ctx, qs, forward, ""); err != nil {
		return 0, err
	}
	return iterations, nil
}

// segSweep fills the TSeg working table with bounded multi-source
// set-Dijkstra distances (dist <= lthd) from every node listed in
// seedTable (nid column). BuildSegTable seeds all of TNodes; the
// decremental repair seeds only the touched sources. Statement shapes are
// rendered before the loop; the rounds only bind fresh parameters.
func (e *Engine) segSweep(ctx context.Context, qs *QueryStats, lthd int64, forward bool, seedTable string) (int, error) {
	db := e.db
	if _, err := e.exec(ctx, qs, nil, nil, segClearQ); err != nil {
		return 0, err
	}
	if _, err := e.exec(ctx, qs, nil, nil, segSeedQ+seedTable); err != nil {
		return 0, err
	}

	x := buildSegSweep(forward)
	useMerge := db.Profile().SupportsMerge && !e.opts.TraditionalSQL
	useWindow := db.Profile().SupportsWindow && !e.opts.TraditionalSQL

	var iterations int
	k := int64(0)
	limit := e.maxIters()
	for {
		if err := rdb.ContextErr(ctx); err != nil {
			return 0, fmt.Errorf("core: SegTable construction cancelled: %w", err)
		}
		k++
		if int(k) > limit {
			return 0, fmt.Errorf("core: SegTable construction exceeded %d iterations", limit)
		}
		cnt, err := e.exec(ctx, qs, nil, nil, x.frontier, k, e.wmin)
		if err != nil {
			return 0, err
		}
		if cnt == 0 {
			break
		}
		iterations++
		if useMerge {
			if _, err := e.exec(ctx, qs, nil, nil, x.merge, lthd); err != nil {
				return 0, err
			}
		} else {
			if err := e.segExpandNoMerge(ctx, qs, x, useWindow, lthd); err != nil {
				return 0, err
			}
		}
		if _, err := e.exec(ctx, qs, nil, nil, segResetQ); err != nil {
			return 0, err
		}
	}

	return iterations, nil
}

// foldEdges merges the original edges into the segment table
// (Definition 4(2)): an edge is discarded when a recorded segment already
// dominates it, a cheaper edge updates the recorded cost, and parallel
// edges collapse to their minimum. A non-empty touchTable restricts the
// fold to the (fid, tid) pairs recorded there — the decremental repair
// path, which only re-materializes touched pairs.
func (e *Engine) foldEdges(ctx context.Context, qs *QueryStats, forward bool, touchTable string) error {
	target := TblOutSegs
	pid := "s.fid"
	if !forward {
		target = TblInSegs
		pid = "s.tid" // successor of fid on the single-edge path
	}
	restrict := ""
	if touchTable != "" {
		restrict = " WHERE EXISTS (SELECT fid FROM " + touchTable + " m WHERE m.fid = s.fid AND m.tid = s.tid)"
	}
	src := "SELECT s.fid, s.tid, " + pid + ", MIN(s.cost) FROM " + TblEdges + " s" + restrict +
		" GROUP BY s.fid, s.tid"
	if e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL {
		q := "MERGE INTO " + target + " AS target USING (" + src + ") AS source (fid, tid, pid, cost) " +
			"ON (target.fid = source.fid AND target.tid = source.tid) " +
			"WHEN MATCHED AND target.cost > source.cost THEN UPDATE SET cost = source.cost, pid = source.pid " +
			"WHEN NOT MATCHED THEN INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.pid, source.cost)"
		_, err := e.exec(ctx, qs, nil, nil, q)
		return err
	}
	_, err := e.mergelessMaintain(ctx, qs, target, src, nil)
	return err
}

// segExpandNoMerge emulates the construction MERGE with UPDATE + INSERT
// (PostgreSQL 9.0 profile) or additionally replaces the window function
// with aggregate + join-back (TSQL). The expansion lands in scratch tables
// keyed (src, nid). The statements come pre-rendered in x — only lthd
// binds per call.
func (e *Engine) segExpandNoMerge(ctx context.Context, qs *QueryStats, x *segSweepSQL, useWindow bool, lthd int64) error {
	db := e.sess
	// Lazily create the wide scratch table for construction (src, nid).
	if _, ok := e.db.Catalog().Get("TSegExpand"); !ok {
		for _, q := range []string{
			"CREATE TABLE TSegExpand (src INT, nid INT, par INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegexpand_key ON TSegExpand (src, nid)",
			"CREATE TABLE TSegExpCost (src INT, nid INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegexpcost_key ON TSegExpCost (src, nid)",
		} {
			if _, err := db.Exec(q); err != nil {
				return err
			}
			qs.Statements++
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM TSegExpand"); err != nil {
		return err
	}
	if useWindow {
		if _, err := e.exec(ctx, qs, nil, nil, x.insWindow, lthd); err != nil {
			return err
		}
	} else {
		if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM TSegExpCost"); err != nil {
			return err
		}
		if _, err := e.exec(ctx, qs, nil, nil, x.insAgg, lthd); err != nil {
			return err
		}
		if _, err := e.exec(ctx, qs, nil, nil, x.insBack, lthd); err != nil {
			return err
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, x.update); err != nil {
		return err
	}
	if _, err := e.exec(ctx, qs, nil, nil, x.insert); err != nil {
		return err
	}
	return nil
}
