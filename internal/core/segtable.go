package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rdb"
)

// BuildSegTable constructs the SegTable index of Definition 4: TOutSegs
// holds every pre-computed shortest segment (u,v) with δ(u,v) <= lthd plus
// the original edges not dominated by a segment; TInSegs is the symmetric
// incoming-direction table. Construction itself runs through the FEM
// framework (§4.2): all nodes start as sources in a working table TSeg
// keyed on (src, nid), bounded multi-source set-Dijkstra expands until the
// minimal unfinalized distance exceeds lthd, and a final MERGE folds in the
// remaining original edges.
func (e *Engine) BuildSegTable(lthd int64) (*SegTableStats, error) {
	return e.BuildSegTableContext(context.Background(), lthd)
}

// BuildSegTableContext is BuildSegTable with cooperative cancellation: a
// cancelled ctx aborts the construction at the next statement or sweep
// round, leaving the engine with no SegTable (segBuilt stays false, so
// BSEG refuses cleanly) rather than a partial index.
func (e *Engine) BuildSegTableContext(ctx context.Context, lthd int64) (*SegTableStats, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// Building excludes searches (shared working tables) and invalidates
	// every cached answer: BSEG results depend on the index.
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	return e.buildSegTableLocked(ctx, lthd, true)
}

// buildSegTableLocked is the construction body; callers hold queryMu. The
// decremental repair fallback calls it with bump=false: the mutation batch
// already bumped the graph version, concurrent searches are latched out,
// and the path cache is empty, so a second invalidation would only distort
// the stats.
func (e *Engine) buildSegTableLocked(ctx context.Context, lthd int64, bump bool) (*SegTableStats, error) {
	if e.Nodes() == 0 {
		return nil, fmt.Errorf("core: no graph loaded")
	}
	if lthd < 1 {
		return nil, fmt.Errorf("core: lthd must be positive, got %d", lthd)
	}
	st := &SegTableStats{Lthd: lthd}
	start := time.Now()
	qs := &QueryStats{Algorithm: "SegBuild"} // reuse the statement counter

	db := e.sess
	// The previous index dies the moment its tables are dropped: a failed
	// or cancelled build must leave segBuilt false (BSEG refuses cleanly)
	// rather than pointing the planner and searches at a partial index.
	// Cached BSEG answers stay sound — they are real shortest paths of the
	// unchanged graph — so no version bump is needed here.
	e.mu.Lock()
	e.segBuilt = false
	e.mu.Unlock()
	// (Re)create the index tables under the engine's strategy.
	for _, tbl := range []string{TblOutSegs, TblInSegs, TblSeg} {
		if _, ok := e.db.Catalog().Get(tbl); ok {
			if _, err := db.Exec("DROP TABLE " + tbl); err != nil {
				return nil, err
			}
			qs.Statements++
		}
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (fid INT, tid INT, pid INT, cost INT)", TblOutSegs),
		fmt.Sprintf("CREATE TABLE %s (fid INT, tid INT, pid INT, cost INT)", TblInSegs),
	}
	switch e.opts.Strategy {
	case ClusteredIndex:
		stmts = append(stmts,
			fmt.Sprintf("CREATE CLUSTERED INDEX toutsegs_fid ON %s (fid)", TblOutSegs),
			fmt.Sprintf("CREATE CLUSTERED INDEX tinsegs_tid ON %s (tid)", TblInSegs),
		)
	case SecondaryIndex:
		stmts = append(stmts,
			fmt.Sprintf("CREATE INDEX toutsegs_fid ON %s (fid)", TblOutSegs),
			fmt.Sprintf("CREATE INDEX tinsegs_tid ON %s (tid)", TblInSegs),
		)
	case NoIndex:
		// bare heaps; probes degrade to scans, as Fig 8(c) measures.
	}
	// The construction working set always gets a clustered (src, nid) key:
	// the paper's construction assumes the intermediate results are
	// indexed ("we build indices over the relational tables for ...
	// intermediate results").
	stmts = append(stmts,
		fmt.Sprintf("CREATE TABLE %s (src INT, nid INT, dist INT, par INT, f INT)", TblSeg),
		fmt.Sprintf("CREATE UNIQUE CLUSTERED INDEX tseg_key ON %s (src, nid)", TblSeg),
	)
	for _, q := range stmts {
		if _, err := db.Exec(q); err != nil {
			return nil, err
		}
		qs.Statements++
	}

	// Forward pass: shortest segments in the outgoing direction. par holds
	// pre(v), the predecessor of v on the path src -> v, which becomes
	// TOutSegs.pid (Definition 4(1)).
	itF, err := e.segPass(ctx, qs, lthd, true)
	if err != nil {
		return nil, err
	}
	// Backward pass over incoming edges. par holds the successor of v on
	// the path v -> src, which becomes TInSegs.pid.
	itB, err := e.segPass(ctx, qs, lthd, false)
	if err != nil {
		return nil, err
	}
	st.Iterations = itF + itB

	outCnt, _, err := db.QueryInt(fmt.Sprintf("SELECT COUNT(*) FROM %s", TblOutSegs))
	if err != nil {
		return nil, err
	}
	inCnt, _, err := db.QueryInt(fmt.Sprintf("SELECT COUNT(*) FROM %s", TblInSegs))
	if err != nil {
		return nil, err
	}
	qs.Statements += 2
	st.OutSegs = int(outCnt)
	st.InSegs = int(inCnt)
	st.Statements = qs.Statements
	st.BuildTime = time.Since(start)
	e.mu.Lock()
	e.segBuilt = true
	e.segLthd = lthd
	e.opts.Lthd = lthd
	if bump {
		e.bumpVersionLocked()
	}
	e.mu.Unlock()
	return st, nil
}

// segPass runs one direction of the construction and materializes the
// segment table plus the original-edge merge.
func (e *Engine) segPass(ctx context.Context, qs *QueryStats, lthd int64, forward bool) (int, error) {
	// Every node is a source at distance 0 from itself.
	iterations, err := e.segSweep(ctx, qs, lthd, forward, TblNodes)
	if err != nil {
		return 0, err
	}

	// Materialize the segments (Definition 4(1)) ...
	target := TblOutSegs
	if !forward {
		target = TblInSegs
	}
	var insQ string
	if forward {
		insQ = fmt.Sprintf(
			"INSERT INTO %s (fid, tid, pid, cost) SELECT src, nid, par, dist FROM %s WHERE src <> nid",
			target, TblSeg)
	} else {
		// Backward pass computed paths nid -> src; store as (fid=nid,
		// tid=src, pid=successor of nid).
		insQ = fmt.Sprintf(
			"INSERT INTO %s (fid, tid, pid, cost) SELECT nid, src, par, dist FROM %s WHERE src <> nid",
			target, TblSeg)
	}
	if _, err := e.exec(ctx, qs, nil, nil, insQ); err != nil {
		return 0, err
	}

	// ... and fold in the remaining original edges (Definition 4(2)): an
	// edge is discarded when a recorded segment already dominates it; a
	// cheaper parallel edge updates the recorded cost.
	if err := e.foldEdges(ctx, qs, forward, ""); err != nil {
		return 0, err
	}
	return iterations, nil
}

// segSweep fills the TSeg working table with bounded multi-source
// set-Dijkstra distances (dist <= lthd) from every node listed in
// seedTable (nid column). BuildSegTable seeds all of TNodes; the
// decremental repair seeds only the touched sources.
func (e *Engine) segSweep(ctx context.Context, qs *QueryStats, lthd int64, forward bool, seedTable string) (int, error) {
	db := e.db
	if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM "+TblSeg); err != nil {
		return 0, err
	}
	if _, err := e.exec(ctx, qs, nil, nil, fmt.Sprintf(
		"INSERT INTO %s (src, nid, dist, par, f) SELECT nid, nid, 0, nid, 0 FROM %s",
		TblSeg, seedTable)); err != nil {
		return 0, err
	}

	joinCol, newCol := "fid", "tid"
	if !forward {
		joinCol, newCol = "tid", "fid"
	}
	// F-operator (construction rule of §4.2): candidates below k*wmin, or
	// the global minimum, expand together.
	frontierQ := fmt.Sprintf(
		"UPDATE %[1]s SET f = 2 WHERE f = 0 AND (dist < ? OR dist = (SELECT MIN(dist) FROM %[1]s WHERE f = 0))",
		TblSeg)
	resetQ := fmt.Sprintf("UPDATE %s SET f = 1 WHERE f = 2", TblSeg)

	useMerge := db.Profile().SupportsMerge && !e.opts.TraditionalSQL
	useWindow := db.Profile().SupportsWindow && !e.opts.TraditionalSQL

	// E-operator source: the cheapest in-bound expansion per (src, node).
	var expandSrc string
	if useWindow {
		expandSrc = fmt.Sprintf(
			"SELECT src, nid, par, cost FROM ("+
				"SELECT q.src, out.%s, q.nid, out.cost + q.dist, "+
				"ROW_NUMBER() OVER (PARTITION BY q.src, out.%s ORDER BY out.cost + q.dist) "+
				"FROM %s q, %s out WHERE q.nid = out.%s AND q.f = 2 AND out.cost + q.dist <= ?"+
				") tmp (src, nid, par, cost, rn) WHERE rn = 1",
			newCol, newCol, TblSeg, TblEdges, joinCol)
	}

	var iterations int
	k := int64(0)
	limit := e.maxIters()
	for {
		if err := rdb.ContextErr(ctx); err != nil {
			return 0, fmt.Errorf("core: SegTable construction cancelled: %w", err)
		}
		k++
		if int(k) > limit {
			return 0, fmt.Errorf("core: SegTable construction exceeded %d iterations", limit)
		}
		cnt, err := e.exec(ctx, qs, nil, nil, frontierQ, k*e.wmin)
		if err != nil {
			return 0, err
		}
		if cnt == 0 {
			break
		}
		iterations++
		if useMerge {
			mergeQ := fmt.Sprintf(
				"MERGE INTO %s AS target USING (%s) AS source (src, nid, par, cost) "+
					"ON (target.src = source.src AND target.nid = source.nid) "+
					"WHEN MATCHED AND target.dist > source.cost THEN UPDATE SET dist = source.cost, par = source.par, f = 0 "+
					"WHEN NOT MATCHED THEN INSERT (src, nid, dist, par, f) VALUES (source.src, source.nid, source.cost, source.par, 0)",
				TblSeg, expandSrc)
			if _, err := e.exec(ctx, qs, nil, nil, mergeQ, lthd); err != nil {
				return 0, err
			}
		} else {
			if err := e.segExpandNoMerge(ctx, qs, joinCol, newCol, useWindow, lthd); err != nil {
				return 0, err
			}
		}
		if _, err := e.exec(ctx, qs, nil, nil, resetQ); err != nil {
			return 0, err
		}
	}

	return iterations, nil
}

// foldEdges merges the original edges into the segment table
// (Definition 4(2)): an edge is discarded when a recorded segment already
// dominates it, a cheaper edge updates the recorded cost, and parallel
// edges collapse to their minimum. A non-empty touchTable restricts the
// fold to the (fid, tid) pairs recorded there — the decremental repair
// path, which only re-materializes touched pairs.
func (e *Engine) foldEdges(ctx context.Context, qs *QueryStats, forward bool, touchTable string) error {
	target := TblOutSegs
	pid := "s.fid"
	if !forward {
		target = TblInSegs
		pid = "s.tid" // successor of fid on the single-edge path
	}
	restrict := ""
	if touchTable != "" {
		restrict = fmt.Sprintf(
			" WHERE EXISTS (SELECT fid FROM %s m WHERE m.fid = s.fid AND m.tid = s.tid)", touchTable)
	}
	src := fmt.Sprintf(
		"SELECT s.fid, s.tid, %s, MIN(s.cost) FROM %s s%s GROUP BY s.fid, s.tid",
		pid, TblEdges, restrict)
	if e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL {
		q := fmt.Sprintf(
			"MERGE INTO %s AS target USING (%s) AS source (fid, tid, pid, cost) "+
				"ON (target.fid = source.fid AND target.tid = source.tid) "+
				"WHEN MATCHED AND target.cost > source.cost THEN UPDATE SET cost = source.cost, pid = source.pid "+
				"WHEN NOT MATCHED THEN INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.pid, source.cost)",
			target, src)
		_, err := e.exec(ctx, qs, nil, nil, q)
		return err
	}
	_, err := e.mergelessMaintain(ctx, qs, target, src, nil)
	return err
}

// segExpandNoMerge emulates the construction MERGE with UPDATE + INSERT
// (PostgreSQL 9.0 profile) or additionally replaces the window function
// with aggregate + join-back (TSQL). The expansion lands in scratch tables
// keyed (src, nid).
func (e *Engine) segExpandNoMerge(ctx context.Context, qs *QueryStats, joinCol, newCol string, useWindow bool, lthd int64) error {
	db := e.sess
	// Lazily create the wide scratch table for construction (src, nid).
	if _, ok := e.db.Catalog().Get("TSegExpand"); !ok {
		for _, q := range []string{
			"CREATE TABLE TSegExpand (src INT, nid INT, par INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegexpand_key ON TSegExpand (src, nid)",
			"CREATE TABLE TSegExpCost (src INT, nid INT, cost INT)",
			"CREATE UNIQUE CLUSTERED INDEX tsegexpcost_key ON TSegExpCost (src, nid)",
		} {
			if _, err := db.Exec(q); err != nil {
				return err
			}
			qs.Statements++
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM TSegExpand"); err != nil {
		return err
	}
	if useWindow {
		insQ := fmt.Sprintf(
			"INSERT INTO TSegExpand (src, nid, par, cost) "+
				"SELECT src, nid, par, cost FROM ("+
				"SELECT q.src, out.%s, q.nid, out.cost + q.dist, "+
				"ROW_NUMBER() OVER (PARTITION BY q.src, out.%s ORDER BY out.cost + q.dist) "+
				"FROM %s q, %s out WHERE q.nid = out.%s AND q.f = 2 AND out.cost + q.dist <= ?"+
				") tmp (src, nid, par, cost, rn) WHERE rn = 1",
			newCol, newCol, TblSeg, TblEdges, joinCol)
		if _, err := e.exec(ctx, qs, nil, nil, insQ, lthd); err != nil {
			return err
		}
	} else {
		if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM TSegExpCost"); err != nil {
			return err
		}
		aggQ := fmt.Sprintf(
			"INSERT INTO TSegExpCost (src, nid, cost) "+
				"SELECT q.src, out.%s, MIN(out.cost + q.dist) FROM %s q, %s out "+
				"WHERE q.nid = out.%s AND q.f = 2 AND out.cost + q.dist <= ? GROUP BY q.src, out.%s",
			newCol, TblSeg, TblEdges, joinCol, newCol)
		if _, err := e.exec(ctx, qs, nil, nil, aggQ, lthd); err != nil {
			return err
		}
		backQ := fmt.Sprintf(
			"INSERT INTO TSegExpand (src, nid, par, cost) "+
				"SELECT ec.src, ec.nid, MIN(q.nid), ec.cost FROM %s q, %s out, TSegExpCost ec "+
				"WHERE q.nid = out.%s AND q.f = 2 AND out.cost + q.dist <= ? "+
				"AND ec.src = q.src AND ec.nid = out.%s AND out.cost + q.dist = ec.cost "+
				"GROUP BY ec.src, ec.nid, ec.cost",
			TblSeg, TblEdges, joinCol, newCol)
		if _, err := e.exec(ctx, qs, nil, nil, backQ, lthd); err != nil {
			return err
		}
	}
	updQ := fmt.Sprintf(
		"UPDATE %[1]s SET dist = s.cost, par = s.par, f = 0 FROM TSegExpand s "+
			"WHERE %[1]s.src = s.src AND %[1]s.nid = s.nid AND %[1]s.dist > s.cost",
		TblSeg)
	if _, err := e.exec(ctx, qs, nil, nil, updQ); err != nil {
		return err
	}
	insQ := fmt.Sprintf(
		"INSERT INTO %[1]s (src, nid, dist, par, f) "+
			"SELECT s.src, s.nid, s.cost, s.par, 0 FROM TSegExpand s "+
			"WHERE NOT EXISTS (SELECT nid FROM %[1]s v WHERE v.src = s.src AND v.nid = s.nid)",
		TblSeg)
	if _, err := e.exec(ctx, qs, nil, nil, insQ); err != nil {
		return err
	}
	return nil
}
