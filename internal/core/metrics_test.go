package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rdb"
)

// TestQueryStageTimings: Engine.Query populates the serving-path stage
// decomposition — gate wait, planning, SQL share — without disturbing the
// search-time semantics of Total.
func TestQueryStageTimings(t *testing.T) {
	e := newTestEngine(t, graph.Power(400, 3, 7), rdb.Options{}, Options{})
	res, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 200, Alg: AlgAuto})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats
	if qs == nil {
		t.Fatal("no stats")
	}
	// An auto query always runs the planner, and a real search always
	// issues SQL; both must show up in the decomposition.
	if qs.PlanDur <= 0 {
		t.Errorf("PlanDur %v: auto query must record planner time", qs.PlanDur)
	}
	if qs.CacheHit {
		t.Fatal("first query must miss the cache")
	}
	if qs.SQLDur() <= 0 {
		t.Errorf("SQLDur %v: a real search must record statement time", qs.SQLDur())
	}
	if qs.SQLDur() > qs.Total {
		t.Errorf("SQLDur %v exceeds Total %v", qs.SQLDur(), qs.Total)
	}
	if qs.GateWait < 0 {
		t.Errorf("GateWait %v negative", qs.GateWait)
	}

	// The answered query lands in the histogram of the algorithm that ran.
	alg, err := ParseAlgorithm(qs.Algorithm)
	if err != nil {
		t.Fatalf("stats algorithm %q: %v", qs.Algorithm, err)
	}
	if got := e.QueryLatency(alg).Snapshot().Count; got != 1 {
		t.Errorf("latency histogram count %d, want 1", got)
	}

	// A failed query counts in QueryErrors and stays out of the histograms.
	hist0 := histTotal(e)
	if _, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 1 << 40}); err == nil {
		t.Fatal("out-of-range query succeeded")
	}
	if e.QueryErrors() != 1 {
		t.Errorf("QueryErrors %d, want 1", e.QueryErrors())
	}
	if got := histTotal(e); got != hist0 {
		t.Errorf("failed query leaked into latency histograms (%d -> %d)", hist0, got)
	}
}

func histTotal(e *Engine) uint64 {
	var n uint64
	for a := 0; a < numAlgs; a++ {
		n += e.QueryLatency(Algorithm(a)).Snapshot().Count
	}
	return n
}

// TestTrackBuild: the readiness count nests and clears (white-box — the
// serving tier's /readyz polls BuildsInFlight).
func TestTrackBuild(t *testing.T) {
	e := newTestEngine(t, graph.Power(50, 3, 7), rdb.Options{}, Options{})
	if n := e.BuildsInFlight(); n != 0 {
		t.Fatalf("idle engine reports %d builds", n)
	}
	done1 := e.trackBuild()
	done2 := e.trackBuild()
	if n := e.BuildsInFlight(); n != 2 {
		t.Fatalf("two tracked builds report %d", n)
	}
	done1()
	done2()
	if n := e.BuildsInFlight(); n != 0 {
		t.Fatalf("cleared builds report %d", n)
	}
}

// TestEngineCollectMetrics: the engine's exposition is scraper-valid and
// carries the families the acceptance criteria name — gate admissions,
// per-algorithm latency, path cache, scratch pool, graph gauges.
func TestEngineCollectMetrics(t *testing.T) {
	e := newTestEngine(t, graph.Power(400, 3, 7), rdb.Options{}, Options{})
	if _, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 200, Alg: AlgBSDJ}); err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	r.Register(e)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if err := obs.CheckExposition(page); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		`spdb_query_duration_seconds_bucket{algorithm="BSDJ",le="+Inf"} 1`,
		`spdb_gate_admissions_total{mode="shared"} 1`,
		`spdb_gate_admissions_total{mode="exclusive"}`,
		`spdb_path_cache_misses_total 1`,
		`spdb_scratch_live 0`,
		`spdb_graph_nodes 400`,
		`spdb_index_builds_in_flight 0`,
		`spdb_mutations_total{op="insert"} 0`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
