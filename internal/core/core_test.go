package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// newTestEngine loads g into a fresh in-memory database.
func newTestEngine(t *testing.T, g *graph.Graph, dbOpts rdb.Options, opts Options) *Engine {
	t.Helper()
	db, err := rdb.Open(dbOpts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	e := NewEngine(db, opts)
	t.Cleanup(func() { e.Close() })
	if err := e.LoadGraph(g); err != nil {
		t.Fatalf("load graph: %v", err)
	}
	return e
}

// paperGraph reproduces the example of Figure 1: nodes s,b,c,d,e,f,g,h,i,j,t.
func paperGraph(t *testing.T) (*graph.Graph, map[string]int64) {
	t.Helper()
	names := []string{"s", "b", "c", "d", "e", "f", "g", "h", "i", "j", "t"}
	id := make(map[string]int64, len(names))
	for i, n := range names {
		id[n] = int64(i)
	}
	type we struct {
		u, v string
		w    int64
	}
	// Undirected edges consistent with Figure 1/Figure 5 distances:
	// shortest path s->t has length 15 via h (d2s(h)=12 lb side d2t(h)=3).
	edges := []we{
		{"s", "d", 6}, {"s", "c", 1}, {"s", "b", 2},
		{"d", "c", 1}, {"c", "e", 3}, {"b", "e", 2},
		{"e", "f", 7}, {"e", "g", 3}, {"f", "g", 4},
		{"f", "h", 9}, {"g", "h", 5}, {"h", "t", 3},
		{"h", "i", 4}, {"i", "t", 5}, {"i", "j", 2}, {"j", "t", 8},
	}
	var list []graph.Edge
	for _, e := range edges {
		list = append(list, graph.Edge{From: id[e.u], To: id[e.v], Weight: e.w})
		list = append(list, graph.Edge{From: id[e.v], To: id[e.u], Weight: e.w})
	}
	g, err := graph.New(int64(len(names)), list)
	if err != nil {
		t.Fatalf("paper graph: %v", err)
	}
	return g, id
}

func allAlgorithms() []Algorithm {
	return []Algorithm{AlgDJ, AlgBDJ, AlgBSDJ, AlgBBFS, AlgBSEG, AlgALT}
}

// buildOracle builds a small landmark oracle so AlgALT can run; tests that
// iterate allAlgorithms call it next to BuildSegTable.
func buildOracle(t *testing.T, e *Engine) {
	t.Helper()
	if _, err := e.BuildOracle(oracle.Config{K: 4}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// checkPath validates a result against the in-memory reference.
func checkPath(t *testing.T, g *graph.Graph, alg Algorithm, s, tt int64, p Path) {
	t.Helper()
	ref := graph.MDJ(g, s, tt)
	if ref.Found != p.Found {
		t.Fatalf("%v s=%d t=%d: found=%v, reference=%v", alg, s, tt, p.Found, ref.Found)
	}
	if !p.Found {
		return
	}
	if p.Length != ref.Distance {
		t.Fatalf("%v s=%d t=%d: length=%d, reference=%d", alg, s, tt, p.Length, ref.Distance)
	}
	if len(p.Nodes) == 0 || p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != tt {
		t.Fatalf("%v s=%d t=%d: path endpoints wrong: %v", alg, s, tt, p.Nodes)
	}
	got, ok := g.PathLength(p.Nodes)
	if !ok {
		t.Fatalf("%v s=%d t=%d: path uses non-edges: %v", alg, s, tt, p.Nodes)
	}
	if got != ref.Distance {
		t.Fatalf("%v s=%d t=%d: path weight %d != shortest %d (%v)", alg, s, tt, got, ref.Distance, p.Nodes)
	}
}

func TestPaperExampleAllAlgorithms(t *testing.T) {
	g, id := paperGraph(t)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(6); err != nil {
		t.Fatalf("segtable: %v", err)
	}
	buildOracle(t, e)
	ref := graph.MDJ(g, id["s"], id["t"])
	if !ref.Found || ref.Distance != 15 {
		t.Fatalf("reference disagrees with the paper example: %+v", ref)
	}
	for _, alg := range allAlgorithms() {
		p, qs, err := shortestPath(e, alg, id["s"], id["t"])
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if qs.Expansions == 0 {
			t.Errorf("%v: expected at least one expansion", alg)
		}
		checkPath(t, g, alg, id["s"], id["t"], p)
	}
}

func TestRandomGraphAllAlgorithms(t *testing.T) {
	g := graph.Random(60, 180, 42)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(30); err != nil {
		t.Fatalf("segtable: %v", err)
	}
	buildOracle(t, e)
	queries := graph.RandomQueries(g, 12, 7)
	for _, alg := range allAlgorithms() {
		for _, q := range queries {
			p, _, err := shortestPath(e, alg, q[0], q[1])
			if err != nil {
				t.Fatalf("%v s=%d t=%d: %v", alg, q[0], q[1], err)
			}
			checkPath(t, g, alg, q[0], q[1], p)
		}
	}
}
