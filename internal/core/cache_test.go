package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// TestCacheHitMiss covers the basic miss-then-hit cycle and that hits
// bypass SQL entirely.
func TestCacheHitMiss(t *testing.T) {
	g := graph.Power(500, 3, 13)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	q := graph.RandomQueries(g, 1, 8)[0]

	p1, qs1, err := shortestPath(e, AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}
	if qs1.CacheHit {
		t.Fatal("first query must be a miss")
	}
	stmtsBefore := e.DB().Stats().Statements

	p2, qs2, err := shortestPath(e, AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}
	if !qs2.CacheHit {
		t.Fatal("second identical query must hit the cache")
	}
	if got := e.DB().Stats().Statements; got != stmtsBefore {
		t.Fatalf("cache hit issued SQL: %d statements", got-stmtsBefore)
	}
	if p2.Found != p1.Found || p2.Length != p1.Length {
		t.Fatalf("cached answer differs: %+v vs %+v", p2, p1)
	}
	// Different algorithm or endpoints are distinct keys.
	if _, qs3, err := shortestPath(e, AlgBBFS, q[0], q[1]); err != nil {
		t.Fatal(err)
	} else if qs3.CacheHit {
		t.Fatal("different algorithm must not share cache entries")
	}

	cs := e.CacheStats()
	if cs.Hits != 1 || cs.Misses < 2 || cs.Entries != 2 {
		t.Fatalf("unexpected cache stats: %+v", cs)
	}

	// Callers must not be able to corrupt cached entries via the shared
	// Nodes slice.
	if len(p2.Nodes) > 0 {
		p2.Nodes[0] = -42
		p4, _, err := shortestPath(e, AlgBSDJ, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if p4.Nodes[0] == -42 {
			t.Fatal("cache entry aliases caller's slice")
		}
	}
}

// TestCacheInvalidationOnReload checks that swapping the graph (LoadGraph)
// discards cached answers instead of serving results for the old graph.
func TestCacheInvalidationOnReload(t *testing.T) {
	g1 := graph.Random(200, 800, 1)
	e := newTestEngine(t, g1, rdb.Options{}, Options{})
	q := graph.RandomQueries(g1, 1, 4)[0]
	p1, _, err := shortestPath(e, AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}

	// Reload a graph with every weight doubled: same topology, so the
	// same pair must now report exactly twice the distance.
	edges := make([]graph.Edge, len(g1.Edges))
	for i, ed := range g1.Edges {
		edges[i] = graph.Edge{From: ed.From, To: ed.To, Weight: 2 * ed.Weight}
	}
	g2, err := graph.New(g1.N, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadGraph(g2); err != nil {
		t.Fatal(err)
	}
	p2, qs2, err := shortestPath(e, AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}
	if qs2.CacheHit {
		t.Fatal("query after reload must not hit the stale cache")
	}
	if p1.Found && (!p2.Found || p2.Length != 2*p1.Length) {
		t.Fatalf("stale answer after reload: before=%+v after=%+v", p1, p2)
	}
	if cs := e.CacheStats(); cs.Invalidations == 0 {
		t.Fatalf("reload did not invalidate: %+v", cs)
	}
}

// TestCacheInvalidationOnIndexAndInsert checks BuildSegTable and InsertEdge
// both start a new cache generation.
func TestCacheInvalidationOnIndexAndInsert(t *testing.T) {
	g := graph.Power(300, 3, 9)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	q := graph.RandomQueries(g, 1, 2)[0]
	p1, _, err := shortestPath(e, AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Found {
		t.Skip("query pair not connected")
	}

	v0 := e.GraphVersion()
	if _, err := e.BuildSegTable(10); err != nil {
		t.Fatal(err)
	}
	if e.GraphVersion() == v0 {
		t.Fatal("BuildSegTable must bump the graph version")
	}
	if _, qs, err := shortestPath(e, AlgBSDJ, q[0], q[1]); err != nil {
		t.Fatal(err)
	} else if qs.CacheHit {
		t.Fatal("query after index build must recompute")
	}

	// A direct s->t shortcut strictly shorter than the current distance
	// must be reflected immediately — a stale cache would keep p1.
	if p1.Length > 1 {
		if _, err := e.InsertEdge(q[0], q[1], 1); err != nil {
			t.Fatal(err)
		}
		p2, qs, err := shortestPath(e, AlgBSDJ, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if qs.CacheHit {
			t.Fatal("query after edge insert must recompute")
		}
		if p2.Length != 1 {
			t.Fatalf("shortcut not visible: got %d, want 1", p2.Length)
		}
	}
}

// TestCacheEviction bounds the cache and checks LRU eviction counts.
func TestCacheEviction(t *testing.T) {
	c := newPathCache(2)
	k := func(i int64) cacheKey { return cacheKey{version: 1, alg: AlgBSDJ, s: i, t: i + 1} }
	c.put(k(1), Path{Found: true, Length: 1})
	c.put(k(2), Path{Found: true, Length: 2})
	if _, ok := c.get(k(1)); !ok { // touch 1 so 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), Path{Found: true, Length: 3})
	if _, ok := c.get(k(2)); ok {
		t.Fatal("entry 2 should have been evicted as LRU")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 should survive eviction")
	}
	if cs := c.snapshot(); cs.Evictions != 1 || cs.Entries != 2 || cs.Capacity != 2 {
		t.Fatalf("unexpected stats: %+v", cs)
	}
}
