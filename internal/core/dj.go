package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rdb"
)

// The statement shapes of Algorithm 1 (djInit..djDist) are rendered per
// scratch set at mint time: the MaxDist/NoParent sentinels bind as
// parameters (not integer literals), so the texts are per-set constants and
// every execution reuses the cached plan.

// dj implements Algorithm 1: single-directional Dijkstra over the FEM
// framework, one frontier node per iteration, located by the Listing 2(2)
// statement and expanded by Listing 2(3,4).
//
// One deliberate deviation from the paper's pseudo-code: Algorithm 1 line
// 5 breaks when the expansion affects zero tuples, but an expansion can
// legitimately affect nothing while unfinalized nodes (and the target)
// remain — e.g. when every neighbor of the frontier already holds a
// smaller distance. We instead terminate when no frontier candidate is
// left or the target is finalized, which is the sound reading; see
// EXPERIMENTS.md.
func (e *Engine) dj(ctx context.Context, sc *scratchSet, s, t int64, budget int64) (Path, *QueryStats, error) {
	qs := &QueryStats{Algorithm: "DJ", budget: budget}
	start := time.Now()
	defer func() { qs.Total = time.Since(start) }()

	if err := e.resetVisited(ctx, qs, sc); err != nil {
		return Path{}, qs, err
	}
	// Listing 2(1): initialize TVisited with the source node.
	if _, err := e.exec(ctx, qs, &qs.PE, nil, sc.djInit, s, s, MaxDist, NoParent); err != nil {
		return Path{}, qs, err
	}
	if s == t {
		return Path{Found: true, Length: 0, Nodes: []int64{s}}, qs, nil
	}

	xp := e.buildExpand(fwdDir(), TblEdges, "q.nid = ?", 1, false, sc)
	targetStmt, err := e.stmt(sc.djTarget)
	if err != nil {
		return Path{}, qs, err
	}

	limit := e.maxIters()
	found := false
	for iter := 0; ; iter++ {
		// Cooperative cancellation: one check per frontier iteration, so a
		// dead query releases the latch within a single expansion round.
		if err := rdb.ContextErr(ctx); err != nil {
			return Path{}, qs, fmt.Errorf("core: DJ cancelled after %d iterations: %w", iter, err)
		}
		if iter > limit {
			return Path{}, qs, fmt.Errorf("core: DJ exceeded %d iterations (s=%d t=%d)", limit, s, t)
		}
		qs.Iterations = iter + 1
		// Listing 2(2): locate the next node to be expanded.
		mid, null, err := e.queryInt(ctx, qs, &qs.SC, sc.djMid)
		if err != nil {
			return Path{}, qs, err
		}
		if null {
			break // no candidate left: t unreachable
		}
		// Listing 2(3,4): E and M operators for the frontier node.
		if _, err := e.runExpand(ctx, qs, xp, []any{mid}, 0, 4*MaxDist); err != nil {
			return Path{}, qs, err
		}
		qs.ForwardExpansions++
		// Listing 3(2): finalize the frontier node.
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, sc.djFinalize, mid); err != nil {
			return Path{}, qs, err
		}
		// Listing 3(1): detect termination.
		tq, err := targetStmt.QueryContext(ctx, t)
		qs.Statements++
		if err != nil {
			return Path{}, qs, err
		}
		if tq.Len() > 0 {
			found = true
			break
		}
	}
	qs.Expansions = qs.ForwardExpansions

	vc, err := e.visitedCount(ctx, qs, sc)
	if err != nil {
		return Path{}, qs, err
	}
	qs.VisitedRows = vc
	if !found {
		return Path{Found: false}, qs, nil
	}

	dist, null, err := e.queryInt(ctx, qs, &qs.FPR, sc.djDist, t)
	if err != nil {
		return Path{}, qs, err
	}
	if null {
		return Path{}, qs, fmt.Errorf("core: DJ finalized target without a distance")
	}
	nodes, err := e.recoverForward(ctx, qs, sc, s, t, false)
	if err != nil {
		return Path{}, qs, err
	}
	return Path{Found: true, Length: dist, Nodes: nodes}, qs, nil
}
