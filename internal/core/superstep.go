package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"context"

	"repro/internal/rdb"
)

// Partition-parallel FEM support.
//
// The bi-directional loop in fem.go owns its whole frontier: F selects, E+M
// expand and merge, and the stopping condition reads engine-local minima.
// Horizontal sharding (internal/shard) needs the same machinery one
// superstep at a time, against a frontier the coordinator seeds from
// outside: each shard expands its local candidates, the coordinator
// harvests the boundary (nid, parent, cost) candidates out of the scratch
// TExpand table, routes every candidate to the shard that owns the node,
// and injects the routed batches back through the same MERGE the local
// M-operator uses. A Superstep is that per-query, per-shard handle: it
// leases a scratch set under the shared read gate and exposes F / E+M /
// stats / recovery as separate calls, all through the engine's prepared
// statements.

// ErrUnsupportedSuperstep reports an algorithm the superstep surface cannot
// drive. Node-at-a-time BDJ/DJ never fan out (their frontier is one node),
// and ALT/Label lean on whole-graph landmark indexes that are unsound on a
// partition's subgraph, so only the set-at-a-time frontier algorithms
// (BSDJ, BBFS, BSEG) are exposed.
var ErrUnsupportedSuperstep = errors.New("core: algorithm not supported by the superstep surface (want BSDJ, BBFS or BSEG)")

// FrontierCand is one harvested expansion candidate: node nid is reachable
// at distance Cost through parent Par. The coordinator exchanges these
// between shards; Inject applies them through the M-operator MERGE.
type FrontierCand struct {
	Nid  int64
	Par  int64
	Cost int64
}

// StopCondition is the paper's §4.1 termination term over the global state:
// once some s-t meeting is known (minCost) and the two frontier minima lf
// and lb together cannot beat it, no undiscovered path can either — every
// such path still crosses a forward candidate (≥ lf) and a backward
// candidate (≥ lb). The single-engine loop and the shard coordinator
// evaluate the same term; the coordinator just feeds it global minima.
func StopCondition(lf, lb, minCost int64) bool {
	return minCost < MaxDist && lf+lb >= minCost
}

// SuperstepMins is one shard's statistics-collection round: the best local
// meeting sum and the two frontier minima, each with a validity flag
// (false = the aggregate was NULL, i.e. no rows / no candidates).
type SuperstepMins struct {
	Sum, MinF, MinB          int64
	HasSum, HasMinF, HasMinB bool
}

// injectChunk is the wide INSERT shape used to push routed candidates into
// the scratch TExpand table: fixed row counts keep the statement-text
// population bounded so prepared handles and cached plans recycle.
const injectChunk = 16

// Superstep is a per-query handle on one engine's FEM machinery, factored
// so a coordinator can drive the loop one superstep at a time with an
// injected seed frontier. The handle holds a shared-gate admission and a
// leased scratch set from Begin until Close.
type Superstep struct {
	e    *Engine
	sc   *scratchSet
	qs   *QueryStats
	spec femSpec
	xpF  *expandSQL
	xpB  *expandSQL

	frontF, frontB stmtShape
	harvest        string // SELECT the materialized E-output back out
	distF, distB   string // per-node tentative distance lookups
	inj1, injN     string // TExpand VALUES shapes (1 and injectChunk rows)
	segCostF       string // TOutSegs cost probe
	segCostB       string // TInSegs cost probe
	fNidsF, fNidsB string // selected-frontier readback (sign = 2)
	probeF, probeB string // adjacency prefetch probes (per frontier nid)

	closed bool
}

// BeginSuperstep admits a coordinator-driven search on this engine: it
// validates the algorithm, takes a shared gate slot (concurrent with other
// readers, excluded from mutations), leases a scratch set and clears it.
// budget caps the shard's statement count (0 = unlimited). The caller must
// Close the handle — also on error paths — to release both.
func (e *Engine) BeginSuperstep(ctx context.Context, alg Algorithm, budget int64) (*Superstep, error) {
	e.mu.RLock()
	nodes := e.nodes
	segBuilt, segLthd := e.segBuilt, e.segLthd
	e.mu.RUnlock()
	if e.optErr != nil {
		return nil, e.optErr
	}
	if nodes == 0 {
		return nil, ErrNoGraph
	}
	if !e.db.Profile().SupportsMerge || !e.db.Profile().SupportsWindow {
		return nil, fmt.Errorf("core: superstep surface needs MERGE and window support in the database profile")
	}

	if err := e.lockShared(ctx); err != nil {
		return nil, err
	}
	sc, err := e.scratch.acquire()
	if err != nil {
		e.unlockShared()
		return nil, err
	}

	ss := &Superstep{e: e, sc: sc, qs: &QueryStats{budget: budget}}
	switch alg {
	case AlgBSDJ:
		ss.spec = specBSDJ(sc)
	case AlgBBFS:
		ss.spec = specBBFS(sc)
	case AlgBSEG:
		if !segBuilt {
			ss.Close()
			return nil, fmt.Errorf("core: BSEG superstep requires BuildSegTable first")
		}
		ss.spec = specBSEG(sc, segLthd)
	default:
		ss.Close()
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedSuperstep, alg)
	}
	ss.qs.Algorithm = ss.spec.name

	fwd, bwd := fwdDir(), bwdDir()
	ss.xpF = e.buildExpand(fwd, ss.spec.edgeFwd, "q.f = 2", 0, ss.spec.prune, sc)
	ss.xpB = e.buildExpand(bwd, ss.spec.edgeBwd, "q.b = 2", 0, ss.spec.prune, sc)
	ss.frontF, ss.frontB = ss.spec.frontier(fwd), ss.spec.frontier(bwd)
	ss.harvest = "SELECT nid, par, cost FROM " + sc.expand
	ss.distF = "SELECT d2s FROM " + sc.visited + " WHERE nid = ?"
	ss.distB = "SELECT d2t FROM " + sc.visited + " WHERE nid = ?"
	ss.inj1 = "INSERT INTO " + sc.expand + " (nid, par, cost) VALUES (?, ?, ?)"
	ss.injN = "INSERT INTO " + sc.expand + " (nid, par, cost) VALUES (?, ?, ?)" +
		strings.Repeat(", (?, ?, ?)", injectChunk-1)
	ss.segCostF = "SELECT cost FROM " + TblOutSegs + " WHERE fid = ? AND tid = ?"
	ss.segCostB = "SELECT cost FROM " + TblInSegs + " WHERE fid = ? AND tid = ?"
	ss.fNidsF = "SELECT nid FROM " + sc.visited + " WHERE f = 2"
	ss.fNidsB = "SELECT nid FROM " + sc.visited + " WHERE b = 2"
	// MIN(cost) rather than COUNT(*): cost lives only in the base rows, so
	// the probe must fetch the same heap pages the expansion join will read,
	// not satisfy itself from an index.
	ss.probeF = "SELECT MIN(cost) FROM " + ss.spec.edgeFwd + " WHERE fid = ?"
	ss.probeB = "SELECT MIN(cost) FROM " + ss.spec.edgeBwd + " WHERE tid = ?"

	if err := e.resetVisited(ctx, ss.qs, sc); err != nil {
		ss.Close()
		return nil, err
	}
	return ss, nil
}

// Stats exposes the shard-local accounting (statements, tuples, phase
// durations) accumulated so far; the coordinator sums these into the
// query's global QueryStats.
func (ss *Superstep) Stats() *QueryStats { return ss.qs }

// Inject applies routed candidates through the M-operator: the scratch
// TExpand table is cleared, the batch is inserted (deduplicated by the
// caller — TExpand's nid is a primary key), and the direction's MERGE
// relaxes the visited table, re-opening (sign=0) any settled row the batch
// improves. Seeding works the same way: injecting (s, s, 0) forward into an
// empty table reproduces the biInit row for s. Returns the number of
// visited rows the merge touched.
func (ss *Superstep) Inject(ctx context.Context, forward bool, cands []FrontierCand) (int64, error) {
	if len(cands) == 0 {
		return 0, nil
	}
	e, qs := ss.e, ss.qs
	xp := ss.xpB
	if forward {
		xp = ss.xpF
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, xp.clearExpand); err != nil {
		return 0, err
	}
	rest := cands
	for len(rest) >= injectChunk {
		args := make([]any, 0, 3*injectChunk)
		for _, c := range rest[:injectChunk] {
			args = append(args, c.Nid, c.Par, c.Cost)
		}
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, ss.injN, args...); err != nil {
			return 0, err
		}
		rest = rest[injectChunk:]
	}
	for _, c := range rest {
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, ss.inj1, c.Nid, c.Par, c.Cost); err != nil {
			return 0, err
		}
	}
	return e.exec(ctx, qs, &qs.PE, &qs.MOp, xp.mMerge, sentinelArgs...)
}

// SelectFrontier runs the F-operator for one direction, marking sign=2 on
// the selected candidates and returning the frontier size. k is the
// direction's 1-based expansion counter (BSEG's k*lthd rule binds it).
func (ss *Superstep) SelectFrontier(ctx context.Context, forward bool, k int64) (int64, error) {
	front := ss.frontB
	if forward {
		front = ss.frontF
	}
	return ss.e.exec(ctx, ss.qs, &ss.qs.PE, &ss.qs.FOp, front.text, front.bind(k)...)
}

// ExpandHarvest runs the E-operator for the marked frontier, harvests the
// materialized candidate set (before the local merge consumes it), applies
// the local M-operator, and un-marks the frontier. lOther and minCost bind
// the Theorem-1 prune exactly as in the single-engine loop; the coordinator
// passes global values, which are at least as large as any shard-local view
// would be, so the prune stays sound. The returned candidates are what this
// shard learned this superstep — the coordinator routes each to the shard
// owning its node.
func (ss *Superstep) ExpandHarvest(ctx context.Context, forward bool, lOther, minCost int64) ([]FrontierCand, error) {
	e, qs := ss.e, ss.qs
	xp, reset := ss.xpB, ss.sc.biResetB
	if forward {
		xp, reset = ss.xpF, ss.sc.biResetF
	}
	bound := minCost
	if e.opts.DisablePruning || bound >= MaxDist {
		bound = 4 * MaxDist
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, xp.clearExpand); err != nil {
		return nil, err
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, xp.insExpand, lOther, bound); err != nil {
		return nil, err
	}
	rows, err := e.queryRows(ctx, qs, &qs.PE, ss.harvest)
	if err != nil {
		return nil, err
	}
	var cands []FrontierCand
	if n := rows.Len(); n > 0 {
		cands = make([]FrontierCand, 0, n)
		for _, r := range rows.Data {
			cands = append(cands, FrontierCand{Nid: r[0].I, Par: r[1].I, Cost: r[2].I})
		}
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, xp.mMerge, sentinelArgs...); err != nil {
		return nil, err
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, reset); err != nil {
		return nil, err
	}
	if forward {
		qs.ForwardExpansions++
	} else {
		qs.BackwardExpansions++
	}
	qs.Expansions++
	return cands, nil
}

// PrefetchFrontier warms the buffer pool with the adjacency pages the
// direction's E-operator is about to scan: the selected frontier (sign=2)
// is read back from the resident visited table, split round-robin across
// workers goroutines, and each worker probes the edge (or segment) table
// for its nids through the engine's concurrent read path. The probes fault
// in the same index and heap pages the expansion join will touch, but in
// parallel instead of serially inside one statement — on a cold pool this
// converts the expansion's page waits from frontier-sized serial chains
// into overlapped transfers. The expansion itself is unchanged; a warm pool
// makes this a cheap no-op per nid. This lever exists only on the superstep
// surface: the coordinator materializes its frontier as data, while the
// single-engine fused MERGE never surfaces it outside one statement.
//
// Prefetch pays for itself when the warmed pages stay resident until the
// expansion reads them. A frontier whose adjacency rivals the whole buffer
// pool can displace the visited working set and turn the warm-up into
// churn — partitioning is what keeps both sides small (each shard sees 1/k
// of the frontier and 1/k of the visited rows), so the technique composes
// with sharding rather than substituting for memory.
func (ss *Superstep) PrefetchFrontier(ctx context.Context, forward bool, workers int) error {
	if workers <= 1 {
		return nil
	}
	e, qs := ss.e, ss.qs
	nidQ, probeQ := ss.fNidsB, ss.probeB
	if forward {
		nidQ, probeQ = ss.fNidsF, ss.probeF
	}
	rows, err := e.queryRows(ctx, qs, &qs.EOp, nidQ)
	if err != nil {
		return err
	}
	if rows.Len() <= 1 {
		return nil
	}
	nids := make([]int64, 0, rows.Len())
	for _, r := range rows.Data {
		nids = append(nids, r[0].I)
	}
	st, err := e.stmt(probeQ)
	if err != nil {
		return err
	}
	if workers > len(nids) {
		workers = len(nids)
	}
	t0 := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(nids); i += workers {
				if _, _, err := st.QueryIntContext(ctx, nids[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	dt := time.Since(t0)
	qs.Statements += len(nids)
	qs.PE += dt
	qs.EOp += dt
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Mins is the statistics-collection round (Listing 4(4,5)): the best local
// d2s+d2t sum and the per-direction candidate minima. The coordinator folds
// these across shards into the global minCost / lf / lb the stopping
// condition reads.
func (ss *Superstep) Mins(ctx context.Context) (SuperstepMins, error) {
	e, qs, sc := ss.e, ss.qs, ss.sc
	var m SuperstepMins
	var null bool
	var err error
	if m.Sum, null, err = e.queryInt(ctx, qs, &qs.SC, sc.biMinSum); err != nil {
		return m, err
	}
	m.HasSum = !null
	if m.MinF, null, err = e.queryInt(ctx, qs, &qs.SC, sc.biMinF); err != nil {
		return m, err
	}
	m.HasMinF = !null
	if m.MinB, null, err = e.queryInt(ctx, qs, &qs.SC, sc.biMinB); err != nil {
		return m, err
	}
	m.HasMinB = !null
	return m, nil
}

// MeetNode looks for a node whose d2s+d2t equals cost (Listing 4(6)).
func (ss *Superstep) MeetNode(ctx context.Context, cost int64) (int64, bool, error) {
	v, null, err := ss.e.queryInt(ctx, ss.qs, &ss.qs.FPR, ss.sc.meet, cost)
	return v, !null && err == nil, err
}

// Parent returns a node's recorded parent link for one direction, with
// ok=false when the node has no row or an unset link.
func (ss *Superstep) Parent(ctx context.Context, forward bool, nid int64) (int64, bool, error) {
	q := ss.sc.recP2T
	if forward {
		q = ss.sc.recP2S
	}
	p, null, err := ss.e.queryInt(ctx, ss.qs, &ss.qs.FPR, q, nid)
	if err != nil {
		return 0, false, err
	}
	return p, !null && p != NoParent, nil
}

// Dist returns a node's tentative distance for one direction, with
// ok=false when the node has no visited row.
func (ss *Superstep) Dist(ctx context.Context, forward bool, nid int64) (int64, bool, error) {
	q := ss.distB
	if forward {
		q = ss.distF
	}
	d, null, err := ss.e.queryInt(ctx, ss.qs, &ss.qs.FPR, q, nid)
	if err != nil {
		return 0, false, err
	}
	return d, !null, nil
}

// SegCost probes this shard's segment table for a recorded u->v segment
// (TOutSegs forward, TInSegs backward) and returns its cost. During
// cross-shard path recovery the coordinator uses it to find a shard whose
// recorded segment achieves the exact distance difference before unfolding
// there.
func (ss *Superstep) SegCost(ctx context.Context, forward bool, u, v int64) (int64, bool, error) {
	q := ss.segCostB
	if forward {
		q = ss.segCostF
	}
	c, null, err := ss.e.queryInt(ctx, ss.qs, &ss.qs.FPR, q, u, v)
	if err != nil {
		return 0, false, err
	}
	return c, !null, nil
}

// UnfoldSegment expands a recorded segment's interior through the pid
// chains: forward returns the interior of the TOutSegs segment u->v in
// reverse order (closest-to-v first), backward the TInSegs interior in path
// order — the same contracts recoverForward/recoverBackward consume.
func (ss *Superstep) UnfoldSegment(ctx context.Context, forward bool, u, v int64) ([]int64, error) {
	if forward {
		return ss.e.unfoldOutSegment(ctx, ss.qs, u, v)
	}
	return ss.e.unfoldInSegment(ctx, ss.qs, u, v)
}

// VisitedRows reports the search-space metric |TVisited| for this shard.
func (ss *Superstep) VisitedRows(ctx context.Context) (int, error) {
	return ss.e.visitedCount(ctx, ss.qs, ss.sc)
}

// Close releases the scratch set and the gate admission. Idempotent.
func (ss *Superstep) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	ss.e.scratch.release(ss.sc)
	ss.e.unlockShared()
}

// queryRows runs a row-returning query through the prepared-statement cache
// with the usual budget/cancellation/accounting treatment (exec and
// queryInt cover the scalar cases; the superstep harvest needs whole rows).
func (e *Engine) queryRows(ctx context.Context, qs *QueryStats, phase *time.Duration, q string, args ...any) (*rdb.Rows, error) {
	if err := e.checkBudget(ctx, qs); err != nil {
		return nil, err
	}
	st, err := e.stmt(q)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	rows, err := st.QueryContext(ctx, args...)
	dt := time.Since(t0)
	if qs != nil {
		qs.Statements++
	}
	if phase != nil {
		*phase += dt
	}
	return rows, err
}
