package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// Scratch-table lifecycle tests: cancellation at any checkpoint leaves the
// catalog exactly as it was, and the pooled table names keep the plan cache
// (and the engine's prepared-statement cache) bounded under query churn.

// catalogNames snapshots the sorted table list.
func catalogNames(e *Engine) []string {
	names := e.DB().Catalog().Names()
	sort.Strings(names)
	return names
}

// TestCancellationLeavesNoScratchTables cancels queries at escalating
// checkpoint counts — from before admission to deep inside the frontier
// loop — with ScratchRetain < 0, so every release must DROP the leased
// tables; the catalog must return to its baseline exactly after each abort.
func TestCancellationLeavesNoScratchTables(t *testing.T) {
	g := graph.Power(400, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{ScratchRetain: -1})
	base := catalogNames(e)

	req := QueryRequest{Source: 0, Target: 350, Alg: AlgBSDJ}
	for _, polls := range []int64{0, 1, 2, 3, 5, 8, 13, 21, 34, 55} {
		_, err := e.Query(newCountdownCtx(polls), req)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: want context.Canceled, got %v", polls, err)
		}
		got := catalogNames(e)
		if len(got) != len(base) {
			t.Fatalf("polls=%d: catalog has %d tables, want %d (got %v)", polls, len(got), len(base), got)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("polls=%d: catalog drifted: got %v, want %v", polls, got, base)
			}
		}
		st := e.ConcurrencyStats()
		if st.Scratch.Live != 0 || st.Scratch.Free != 0 {
			t.Fatalf("polls=%d: scratch pool not empty after abort: %+v", polls, st.Scratch)
		}
		if st.Gate.Readers != 0 {
			t.Fatalf("polls=%d: %d readers leaked", polls, st.Gate.Readers)
		}
	}

	// A query abandoned while queued on the gate (a writer holds it) must
	// also leave nothing behind — it never leased a scratch set.
	if err := e.lockQuery(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, req)
		done <- err
	}()
	waitFor(t, "reader queued behind the exclusive holder", func() bool {
		return e.ConcurrencyStats().Gate.ReadersWaiting == 1
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued reader: want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued reader did not abandon the gate")
	}
	e.unlockQuery()
	if st := e.ConcurrencyStats(); st.Gate.Abandons == 0 {
		t.Error("gate abandon was not counted")
	}
	if got := catalogNames(e); len(got) != len(base) {
		t.Fatalf("queued abandon leaked tables: got %v, want %v", got, base)
	}

	// The engine still works, and a completed query also restores the
	// catalog (retain < 0 drops on every release, not just on abort).
	res, err := e.Query(context.Background(), req)
	if err != nil || !res.Found {
		t.Fatalf("query after cancellations: %v %+v", err, res)
	}
	if got := catalogNames(e); len(got) != len(base) {
		t.Fatalf("completed query left scratch tables: got %v, want %v", got, base)
	}
}

// TestScratchReleaseDropsBeforeRecycle hammers the retain<0 path, where
// every release drops its tables: an id must only become reusable once its
// tables are gone. If release parks the id on freeIDs before dropping, a
// concurrent acquire can recycle it and mint fresh tables that the
// releaser's delayed DROP then destroys, failing the new lease mid-search
// with "table does not exist".
func TestScratchReleaseDropsBeforeRecycle(t *testing.T) {
	g := graph.Power(64, 3, 5)
	e := newTestEngine(t, g, rdb.Options{}, Options{ScratchRetain: -1})
	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sc, err := e.scratch.acquire()
				if err != nil {
					errs <- fmt.Errorf("acquire: %w", err)
					return
				}
				// Touch every table in the leased set: if a stale drop from a
				// previous holder of this id lands after our create, these
				// statements fail.
				for _, q := range sc.resets {
					if _, err := e.sess.Exec(q); err != nil {
						errs <- fmt.Errorf("leased scratch table vanished: %w", err)
						e.scratch.release(sc)
						return
					}
				}
				e.scratch.release(sc)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.scratch.stats(); st.Live != 0 {
		t.Fatalf("scratch pool reports %d live sets after drain", st.Live)
	}
}

// TestPlanCacheBoundedUnderScratchChurn is the regression test for the
// name-poisoning hazard: per-query table names flowing into statement texts
// could mint an unbounded population of plan-cache (and prepared-handle)
// entries. Pooled ids bound the name space, so thousands of distinct
// queries — across enough workers to keep several scratch sets minted —
// must leave the rdb plan cache under its LRU cap with a healthy hit rate,
// and the engine's own statement cache bounded.
func TestPlanCacheBoundedUnderScratchChurn(t *testing.T) {
	const (
		n       = 48
		workers = 4
	)
	g := graph.Power(n, 3, 9)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})

	// Every ordered pair once: thousands of distinct queries, no two alike.
	type pair struct{ s, t int64 }
	var pairs []pair
	for s := int64(0); s < n; s++ {
		for tt := int64(0); tt < n; tt++ {
			if s != tt {
				pairs = append(pairs, pair{s, tt})
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pairs); i += workers {
				p := pairs[i]
				if _, err := e.Query(context.Background(), QueryRequest{Source: p.s, Target: p.t, Alg: AlgBSDJ}); err != nil {
					errs <- fmt.Errorf("worker %d pair %d->%d: %v", w, p.s, p.t, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.DB().Stats()
	if st.PlanCacheEntries > rdb.DefaultPlanCacheSize {
		t.Errorf("plan cache holds %d entries, cap is %d", st.PlanCacheEntries, rdb.DefaultPlanCacheSize)
	}
	if st.PlanCacheHits < st.PlanCacheMisses {
		t.Errorf("plan cache thrashing: %d hits vs %d misses — scratch names are churning the cache",
			st.PlanCacheHits, st.PlanCacheMisses)
	}
	// White-box: the engine's prepared-handle cache is keyed by statement
	// text; with pooled ids the text population must stay near (number of
	// shapes) x (sets ever minted), far below the query count.
	e.stmtMu.RLock()
	handles := len(e.stmtCache)
	e.stmtMu.RUnlock()
	cs := e.ConcurrencyStats()
	if limit := 80 * int(cs.Scratch.Minted+1); handles > limit {
		t.Errorf("%d prepared handles for %d minted scratch sets (limit %d): statement texts are not pooled",
			handles, cs.Scratch.Minted, limit)
	}
	if cs.Scratch.Minted > workers+1 {
		t.Errorf("minted %d scratch sets for %d workers: pool reuse is broken", cs.Scratch.Minted, workers)
	}
	if cs.Gate.PeakReaders < 2 {
		t.Errorf("peak readers %d: churn test never overlapped queries", cs.Gate.PeakReaders)
	}
}
