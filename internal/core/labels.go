package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/labels"
	"repro/internal/rdb"
)

// The hub-label (2-hop) integration: BuildLabels constructs the pruned
// label index of internal/labels, AlgLabel answers exact queries from it
// with no frontier loop — one aggregate merge-join for the distance, two
// statements per hop for the route — and the mutation subsystem decides
// per edge change whether the index provably survives (keep) or must go
// cold (invalidate). See docs/ARCHITECTURE.md §Hub labels.

// BuildLabels constructs (or rebuilds) the pruned 2-hop label index for
// the loaded graph: every node with an edge becomes a hub, processed in
// degree-descending order by pruned single-source set-Dijkstra passes,
// materialized into TLabelOut/TLabelIn(nid, hub, dist). Like BuildOracle,
// the build excludes searches and bumps the graph version.
func (e *Engine) BuildLabels() (*labels.BuildStats, error) {
	return e.BuildLabelsContext(context.Background())
}

// BuildLabelsContext is BuildLabels with cooperative cancellation: a
// cancelled ctx aborts the build at the next statement or relaxation
// round. The label pointer is only installed after a complete build, so a
// cancelled build reads as "not built" (or "went cold", if an index
// existed) — never as a partial label set.
func (e *Engine) BuildLabelsContext(ctx context.Context) (*labels.BuildStats, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// In flight (queued on the gate included) means not ready: /readyz
	// routes traffic away while the label index is cold.
	defer e.trackBuild()()
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	if e.Nodes() == 0 {
		return nil, ErrNoGraph
	}
	params := labels.Params{
		NodesTable: TblNodes,
		EdgesTable: TblEdges,
		WMin:       e.WMin(),
		MaxIters:   e.maxIters(),
		UseMerge:   e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL,
		Index:      e.labelIndexMode(),
	}
	// Invalidate before touching the label relations: a rebuild over a
	// live index must make concurrent planning refuse cleanly rather than
	// read half-built label sets. A live index also goes stale here, so a
	// failed rebuild reads as "went cold" — not "never built".
	e.mu.Lock()
	if e.lbl != nil {
		e.lblStale = true
	}
	e.lbl = nil
	e.mu.Unlock()
	lbl, st, err := labels.Build(ctx, e.sess, params)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.lbl = lbl
	e.lblStale = false
	e.bumpVersionLocked()
	e.mu.Unlock()
	return st, nil
}

// Labels returns the hub-label index metadata, or nil when no index is
// built (or the last one was invalidated by a graph change the
// keep-analysis could not absorb).
func (e *Engine) Labels() *labels.Labels {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lbl
}

// LabelsInvalidated reports that a previously built label index was
// killed by a graph mutation and has not been rebuilt: AlgLabel refuses
// to run (and the planner stops preferring "labels") until BuildLabels is
// called again.
func (e *Engine) LabelsInvalidated() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lblStale
}

// The label query shapes: constant texts, endpoints bound as parameters.
const (
	// labelDistQ is the whole distance query — one merge-join of s's
	// out-labels with t's in-labels over their common hubs. NULL means no
	// common hub, which under the 2-hop cover property is a proof of
	// unreachability.
	labelDistQ = "SELECT MIN(a.dist + b.dist) FROM " + labels.TblOut + " a, " + labels.TblIn +
		" b WHERE a.nid = ? AND b.nid = ? AND a.hub = b.hub"
	// labelStepQ advances path recovery one hop: among the current node's
	// out-edges, pick one whose head lies on a shortest path to the target
	// — label-certified remaining distance exactly r - cost. Heads that
	// cannot reach the target yield a NULL subquery, which compares false
	// and drops the row.
	labelStepQ = "SELECT TOP 1 e.tid FROM " + TblEdges + " e WHERE e.fid = ? AND " +
		"(SELECT MIN(a.dist + b.dist) FROM " + labels.TblOut + " a, " + labels.TblIn +
		" b WHERE a.nid = e.tid AND b.nid = ? AND a.hub = b.hub) = ? - e.cost"
)

// labelSearch answers one exact query from the label index: the distance
// is a single aggregate SELECT, and the route (when a path exists) is
// recovered by a greedy certified-next-hop walk — two statements per hop,
// each hop strictly decreasing the remaining label distance, so the walk
// terminates and every step lies on a true shortest path.
func (e *Engine) labelSearch(ctx context.Context, s, t int64, budget int64) (Path, *QueryStats, error) {
	qs := &QueryStats{Algorithm: AlgLabel.String(), budget: budget}
	start := time.Now()
	defer func() { qs.Total = time.Since(start) }()

	if s == t {
		return Path{Found: true, Length: 0, Nodes: []int64{s}}, qs, nil
	}
	dist, null, err := e.queryInt(ctx, qs, &qs.SC, labelDistQ, s, t)
	if err != nil {
		return Path{}, qs, err
	}
	if null {
		return Path{Found: false}, qs, nil
	}
	nodes := []int64{s}
	cur, remain := s, dist
	limit := e.maxIters()
	for cur != t {
		if err := rdb.ContextErr(ctx); err != nil {
			return Path{}, qs, fmt.Errorf("core: Label cancelled after %d hops: %w", len(nodes)-1, err)
		}
		if len(nodes) > limit {
			return Path{}, qs, fmt.Errorf("core: Label path recovery exceeded %d hops (s=%d t=%d)", limit, s, t)
		}
		qs.Iterations++
		next, nullStep, err := e.queryInt(ctx, qs, &qs.FPR, labelStepQ, cur, t, remain)
		if err != nil {
			return Path{}, qs, err
		}
		if nullStep {
			return Path{}, qs, fmt.Errorf("core: label index inconsistent: no certified hop from %d toward %d (remaining %d)", cur, t, remain)
		}
		nodes = append(nodes, next)
		cur = next
		if cur == t {
			break
		}
		remain, nullStep, err = e.queryInt(ctx, qs, &qs.FPR, labelDistQ, cur, t)
		if err != nil {
			return Path{}, qs, err
		}
		if nullStep {
			return Path{}, qs, fmt.Errorf("core: label index inconsistent: %d lost reachability to %d mid-recovery", cur, t)
		}
	}
	return Path{Found: true, Length: dist, Nodes: nodes}, qs, nil
}

// The mutation keep-analysis shapes. An edge change (u, v) is absorbed —
// the index stays valid — when the labels themselves prove no distance
// moved; otherwise the index goes cold. Incremental case (insert, or
// update to a weight <= the old one): d(u, v) <= w_new, read straight
// from the labels, proves the changed edge is redundant. Decremental case
// (delete, or update to a weight > the old one): zero label entries may
// have routed through the edge at its old weight — materialize every
// node's label distance TO u (TLblTo) and FROM v (TLblFrom), then count
// entries (x, h, d) with d(x,u) + oldW + d(v,h) <= d (out side; the in
// side symmetric). Zero stale entries means every label entry still
// records a live shortest path, and since distances can only grow under a
// decremental change while label queries still realize the old values,
// the sandwich d_new(s,t) <= query(s,t) = d_old(s,t) <= d_new(s,t) pins
// every pairwise distance unchanged — the cover stays exact.
const (
	lblToClearQ = "DELETE FROM " + labels.TblScrTo
	lblToFillQ  = "INSERT INTO " + labels.TblScrTo + " (nid, dist) " +
		"SELECT a.nid, MIN(a.dist + b.dist) FROM " + labels.TblOut + " a, " + labels.TblIn +
		" b WHERE b.nid = ? AND a.hub = b.hub GROUP BY a.nid"
	lblFromClearQ = "DELETE FROM " + labels.TblScrFrom
	lblFromFillQ  = "INSERT INTO " + labels.TblScrFrom + " (nid, dist) " +
		"SELECT b.nid, MIN(a.dist + b.dist) FROM " + labels.TblOut + " a, " + labels.TblIn +
		" b WHERE a.nid = ? AND a.hub = b.hub GROUP BY b.nid"
	lblStaleOutQ = "SELECT COUNT(*) FROM " + labels.TblOut + " l, " + labels.TblScrTo + " p, " +
		labels.TblScrFrom + " s WHERE p.nid = l.nid AND s.nid = l.hub AND p.dist + ? + s.dist <= l.dist"
	lblStaleInQ = "SELECT COUNT(*) FROM " + labels.TblIn + " l, " + labels.TblScrTo + " p, " +
		labels.TblScrFrom + " s WHERE p.nid = l.hub AND s.nid = l.nid AND p.dist + ? + s.dist <= l.dist"
)

// labelKeepUpsert runs the incremental keep-check after an edge insert or
// weight decrease to w: the index survives iff the pre-mutation label
// distance d(u, v) (labels are untouched by the TEdges write, so the read
// still reflects it) already covers the new weight. No-op without a live
// index.
func (e *Engine) labelKeepUpsert(ctx context.Context, qs *QueryStats, st *MaintStats, u, v, w int64) error {
	e.mu.RLock()
	built := e.lbl != nil
	e.mu.RUnlock()
	if !built {
		return nil
	}
	d, null, err := e.queryInt(ctx, qs, nil, labelDistQ, u, v)
	if err != nil {
		return err
	}
	if !null && d <= w {
		e.mu.Lock()
		e.muts.LabelKeeps++
		e.mu.Unlock()
		return nil
	}
	e.invalidateLabels(st)
	return nil
}

// labelKeepDecrement runs the decremental keep-check after an edge delete
// or weight increase whose pre-mutation effective weight was oldW: the
// index survives iff no label entry's recorded distance could have routed
// through (u, v, oldW). No-op without a live index.
func (e *Engine) labelKeepDecrement(ctx context.Context, qs *QueryStats, st *MaintStats, u, v, oldW int64) error {
	e.mu.RLock()
	built := e.lbl != nil
	e.mu.RUnlock()
	if !built {
		return nil
	}
	for _, q := range []string{lblToClearQ, lblFromClearQ} {
		if _, err := e.exec(ctx, qs, nil, nil, q); err != nil {
			return err
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, lblToFillQ, u); err != nil {
		return err
	}
	if _, err := e.exec(ctx, qs, nil, nil, lblFromFillQ, v); err != nil {
		return err
	}
	staleOut, _, err := e.queryInt(ctx, qs, nil, lblStaleOutQ, oldW)
	if err != nil {
		return err
	}
	staleIn := int64(0)
	if staleOut == 0 {
		staleIn, _, err = e.queryInt(ctx, qs, nil, lblStaleInQ, oldW)
		if err != nil {
			return err
		}
	}
	if staleOut == 0 && staleIn == 0 {
		e.mu.Lock()
		e.muts.LabelKeeps++
		e.mu.Unlock()
		return nil
	}
	e.invalidateLabels(st)
	return nil
}

// invalidateLabels marks a live label index cold after a mutation the
// keep-analysis could not absorb.
func (e *Engine) invalidateLabels(st *MaintStats) {
	e.mu.Lock()
	if e.lbl != nil {
		e.lbl = nil
		e.lblStale = true
		e.muts.LabelInvalidations++
		if st != nil {
			st.LabelsInvalidated = true
		}
	}
	e.mu.Unlock()
}
