package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/oracle"
	"repro/internal/rdb"
)

// MaxDist is the sentinel for "not yet reached" distances stored in
// TVisited (d2s/d2t). Sums of two sentinels stay far below int64 overflow.
const MaxDist = int64(1) << 50

// NoParent marks an unset p2s/p2t link.
const NoParent = int64(-1)

// Algorithm selects one of the paper's five relational path finders.
type Algorithm int

// The implemented approaches (§5.1 "Implementation Details"):
const (
	// AlgDJ is the single-directional relational Dijkstra (Algorithm 1).
	AlgDJ Algorithm = iota
	// AlgBDJ is the bi-directional relational Dijkstra (node-at-a-time).
	AlgBDJ
	// AlgBSDJ is the bi-directional set Dijkstra (set-at-a-time, §4.1).
	AlgBSDJ
	// AlgBBFS is the bi-directional breadth-first relaxation.
	AlgBBFS
	// AlgBSEG is the selective expansion over SegTable (Algorithm 2, §4.3).
	AlgBSEG
	// AlgALT is the bi-directional set Dijkstra with ALT goal-directed
	// pruning over the landmark oracle (requires BuildOracle).
	AlgALT
)

func (a Algorithm) String() string {
	switch a {
	case AlgDJ:
		return "DJ"
	case AlgBDJ:
		return "BDJ"
	case AlgBSDJ:
		return "BSDJ"
	case AlgBBFS:
		return "BBFS"
	case AlgBSEG:
		return "BSEG"
	case AlgALT:
		return "ALT"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a case-insensitive algorithm name (DJ, BDJ, BSDJ,
// BBFS, BSEG, ALT) to its Algorithm; the commands share this parser.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(s) {
	case "DJ":
		return AlgDJ, nil
	case "BDJ":
		return AlgBDJ, nil
	case "BSDJ":
		return AlgBSDJ, nil
	case "BBFS":
		return AlgBBFS, nil
	case "BSEG":
		return AlgBSEG, nil
	case "ALT":
		return AlgALT, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (DJ|BDJ|BSDJ|BBFS|BSEG|ALT)", s)
}

// IndexStrategy is the physical design axis of Fig 8(c).
type IndexStrategy int

// Index strategies for TEdges(fid)/TOutSegs(fid)/TInSegs(tid)/TVisited(nid).
const (
	// ClusteredIndex stores each table as a B+tree on its key (CluIndex).
	ClusteredIndex IndexStrategy = iota
	// SecondaryIndex keeps heaps plus non-clustered B+tree indexes (Index).
	SecondaryIndex
	// NoIndex keeps bare heaps; every probe is a scan.
	NoIndex
)

func (s IndexStrategy) String() string {
	switch s {
	case ClusteredIndex:
		return "CluIndex"
	case SecondaryIndex:
		return "Index"
	case NoIndex:
		return "NoIndex"
	}
	return fmt.Sprintf("IndexStrategy(%d)", int(s))
}

// Options configures an Engine.
type Options struct {
	// Strategy picks the physical design (default ClusteredIndex).
	Strategy IndexStrategy
	// TraditionalSQL replaces the window function + MERGE statements with
	// the pre-2003 formulation (aggregate + join-back, UPDATE + INSERT):
	// the paper's TSQL baseline of Fig 6(d) and Fig 9(f).
	TraditionalSQL bool
	// SeparateOperators runs F, E and M as distinct SQL statements and
	// times them individually (Fig 6(c)). Slightly slower than the fused
	// MERGE form.
	SeparateOperators bool
	// DisablePruning turns off the Theorem-1 bound in expansions
	// (ablation; the paper always prunes).
	DisablePruning bool
	// AlternateDirections replaces the paper's fewer-frontier direction
	// policy with strict alternation (ablation of the §4.1 heuristic).
	AlternateDirections bool
	// Lthd is the SegTable index threshold (must match the built index;
	// set by BuildSegTable).
	Lthd int64
	// MaxIterations caps FEM iterations as a safety net (default 16 times
	// the node count).
	MaxIterations int
	// CacheSize bounds the shortest-path result cache in entries
	// (default 4096; negative disables caching). The cache is keyed by
	// (graph version, algorithm, source, target) and invalidated whenever
	// the graph or the SegTable index changes.
	CacheSize int
	// RepairThreshold caps the decremental SegTable repair: when a
	// deletion or weight increase touches more rows than this, the engine
	// falls back to a full rebuild instead of repairing in place
	// (0 = DefaultRepairThreshold; negative = always rebuild).
	RepairThreshold int
}

// DefaultCacheSize is the path-cache capacity when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// DefaultRepairThreshold is the decremental-repair row cap when
// Options.RepairThreshold is 0: past this many touched SegTable rows a
// full rebuild is cheaper than the scoped repair.
const DefaultRepairThreshold = 4096

// Engine runs the relational algorithms against one database. It keeps
// only scalar state between statements — the RDB carries all per-node data.
//
// An Engine is safe for concurrent callers. Every relational search shares
// the TVisited working table (matching the paper's single JDBC session), so
// searches serialize on an internal query latch; concurrency comes from the
// path cache in front of it — hits are answered from memory under a short
// cache latch, never reaching the query latch or the DB — and from
// ShortestPathBatch, which fans a query set across a worker pool. See
// docs/ARCHITECTURE.md §Concurrency.
type Engine struct {
	db *rdb.DB
	// sess is the engine's own connection — the analogue of the paper's
	// single JDBC session — so engine statements show up in the DB's
	// per-session accounting alongside any other sessions.
	sess *rdb.Session
	opts Options

	// mu guards the graph metadata below; queries take the read side.
	mu    sync.RWMutex
	wmin  int64
	nodes int
	edges int

	segBuilt bool
	segLthd  int64
	// orc is the landmark oracle metadata (nil until BuildOracle; reset to
	// nil — invalidated — by LoadGraph and every edge mutation, whose
	// graph changes can move landmark distances and would make the stored
	// bounds unsound).
	orc *oracle.Oracle
	// orcStale records that a mutation killed a previously built oracle:
	// operators (spdbd /stats) can tell "approx/ALT went cold, rebuild" from
	// "never built". Cleared by BuildOracle and LoadGraph.
	orcStale bool
	// muts counts the mutation subsystem's activity for the serving tier.
	muts MutationCounters
	// version stamps the (graph, index) generation; bumped by LoadGraph,
	// BuildSegTable, BuildOracle and every mutation (InsertEdge,
	// DeleteEdge, UpdateEdgeWeight, ApplyMutations) so cached answers can
	// never outlive the data they were computed from.
	version uint64

	// queryMu serializes relational searches (they share TVisited).
	queryMu sync.Mutex
	cache   *pathCache
}

// NewEngine wraps db. Call LoadGraph before running queries.
func NewEngine(db *rdb.DB, opts Options) *Engine {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 1 << 30 // replaced by 16*n after LoadGraph
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	e := &Engine{db: db, sess: db.Session(), opts: opts}
	if opts.CacheSize > 0 {
		e.cache = newPathCache(opts.CacheSize)
	}
	return e
}

// DB exposes the underlying database.
func (e *Engine) DB() *rdb.DB { return e.db }

// Close releases the engine's own DB session so ActiveSessions accounting
// stays meaningful. It does not close the underlying database.
func (e *Engine) Close() error { return e.sess.Close() }

// Options returns the engine configuration.
func (e *Engine) Options() Options {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// WMin returns the minimal edge weight of the loaded graph.
func (e *Engine) WMin() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.wmin
}

// Nodes returns the loaded node count.
func (e *Engine) Nodes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nodes
}

// Edges returns the loaded edge count.
func (e *Engine) Edges() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.edges
}

// SegLthd returns the threshold of the built SegTable (0 when absent).
func (e *Engine) SegLthd() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.segBuilt {
		return 0
	}
	return e.segLthd
}

// Oracle returns the landmark oracle metadata, or nil when no oracle is
// built (or the last one was invalidated by a graph change).
func (e *Engine) Oracle() *oracle.Oracle {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.orc
}

// OracleInvalidated reports that a previously built oracle was killed by a
// graph mutation and has not been rebuilt: ALT and ApproxDistance refuse
// to run until BuildOracle is called again. The serving tier surfaces this
// so operators know approximate answers went cold.
func (e *Engine) OracleInvalidated() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.orcStale
}

// MutationStats snapshots the mutation subsystem's counters.
func (e *Engine) MutationStats() MutationCounters {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.muts
}

// GraphVersion returns the current (graph, index) generation, bumped by
// LoadGraph, BuildSegTable and every edge mutation.
func (e *Engine) GraphVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// CacheStats snapshots the path cache (zero-valued when caching is off).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.snapshot()
}

// bumpVersion invalidates every cached answer; callers hold e.mu.
func (e *Engine) bumpVersionLocked() {
	e.version++
	if e.cache != nil {
		e.cache.purge()
	}
}

// exec runs a write statement, charging its latency to the given phase
// accumulators (any of which may be nil).
func (e *Engine) exec(qs *QueryStats, phase *time.Duration, op *time.Duration, q string, args ...any) (int64, error) {
	t0 := time.Now()
	res, err := e.sess.Exec(q, args...)
	dt := time.Since(t0)
	if qs != nil {
		qs.Statements++
	}
	if phase != nil {
		*phase += dt
	}
	if op != nil {
		*op += dt
	}
	if err != nil {
		return 0, err
	}
	if qs != nil {
		qs.TuplesAffected += res.RowsAffected
	}
	return res.RowsAffected, nil
}

// queryInt runs a scalar query with the same accounting.
func (e *Engine) queryInt(qs *QueryStats, phase *time.Duration, q string, args ...any) (int64, bool, error) {
	t0 := time.Now()
	v, null, err := e.sess.QueryInt(q, args...)
	dt := time.Since(t0)
	if qs != nil {
		qs.Statements++
	}
	if phase != nil {
		*phase += dt
	}
	return v, null, err
}

// ShortestPath runs the selected algorithm from s to t. Safe for
// concurrent callers: cache hits return immediately from memory, misses
// serialize on the engine's query latch (the relational search shares the
// TVisited working table across all callers).
func (e *Engine) ShortestPath(alg Algorithm, s, t int64) (Path, *QueryStats, error) {
	e.mu.RLock()
	nodes := e.nodes
	version := e.version
	e.mu.RUnlock()
	if nodes == 0 {
		return Path{}, nil, fmt.Errorf("core: no graph loaded")
	}
	if s < 0 || t < 0 || int(s) >= nodes || int(t) >= nodes {
		return Path{}, nil, fmt.Errorf("core: node out of range (n=%d)", nodes)
	}
	key := cacheKey{version: version, alg: alg, s: s, t: t}
	if e.cache != nil {
		if p, ok := e.cache.get(key); ok {
			return p, &QueryStats{Algorithm: alg.String(), CacheHit: true}, nil
		}
	}

	e.queryMu.Lock()
	defer e.queryMu.Unlock()
	// The graph may have changed while we waited for the latch (edge
	// insert, index rebuild, full reload). Re-validate against the current
	// generation and re-key the cache entry so the answer we compute (or
	// find) belongs to the graph we actually query.
	e.mu.RLock()
	nodes = e.nodes
	version = e.version
	e.mu.RUnlock()
	if nodes == 0 {
		return Path{}, nil, fmt.Errorf("core: no graph loaded")
	}
	if int(s) >= nodes || int(t) >= nodes {
		return Path{}, nil, fmt.Errorf("core: node out of range (n=%d)", nodes)
	}
	key = cacheKey{version: version, alg: alg, s: s, t: t}
	// Re-check under the latch: a concurrent caller may have computed and
	// cached this exact answer while we waited.
	if e.cache != nil {
		if p, ok := e.cache.recheck(key); ok {
			return p, &QueryStats{Algorithm: alg.String(), CacheHit: true}, nil
		}
	}
	p, qs, err := e.searchLocked(alg, s, t)
	if err == nil && e.cache != nil {
		e.cache.put(key, p)
	}
	return p, qs, err
}

// searchLocked dispatches to the relational algorithms; callers hold
// queryMu.
func (e *Engine) searchLocked(alg Algorithm, s, t int64) (Path, *QueryStats, error) {
	switch alg {
	case AlgDJ:
		return e.dj(s, t)
	case AlgBDJ:
		return e.bidirectional(specBDJ(), s, t)
	case AlgBSDJ:
		return e.bidirectional(specBSDJ(), s, t)
	case AlgBBFS:
		return e.bidirectional(specBBFS(), s, t)
	case AlgBSEG:
		if !e.segBuilt {
			return Path{}, nil, fmt.Errorf("core: BSEG requires BuildSegTable first")
		}
		return e.bidirectional(specBSEG(e.segLthd), s, t)
	case AlgALT:
		e.mu.RLock()
		built := e.orc != nil
		e.mu.RUnlock()
		if !built {
			return Path{}, nil, fmt.Errorf("core: ALT requires BuildOracle first (rebuild after graph changes)")
		}
		return e.bidirectional(specALT(s, t), s, t)
	}
	return Path{}, nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

func (e *Engine) maxIters() int {
	cap := e.opts.MaxIterations
	if cap == 1<<30 && e.nodes > 0 {
		cap = 16*e.nodes + 1024
	}
	return cap
}
