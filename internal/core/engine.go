package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// MaxDist is the sentinel for "not yet reached" distances stored in
// TVisited (d2s/d2t). Sums of two sentinels stay far below int64 overflow.
const MaxDist = int64(1) << 50

// NoParent marks an unset p2s/p2t link.
const NoParent = int64(-1)

// Algorithm selects one of the paper's five relational path finders, the
// ALT extension, or — the zero value — the cost-based planner.
type Algorithm int

// The implemented approaches (§5.1 "Implementation Details"):
const (
	// AlgAuto delegates the choice to the cost-based planner (Engine.Query).
	// It is deliberately the zero value, so a QueryRequest without an
	// explicit hint is planned.
	AlgAuto Algorithm = iota
	// AlgDJ is the single-directional relational Dijkstra (Algorithm 1).
	AlgDJ
	// AlgBDJ is the bi-directional relational Dijkstra (node-at-a-time).
	AlgBDJ
	// AlgBSDJ is the bi-directional set Dijkstra (set-at-a-time, §4.1).
	AlgBSDJ
	// AlgBBFS is the bi-directional breadth-first relaxation.
	AlgBBFS
	// AlgBSEG is the selective expansion over SegTable (Algorithm 2, §4.3).
	AlgBSEG
	// AlgALT is the bi-directional set Dijkstra with ALT goal-directed
	// pruning over the landmark oracle (requires BuildOracle).
	AlgALT
	// AlgLabel answers from the pruned 2-hop label index: the distance is
	// one merge-join over the label scans, the route a greedy certified
	// walk — no frontier loop at all (requires BuildLabels).
	AlgLabel
)

// numAlgs bounds per-algorithm arrays (AlgLabel is the highest id; AlgAuto,
// the zero value, indexes oracle-only and trivial answers).
const numAlgs = int(AlgLabel) + 1

func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "Auto"
	case AlgDJ:
		return "DJ"
	case AlgBDJ:
		return "BDJ"
	case AlgBSDJ:
		return "BSDJ"
	case AlgBBFS:
		return "BBFS"
	case AlgBSEG:
		return "BSEG"
	case AlgALT:
		return "ALT"
	case AlgLabel:
		return "Label"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a case-insensitive algorithm name (AUTO, DJ, BDJ,
// BSDJ, BBFS, BSEG, ALT, LABEL) to its Algorithm; the commands share this
// parser.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(s) {
	case "AUTO":
		return AlgAuto, nil
	case "DJ":
		return AlgDJ, nil
	case "BDJ":
		return AlgBDJ, nil
	case "BSDJ":
		return AlgBSDJ, nil
	case "BBFS":
		return AlgBBFS, nil
	case "BSEG":
		return AlgBSEG, nil
	case "ALT":
		return AlgALT, nil
	case "LABEL":
		return AlgLabel, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (AUTO|DJ|BDJ|BSDJ|BBFS|BSEG|ALT|LABEL)", s)
}

// IndexStrategy is the physical design axis of Fig 8(c).
type IndexStrategy int

// Index strategies for TEdges(fid)/TOutSegs(fid)/TInSegs(tid)/TVisited(nid).
const (
	// ClusteredIndex stores each table as a B+tree on its key (CluIndex).
	ClusteredIndex IndexStrategy = iota
	// SecondaryIndex keeps heaps plus non-clustered B+tree indexes (Index).
	SecondaryIndex
	// NoIndex keeps bare heaps; every probe is a scan.
	NoIndex
)

func (s IndexStrategy) String() string {
	switch s {
	case ClusteredIndex:
		return "CluIndex"
	case SecondaryIndex:
		return "Index"
	case NoIndex:
		return "NoIndex"
	}
	return fmt.Sprintf("IndexStrategy(%d)", int(s))
}

// Options configures an Engine.
type Options struct {
	// Strategy picks the physical design (default ClusteredIndex).
	Strategy IndexStrategy
	// TraditionalSQL replaces the window function + MERGE statements with
	// the pre-2003 formulation (aggregate + join-back, UPDATE + INSERT):
	// the paper's TSQL baseline of Fig 6(d) and Fig 9(f).
	TraditionalSQL bool
	// SeparateOperators runs F, E and M as distinct SQL statements and
	// times them individually (Fig 6(c)). Slightly slower than the fused
	// MERGE form.
	SeparateOperators bool
	// DisablePruning turns off the Theorem-1 bound in expansions
	// (ablation; the paper always prunes).
	DisablePruning bool
	// AlternateDirections replaces the paper's fewer-frontier direction
	// policy with strict alternation (ablation of the §4.1 heuristic).
	AlternateDirections bool
	// Lthd is the SegTable index threshold (must match the built index;
	// set by BuildSegTable).
	Lthd int64
	// MaxIters caps FEM iterations per search or build as a safety net.
	// 0 selects the default of 16×nodes+1024 once a graph is loaded;
	// negative values are rejected (NewEngine records the validation error
	// and every subsequent call returns it). QueryStats.Iterations reports
	// how much of the bound a query actually used.
	MaxIters int
	// CacheSize bounds the shortest-path result cache in entries
	// (default 4096; negative disables caching). The cache is keyed by
	// (graph version, algorithm, source, target) and invalidated whenever
	// the graph or the SegTable index changes.
	CacheSize int
	// RepairThreshold caps the decremental SegTable repair: when a
	// deletion or weight increase touches more rows than this, the engine
	// falls back to a full rebuild instead of repairing in place
	// (0 = DefaultRepairThreshold; negative = always rebuild).
	RepairThreshold int
	// ScratchRetain bounds the free list of pooled per-query scratch-table
	// sets: released sets up to this count stay warm (no DDL per query),
	// extras are dropped. 0 = DefaultScratchRetain; negative = retain none,
	// dropping every set on release (exercises the drop path; the
	// cancellation-leak tests run in this mode).
	ScratchRetain int
	// DataDir arms the durability subsystem (durability.go): every
	// ApplyMutations batch appends to an fsynced write-ahead log under this
	// directory before touching TEdges, Engine.Snapshot writes versioned
	// manifest-led snapshots of the graph and built indexes there, and
	// OpenFromSnapshot hydrates a fresh engine from the newest snapshot
	// plus the WAL suffix instead of LoadGraph + Build*. Empty disables
	// durability (the pre-existing in-memory-only behavior).
	DataDir string
}

// DefaultCacheSize is the path-cache capacity when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// DefaultRepairThreshold is the decremental-repair row cap when
// Options.RepairThreshold is 0: past this many touched SegTable rows a
// full rebuild is cheaper than the scoped repair.
const DefaultRepairThreshold = 4096

// Engine runs the relational algorithms against one database. It keeps
// only scalar state between statements — the RDB carries all per-node data.
//
// An Engine is safe for concurrent callers. Read-only searches admit in
// parallel through the shared side of a reader/writer query gate, each
// leasing a private scratch-table set from a pool so their frontier
// scribbling lands in disjoint tables; mutators (LoadGraph, ApplyMutations,
// index builds, MST, Reachable) take the exclusive side, draining readers
// first. The path cache still answers repeat queries from memory without
// touching gate or database, and QueryBatch fans a query set across a
// worker pool. The unified entry point is Query (query.go): a declarative
// request with an algorithm hint (AlgAuto engages the cost-based planner),
// an error tolerance, a statement budget, and cooperative cancellation
// through context.Context. See docs/ARCHITECTURE.md §Concurrency model and
// §Query planning & cancellation.
type Engine struct {
	db *rdb.DB
	// sess is the engine's own connection — the analogue of the paper's
	// single JDBC session — so engine statements show up in the DB's
	// per-session accounting alongside any other sessions.
	sess *rdb.Session
	opts Options
	// optErr records an Options validation failure from NewEngine; every
	// public entry point returns it instead of running with a bad config.
	optErr error

	// mu guards the graph metadata below; queries take the read side.
	mu    sync.RWMutex
	wmin  int64
	nodes int
	edges int

	segBuilt bool
	segLthd  int64
	// orc is the landmark oracle metadata (nil until BuildOracle; reset to
	// nil — invalidated — by LoadGraph and every edge mutation, whose
	// graph changes can move landmark distances and would make the stored
	// bounds unsound).
	orc *oracle.Oracle
	// orcStale records that a mutation killed a previously built oracle:
	// operators (spdbd /stats) can tell "approx/ALT went cold, rebuild" from
	// "never built". Cleared by BuildOracle and LoadGraph.
	orcStale bool
	// lbl is the hub-label index metadata (nil until BuildLabels; reset to
	// nil when a mutation fails the keep-analysis of labels.go — unlike
	// the oracle, a label index can survive mutations the labels
	// themselves prove distance-preserving).
	lbl *labels.Labels
	// lblStale records that a mutation killed a previously built label
	// index. Cleared by BuildLabels and LoadGraph.
	lblStale bool
	// muts counts the mutation subsystem's activity for the serving tier.
	muts MutationCounters
	// version stamps the (graph, index) generation; bumped by LoadGraph,
	// BuildSegTable, BuildOracle and every mutation (InsertEdge,
	// DeleteEdge, UpdateEdgeWeight, ApplyMutations) so cached answers can
	// never outlive the data they were computed from.
	version uint64

	// gate is the admission control: searches enter shared (parallel),
	// mutators exclusive (drain readers, run alone). Waiters of either
	// kind abandon the queue when their context is cancelled.
	gate *queryGate
	// scratch pools the per-query working-table sets readers lease;
	// scratchGlobal is the original TVisited set, reserved for exclusive
	// operations (MST, Reachable, degraded searches).
	scratch       scratchPool
	scratchGlobal *scratchSet
	// snapRetries counts searches re-run because the graph version moved
	// between admission and commit (a safety net: the gate excludes writers
	// while readers run, so this staying 0 is the expected steady state);
	// degraded counts searches that fell back to exclusive admission after
	// exhausting their retries.
	snapRetries atomic.Uint64
	degraded    atomic.Uint64
	// hookSearchStart, when set (tests only), runs after shared admission
	// and scratch lease, before the search issues its first statement. The
	// concurrency battery uses it to prove two queries are in flight
	// simultaneously without relying on timing.
	hookSearchStart func()
	cache           *pathCache

	// Observability instruments (metrics.go). Always on: recording one
	// query costs a handful of atomic adds. queryDur is indexed by the
	// Algorithm that answered (AlgAuto for oracle-only and trivial
	// answers); gateWaitDur captures admission queueing across all
	// queries. building counts index builds and graph loads in flight —
	// the readiness signal /readyz serves 503 on.
	queryDur    [numAlgs]*obs.Histogram
	gateWaitDur *obs.Histogram
	queryErrs   atomic.Uint64
	building    atomic.Int32

	// dur carries the durability subsystem's state (WAL, snapshot store,
	// counters); nil unless Options.DataDir is set. See durability.go.
	dur *durability

	// stmts caches the engine's prepared statements by SQL text: every
	// statement shape the algorithms issue is prepared once per engine and
	// re-executed with fresh bound parameters. Statement texts are stable
	// by construction (per-iteration values bind as ? parameters, never as
	// rendered literals), so the set is small and bounded by the number of
	// shapes in the codebase. Stale plans are the rdb layer's problem: a
	// DDL epoch bump makes every handle re-compile transparently.
	stmtMu    sync.RWMutex
	stmtCache map[string]*rdb.Stmt
}

// NewEngine wraps db. Call LoadGraph before running queries.
func NewEngine(db *rdb.DB, opts Options) *Engine {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	e := &Engine{db: db, sess: db.Session(), opts: opts,
		gate:          newQueryGate(),
		scratchGlobal: newScratchSet(-1),
		stmtCache:     make(map[string]*rdb.Stmt)}
	e.scratch.e = e
	for i := range e.queryDur {
		e.queryDur[i] = obs.NewHistogram(obs.DefLatencyBuckets...)
	}
	e.gateWaitDur = obs.NewHistogram(obs.DefLatencyBuckets...)
	if opts.MaxIters < 0 {
		e.optErr = fmt.Errorf("core: Options.MaxIters must be non-negative, got %d", opts.MaxIters)
	}
	if opts.DataDir != "" {
		e.dur = &durability{dir: opts.DataDir}
	}
	if opts.CacheSize > 0 {
		e.cache = newPathCache(opts.CacheSize)
	}
	return e
}

// lockQuery takes the EXCLUSIVE side of the query gate — mutators and
// whole-graph operations drain every in-flight reader and run alone — or
// gives up when ctx is cancelled first: a request still waiting in line
// dies cleanly without ever touching the working tables. Callers that must
// not be interrupted pass context.Background(). (The name predates the
// reader/writer gate: every historical lockQuery caller wanted exclusion,
// and read-only searches now use lockShared instead.)
func (e *Engine) lockQuery(ctx context.Context) error {
	return e.gate.lockExclusive(ctx)
}

// unlockQuery releases the exclusive side of the query gate.
func (e *Engine) unlockQuery() { e.gate.unlockExclusive() }

// lockShared admits a read-only search; any number run concurrently.
func (e *Engine) lockShared(ctx context.Context) error {
	return e.gate.lockShared(ctx)
}

// unlockShared releases one shared admission.
func (e *Engine) unlockShared() { e.gate.unlockShared() }

// DB exposes the underlying database.
func (e *Engine) DB() *rdb.DB { return e.db }

// Close shuts the engine down durably: the WAL (when armed) takes a final
// fsync and releases its file, the engine's DB session closes so
// ActiveSessions accounting stays meaningful, and the underlying database
// closes — flushing every dirty buffer-pool page and releasing the disk
// manager — so a clean shutdown leaves recoverable on-disk state.
// DB.Close is idempotent, so callers that also close the database
// themselves keep working.
func (e *Engine) Close() error {
	var errs []error
	if e.dur != nil {
		if log := e.dur.walLog(); log != nil {
			if err := log.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if err := e.sess.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := e.db.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Options returns the engine configuration.
func (e *Engine) Options() Options {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// WMin returns the minimal edge weight of the loaded graph.
func (e *Engine) WMin() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.wmin
}

// Nodes returns the loaded node count.
func (e *Engine) Nodes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nodes
}

// Edges returns the loaded edge count.
func (e *Engine) Edges() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.edges
}

// SegLthd returns the threshold of the built SegTable (0 when absent).
func (e *Engine) SegLthd() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.segBuilt {
		return 0
	}
	return e.segLthd
}

// Oracle returns the landmark oracle metadata, or nil when no oracle is
// built (or the last one was invalidated by a graph change).
func (e *Engine) Oracle() *oracle.Oracle {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.orc
}

// OracleInvalidated reports that a previously built oracle was killed by a
// graph mutation and has not been rebuilt: ALT and ApproxDistance refuse
// to run until BuildOracle is called again. The serving tier surfaces this
// so operators know approximate answers went cold.
func (e *Engine) OracleInvalidated() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.orcStale
}

// MutationStats snapshots the mutation subsystem's counters.
func (e *Engine) MutationStats() MutationCounters {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.muts
}

// GraphVersion returns the current (graph, index) generation, bumped by
// LoadGraph, BuildSegTable and every edge mutation.
func (e *Engine) GraphVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// CacheStats snapshots the path cache (zero-valued when caching is off).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.snapshot()
}

// ConcurrencyStats bundles the admission gate, the scratch-table pool and
// the snapshot-validation counters for the serving tier (spdbd /stats).
type ConcurrencyStats struct {
	Gate    GateStats    `json:"gate"`
	Scratch ScratchStats `json:"scratch"`
	// SnapshotRetries counts searches re-run because the graph version
	// moved between admission and commit; Degraded counts searches that
	// fell back to exclusive admission after exhausting retries. Both stay
	// 0 while the gate excludes writers correctly — they are the optimistic
	// pattern's safety net, not its hot path.
	SnapshotRetries uint64 `json:"snapshot_retries"`
	Degraded        uint64 `json:"degraded"`
}

// ConcurrencyStats snapshots the engine's parallel-admission machinery.
func (e *Engine) ConcurrencyStats() ConcurrencyStats {
	return ConcurrencyStats{
		Gate:            e.gate.stats(),
		Scratch:         e.scratch.stats(),
		SnapshotRetries: e.snapRetries.Load(),
		Degraded:        e.degraded.Load(),
	}
}

// bumpVersion invalidates every cached answer; callers hold e.mu.
func (e *Engine) bumpVersionLocked() {
	e.version++
	if e.cache != nil {
		e.cache.purge()
	}
}

// stmt resolves a statement text to the engine's prepared handle for it,
// preparing through the engine session on first use. Handles are shared
// (rdb.Stmt is concurrency-safe) and survive for the engine's lifetime.
func (e *Engine) stmt(q string) (*rdb.Stmt, error) {
	e.stmtMu.RLock()
	st := e.stmtCache[q]
	e.stmtMu.RUnlock()
	if st != nil {
		return st, nil
	}
	st, err := e.sess.Prepare(q)
	if err != nil {
		return nil, err
	}
	e.stmtMu.Lock()
	if prev, ok := e.stmtCache[q]; ok {
		st = prev // a concurrent caller prepared it first; share theirs
	} else {
		e.stmtCache[q] = st
	}
	e.stmtMu.Unlock()
	return st, nil
}

// exec runs a write statement through its prepared handle, charging its
// latency to the given phase accumulators (any of which may be nil).
// Cancellation and the statement budget are enforced here at the
// bind/execute boundary — every statement the engine issues passes through
// exec or queryInt, so a cancelled context or an exhausted budget stops the
// query at the next statement.
func (e *Engine) exec(ctx context.Context, qs *QueryStats, phase *time.Duration, op *time.Duration, q string, args ...any) (int64, error) {
	if err := e.checkBudget(ctx, qs); err != nil {
		return 0, err
	}
	st, err := e.stmt(q)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	res, err := st.ExecContext(ctx, args...)
	dt := time.Since(t0)
	if qs != nil {
		qs.Statements++
	}
	if phase != nil {
		*phase += dt
	}
	if op != nil {
		*op += dt
	}
	if err != nil {
		return 0, err
	}
	if qs != nil {
		qs.TuplesAffected += res.RowsAffected
	}
	return res.RowsAffected, nil
}

// queryInt runs a scalar query through its prepared handle with the same
// accounting.
func (e *Engine) queryInt(ctx context.Context, qs *QueryStats, phase *time.Duration, q string, args ...any) (int64, bool, error) {
	if err := e.checkBudget(ctx, qs); err != nil {
		return 0, false, err
	}
	st, err := e.stmt(q)
	if err != nil {
		return 0, false, err
	}
	t0 := time.Now()
	v, null, err := st.QueryIntContext(ctx, args...)
	dt := time.Since(t0)
	if qs != nil {
		qs.Statements++
	}
	if phase != nil {
		*phase += dt
	}
	return v, null, err
}

// checkBudget refuses the next statement when the context is cancelled or
// the query's statement budget (QueryRequest.MaxStatements) is spent.
func (e *Engine) checkBudget(ctx context.Context, qs *QueryStats) error {
	if err := rdb.ContextErr(ctx); err != nil {
		return err
	}
	if qs != nil && qs.budget > 0 && int64(qs.Statements) >= qs.budget {
		return fmt.Errorf("%w after %d statements", ErrBudgetExceeded, qs.Statements)
	}
	return nil
}

// search dispatches to the relational algorithms over the leased scratch
// set; callers hold the query gate (shared for reads, exclusive for the
// degraded path). budget is the per-query statement cap (0 = unlimited).
func (e *Engine) search(ctx context.Context, sc *scratchSet, alg Algorithm, s, t int64, budget int64) (Path, *QueryStats, error) {
	switch alg {
	case AlgDJ:
		return e.dj(ctx, sc, s, t, budget)
	case AlgBDJ:
		return e.bidirectional(ctx, sc, specBDJ(sc), s, t, budget)
	case AlgBSDJ:
		return e.bidirectional(ctx, sc, specBSDJ(sc), s, t, budget)
	case AlgBBFS:
		return e.bidirectional(ctx, sc, specBBFS(sc), s, t, budget)
	case AlgBSEG:
		e.mu.RLock()
		segBuilt, segLthd := e.segBuilt, e.segLthd
		e.mu.RUnlock()
		if !segBuilt {
			return Path{}, nil, fmt.Errorf("core: BSEG requires BuildSegTable first")
		}
		return e.bidirectional(ctx, sc, specBSEG(sc, segLthd), s, t, budget)
	case AlgALT:
		e.mu.RLock()
		built := e.orc != nil
		e.mu.RUnlock()
		if !built {
			return Path{}, nil, fmt.Errorf("core: ALT requires BuildOracle first (rebuild after graph changes)")
		}
		return e.bidirectional(ctx, sc, specALT(sc, s, t), s, t, budget)
	case AlgLabel:
		e.mu.RLock()
		built := e.lbl != nil
		e.mu.RUnlock()
		if !built {
			return Path{}, nil, fmt.Errorf("core: Label requires BuildLabels first (rebuild after graph changes)")
		}
		return e.labelSearch(ctx, s, t, budget)
	}
	return Path{}, nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

// maxIters resolves Options.MaxIters: an explicit positive cap wins, the
// default scales with the loaded graph (16×nodes+1024).
func (e *Engine) maxIters() int {
	if e.opts.MaxIters > 0 {
		return e.opts.MaxIters
	}
	if e.nodes > 0 {
		return 16*e.nodes + 1024
	}
	return 1 << 30
}
