package core

import (
	"time"

	"repro/internal/obs"
)

// The engine's observability surface: Engine.Query feeds per-algorithm
// latency and gate-wait histograms (observeQuery), and the engine exports
// every subsystem counter it already tracks — gate admissions, scratch
// pool, snapshot retries, path cache, mutation counters, graph metadata —
// as one obs.Collector. The serving tier registers it on a Registry next
// to the DB's collector and its own; nothing here runs unless something
// scrapes.

// observeQuery records one Engine.Query call in the engine's instruments.
// Successful answers land in the latency histogram of the algorithm that
// answered (AlgAuto for oracle-only and trivial answers); failures —
// cancellations, budget exhaustion, validation errors — count in
// queryErrs and are kept out of the histograms so tail percentiles
// measure answered queries, not deadline settings. Gate wait is recorded
// for every call that reached admission, success or not: admission
// queueing under overload is exactly what it exists to show.
func (e *Engine) observeQuery(req QueryRequest, res QueryResult, err error, rec stageRec, total time.Duration) {
	if rec.gate > 0 {
		e.gateWaitDur.Observe(rec.gate.Seconds())
	}
	if err != nil {
		e.queryErrs.Add(1)
		return
	}
	alg := int(res.Algorithm)
	if alg < 0 || alg >= numAlgs {
		alg = int(AlgAuto)
	}
	e.queryDur[alg].Observe(total.Seconds())
}

// QueryErrors counts Engine.Query calls that returned an error (including
// cancellations and budget exhaustion).
func (e *Engine) QueryErrors() uint64 { return e.queryErrs.Load() }

// QueryLatency exposes the latency histogram of one algorithm's answered
// queries (the soak benchmark reads percentiles from it; /metrics exports
// all of them).
func (e *Engine) QueryLatency(alg Algorithm) *obs.Histogram {
	if int(alg) < 0 || int(alg) >= numAlgs {
		return e.queryDur[AlgAuto]
	}
	return e.queryDur[alg]
}

// GateWaitLatency exposes the admission-wait histogram.
func (e *Engine) GateWaitLatency() *obs.Histogram { return e.gateWaitDur }

// trackBuild marks an index build or graph load as in flight for the
// readiness probe; the returned func clears it. Builds count from entry
// (including their wait for the exclusive gate): a replica queued behind a
// rebuild is just as cold as one mid-rebuild.
func (e *Engine) trackBuild() func() {
	e.building.Add(1)
	return func() { e.building.Add(-1) }
}

// BuildsInFlight reports how many index builds or graph loads are running
// (or queued on the gate) right now. The serving tier's /readyz reports
// 503 while this is non-zero: a replica rebuilding its SegTable or oracle
// answers exact queries slowly or not at all, and load balancers should
// route elsewhere.
func (e *Engine) BuildsInFlight() int { return int(e.building.Load()) }

// CollectMetrics implements obs.Collector: the engine-level families of
// the /metrics page. Metric names and label sets are stable — the golden
// exposition test pins them — and every family is emitted on every scrape
// (zero-valued families included) so dashboards never see series flicker
// in and out of existence.
func (e *Engine) CollectMetrics(x *obs.Exporter) {
	// Per-algorithm latency histograms. All algorithms emit every scrape;
	// an algorithm that never ran exports empty buckets.
	for a := 0; a < numAlgs; a++ {
		x.Histogram("spdb_query_duration_seconds",
			"Latency of answered queries by the algorithm that answered (Auto = oracle-only or trivial).",
			e.queryDur[a], obs.L("algorithm", Algorithm(a).String()))
	}
	x.Histogram("spdb_gate_wait_seconds",
		"Time queries spent queued on the admission gate before running.", e.gateWaitDur)
	x.Counter("spdb_query_errors_total",
		"Engine.Query calls that returned an error (cancellations, budgets, validation).",
		float64(e.queryErrs.Load()))

	gs := e.gate.stats()
	x.Counter("spdb_gate_admissions_total", "Successful gate admissions by mode.",
		float64(gs.SharedAdmits), obs.L("mode", "shared"))
	x.Counter("spdb_gate_admissions_total", "Successful gate admissions by mode.",
		float64(gs.ExclusiveAdmits), obs.L("mode", "exclusive"))
	x.Counter("spdb_gate_abandons_total",
		"Gate waiters that gave up on a cancelled context.", float64(gs.Abandons))
	x.Counter("spdb_gate_drains_total",
		"Exclusive admissions that had to wait for readers or another writer.", float64(gs.Drains))
	x.Gauge("spdb_gate_readers", "In-flight shared admissions.", float64(gs.Readers))
	x.Gauge("spdb_gate_peak_readers",
		"High-water mark of concurrent shared admissions.", float64(gs.PeakReaders))
	x.Gauge("spdb_gate_readers_waiting", "Readers queued on the gate.", float64(gs.ReadersWaiting))
	x.Gauge("spdb_gate_writers_waiting", "Writers queued on the gate.", float64(gs.WritersWaiting))
	x.Gauge("spdb_gate_writer_active", "1 while an exclusive holder runs.", b2f(gs.WriterActive))
	x.Counter("spdb_snapshot_retries_total",
		"Searches re-run because the graph version moved between admission and commit.",
		float64(e.snapRetries.Load()))
	x.Counter("spdb_degraded_queries_total",
		"Searches that fell back to exclusive admission after exhausting snapshot retries.",
		float64(e.degraded.Load()))

	ss := e.scratch.stats()
	x.Counter("spdb_scratch_minted_total", "Scratch table sets created (DDL).", float64(ss.Minted))
	x.Counter("spdb_scratch_dropped_total",
		"Scratch table sets dropped past the retain floor.", float64(ss.Dropped))
	x.Gauge("spdb_scratch_live", "Scratch sets leased to in-flight queries.", float64(ss.Live))
	x.Gauge("spdb_scratch_free", "Scratch sets parked on the free list.", float64(ss.Free))

	cs := e.CacheStats()
	x.Counter("spdb_path_cache_hits_total", "Path cache hits.", float64(cs.Hits))
	x.Counter("spdb_path_cache_misses_total", "Path cache misses.", float64(cs.Misses))
	x.Counter("spdb_path_cache_evictions_total", "Path cache LRU evictions.", float64(cs.Evictions))
	x.Counter("spdb_path_cache_invalidations_total",
		"Whole-cache purges (graph reload, index build, mutation).", float64(cs.Invalidations))
	x.Gauge("spdb_path_cache_entries", "Live path cache entries.", float64(cs.Entries))
	x.Gauge("spdb_path_cache_capacity", "Path cache capacity.", float64(cs.Capacity))

	ms := e.MutationStats()
	x.Counter("spdb_mutations_total", "Applied edge mutations by kind.",
		float64(ms.Inserts), obs.L("op", "insert"))
	x.Counter("spdb_mutations_total", "Applied edge mutations by kind.",
		float64(ms.Deletes), obs.L("op", "delete"))
	x.Counter("spdb_mutations_total", "Applied edge mutations by kind.",
		float64(ms.Updates), obs.L("op", "update"))
	x.Counter("spdb_mutation_batches_total",
		"ApplyMutations batches that applied at least one mutation.", float64(ms.Batches))
	x.Counter("spdb_seg_repairs_total", "Scoped decremental SegTable repairs.", float64(ms.SegRepairs))
	x.Counter("spdb_seg_rebuilds_total",
		"Threshold-exceeded fallbacks to a full SegTable rebuild.", float64(ms.SegRebuilds))
	x.Counter("spdb_seg_rows_repaired_total",
		"SegTable rows re-materialized by scoped repairs.", float64(ms.RowsRepaired))
	x.Counter("spdb_oracle_invalidations_total",
		"Mutations or batches that killed a built landmark oracle.", float64(ms.OracleInvalidations))
	x.Counter("spdb_label_keeps_total",
		"Mutations the hub-label keep-analysis absorbed (index survived).", float64(ms.LabelKeeps))
	x.Counter("spdb_label_invalidations_total",
		"Mutations that sent a built hub-label index cold.", float64(ms.LabelInvalidations))

	ds := e.DurabilityStats()
	x.Gauge("spdb_wal_armed",
		"1 while a mutation WAL is armed (Options.DataDir set and a graph loaded).", b2f(ds.Armed))
	x.Counter("spdb_wal_records_total",
		"Mutation batches appended to the write-ahead log.", float64(ds.WAL.Appends))
	x.Counter("spdb_wal_bytes_total", "Framed bytes appended to the WAL.", float64(ds.WAL.Bytes))
	x.Counter("spdb_wal_fsyncs_total",
		"WAL fsyncs issued (group commit keeps this at or below records).", float64(ds.WAL.Syncs))
	x.Counter("spdb_wal_fsync_seconds_total",
		"Total time spent in WAL fsync.", ds.WAL.SyncTime.Seconds())
	x.Gauge("spdb_wal_size_bytes", "Current WAL length.", float64(ds.WAL.Size))
	x.Counter("spdb_wal_resets_total",
		"WAL truncations to empty (one per committed snapshot).", float64(ds.WAL.Resets))
	x.Counter("spdb_snapshot_writes_total", "Committed snapshot writes.", float64(ds.Snapshots))
	x.Counter("spdb_snapshot_skips_total",
		"Snapshot calls skipped because the graph version had not moved.", float64(ds.SnapshotSkips))
	x.Counter("spdb_snapshot_bytes_total",
		"Chunk bytes written by committed snapshots.", float64(ds.SnapshotBytes))
	x.Counter("spdb_snapshot_seconds_total",
		"Wall time spent writing snapshots.", ds.SnapshotTime.Seconds())
	x.Gauge("spdb_snapshot_last_version",
		"Graph version of the newest committed (or hydrated-from) snapshot.",
		float64(ds.LastSnapshotVersion))
	x.Counter("spdb_snapshot_gc_removed_total",
		"Superseded snapshot versions reclaimed by GC.", float64(ds.GCRemoved))
	x.Counter("spdb_snapshot_hydrations_total",
		"Engine hydrations from a snapshot.", float64(ds.Hydrations))
	x.Counter("spdb_snapshot_replayed_records_total",
		"WAL records replayed on top of hydrated snapshots.", float64(ds.ReplayedRecords))

	e.mu.RLock()
	nodes, edges, version := e.nodes, e.edges, e.version
	segBuilt, orcValid, orcStale := e.segBuilt, e.orc != nil, e.orcStale
	lblValid, lblStale := e.lbl != nil, e.lblStale
	lblRows := 0
	if e.lbl != nil {
		lblRows = e.lbl.Rows()
	}
	e.mu.RUnlock()
	x.Gauge("spdb_graph_nodes", "Loaded node count.", float64(nodes))
	x.Gauge("spdb_graph_edges", "Loaded edge count.", float64(edges))
	x.Gauge("spdb_graph_version", "Current (graph, index) generation.", float64(version))
	x.Gauge("spdb_seg_built", "1 while a SegTable index is valid.", b2f(segBuilt))
	x.Gauge("spdb_oracle_valid", "1 while a landmark oracle is valid.", b2f(orcValid))
	x.Gauge("spdb_oracle_stale",
		"1 while a previously built oracle is invalidated and not rebuilt.", b2f(orcStale))
	x.Gauge("spdb_labels_valid", "1 while a hub-label index is valid.", b2f(lblValid))
	x.Gauge("spdb_labels_stale",
		"1 while a previously built hub-label index is invalidated and not rebuilt.", b2f(lblStale))
	x.Gauge("spdb_label_rows", "Hub-label entries (TLabelOut + TLabelIn).", float64(lblRows))
	x.Gauge("spdb_index_builds_in_flight",
		"Index builds or graph loads running or queued (readiness gate).",
		float64(e.building.Load()))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
