package core

import (
	"context"
	"fmt"
	"time"
)

// Prim's minimal spanning tree via the FEM framework (§3.1's second
// worked example): each node carries (w, p2s, f) where w is the cheapest
// edge weight connecting it to the growing tree, p2s that edge's tree-side
// endpoint, and f the membership flag. The frontier rule picks all
// candidates at the minimal connection weight (set-at-a-time, like BSDJ);
// the E-operator offers each neighbour the connecting edge's weight (not a
// cumulative distance); the M-operator keeps the cheaper offer and discards
// nodes already in the tree.
//
// The graph is treated as undirected using the out-edge table; for the
// generators in this repository every undirected dataset stores both
// directions. Disconnected graphs yield a spanning forest.

// MSTEdge is one selected tree edge.
type MSTEdge struct {
	From, To int64
	Weight   int64
}

// MSTResult reports a spanning forest computation.
type MSTResult struct {
	Edges       []MSTEdge
	TotalWeight int64
	Components  int
	Iterations  int
	Statements  int
	Time        time.Duration
}

// MinimumSpanningForest computes a minimal spanning forest with FEM
// iterations over the loaded graph.
func (e *Engine) MinimumSpanningForest() (*MSTResult, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// Shares the TVisited working table with searches.
	ctx := context.Background()
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	if e.Nodes() == 0 {
		return nil, ErrNoGraph
	}
	qs := &QueryStats{Algorithm: "MST"}
	start := time.Now()

	// Working table: reuse TVisited's shape, with d2s as the connection
	// weight. All nodes start as non-candidates (f = 3); component roots
	// are promoted one at a time.
	if err := e.resetVisited(ctx, qs, e.scratchGlobal); err != nil {
		return nil, err
	}
	if _, err := e.exec(ctx, qs, nil, nil, mstInitQ, MaxDist, NoParent); err != nil {
		return nil, err
	}

	res := &MSTResult{}
	limit := e.maxIters()
	for iter := 0; ; iter++ {
		if iter > limit {
			return nil, fmt.Errorf("core: MST exceeded %d iterations", limit)
		}
		cnt, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, mstFrontierQ)
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			// Component finished (or first iteration): promote a new root.
			root, null, err := e.queryInt(ctx, qs, &qs.SC, mstRootQ)
			if err != nil {
				return nil, err
			}
			if null {
				break // every node is in the forest
			}
			if _, err := e.exec(ctx, qs, &qs.PE, nil, mstPromoteQ, root); err != nil {
				return nil, err
			}
			res.Components++
			// Expand from the root alone.
			if _, err := e.exec(ctx, qs, &qs.PE, nil, mstSeedQ, root); err != nil {
				return nil, err
			}
			cnt = 1
		}
		res.Iterations++
		if _, err := e.runMSTExpand(ctx, qs); err != nil {
			return nil, err
		}
		if _, err := e.exec(ctx, qs, &qs.PE, &qs.FOp, mstResetQ); err != nil {
			return nil, err
		}
	}

	// Collect tree edges: every non-root member's (p2s, nid, d2s).
	edgesStmt, err := e.stmt(mstEdgesQ)
	if err != nil {
		return nil, err
	}
	rows, err := edgesStmt.QueryContext(ctx, NoParent)
	qs.Statements++
	if err != nil {
		return nil, err
	}
	for _, r := range rows.Data {
		res.Edges = append(res.Edges, MSTEdge{From: r[0].I, To: r[1].I, Weight: r[2].I})
		res.TotalWeight += r[2].I
	}
	res.Statements = qs.Statements
	res.Time = time.Since(start)
	return res, nil
}

// MST statement shapes (constant texts; sentinels bind as parameters).
const (
	mstInitQ = "INSERT INTO " + TblVisited +
		" (nid, d2s, p2s, f, d2t, p2t, b) SELECT nid, ?, ?, 3, 0, 0, 0 FROM " + TblNodes
	// One node per iteration (§3.1: "select a node u with u.f = false and
	// the minimal edge weight"). Adopting all minimum-weight candidates at
	// once would be unsound: adding one candidate can cheapen another's
	// connection below the shared minimum.
	mstFrontierQ = "UPDATE " + TblVisited + " SET f = 2 WHERE f = 0 AND nid = " +
		"(SELECT TOP 1 nid FROM " + TblVisited + " WHERE f = 0 AND d2s = " +
		"(SELECT MIN(d2s) FROM " + TblVisited + " WHERE f = 0))"
	mstResetQ   = "UPDATE " + TblVisited + " SET f = 1 WHERE f = 2"
	mstRootQ    = "SELECT TOP 1 nid FROM " + TblVisited + " WHERE f = 3"
	mstPromoteQ = "UPDATE " + TblVisited + " SET f = 1, d2s = 0 WHERE nid = ?"
	mstSeedQ    = "UPDATE " + TblVisited + " SET f = 2 WHERE nid = ?"
	mstEdgesQ   = "SELECT p2s, nid, d2s FROM " + TblVisited + " WHERE f = 1 AND d2s > 0 AND p2s <> ?"

	mstOfferSrc = "SELECT out.tid, q.nid, out.cost, " +
		"ROW_NUMBER() OVER (PARTITION BY out.tid ORDER BY out.cost) " +
		"FROM " + TblVisited + " q, " + TblEdges + " out WHERE q.nid = out.fid AND q.f = 2"
	// Offer each neighbour of the frontier its cheapest connecting edge;
	// nodes already in the tree (f = 1) or on the frontier (f = 2) are
	// discarded, matching §3.1's "expanded nodes can be discarded directly
	// if they have been included".
	mstMergeQ = "MERGE INTO " + TblVisited + " AS target USING (" +
		"SELECT nid, par, cost FROM (" + mstOfferSrc + ") tmp (nid, par, cost, rn) WHERE rn = 1" +
		") AS source (nid, par, cost) ON (target.nid = source.nid) " +
		"WHEN MATCHED AND target.f = 0 AND target.d2s > source.cost " +
		"THEN UPDATE SET d2s = source.cost, p2s = source.par " +
		"WHEN MATCHED AND target.f = 3 " +
		"THEN UPDATE SET d2s = source.cost, p2s = source.par, f = 0"
	mstInsOfferQ = "INSERT INTO " + TblExpand + " (nid, par, cost) SELECT nid, par, cost FROM (" +
		mstOfferSrc + ") tmp (nid, par, cost, rn) WHERE rn = 1"
	mstUpd1Q = "UPDATE " + TblVisited + " SET d2s = s.cost, p2s = s.par FROM " + TblExpand + " s " +
		"WHERE " + TblVisited + ".nid = s.nid AND " + TblVisited + ".f = 0 AND " + TblVisited + ".d2s > s.cost"
	mstUpd2Q = "UPDATE " + TblVisited + " SET d2s = s.cost, p2s = s.par, f = 0 FROM " + TblExpand + " s " +
		"WHERE " + TblVisited + ".nid = s.nid AND " + TblVisited + ".f = 3"
)

// runMSTExpand runs the MST merge, falling back to UPDATE+INSERT-free
// emulation on profiles without MERGE (two UPDATEs suffice since every
// node pre-exists in the working table).
func (e *Engine) runMSTExpand(ctx context.Context, qs *QueryStats) (int64, error) {
	if e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL {
		return e.exec(ctx, qs, &qs.PE, &qs.EOp, mstMergeQ)
	}
	// Materialize offers, then apply with two UPDATE...FROM statements.
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, "DELETE FROM "+TblExpand); err != nil {
		return 0, err
	}
	if _, err := e.exec(ctx, qs, &qs.PE, &qs.EOp, mstInsOfferQ); err != nil {
		return 0, err
	}
	n1, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, mstUpd1Q)
	if err != nil {
		return 0, err
	}
	n2, err := e.exec(ctx, qs, &qs.PE, &qs.MOp, mstUpd2Q)
	if err != nil {
		return 0, err
	}
	return n1 + n2, nil
}
