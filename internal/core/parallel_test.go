package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// The snapshot-isolation battery: shared admissions really run in parallel,
// writers drain and exclude readers in the documented order, and mixed
// algorithm traffic stays exact while mutation batches land concurrently.
// Synchronization goes through the engine's test hook and the gate's own
// counters — no sleep-and-hope timing.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadersAdmitInParallel proves N read-only queries hold the search
// section at the same time: every worker must reach the post-admission hook
// before any of them is released. Under the old one-slot latch the first
// reader would block the rest and the rendezvous could never complete.
func TestReadersAdmitInParallel(t *testing.T) {
	const readers = 3
	g := graph.Power(300, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})

	var mu sync.Mutex
	arrived := 0
	allIn := make(chan struct{})
	release := make(chan struct{})
	e.hookSearchStart = func() {
		mu.Lock()
		arrived++
		if arrived == readers {
			close(allIn)
		}
		mu.Unlock()
		<-release
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, tt := int64(i), int64(200+i)
			res, err := e.Query(context.Background(), QueryRequest{Source: s, Target: tt, Alg: AlgBSDJ})
			if err != nil {
				errs <- fmt.Errorf("reader %d: %v", i, err)
				return
			}
			ref := graph.MDJ(g, s, tt)
			if res.Found != ref.Found || (res.Found && res.Distance != ref.Distance) {
				errs <- fmt.Errorf("reader %d (%d->%d): got found=%v dist=%d, want found=%v dist=%d",
					i, s, tt, res.Found, res.Distance, ref.Found, ref.Distance)
			}
		}(i)
	}

	select {
	case <-allIn:
	case <-time.After(60 * time.Second):
		close(release)
		t.Fatal("readers never rendezvoused inside the search section: shared admission is not parallel")
	}
	if st := e.ConcurrencyStats(); st.Gate.Readers != readers {
		t.Errorf("at rendezvous: %d concurrent readers, want %d", st.Gate.Readers, readers)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.ConcurrencyStats()
	if st.Gate.PeakReaders < readers {
		t.Errorf("peak readers %d, want >= %d", st.Gate.PeakReaders, readers)
	}
	if st.Gate.Readers != 0 {
		t.Errorf("readers leaked: %d still admitted", st.Gate.Readers)
	}
}

// TestWriterDrainsReaders pins the admission order: a writer queued behind
// an in-flight reader waits for it, holds later readers back (writer
// preference), and runs before them once the reader drains.
func TestWriterDrainsReaders(t *testing.T) {
	g := graph.Power(300, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})

	var seqMu sync.Mutex
	var seq []string
	record := func(s string) {
		seqMu.Lock()
		seq = append(seq, s)
		seqMu.Unlock()
	}

	r1In := make(chan struct{})
	release1 := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	e.hookSearchStart = func() {
		if first.CompareAndSwap(true, false) {
			close(r1In)
			<-release1
			return
		}
		record("r2-search")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader 1: parked inside the search section
		defer wg.Done()
		if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 200, Alg: AlgBSDJ}); err != nil {
			t.Errorf("reader 1: %v", err)
		}
	}()
	<-r1In

	wg.Add(1)
	go func() { // writer: must drain reader 1 first
		defer wg.Done()
		// A parallel edge far heavier than any path cannot change an
		// answer, so both readers still compare against the original graph.
		if _, err := e.ApplyMutations([]Mutation{{Op: MutInsert, From: 0, To: 1, Weight: MaxDist / 2}}); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		record("writer-done")
	}()
	waitFor(t, "writer queued on the gate", func() bool {
		return e.ConcurrencyStats().Gate.WritersWaiting == 1
	})

	wg.Add(1)
	go func() { // reader 2: arrives after the writer, must be held back
		defer wg.Done()
		res, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 201, Alg: AlgBSDJ})
		if err != nil {
			t.Errorf("reader 2: %v", err)
			return
		}
		ref := graph.MDJ(g, 1, 201)
		if res.Found != ref.Found || (res.Found && res.Distance != ref.Distance) {
			t.Errorf("reader 2: got found=%v dist=%d, want found=%v dist=%d",
				res.Found, res.Distance, ref.Found, ref.Distance)
		}
	}()
	waitFor(t, "reader 2 held back behind the queued writer", func() bool {
		return e.ConcurrencyStats().Gate.ReadersWaiting == 1
	})

	close(release1) // reader 1 finishes; writer preference decides the rest
	wg.Wait()

	seqMu.Lock()
	defer seqMu.Unlock()
	want := []string{"writer-done", "r2-search"}
	if len(seq) != len(want) || seq[0] != want[0] || seq[1] != want[1] {
		t.Fatalf("admission order %v, want %v", seq, want)
	}
	st := e.ConcurrencyStats()
	if st.Gate.Drains == 0 {
		t.Error("writer admission should have counted as a drain")
	}
}

// TestParallelMixedUnderMutations is the differential stress test: reader
// goroutines running every algorithm family query concurrently WHILE
// mutation batches land, and every answer must be exact for a graph version
// whose lifetime overlapped the query. Run with -race this is the core
// safety argument for retiring the one-slot latch.
func TestParallelMixedUnderMutations(t *testing.T) {
	const (
		n        = 40
		readers  = 5
		qPerRdr  = 8
		maxState = 64
	)
	// A deterministic ring + chords: every node reaches every other, and
	// the reserved pair (0, 20) — absent from the initial edge set — is a
	// real shortcut when the writer inserts it.
	var init []graph.Edge
	for i := int64(0); i < n; i++ {
		init = append(init, graph.Edge{From: i, To: (i + 1) % n, Weight: 1 + i%7})
		init = append(init, graph.Edge{From: i, To: (i + 7) % n, Weight: 5 + i%11})
	}
	mirror, err := graph.New(n, init)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, mirror.Clone(), rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}

	// states[i] is the graph after i mutation batches; readers validate
	// their answer against every state whose lifetime overlapped the query.
	var stateMu sync.Mutex
	states := []*graph.Graph{mirror.Clone()}

	done := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		present := false
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			stateMu.Lock()
			nStates := len(states)
			stateMu.Unlock()
			if nStates > maxState {
				// Keep the MDJ validation window small; the readers only
				// need mutations in flight, not an unbounded history.
				time.Sleep(time.Millisecond)
				continue
			}
			var mut Mutation
			if present {
				if _, err := mirror.DeleteEdge(0, 20); err != nil {
					t.Errorf("writer: mirror delete: %v", err)
					return
				}
				mut = Mutation{Op: MutDelete, From: 0, To: 20}
			} else {
				w := int64(1 + i%5)
				if err := mirror.InsertEdge(0, 20, w); err != nil {
					t.Errorf("writer: mirror insert: %v", err)
					return
				}
				mut = Mutation{Op: MutInsert, From: 0, To: 20, Weight: w}
			}
			present = !present
			if _, err := e.ApplyMutations([]Mutation{mut}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			stateMu.Lock()
			states = append(states, mirror.Clone())
			stateMu.Unlock()
		}
	}()

	algs := []Algorithm{AlgDJ, AlgBDJ, AlgBSDJ, AlgBBFS, AlgBSEG, AlgAuto}
	var wg sync.WaitGroup
	errs := make(chan error, readers*qPerRdr)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(1000 + w)))
			for k := 0; k < qPerRdr; k++ {
				s, tt := rnd.Int63n(n), rnd.Int63n(n)
				alg := algs[(w+k)%len(algs)]
				stateMu.Lock()
				lo := len(states)
				stateMu.Unlock()
				res, err := e.Query(context.Background(), QueryRequest{Source: s, Target: tt, Alg: alg})
				if err != nil {
					errs <- fmt.Errorf("reader %d query %d (%v %d->%d): %v", w, k, alg, s, tt, err)
					return
				}
				stateMu.Lock()
				window := states[lo-1:]
				stateMu.Unlock()
				ok := false
				for _, gs := range window {
					ref := graph.MDJ(gs, s, tt)
					if res.Found == ref.Found && (!res.Found || res.Distance == ref.Distance) {
						ok = true
						break
					}
				}
				if !ok {
					errs <- fmt.Errorf("reader %d query %d (%v %d->%d): found=%v dist=%d matches none of %d overlapped versions",
						w, k, alg, s, tt, res.Found, res.Distance, len(window))
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := e.ConcurrencyStats()
	if st.Gate.SharedAdmits == 0 {
		t.Error("no shared admissions recorded for read-only queries")
	}
	if st.Gate.ExclusiveAdmits == 0 {
		t.Error("no exclusive admissions recorded for mutation batches")
	}
	if st.Gate.Readers != 0 || st.Gate.WritersWaiting != 0 || st.Gate.WriterActive {
		t.Errorf("gate not quiescent after the run: %+v", st.Gate)
	}
	if st.Scratch.Live != 0 {
		t.Errorf("%d scratch sets still leased after the run", st.Scratch.Live)
	}
}
