package core

import (
	"context"
	"fmt"

	"repro/internal/oracle"
)

// The oracle's Unreached sentinel must equal MaxDist: the ALT prune mixes
// TVisited distances with TLandmark bound differences in one comparison,
// and the approximate-answer thresholds assume one sentinel scale.
var _ [1]struct{} = [MaxDist - oracle.Unreached + 1]struct{}{}

// BuildOracle constructs (or rebuilds) the landmark distance oracle for
// the loaded graph: k landmarks picked by the configured strategy, exact
// per-landmark distances computed by single-source set-Dijkstra relaxation
// to fixpoint, materialized into TLandmark(lid, nid, dout, din). Like
// BuildSegTable, the build excludes searches and bumps the graph version
// (conservatively invalidating cached answers).
func (e *Engine) BuildOracle(cfg oracle.Config) (*oracle.BuildStats, error) {
	return e.BuildOracleContext(context.Background(), cfg)
}

// BuildOracleContext is BuildOracle with cooperative cancellation: a
// cancelled ctx aborts the build at the next statement or relaxation round.
// The oracle pointer is only installed after a complete build, so a
// cancelled build reads as "not built" (or "went cold", if one existed) —
// never as a partial TLandmark.
func (e *Engine) BuildOracleContext(ctx context.Context, cfg oracle.Config) (*oracle.BuildStats, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	// In flight (queued on the gate included) means not ready: /readyz
	// routes traffic away while the oracle is cold.
	defer e.trackBuild()()
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	if e.Nodes() == 0 {
		return nil, ErrNoGraph
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("core: landmark count must be non-negative, got %d (0 selects the default of %d)", cfg.K, oracle.DefaultK)
	}
	params := oracle.Params{
		Config:     cfg,
		NodesTable: TblNodes,
		EdgesTable: TblEdges,
		WMin:       e.WMin(),
		MaxIters:   e.maxIters(),
		UseMerge:   e.db.Profile().SupportsMerge && !e.opts.TraditionalSQL,
		Index:      e.oracleIndexMode(),
	}
	// Invalidate before touching TLandmark: ApproxDistance runs off the
	// query latch, and a rebuild over a live oracle must make concurrent
	// lookups refuse cleanly rather than read a half-built relation. A
	// live oracle also goes stale here, so a failed rebuild reads as
	// "went cold" — not "never built" — to operators.
	e.mu.Lock()
	if e.orc != nil {
		e.orcStale = true
	}
	e.orc = nil
	e.mu.Unlock()
	orc, st, err := oracle.Build(ctx, e.sess, params)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.orc = orc
	e.orcStale = false
	e.bumpVersionLocked()
	e.mu.Unlock()
	return st, nil
}

// Interval is an approximate-distance answer: Lower <= dist(s,t) <= Upper.
// Upper == MaxDist means no landmark certifies a path (the upper bound is
// unknown); Lower == MaxDist is a proof that no path exists at all.
type Interval struct {
	Lower int64
	Upper int64
}

// Unreachable reports a certified absence of any s-t path.
func (iv Interval) Unreachable() bool { return iv.Lower >= MaxDist }

// UpperKnown reports whether some landmark lies on an s-t path, making
// Upper a real path length.
func (iv Interval) UpperKnown() bool { return iv.Upper < MaxDist }

// Exact reports a closed interval: the approximate answer IS the distance.
func (iv Interval) Exact() bool { return iv.UpperKnown() && iv.Lower == iv.Upper }

// approxRetries bounds the optimistic-concurrency loop in DistanceInterval.
const approxRetries = 3

// DistanceInterval is the latch-free interval primitive behind the query
// planner: it brackets dist(s, t) from the landmark oracle alone — three
// aggregate SELECTs over TLandmark, never touching TEdges and never taking
// the query latch, so approximate answers stay fast while exact searches
// are running:
//
//	Upper = min_l dist(s,l) + dist(l,t)   (a real path through l)
//	Lower = max(0, max_l dout_l(t)-dout_l(s), max_l din_l(s)-din_l(t))
//
// Sentinel arithmetic is deliberate: a landmark that reaches s but not t
// pushes the lower bound past MaxDist/2, which is a genuine proof that no
// s-t path exists (l would reach t through it). Consistency with
// concurrent graph changes comes from optimistic version validation — the
// reads retry when the (graph, index) generation moves underneath them;
// cancellation is honored at every statement boundary through ctx.
func (e *Engine) DistanceInterval(ctx context.Context, s, t int64) (Interval, error) {
	iv, _, err := e.distanceIntervalStats(ctx, s, t)
	return iv, err
}

// distanceIntervalStats is DistanceInterval plus the number of statements
// the reads issued (three per optimistic attempt), so callers that answer
// from the oracle alone can report a truthful cost.
func (e *Engine) distanceIntervalStats(ctx context.Context, s, t int64) (Interval, int, error) {
	stmts := 0
	for try := 0; try < approxRetries; try++ {
		e.mu.RLock()
		nodes, version, orc := e.nodes, e.version, e.orc
		e.mu.RUnlock()
		if nodes == 0 {
			return Interval{}, stmts, ErrNoGraph
		}
		if s < 0 || t < 0 || int(s) >= nodes || int(t) >= nodes {
			return Interval{}, stmts, fmt.Errorf("core: node out of range (n=%d)", nodes)
		}
		if orc == nil {
			return Interval{}, stmts, fmt.Errorf("core: approximate distance requires BuildOracle first (rebuild after graph changes)")
		}
		if s == t {
			return Interval{Lower: 0, Upper: 0}, stmts, nil
		}

		iv, n, err := e.approxOnce(ctx, s, t)
		stmts += n
		e.mu.RLock()
		stable := e.version == version && e.orc == orc
		e.mu.RUnlock()
		if err != nil {
			if !stable {
				continue // the read straddled a rebuild; retry cleanly
			}
			return Interval{}, stmts, err
		}
		if stable {
			return iv, stmts, nil
		}
	}
	return Interval{}, stmts, fmt.Errorf("core: graph kept changing during approximate lookup")
}

// The three interval-read shapes over TLandmark: constant texts, endpoints
// bound as parameters, executed as prepared statements so the latch-free
// approximate path pays no parse/plan cost per lookup.
const (
	approxUpperQ = "SELECT MIN(a.din + b.dout) FROM " + oracle.TblLandmark + " a, " + oracle.TblLandmark +
		" b WHERE a.lid = b.lid AND a.nid = ? AND b.nid = ?"
	approxLowFQ = "SELECT MAX(b.dout - a.dout) FROM " + oracle.TblLandmark + " a, " + oracle.TblLandmark +
		" b WHERE a.lid = b.lid AND a.nid = ? AND b.nid = ?"
	approxLowBQ = "SELECT MAX(a.din - b.din) FROM " + oracle.TblLandmark + " a, " + oracle.TblLandmark +
		" b WHERE a.lid = b.lid AND a.nid = ? AND b.nid = ?"
)

// approxQueryInt runs one interval read through the engine statement cache.
func (e *Engine) approxQueryInt(ctx context.Context, q string, s, t int64) (int64, bool, error) {
	st, err := e.stmt(q)
	if err != nil {
		return 0, false, err
	}
	return st.QueryIntContext(ctx, s, t)
}

// approxOnce runs the three bound queries against the current TLandmark,
// also reporting how many statements actually ran (fewer on error).
func (e *Engine) approxOnce(ctx context.Context, s, t int64) (Interval, int, error) {
	upper, nullU, err := e.approxQueryInt(ctx, approxUpperQ, s, t)
	if err != nil {
		return Interval{}, 1, err
	}
	lowF, nullF, err := e.approxQueryInt(ctx, approxLowFQ, s, t)
	if err != nil {
		return Interval{}, 2, err
	}
	lowB, nullB, err := e.approxQueryInt(ctx, approxLowBQ, s, t)
	if err != nil {
		return Interval{}, 3, err
	}
	lower := int64(0)
	if !nullF && lowF > lower {
		lower = lowF
	}
	if !nullB && lowB > lower {
		lower = lowB
	}
	if lower >= MaxDist/2 {
		lower = MaxDist // certified unreachable
	}
	if nullU || upper >= MaxDist/2 {
		upper = MaxDist // no landmark-certified path
	}
	return Interval{Lower: lower, Upper: upper}, 3, nil
}
