package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// TestConcurrentShortestPath issues the same workload from many goroutines
// over one shared Engine and asserts every answer matches serial execution.
// Run under -race this is the core serving-tier safety test.
func TestConcurrentShortestPath(t *testing.T) {
	const (
		goroutines = 10
		nQueries   = 12
	)
	g := graph.Power(1500, 3, 7)
	queries := graph.RandomQueries(g, nQueries, 99)

	// Serial ground truth from an uncached engine.
	serial := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})
	want := make([]Path, len(queries))
	for i, q := range queries {
		p, _, err := shortestPath(serial, AlgBSDJ, q[0], q[1])
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		want[i] = p
	}

	shared := newTestEngine(t, g, rdb.Options{}, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*nQueries)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine walks the query set from a different offset
			// so cache misses and hits interleave across goroutines.
			for k := range queries {
				i := (k + w) % len(queries)
				q := queries[i]
				p, qs, err := shortestPath(shared, AlgBSDJ, q[0], q[1])
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if qs == nil {
					errs <- fmt.Errorf("worker %d query %d: nil stats", w, i)
					return
				}
				if p.Found != want[i].Found || p.Length != want[i].Length {
					errs <- fmt.Errorf("worker %d query %d (%d->%d): got found=%v len=%d, want found=%v len=%d",
						w, i, q[0], q[1], p.Found, p.Length, want[i].Found, want[i].Length)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs := shared.CacheStats()
	if cs.Hits == 0 {
		t.Error("expected cache hits across concurrent repeated queries, got none")
	}
}

// TestQueryBatchFanout checks the worker-pool fan-out returns in-order,
// per-query results identical to serial execution.
func TestQueryBatchFanout(t *testing.T) {
	g := graph.Power(800, 3, 11)
	pairs := graph.RandomQueries(g, 10, 5)
	batch := make([]QueryRequest, 0, len(pairs)+2)
	for _, q := range pairs {
		batch = append(batch, QueryRequest{Source: q[0], Target: q[1], Alg: AlgBSDJ})
	}
	// Duplicates collapse via the cache; an invalid pair fails alone.
	batch = append(batch, batch[0], QueryRequest{Source: -1, Target: 0, Alg: AlgBSDJ})

	serial := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})
	shared := newTestEngine(t, g, rdb.Options{}, Options{})
	results := shared.QueryBatch(context.Background(), batch, 8)
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d queries", len(results), len(batch))
	}
	for i, r := range results {
		if r.Request != batch[i] {
			t.Fatalf("result %d out of order: %+v", i, r.Request)
		}
		if batch[i].Source < 0 {
			if r.Err == nil {
				t.Errorf("result %d: expected error for invalid pair", i)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		want, _, err := shortestPath(serial, AlgBSDJ, batch[i].Source, batch[i].Target)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Path.Found != want.Found || r.Result.Path.Length != want.Length {
			t.Errorf("result %d (%d->%d): got found=%v len=%d, want found=%v len=%d",
				i, batch[i].Source, batch[i].Target, r.Result.Path.Found, r.Result.Path.Length, want.Found, want.Length)
		}
	}
}

// TestConcurrentBSEGWithBuild interleaves BSEG queries with a concurrent
// index rebuild; a query that waits out the rebuild re-validates against
// the new generation and must still return the correct distance — never a
// wrong answer.
func TestConcurrentBSEGWithBuild(t *testing.T) {
	g := graph.Power(600, 3, 3)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(15); err != nil {
		t.Fatal(err)
	}
	serial := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})
	if _, err := serial.BuildSegTable(15); err != nil {
		t.Fatal(err)
	}
	queries := graph.RandomQueries(g, 6, 21)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.BuildSegTable(15); err != nil {
			t.Errorf("rebuild: %v", err)
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := queries[w%len(queries)]
			p, _, err := shortestPath(e, AlgBSEG, q[0], q[1])
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			want, _, err := shortestPath(serial, AlgBSEG, q[0], q[1])
			if err != nil {
				t.Errorf("serial: %v", err)
				return
			}
			if p.Found != want.Found || p.Length != want.Length {
				t.Errorf("worker %d (%d->%d): got found=%v len=%d, want found=%v len=%d",
					w, q[0], q[1], p.Found, p.Length, want.Found, want.Length)
			}
		}(w)
	}
	wg.Wait()
}
