package core

import (
	"strings"
	"testing"
)

// TestParseAlgorithm is the table-driven parser test for the algorithm
// names every command-line and HTTP surface shares.
func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"auto", AlgAuto, true},
		{"AUTO", AlgAuto, true},
		{"DJ", AlgDJ, true},
		{"dj", AlgDJ, true},
		{"BDJ", AlgBDJ, true},
		{"bsdj", AlgBSDJ, true},
		{"Bbfs", AlgBBFS, true},
		{"BSEG", AlgBSEG, true},
		{"alt", AlgALT, true},
		{"", 0, false},
		{"DJK", 0, false},
		{"BSE", 0, false},
		{" BSDJ", 0, false}, // no trimming: callers pass exact tokens
	} {
		got, err := ParseAlgorithm(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseAlgorithm(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			if !strings.Contains(err.Error(), "unknown algorithm") {
				t.Errorf("ParseAlgorithm(%q): unexpected error text %q", tc.in, err)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Every algorithm's String round-trips through the parser, the planner
	// sentinel included.
	for _, alg := range append([]Algorithm{AlgAuto}, allAlgorithms()...) {
		back, err := ParseAlgorithm(alg.String())
		if err != nil || back != alg {
			t.Errorf("round-trip %v: %v, %v", alg, back, err)
		}
	}
	if s := Algorithm(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown algorithm string: %q", s)
	}
}
