package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// The planner suite: table-driven decision pins across graph shapes and
// index states, plus the differential check that every planner choice
// returns a path equal in weight to the in-memory reference.

// lineGraph builds a directed chain 0 -> 1 -> ... -> n-1 with uniform edge
// weight w (both directions, so landmarks cover it well).
func lineGraph(t *testing.T, n int64, w int64) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, graph.Edge{From: i, To: i + 1, Weight: w})
		edges = append(edges, graph.Edge{From: i + 1, To: i, Weight: w})
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPlannerDecisions pins the planner's algorithm choice per graph shape
// and index state. Every case also differentially checks the answer when
// it is exact, so a decision can never be "right" by returning garbage.
func TestPlannerDecisions(t *testing.T) {
	type setup struct {
		name string
		g    *graph.Graph
		seg  int64 // BuildSegTable threshold (0 = skip)
		lmk  int   // BuildOracle landmarks (0 = skip)
		req  QueryRequest
		// wantDecision pins QueryStats.Planner; wantAlg the algorithm that
		// ran (AlgAuto for oracle-only answers).
		wantDecision string
		wantAlg      Algorithm
		wantApprox   bool
	}
	power := graph.Power(400, 3, 5)
	cases := []setup{
		{
			// Tiny graph: indexes exist but indirection cannot pay off.
			name: "tiny", g: graph.Random(60, 180, 3), seg: 8, lmk: 4,
			req:          QueryRequest{Source: 0, Target: 30},
			wantDecision: DecisionTinyBSDJ, wantAlg: AlgBSDJ,
		},
		{
			// Power-law, oracle only: goal-directed ALT.
			name: "power-law-oracle", g: power, lmk: 8,
			req:          QueryRequest{Source: 0, Target: 200},
			wantDecision: DecisionALT, wantAlg: AlgALT,
		},
		{
			// Oracle-cold with a SegTable: BSEG.
			name: "oracle-cold-seg", g: power, seg: 20,
			req:          QueryRequest{Source: 0, Target: 200},
			wantDecision: DecisionBSEG, wantAlg: AlgBSEG,
		},
		{
			// Oracle-cold, no index at all: BSDJ.
			name: "oracle-cold-bare", g: power,
			req:          QueryRequest{Source: 0, Target: 200},
			wantDecision: DecisionBSDJ, wantAlg: AlgBSDJ,
		},
		{
			// Both indexes, compressing SegTable (lthd >> wmin): BSEG.
			name: "both-strong-seg", g: power, seg: 20, lmk: 8,
			req:          QueryRequest{Source: 0, Target: 200},
			wantDecision: DecisionBSEG, wantAlg: AlgBSEG,
		},
		{
			// Both indexes, but lthd < 2*wmin: the segments are single
			// edges, BSEG degenerates to BSDJ, ALT's pruning wins.
			name: "both-weak-seg", g: lineGraph(t, 300, 10), seg: 15, lmk: 4,
			req:          QueryRequest{Source: 0, Target: 299},
			wantDecision: DecisionALTWeakSeg, wantAlg: AlgALT,
		},
		{
			// Positive tolerance with hub landmarks on a chain: the
			// interval closes (every node lies on landmark paths), so the
			// oracle answers without a search.
			name: "tolerance", g: lineGraph(t, 300, 10), lmk: 4,
			req:          QueryRequest{Source: 10, Target: 290, MaxRelError: 0.5},
			wantDecision: DecisionApprox, wantAlg: AlgAuto, wantApprox: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := newTestEngine(t, tc.g, rdb.Options{}, Options{})
			if tc.seg > 0 {
				if _, err := e.BuildSegTable(tc.seg); err != nil {
					t.Fatal(err)
				}
			}
			if tc.lmk > 0 {
				if _, err := e.BuildOracle(oracle.Config{K: tc.lmk}); err != nil {
					t.Fatal(err)
				}
			}
			res, err := e.Query(context.Background(), tc.req)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if res.Stats == nil || res.Stats.Planner != tc.wantDecision {
				t.Fatalf("planner decision %q, want %q", res.Stats.Planner, tc.wantDecision)
			}
			if res.Algorithm != tc.wantAlg {
				t.Fatalf("algorithm %v, want %v", res.Algorithm, tc.wantAlg)
			}
			if res.Approximate != tc.wantApprox {
				t.Fatalf("approximate=%v, want %v", res.Approximate, tc.wantApprox)
			}
			ref := graph.MDJ(tc.g, tc.req.Source, tc.req.Target)
			if tc.wantApprox {
				if !ref.Found {
					t.Fatal("tolerance case must target a connected pair")
				}
				if res.Lower > ref.Distance || res.Upper < ref.Distance {
					t.Fatalf("interval [%d,%d] misses exact %d", res.Lower, res.Upper, ref.Distance)
				}
				if res.Stats.Statements != 3 {
					// Exactly the three landmark-interval reads, so the
					// auto-vs-manual bench comparison stays truthful.
					t.Fatalf("approximate answer reported %d statements, want 3", res.Stats.Statements)
				}
				return
			}
			checkPath(t, tc.g, res.Algorithm, tc.req.Source, tc.req.Target, res.Path)
			if res.Stats.Iterations == 0 {
				t.Error("exact search should record iterations")
			}
		})
	}
}

// TestPlannerUnreachable: the oracle's sentinel arithmetic proves the
// isolated node unreachable, and the planner answers without any search.
func TestPlannerUnreachable(t *testing.T) {
	g := graph.Power(300, 3, 9)
	widened, err := graph.New(g.N+1, g.Edges) // node g.N is isolated
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, widened, rdb.Options{}, Options{})
	if _, err := e.BuildOracle(oracle.Config{K: 4}); err != nil {
		t.Fatal(err)
	}
	v0 := e.DB().Stats().Statements
	res, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: widened.N - 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("isolated target reported found")
	}
	if res.Stats.Planner != DecisionUnreachable {
		t.Fatalf("decision %q, want %q", res.Stats.Planner, DecisionUnreachable)
	}
	// Only the three interval SELECTs may have run — no search statements.
	if got := e.DB().Stats().Statements - v0; got > 3 {
		t.Fatalf("unreachable answer ran %d statements, want <= 3", got)
	}
}

// TestPlannerDifferential is the exactness harness for AlgAuto: across
// every index state, planner-chosen answers equal the in-memory Dijkstra
// reference in weight (and are real paths edge by edge).
func TestPlannerDifferential(t *testing.T) {
	shapes := map[string]func(t *testing.T, e *Engine){
		"bare":        func(t *testing.T, e *Engine) {},
		"seg":         func(t *testing.T, e *Engine) { mustSeg(t, e, 20) },
		"oracle":      func(t *testing.T, e *Engine) { buildOracle(t, e) },
		"seg+oracle":  func(t *testing.T, e *Engine) { mustSeg(t, e, 20); buildOracle(t, e) },
		"weak-seg":    func(t *testing.T, e *Engine) { mustSeg(t, e, 1); buildOracle(t, e) },
		"tiny-random": nil, // filled below with its own graph
	}
	delete(shapes, "tiny-random")
	for name, build := range shapes {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			g := graph.Power(400, 3, 11)
			e := newTestEngine(t, g, rdb.Options{}, Options{})
			build(t, e)
			for _, q := range graph.RandomQueries(g, 8, 13) {
				res, err := e.Query(context.Background(), QueryRequest{Source: q[0], Target: q[1]})
				if err != nil {
					t.Fatalf("auto s=%d t=%d: %v", q[0], q[1], err)
				}
				if res.Approximate {
					t.Fatalf("exact request answered approximately (s=%d t=%d)", q[0], q[1])
				}
				checkPath(t, g, res.Algorithm, q[0], q[1], res.Path)
			}
		})
	}
	t.Run("tiny-random", func(t *testing.T) {
		g := graph.Random(80, 240, 17)
		e := newTestEngine(t, g, rdb.Options{}, Options{})
		mustSeg(t, e, 8)
		buildOracle(t, e)
		for _, q := range graph.RandomQueries(g, 8, 19) {
			res, err := e.Query(context.Background(), QueryRequest{Source: q[0], Target: q[1]})
			if err != nil {
				t.Fatalf("auto s=%d t=%d: %v", q[0], q[1], err)
			}
			checkPath(t, g, res.Algorithm, q[0], q[1], res.Path)
		}
	})
}

func mustSeg(t *testing.T, e *Engine, lthd int64) {
	t.Helper()
	if _, err := e.BuildSegTable(lthd); err != nil {
		t.Fatal(err)
	}
}

// TestQueryCacheSharesPlannerChoice: an AlgAuto answer lands in the cache
// under the resolved algorithm, so an explicit hint for that algorithm
// hits it (and vice versa).
func TestQueryCacheSharesPlannerChoice(t *testing.T) {
	g := graph.Power(400, 3, 23)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	mustSeg(t, e, 20)
	res, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgBSEG || res.Stats.CacheHit {
		t.Fatalf("setup: %v cachehit=%v", res.Algorithm, res.Stats.CacheHit)
	}
	hinted, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 300, Alg: AlgBSEG})
	if err != nil {
		t.Fatal(err)
	}
	if !hinted.Stats.CacheHit {
		t.Error("explicit BSEG hint should hit the auto-cached entry")
	}
	auto, err := e.Query(context.Background(), QueryRequest{Source: 1, Target: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Stats.CacheHit {
		t.Error("repeated auto query should hit the cache")
	}
}

// TestPlannerReplansOnIndexLoss: a queued auto query whose plan named
// BSEG must replan — not hard-error — when the index vanished while it
// waited on the latch. The regression scenario is a cancelled rebuild,
// which clears segBuilt WITHOUT bumping the graph version (the graph
// itself is unchanged), so a version-only staleness check would miss it.
func TestPlannerReplansOnIndexLoss(t *testing.T) {
	g := graph.Power(400, 3, 41)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	mustSeg(t, e, 20)

	if err := e.lockQuery(context.Background()); err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res QueryResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 300})
		done <- outcome{res, err}
	}()
	// Let the goroutine plan (BSEG) and queue behind the held latch, then
	// put the engine in the state a cancelled rebuild leaves: SegTable
	// gone, version untouched (buildSegTableLocked invalidates exactly
	// like this before recreating the tables).
	time.Sleep(50 * time.Millisecond)
	e.mu.Lock()
	e.segBuilt = false
	e.mu.Unlock()
	e.unlockQuery()

	o := <-done
	if o.err != nil {
		t.Fatalf("queued auto query must replan around the lost index, got %v", o.err)
	}
	if o.res.Algorithm == AlgBSEG {
		t.Fatal("BSEG ran without a SegTable")
	}
	checkPath(t, g, o.res.Algorithm, 0, 300, o.res.Path)
}

// TestOptionsMaxItersValidation: a negative bound is rejected up front by
// every entry point, and a tiny positive bound fails loudly instead of
// spinning.
func TestOptionsMaxItersValidation(t *testing.T) {
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e := NewEngine(db, Options{MaxIters: -1})
	defer e.Close()
	if err := e.LoadGraph(graph.Random(20, 60, 1)); err == nil {
		t.Fatal("LoadGraph must reject MaxIters < 0")
	}
	if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 1}); err == nil {
		t.Fatal("Query must reject MaxIters < 0")
	}

	g := graph.Power(300, 3, 31)
	small := newTestEngine(t, g, rdb.Options{}, Options{MaxIters: 1})
	_, err = small.Query(context.Background(), QueryRequest{Source: 0, Target: 250, Alg: AlgBSDJ})
	if err == nil {
		t.Fatal("MaxIters=1 should abort a long search")
	}
	// A trivial query still fits inside one iteration's budget.
	res, err := small.Query(context.Background(), QueryRequest{Source: 7, Target: 7, Alg: AlgAuto})
	if err != nil || !res.Found || res.Distance != 0 {
		t.Fatalf("trivial query under tiny MaxIters: %v %+v", err, res)
	}
}
