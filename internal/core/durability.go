package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/oracle"
	"repro/internal/rdb"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// The durability subsystem: Options.DataDir arms a write-ahead mutation
// log (internal/wal) and a versioned snapshot store (internal/snapshot)
// under one directory:
//
//	<DataDir>/mutations.wal        append-only, fsynced mutation batches
//	<DataDir>/snapshots/v<NNN>/    chunked table dumps + manifest.json
//
// The contract: every ApplyMutations batch is logged and fsynced before
// its first statement touches TEdges (mutation.go), a committed snapshot
// manifest covers every WAL record at or below its version and resets the
// log, and hydration = newest snapshot + replay of the WAL suffix. The
// engine's mutation path is deterministic SQL over deterministic state,
// so replaying the logged batches in order reproduces the crashed
// engine's exact relational state — the recovery differential test drives
// every algorithm against an in-memory reference to hold that bar.
//
// Index builds are NOT logged: a snapshot captures built indexes
// (SegTable rows, TLandmark, label sets) wholesale, but an index built
// after the last snapshot is lost on crash and must be rebuilt — the
// version-skip replay rule (see hydrateLocked) keeps the graph exact
// either way. See docs/ARCHITECTURE.md §Durability.

const (
	walFileName = "mutations.wal"
	snapDirName = "snapshots"
	// snapKeep is how many complete snapshot versions GC retains: the
	// newest (the hydration source) plus one predecessor as a manual
	// rollback target.
	snapKeep = 2
)

// ErrNoSnapshot is returned by Hydrate/OpenFromSnapshot when the data
// directory holds no complete snapshot. A WAL without a snapshot base is
// not hydratable — its records describe deltas over a state that was
// never captured — so callers fall back to LoadGraph and should snapshot
// right after.
var ErrNoSnapshot = errors.New("core: no snapshot to hydrate from")

// durability is the engine's WAL + snapshot state; nil unless
// Options.DataDir is set.
type durability struct {
	dir string

	// mu guards the lazily opened store and log pointers: they are set
	// under the exclusive gate but read by stats collectors at any time.
	mu    sync.Mutex
	store snapshot.ChunkStore
	log   *wal.Log

	// replaying disables WAL appends while hydration re-applies logged
	// batches (they are already in the log). Only touched while holding
	// the exclusive gate.
	replaying bool

	snapshots     atomic.Uint64
	snapshotSkips atomic.Uint64
	snapshotNanos atomic.Int64
	snapshotBytes atomic.Uint64
	gcRemoved     atomic.Uint64
	lastVersion   atomic.Uint64
	hydrations    atomic.Uint64
	replayed      atomic.Uint64
}

func (d *durability) walLog() *wal.Log {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log
}

func (d *durability) setLog(l *wal.Log) {
	d.mu.Lock()
	d.log = l
	d.mu.Unlock()
}

// chunkStore opens the snapshot store on first use.
func (d *durability) chunkStore() (snapshot.ChunkStore, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store == nil {
		s, err := snapshot.NewDiskStore(filepath.Join(d.dir, snapDirName))
		if err != nil {
			return nil, err
		}
		d.store = s
	}
	return d.store, nil
}

// armDurabilityLocked opens the WAL and snapshot store; callers hold the
// exclusive gate. reset discards the log's contents — LoadGraph passes
// true because old records describe mutations over a different base and
// must never replay on top of the fresh one; hydration passes false after
// it has replayed the suffix itself. A nil e.dur is a no-op.
func (e *Engine) armDurabilityLocked(reset bool) error {
	if e.dur == nil {
		return nil
	}
	if _, err := e.dur.chunkStore(); err != nil {
		return err
	}
	log := e.dur.walLog()
	if log == nil {
		l, _, err := wal.Open(filepath.Join(e.dur.dir, walFileName))
		if err != nil {
			return err
		}
		e.dur.setLog(l)
		log = l
	}
	if reset {
		return log.Reset()
	}
	return nil
}

// walAppendLocked logs one validated mutation batch, durably, before the
// caller applies it; callers hold the exclusive gate. No-op when
// durability is unarmed or a hydration replay is driving the batch.
func (e *Engine) walAppendLocked(muts []Mutation) error {
	if e.dur == nil || e.dur.replaying {
		return nil
	}
	log := e.dur.walLog()
	if log == nil {
		return nil
	}
	e.mu.RLock()
	ver := e.version + 1
	e.mu.RUnlock()
	rec := wal.Record{Version: ver, Muts: make([]wal.Mutation, len(muts))}
	for i, m := range muts {
		w := m.Weight
		if m.Op == MutDelete {
			w = 0
		}
		rec.Muts[i] = wal.Mutation{Op: wal.Op(m.Op), From: m.From, To: m.To, Weight: w}
	}
	if err := log.Append(rec); err != nil {
		return fmt.Errorf("core: wal append: %w", err)
	}
	return nil
}

// SnapshotStats describes one Engine.Snapshot call.
type SnapshotStats struct {
	// Version is the graph version the snapshot captured (or matched, when
	// Skipped).
	Version uint64 `json:"version"`
	// Skipped reports that the graph version has not moved since the last
	// committed snapshot, so nothing was written.
	Skipped bool `json:"skipped,omitempty"`
	// Tables and Bytes size the written snapshot.
	Tables int   `json:"tables"`
	Bytes  int64 `json:"bytes"`
	// GCRemoved counts superseded snapshot versions reclaimed afterwards.
	GCRemoved int           `json:"gc_removed"`
	Time      time.Duration `json:"time"`
}

// Snapshot writes a versioned snapshot of the loaded graph and every
// built index to the data directory, commits it by writing its manifest
// last, resets the WAL (the manifest now covers every logged record), and
// garbage-collects superseded versions. It takes the exclusive gate —
// queries queue behind it like any mutation — but does not count as a
// build for /readyz: the engine serves the same state before and after.
// Unchanged graph versions are skipped cheaply, so periodic callers
// (spdbd -snapshot-every) cost nothing on an idle server.
func (e *Engine) Snapshot(ctx context.Context) (*SnapshotStats, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	if e.dur == nil {
		return nil, fmt.Errorf("core: snapshots require Options.DataDir")
	}
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	return e.snapshotLocked()
}

func (e *Engine) snapshotLocked() (*SnapshotStats, error) {
	start := time.Now()
	e.mu.RLock()
	nodes, edges, wmin, version := e.nodes, e.edges, e.wmin, e.version
	segBuilt, segLthd := e.segBuilt, e.segLthd
	orc, lbl := e.orc, e.lbl
	strategy := e.opts.Strategy
	e.mu.RUnlock()
	if nodes == 0 {
		return nil, ErrNoGraph
	}
	if version == e.dur.lastVersion.Load() {
		e.dur.snapshotSkips.Add(1)
		return &SnapshotStats{Version: version, Skipped: true}, nil
	}
	store, err := e.dur.chunkStore()
	if err != nil {
		return nil, err
	}
	w := snapshot.NewWriter(store, version, time.Now().UnixMilli())
	m := w.Manifest()
	m.Nodes = int64(nodes)
	m.Edges = int64(edges)
	m.WMin = wmin
	m.Strategy = strategy.String()
	m.SegBuilt = segBuilt
	if segBuilt {
		m.SegLthd = segLthd
	}
	if orc != nil {
		m.Oracle = &snapshot.OracleMeta{
			K: orc.K, Strategy: orc.Strategy.String(),
			Landmarks: orc.Landmarks, Rows: orc.Rows,
		}
	}
	if lbl != nil {
		m.Labels = &snapshot.LabelsMeta{Hubs: lbl.Hubs, RowsOut: lbl.RowsOut, RowsIn: lbl.RowsIn}
	}
	dump := func(name, q string, cols int) error {
		rows, err := e.dumpTable(q, cols)
		if err != nil {
			return err
		}
		return w.AddTable(name, cols, rows)
	}
	if err := dump(TblEdges, "SELECT fid, tid, cost FROM "+TblEdges, 3); err != nil {
		return nil, err
	}
	if segBuilt {
		if err := dump(TblOutSegs, "SELECT fid, tid, pid, cost FROM "+TblOutSegs, 4); err != nil {
			return nil, err
		}
		if err := dump(TblInSegs, "SELECT fid, tid, pid, cost FROM "+TblInSegs, 4); err != nil {
			return nil, err
		}
	}
	if orc != nil {
		if err := dump(oracle.TblLandmark, "SELECT lid, nid, dout, din FROM "+oracle.TblLandmark, 4); err != nil {
			return nil, err
		}
	}
	if lbl != nil {
		if err := dump(labels.TblOut, "SELECT nid, hub, dist FROM "+labels.TblOut, 3); err != nil {
			return nil, err
		}
		if err := dump(labels.TblIn, "SELECT nid, hub, dist FROM "+labels.TblIn, 3); err != nil {
			return nil, err
		}
	}
	if err := w.Commit(); err != nil {
		return nil, err
	}
	// The committed manifest covers every logged record (mutations are
	// excluded by the gate we hold, so nothing landed since the dump), so
	// the log resets: replay must never double-apply them over this base.
	if log := e.dur.walLog(); log != nil {
		if err := log.Reset(); err != nil {
			return nil, err
		}
	}
	removed, err := snapshot.GC(store, snapKeep)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot committed but GC failed: %w", err)
	}
	e.dur.snapshots.Add(1)
	e.dur.snapshotBytes.Add(uint64(w.Bytes()))
	e.dur.snapshotNanos.Add(time.Since(start).Nanoseconds())
	e.dur.lastVersion.Store(version)
	e.dur.gcRemoved.Add(uint64(removed))
	return &SnapshotStats{
		Version: version, Tables: len(m.Tables), Bytes: w.Bytes(),
		GCRemoved: removed, Time: time.Since(start),
	}, nil
}

// OpenFromSnapshot builds an engine over db and hydrates it from the
// newest snapshot in opts.DataDir plus the WAL suffix — the fleet-replica
// startup path that skips CSV ingest and every index rebuild. On failure
// (including ErrNoSnapshot) the database is left open and untouched so
// the caller can fall back to NewEngine + LoadGraph.
func OpenFromSnapshot(db *rdb.DB, opts Options) (*Engine, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("core: OpenFromSnapshot requires Options.DataDir")
	}
	e := NewEngine(db, opts)
	if err := e.Hydrate(); err != nil {
		e.sess.Close()
		return nil, err
	}
	return e, nil
}

// Hydrate restores the engine from the newest snapshot in the data
// directory and replays the WAL suffix on top. It runs under trackBuild —
// /readyz reports 503 until the replica can serve — and under the
// exclusive gate. Indexes recorded in the manifest come back valid
// without a rebuild; WAL records above the manifest version replay
// through the ordinary mutation path, invalidating indexes exactly as the
// original batches did.
func (e *Engine) Hydrate() error {
	if e.optErr != nil {
		return e.optErr
	}
	if e.dur == nil {
		return fmt.Errorf("core: hydration requires Options.DataDir")
	}
	defer e.trackBuild()()
	ctx := context.Background()
	if err := e.lockQuery(ctx); err != nil {
		return err
	}
	defer e.unlockQuery()
	return e.hydrateLocked(ctx)
}

func (e *Engine) hydrateLocked(ctx context.Context) error {
	store, err := e.dur.chunkStore()
	if err != nil {
		return err
	}
	m, err := snapshot.Latest(store)
	if err != nil {
		if errors.Is(err, snapshot.ErrNoManifest) {
			return fmt.Errorf("%w (dir %s)", ErrNoSnapshot, e.dur.dir)
		}
		return err
	}

	// Invalidate before touching any table, exactly like LoadGraph: a
	// hydration that fails partway must read as "no graph loaded".
	e.mu.Lock()
	e.nodes = 0
	e.edges = 0
	e.wmin = 0
	e.segBuilt = false
	e.orc = nil
	e.orcStale = false
	e.lbl = nil
	e.lblStale = false
	e.bumpVersionLocked()
	e.mu.Unlock()

	if err := e.dropAllTables(); err != nil {
		return err
	}
	if err := e.createGraphTables(); err != nil {
		return err
	}
	if err := e.createVisitedTables(); err != nil {
		return err
	}
	// Node ids are dense 0..N-1 by the loader's contract, so TNodes
	// regenerates from the manifest's count instead of being stored.
	var sb strings.Builder
	count := 0
	for nid := int64(0); nid < m.Nodes; nid++ {
		if count > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d)", nid)
		if count++; count == insertBatch {
			if _, err := e.sess.Exec("INSERT INTO " + TblNodes + " (nid) VALUES " + sb.String()); err != nil {
				return err
			}
			sb.Reset()
			count = 0
		}
	}
	if sb.Len() > 0 {
		if _, err := e.sess.Exec("INSERT INTO " + TblNodes + " (nid) VALUES " + sb.String()); err != nil {
			return err
		}
	}

	load := func(name, cols string) error {
		tm := m.Table(name)
		if tm == nil {
			return fmt.Errorf("core: snapshot v%d has no %s dump", m.Version, name)
		}
		rows, err := snapshot.ReadTable(store, tm)
		if err != nil {
			return err
		}
		return e.bulkInsert(name, cols, rows)
	}
	if err := load(TblEdges, "(fid, tid, cost)"); err != nil {
		return err
	}
	if m.SegBuilt {
		if _, err := e.createSegTables(); err != nil {
			return err
		}
		if err := load(TblOutSegs, "(fid, tid, pid, cost)"); err != nil {
			return err
		}
		if err := load(TblInSegs, "(fid, tid, pid, cost)"); err != nil {
			return err
		}
	}
	var orc *oracle.Oracle
	if m.Oracle != nil {
		strat, err := oracle.ParseStrategy(m.Oracle.Strategy)
		if err != nil {
			return fmt.Errorf("core: snapshot v%d: %w", m.Version, err)
		}
		if _, err := oracle.CreateTables(ctx, e.sess, e.oracleIndexMode()); err != nil {
			return err
		}
		if err := load(oracle.TblLandmark, "(lid, nid, dout, din)"); err != nil {
			return err
		}
		orc = &oracle.Oracle{
			K: m.Oracle.K, Strategy: strat,
			Landmarks: m.Oracle.Landmarks, Rows: m.Oracle.Rows,
		}
	}
	var lbl *labels.Labels
	if m.Labels != nil {
		if _, err := labels.CreateTables(ctx, e.sess, e.labelIndexMode()); err != nil {
			return err
		}
		if err := load(labels.TblOut, "(nid, hub, dist)"); err != nil {
			return err
		}
		if err := load(labels.TblIn, "(nid, hub, dist)"); err != nil {
			return err
		}
		lbl = &labels.Labels{Hubs: m.Labels.Hubs, RowsOut: m.Labels.RowsOut, RowsIn: m.Labels.RowsIn}
	}

	e.mu.Lock()
	e.wmin = m.WMin
	e.nodes = int(m.Nodes)
	e.edges = int(m.Edges)
	if m.SegBuilt {
		e.segBuilt = true
		e.segLthd = m.SegLthd
		e.opts.Lthd = m.SegLthd
	}
	e.orc = orc
	e.lbl = lbl
	e.version = m.Version
	e.mu.Unlock()

	// Open the WAL (truncating any torn tail) and replay the suffix. The
	// version-skip rule covers the crash window between a snapshot's
	// manifest commit and its WAL reset: records at or below the manifest
	// version are already inside the snapshot.
	log, recs, err := wal.Open(filepath.Join(e.dur.dir, walFileName))
	if err != nil {
		return err
	}
	e.dur.setLog(log)
	e.dur.replaying = true
	defer func() { e.dur.replaying = false }()
	for _, rec := range recs {
		if rec.Version <= m.Version {
			continue
		}
		muts := make([]Mutation, len(rec.Muts))
		for i, wm := range rec.Muts {
			muts[i] = Mutation{Op: MutOp(wm.Op), From: wm.From, To: wm.To, Weight: wm.Weight}
		}
		// An error here is the log faithfully re-enacting history: the
		// original batch failed the same way (e.g. a delete of a missing
		// edge aborts before writing), and the replayed state matches the
		// crashed engine's either way. A batch that applied a prefix
		// re-applies the same prefix — the mutation path is deterministic.
		_, _ = e.applyMutationsLocked(ctx, muts, len(muts) > 1)
		// Pin the version the original batch committed as; build-only
		// bumps between batches are not logged, so the replayed count
		// cannot be trusted to line up on its own.
		e.mu.Lock()
		e.version = rec.Version
		e.mu.Unlock()
		e.dur.replayed.Add(1)
	}
	// The cache may hold entries keyed at versions this engine's earlier
	// life already used; hydration rewound the version counter, so purge.
	e.mu.Lock()
	if e.cache != nil {
		e.cache.purge()
	}
	e.mu.Unlock()
	if err := e.armDurabilityLocked(false); err != nil {
		return err
	}
	e.dur.lastVersion.Store(m.Version)
	e.dur.hydrations.Add(1)
	return nil
}

// dumpTable materializes a projection query as rows of int64 columns.
func (e *Engine) dumpTable(q string, cols int) ([][]int64, error) {
	res, err := e.sess.Query(q)
	if err != nil {
		return nil, err
	}
	rows := make([][]int64, len(res.Data))
	flat := make([]int64, cols*len(res.Data))
	for i, r := range res.Data {
		if len(r) < cols {
			return nil, fmt.Errorf("core: dump row has %d columns, want %d", len(r), cols)
		}
		row := flat[i*cols : (i+1)*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			row[j] = r[j].I
		}
		rows[i] = row
	}
	return rows, nil
}

// bulkInsert loads rows into table with the loader's batched VALUES
// idiom.
func (e *Engine) bulkInsert(table, cols string, rows [][]int64) error {
	var sb strings.Builder
	count := 0
	flush := func() error {
		if sb.Len() == 0 {
			return nil
		}
		q := "INSERT INTO " + table + " " + cols + " VALUES " + sb.String()
		sb.Reset()
		_, err := e.sess.Exec(q)
		return err
	}
	for _, r := range rows {
		if count > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('(')
		for j, v := range r {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte(')')
		if count++; count == insertBatch {
			if err := flush(); err != nil {
				return err
			}
			count = 0
		}
	}
	return flush()
}

// oracleIndexMode maps the engine's physical-design strategy onto the
// oracle package's index axis.
func (e *Engine) oracleIndexMode() oracle.IndexMode {
	switch e.opts.Strategy {
	case SecondaryIndex:
		return oracle.IndexSecondary
	case NoIndex:
		return oracle.IndexNone
	}
	return oracle.IndexClustered
}

// labelIndexMode maps the engine's physical-design strategy onto the
// labels package's index axis.
func (e *Engine) labelIndexMode() labels.IndexMode {
	switch e.opts.Strategy {
	case SecondaryIndex:
		return labels.IndexSecondary
	case NoIndex:
		return labels.IndexNone
	}
	return labels.IndexClustered
}

// DurabilityStats snapshots the durability subsystem for the serving tier
// (/stats, /metrics). Zero-valued when Options.DataDir is unset.
type DurabilityStats struct {
	// Armed reports a live WAL: mutations are being logged.
	Armed bool      `json:"armed"`
	WAL   wal.Stats `json:"wal"`
	// Snapshots counts committed snapshot writes; SnapshotSkips calls that
	// found the graph version unchanged and wrote nothing.
	Snapshots     uint64 `json:"snapshots"`
	SnapshotSkips uint64 `json:"snapshot_skips"`
	// SnapshotBytes and SnapshotTime total the chunk bytes written and the
	// wall time spent writing (version-dump through GC).
	SnapshotBytes uint64        `json:"snapshot_bytes"`
	SnapshotTime  time.Duration `json:"snapshot_time"`
	// LastSnapshotVersion is the newest committed (or hydrated-from)
	// snapshot's graph version.
	LastSnapshotVersion uint64 `json:"last_snapshot_version"`
	// GCRemoved counts superseded snapshot versions reclaimed.
	GCRemoved uint64 `json:"gc_removed"`
	// Hydrations counts snapshot restores; ReplayedRecords the WAL records
	// re-applied on top of them.
	Hydrations      uint64 `json:"hydrations"`
	ReplayedRecords uint64 `json:"replayed_records"`
}

// DurabilityStats snapshots the durability subsystem's counters.
func (e *Engine) DurabilityStats() DurabilityStats {
	if e.dur == nil {
		return DurabilityStats{}
	}
	st := DurabilityStats{
		Snapshots:           e.dur.snapshots.Load(),
		SnapshotSkips:       e.dur.snapshotSkips.Load(),
		SnapshotBytes:       e.dur.snapshotBytes.Load(),
		SnapshotTime:        time.Duration(e.dur.snapshotNanos.Load()),
		LastSnapshotVersion: e.dur.lastVersion.Load(),
		GCRemoved:           e.dur.gcRemoved.Load(),
		Hydrations:          e.dur.hydrations.Load(),
		ReplayedRecords:     e.dur.replayed.Load(),
	}
	if log := e.dur.walLog(); log != nil {
		st.Armed = true
		st.WAL = log.Stats()
	}
	return st
}
