package core
