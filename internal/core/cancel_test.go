package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

// The cancellation suite: a cancelled context must return ctx.Err() within
// one frontier iteration, leave the query latch free, and cache nothing.

// countdownCtx cancels after a fixed number of Err() polls. The engine
// polls once per frontier iteration and at every statement boundary, so
// this cancels deterministically mid-search — no timing games.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestQueryCancelledBeforeStart(t *testing.T) {
	g := graph.Power(300, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Query(ctx, QueryRequest{Source: 0, Target: 200, Alg: AlgBSDJ})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The engine is untouched: a fresh query succeeds.
	res, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 200, Alg: AlgBSDJ})
	if err != nil || !res.Found {
		t.Fatalf("engine unusable after pre-start cancellation: %v %+v", err, res)
	}
}

func TestQueryCancelledMidSearch(t *testing.T) {
	g := graph.Power(400, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	q := QueryRequest{Source: 0, Target: 350, Alg: AlgBSDJ}

	// Enough polls to get well into the frontier loop, far fewer than the
	// search needs to finish.
	_, err := e.Query(newCountdownCtx(40), q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// No cache entry for the aborted query.
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("aborted query left %d cache entries", st.Entries)
	}
	// The latch is free: the same query completes and only now is cached.
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	if res.Stats.CacheHit {
		t.Fatal("aborted query must not have produced a cached answer")
	}
	checkPath(t, g, AlgBSDJ, q.Source, q.Target, res.Path)
	if st := e.CacheStats(); st.Entries != 1 {
		t.Fatalf("completed query should be cached once, entries=%d", st.Entries)
	}
}

func TestQueryDeadline(t *testing.T) {
	g := graph.Power(400, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.Query(ctx, QueryRequest{Source: 0, Target: 350, Alg: AlgBSDJ})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestQueryCancelledWhileQueued: a request still waiting on the query
// latch abandons the queue when its context dies, without disturbing the
// search holding the latch.
func TestQueryCancelledWhileQueued(t *testing.T) {
	g := graph.Power(400, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1})

	// Hold the latch directly (as a long-running search would).
	if err := e.lockQuery(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, QueryRequest{Source: 0, Target: 1, Alg: AlgBSDJ})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine reach the latch
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued query: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query did not abandon the latch wait")
	}
	e.unlockQuery()
	// The latch still works end to end.
	if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 1, Alg: AlgBSDJ}); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

func TestQueryStatementBudget(t *testing.T) {
	g := graph.Power(400, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	q := QueryRequest{Source: 0, Target: 350, Alg: AlgBSDJ, MaxStatements: 10}
	_, err := e.Query(context.Background(), q)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("budget-killed query left %d cache entries", st.Entries)
	}
	// Unlimited budget still works, and the s==t trivial case never spends.
	if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 350, Alg: AlgBSDJ}); err != nil {
		t.Fatalf("unbounded query: %v", err)
	}
	res, err := e.Query(context.Background(), QueryRequest{Source: 3, Target: 3, MaxStatements: 1})
	if err != nil || res.Distance != 0 {
		t.Fatalf("trivial query under budget: %v %+v", err, res)
	}
	if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 1, MaxStatements: -1}); err == nil {
		t.Fatal("negative budget must be rejected")
	}
}

// TestQueryBatchCancellation: cancelling the batch context fails the
// remaining requests fast with ctx.Err() while keeping input order.
func TestQueryBatchCancellation(t *testing.T) {
	g := graph.Power(300, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]QueryRequest, 8)
	for i := range reqs {
		reqs[i] = QueryRequest{Source: 0, Target: int64(100 + i), Alg: AlgBSDJ}
	}
	out := e.QueryBatch(ctx, reqs, 4)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results", len(out))
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: want context.Canceled, got %v", i, r.Err)
		}
	}
}

// TestBuildsCancelled: index builds abort cleanly and leave the engine
// serving (no partial index is ever consulted).
func TestBuildsCancelled(t *testing.T) {
	g := graph.Power(300, 3, 7)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.BuildSegTableContext(ctx, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildSegTableContext: want context.Canceled, got %v", err)
	}
	if e.SegLthd() != 0 {
		t.Fatal("cancelled build must not register a SegTable")
	}
	if _, err := e.BuildOracleContext(ctx, oracle.Config{K: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildOracleContext: want context.Canceled, got %v", err)
	}
	if e.Oracle() != nil {
		t.Fatal("cancelled build must not register an oracle")
	}
	// Mid-build cancellation (past the latch) also unwinds cleanly — even
	// when it kills a REbuild: the previously built index must go cold
	// (its tables were dropped) instead of serving half-built segments.
	if _, err := e.BuildSegTable(20); err != nil {
		t.Fatal(err)
	}
	if e.SegLthd() != 20 {
		t.Fatal("setup: SegTable should be built")
	}
	cd := newCountdownCtx(25)
	if _, err := e.BuildSegTableContext(cd, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel: want context.Canceled, got %v", err)
	}
	if e.SegLthd() != 0 {
		t.Fatal("cancelled rebuild must invalidate the previous SegTable")
	}
	if _, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 200, Alg: AlgBSEG}); err == nil {
		t.Fatal("BSEG must refuse after a cancelled rebuild")
	}
	// The engine still answers exact queries afterwards.
	res, err := e.Query(context.Background(), QueryRequest{Source: 0, Target: 200})
	if err != nil {
		t.Fatalf("query after cancelled builds: %v", err)
	}
	checkPath(t, g, res.Algorithm, 0, 200, res.Path)
}
