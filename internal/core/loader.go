package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/oracle"
)

// Table names used throughout (paper §2.1, §3.3, §4.2).
const (
	TblNodes   = "TNodes"
	TblEdges   = "TEdges"
	TblVisited = "TVisited"
	TblOutSegs = "TOutSegs"
	TblInSegs  = "TInSegs"
	TblExpand  = "TExpand"  // materialized E-operator output (non-fused paths)
	TblExpCost = "TExpCost" // TSQL intermediate: per-node minimal cost
	TblSeg     = "TSeg"     // SegTable construction working set
)

const insertBatch = 400

// LoadGraph creates the relational representation of g (Figure 1 of the
// paper) under the engine's index strategy and bulk-loads it, then creates
// the per-query working tables.
func (e *Engine) LoadGraph(g *graph.Graph) error {
	if e.optErr != nil {
		return e.optErr
	}
	// A load in flight means the replica is not ready to serve: /readyz
	// reports 503 until it completes.
	defer e.trackBuild()()
	// Loading excludes searches and starts a fresh graph version: every
	// cached answer is invalidated. Loads are not cancellable — a partial
	// load would leave the engine with no graph at all.
	if err := e.lockQuery(context.Background()); err != nil {
		return err
	}
	defer e.unlockQuery()
	db := e.sess
	// Invalidate before touching any table: if the load fails partway the
	// engine must read as "no graph loaded" (and serve no cached answers
	// for the dropped tables), not as a stale hybrid of old and new.
	e.mu.Lock()
	e.nodes = 0
	e.edges = 0
	e.wmin = 0
	e.segBuilt = false
	e.orc = nil
	// A fresh graph starts with a clean oracle and label slate (the
	// mutation counters are engine-lifetime and survive reloads).
	e.orcStale = false
	e.lbl = nil
	e.lblStale = false
	e.bumpVersionLocked()
	e.mu.Unlock()
	// Reloading replaces any previously loaded graph (and its index):
	// drop the old tables so a serving engine can swap graphs in place.
	if err := e.dropAllTables(); err != nil {
		return err
	}
	if err := e.createGraphTables(); err != nil {
		return err
	}
	if err := e.createVisitedTables(); err != nil {
		return err
	}

	// Bulk-load nodes.
	var sb strings.Builder
	flushNodes := func() error {
		if sb.Len() == 0 {
			return nil
		}
		q := "INSERT INTO " + TblNodes + " (nid) VALUES " + sb.String()
		sb.Reset()
		_, err := db.Exec(q)
		return err
	}
	count := 0
	for nid := int64(0); nid < g.N; nid++ {
		if count > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d)", nid)
		count++
		if count == insertBatch {
			if err := flushNodes(); err != nil {
				return err
			}
			count = 0
		}
	}
	if err := flushNodes(); err != nil {
		return err
	}

	// Bulk-load edges.
	count = 0
	flushEdges := func() error {
		if sb.Len() == 0 {
			return nil
		}
		q := "INSERT INTO " + TblEdges + " (fid, tid, cost) VALUES " + sb.String()
		sb.Reset()
		_, err := db.Exec(q)
		return err
	}
	for _, ed := range g.Edges {
		if count > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d,%d,%d)", ed.From, ed.To, ed.Weight)
		count++
		if count == insertBatch {
			if err := flushEdges(); err != nil {
				return err
			}
			count = 0
		}
	}
	if err := flushEdges(); err != nil {
		return err
	}

	wmin, null, err := db.QueryInt("SELECT MIN(cost) FROM " + TblEdges)
	if err != nil {
		return err
	}
	if null || wmin < 1 {
		wmin = 1
	}
	e.mu.Lock()
	e.wmin = wmin
	e.nodes = int(g.N)
	e.edges = g.M()
	e.mu.Unlock()
	// Arm (or re-arm) durability for the fresh graph. The WAL resets: its
	// old records describe mutations over a different base and must never
	// replay on top of this one.
	return e.armDurabilityLocked(true)
}

// dropAllTables drops every engine-owned relation that exists — graph,
// working set, SegTable, oracle, labels — so a reload or snapshot
// hydration starts from a clean catalog.
func (e *Engine) dropAllTables() error {
	dropList := append([]string{TblNodes, TblEdges, TblVisited, TblExpand,
		TblExpCost, TblOutSegs, TblInSegs, TblSeg}, oracle.Tables()...)
	dropList = append(dropList, labels.Tables()...)
	for _, tbl := range dropList {
		if _, ok := e.db.Catalog().Get(tbl); ok {
			if _, err := e.sess.Exec("DROP TABLE " + tbl); err != nil {
				return err
			}
		}
	}
	return nil
}

// createGraphTables creates TNodes and TEdges under the engine's index
// strategy (Fig 8(c)'s physical-design axis).
func (e *Engine) createGraphTables() error {
	stmts := []string{
		"CREATE TABLE " + TblNodes + " (nid INT PRIMARY KEY)",
		"CREATE TABLE " + TblEdges + " (fid INT, tid INT, cost INT)",
	}
	switch e.opts.Strategy {
	case ClusteredIndex:
		stmts = append(stmts,
			"CREATE CLUSTERED INDEX tedges_fid ON "+TblEdges+" (fid)",
			"CREATE INDEX tedges_tid ON "+TblEdges+" (tid)",
		)
	case SecondaryIndex:
		stmts = append(stmts,
			"CREATE INDEX tedges_fid ON "+TblEdges+" (fid)",
			"CREATE INDEX tedges_tid ON "+TblEdges+" (tid)",
		)
	case NoIndex:
		// bare heap
	}
	for _, s := range stmts {
		if _, err := e.sess.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// createVisitedTables creates TVisited and the expansion scratch tables
// under the engine's index strategy. TVisited carries both directions'
// state (§4.1): d2s/p2s/f forward, d2t/p2t/b backward.
func (e *Engine) createVisitedTables() error {
	db := e.sess
	var stmts []string
	switch e.opts.Strategy {
	case ClusteredIndex:
		stmts = append(stmts,
			"CREATE TABLE "+TblVisited+" (nid INT PRIMARY KEY, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE TABLE "+TblExpand+" (nid INT PRIMARY KEY, par INT, cost INT)",
			"CREATE TABLE "+TblExpCost+" (nid INT PRIMARY KEY, cost INT)",
		)
	case SecondaryIndex:
		stmts = append(stmts,
			"CREATE TABLE "+TblVisited+" (nid INT, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE UNIQUE INDEX tvisited_nid ON "+TblVisited+" (nid)",
			"CREATE TABLE "+TblExpand+" (nid INT, par INT, cost INT)",
			"CREATE UNIQUE INDEX texpand_nid ON "+TblExpand+" (nid)",
			"CREATE TABLE "+TblExpCost+" (nid INT, cost INT)",
			"CREATE UNIQUE INDEX texpcost_nid ON "+TblExpCost+" (nid)",
		)
	case NoIndex:
		stmts = append(stmts,
			"CREATE TABLE "+TblVisited+" (nid INT, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE TABLE "+TblExpand+" (nid INT, par INT, cost INT)",
			"CREATE TABLE "+TblExpCost+" (nid INT, cost INT)",
		)
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// resetVisited clears sc's working tables (counted in PE since the paper's
// per-query setup happens inside the measured loop).
func (e *Engine) resetVisited(ctx context.Context, qs *QueryStats, sc *scratchSet) error {
	for _, q := range sc.resets {
		if _, err := e.exec(ctx, qs, nil, nil, q); err != nil {
			return err
		}
	}
	return nil
}

// visitedCount reads |TVisited| for the search-space metric (Table 3).
func (e *Engine) visitedCount(ctx context.Context, qs *QueryStats, sc *scratchSet) (int, error) {
	v, _, err := e.queryInt(ctx, qs, nil, sc.count)
	return int(v), err
}
