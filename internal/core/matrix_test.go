package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// TestConfigurationMatrix runs every algorithm under every combination of
// dialect (NSQL/TSQL), engine profile (DBMS-X/PostgreSQL9), and operator
// fusion, verifying identical answers: the paper's claim that the NSQL and
// TSQL formulations are semantically equivalent (§3.3) and that the
// PostgreSQL fallback (no MERGE) preserves results (§5.2, Fig 8(a)).
func TestConfigurationMatrix(t *testing.T) {
	g := graph.Random(40, 120, 99)
	queries := graph.RandomQueries(g, 5, 3)

	type cfg struct {
		name    string
		profile rdb.Profile
		opts    Options
	}
	cfgs := []cfg{
		{"nsql-dbmsx", rdb.ProfileDBMSX, Options{}},
		{"nsql-dbmsx-separate", rdb.ProfileDBMSX, Options{SeparateOperators: true}},
		{"tsql-dbmsx", rdb.ProfileDBMSX, Options{TraditionalSQL: true}},
		{"nsql-postgres", rdb.ProfilePostgreSQL9, Options{}},
		{"tsql-postgres", rdb.ProfilePostgreSQL9, Options{TraditionalSQL: true}},
		{"nopruning", rdb.ProfileDBMSX, Options{DisablePruning: true}},
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e := newTestEngine(t, g, rdb.Options{Profile: c.profile}, c.opts)
			if _, err := e.BuildSegTable(20); err != nil {
				t.Fatalf("segtable: %v", err)
			}
			buildOracle(t, e)
			for _, alg := range allAlgorithms() {
				for _, q := range queries {
					p, _, err := shortestPath(e, alg, q[0], q[1])
					if err != nil {
						t.Fatalf("%v s=%d t=%d: %v", alg, q[0], q[1], err)
					}
					checkPath(t, g, alg, q[0], q[1], p)
				}
			}
		})
	}
}

// TestIndexStrategies verifies Fig 8(c)'s three physical designs give the
// same answers.
func TestIndexStrategies(t *testing.T) {
	g := graph.Random(30, 90, 5)
	queries := graph.RandomQueries(g, 4, 11)
	for _, strat := range []IndexStrategy{ClusteredIndex, SecondaryIndex, NoIndex} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			e := newTestEngine(t, g, rdb.Options{}, Options{Strategy: strat})
			if _, err := e.BuildSegTable(15); err != nil {
				t.Fatalf("segtable: %v", err)
			}
			buildOracle(t, e)
			for _, alg := range allAlgorithms() {
				for _, q := range queries {
					p, _, err := shortestPath(e, alg, q[0], q[1])
					if err != nil {
						t.Fatalf("%v s=%d t=%d: %v", alg, q[0], q[1], err)
					}
					checkPath(t, g, alg, q[0], q[1], p)
				}
			}
		})
	}
}

// TestUnreachableTarget: directed graph where t has no incoming path.
func TestUnreachableTarget(t *testing.T) {
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 5},
		{From: 1, To: 2, Weight: 5},
		{From: 3, To: 2, Weight: 5}, // node 3 unreachable from 0
	}
	g, err := graph.New(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(10); err != nil {
		t.Fatalf("segtable: %v", err)
	}
	buildOracle(t, e)
	for _, alg := range allAlgorithms() {
		p, _, err := shortestPath(e, alg, 0, 3)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if p.Found {
			t.Errorf("%v: found a path to an unreachable node: %+v", alg, p)
		}
	}
}

// TestSourceEqualsTarget: the degenerate s == t query.
func TestSourceEqualsTarget(t *testing.T) {
	g := graph.Random(10, 30, 1)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(10); err != nil {
		t.Fatal(err)
	}
	buildOracle(t, e)
	for _, alg := range allAlgorithms() {
		p, _, err := shortestPath(e, alg, 4, 4)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !p.Found || p.Length != 0 || len(p.Nodes) != 1 || p.Nodes[0] != 4 {
			t.Errorf("%v: s==t should yield a zero path, got %+v", alg, p)
		}
	}
}

// TestDirectedAsymmetry: on a directed cycle the s->t and t->s distances
// differ; both directions must be exact.
func TestDirectedAsymmetry(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 -> 0 with increasing weights.
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 2},
		{From: 2, To: 3, Weight: 3},
		{From: 3, To: 0, Weight: 4},
	}
	g, err := graph.New(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(5); err != nil {
		t.Fatal(err)
	}
	buildOracle(t, e)
	for _, alg := range allAlgorithms() {
		p, _, err := shortestPath(e, alg, 0, 3)
		if err != nil {
			t.Fatalf("%v 0->3: %v", alg, err)
		}
		if !p.Found || p.Length != 6 {
			t.Errorf("%v: 0->3 expected 6, got %+v", alg, p)
		}
		p, _, err = shortestPath(e, alg, 3, 0)
		if err != nil {
			t.Fatalf("%v 3->0: %v", alg, err)
		}
		if !p.Found || p.Length != 4 {
			t.Errorf("%v: 3->0 expected 4, got %+v", alg, p)
		}
	}
}

// TestBSEGRequiresSegTable: BSEG without a built index must error.
func TestBSEGRequiresSegTable(t *testing.T) {
	g := graph.Random(10, 20, 2)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, _, err := shortestPath(e, AlgBSEG, 0, 1); err == nil {
		t.Fatal("expected an error for BSEG without SegTable")
	}
}

// TestStatsShape sanity-checks the collected metrics the experiments rely
// on: BSDJ must use far fewer expansions than DJ; BBFS fewer than BSDJ but
// more visited rows (Table 2/3's relationships).
func TestStatsShape(t *testing.T) {
	g := graph.Power(300, 3, 17)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	queries := graph.RandomQueries(g, 6, 23)
	sum := map[Algorithm]int{}
	vis := map[Algorithm]int{}
	for _, alg := range []Algorithm{AlgDJ, AlgBSDJ, AlgBBFS} {
		for _, q := range queries {
			p, qs, err := shortestPath(e, alg, q[0], q[1])
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			checkPath(t, g, alg, q[0], q[1], p)
			sum[alg] += qs.Expansions
			vis[alg] += qs.VisitedRows
			if qs.Statements == 0 || qs.Total == 0 {
				t.Errorf("%v: empty stats: %+v", alg, qs)
			}
		}
	}
	if sum[AlgDJ] <= sum[AlgBSDJ] {
		t.Errorf("DJ should need more expansions than BSDJ: %d vs %d", sum[AlgDJ], sum[AlgBSDJ])
	}
	if sum[AlgBBFS] >= sum[AlgBSDJ] {
		t.Errorf("BBFS should need fewer expansions than BSDJ: %d vs %d", sum[AlgBBFS], sum[AlgBSDJ])
	}
	if vis[AlgBBFS] <= vis[AlgBSDJ] {
		t.Errorf("BBFS should visit more nodes than BSDJ: %d vs %d", vis[AlgBBFS], vis[AlgBSDJ])
	}
}

// TestSegTableCorrectness: every recorded segment cost must equal the true
// shortest distance, and SegTable search must preserve distances for every
// pair (δ_G == δ_G'), the property Theorem 3 presumes.
func TestSegTableCorrectness(t *testing.T) {
	g := graph.Random(25, 75, 31)
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	st, err := e.BuildSegTable(25)
	if err != nil {
		t.Fatal(err)
	}
	if st.OutSegs == 0 || st.InSegs == 0 {
		t.Fatalf("empty segtable: %+v", st)
	}
	rows, err := e.DB().Query("SELECT fid, tid, cost FROM TOutSegs")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Data {
		u, v, c := r[0].I, r[1].I, r[2].I
		ref := graph.MDJ(g, u, v)
		if !ref.Found {
			t.Fatalf("TOutSegs has pair (%d,%d) with no path", u, v)
		}
		if c <= 25 && c != ref.Distance {
			t.Errorf("TOutSegs (%d,%d): cost %d != δ %d", u, v, c, ref.Distance)
		}
		if c > 25 && ref.Distance > c {
			t.Errorf("TOutSegs edge (%d,%d): cost %d below δ %d", u, v, c, ref.Distance)
		}
	}
	// TInSegs costs are distances too.
	rows, err = e.DB().Query("SELECT fid, tid, cost FROM TInSegs")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Data {
		u, v, c := r[0].I, r[1].I, r[2].I
		ref := graph.MDJ(g, u, v)
		if !ref.Found {
			t.Fatalf("TInSegs has pair (%d,%d) with no path", u, v)
		}
		if c <= 25 && c != ref.Distance {
			t.Errorf("TInSegs (%d,%d): cost %d != δ %d", u, v, c, ref.Distance)
		}
	}
}

// TestSmallLthdAndUniformWeights covers threshold edge cases: lthd below
// the minimal weight (SegTable degenerates to the edge tables) and a graph
// where every weight is identical.
func TestSmallLthdAndUniformWeights(t *testing.T) {
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 5}, {From: 1, To: 2, Weight: 5},
		{From: 2, To: 3, Weight: 5}, {From: 0, To: 3, Weight: 5},
		{From: 3, To: 0, Weight: 5}, {From: 2, To: 0, Weight: 5},
	}
	g, err := graph.New(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	st, err := e.BuildSegTable(1) // below wmin: no multi-hop segments
	if err != nil {
		t.Fatal(err)
	}
	if st.OutSegs != len(edges) {
		t.Fatalf("lthd<wmin should keep exactly the edges: %d vs %d", st.OutSegs, len(edges))
	}
	buildOracle(t, e)
	for _, alg := range allAlgorithms() {
		p, _, err := shortestPath(e, alg, 0, 3)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !p.Found || p.Length != 5 {
			t.Fatalf("%v: %+v", alg, p)
		}
	}
}

// TestParallelEdges: multigraphs keep the cheapest parallel edge.
func TestParallelEdges(t *testing.T) {
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 9},
		{From: 0, To: 1, Weight: 3}, // cheaper duplicate
		{From: 1, To: 2, Weight: 4},
	}
	g, err := graph.New(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, g, rdb.Options{}, Options{})
	if _, err := e.BuildSegTable(10); err != nil {
		t.Fatal(err)
	}
	buildOracle(t, e)
	for _, alg := range allAlgorithms() {
		p, _, err := shortestPath(e, alg, 0, 2)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !p.Found || p.Length != 7 {
			t.Fatalf("%v should use the cheap parallel edge: %+v", alg, p)
		}
	}
}

// TestDialectStatementCounts verifies the mechanism behind Fig 6(d): the
// traditional dialect issues strictly more statements per expansion than
// the fused window+MERGE form (1 vs 6), and the PostgreSQL fallback sits
// in between (4).
func TestDialectStatementCounts(t *testing.T) {
	g := graph.Random(50, 150, 12)
	q := graph.RandomQueries(g, 1, 5)[0]

	run := func(profile rdb.Profile, traditional bool) (*QueryStats, Path) {
		e := newTestEngine(t, g, rdb.Options{Profile: profile}, Options{TraditionalSQL: traditional})
		p, qs, err := shortestPath(e, AlgBSDJ, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		return qs, p
	}
	nsql, p1 := run(rdb.ProfileDBMSX, false)
	tsql, p2 := run(rdb.ProfileDBMSX, true)
	pg, p3 := run(rdb.ProfilePostgreSQL9, false)
	if p1.Length != p2.Length || p1.Length != p3.Length {
		t.Fatalf("dialects disagree: %d %d %d", p1.Length, p2.Length, p3.Length)
	}
	if tsql.Statements <= nsql.Statements {
		t.Errorf("TSQL must issue more statements: %d vs %d", tsql.Statements, nsql.Statements)
	}
	if pg.Statements <= nsql.Statements {
		t.Errorf("no-MERGE profile must issue more statements: %d vs %d", pg.Statements, nsql.Statements)
	}
	if tsql.Statements <= pg.Statements {
		t.Errorf("TSQL must issue more statements than the no-MERGE profile: %d vs %d", tsql.Statements, pg.Statements)
	}
}
