package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/rdb"
)

// TestNoGraphSentinel: an engine with nothing loaded refuses queries and
// superstep admissions with the typed ErrNoGraph, so coordinators branch
// with errors.Is instead of matching message text.
func TestNoGraphSentinel(t *testing.T) {
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e := NewEngine(db, Options{})
	_, err = e.Query(context.Background(), QueryRequest{Source: 0, Target: 1})
	if !errors.Is(err, ErrNoGraph) {
		t.Fatalf("Query on empty engine: err = %v, want ErrNoGraph", err)
	}
	_, err = e.BeginSuperstep(context.Background(), AlgBSDJ, 0)
	if !errors.Is(err, ErrNoGraph) {
		t.Fatalf("BeginSuperstep on empty engine: err = %v, want ErrNoGraph", err)
	}
}

// TestSuperstepUnsupportedAlg: the superstep surface rejects algorithms
// whose machinery cannot fan out across shards, with its own sentinel.
func TestSuperstepUnsupportedAlg(t *testing.T) {
	e := newLineEngine(t, 4)
	for _, alg := range []Algorithm{AlgDJ, AlgBDJ, AlgALT, AlgLabel, AlgAuto} {
		_, err := e.BeginSuperstep(context.Background(), alg, 0)
		if !errors.Is(err, ErrUnsupportedSuperstep) {
			t.Fatalf("BeginSuperstep(%v): err = %v, want ErrUnsupportedSuperstep", alg, err)
		}
	}
	// A rejected Begin must not leak its gate admission: an exclusive
	// operation (a mutation batch) has to get through afterwards.
	if _, err := e.ApplyMutations([]Mutation{{Op: MutInsert, From: 0, To: 2, Weight: 5}}); err != nil {
		t.Fatalf("mutation after rejected BeginSuperstep: %v", err)
	}
}

// TestSuperstepSeedMatchesQuery drives one full coordinator-style search on
// a single engine through the superstep surface — seed injection, frontier
// select, expand+harvest with self-routing, stats collection, stop
// condition — and checks it reproduces Engine.Query exactly. This is the
// k=1 degenerate case of the shard coordinator, pinned here so the core
// surface stays sufficient on its own.
func TestSuperstepSeedMatchesQuery(t *testing.T) {
	e := newLineEngine(t, 24)
	ctx := context.Background()

	want, err := e.Query(ctx, QueryRequest{Source: 2, Target: 19, Alg: AlgBSDJ})
	if err != nil {
		t.Fatal(err)
	}

	ss, err := e.BeginSuperstep(ctx, AlgBSDJ, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := ss.Inject(ctx, true, []FrontierCand{{Nid: 2, Par: 2, Cost: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Inject(ctx, false, []FrontierCand{{Nid: 19, Par: 19, Cost: 0}}); err != nil {
		t.Fatal(err)
	}
	var lf, lb int64
	nf, nb := int64(1), int64(1)
	candF, candB := true, true
	var kf, kb int64
	minCost := int64(4 * MaxDist)
	for iter := 0; ; iter++ {
		if iter > 1000 {
			t.Fatal("superstep loop did not terminate")
		}
		m, err := ss.Mins(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.HasSum && m.Sum < minCost {
			minCost = m.Sum
		}
		candF, candB = m.HasMinF, m.HasMinB
		if candF {
			lf = m.MinF
		}
		if candB {
			lb = m.MinB
		}
		if StopCondition(lf, lb, minCost) {
			break
		}
		if !candF && !candB {
			break
		}
		forward := candF && (!candB || nf <= nb)
		var k int64
		if forward {
			kf++
			k = kf
		} else {
			kb++
			k = kb
		}
		cnt, err := ss.SelectFrontier(ctx, forward, k)
		if err != nil {
			t.Fatal(err)
		}
		lOther := lb
		if !forward {
			lOther = lf
		}
		if _, err := ss.ExpandHarvest(ctx, forward, lOther, minCost); err != nil {
			t.Fatal(err)
		}
		if forward {
			nf = cnt
		} else {
			nb = cnt
		}
	}
	if minCost != want.Distance {
		t.Fatalf("superstep distance %d, want %d", minCost, want.Distance)
	}
	meet, ok, err := ss.MeetNode(ctx, minCost)
	if err != nil || !ok {
		t.Fatalf("MeetNode: ok=%v err=%v", ok, err)
	}
	if d, ok, err := ss.Dist(ctx, true, meet); err != nil || !ok || d > minCost {
		t.Fatalf("meet d2s = %d (ok=%v err=%v), want <= %d", d, ok, err, minCost)
	}
}

// newLineEngine loads a directed weighted line 0->1->...->n-1 (weight 3).
func newLineEngine(t *testing.T, n int64) *Engine {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	e := NewEngine(db, Options{})
	if err := e.LoadGraph(lineGraph(t, n, 3)); err != nil {
		t.Fatal(err)
	}
	return e
}
